// Ablation benchmarks for the design choices DESIGN.md calls out: blocked
// vs naive GEMM, CSE on vs off, greedy vs exact materialization planning,
// and TSQR vs normal equations inside the distributed exact solver.
package keystoneml_test

import (
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/solvers"
	"keystoneml/internal/workload"
)

// BenchmarkAblationGEMM compares the cache-blocked multiply against a
// naive triple loop — the justification for the blocking in
// linalg.Matrix.Mul.
func BenchmarkAblationGEMM(b *testing.B) {
	rng := linalg.NewRNG(1)
	x := rng.GaussianMatrix(192, 192)
	y := rng.GaussianMatrix(192, 192)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.Mul(y)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveMul(x, y)
		}
	})
}

func naiveMul(a, bm *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(a.Rows, bm.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < bm.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * bm.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// BenchmarkAblationCSE measures a branching pipeline with duplicated
// sub-expressions executed with and without common sub-expression
// elimination (both with unlimited caching, isolating CSE's effect on
// graph size rather than recompute).
func BenchmarkAblationCSE(b *testing.B) {
	items := make([]any, 2000)
	rng := linalg.NewRNG(2)
	for i := range items {
		items[i] = rng.GaussianVector(64)
	}
	data := engine.FromSlice(items, 4)
	build := func() *core.Graph {
		p := core.Input[[]float64]()
		// Two structurally identical expensive branches.
		heavy := func(x []float64) []float64 {
			out := make([]float64, len(x))
			for i, v := range x {
				out[i] = v * v
			}
			return out
		}
		b1 := core.AndThen(p, core.FuncOp("heavy", heavy))
		b2 := core.AndThen(p, core.FuncOp("heavy", heavy))
		return core.Gather(b1, b2).Graph()
	}
	run := func(b *testing.B, cse bool) {
		for i := 0; i < b.N; i++ {
			g := build()
			if cse {
				optimizer.CSE(g)
			}
			cache := engine.NewCacheManager(0, engine.NewLRUPolicy())
			core.NewExecutor(g, engine.NewContext(0), cache, data, nil).Run()
		}
	}
	b.Run("with-cse", func(b *testing.B) { run(b, true) })
	b.Run("without-cse", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPlanner compares greedy materialization planning
// (Algorithm 1) against the exhaustive exact planner the paper rejects —
// the cost argument for the greedy algorithm.
func BenchmarkAblationPlanner(b *testing.B) {
	// A 14-node chain with an iterative tail: 12 cacheable candidates,
	// still feasible for the exact planner (2^12 subsets).
	p := core.Input[float64]()
	cur := p
	for i := 0; i < 12; i++ {
		cur = core.AndThen(cur, core.FuncOp("t", func(x float64) float64 { return x + 1 }))
	}
	final := core.AndThenEstimator(cur, core.NewEst[float64, float64](benchEst{}))
	g := final.Graph()
	prof := &optimizer.Profile{Nodes: map[int]*optimizer.NodeProfile{}}
	for _, n := range g.Topological() {
		prof.Nodes[n.ID] = &optimizer.NodeProfile{Name: n.OpName(), Kind: n.Kind, TimeSec: 0.01, SizeBytes: 100}
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimizer.GreedyCacheSet(g, prof, 500, 1)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimizer.ExactCacheSet(g, prof, 500, 1)
		}
	})
}

type benchEst struct{}

func (benchEst) Name() string { return "bench.est" }
func (benchEst) Weight() int  { return 10 }
func (benchEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	for i := 0; i < 10; i++ {
		data()
	}
	return core.IdentityOp()
}

// BenchmarkAblationExactSolverPaths compares the two physical paths
// inside DistributedQR: communication-avoiding TSQR (tall partitions)
// vs distributed normal equations (short partitions).
func BenchmarkAblationExactSolverPaths(b *testing.B) {
	ctx := engine.NewContext(0)
	fetch := func(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }
	// Tall partitions (n/parts >= d) take the TSQR path.
	tall := workload.DenseVectors(1024, 64, 4, 1, 4)
	// Short partitions (n/parts < d) fall back to normal equations.
	short := workload.DenseVectors(1024, 64, 4, 1, 32)
	b.Run("tsqr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.DistributedQR{}).Fit(ctx, fetch(tall.Data), fetch(tall.Labels))
		}
	})
	b.Run("normal-equations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.DistributedQR{}).Fit(ctx, fetch(short.Data), fetch(short.Labels))
		}
	})
}

// BenchmarkAblationSubsampling measures the optimizer's profiling
// overhead as a function of sample size — the cost side of the Section
// 4.1 subsampling design.
func BenchmarkAblationSubsampling(b *testing.B) {
	train := workload.DenseVectors(2000, 32, 4, 9, 8)
	for _, s := range []int{32, 128, 512} {
		s := s
		b.Run(sampleName(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := core.AndThenLabeledEstimator(
					core.AndThen(core.Input[[]float64](),
						core.FuncOp("id", func(x []float64) []float64 { return x })),
					solvers.NewLinearSolverEst(10, 1e-4, 0),
				).Graph()
				optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
					Level:       optimizer.LevelFull,
					Resources:   cluster.Local(4),
					NumClasses:  4,
					SampleSizes: [2]int{s / 2, s},
				})
			}
		})
	}
}

func sampleName(s int) string {
	switch s {
	case 32:
		return "sample-32"
	case 128:
		return "sample-128"
	default:
		return "sample-512"
	}
}

var _ = cluster.Local
