# Development and CI entry points. `make ci` is exactly what the GitHub
# Actions workflow runs.

GO ?= go

.PHONY: build test race vet bench-smoke bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A short benchmark pass at Quick scale: compiles every benchmark and
# runs each once, catching bit-rot without CI-hostile runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

ci: vet build race bench-smoke
