# Development and CI entry points. `make ci` runs the same steps as the
# GitHub Actions workflow (which additionally runs them under a
# GOMAXPROCS {1,4} matrix).

GO ?= go

.PHONY: build test race vet bench-smoke bench ci serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A short benchmark pass at Quick scale: compiles every benchmark and
# runs each once, catching bit-rot without CI-hostile runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The HTTP inference server (trains the text pipeline at startup).
serve:
	$(GO) run ./cmd/keyserve

ci: vet build race bench-smoke
