# Development and CI entry points. `make ci` runs the workflow's test
# job steps (vet/build/race/bench-smoke); the GitHub Actions workflow
# additionally runs them under a GOMAXPROCS {1,4} matrix plus the
# `bench-sched` experiment and a `staticcheck` job — run those targets
# too before pushing anything non-trivial (staticcheck downloads the
# tool on first use, so it needs the network once).

GO ?= go

.PHONY: build test race vet staticcheck docs-check bench-smoke bench bench-sched bench-serve bench-canary bench-dist bench-kernels bench-tune benchdiff flake serve serve-smoke dist-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet; CI runs it on every push. Uses the PATH
# install when present, otherwise runs the pinned version via go run
# (no PATH assumptions).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...; \
	fi

# The documentation gate: vet, enforced gofmt, and the doccheck tool,
# which fails on any missing package overview or undocumented exported
# identifier in the public packages. CI runs this on every push, so
# `go doc keystone` / `go doc keystone/serve` stay complete.
docs-check: vet
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt -l flags:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/doccheck keystone keystone/serve keystone/registry keystone/dist keystone/tune internal/linalg internal/linalg/kernels

# A short benchmark pass at Quick scale: compiles every benchmark and
# runs each once, catching bit-rot without CI-hostile runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Smoke the schedule-plan benchmark: the branchy-DAG experiment where
# the makespan-aware pin set must beat the sequential-model pin set,
# on a single-proc and a multi-proc schedule.
bench-sched:
	GOMAXPROCS=1 $(GO) run ./cmd/keybench -exp sched
	GOMAXPROCS=4 $(GO) run ./cmd/keybench -exp sched

# The serving autotuner experiment: static batcher limits versus the
# SLO-driven tuner against a p95 target, on a live in-process server
# under closed-loop load.
bench-serve:
	$(GO) run ./cmd/keybench -exp serve

# The rollout-safety experiment: a degraded candidate caught at a 10%
# canary fraction and aborted with zero failed requests, then admission
# control holding p95 near the SLO under 4x overload while the
# unprotected server collapses.
bench-canary:
	$(GO) run ./cmd/keybench -exp canary

# The distributed-fit experiment: measured data-parallel speedup at 1
# vs 2 workers on a latency-bound pipeline, checked against the
# extended makespan simulator's ranking; BENCH_dist.json lands in /tmp.
bench-dist:
	$(GO) run ./cmd/keybench -exp dist -benchout /tmp/keystone-bench

# The kernel-backend experiment: reference vs blocked GEMM/TMul/QR/SVD
# microbenchmarks at GOMAXPROCS 1 and 4, measured-dispatch checks, and
# end-to-end VOC/CIFAR fit deltas; BENCH_kernels.json lands in
# /tmp/keystone-bench for benchdiff.
bench-kernels:
	$(GO) run ./cmd/keybench -exp kernels -benchout /tmp/keystone-bench

# The hyperparameter-search experiment: shared vs isolated prefix-cache
# search wall time over a solver grid (the tracked shared_speedup
# metric), winner bit-identity against a standalone fit, and a halving
# search whose winner auto-deploys to a live route; BENCH_tune.json
# lands in /tmp/keystone-bench for benchdiff.
bench-tune:
	$(GO) run ./cmd/keybench -exp tune -benchout /tmp/keystone-bench

# The perf regression gate: compares the freshly generated kernel and
# tune numbers against the committed baselines in bench/baseline,
# failing on any tracked metric that regresses past 15%.
benchdiff: bench-kernels bench-tune bench-dist
	$(GO) run ./cmd/benchdiff -fresh /tmp/keystone-bench

# Flake sweep: the timing- and socket-sensitive suites (dist chaos
# tests, tune deadlines) repeated under the race detector at both
# scheduler widths. Any order/timing dependence shows up here long
# before it flakes in CI.
flake:
	GOMAXPROCS=1 $(GO) test -race -count=5 ./keystone/dist/ ./keystone/tune/
	GOMAXPROCS=4 $(GO) test -race -count=5 ./keystone/dist/ ./keystone/tune/

# The HTTP inference server (trains text + vision pipelines at startup).
serve:
	$(GO) run ./cmd/keyserve -routes text,vision

# End-to-end serving smoke: builds and boots a real keyserve process,
# exercises /predict, /predict/batch, the vision route, a live hot-swap
# under concurrent load, rollback, /versions and /stats, then drains
# gracefully. Pure Go driver — no curl dependency.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# End-to-end cluster smoke: builds keyworker, boots a coordinator plus
# two real worker processes, fits distributed (bit-identical to the
# single-process oracle), ships an artifact to both serving replicas,
# routes predictions through the consistent-hash router, pushes rollout
# state, kills one worker and verifies degraded-but-serving.
dist-smoke:
	$(GO) run ./cmd/distsmoke

ci: docs-check build race bench-smoke benchdiff serve-smoke dist-smoke
