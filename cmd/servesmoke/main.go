// servesmoke is the end-to-end serving smoke test behind `make
// serve-smoke`: it builds and boots a real keyserve process (text +
// vision routes, autotuner on), exercises /predict, /predict/batch, the
// vision route, a live hot-swap under concurrent load, rollback,
// /versions and /stats, then shuts the server down gracefully and
// verifies a clean exit. Pure Go — no curl dependency — so it runs
// identically in CI and locally.
//
//	go run ./cmd/servesmoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesmoke: ")
	if err := run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Print("PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "keyserve")
	log.Print("building keyserve...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/keyserve")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build keyserve: %w", err)
	}

	port, err := freePort()
	if err != nil {
		return err
	}
	base := fmt.Sprintf("http://127.0.0.1:%d", port)

	// Small training sizes keep the boot under a few seconds; the
	// autotuner flag proves the SLO path boots.
	cmd := exec.Command(bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-routes", "text,vision",
		"-train-docs", "400", "-features", "1500", "-iters", "6",
		"-train-images", "60", "-image-size", "16", "-image-classes", "3",
		"-target-p95", "25ms",
	)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start keyserve: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	// Kill is a no-op (ErrProcessDone) once the process has exited, and
	// unlike inspecting ProcessState it does not race with Wait.
	defer cmd.Process.Kill()

	if err := waitHealthy(base, exited, 120*time.Second); err != nil {
		return err
	}
	log.Print("server healthy; exercising endpoints")

	// Single prediction on the default (text) route, both paths.
	var pred struct {
		Label  string    `json:"label"`
		Class  int       `json:"class"`
		Scores []float64 `json:"scores"`
	}
	if err := postJSON(base+"/predict", `{"text":"this product is excellent"}`, &pred); err != nil {
		return fmt.Errorf("/predict: %w", err)
	}
	if pred.Label != "negative" && pred.Label != "positive" {
		return fmt.Errorf("/predict returned label %q, want negative|positive", pred.Label)
	}
	if err := postJSON(base+"/routes/text/predict", `{"text":"broke on arrival"}`, &pred); err != nil {
		return fmt.Errorf("/routes/text/predict: %w", err)
	}

	// Caller-assembled batch.
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := postJSON(base+"/predict/batch", `{"texts":["great item","broke in a day","fine I guess"]}`, &batch); err != nil {
		return fmt.Errorf("/predict/batch: %w", err)
	}
	if len(batch.Results) != 3 {
		return fmt.Errorf("/predict/batch returned %d results, want 3", len(batch.Results))
	}

	// Vision route: a 16x16x3 image, 3-class argmax labels.
	pixels := make([]float64, 16*16*3)
	for i := range pixels {
		pixels[i] = float64(i%16) / 16
	}
	imgBody, _ := json.Marshal(map[string]any{"width": 16, "height": 16, "channels": 3, "pixels": pixels})
	if err := postJSON(base+"/routes/vision/predict", string(imgBody), &pred); err != nil {
		return fmt.Errorf("/routes/vision/predict: %w", err)
	}
	if !strings.HasPrefix(pred.Label, "texture") || len(pred.Scores) != 3 {
		return fmt.Errorf("vision predict = %+v, want texture label over 3 scores", pred)
	}

	// Route listing.
	var routes struct {
		Routes  []string `json:"routes"`
		Default string   `json:"default"`
	}
	if err := getJSON(base+"/routes", &routes); err != nil {
		return fmt.Errorf("/routes: %w", err)
	}
	if len(routes.Routes) != 2 || routes.Default != "text" {
		return fmt.Errorf("/routes = %+v, want [text vision] with default text", routes)
	}

	// Live hot-swap: hammer the text route from 4 clients while POST
	// /routes/text/deploy retrains and swaps. Zero failures allowed.
	log.Print("hot-swap under concurrent load...")
	var stop atomic.Bool
	var requests, failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var p struct {
					Label string `json:"label"`
				}
				if err := postJSON(base+"/predict", `{"text":"steady load"}`, &p); err != nil {
					failures.Add(1)
					log.Printf("hammer request failed: %v", err)
					return
				}
				requests.Add(1)
			}
		}()
	}
	var deployed struct {
		Version int `json:"version"`
	}
	if err := postJSON(base+"/routes/text/deploy", ``, &deployed); err != nil {
		stop.Store(true)
		wg.Wait()
		return fmt.Errorf("/routes/text/deploy: %w", err)
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		return fmt.Errorf("%d requests failed during the hot-swap (%d succeeded)", failures.Load(), requests.Load())
	}
	if deployed.Version != 2 {
		return fmt.Errorf("deploy produced version %d, want 2", deployed.Version)
	}
	log.Printf("hot-swap to v2 with %d concurrent requests, zero failures", requests.Load())

	// Version history shows v2 live, then rollback restores v1's
	// artifact as v3.
	var vers struct {
		Versions []struct {
			ID   int  `json:"id"`
			Live bool `json:"live"`
		} `json:"versions"`
	}
	if err := getJSON(base+"/routes/text/versions", &vers); err != nil {
		return fmt.Errorf("/routes/text/versions: %w", err)
	}
	if len(vers.Versions) != 2 || !vers.Versions[1].Live {
		return fmt.Errorf("version history = %+v, want 2 entries with v2 live", vers.Versions)
	}
	if err := postJSON(base+"/routes/text/rollback", ``, &deployed); err != nil {
		return fmt.Errorf("/routes/text/rollback: %w", err)
	}
	if deployed.Version != 3 {
		return fmt.Errorf("rollback produced version %d, want 3", deployed.Version)
	}

	// Stats across both routes.
	var stats struct {
		Routes map[string]struct {
			Records     int64 `json:"records"`
			LiveVersion int   `json:"live_version"`
			Autotune    bool  `json:"autotune"`
		} `json:"routes"`
	}
	if err := getJSON(base+"/stats", &stats); err != nil {
		return fmt.Errorf("/stats: %w", err)
	}
	text, ok := stats.Routes["text"]
	if !ok || text.LiveVersion != 3 || !text.Autotune {
		return fmt.Errorf("/stats text = %+v, want live_version 3 with autotune on", text)
	}
	if _, ok := stats.Routes["vision"]; !ok {
		return fmt.Errorf("/stats missing vision route")
	}

	// Graceful drain: SIGTERM, clean exit.
	log.Print("draining...")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("keyserve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("keyserve did not exit within 20s of SIGTERM")
	}
	return nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// waitHealthy polls /healthz until the server answers, the process
// exits, or the deadline passes.
func waitHealthy(base string, exited <-chan error, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return fmt.Errorf("keyserve exited during startup: %v", err)
		default:
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("server not healthy after %v", timeout)
}

func postJSON(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
