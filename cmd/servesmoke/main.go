// servesmoke is the end-to-end serving smoke test behind `make
// serve-smoke`: it builds and boots a real keyserve process (text +
// vision routes, autotuner and admission control on), exercises
// /predict, /predict/batch, the vision route, a live hot-swap under
// concurrent load, rollback, a canary rollout (stage at 50%, observe
// both versions serving, promote), an overload burst that must shed
// with 429 + Retry-After, /versions and /stats, then shuts the server
// down gracefully and verifies a clean exit. The first boot runs with
// an artifact registry bound and -save set, so after the drain the
// smoke test also proves the persistence story: it loads the saved
// artifact file in-process, reboots keyserve from the registry's
// text.live tag with a 100ms cold-start budget (load + first
// successful predict — no training), rolls back across the restart via
// the registry's text.previous tag, and deploys by artifact id over
// HTTP. Pure Go — no curl dependency — so it runs identically in CI
// and locally. Any failure (including keyserve dying at startup, e.g.
// its port already bound) exits non-zero immediately, which `make
// serve-smoke` propagates.
//
//	go run ./cmd/servesmoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"keystoneml/keystone"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesmoke: ")
	if err := run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Print("PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "keyserve")
	log.Print("building keyserve...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/keyserve")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build keyserve: %w", err)
	}

	port, err := freePort()
	if err != nil {
		return err
	}
	base := fmt.Sprintf("http://127.0.0.1:%d", port)

	regDir := filepath.Join(tmp, "registry")
	artPath := filepath.Join(tmp, "text.ksart")

	// Small training sizes keep the boot under a few seconds; the
	// autotuner flag proves the SLO path boots. The registry + save
	// flags make every deployed version durable for the restart leg.
	cmd := exec.Command(bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-routes", "text,vision",
		"-train-docs", "400", "-features", "1500", "-iters", "6",
		"-train-images", "60", "-image-size", "16", "-image-classes", "3",
		"-target-p95", "25ms",
		// Admission: ample for the functional legs (≤5 concurrent
		// records), tripped deliberately by the 64-way overload burst.
		"-max-inflight", "8", "-retry-after", "2s",
		"-registry", regDir, "-save", artPath,
	)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start keyserve: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	// Kill is a no-op (ErrProcessDone) once the process has exited, and
	// unlike inspecting ProcessState it does not race with Wait.
	defer cmd.Process.Kill()

	if err := waitHealthy(base, exited, 120*time.Second); err != nil {
		return err
	}
	log.Print("server healthy; exercising endpoints")

	// Single prediction on the default (text) route, both paths.
	var pred struct {
		Label  string    `json:"label"`
		Class  int       `json:"class"`
		Scores []float64 `json:"scores"`
	}
	if err := postJSON(base+"/predict", `{"text":"this product is excellent"}`, &pred); err != nil {
		return fmt.Errorf("/predict: %w", err)
	}
	if pred.Label != "negative" && pred.Label != "positive" {
		return fmt.Errorf("/predict returned label %q, want negative|positive", pred.Label)
	}
	if err := postJSON(base+"/routes/text/predict", `{"text":"broke on arrival"}`, &pred); err != nil {
		return fmt.Errorf("/routes/text/predict: %w", err)
	}

	// Caller-assembled batch.
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := postJSON(base+"/predict/batch", `{"texts":["great item","broke in a day","fine I guess"]}`, &batch); err != nil {
		return fmt.Errorf("/predict/batch: %w", err)
	}
	if len(batch.Results) != 3 {
		return fmt.Errorf("/predict/batch returned %d results, want 3", len(batch.Results))
	}

	// Vision route: a 16x16x3 image, 3-class argmax labels.
	pixels := make([]float64, 16*16*3)
	for i := range pixels {
		pixels[i] = float64(i%16) / 16
	}
	imgBody, _ := json.Marshal(map[string]any{"width": 16, "height": 16, "channels": 3, "pixels": pixels})
	if err := postJSON(base+"/routes/vision/predict", string(imgBody), &pred); err != nil {
		return fmt.Errorf("/routes/vision/predict: %w", err)
	}
	if !strings.HasPrefix(pred.Label, "texture") || len(pred.Scores) != 3 {
		return fmt.Errorf("vision predict = %+v, want texture label over 3 scores", pred)
	}

	// Route listing.
	var routes struct {
		Routes  []string `json:"routes"`
		Default string   `json:"default"`
	}
	if err := getJSON(base+"/routes", &routes); err != nil {
		return fmt.Errorf("/routes: %w", err)
	}
	if len(routes.Routes) != 2 || routes.Default != "text" {
		return fmt.Errorf("/routes = %+v, want [text vision] with default text", routes)
	}

	// Live hot-swap: hammer the text route from 4 clients while POST
	// /routes/text/deploy retrains and swaps. Zero failures allowed.
	log.Print("hot-swap under concurrent load...")
	var stop atomic.Bool
	var requests, failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var p struct {
					Label string `json:"label"`
				}
				if err := postJSON(base+"/predict", `{"text":"steady load"}`, &p); err != nil {
					failures.Add(1)
					log.Printf("hammer request failed: %v", err)
					return
				}
				requests.Add(1)
			}
		}()
	}
	var deployed struct {
		Version int `json:"version"`
	}
	if err := postJSON(base+"/routes/text/deploy", ``, &deployed); err != nil {
		stop.Store(true)
		wg.Wait()
		return fmt.Errorf("/routes/text/deploy: %w", err)
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		return fmt.Errorf("%d requests failed during the hot-swap (%d succeeded)", failures.Load(), requests.Load())
	}
	if deployed.Version != 2 {
		return fmt.Errorf("deploy produced version %d, want 2", deployed.Version)
	}
	log.Printf("hot-swap to v2 with %d concurrent requests, zero failures", requests.Load())

	// Version history shows v2 live, then rollback restores v1's
	// artifact as v3.
	var vers struct {
		Versions []struct {
			ID   int  `json:"id"`
			Live bool `json:"live"`
		} `json:"versions"`
	}
	if err := getJSON(base+"/routes/text/versions", &vers); err != nil {
		return fmt.Errorf("/routes/text/versions: %w", err)
	}
	if len(vers.Versions) != 2 || !vers.Versions[1].Live {
		return fmt.Errorf("version history = %+v, want 2 entries with v2 live", vers.Versions)
	}
	if err := postJSON(base+"/routes/text/rollback", ``, &deployed); err != nil {
		return fmt.Errorf("/routes/text/rollback: %w", err)
	}
	if deployed.Version != 3 {
		return fmt.Errorf("rollback produced version %d, want 3", deployed.Version)
	}

	// Stats across both routes.
	var stats struct {
		Routes map[string]struct {
			Records     int64 `json:"records"`
			LiveVersion int   `json:"live_version"`
			Autotune    bool  `json:"autotune"`
		} `json:"routes"`
	}
	if err := getJSON(base+"/stats", &stats); err != nil {
		return fmt.Errorf("/stats: %w", err)
	}
	text, ok := stats.Routes["text"]
	if !ok || text.LiveVersion != 3 || !text.Autotune {
		return fmt.Errorf("/stats text = %+v, want live_version 3 with autotune on", text)
	}
	if _, ok := stats.Routes["vision"]; !ok {
		return fmt.Errorf("/stats missing vision route")
	}

	// Canary rollout: stage a refit candidate at 50%, drive traffic until
	// both versions have served, inspect the comparison, promote. The
	// control plane and every data-plane request must succeed throughout.
	log.Print("canary: stage at 50%, observe, promote...")
	var staged struct {
		CandidateVersion int     `json:"candidate_version"`
		Fraction         float64 `json:"fraction"`
	}
	if err := postJSON(base+"/routes/text/canary", `{"fraction":0.5}`, &staged); err != nil {
		return fmt.Errorf("/routes/text/canary: %w", err)
	}
	if staged.CandidateVersion != 4 || staged.Fraction != 0.5 {
		return fmt.Errorf("canary staged %+v, want candidate version 4 at 0.5", staged)
	}
	var canary struct {
		Mode      string `json:"mode"`
		Primary   struct{ Served int64 }
		Candidate struct{ Served int64 }
	}
	for i := 0; i < 200; i++ {
		if err := postJSON(base+"/predict", `{"text":"canary traffic"}`, nil); err != nil {
			return fmt.Errorf("predict under canary: %w", err)
		}
		if i%50 == 49 {
			if err := getJSON(base+"/routes/text/canary", &canary); err != nil {
				return fmt.Errorf("/routes/text/canary stats: %w", err)
			}
			if canary.Primary.Served > 0 && canary.Candidate.Served > 0 {
				break
			}
		}
	}
	if canary.Mode != "canary" || canary.Primary.Served == 0 || canary.Candidate.Served == 0 {
		return fmt.Errorf("canary comparison %+v, want traffic on both versions", canary)
	}
	var promoted struct {
		Version int `json:"version"`
	}
	if err := postJSON(base+"/routes/text/promote", ``, &promoted); err != nil {
		return fmt.Errorf("/routes/text/promote: %w", err)
	}
	if promoted.Version != 4 {
		return fmt.Errorf("promote produced version %d, want 4", promoted.Version)
	}
	if err := postJSON(base+"/predict", `{"text":"post promote"}`, &pred); err != nil {
		return fmt.Errorf("predict after promote: %w", err)
	}
	log.Printf("canary: primary served %d, candidate %d, promoted to v4",
		canary.Primary.Served, canary.Candidate.Served)

	// Overload: a 64-way burst against the 8-record in-flight cap must
	// shed with 429 + Retry-After (and nothing else may fail), and the
	// route must serve normally right after.
	log.Print("overload burst against admission control...")
	var ok200, shed429, unexpected atomic.Int64
	var burst sync.WaitGroup
	for i := 0; i < 64; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			resp, err := http.Post(base+"/predict", "application/json",
				strings.NewReader(`{"text":"overload"}`))
			if err != nil {
				unexpected.Add(1)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					unexpected.Add(1)
					return
				}
				shed429.Add(1)
			default:
				unexpected.Add(1)
			}
		}()
	}
	burst.Wait()
	if unexpected.Load() != 0 {
		return fmt.Errorf("overload burst: %d unexpected outcomes (%d ok, %d shed)",
			unexpected.Load(), ok200.Load(), shed429.Load())
	}
	if ok200.Load() == 0 || shed429.Load() == 0 {
		return fmt.Errorf("overload burst: %d ok, %d shed; want both nonzero", ok200.Load(), shed429.Load())
	}
	if err := postJSON(base+"/predict", `{"text":"after the storm"}`, &pred); err != nil {
		return fmt.Errorf("predict after overload: %w", err)
	}
	log.Printf("overload: %d served, %d shed with 429 + Retry-After", ok200.Load(), shed429.Load())

	// Graceful drain: SIGTERM, clean exit.
	log.Print("draining...")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("keyserve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("keyserve did not exit within 20s of SIGTERM")
	}

	return artifactLeg(bin, regDir, artPath)
}

// artifactLeg is the persistence half of the smoke test, run after the
// trained server has drained: the saved artifact file must round-trip
// in-process, and a fresh keyserve booted from the registry's text.live
// tag must answer its first predict inside the cold-start budget, roll
// back across the restart via the text.previous tag, and accept a
// deploy addressed by artifact id.
func artifactLeg(bin, regDir, artPath string) error {
	log.Print("loading saved artifact in-process...")
	loaded, err := keystone.Load[string, []float64](artPath)
	if err != nil {
		return fmt.Errorf("load saved artifact %s: %w", artPath, err)
	}
	if _, err := loaded.Transform(context.Background(), "saved artifact smoke"); err != nil {
		return fmt.Errorf("transform through saved artifact: %w", err)
	}

	// Boot from the registry with no training flags in play: the whole
	// startup is decode + bind. The budget is generous for a decode
	// measured in single-digit milliseconds but tight enough that any
	// accidental retraining (seconds) fails loudly. One retry absorbs a
	// cold filesystem or a scheduler hiccup on a loaded CI machine.
	const coldBudget = 100 * time.Millisecond
	var (
		cold    time.Duration
		cmd2    *exec.Cmd
		exited2 chan error
		base2   string
	)
	for attempt := 1; ; attempt++ {
		port, err := freePort()
		if err != nil {
			return err
		}
		base2 = fmt.Sprintf("http://127.0.0.1:%d", port)
		cmd2 = exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-routes", "text",
			"-registry", regDir, "-artifact", "text.live",
		)
		cmd2.Stdout, cmd2.Stderr = os.Stderr, os.Stderr
		start := time.Now()
		if err := cmd2.Start(); err != nil {
			return fmt.Errorf("restart keyserve: %w", err)
		}
		exited2 = make(chan error, 1)
		go func() { exited2 <- cmd2.Wait() }()
		cold, err = firstPredict(base2, exited2, start)
		if err != nil {
			cmd2.Process.Kill()
			return err
		}
		if cold <= coldBudget || attempt == 2 {
			break
		}
		log.Printf("cold start %v over the %v budget; retrying once", cold, coldBudget)
		cmd2.Process.Signal(syscall.SIGTERM)
		<-exited2
	}
	defer cmd2.Process.Kill()
	if cold > coldBudget {
		return fmt.Errorf("artifact cold start took %v, budget %v", cold, coldBudget)
	}
	log.Printf("artifact cold start: first successful predict %v after exec", cold.Round(time.Millisecond))

	// Rollback with zero in-memory history: the rebooted route must fall
	// back to the registry's text.previous tag (written by the first
	// process before its last swap) and land on a different artifact
	// than the one it booted from.
	var rb struct {
		Version int `json:"version"`
	}
	if err := postJSON(base2+"/routes/text/rollback", ``, &rb); err != nil {
		return fmt.Errorf("rollback across restart: %w", err)
	}
	if rb.Version != 2 {
		return fmt.Errorf("rollback across restart produced version %d, want 2", rb.Version)
	}
	var vers struct {
		Versions []struct {
			ID       int    `json:"id"`
			Live     bool   `json:"live"`
			Artifact string `json:"artifact"`
		} `json:"versions"`
	}
	if err := getJSON(base2+"/routes/text/versions", &vers); err != nil {
		return fmt.Errorf("/routes/text/versions after restart: %w", err)
	}
	if len(vers.Versions) != 2 || !vers.Versions[1].Live {
		return fmt.Errorf("post-restart history = %+v, want 2 entries with v2 live", vers.Versions)
	}
	bootArt, rbArt := vers.Versions[0].Artifact, vers.Versions[1].Artifact
	if bootArt == "" || rbArt == "" || bootArt == rbArt {
		return fmt.Errorf("post-restart artifacts boot=%q rollback=%q, want two distinct ids", bootArt, rbArt)
	}
	var pred struct {
		Label string `json:"label"`
	}
	if err := postJSON(base2+"/predict", `{"text":"rolled back across restart"}`, &pred); err != nil {
		return fmt.Errorf("predict after cross-restart rollback: %w", err)
	}

	// Deploy addressed by artifact id over HTTP: flip back to the boot
	// artifact without any training.
	var dep struct {
		Version int `json:"version"`
	}
	if err := postJSON(base2+"/routes/text/deploy", fmt.Sprintf(`{"artifact":%q}`, bootArt), &dep); err != nil {
		return fmt.Errorf("deploy by artifact id: %w", err)
	}
	if dep.Version != 3 {
		return fmt.Errorf("deploy by artifact id produced version %d, want 3", dep.Version)
	}
	if err := getJSON(base2+"/routes/text/versions", &vers); err != nil {
		return fmt.Errorf("/routes/text/versions after artifact deploy: %w", err)
	}
	if len(vers.Versions) != 3 || vers.Versions[2].Artifact != bootArt {
		return fmt.Errorf("artifact deploy landed %+v, want v3 carrying artifact %s", vers.Versions, bootArt)
	}
	if err := postJSON(base2+"/predict", `{"text":"serving the redeployed artifact"}`, &pred); err != nil {
		return fmt.Errorf("predict after artifact deploy: %w", err)
	}
	log.Printf("registry restart: rollback to %.12s, redeploy of %.12s, all without retraining", rbArt, bootArt)

	log.Print("draining restarted server...")
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal restarted keyserve: %w", err)
	}
	select {
	case err := <-exited2:
		if err != nil {
			return fmt.Errorf("restarted keyserve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("restarted keyserve did not exit within 20s of SIGTERM")
	}
	return nil
}

// firstPredict hammers /predict with a tight poll until the first
// successful response, returning the elapsed time since start. It is
// the cold-start stopwatch: keyserve binds its port before loading, so
// early attempts see connection refused or a hung read, and the first
// 200 marks load + register + serve all done.
func firstPredict(base string, exited <-chan error, start time.Time) (time.Duration, error) {
	client := &http.Client{Timeout: 500 * time.Millisecond}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return 0, fmt.Errorf("keyserve exited during artifact boot: %v", err)
		default:
		}
		resp, err := client.Post(base+"/predict", "application/json",
			strings.NewReader(`{"text":"cold start probe"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return time.Since(start), nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("no successful predict within 10s of artifact boot")
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// waitHealthy polls /healthz until the server answers, the process
// exits, or the deadline passes. keyserve binds its port before
// training, so each poll needs its own short timeout: the TCP connect
// succeeds immediately while the HTTP response only arrives once
// training finishes. A keyserve that dies during startup (port already
// bound, training failure) surfaces here as a fast, clear error.
func waitHealthy(base string, exited <-chan error, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return fmt.Errorf("keyserve exited during startup: %v (see its log above — a bound port fails fast there)", err)
		default:
		}
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("server not healthy after %v", timeout)
}

func postJSON(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
