// doccheck is the documentation gate behind `make docs-check`: it
// parses the given package directories (non-test files only) and fails
// if a package lacks a `// Package ...` overview or any exported
// identifier — function, method on an exported type, type, constant or
// variable — lacks a doc comment. A doc comment on a const/var/type
// group covers the group's members, matching godoc rendering.
//
//	go run ./cmd/doccheck keystone keystone/serve
//
// It exits non-zero listing every violation as file:line, so the gate
// both enforces and locates.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck <package-dir> [package-dir...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var violations int
	for _, dir := range flag.Args() {
		violations += checkDir(dir)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d missing doc comment(s)\n", violations)
		os.Exit(1)
	}
}

// checkDir parses one directory as a package and reports violations.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	count := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no `// Package %s ...` overview\n", dir, pkg.Name, pkg.Name)
			count++
		}
		for name, f := range pkg.Files {
			count += checkFile(fset, name, f)
		}
	}
	return count
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, name string, f *ast.File) int {
	count := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s undocumented\n", fset.Position(pos), what)
		count++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				report(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
			} else {
				report(d.Pos(), "func "+d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				continue // a group comment documents the group
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil {
						report(sp.Pos(), "type "+sp.Name.Name)
					}
				case *ast.ValueSpec:
					if sp.Doc != nil {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							report(n.Pos(), kind+" "+n.Name)
						}
					}
				}
			}
		}
	}
	return count
}

// receiverName extracts the receiver's base type name (unwrapping
// pointers and type parameters).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
