// Command keybench regenerates every table and figure of the KeystoneML
// paper's evaluation section on synthetic workloads. Run all experiments
// or a single one:
//
//	keybench                 # everything at quick scale
//	keybench -exp fig9       # one experiment
//	keybench -scale full     # larger sizes, sharper ratios
//
// Experiments: table1 fig6 table2 fig7 costmodel table3 table5 fig8
// table6 fig9 fig10 fig11 fig12 parallel sched serve canary dist
// kernels tune.
//
// With -benchout DIR each experiment additionally writes its headline
// numbers as DIR/BENCH_<name>.json for machine consumption.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"keystoneml/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig6, table2, fig7, costmodel, table3, table5, fig8, table6, fig9, fig10, fig11, fig12, parallel, sched, serve, canary, dist, kernels, tune)")
	benchOut := flag.String("benchout", "", "directory for machine-readable BENCH_*.json results (empty = off)")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	flag.Parse()

	scale := experiments.Quick
	if strings.EqualFold(*scaleFlag, "full") {
		scale = experiments.Full
	}
	experiments.SetBenchDir(*benchOut)
	w := os.Stdout

	runners := []struct {
		name string
		run  func()
	}{
		{"table1", func() { experiments.Table1(w) }},
		{"fig6", func() { experiments.Figure6(w, scale) }},
		{"table2", func() { experiments.Table2(w, scale) }},
		{"fig7", func() { experiments.Figure7(w, scale) }},
		{"costmodel", func() { experiments.CostModelEval(w, scale) }},
		{"table3", func() { experiments.Table3(w, scale) }},
		{"table5", func() { experiments.Table5(w, scale) }},
		{"fig8", func() { experiments.Figure8(w, scale) }},
		{"table6", func() { experiments.Table6(w) }},
		{"fig9", func() { experiments.Figure9(w, scale) }},
		{"fig10", func() { experiments.Figure10(w, scale) }},
		{"fig11", func() { experiments.Figure11(w, scale) }},
		{"fig12", func() { experiments.Figure12(w) }},
		{"parallel", func() { experiments.ParallelExec(w, scale) }},
		{"sched", func() { experiments.SchedulePlanExp(w, scale) }},
		{"serve", func() { experiments.ServeAutotune(w, scale) }},
		{"canary", func() { experiments.ServeCanary(w, scale) }},
		{"dist", func() { experiments.DistFit(w, scale) }},
		{"kernels", func() { experiments.Kernels(w, scale) }},
		{"tune", func() { experiments.TuneSearch(w, scale) }},
	}

	ran := false
	for _, r := range runners {
		if *exp == "all" || *exp == r.name {
			r.run()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
