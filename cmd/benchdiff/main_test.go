package main

import (
	"strings"
	"testing"
)

func countFails(vs []verdict) int {
	n := 0
	for _, v := range vs {
		if v.fail {
			n++
		}
	}
	return n
}

func TestCompareBenchRegression(t *testing.T) {
	specs := []metricSpec{{"speedup", higherBetter}, {"lat_sec", lowerBetter}}
	base := map[string]any{"speedup": 4.0, "lat_sec": 1.0}

	// Within threshold and improvements pass.
	ok := map[string]any{"speedup": 3.6, "lat_sec": 1.1}
	if got := countFails(compareBench("b", base, ok, specs, 0.15)); got != 0 {
		t.Errorf("within-threshold run failed %d metrics", got)
	}
	// Higher-better metric dropping past threshold fails.
	slow := map[string]any{"speedup": 3.0, "lat_sec": 1.0}
	if got := countFails(compareBench("b", base, slow, specs, 0.15)); got != 1 {
		t.Errorf("speedup regression: %d failures, want 1", got)
	}
	// Lower-better metric rising past threshold fails.
	lag := map[string]any{"speedup": 4.0, "lat_sec": 1.3}
	if got := countFails(compareBench("b", base, lag, specs, 0.15)); got != 1 {
		t.Errorf("latency regression: %d failures, want 1", got)
	}
}

func TestCompareBenchMissingMetric(t *testing.T) {
	specs := []metricSpec{{"speedup", higherBetter}}
	base := map[string]any{"speedup": 2.0}
	vs := compareBench("b", base, map[string]any{}, specs, 0.15)
	if countFails(vs) != 1 || !strings.Contains(vs[0].text, "missing") {
		t.Errorf("dropped metric must fail: %+v", vs)
	}
	// Metric new in fresh (absent from baseline) passes with a note.
	vs = compareBench("b", map[string]any{}, base, specs, 0.15)
	if countFails(vs) != 0 || !strings.Contains(vs[0].text, "no baseline") {
		t.Errorf("new metric must pass: %+v", vs)
	}
}

func TestTrackedManifestCoversKernels(t *testing.T) {
	specs, ok := tracked["BENCH_kernels.json"]
	if !ok || len(specs) < 4 {
		t.Fatalf("kernels manifest missing or too small: %v", specs)
	}
	for _, s := range specs {
		if s.dir != higherBetter {
			t.Errorf("%s: kernel metrics are speedups (higher better)", s.name)
		}
	}
}

func TestTrackedManifestCoversTune(t *testing.T) {
	specs, ok := tracked["BENCH_tune.json"]
	if !ok || len(specs) == 0 {
		t.Fatal("tune manifest missing")
	}
	found := false
	for _, s := range specs {
		if s.name == "shared_speedup" {
			found = true
			if s.dir != higherBetter {
				t.Error("shared_speedup is a speedup (higher better)")
			}
		}
	}
	if !found {
		t.Error("tune manifest must track shared_speedup")
	}
}
