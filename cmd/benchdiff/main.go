// Command benchdiff guards measured performance: it compares freshly
// generated BENCH_*.json files (keybench -benchout) against the
// committed baselines under bench/baseline and fails when a tracked
// metric regresses past the threshold.
//
//	benchdiff -fresh /tmp/bench                # compare against bench/baseline
//	benchdiff -fresh /tmp/bench -threshold 0.3 # looser gate
//
// Only metrics named in the tracked manifest are compared, so
// experiments can add informational fields freely. A missing baseline
// file is a bootstrap pass (the fresh file is the first measurement and
// should be committed as the new baseline); a tracked metric missing
// from a fresh file is a failure, so metrics cannot silently vanish.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

type direction int

const (
	higherBetter direction = iota
	lowerBetter
)

type metricSpec struct {
	name string
	dir  direction
}

// tracked is the regression manifest: per benchmark file, the headline
// metrics the gate watches.
var tracked = map[string][]metricSpec{
	"BENCH_kernels.json": {
		{"gemm_speedup_small", higherBetter},
		{"gemm_speedup_large", higherBetter},
		{"tmul_speedup_large", higherBetter},
		{"qr_speedup", higherBetter},
		{"tsvd_speedup", higherBetter},
		{"e2e_speedup_cifar", higherBetter},
	},
	"BENCH_tune.json": {
		{"shared_speedup", higherBetter},
	},
	"BENCH_dist.json": {
		{"speedup", higherBetter},
		{"recovery_overhead", lowerBetter},
	},
}

func main() {
	baseDir := flag.String("baseline", "bench/baseline", "directory of committed baseline BENCH_*.json files")
	freshDir := flag.String("fresh", "", "directory of freshly generated BENCH_*.json files (required)")
	threshold := flag.Float64("threshold", 0.15, "relative regression that fails the gate")
	flag.Parse()
	if *freshDir == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		os.Exit(2)
	}

	failures := 0
	for name, specs := range tracked {
		fresh, err := loadBench(filepath.Join(*freshDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", name, err)
			failures++
			continue
		}
		baseline, err := loadBench(filepath.Join(*baseDir, name))
		if os.IsNotExist(err) {
			fmt.Printf("%s: no baseline yet — commit the fresh file to %s to start tracking\n", name, *baseDir)
			continue
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", name, err)
			failures++
			continue
		}
		for _, line := range compareBench(name, baseline, fresh, specs, *threshold) {
			fmt.Println(line.text)
			if line.fail {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) past %.0f%%\n", failures, 100**threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: all tracked metrics within threshold")
}

func loadBench(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return m, nil
}

type verdict struct {
	text string
	fail bool
}

// compareBench checks each tracked metric of one benchmark file and
// returns one verdict per metric. A regression is a relative change
// past threshold in the losing direction; improvements and small noise
// pass.
func compareBench(name string, baseline, fresh map[string]any, specs []metricSpec, threshold float64) []verdict {
	var out []verdict
	for _, s := range specs {
		base, okB := asFloat(baseline[s.name])
		cur, okF := asFloat(fresh[s.name])
		switch {
		case !okF:
			out = append(out, verdict{fmt.Sprintf("%s %s: missing from fresh results", name, s.name), true})
		case !okB:
			out = append(out, verdict{fmt.Sprintf("%s %s: new metric %.3g (no baseline value)", name, s.name, cur), false})
		default:
			change := (cur - base) / base
			regressed := change < -threshold
			if s.dir == lowerBetter {
				regressed = change > threshold
			}
			status := "ok"
			if regressed {
				status = "REGRESSION"
			}
			out = append(out, verdict{
				fmt.Sprintf("%s %s: %.3g -> %.3g (%+.1f%%) %s", name, s.name, base, cur, 100*change, status),
				regressed,
			})
		}
	}
	return out
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	if !ok || f == 0 {
		return f, false
	}
	return f, true
}
