// distsmoke is the end-to-end distributed smoke test behind `make
// dist-smoke`: it builds the keyworker binary, boots a 2-worker cluster
// as real processes (wire + serving replica each, sharing one artifact
// registry), runs a distributed fit of the Figure 2 text pipeline and
// checks its predictions are bit-identical to the single-process
// oracle, encodes and registers the fitted artifact, ships the artifact
// id to every replica via the wire serve op, fronts the replicas with
// the consistent-hash router, predicts through it, pushes shared
// rollout state (admission caps) and reads it back from both replicas,
// then kills one worker process and verifies the router degrades to the
// survivor — still serving, same answers. Pure Go, no external
// dependencies, exits non-zero on the first failure.
//
//	go run ./cmd/distsmoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/dist"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distsmoke: ")
	if err := run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Print("PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "distsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "keyworker")
	log.Print("building keyworker...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/keyworker")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build keyworker: %w", err)
	}
	regDir := filepath.Join(tmp, "registry")

	// Boot 2 worker processes, each with a wire port and a replica port.
	const nWorkers = 2
	var wireAddrs []string
	procs := make([]*exec.Cmd, 0, nWorkers)
	exits := make([]chan error, 0, nWorkers)
	defer func() {
		for _, p := range procs {
			p.Process.Kill() //nolint:errcheck // best-effort teardown
		}
	}()
	for i := 0; i < nWorkers; i++ {
		wirePort, err := freePort()
		if err != nil {
			return err
		}
		httpPort, err := freePort()
		if err != nil {
			return err
		}
		wire := fmt.Sprintf("127.0.0.1:%d", wirePort)
		cmd := exec.Command(bin,
			"-listen", wire,
			"-http", fmt.Sprintf("127.0.0.1:%d", httpPort),
			"-registry", regDir,
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start worker %d: %w", i, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		procs = append(procs, cmd)
		exits = append(exits, exited)
		wireAddrs = append(wireAddrs, wire)
	}
	cl, err := dialCluster(wireAddrs, exits, 30*time.Second)
	if err != nil {
		return err
	}
	defer cl.Close()
	log.Printf("%d workers up: %v", cl.Workers(), wireAddrs)

	// Distributed fit vs the single-process oracle, bit for bit.
	// LevelPipeline keeps operator selection out of the comparison
	// (operator choice depends on measured timings and may legitimately
	// differ run to run); the distributed-execution equivalence being
	// proven here is level-independent.
	train := keystone.SyntheticReviews(200, 1)
	test := keystone.SyntheticReviews(40, 2)
	p := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 600, Iterations: 5})

	log.Print("single-process oracle fit...")
	local, err := p.Fit(context.Background(), train.Records, train.Labels,
		keystone.WithOptimizerLevel(keystone.LevelPipeline),
		keystone.WithSampleSizes(16, 32),
		keystone.WithPartitions(4),
		keystone.WithWorkers(1))
	if err != nil {
		return fmt.Errorf("local fit: %w", err)
	}
	log.Print("distributed fit over 2 workers...")
	distFit, rep, err := dist.Fit(context.Background(), cl, p, train.Records, train.Labels, dist.FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
		Partitions:  4,
	})
	if err != nil {
		return fmt.Errorf("dist fit: %w", err)
	}
	log.Printf("dist fit: %d workers, %d partitions, optimize %v, train %v, modeled makespan %.3gs, cached %v",
		rep.Workers, rep.Partitions, rep.OptimizeTime.Round(time.Millisecond),
		rep.TrainTime.Round(time.Millisecond), rep.ModeledMakespan, rep.CacheSet)
	for i, doc := range test.Records {
		want, err := local.Transform(context.Background(), doc)
		if err != nil {
			return err
		}
		got, err := distFit.Transform(context.Background(), doc)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("doc %d: dist prediction %v != oracle %v", i, got, want)
		}
	}
	log.Printf("%d test predictions bit-identical to the oracle", len(test.Records))

	// Chaos leg: SIGKILL a worker process mid-fit (deterministically, at
	// the 3rd apply frame headed to worker 0, via the fault plan's sever
	// hook) and require the fit to complete through partition
	// reassignment + lineage replay with predictions still bit-identical
	// to the single-process oracle.
	if err := chaosFit(bin, p, local, train, test); err != nil {
		return fmt.Errorf("chaos leg: %w", err)
	}

	// Register the fitted artifact and ship its id to every replica.
	reg, err := registry.Open(regDir)
	if err != nil {
		return err
	}
	blob, err := keystone.Encode(distFit)
	if err != nil {
		return err
	}
	id, err := reg.Put(blob)
	if err != nil {
		return err
	}
	if err := reg.Tag("text.live", id); err != nil {
		return err
	}
	replicas, err := cl.ServeRoute("text", "text", id)
	if err != nil {
		return fmt.Errorf("serve route: %w", err)
	}
	log.Printf("artifact %.12s serving on replicas %v", id, replicas)

	router, err := dist.NewRouter(dist.RouterOptions{Replicas: replicas, HealthInterval: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer router.Close()
	front := httptest.NewServer(router)
	defer front.Close()

	doc := test.Records[0]
	want, err := distFit.Transform(context.Background(), doc)
	if err != nil {
		return err
	}
	var pred struct {
		Label  string    `json:"label"`
		Scores []float64 `json:"scores"`
	}
	body, _ := json.Marshal(map[string]string{"text": doc})
	if err := postJSON(front.URL+"/routes/text/predict", string(body), &pred); err != nil {
		return fmt.Errorf("predict via router: %w", err)
	}
	if !reflect.DeepEqual(pred.Scores, want) {
		return fmt.Errorf("router prediction %v != direct %v", pred.Scores, want)
	}
	log.Printf("router prediction matches: %q -> %s", firstWords(doc), pred.Label)

	// Push shared rollout state and read it back from every replica.
	cap := 16
	if err := router.PushRollout(context.Background(), "text", serve.RolloutState{MaxInFlight: &cap}); err != nil {
		return fmt.Errorf("push rollout: %w", err)
	}
	for _, addr := range replicas {
		var st struct {
			MaxInFlight *int `json:"max_in_flight"`
		}
		if err := getJSON(addr+"/routes/text/rollout", &st); err != nil {
			return fmt.Errorf("rollout state from %s: %w", addr, err)
		}
		if st.MaxInFlight == nil || *st.MaxInFlight != cap {
			return fmt.Errorf("replica %s rollout state = %+v, want max_in_flight %d", addr, st, cap)
		}
	}
	log.Printf("rollout state (max_in_flight=%d) propagated to all replicas", cap)

	// Kill one worker process: the router must keep serving (degraded)
	// with identical answers from the survivor.
	log.Print("killing worker 0...")
	if err := procs[0].Process.Kill(); err != nil {
		return err
	}
	<-exits[0]
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := postJSON(front.URL+"/routes/text/predict", string(body), &pred)
		if err == nil {
			if !reflect.DeepEqual(pred.Scores, want) {
				return fmt.Errorf("degraded prediction %v != direct %v", pred.Scores, want)
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router never recovered after losing a worker: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The health loop marks the killed worker's replica down shortly.
	healthy := nWorkers
	for healthy == nWorkers {
		healthy = 0
		for _, rs := range router.Replicas() {
			if rs.Healthy {
				healthy++
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("killed replica never marked down")
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Printf("degraded but serving: %d/%d replicas healthy, predictions unchanged", healthy, nWorkers)

	// Graceful shutdown of the survivor.
	procs[1].Process.Signal(os.Interrupt) //nolint:errcheck // fallback kill in the defer
	select {
	case <-exits[1]:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("worker 1 did not exit on SIGINT")
	}
	return nil
}

// chaosFit boots a fresh pair of fit-only worker processes, arms a
// fault plan that severs the 3rd apply frame headed to worker 0 and
// SIGKILLs the process behind it, and requires the distributed fit to
// complete anyway — reassigning the dead worker's partitions, replaying
// their lineage on the survivor — with predictions bit-identical to the
// single-process oracle.
func chaosFit(bin string, p *keystone.Pipeline[string, []float64], local *keystone.Fitted[string, []float64], train, test keystone.Dataset[string]) error {
	const nWorkers = 2
	var wireAddrs []string
	procs := make([]*exec.Cmd, 0, nWorkers)
	exits := make([]chan error, 0, nWorkers)
	defer func() {
		for _, p := range procs {
			p.Process.Kill() //nolint:errcheck // best-effort teardown
		}
	}()
	for i := 0; i < nWorkers; i++ {
		port, err := freePort()
		if err != nil {
			return err
		}
		wire := fmt.Sprintf("127.0.0.1:%d", port)
		cmd := exec.Command(bin, "-listen", wire)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start chaos worker %d: %w", i, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		procs = append(procs, cmd)
		exits = append(exits, exited)
		wireAddrs = append(wireAddrs, wire)
	}
	probe, err := dialCluster(wireAddrs, exits, 30*time.Second)
	if err != nil {
		return err
	}
	probe.Close()

	plan := dist.NewFaultPlan(dist.FaultRule{Op: "apply", Worker: 0, Nth: 3, Mode: dist.FaultSever})
	plan.OnSever = func(i int) {
		log.Printf("chaos: SIGKILL worker %d mid-fit", i)
		procs[i].Process.Kill() //nolint:errcheck // the kill is the point
	}
	cl, err := dist.ConnectWith(dist.ClusterOptions{
		Addrs:        wireAddrs,
		OpTimeout:    30 * time.Second,
		DialRetries:  2,
		RetryBackoff: 100 * time.Millisecond,
		Fault:        plan,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	log.Print("chaos: distributed fit with a mid-fit worker kill...")
	distFit, rep, err := dist.Fit(context.Background(), cl, p, train.Records, train.Labels, dist.FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
		Partitions:  4,
	})
	if err != nil {
		return fmt.Errorf("fit did not survive the kill: %w", err)
	}
	if ev := plan.Events(); len(ev) != 1 {
		return fmt.Errorf("fault plan fired %d times, want 1", len(ev))
	}
	if rep.Recoveries < 1 {
		return fmt.Errorf("fit reports no recovery after a kill: %+v", rep)
	}
	log.Printf("chaos: fit survived the kill (%d recoveries, %d partition replays, train %v)",
		rep.Recoveries, rep.ReplayedPartitions, rep.TrainTime.Round(time.Millisecond))
	for i, doc := range test.Records {
		want, err := local.Transform(context.Background(), doc)
		if err != nil {
			return err
		}
		got, err := distFit.Transform(context.Background(), doc)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("doc %d: post-recovery prediction %v != oracle %v", i, got, want)
		}
	}
	log.Printf("chaos: %d predictions bit-identical to the oracle after recovery", len(test.Records))

	procs[1].Process.Signal(os.Interrupt) //nolint:errcheck // fallback kill in the defer
	select {
	case <-exits[1]:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("chaos survivor did not exit on SIGINT")
	}
	return nil
}

// dialCluster retries dist.Connect until every worker's wire port is up.
func dialCluster(addrs []string, exits []chan error, timeout time.Duration) (*dist.Cluster, error) {
	deadline := time.Now().Add(timeout)
	for {
		for i, exited := range exits {
			select {
			case err := <-exited:
				return nil, fmt.Errorf("worker %d exited during startup: %v", i, err)
			default:
			}
		}
		cl, err := dist.Connect(addrs...)
		if err == nil {
			if _, err := cl.Ping(); err == nil {
				return cl, nil
			}
			cl.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("workers not reachable after %v: %v", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func firstWords(s string) string {
	words := strings.Fields(s)
	if len(words) > 4 {
		words = words[:4]
	}
	return strings.Join(words, " ")
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func postJSON(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
