// keyworker is one keystone/dist worker process: it holds partitions of
// distributed collections, executes the coordinator's wire ops against
// them (load / apply / zip / fetch / free), and — when -http is set —
// hosts a serve.Server replica that serving routes are registered onto
// by shipping a registry artifact id over the wire.
//
// Run a 3-worker cluster on one machine:
//
//	keyworker -listen 127.0.0.1:7101 -http 127.0.0.1:7201 -registry ./reg &
//	keyworker -listen 127.0.0.1:7102 -http 127.0.0.1:7202 -registry ./reg &
//	keyworker -listen 127.0.0.1:7103 -http 127.0.0.1:7203 -registry ./reg &
//
// and point a dist.Connect coordinator at the three -listen addresses.
// The "text" serve kind (Fitted[string, []float64] behind
// serve.TextCodec, the Figure 2 pipeline shape) is pre-registered;
// binaries embedding dist.StartWorker register their own kinds with
// dist.RegisterServeKind.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"keystoneml/keystone/dist"
	"keystoneml/keystone/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7101", "wire-protocol listen address")
	httpAddr := flag.String("http", "", "serving replica listen address (empty = fit-only worker)")
	registryDir := flag.String("registry", "", "artifact registry directory backing serve ops")
	parallelism := flag.Int("parallelism", 1, "partition-level parallelism inside this worker")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("keyworker: ")

	dist.RegisterServeKind("text", func(srv *serve.Server, store serve.ArtifactStore, route, ref string) error {
		_, err := serve.RegisterArtifact[string, []float64](srv, route, store, ref,
			serve.TextCodec{Labels: []string{"negative", "positive"}})
		return err
	})

	w, err := dist.StartWorker(dist.WorkerOptions{
		Listen:      *listen,
		HTTPListen:  *httpAddr,
		RegistryDir: *registryDir,
		Parallelism: *parallelism,
	})
	if err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	if w.HTTPAddr() != "" {
		log.Printf("wire %s, replica %s", w.Addr(), w.HTTPAddr())
	} else {
		log.Printf("wire %s (fit-only)", w.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Print("shutting down")
		w.Close()
	}()
	w.Wait()
}
