// keyserve is an HTTP JSON inference server over a fitted KeystoneML
// pipeline, built entirely on the public keystone package: it trains the
// paper's Figure 2 text-classification pipeline at startup (on the
// synthetic review corpus), then serves single-document predictions with
// micro-batching — concurrent requests transparently share batches
// through the pipeline's lock-free serving hot path.
//
//	go run ./cmd/keyserve -addr :8080
//	curl -s localhost:8080/predict -d '{"text":"this product is excellent"}'
//	curl -s localhost:8080/predict/batch -d '{"texts":["great item","broke in a day"]}'
//	curl -s localhost:8080/stats
//
// SIGINT/SIGTERM cancel startup training (via the context-aware Fit) and
// gracefully drain the server.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"keystoneml/keystone"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		trainDocs = flag.Int("train-docs", 2000, "synthetic training corpus size")
		features  = flag.Int("features", 5000, "vocabulary size")
		iters     = flag.Int("iters", 15, "solver iterations")
		workers   = flag.Int("workers", 0, "fit parallelism (0 = NumCPU)")
		maxBatch  = flag.Int("max-batch", 32, "micro-batch size cap")
		maxDelay  = flag.Duration("max-delay", 2*time.Millisecond, "micro-batch window")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request budget")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("training text pipeline on %d synthetic reviews (features=%d iters=%d)...",
		*trainDocs, *features, *iters)
	train := keystone.SyntheticReviews(*trainDocs, 1)
	pipe := keystone.TextPipeline(keystone.TextConfig{NumFeatures: *features, Iterations: *iters})
	fitted, err := pipe.Fit(ctx, train.Records, train.Labels, keystone.WithWorkers(*workers))
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Print("training canceled, exiting")
			os.Exit(0)
		}
		log.Fatalf("fit: %v", err)
	}
	info := fitted.Info()
	log.Printf("trained in %v (optimize %v, CSE merged %d, %d cached intermediates)",
		info.TrainTime.Round(time.Millisecond), info.OptimizeTime.Round(time.Millisecond),
		info.CSEMerged, len(info.Cached))

	batcher := keystone.NewBatcher(fitted, *maxBatch, *maxDelay)
	defer batcher.Close()
	srv := &server{fitted: fitted, batcher: batcher, timeout: *timeout, started: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/predict", srv.predict)
	mux.HandleFunc("/predict/batch", srv.predictBatch)
	mux.HandleFunc("/healthz", srv.healthz)
	mux.HandleFunc("/stats", srv.stats)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		log.Print("shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (max-batch=%d, window=%v)", *addr, *maxBatch, *maxDelay)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

type server struct {
	fitted  *keystone.Fitted[string, []float64]
	batcher *keystone.Batcher[string, []float64]
	timeout time.Duration
	started time.Time
}

type prediction struct {
	Label  string    `json:"label"`
	Scores []float64 `json:"scores"`
}

func toPrediction(scores []float64) prediction {
	label := "negative"
	if len(scores) > 1 && scores[1] > scores[0] {
		label = "positive"
	}
	return prediction{Label: label, Scores: scores}
}

// predict scores one document, transparently sharing a micro-batch with
// concurrent requests.
func (s *server) predict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	scores, err := s.batcher.Predict(ctx, req.Text)
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	writeJSON(w, toPrediction(scores))
}

// predictBatch scores a caller-assembled batch in one shot on the
// pipeline's batch path (no micro-batching needed — the caller already
// batched).
func (s *server) predictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Texts []string `json:"texts"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	scores, err := s.fitted.TransformBatch(ctx, req.Texts)
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	out := struct {
		Results []prediction `json:"results"`
	}{Results: make([]prediction, len(scores))}
	for i, sc := range scores {
		out.Results[i] = toPrediction(sc)
	}
	writeJSON(w, out)
}

func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "uptime": time.Since(s.started).String()})
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	st := s.batcher.Stats()
	writeJSON(w, map[string]any{
		"batches":       st.Batches,
		"records":       st.Records,
		"largest_batch": st.LargestBatch,
		"in_flight":     st.InFlight,
		"uptime":        time.Since(s.started).String(),
	})
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
