// keyserve is an HTTP JSON inference server over the keystone/serve
// registry: a thin CLI that trains one pipeline per enabled route at
// startup and mounts serve.Server on a listener. Everything of substance
// — multi-route dispatch, micro-batching, versioned zero-downtime
// hot-swap, SLO-driven batch autotuning, stats — lives in the serve
// package.
//
//	go run ./cmd/keyserve -addr :8080 -routes text,vision -target-p95 20ms -max-inflight 256
//	curl -s localhost:8080/predict -d '{"text":"this product is excellent"}'
//	curl -s localhost:8080/routes/vision/predict -d @image.json
//	curl -s -X POST localhost:8080/routes/text/deploy   # refit + hot-swap
//	curl -s -X POST localhost:8080/routes/text/canary -d '{"fraction":0.1}'
//	curl -s localhost:8080/routes/text/canary           # candidate vs primary
//	curl -s -X POST localhost:8080/routes/text/promote  # or .../abort
//	curl -s -X POST localhost:8080/routes/text/rollback
//	curl -s localhost:8080/routes/text/versions
//	curl -s localhost:8080/stats
//
// Each route has a refitter wired, so POST /routes/{name}/deploy trains
// a fresh pipeline version on new synthetic data and swaps it in with
// zero downtime, and POST /routes/{name}/canary (or /shadow) stages one
// behind the splitter instead. -max-inflight/-max-queue turn on
// admission control (overload sheds 429 + Retry-After). The listener is
// bound before training starts, so a port held by a stale process fails
// fast instead of training first and dying late. SIGINT/SIGTERM cancel
// startup training (via the context-aware Fit) and gracefully drain the
// server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		routes    = flag.String("routes", "text", "comma-separated routes to serve (text, vision)")
		workers   = flag.Int("workers", 0, "fit parallelism (0 = NumCPU)")
		maxBatch  = flag.Int("max-batch", 32, "initial micro-batch size cap")
		maxDelay  = flag.Duration("max-delay", 2*time.Millisecond, "initial micro-batch window")
		targetP95 = flag.Duration("target-p95", 0, "p95 latency SLO; enables the batch autotuner (0 = static limits)")
		tputFloor = flag.Float64("throughput-floor", 0, "records/sec floor for the autotuner's multi-objective mode (0 = p95 only)")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request budget")

		maxInFlight = flag.Int("max-inflight", 0, "admission control: per-route cap on in-flight records; overload sheds 429 (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "admission control: shed single predictions while the batcher queue is this deep (0 = unlimited)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")

		registryDir = flag.String("registry", "", "artifact registry directory; binds routes to it so deployed versions persist and rollback survives restarts")
		artifactRef = flag.String("artifact", "", "text: boot from a saved artifact instead of training (a registry tag/id/prefix with -registry, else a file path)")
		savePath    = flag.String("save", "", "text: save the startup-trained artifact to this file (keystone.Save format)")

		trainDocs = flag.Int("train-docs", 2000, "text: synthetic training corpus size")
		features  = flag.Int("features", 5000, "text: vocabulary size")
		iters     = flag.Int("iters", 15, "text: solver iterations")
		labels    = flag.String("labels", "negative,positive", "text: class labels for the argmax response")

		trainImages  = flag.Int("train-images", 120, "vision: synthetic training image count")
		imageSize    = flag.Int("image-size", 16, "vision: synthetic image edge length")
		imageClasses = flag.Int("image-classes", 3, "vision: class count")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Bind before the (potentially long) startup training: a port held by
	// a stale keyserve fails the run immediately with a clear message
	// instead of training for seconds and then dying — and instead of
	// leaving a smoke-test driver polling a server that will never come.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("bind %s: %v (is a stale keyserve still running on this port?)", *addr, err)
	}

	srv := serve.NewServer()
	defer srv.Close()

	opts := []serve.RouteOption{
		serve.WithBatchLimits(*maxBatch, *maxDelay),
		serve.WithTimeout(*timeout),
	}
	if *targetP95 > 0 {
		opts = append(opts, serve.WithSLO(serve.SLO{
			TargetP95:       *targetP95,
			ThroughputFloor: *tputFloor,
		}))
	}
	if *maxInFlight > 0 || *maxQueue > 0 {
		opts = append(opts, serve.WithAdmission(serve.Admission{
			MaxInFlight: *maxInFlight,
			MaxQueue:    *maxQueue,
			RetryAfter:  *retryAfter,
		}))
	}
	var store *registry.Registry
	if *registryDir != "" {
		var err error
		if store, err = registry.Open(*registryDir); err != nil {
			log.Fatalf("open registry: %v", err)
		}
		opts = append(opts, serve.WithArtifactStore(store))
	}

	for _, name := range strings.Split(*routes, ",") {
		var err error
		switch strings.TrimSpace(name) {
		case "text":
			labelList := strings.Split(*labels, ",")
			for i := range labelList {
				labelList[i] = strings.TrimSpace(labelList[i])
			}
			err = registerText(ctx, srv, textParams{
				docs: *trainDocs, features: *features, iters: *iters,
				labels: labelList, workers: *workers,
				artifact: *artifactRef, save: *savePath, store: store,
			}, opts)
		case "vision":
			err = registerVision(ctx, srv, visionParams{
				images: *trainImages, size: *imageSize, classes: *imageClasses,
				workers: *workers,
			}, opts)
		case "":
			continue
		default:
			log.Fatalf("unknown route %q (want text, vision)", name)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Print("training canceled, exiting")
				os.Exit(0)
			}
			log.Fatalf("register %s: %v", name, err)
		}
	}
	if len(srv.RouteNames()) == 0 {
		log.Fatal("no routes enabled")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	go func() {
		<-ctx.Done()
		log.Print("shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	tuning := "static limits"
	if *targetP95 > 0 {
		tuning = fmt.Sprintf("autotuning to p95 %v", *targetP95)
		if *tputFloor > 0 {
			tuning += fmt.Sprintf(" with a %.0f rec/s floor", *tputFloor)
		}
	}
	admission := "admission off"
	if *maxInFlight > 0 || *maxQueue > 0 {
		admission = fmt.Sprintf("admission in-flight<=%d queue<=%d", *maxInFlight, *maxQueue)
	}
	log.Printf("serving routes %v on %s (max-batch=%d, window=%v, %s, %s)",
		srv.RouteNames(), ln.Addr(), *maxBatch, *maxDelay, tuning, admission)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

type textParams struct {
	docs, features, iters, workers int
	labels                         []string
	artifact, save                 string
	store                          *registry.Registry
}

// registerText registers the paper's Figure 2 text-classification
// pipeline. Normally it trains on the synthetic review corpus at
// startup; with -artifact it instead loads a saved fitted artifact —
// from the registry (tag/id/prefix) when one is bound, else from a file
// — which turns a multi-second training cold start into a
// millisecond-scale decode. The refitter retrains on a fresh corpus per
// deploy either way, so POST /routes/text/deploy exercises a real
// hot-swap.
func registerText(ctx context.Context, srv *serve.Server, p textParams, opts []serve.RouteOption) error {
	var seed atomic.Uint64
	seed.Store(1)
	train := func(ctx context.Context) (*keystone.Fitted[string, []float64], error) {
		s := seed.Add(1) - 1
		log.Printf("[text] training on %d synthetic reviews (features=%d iters=%d seed=%d)...",
			p.docs, p.features, p.iters, s)
		data := keystone.SyntheticReviews(p.docs, s)
		pipe := keystone.TextPipeline(keystone.TextConfig{NumFeatures: p.features, Iterations: p.iters})
		start := time.Now()
		fitted, err := pipe.Fit(ctx, data.Records, data.Labels, keystone.WithWorkers(p.workers))
		if err != nil {
			return nil, err
		}
		log.Printf("[text] trained in %v", time.Since(start).Round(time.Millisecond))
		return fitted, nil
	}
	codec := serve.TextCodec{Labels: p.labels}

	var route *serve.Route[string, []float64]
	switch {
	case p.artifact != "" && p.store != nil:
		start := time.Now()
		var err error
		route, err = serve.RegisterArtifact(srv, "text", p.store, p.artifact, codec, opts...)
		if err != nil {
			return err
		}
		log.Printf("[text] loaded artifact %q from registry in %v", p.artifact, time.Since(start).Round(time.Microsecond))
	case p.artifact != "":
		start := time.Now()
		fitted, err := keystone.Load[string, []float64](p.artifact, keystone.WithWorkers(p.workers))
		if err != nil {
			return err
		}
		if route, err = serve.Register(srv, "text", fitted, codec, opts...); err != nil {
			return err
		}
		log.Printf("[text] loaded artifact %s in %v", p.artifact, time.Since(start).Round(time.Microsecond))
	default:
		fitted, err := train(ctx)
		if err != nil {
			return err
		}
		if p.save != "" {
			if err := keystone.Save(fitted, p.save); err != nil {
				return fmt.Errorf("save artifact: %w", err)
			}
			log.Printf("[text] saved artifact to %s", p.save)
		}
		if route, err = serve.Register(srv, "text", fitted, codec, opts...); err != nil {
			return err
		}
	}
	route.SetRefit(train)
	return nil
}

type visionParams struct {
	images, size, classes, workers int
}

// registerVision assembles a custom vision DAG from the exported
// primitives — Grayscale, Pooling, ImageToVector, ZCAWhitening — proving
// the registry hosts a second modality next to text on the same server.
func registerVision(ctx context.Context, srv *serve.Server, p visionParams, opts []serve.RouteOption) error {
	var seed atomic.Uint64
	seed.Store(1)
	train := func(ctx context.Context) (*keystone.Fitted[*keystone.Image, []float64], error) {
		s := seed.Add(1) - 1
		log.Printf("[vision] training on %d synthetic %dx%d images (%d classes, seed=%d)...",
			p.images, p.size, p.size, p.classes, s)
		data := keystone.SyntheticImages(p.images, p.size, 3, p.classes, s)
		in := keystone.Input[*keystone.Image]()
		gray := keystone.Then(in, keystone.Grayscale())
		pooled := keystone.Then(gray, keystone.Pooling(2))
		vec := keystone.Then(pooled, keystone.ImageToVector())
		white := keystone.ThenEstimator(vec, keystone.ZCAWhitening(0.1))
		pipe := keystone.ThenEstimator(white, keystone.LinearSolver(10))
		start := time.Now()
		fitted, err := pipe.Fit(ctx, data.Records, data.Labels, keystone.WithWorkers(p.workers))
		if err != nil {
			return nil, err
		}
		log.Printf("[vision] trained in %v", time.Since(start).Round(time.Millisecond))
		return fitted, nil
	}
	fitted, err := train(ctx)
	if err != nil {
		return err
	}
	classLabels := make([]string, p.classes)
	for i := range classLabels {
		classLabels[i] = fmt.Sprintf("texture%d", i)
	}
	route, err := serve.Register(srv, "vision", fitted, serve.ImageCodec{Labels: classLabels}, opts...)
	if err != nil {
		return err
	}
	route.SetRefit(train)
	return nil
}
