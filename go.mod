module keystoneml

go 1.22
