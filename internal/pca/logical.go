package pca

import (
	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
)

const bytesPerFloat = 8.0

// svdLocalCost: collect everything (network O(nd)), full SVD O(nd²) on
// one node. Infeasible when the dataset exceeds driver memory — the "x"
// entries for n=10⁶, d=4096 in Table 2.
type svdLocalCost struct{ memLimit float64 }

func (c svdLocalCost) Name() string { return "pca.svd.local" }

func (c svdLocalCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d := float64(st.N), float64(st.Dim)
	bytes := n * d * bytesPerFloat
	if c.memLimit > 0 && bytes > c.memLimit {
		return cost.Profile{Flops: -1}
	}
	return cost.Profile{Flops: 4 * n * d * d, Bytes: bytes, Network: bytes, Stages: 1}
}

// tsvdLocalCost: collect (network O(nd)), randomized TSVD O(ndk) per
// power iteration on one node.
type tsvdLocalCost struct {
	iters    int
	memLimit float64
}

func (c tsvdLocalCost) Name() string { return "pca.tsvd.local" }

func (c tsvdLocalCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	bytes := n * d * bytesPerFloat
	if c.memLimit > 0 && bytes > c.memLimit {
		return cost.Profile{Flops: -1}
	}
	i := float64(c.iters + 2)
	return cost.Profile{Flops: 4 * i * n * d * (k + 8), Bytes: bytes, Network: bytes, Stages: 1}
}

// svdDistCost: Gram aggregation O(nd²/w) compute, O(d²) network, plus the
// O(d³) driver eigendecomposition.
type svdDistCost struct{}

func (svdDistCost) Name() string { return "pca.svd.dist" }

func (svdDistCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d := float64(st.N), float64(st.Dim)
	w := float64(max(workers, 1))
	return cost.Profile{
		Flops:   2*n*d*d/w + 8*d*d*d,
		Bytes:   n * d * bytesPerFloat / w,
		Network: d * d * bytesPerFloat,
		Stages:  2, // aggregate + broadcast
	}
}

// tsvdDistCost: distributed randomized range finding, O(ndk/w) per power
// iteration compute and O(dk) network per iteration plus the n x k range
// factor shipped to the driver for the small QR.
type tsvdDistCost struct{ iters int }

func (tsvdDistCost) Name() string { return "pca.tsvd.dist" }

func (c tsvdDistCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	w := float64(max(workers, 1))
	i := float64(c.iters + 2)
	kk := k + 8
	return cost.Profile{
		Flops:   4*i*n*d*kk/w + 2*i*n*kk*kk,
		Bytes:   n * d * bytesPerFloat / w,
		Network: i * (d*kk + n*kk) * bytesPerFloat,
		Stages:  i + 1,
	}
}

// PCA is the logical PCA Estimator: Optimizable over the four Table 2
// physical implementations. The default (unoptimized) implementation is
// the local exact SVD.
type PCA struct {
	// K is the number of principal components to keep.
	K int
	// Iters is the power-iteration count for the approximate variants.
	Iters int
	// MemLimitBytes marks local variants infeasible beyond this dataset
	// size; zero means unlimited.
	MemLimitBytes float64
	// Seed drives the randomized variants.
	Seed uint64
}

// Name implements core.EstimatorOp.
func (p *PCA) Name() string { return "pca[logical]" }

// Fit implements core.EstimatorOp via the default local SVD.
func (p *PCA) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	return (&LocalSVD{K: p.K}).Fit(ctx, data, labels)
}

// Options implements core.Optimizable.
func (p *PCA) Options() []cost.Option {
	iters := p.Iters
	if iters <= 0 {
		iters = 2
	}
	return []cost.Option{
		{Model: svdLocalCost{memLimit: p.MemLimitBytes}, Operator: &LocalSVD{K: p.K}},
		{Model: tsvdLocalCost{iters: iters, memLimit: p.MemLimitBytes}, Operator: &LocalTSVD{K: p.K, Iters: iters, Seed: p.Seed}},
		{Model: svdDistCost{}, Operator: &DistSVD{K: p.K}},
		{Model: tsvdDistCost{iters: iters}, Operator: &DistTSVD{K: p.K, Iters: iters, Seed: p.Seed}},
	}
}

// NewPCAEst wraps the logical PCA as a typed unsupervised estimator.
func NewPCAEst(k int, memLimit float64, seed uint64) core.Est[[]float64, []float64] {
	return core.NewEst[[]float64, []float64](&PCA{K: k, MemLimitBytes: memLimit, Seed: seed})
}
