package pca

import (
	"math"
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// lowRankData builds n records that live (plus tiny noise) in a k-dim
// subspace of R^d.
func lowRankData(seed uint64, n, d, k int, noise float64) *engine.Collection {
	rng := linalg.NewRNG(seed)
	basis := rng.GaussianMatrix(k, d)
	items := make([]any, n)
	for i := 0; i < n; i++ {
		coef := rng.GaussianVector(k)
		x := make([]float64, d)
		for j := 0; j < k; j++ {
			linalg.AxpyInPlace(coef[j], basis.Row(j), x)
		}
		for j := range x {
			x[j] += noise * rng.Gaussian()
		}
		items[i] = x
	}
	return engine.FromSlice(items, 4)
}

func fetchOf(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }

// varianceCaptured returns the fraction of total variance retained by the
// projection.
func varianceCaptured(c *engine.Collection, proj core.TransformOp, d int) float64 {
	var totalVar, projVar float64
	items := c.Collect()
	// total variance (after centering)
	mean := make([]float64, d)
	for _, it := range items {
		linalg.AxpyInPlace(1, it.([]float64), mean)
	}
	linalg.ScaleInPlace(1/float64(len(items)), mean)
	for _, it := range items {
		x := it.([]float64)
		for j, v := range x {
			dv := v - mean[j]
			totalVar += dv * dv
		}
		y := proj.Apply(it).([]float64)
		for _, v := range y {
			projVar += v * v
		}
	}
	return projVar / totalVar
}

func TestAllPCAVariantsCaptureSubspace(t *testing.T) {
	n, d, k := 200, 20, 3
	data := lowRankData(1, n, d, k, 0.01)
	ctx := engine.NewContext(4)
	ests := []core.EstimatorOp{
		&LocalSVD{K: k},
		&LocalTSVD{K: k, Iters: 3},
		&DistSVD{K: k},
		&DistTSVD{K: k, Iters: 3},
	}
	for _, est := range ests {
		proj := est.Fit(ctx, fetchOf(data), nil)
		got := varianceCaptured(data, proj, d)
		if got < 0.99 {
			t.Errorf("%s captured %.4f of variance, want >= 0.99", est.Name(), got)
		}
		// Output dimensionality is k.
		out := proj.Apply(data.Take(1)[0]).([]float64)
		if len(out) != k {
			t.Errorf("%s output dim = %d, want %d", est.Name(), len(out), k)
		}
	}
}

func TestPCAVariantsAgreeOnSubspace(t *testing.T) {
	// Principal subspaces must agree even if individual component signs
	// differ: compare projection matrices via P1ᵀP2 orthogonality.
	n, d, k := 150, 12, 2
	data := lowRankData(2, n, d, k, 0.001)
	ctx := engine.NewContext(4)
	exact := (&LocalSVD{K: k}).Fit(ctx, fetchOf(data), nil).(*Projection)
	dist := (&DistSVD{K: k}).Fit(ctx, fetchOf(data), nil).(*Projection)
	// P_exactᵀ P_dist should be a k x k orthogonal matrix (rotation within
	// the same subspace): its singular values must all be ~1.
	cross := exact.P.TMul(dist.P)
	f := linalg.SVD(cross)
	for _, s := range f.S {
		if math.Abs(s-1) > 1e-6 {
			t.Errorf("subspaces differ: cross singular values %v", f.S)
		}
	}
}

func TestProjectionCentersData(t *testing.T) {
	// A dataset with large mean offset: projections of the mean point must
	// be ~0.
	rng := linalg.NewRNG(3)
	n, d := 100, 6
	items := make([]any, n)
	for i := 0; i < n; i++ {
		x := rng.GaussianVector(d)
		x[0] += 100 // big offset
		items[i] = x
	}
	data := engine.FromSlice(items, 2)
	ctx := engine.NewContext(2)
	proj := (&LocalSVD{K: 2}).Fit(ctx, fetchOf(data), nil).(*Projection)
	mean := make([]float64, d)
	for _, it := range items {
		linalg.AxpyInPlace(1.0/float64(n), it.([]float64), mean)
	}
	out := proj.Apply(mean).([]float64)
	if linalg.Norm2(out) > 1e-9 {
		t.Errorf("projection of the mean = %v, want ~0", out)
	}
}

func TestPCALogicalOptions(t *testing.T) {
	p := &PCA{K: 16}
	opts := p.Options()
	if len(opts) != 4 {
		t.Fatalf("options = %d, want 4 (Table 2)", len(opts))
	}
	var est core.EstimatorOp = p
	if _, ok := est.(core.Optimizable); !ok {
		t.Error("PCA must implement core.Optimizable")
	}
}

func TestPCACostSmallLocalFavored(t *testing.T) {
	// Table 2, n=10^4 d=256: local methods dominate distributed ones.
	res := cluster.R3_4XLarge(16)
	p := &PCA{K: 16, MemLimitBytes: 100e9}
	stats := cost.DataStats{N: 10_000, Dim: 256, K: 16, Sparsity: 1}
	opts := p.Options()
	idx := cost.Choose(opts, stats, res)
	name := opts[idx].Model.Name()
	if name != "pca.tsvd.local" && name != "pca.svd.local" {
		t.Errorf("small problem choice = %s, want a local variant", name)
	}
}

func TestPCACostLargeDistFavored(t *testing.T) {
	// Table 2, n=10^6 d=4096: local is infeasible, distributed TSVD wins
	// for small k.
	res := cluster.R3_4XLarge(16)
	p := &PCA{K: 16, MemLimitBytes: 8e9}
	stats := cost.DataStats{N: 1_000_000, Dim: 4096, K: 16, Sparsity: 1}
	opts := p.Options()
	idx := cost.Choose(opts, stats, res)
	name := opts[idx].Model.Name()
	if name != "pca.tsvd.dist" {
		t.Errorf("large problem choice = %s, want pca.tsvd.dist", name)
	}
}

func TestPCACostLargeKExactFavored(t *testing.T) {
	// Table 2 bottom-right: d=4096, k=1024 at n=10^6 — TSVD's k² terms
	// blow up (8310s vs 260s) so the exact distributed SVD must win.
	res := cluster.R3_4XLarge(16)
	p := &PCA{K: 1024, MemLimitBytes: 8e9}
	stats := cost.DataStats{N: 1_000_000, Dim: 4096, K: 1024, Sparsity: 1}
	opts := p.Options()
	idx := cost.Choose(opts, stats, res)
	if name := opts[idx].Model.Name(); name != "pca.svd.dist" {
		t.Errorf("large-k choice = %s, want pca.svd.dist", name)
	}
}

func TestProjectionPanicsOnBadInput(t *testing.T) {
	proj := &Projection{P: linalg.NewMatrix(4, 2), Mean: make([]float64, 4)}
	for _, bad := range []any{"str", []float64{1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %T", bad)
				}
			}()
			proj.Apply(bad)
		}()
	}
}
