// Package pca implements the PCA Estimator with the four physical
// implementations compared in Table 2 of the KeystoneML paper: exact SVD
// and approximate truncated SVD, each in local (collect-to-driver) and
// distributed (per-partition Gram aggregation / distributed randomized
// range finding) forms, plus the cost models the optimizer uses to choose
// among them.
package pca

import (
	"fmt"
	"sync"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// Projection is the fitted PCA transformer: projects d-vectors onto the
// top-k principal components (columns of P), after subtracting the
// training mean.
type Projection struct {
	P    *linalg.Matrix // d x k
	Mean []float64      // training column means
	Impl string
}

// Name implements core.TransformOp.
func (p *Projection) Name() string { return "model.pca[" + p.Impl + "]" }

// Apply projects one dense record.
func (p *Projection) Apply(in any) any {
	x, ok := in.([]float64)
	if !ok {
		panic(fmt.Sprintf("pca: cannot project %T", in))
	}
	d, k := p.P.Rows, p.P.Cols
	if len(x) != d {
		panic(fmt.Sprintf("pca: record has %d dims, projection expects %d", len(x), d))
	}
	out := make([]float64, k)
	for i, xi := range x {
		v := xi - p.Mean[i]
		if v == 0 {
			continue
		}
		linalg.AxpyInPlace(v, p.P.Row(i), out)
	}
	return out
}

// collect gathers a dense collection into one matrix.
func collect(c *engine.Collection) *linalg.Matrix {
	items := c.Collect()
	rows := make([][]float64, len(items))
	for i, it := range items {
		r, ok := it.([]float64)
		if !ok {
			panic(fmt.Sprintf("pca: expected []float64 records, got %T", it))
		}
		rows[i] = r
	}
	return linalg.NewMatrixFrom(rows)
}

// LocalSVD computes an exact PCA by collecting the data to the driver and
// taking a full SVD of the centered matrix: O(nd²) compute, exact answer.
type LocalSVD struct {
	K int
}

// Name implements core.EstimatorOp.
func (s *LocalSVD) Name() string { return "pca.svd.local" }

// Fit implements core.EstimatorOp.
func (s *LocalSVD) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	a := collect(data())
	mean := a.CenterColumns()
	f := linalg.SVD(a).Truncate(s.K)
	return &Projection{P: f.V, Mean: mean, Impl: s.Name()}
}

// LocalTSVD computes an approximate PCA on the driver via randomized
// truncated SVD: O(ndk) compute — the Table 2 winner for small k on
// datasets that fit on one machine.
type LocalTSVD struct {
	K     int
	Iters int // power iterations; default 2
	Seed  uint64
}

// Name implements core.EstimatorOp.
func (s *LocalTSVD) Name() string { return "pca.tsvd.local" }

func (s *LocalTSVD) iters() int {
	if s.Iters > 0 {
		return s.Iters
	}
	return 2
}

// Fit implements core.EstimatorOp.
func (s *LocalTSVD) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	a := collect(data())
	mean := a.CenterColumns()
	f := linalg.TruncatedSVD(a, s.K, s.iters(), linalg.NewRNG(s.Seed+777))
	return &Projection{P: f.V, Mean: mean, Impl: s.Name()}
}

// DistSVD computes an exact distributed PCA: per-partition covariance
// contributions are tree-aggregated (network O(d²)) and the d x d
// covariance is eigendecomposed on the driver (compute O(nd²/w + d³)).
type DistSVD struct {
	K int
}

// Name implements core.EstimatorOp.
func (s *DistSVD) Name() string { return "pca.svd.dist" }

// Fit implements core.EstimatorOp.
func (s *DistSVD) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	c := data()
	n := c.Count()
	if n == 0 {
		panic("pca: empty input")
	}
	d := len(c.Take(1)[0].([]float64))
	type partial struct {
		gram *linalg.Matrix
		sum  []float64
		n    int
	}
	agg := func(part []any) partial {
		g := linalg.NewMatrix(d, d)
		sum := make([]float64, d)
		for _, it := range part {
			x := it.([]float64)
			linalg.AxpyInPlace(1, x, sum)
			for i, xi := range x {
				if xi == 0 {
					continue
				}
				linalg.AxpyInPlace(xi, x, g.Row(i))
			}
		}
		return partial{gram: g, sum: sum, n: len(part)}
	}
	partials := make([]partial, c.NumPartitions())
	var wg sync.WaitGroup
	sem := make(chan struct{}, ctx.Parallelism)
	for i := 0; i < c.NumPartitions(); i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			partials[i] = agg(c.Partition(i))
		}(i)
	}
	wg.Wait()
	gram := linalg.NewMatrix(d, d)
	sum := make([]float64, d)
	for _, p := range partials {
		gram.Add(p.gram)
		linalg.AxpyInPlace(1, p.sum, sum)
	}
	mean := make([]float64, d)
	for i := range sum {
		mean[i] = sum[i] / float64(n)
	}
	// Covariance = (XᵀX - n μμᵀ) / n.
	for i := 0; i < d; i++ {
		row := gram.Row(i)
		for j := 0; j < d; j++ {
			row[j] = row[j]/float64(n) - mean[i]*mean[j]
		}
	}
	_, v := linalg.SymEig(gram)
	return &Projection{P: v.SliceCols(0, min(s.K, d)), Mean: mean, Impl: s.Name()}
}

// DistTSVD computes an approximate distributed PCA: randomized range
// finding where each A·Ω product is an aggregate over partitions
// (compute O(ndk/w), network O(dk) per power iteration).
type DistTSVD struct {
	K     int
	Iters int
	Seed  uint64
}

// Name implements core.EstimatorOp.
func (s *DistTSVD) Name() string { return "pca.tsvd.dist" }

func (s *DistTSVD) iters() int {
	if s.Iters > 0 {
		return s.Iters
	}
	return 2
}

// Fit implements core.EstimatorOp.
func (s *DistTSVD) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	c := data()
	n := c.Count()
	if n == 0 {
		panic("pca: empty input")
	}
	d := len(c.Take(1)[0].([]float64))
	k := min(s.K, d)
	p := min(k+8, d)
	mean := colMeans(ctx, c, d, n)

	rng := linalg.NewRNG(s.Seed + 12345)
	omega := rng.GaussianMatrix(d, p)
	// y = (A - 1μᵀ) Ω computed distributively; QR on the driver (y is n x p,
	// with p small).
	y := mulCentered(ctx, c, omega, mean)
	q := linalg.QR(y).Q
	for it := 0; it < s.iters(); it++ {
		z := tMulCentered(ctx, c, q, mean) // d x p
		qz := linalg.QR(z).Q
		y = mulCentered(ctx, c, qz, mean)
		q = linalg.QR(y).Q
	}
	b := tMulCentered(ctx, c, q, mean).T() // p x d
	fb := linalg.SVD(b)
	return &Projection{P: fb.V.SliceCols(0, k), Mean: mean, Impl: s.Name()}
}

func colMeans(ctx *engine.Context, c *engine.Collection, d, n int) []float64 {
	sum := ctx.Aggregate(c,
		func() any { return make([]float64, d) },
		func(acc, item any) any {
			a := acc.([]float64)
			linalg.AxpyInPlace(1, item.([]float64), a)
			return a
		},
		func(a, b any) any {
			x := a.([]float64)
			linalg.AxpyInPlace(1, b.([]float64), x)
			return x
		},
	).([]float64)
	for i := range sum {
		sum[i] /= float64(n)
	}
	return sum
}

// mulCentered computes (A - 1μᵀ)·M as a distributed row-wise map,
// returning the stacked n x p result.
func mulCentered(ctx *engine.Context, c *engine.Collection, m *linalg.Matrix, mean []float64) *linalg.Matrix {
	rowsC := ctx.Map(c, func(item any) any {
		x := item.([]float64)
		out := make([]float64, m.Cols)
		for i, xi := range x {
			v := xi - mean[i]
			if v == 0 {
				continue
			}
			linalg.AxpyInPlace(v, m.Row(i), out)
		}
		return out
	})
	items := rowsC.Collect()
	rows := make([][]float64, len(items))
	for i, it := range items {
		rows[i] = it.([]float64)
	}
	return linalg.NewMatrixFrom(rows)
}

// tMulCentered computes (A - 1μᵀ)ᵀ·Q via aggregation, returning d x p.
func tMulCentered(ctx *engine.Context, c *engine.Collection, q *linalg.Matrix, mean []float64) *linalg.Matrix {
	d := len(mean)
	p := q.Cols
	// Each record contributes (x-μ) ⊗ q_row; rows of Q align with record
	// order, so track a global row offset per partition.
	offsets := make([]int, c.NumPartitions())
	off := 0
	for i := 0; i < c.NumPartitions(); i++ {
		offsets[i] = off
		off += len(c.Partition(i))
	}
	partials := make([]*linalg.Matrix, c.NumPartitions())
	var wg sync.WaitGroup
	sem := make(chan struct{}, ctx.Parallelism)
	for i := 0; i < c.NumPartitions(); i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			acc := linalg.NewMatrix(d, p)
			for r, it := range c.Partition(i) {
				x := it.([]float64)
				qRow := q.Row(offsets[i] + r)
				for ii, xi := range x {
					v := xi - mean[ii]
					if v == 0 {
						continue
					}
					linalg.AxpyInPlace(v, qRow, acc.Row(ii))
				}
			}
			partials[i] = acc
		}(i)
	}
	wg.Wait()
	out := linalg.NewMatrix(d, p)
	for _, m := range partials {
		out.Add(m)
	}
	return out
}
