package pca

import (
	"bytes"
	"encoding/gob"

	"keystoneml/internal/core"
	"keystoneml/internal/linalg"
)

// projectionState is the gob payload behind Projection's StateCodec.
type projectionState struct {
	P    *linalg.Matrix
	Mean []float64
	Impl string
}

// StateKind implements core.StateCodec.
func (p *Projection) StateKind() string { return "model.pca" }

// EncodeState implements core.StateCodec.
func (p *Projection) EncodeState() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(projectionState{P: p.P, Mean: p.Mean, Impl: p.Impl})
	return buf.Bytes(), err
}

func init() {
	core.RegisterStateDecoder("model.pca", func(state []byte) (core.TransformOp, error) {
		var s projectionState
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
			return nil, err
		}
		return &Projection{P: s.P, Mean: s.Mean, Impl: s.Impl}, nil
	})
}
