package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// PrefixSignatures computes a content signature for every node of g
// whose output is a pure function of the bound source data: transform
// and gather nodes all of whose operators (their own and every upstream
// one) can be serialized by EncodeOp. The signature hashes the operator
// kind, its encoded state, and the dependency signatures, so two nodes
// in *different* graphs built from the same operator chain over the same
// source key identically — which is what lets concurrent fits of related
// pipelines share materialized prefixes through an engine.SharedCache.
//
// Nodes that cannot be signed get no key, and neither does anything
// downstream of them: estimator outputs depend on labels and
// hyperparameters (exactly where search candidates diverge), apply-model
// nodes inherit that divergence, and ad-hoc closures have no stable
// serialized identity. Unsigned nodes simply execute privately — sharing
// degrades, never corrupts.
//
// scope is baked into every signature; callers use it to bind keys to a
// dataset identity (keystone scopes by record count and label presence,
// keystone/tune additionally uses one cache per search round), so keys
// can never collide across training subsets of different sizes.
func PrefixSignatures(g *Graph, scope string) map[int]string {
	sigs := make(map[int][]byte, len(g.Nodes)) // node ID -> raw digest
	keys := make(map[int]string)
	for _, n := range g.Topological() {
		switch n.Kind {
		case KindSource:
			sigs[n.ID] = hashFields("source", []byte(scope))
		case KindTransform:
			dep, ok := sigs[n.Deps[0].ID]
			if !ok {
				continue
			}
			kind, state, err := EncodeOp(n.Transform)
			if err != nil {
				continue // unserializable operator: no sharing downstream
			}
			d := hashFields("transform", []byte(kind), state, dep)
			sigs[n.ID] = d
			keys[n.ID] = hex.EncodeToString(d)
		case KindGather:
			fields := [][]byte{}
			ok := true
			for _, dep := range n.Deps {
				ds, found := sigs[dep.ID]
				if !found {
					ok = false
					break
				}
				fields = append(fields, ds)
			}
			if !ok {
				continue
			}
			d := hashFields("gather", fields...)
			sigs[n.ID] = d
			keys[n.ID] = hex.EncodeToString(d)
		default:
			// Labels, estimators and apply-model nodes are never shared:
			// they are where candidates differ.
		}
	}
	return keys
}

// hashFields digests a tagged sequence of length-prefixed fields, so no
// two distinct field sequences can collide by concatenation.
func hashFields(tag string, fields ...[]byte) []byte {
	h := sha256.New()
	var lenBuf [8]byte
	write := func(b []byte) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	write([]byte(tag))
	for _, f := range fields {
		write(f)
	}
	return h.Sum(nil)
}
