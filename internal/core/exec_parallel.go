package core

import (
	"container/heap"
	"fmt"

	"keystoneml/internal/engine"
)

// This file implements the stage-aware parallel scheduler: each demand
// for a node's output is evaluated as one dataflow *pass* over the
// demanded subgraph. The pass is planned from the dependency structure
// (the same reachability walk Graph.Topological performs, pruned at
// cache boundaries), nodes whose in-pass dependencies are satisfied form
// the ready set, and ready nodes dispatch immediately — so independent
// branches (the Gather fan-ins of the image and speech pipelines) run
// concurrently instead of depth-first one after the other.
//
// The recompute-on-miss contract of the sequential oracle is preserved
// *across* passes: pass results are dropped when the pass ends, so an
// iterative estimator's next fetch recomputes everything the cache
// manager does not hold, exactly as in the paper's T(v)/C(v) model.
// Within one pass (and between concurrent passes, via single-flight) a
// node shared by several branches computes once — that coalescing is the
// scheduler's other source of speedup and is reported separately in
// NodeStats.Coalesced.

// flight is the single-flight record for one node's in-progress
// materialization. Concurrent demands join the in-flight computation
// instead of duplicating it; the entry is removed on completion so later
// (sequential) demands still recompute on a cache miss.
type flight struct {
	done     chan struct{}
	out      *engine.Collection
	panicked any
}

// passPlan is the schedule for one dataflow pass: the member nodes in
// dependency order, each member's unsatisfied in-pass dependency count,
// and the in-pass successor lists used to grow the ready set as members
// complete.
type passPlan struct {
	nodes    map[int]*Node
	order    []*Node       // dependency order (deps before dependents)
	pending  map[int]int   // remaining in-pass deps per member
	succ     map[int][]int // member -> in-pass dependents (IDs)
	boundary map[int]bool  // members that entered as cache boundaries
}

// planPass computes the pass membership for a demand of root. The walk
// follows Deps like Graph.Topological but stops at cache boundaries (a
// cached node needs no inputs) and at estimator nodes (a fit fetches its
// inputs itself, through nested passes, so iterative refetch semantics
// survive).
func (e *Executor) planPass(root *Node) *passPlan {
	p := &passPlan{
		nodes:    make(map[int]*Node),
		pending:  make(map[int]int),
		succ:     make(map[int][]int),
		boundary: make(map[int]bool),
	}
	var visit func(n *Node)
	visit = func(n *Node) {
		if _, ok := p.nodes[n.ID]; ok {
			return
		}
		p.nodes[n.ID] = n
		switch {
		case n.Kind == KindEstimator:
			// Member as a fit task; inputs are fetched on demand.
		case e.cachedNow(n) || e.sharedNow(n):
			// Cache boundary (the root included — a refetch of a
			// materialized node is a one-member pass): produce will
			// serve the hit; nothing upstream is demanded, matching
			// the sequential oracle, which never descends past a hit.
			// A shared-prefix-cache entry is a boundary too — another
			// fit already materialized this node's output.
			p.boundary[n.ID] = true
		default:
			for _, d := range n.Deps {
				visit(d)
			}
		}
		p.order = append(p.order, n)
	}
	visit(root)
	// Dependency edges between members. An estimator waits for its
	// in-pass data dependency before fitting — its first fetch needs it
	// anyway, and deferring the fit keeps compute counts deterministic.
	for _, n := range p.order {
		if p.boundary[n.ID] {
			continue // boundary members take no inputs
		}
		for _, d := range n.Deps {
			if _, ok := p.nodes[d.ID]; !ok {
				continue
			}
			p.pending[n.ID]++
			p.succ[d.ID] = append(p.succ[d.ID], n.ID)
		}
	}
	return p
}

// passDone carries one member's completion back to the coordinator.
type passDone struct {
	n        *Node
	out      *engine.Collection
	panicked any
}

// readyQueue orders a pass's ready members for dispatch: a planHeap
// over the schedule plan's critical-path priorities (the same heap the
// makespan simulator schedules with), or plain FIFO (pass-plan order)
// when no plan drives dispatch (SchedulerFIFO).
type readyQueue struct {
	fifo  []*Node   // FIFO backing store, used when heap is nil
	prioq *planHeap // priority backing store, nil in FIFO mode
}

func newReadyQueue(plan *SchedulePlan) *readyQueue {
	q := &readyQueue{}
	if plan != nil {
		q.prioq = &planHeap{plan: plan}
	}
	return q
}

func (q *readyQueue) push(n *Node) {
	if q.prioq == nil {
		q.fifo = append(q.fifo, n)
		return
	}
	heap.Push(q.prioq, n)
}

func (q *readyQueue) len() int {
	if q.prioq == nil {
		return len(q.fifo)
	}
	return q.prioq.Len()
}

func (q *readyQueue) pop() *Node {
	if q.prioq == nil {
		n := q.fifo[0]
		q.fifo = q.fifo[1:]
		return n
	}
	return heap.Pop(q.prioq).(*Node)
}

// runPass executes one dataflow pass for a demand of root and returns
// root's output collection. The coordinator dispatches ready members in
// schedule-plan priority order (critical path first, ties toward pinned
// outputs and wide unlocks), at most `workers` in flight per pass, and
// releases dependents as their inputs arrive; node-local compute is
// additionally bounded by the executor's worker pool.
func (e *Executor) runPass(root *Node) *engine.Collection {
	if root.Kind == KindEstimator {
		panic("core: estimator node demanded as data; estimators produce models, not collections")
	}
	plan := e.planPass(root)
	results := make(map[int]*engine.Collection, len(plan.order))
	done := make(chan passDone, len(plan.order))
	ready := newReadyQueue(e.dispatchPlan())
	inFlight := 0
	var firstPanic any

	// Each member's output is only needed until its last in-pass
	// dependent has snapshotted it; dropping it then keeps the pass's
	// peak memory at the dataflow frontier instead of the whole
	// subgraph (the sequential oracle likewise releases intermediates
	// as its recursion unwinds).
	depRemaining := make(map[int]int, len(plan.succ))
	for id, ss := range plan.succ {
		depRemaining[id] = len(ss)
	}
	releaseInputs := func(n *Node) {
		if plan.boundary[n.ID] {
			return
		}
		for _, d := range n.Deps {
			if _, ok := plan.nodes[d.ID]; !ok {
				continue
			}
			depRemaining[d.ID]--
			if depRemaining[d.ID] == 0 && d.ID != root.ID {
				delete(results, d.ID)
			}
		}
	}

	// dispatch snapshots the member's inputs (written only by this
	// coordinator before the goroutine starts) and produces it.
	dispatch := func(n *Node) {
		ins := make([]*engine.Collection, len(n.Deps))
		for i, d := range n.Deps {
			ins[i] = results[d.ID]
		}
		releaseInputs(n)
		inFlight++
		go func() {
			d := passDone{n: n}
			defer func() {
				if r := recover(); r != nil {
					d.panicked = r
				}
				done <- d
			}()
			d.out = e.produce(n, ins)
		}()
	}

	// fill drains the ready queue in priority order up to the worker
	// bound; completions below refill it. Gating dispatch (instead of
	// spawning every ready member and letting the slot pool arbitrate)
	// is what makes the priority ordering effective: when more members
	// are ready than workers, the longest critical path runs first.
	fill := func() {
		for inFlight < e.workers && ready.len() > 0 {
			dispatch(ready.pop())
		}
	}
	for _, n := range plan.order {
		if plan.pending[n.ID] == 0 {
			ready.push(n)
		}
	}
	fill()
	for inFlight > 0 {
		d := <-done
		inFlight--
		if d.panicked != nil {
			if firstPanic == nil {
				firstPanic = d.panicked
			}
			continue
		}
		results[d.n.ID] = d.out
		if firstPanic != nil {
			continue // drain without growing the ready set
		}
		for _, sid := range plan.succ[d.n.ID] {
			plan.pending[sid]--
			if plan.pending[sid] == 0 {
				ready.push(plan.nodes[sid])
			}
		}
		fill()
	}
	if firstPanic != nil {
		panic(firstPanic)
	}
	out, ok := results[root.ID]
	if !ok {
		panic(fmt.Sprintf("core: scheduler pass finished without producing node #%d (%s)", root.ID, root.OpName()))
	}
	return out
}

// produce materializes one pass member under the single-flight rule:
// concurrent passes demanding the same node share one computation, with
// the waiters blocking on its result. Estimator members resolve to their
// fitted model instead of a collection.
func (e *Executor) produce(n *Node, ins []*engine.Collection) (out *engine.Collection) {
	// Cooperative cancellation point: a canceled pass stops at the next
	// node boundary; the coordinator drains in-flight members and
	// re-raises the sentinel, which RunContext converts to an error.
	e.ctx.CheckCanceled()
	if n.Kind == KindEstimator {
		e.fitModel(n)
		return nil
	}
	e.mu.Lock()
	if f, ok := e.flight[n.ID]; ok {
		e.mu.Unlock()
		<-f.done
		if f.panicked != nil {
			panic(f.panicked)
		}
		e.noteCoalesced(n)
		return f.out
	}
	f := &flight{done: make(chan struct{})}
	e.flight[n.ID] = f
	e.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			f.panicked = r
		}
		f.out = out
		e.mu.Lock()
		delete(e.flight, n.ID)
		e.mu.Unlock()
		close(f.done)
		if f.panicked != nil {
			panic(f.panicked)
		}
	}()

	if e.cache != nil {
		if v, ok := e.cache.Get(cacheKey(n.ID)); ok {
			e.noteHit(n)
			return v.(*engine.Collection)
		}
	}
	// A planned cache boundary can lose its entry between planning and
	// production (tight budgets, concurrent eviction); localCompute then
	// demands the missing inputs itself via nested passes. Nodes with a
	// shared prefix key resolve through the cross-fit cache here —
	// single-flight against every other executor attached to it.
	out, bytes := e.sharedFetch(n, ins)
	if e.cache != nil {
		if !e.cache.Put(cacheKey(n.ID), out, bytes) && e.retainSpeculatively(n.ID) {
			// Speculative cross-pass retention: the policy rejected the
			// entry (not in the pinned set), but an estimator that will
			// refetch it is still fitting — keep it in the cache's free
			// headroom, strictly subordinate to the budget (never
			// evicting anything to make room), until the last
			// interested fit completes or budget pressure reclaims it.
			// Re-check interest after inserting: the last fit can
			// complete between the check and the insert, and its
			// release must not be allowed to miss the entry.
			if e.cache.PutSpeculative(cacheKey(n.ID), out, bytes) && !e.retainSpeculatively(n.ID) {
				e.cache.ReleaseSpeculative(cacheKey(n.ID))
			}
		}
	}
	return out
}
