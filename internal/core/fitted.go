package core

import (
	"context"
	"fmt"

	"keystoneml/internal/engine"
)

// Fitted is a trained pipeline: every estimator node resolved to its
// fitted model. Applying it never consults the training cache.
//
// A Fitted value is immutable after NewFitted returns: the evaluation
// plan is precomputed once at construction and every entry point works
// off read-only state plus per-call scratch, so one Fitted may be shared
// by any number of concurrent callers (the serving surface depends on
// this).
type Fitted struct {
	g      *Graph
	models map[int]TransformOp
	ctx    *engine.Context

	// steps is the precomputed single-record evaluation plan: the
	// reachable non-estimator nodes in dependency order with dep slots
	// and models resolved up front, so the per-record hot path is a flat
	// loop over closures with no graph walk, no memo map, and no
	// Collection/partition machinery.
	steps  []fittedStep
	outIdx int
}

// fittedStep is one node of the precompiled plan. deps index earlier
// steps (the scratch slots their outputs land in).
type fittedStep struct {
	kind  NodeKind
	deps  []int
	apply func(in any) any // set for transform and apply-model steps
	op    TransformOp      // the operator behind apply, for persistence
	name  string
}

// NewFitted assembles a fitted pipeline from a graph and its trained
// models, precompiling the single-record evaluation plan. models may be
// missing entries for estimators that were never fit; evaluating a path
// through such a node panics, matching the lazy behaviour of Apply.
func NewFitted(g *Graph, models map[int]TransformOp, ctx *engine.Context) *Fitted {
	f := &Fitted{g: g, models: models, ctx: ctx}
	slot := make(map[int]int)
	// Walk only apply-time edges (an apply-model step consumes its data
	// dependency; the estimator subgraph — including the labels source —
	// is never evaluated), matching Apply's reachability exactly.
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if idx, ok := slot[n.ID]; ok {
			return idx
		}
		st := fittedStep{kind: n.Kind, name: n.OpName()}
		switch n.Kind {
		case KindSource, KindLabels:
			// No inputs. A labels step panics at evaluation time if a
			// pipeline ever consumes labels on an apply-time path, the
			// same error Apply raises lazily.
		case KindTransform:
			st.deps = []int{walk(n.Deps[0])}
			st.apply = n.Transform.Apply
			st.op = n.Transform
		case KindGather:
			st.deps = make([]int, len(n.Deps))
			for i, d := range n.Deps {
				st.deps[i] = walk(d)
			}
		case KindApplyModel:
			st.deps = []int{walk(n.Deps[1])}
			if model, ok := models[n.Deps[0].ID]; ok {
				st.apply = model.Apply
				st.op = model
			} else {
				estID := n.Deps[0].ID
				st.apply = func(any) any {
					panic(fmt.Sprintf("core: missing fitted model for estimator node #%d", estID))
				}
			}
		default:
			panic(fmt.Sprintf("core: unexpected node kind %v at apply time", n.Kind))
		}
		idx := len(f.steps)
		slot[n.ID] = idx
		f.steps = append(f.steps, st)
		return idx
	}
	f.outIdx = walk(g.Sink)
	return f
}

// Apply runs the transformer chain over new data. Estimator fits are
// replaced by their trained models; within one Apply call node outputs are
// memoized (test-time execution has no iteration, so plain memoization is
// both correct and optimal). Apply is the batch oracle the single-record
// path is tested against.
func (f *Fitted) Apply(data *engine.Collection) *engine.Collection {
	return f.applyWith(f.ctx, data)
}

func (f *Fitted) applyWith(ctx *engine.Context, data *engine.Collection) *engine.Collection {
	memo := make(map[int]*engine.Collection)
	var eval func(n *Node) *engine.Collection
	eval = func(n *Node) *engine.Collection {
		if c, ok := memo[n.ID]; ok {
			return c
		}
		var out *engine.Collection
		switch n.Kind {
		case KindSource:
			out = data
		case KindLabels:
			panic("core: fitted pipeline must not read labels at apply time")
		case KindTransform:
			out = ctx.Map(eval(n.Deps[0]), n.Transform.Apply)
		case KindGather:
			out = eval(n.Deps[0])
			for _, d := range n.Deps[1:] {
				out = ctx.Zip(out, eval(d), ConcatFeatures)
			}
		case KindApplyModel:
			model, ok := f.models[n.Deps[0].ID]
			if !ok {
				panic(fmt.Sprintf("core: missing fitted model for estimator node #%d", n.Deps[0].ID))
			}
			out = ctx.Map(eval(n.Deps[1]), model.Apply)
		default:
			panic(fmt.Sprintf("core: unexpected node kind %v at apply time", n.Kind))
		}
		memo[n.ID] = out
		return out
	}
	return eval(f.g.Sink)
}

// TransformOne runs a single record through the fitted pipeline on the
// precompiled hot path: one scratch slice, no Collection wrapping, no
// goroutines. It is safe for any number of concurrent callers.
func (f *Fitted) TransformOne(record any) any {
	vals := make([]any, len(f.steps))
	for i := range f.steps {
		st := &f.steps[i]
		switch st.kind {
		case KindSource:
			vals[i] = record
		case KindTransform, KindApplyModel:
			vals[i] = st.apply(vals[st.deps[0]])
		case KindGather:
			out := vals[st.deps[0]]
			for _, d := range st.deps[1:] {
				out = ConcatFeatures(out, vals[d])
			}
			vals[i] = out
		case KindLabels:
			panic("core: fitted pipeline must not read labels at apply time")
		}
	}
	return vals[f.outIdx]
}

// batchParallelMin is the batch size above which TransformBatch fans out
// across the engine context's partition workers instead of looping on the
// caller's goroutine; below it goroutine dispatch costs more than it buys.
const batchParallelMin = 64

// TransformBatch runs a batch of records through the fitted pipeline,
// record-by-record on the hot path. Small batches stay on the calling
// goroutine (polling ctx between records); large batches fan out across
// the engine context's workers with the same per-record semantics, so
// outputs are bit-identical either way. It returns ctx's error if the
// batch is abandoned mid-way.
func (f *Fitted) TransformBatch(ctx context.Context, records []any) (out []any, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(records) >= batchParallelMin && f.ctx.Parallelism > 1 {
		defer func() {
			if r := recover(); r != nil {
				if c, ok := engine.AsCanceled(r); ok {
					out, err = nil, c
					return
				}
				panic(r)
			}
		}()
		ec := f.ctx.WithCancellation(ctx)
		return ec.Map(engine.FromSlice(records, f.ctx.Parallelism), f.TransformOne).Collect(), nil
	}
	out = make([]any, len(records))
	for i, rec := range records {
		if i%32 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out[i] = f.TransformOne(rec)
	}
	return out, nil
}

// ApplyOne runs a single record through the fitted pipeline.
//
// Deprecated: ApplyOne is the historical name; it now routes through the
// single-record hot path. Use TransformOne.
func (f *Fitted) ApplyOne(record any) any {
	return f.TransformOne(record)
}

// applyOneViaCollection is the pre-redesign ApplyOne: wrap the record in
// a one-element Collection and run the batch path. Kept unexported as the
// baseline BenchmarkTransformOne measures the hot path against.
func (f *Fitted) applyOneViaCollection(record any) any {
	out := f.Apply(engine.FromSlice([]any{record}, 1))
	return out.Collect()[0]
}
