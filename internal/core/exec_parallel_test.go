package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"keystoneml/internal/engine"
)

// buildWide constructs a k-branch pipeline: source -> shared -> k parallel
// branches -> gather, optionally with a per-record delay to make branch
// overlap observable in wall time.
func buildWide(k int, delay time.Duration) *Pipeline[[]float64, []float64] {
	p := Input[[]float64]()
	shared := AndThen(p, FuncOp("shared", func(x []float64) []float64 { return x }))
	branches := make([]*Pipeline[[]float64, []float64], k)
	for i := 0; i < k; i++ {
		scale := float64(i + 1)
		branches[i] = AndThen(shared, FuncOp(fmt.Sprintf("branch%d", i), func(x []float64) []float64 {
			if delay > 0 {
				time.Sleep(delay)
			}
			out := make([]float64, len(x))
			for j, v := range x {
				out[j] = scale * v
			}
			return out
		}))
	}
	return Gather(branches...)
}

func vecColl(n, dim int, parts int) *engine.Collection {
	items := make([]any, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(i*dim + j)
		}
		items[i] = v
	}
	return engine.FromSlice(items, parts)
}

func collectVecs(c *engine.Collection) [][]float64 {
	recs := c.Collect()
	out := make([][]float64, len(recs))
	for i, r := range recs {
		out[i] = r.([]float64)
	}
	return out
}

// runBoth executes the same freshly built graph under the sequential
// oracle and the parallel scheduler and returns both sink outputs.
func runBoth(t *testing.T, build func() *Graph, data, labels *engine.Collection, workers int) (seq, par [][]float64) {
	t.Helper()
	ctx := engine.NewContext(workers)
	exSeq := NewExecutor(build(), ctx, nil, data, labels).SetWorkers(1)
	_, outSeq, _ := exSeq.Run()
	exPar := NewExecutor(build(), ctx, nil, data, labels).SetWorkers(workers)
	if exPar.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", exPar.Workers(), workers)
	}
	_, outPar, _ := exPar.Run()
	return collectVecs(outSeq), collectVecs(outPar)
}

func assertSameVecs(t *testing.T, seq, par [][]float64) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("record counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if len(seq[i]) != len(par[i]) {
			t.Fatalf("record %d dims differ: %d vs %d", i, len(seq[i]), len(par[i]))
		}
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("record %d dim %d differs: %g vs %g", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestParallelEquivalenceWideGather(t *testing.T) {
	build := func() *Graph { return buildWide(6, 0).Graph() }
	seq, par := runBoth(t, build, vecColl(40, 4, 2), nil, 4)
	assertSameVecs(t, seq, par)
}

func TestParallelEquivalenceWithEstimators(t *testing.T) {
	build := func() *Graph {
		p := Input[float64]()
		p2 := AndThen(p, FuncOp("x3", func(x float64) float64 { return 3 * x }))
		est := &doublerEst{weight: 4}
		return AndThenEstimator(p2, NewEst[float64, float64](est)).Graph()
	}
	data := []float64{5, 1, -2, 7, 4, 4, -9, 0}
	ctx := engine.NewContext(4)
	exSeq := NewExecutor(build(), ctx, nil, floatColl(data, 2), nil).SetWorkers(1)
	_, outSeq, _ := exSeq.Run()
	exPar := NewExecutor(build(), ctx, nil, floatColl(data, 2), nil).SetWorkers(4)
	modelsPar, outPar, _ := exPar.Run()
	if len(modelsPar) != 1 {
		t.Fatalf("parallel run fitted %d models, want 1", len(modelsPar))
	}
	a, b := outSeq.Collect(), outPar.Collect()
	for i := range a {
		if a[i].(float64) != b[i].(float64) {
			t.Fatalf("outputs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestParallelLinearChainCountsMatchOracle: on a linear chain there is no
// branch sharing, so compute counts are deterministic and must equal the
// sequential oracle's — including the estimator's iterative refetches.
func TestParallelLinearChainCountsMatchOracle(t *testing.T) {
	build := func() (*Graph, int) {
		p := Input[float64]()
		p2 := AndThen(p, FuncOp("id", func(x float64) float64 { return x }))
		est := &doublerEst{weight: 3}
		g := AndThenEstimator(p2, NewEst[float64, float64](est))
		return g.Graph(), p2.OutputNode().ID
	}
	ctx := engine.NewContext(4)
	gSeq, idSeq := build()
	_, _, repSeq := NewExecutor(gSeq, ctx, nil, floatColl([]float64{1, 2}, 1), nil).SetWorkers(1).Run()
	gPar, idPar := build()
	_, _, repPar := NewExecutor(gPar, ctx, nil, floatColl([]float64{1, 2}, 1), nil).SetWorkers(4).Run()
	if repSeq.Nodes[idSeq].Computes != repPar.Nodes[idPar].Computes {
		t.Errorf("linear-chain computes diverged: sequential %d, parallel %d",
			repSeq.Nodes[idSeq].Computes, repPar.Nodes[idPar].Computes)
	}
	if repPar.Nodes[idPar].Computes != 4 {
		t.Errorf("upstream transform computed %d times, want 4 (3 passes + 1 apply)", repPar.Nodes[idPar].Computes)
	}
}

// TestParallelSharedPrefixComputesOnce: within one pass a node shared by
// several branches is computed exactly once (the single-flight /
// pass-memoization rule the scheduler is specified to enforce).
func TestParallelSharedPrefixComputesOnce(t *testing.T) {
	p := Input[[]float64]()
	shared := AndThen(p, FuncOp("shared", func(x []float64) []float64 { return x }))
	b1 := AndThen(shared, FuncOp("b1", func(x []float64) []float64 { return x }))
	b2 := AndThen(shared, FuncOp("b2", func(x []float64) []float64 { return x }))
	g := Gather(b1, b2)

	ctx := engine.NewContext(4)
	ex := NewExecutor(g.Graph(), ctx, nil, vecColl(4, 2, 1), nil).SetWorkers(4)
	_, _, report := ex.Run()
	if got := report.Nodes[shared.OutputNode().ID].Computes; got != 1 {
		t.Errorf("shared prefix computed %d times under one pass, want 1", got)
	}
}

// TestParallelCachingStillObserved: pinned-set materialization must keep
// working under the parallel scheduler — the cached node computes once
// and estimator refetches hit.
func TestParallelCachingStillObserved(t *testing.T) {
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("id", func(x float64) float64 { return x }))
	est := &doublerEst{weight: 5}
	p3 := AndThenEstimator(p2, NewEst[float64, float64](est))

	ctx := engine.NewContext(4)
	transformID := p2.OutputNode().ID
	cache := engine.NewCacheManager(0, engine.NewPinnedSetPolicy([]string{cacheKey(transformID)}))
	ex := NewExecutor(p3.Graph(), ctx, cache, floatColl([]float64{1, 2}, 1), nil).SetWorkers(4)
	_, _, report := ex.Run()
	st := report.Nodes[transformID]
	if st.Computes != 1 {
		t.Errorf("cached transform computed %d times, want 1", st.Computes)
	}
	if st.Hits != 5 {
		t.Errorf("cache hits = %d, want 5 (4 remaining passes + 1 apply)", st.Hits)
	}
}

// TestParallelBranchesOverlap verifies the scheduler actually overlaps
// independent branches: with k sleeping branches and k workers, wall time
// must be well under the sequential sum.
func TestParallelBranchesOverlap(t *testing.T) {
	const k, delay = 4, 30 * time.Millisecond
	data := vecColl(2, 2, 1) // one partition: branch overlap is the only parallelism
	ctx := engine.NewContext(k)

	exSeq := NewExecutor(buildWide(k, delay).Graph(), ctx, nil, data, nil).SetWorkers(1)
	seqTime := timed(func() { exSeq.Run() })
	exPar := NewExecutor(buildWide(k, delay).Graph(), ctx, nil, data, nil).SetWorkers(k)
	parTime := timed(func() { exPar.Run() })

	// Sequential: k branches x 2 records x delay. Parallel: branches
	// overlap, so ~2 x delay. Require a conservative 1.5x.
	if parTime > 0 && float64(seqTime)/float64(parTime) < 1.5 {
		t.Errorf("parallel scheduler did not overlap branches: sequential %v, parallel %v", seqTime, parTime)
	}
}

func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// TestParallelWorkerPoolBounded: at most `workers` node computations may
// run concurrently, whatever the DAG width.
func TestParallelWorkerPoolBounded(t *testing.T) {
	const workers, branches = 2, 8
	var mu sync.Mutex
	running, peak := 0, 0
	p := Input[[]float64]()
	bs := make([]*Pipeline[[]float64, []float64], branches)
	for i := 0; i < branches; i++ {
		bs[i] = AndThen(p, FuncOp(fmt.Sprintf("b%d", i), func(x []float64) []float64 {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			return x
		}))
	}
	g := Gather(bs...)
	ctx := engine.NewContext(1) // one record partition -> one Map worker per node
	ex := NewExecutor(g.Graph(), ctx, nil, vecColl(1, 2, 1), nil).SetWorkers(workers)
	ex.Run()
	if peak > workers {
		t.Errorf("worker pool bound violated: %d nodes computing concurrently, bound %d", peak, workers)
	}
	if peak < 2 {
		t.Errorf("no overlap observed (peak %d); scheduler appears sequential", peak)
	}
}

// countingEst tracks how many fits are inside their compute section at
// once (after the input fetch, which legitimately yields the slot).
type countingEst struct {
	mu      *sync.Mutex
	running *int
	peak    *int
}

func (c countingEst) Name() string { return "test.countingEst" }
func (c countingEst) Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp {
	data()
	c.mu.Lock()
	*c.running++
	if *c.running > *c.peak {
		*c.peak = *c.running
	}
	c.mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	c.mu.Lock()
	*c.running--
	c.mu.Unlock()
	return IdentityOp()
}

// TestParallelEstimatorFitsBounded: estimator fits occupy worker slots
// for their compute sections too — the pool bound covers every node
// kind, not just transforms.
func TestParallelEstimatorFitsBounded(t *testing.T) {
	const workers, branches = 2, 6
	var mu sync.Mutex
	running, peak := 0, 0
	p := Input[[]float64]()
	bs := make([]*Pipeline[[]float64, []float64], branches)
	for i := 0; i < branches; i++ {
		pre := AndThen(p, FuncOp(fmt.Sprintf("pre%d", i), func(x []float64) []float64 { return x }))
		bs[i] = AndThenEstimator(pre, NewEst[[]float64, []float64](
			countingEst{mu: &mu, running: &running, peak: &peak}))
	}
	g := Gather(bs...)
	ctx := engine.NewContext(workers)
	ex := NewExecutor(g.Graph(), ctx, nil, vecColl(2, 2, 1), nil).SetWorkers(workers)
	ex.Run()
	if peak > workers {
		t.Errorf("estimator fits escaped the worker pool: %d concurrent, bound %d", peak, workers)
	}
	if peak < 2 {
		t.Errorf("no fit overlap observed (peak %d); estimators appear serialized", peak)
	}
}

// TestParallelPanicPropagates: a panic inside an operator must surface to
// the Run caller, not hang the pass or die in a worker goroutine.
func TestParallelPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected operator panic to propagate through the scheduler")
		}
	}()
	p := Input[[]float64]()
	ok := AndThen(p, FuncOp("fine", func(x []float64) []float64 { return x }))
	boom := AndThen(p, FuncOp("boom", func(x []float64) []float64 { panic("operator exploded") }))
	g := Gather(ok, boom)
	ctx := engine.NewContext(4)
	NewExecutor(g.Graph(), ctx, nil, vecColl(3, 2, 1), nil).SetWorkers(4).Run()
}

// TestParallelTinyCacheStress hammers the scheduler with shared subtrees
// and a cache budget small enough to force constant admission/eviction
// churn; run under -race this exercises every lock in the executor,
// cache manager and single-flight paths.
func TestParallelTinyCacheStress(t *testing.T) {
	build := func() *Graph {
		p := Input[[]float64]()
		shared := AndThen(p, FuncOp("shared", func(x []float64) []float64 { return x }))
		var branches []*Pipeline[[]float64, []float64]
		for i := 0; i < 5; i++ {
			scale := float64(i + 1)
			b := AndThen(shared, FuncOp(fmt.Sprintf("scale%d", i), func(x []float64) []float64 {
				out := make([]float64, len(x))
				for j, v := range x {
					out[j] = scale * v
				}
				return out
			}))
			branches = append(branches, b)
		}
		gathered := Gather(branches...)
		est := &doublerVecEst{weight: 4}
		return AndThenEstimator(gathered, NewEst[[]float64, []float64](est)).Graph()
	}
	data := vecColl(16, 3, 4)
	ctx := engine.NewContext(4)
	var ref [][]float64
	for trial := 0; trial < 6; trial++ {
		cache := engine.NewCacheManager(700, engine.NewLRUPolicy()) // a few vectors at most
		ex := NewExecutor(build(), ctx, cache, data, nil).SetWorkers(4)
		_, out, _ := ex.Run()
		got := collectVecs(out)
		if trial == 0 {
			ref = got
		} else {
			assertSameVecs(t, ref, got)
		}
		if cache.Used() > 700 {
			t.Fatalf("cache over budget under concurrency: %d", cache.Used())
		}
	}
}

// doublerVecEst is a vector analogue of doublerEst: learns the per-dim
// mean over `weight` passes and subtracts it.
type doublerVecEst struct {
	weight int
}

func (d *doublerVecEst) Name() string { return "test.vecMeanCenter" }
func (d *doublerVecEst) Weight() int  { return d.weight }
func (d *doublerVecEst) Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp {
	passes := d.weight
	if passes < 1 {
		passes = 1
	}
	var mean []float64
	for p := 0; p < passes; p++ {
		c := data()
		recs := c.Collect()
		mean = make([]float64, len(recs[0].([]float64)))
		for _, r := range recs {
			for j, v := range r.([]float64) {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(recs))
		}
	}
	return NewTransform("test.subVecMean", func(in any) any {
		x := in.([]float64)
		out := make([]float64, len(x))
		for j := range x {
			out[j] = x[j] - mean[j]
		}
		return out
	})
}

// TestStages verifies the ready-set level decomposition the scheduler's
// dispatch is based on.
func TestStages(t *testing.T) {
	g := buildWide(3, 0).Graph()
	stages := g.Stages()
	if len(stages) != 4 {
		t.Fatalf("stage count = %d, want 4 (source, shared, branches, gather)", len(stages))
	}
	if len(stages[2]) != 3 {
		t.Errorf("branch stage width = %d, want 3", len(stages[2]))
	}
	if len(stages[3]) != 1 || stages[3][0].Kind != KindGather {
		t.Errorf("final stage should be the gather node, got %v", stages[3])
	}
}

// TestParallelConcurrentExecutors runs several parallel executors over
// the same shared collections at once — the engine and collections must
// tolerate cross-executor concurrency.
func TestParallelConcurrentExecutors(t *testing.T) {
	data := vecColl(20, 3, 2)
	var wg sync.WaitGroup
	outs := make([][][]float64, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := engine.NewContext(2)
			ex := NewExecutor(buildWide(4, 0).Graph(), ctx, nil, data, nil).SetWorkers(2)
			_, out, _ := ex.Run()
			outs[r] = collectVecs(out)
		}(r)
	}
	wg.Wait()
	for r := 1; r < 4; r++ {
		assertSameVecs(t, outs[0], outs[r])
	}
}
