package core

import "testing"

// sigOp is a signable transform: it carries its parameters as encodable
// state, which is what lets PrefixSignatures key it by content.
type sigOp struct {
	name  string
	state string
}

func (o *sigOp) Name() string                 { return o.name }
func (o *sigOp) Apply(in any) any             { return in }
func (o *sigOp) StateKind() string            { return "test.sig" }
func (o *sigOp) EncodeState() ([]byte, error) { return []byte(o.state), nil }

func TestPrefixSignaturesMatchAcrossGraphs(t *testing.T) {
	build := func() (*Graph, *Node, *Node) {
		g := NewGraph()
		t1 := g.AddTransform(&sigOp{name: "f1", state: "p=1"}, g.Source)
		t2 := g.AddTransform(&sigOp{name: "f2", state: "p=2"}, t1)
		g.Sink = t2
		return g, t1, t2
	}
	g1, a1, a2 := build()
	g2, b1, b2 := build()
	// Perturb g2's node IDs relative to g1 by adding an unrelated branch
	// first — content signatures must not depend on graph identity.
	s1 := PrefixSignatures(g1, "scope")
	s2 := PrefixSignatures(g2, "scope")
	if s1[a1.ID] == "" || s1[a2.ID] == "" {
		t.Fatalf("signable chain got no keys: %v", s1)
	}
	if s1[a1.ID] != s2[b1.ID] || s1[a2.ID] != s2[b2.ID] {
		t.Error("identical chains in different graphs keyed differently")
	}
	if s1[a1.ID] == s1[a2.ID] {
		t.Error("distinct chain positions share a key")
	}
}

func TestPrefixSignaturesDivergeOnStateAndScope(t *testing.T) {
	g1 := NewGraph()
	n1 := g1.AddTransform(&sigOp{name: "f", state: "p=1"}, g1.Source)
	g2 := NewGraph()
	n2 := g2.AddTransform(&sigOp{name: "f", state: "p=2"}, g2.Source)
	if PrefixSignatures(g1, "s")[n1.ID] == PrefixSignatures(g2, "s")[n2.ID] {
		t.Error("different operator state keyed identically")
	}
	if PrefixSignatures(g1, "s1")[n1.ID] == PrefixSignatures(g1, "s2")[n1.ID] {
		t.Error("different scopes keyed identically")
	}
}

func TestPrefixSignaturesStopAtUnsignableNodes(t *testing.T) {
	g := NewGraph()
	t1 := g.AddTransform(&sigOp{name: "f1", state: "a"}, g.Source)
	// An ad-hoc closure has no codec and no resolver: it and everything
	// downstream must stay unkeyed.
	t2 := g.AddTransform(NewTransform("adhoc", func(in any) any { return in }), t1)
	t3 := g.AddTransform(&sigOp{name: "f3", state: "c"}, t2)
	gather := g.AddGather([]*Node{t1, t3})
	sigs := PrefixSignatures(g, "s")
	if sigs[t1.ID] == "" {
		t.Error("signable prefix node got no key")
	}
	for _, n := range []*Node{t2, t3, gather} {
		if sigs[n.ID] != "" {
			t.Errorf("node #%d downstream of an unsignable op got key %q", n.ID, sigs[n.ID])
		}
	}
	// A gather over fully signable branches is keyed.
	g2 := NewGraph()
	b1 := g2.AddTransform(&sigOp{name: "f1", state: "a"}, g2.Source)
	b2 := g2.AddTransform(&sigOp{name: "f2", state: "b"}, g2.Source)
	ga := g2.AddGather([]*Node{b1, b2})
	if PrefixSignatures(g2, "s")[ga.ID] == "" {
		t.Error("gather over signable branches got no key")
	}
}

func TestPrefixSignaturesSkipEstimatorSubgraphs(t *testing.T) {
	g := NewGraph()
	t1 := g.AddTransform(&sigOp{name: "f1", state: "a"}, g.Source)
	est := g.AddEstimator(&doublerEst{weight: 1}, t1, false)
	applied := g.AddApplyModel(est, t1)
	sigs := PrefixSignatures(g, "s")
	if sigs[est.ID] != "" || sigs[applied.ID] != "" {
		t.Error("estimator or apply-model node was keyed; candidates diverge there")
	}
	if sigs[t1.ID] == "" {
		t.Error("prefix upstream of the estimator lost its key")
	}
}
