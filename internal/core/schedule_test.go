package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"keystoneml/internal/engine"
)

// chainGraph builds source -> t1 -> t2 -> ... -> tn and returns the
// graph plus the transform node IDs in order.
func chainGraph(n int) (*Graph, []int) {
	g := NewGraph()
	dep := g.Source
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		node := g.AddTransform(IdentityOp(), dep)
		ids[i] = node.ID
		dep = node
	}
	return g, ids
}

// fanGraph builds source -> k parallel branches -> gather and returns
// the graph plus the branch node IDs.
func fanGraph(k int) (*Graph, []int) {
	g := NewGraph()
	branches := make([]*Node, k)
	ids := make([]int, k)
	for i := 0; i < k; i++ {
		branches[i] = g.AddTransform(IdentityOp(), g.Source)
		ids[i] = branches[i].ID
	}
	g.AddGather(branches)
	return g, ids
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMakespanChainIsSumAtAnyWidth(t *testing.T) {
	g, ids := chainGraph(3)
	times := map[int]float64{ids[0]: 1, ids[1]: 2, ids[2]: 3}
	for _, workers := range []int{1, 2, 8} {
		p := NewSchedulePlan(g, times, nil, workers)
		if got := p.Makespan(); !almostEqual(got, 6) {
			t.Errorf("workers=%d chain makespan = %g, want 6 (a chain cannot overlap)", workers, got)
		}
	}
}

func TestMakespanFanOverlapsWithWorkers(t *testing.T) {
	g, ids := fanGraph(4)
	times := map[int]float64{}
	for _, id := range ids {
		times[id] = 1
	}
	for _, tc := range []struct {
		workers int
		want    float64
	}{
		{1, 4}, // sequential: all four branches in series
		{2, 2}, // two at a time
		{4, 1}, // full overlap
		{8, 1}, // extra workers don't help beyond DAG width
	} {
		p := NewSchedulePlan(g, times, nil, tc.workers)
		if got := p.Makespan(); !almostEqual(got, tc.want) {
			t.Errorf("workers=%d fan makespan = %g, want %g", tc.workers, got, tc.want)
		}
	}
}

func TestMakespanEstimatorRefetchesAndCacheBoundary(t *testing.T) {
	// source -> t1 -> est(w=3) -> apply: t1 runs once in the outer pass
	// plus once per fetch (4 total); pinning t1 collapses that to one.
	g := NewGraph()
	t1 := g.AddTransform(IdentityOp(), g.Source)
	est := g.AddEstimator(&schedTestEst{w: 3}, t1, false)
	g.AddApplyModel(est, t1)
	times := map[int]float64{t1.ID: 1}

	for _, workers := range []int{1, 4} {
		uncached := NewSchedulePlan(g, times, nil, workers)
		if got := uncached.Makespan(); !almostEqual(got, 4) {
			t.Errorf("workers=%d uncached makespan = %g, want 4 (3 fetches + 1 apply access)", workers, got)
		}
		cached := NewSchedulePlan(g, times, map[int]bool{t1.ID: true}, workers)
		if got := cached.Makespan(); !almostEqual(got, 1) {
			t.Errorf("workers=%d cached makespan = %g, want 1 (computed once, then boundary)", workers, got)
		}
	}
}

func TestPriorityIsDownstreamCriticalPath(t *testing.T) {
	g, ids := chainGraph(3)
	times := map[int]float64{ids[0]: 1, ids[1]: 2, ids[2]: 3}
	p := NewSchedulePlan(g, times, nil, 2)
	// Priority of a chain node = its own time plus everything downstream.
	wants := map[int]float64{ids[0]: 6, ids[1]: 5, ids[2]: 3}
	for id, want := range wants {
		if got := p.Priority(id); !almostEqual(got, want) {
			t.Errorf("priority(#%d) = %g, want %g", id, got, want)
		}
	}
	// The source is free (t=0), so it inherits its successor's critical
	// path rather than exceeding it.
	if got := p.Priority(g.Source.ID); !almostEqual(got, 6) {
		t.Errorf("source priority = %g, want 6 (free node inherits downstream path)", got)
	}
}

func TestLessBreaksTiesTowardPinnedThenWidth(t *testing.T) {
	// Three equal-time branches; b is pinned, c has an extra consumer.
	g := NewGraph()
	a := g.AddTransform(IdentityOp(), g.Source)
	b := g.AddTransform(IdentityOp(), g.Source)
	c := g.AddTransform(IdentityOp(), g.Source)
	extra := g.AddTransform(IdentityOp(), c)
	g.AddGather([]*Node{a, b, c, extra})
	times := map[int]float64{a.ID: 1, b.ID: 1, c.ID: 1, extra.ID: 0}
	p := NewSchedulePlan(g, times, map[int]bool{b.ID: true}, 2)
	if !p.Less(b, a) {
		t.Error("pinned node must win a priority tie")
	}
	if !p.Less(c, a) {
		t.Error("wider-unlock node must win a tie among unpinned nodes")
	}
	if p.Less(a, b) == p.Less(b, a) {
		t.Error("Less must be a strict ordering (exactly one direction true)")
	}
}

func TestRefetchSetPrunesAtBoundaries(t *testing.T) {
	// source -> t1 -> t2 -> est(w=2) -> apply, with t1 pinned: the fit
	// refetches t2 but stops at the t1 boundary.
	g := NewGraph()
	t1 := g.AddTransform(IdentityOp(), g.Source)
	t2 := g.AddTransform(IdentityOp(), t1)
	est := g.AddEstimator(&schedTestEst{w: 2}, t2, false)
	g.AddApplyModel(est, t2)

	p := NewSchedulePlan(g, nil, map[int]bool{t1.ID: true}, 4)
	set := p.RefetchSet(est.ID)
	if len(set) != 1 || set[0] != t2.ID {
		t.Errorf("refetch set = %v, want [%d] (t2 only; t1 is a pinned boundary)", set, t2.ID)
	}
	counts := p.RefetchCounts()
	if counts[t2.ID] != 1 || counts[t1.ID] != 0 {
		t.Errorf("refetch counts = %v, want t2:1 only", counts)
	}

	unpinned := NewSchedulePlan(g, nil, nil, 4)
	if set := unpinned.RefetchSet(est.ID); len(set) != 2 {
		t.Errorf("unpinned refetch set = %v, want both t1 and t2", set)
	}
}

// schedTestEst is a minimal iterative estimator for schedule tests.
type schedTestEst struct{ w int }

func (e *schedTestEst) Name() string { return "test.schedEst" }
func (e *schedTestEst) Weight() int  { return e.w }
func (e *schedTestEst) Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp {
	for i := 0; i < e.w; i++ {
		data()
	}
	return IdentityOp()
}

// TestPriorityDispatchRunsCriticalPathFirst attaches a profile-based
// schedule plan and checks that, with fewer workers than ready branches,
// the branches modeled as longest dispatch first.
func TestPriorityDispatchRunsCriticalPathFirst(t *testing.T) {
	var mu sync.Mutex
	var started []string
	// Each branch sleeps long enough that the two first-dispatched
	// goroutines are guaranteed to have recorded their start before
	// either completes and frees the third dispatch token.
	note := func(name string) TransformOp {
		return NewTransform(name, func(x any) any {
			mu.Lock()
			started = append(started, name)
			mu.Unlock()
			time.Sleep(30 * time.Millisecond)
			return x
		})
	}
	g := NewGraph()
	long := g.AddTransform(note("long"), g.Source)
	mid := g.AddTransform(note("mid"), g.Source)
	short := g.AddTransform(note("short"), g.Source)
	g.AddGather([]*Node{long, mid, short})

	times := map[int]float64{long.ID: 5, mid.ID: 3, short.ID: 1}
	plan := NewSchedulePlan(g, times, nil, 2)
	ctx := engine.NewContext(2)
	ex := NewExecutor(g, ctx, nil, engine.FromSlice([]any{[]float64{1}}, 1), nil).
		SetWorkers(2).SetSchedulePlan(plan) // 2 workers, 3 ready branches
	ex.Run()

	mu.Lock()
	defer mu.Unlock()
	if len(started) != 3 {
		t.Fatalf("started %v, want 3 branch computations", started)
	}
	// With 2 dispatch tokens the highest-priority pair goes first; the
	// modeled-shortest branch must wait for a completion.
	if started[2] != "short" {
		t.Errorf("dispatch order %v: short must be gated behind the two longer branches", started)
	}
}

// TestSpeculativeRetentionServesRefetches: with a schedule plan attached
// and budget headroom, an unpinnable intermediate computed in the outer
// pass is retained for the estimator's refetch passes, then released
// when the fit completes.
func TestSpeculativeRetentionServesRefetches(t *testing.T) {
	g := NewGraph()
	t1 := g.AddTransform(IdentityOp(), g.Source)
	est := g.AddEstimator(&schedTestEst{w: 3}, t1, false)
	g.AddApplyModel(est, t1)

	ctx := engine.NewContext(4)
	// Pinned set is empty: the policy rejects every Put, so only the
	// speculative path can keep t1 alive.
	cache := engine.NewCacheManager(0, engine.NewPinnedSetPolicy(nil))
	plan := NewSchedulePlan(g, nil, nil, 4)
	ex := NewExecutor(g, ctx, cache, engine.FromSlice([]any{[]float64{1, 2}}, 1), nil).
		SetWorkers(4).SetSchedulePlan(plan)
	_, _, report := ex.Run()

	st := report.Nodes[t1.ID]
	if st.Computes != 1 {
		t.Errorf("retained transform computed %d times, want 1 (refetches served speculatively)", st.Computes)
	}
	if st.Hits != 3 {
		t.Errorf("retained transform hits = %d, want 3 (one per fit pass)", st.Hits)
	}
	if got := cache.SpeculativeBytes(); got != 0 {
		t.Errorf("speculative bytes after run = %d, want 0 (released when the fit completed)", got)
	}
	if used := cache.Used(); used != 0 {
		t.Errorf("cache used after run = %d, want 0", used)
	}
}

// TestSpeculativeRetentionSubordinateToBudget: with no budget headroom
// the retention path must not evict anything — behaviour falls back to
// the oracle's recompute-per-fetch counts.
func TestSpeculativeRetentionSubordinateToBudget(t *testing.T) {
	g := NewGraph()
	t1 := g.AddTransform(IdentityOp(), g.Source)
	est := g.AddEstimator(&schedTestEst{w: 3}, t1, false)
	g.AddApplyModel(est, t1)

	ctx := engine.NewContext(4)
	cache := engine.NewCacheManager(1, engine.NewPinnedSetPolicy(nil)) // 1 byte: nothing fits
	plan := NewSchedulePlan(g, nil, nil, 4)
	ex := NewExecutor(g, ctx, cache, engine.FromSlice([]any{[]float64{1, 2}}, 1), nil).
		SetWorkers(4).SetSchedulePlan(plan)
	_, _, report := ex.Run()

	st := report.Nodes[t1.ID]
	if st.Computes != 4 {
		t.Errorf("transform computed %d times, want 4 (no headroom: 3 fetches + outer pass)", st.Computes)
	}
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0", st.Hits)
	}
}

// TestRetentionDrainedOnPanic: a fit that panics never reaches the
// per-fit release, so the run-level drain must reclaim the speculative
// entries (the cache manager can outlive the executor).
func TestRetentionDrainedOnPanic(t *testing.T) {
	g := NewGraph()
	t1 := g.AddTransform(IdentityOp(), g.Source)
	est := g.AddEstimator(&panicAfterFetchEst{}, t1, false)
	g.AddApplyModel(est, t1)

	ctx := engine.NewContext(4)
	cache := engine.NewCacheManager(0, engine.NewPinnedSetPolicy(nil))
	plan := NewSchedulePlan(g, nil, nil, 4)
	ex := NewExecutor(g, ctx, cache, engine.FromSlice([]any{[]float64{1}}, 1), nil).
		SetWorkers(4).SetSchedulePlan(plan)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the estimator panic to propagate")
			}
		}()
		ex.Run()
	}()
	if got := cache.SpeculativeBytes(); got != 0 {
		t.Errorf("speculative bytes after panicked run = %d, want 0 (drained)", got)
	}
}

// panicAfterFetchEst fetches once (so the input gets retained) and then
// dies mid-fit.
type panicAfterFetchEst struct{}

func (panicAfterFetchEst) Name() string { return "test.panicEst" }
func (panicAfterFetchEst) Weight() int  { return 3 }
func (panicAfterFetchEst) Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp {
	data()
	panic("fit exploded")
}

// TestSchedulerFIFOKeepsOracleCounts: the FIFO opt-out must disable
// retention (and still produce correct results).
func TestSchedulerFIFOKeepsOracleCounts(t *testing.T) {
	g := NewGraph()
	t1 := g.AddTransform(IdentityOp(), g.Source)
	est := g.AddEstimator(&schedTestEst{w: 3}, t1, false)
	g.AddApplyModel(est, t1)

	ctx := engine.NewContext(4)
	cache := engine.NewCacheManager(0, engine.NewPinnedSetPolicy(nil))
	plan := NewSchedulePlan(g, nil, nil, 4)
	ex := NewExecutor(g, ctx, cache, engine.FromSlice([]any{[]float64{1, 2}}, 1), nil).
		SetWorkers(4).SetSchedulePlan(plan).SetSchedulerPolicy(SchedulerFIFO)
	_, _, report := ex.Run()
	if got := report.Nodes[t1.ID].Computes; got != 4 {
		t.Errorf("FIFO computes = %d, want the oracle's 4", got)
	}
}
