package core

import (
	"fmt"
	"sort"
	"sync"
)

// LineageKind classifies how a named distributed dataset came to exist.
type LineageKind int

// The four derivation forms the distributed executor produces: a root
// load from the coordinator's partitions, an operator application over
// one parent, a gather-join of two parents, and an alias (single-branch
// gather, the output is the input).
const (
	LineageRoot LineageKind = iota
	LineageApply
	LineageZip
	LineageAlias
)

// String names the derivation form for error messages and logs.
func (k LineageKind) String() string {
	switch k {
	case LineageRoot:
		return "root"
	case LineageApply:
		return "apply"
	case LineageZip:
		return "zip"
	case LineageAlias:
		return "alias"
	default:
		return fmt.Sprintf("lineage(%d)", int(k))
	}
}

// LineageNode records one dataset's derivation: the op that produced it
// (as the same (state kind, state bytes) pair that crossed the wire, per
// EncodeOp) and the parent dataset names it was produced from. Because
// every recorded op is deterministic and partition-local, a node's
// partitions can be rebuilt bit-identically on any worker by replaying
// the chain from its roots — the property the distributed tier's
// failure recovery rests on.
type LineageNode struct {
	Name    string
	Kind    LineageKind
	OpKind  string   // EncodeOp state kind (LineageApply only)
	OpState []byte   // EncodeOp state bytes (LineageApply only)
	Parents []string // parent dataset names, in op-argument order
	// Live marks datasets currently resident on the workers; dropped
	// (freed) nodes are kept because live descendants still replay
	// through them.
	Live bool

	seq int // creation order, the topological tiebreaker
}

// Lineage is the coordinator-side record of how every distributed
// dataset in one fit derives from root partition loads. It is the
// recompute-on-loss counterpart of the schedule plan: the plan decides
// which datasets stay resident, the lineage remembers how each resident
// (and in-flight temporary) dataset was built, so a lost partition is a
// replayable chain, not lost work. Safe for concurrent use.
type Lineage struct {
	mu    sync.Mutex
	nodes map[string]*LineageNode
	seq   int
}

// NewLineage returns an empty lineage record.
func NewLineage() *Lineage {
	return &Lineage{nodes: make(map[string]*LineageNode)}
}

func (l *Lineage) put(n *LineageNode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	n.seq = l.seq
	n.Live = true
	l.nodes[n.Name] = n
}

// Root records name as a root dataset: its partitions originate on the
// coordinator, which can reload any of them on demand.
func (l *Lineage) Root(name string) {
	l.put(&LineageNode{Name: name, Kind: LineageRoot})
}

// Apply records dst as the application of the encoded operator (opKind,
// opState) over src.
func (l *Lineage) Apply(dst, src, opKind string, opState []byte) {
	l.put(&LineageNode{Name: dst, Kind: LineageApply, OpKind: opKind, OpState: opState, Parents: []string{src}})
}

// Zip records dst as the partition-aligned gather-join of a and b.
func (l *Lineage) Zip(dst, a, b string) {
	l.put(&LineageNode{Name: dst, Kind: LineageZip, Parents: []string{a, b}})
}

// Alias records dst as an alias of src's partitions.
func (l *Lineage) Alias(dst, src string) {
	l.put(&LineageNode{Name: dst, Kind: LineageAlias, Parents: []string{src}})
}

// Drop marks name as no longer resident. The node itself is retained:
// live descendants replay through dropped intermediates, recreating them
// as scratch datasets during recovery.
func (l *Lineage) Drop(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.nodes[name]; ok {
		n.Live = false
	}
}

// Node returns a copy of name's lineage record.
func (l *Lineage) Node(name string) (LineageNode, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.nodes[name]
	if !ok {
		return LineageNode{}, false
	}
	return *n, true
}

// Live returns the names of all currently resident datasets, sorted by
// creation order.
func (l *Lineage) Live() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var live []*LineageNode
	for _, n := range l.nodes {
		if n.Live {
			live = append(live, n)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	out := make([]string, len(live))
	for i, n := range live {
		out[i] = n.Name
	}
	return out
}

// ReplayOrder returns the ancestor closure of the given targets in
// topological (parents-before-children) order — the exact op sequence a
// recovery pass replays to rebuild the targets' lost partitions from
// their roots. Dropped intermediates appear in the order (they must be
// recreated as scratch); an unknown target or a parent recorded after a
// wire op it should precede is an error. Ties break on creation order,
// so the replay program is deterministic for a given recording.
func (l *Lineage) ReplayOrder(targets []string) ([]LineageNode, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var order []LineageNode
	state := make(map[string]int, len(l.nodes)) // 0 unvisited, 1 in-stack, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("core: lineage cycle through %q", name)
		}
		n, ok := l.nodes[name]
		if !ok {
			return fmt.Errorf("core: no lineage for dataset %q", name)
		}
		state[name] = 1
		for _, p := range n.Parents {
			if err := visit(p); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, *n)
		return nil
	}
	sorted := append([]string(nil), targets...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := l.nodes[sorted[i]], l.nodes[sorted[j]]
		if a == nil || b == nil {
			return sorted[i] < sorted[j]
		}
		return a.seq < b.seq
	})
	for _, t := range sorted {
		if err := visit(t); err != nil {
			return nil, err
		}
	}
	return order, nil
}
