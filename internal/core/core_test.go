package core

import (
	"strings"
	"testing"

	"keystoneml/internal/engine"
)

// doublerEst is a trivial estimator: learns the mean of its input and
// produces a transformer subtracting it. If iterative, it fetches its
// input `weight` times.
type doublerEst struct {
	weight  int
	fetches int
}

func (d *doublerEst) Name() string { return "test.meanCenter" }
func (d *doublerEst) Weight() int  { return d.weight }
func (d *doublerEst) Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp {
	var sum float64
	var n int
	passes := d.weight
	if passes < 1 {
		passes = 1
	}
	for p := 0; p < passes; p++ {
		d.fetches++
		c := data()
		sum, n = 0, 0
		for _, r := range c.Collect() {
			sum += r.(float64)
			n++
		}
	}
	mean := sum / float64(n)
	return NewTransform("test.subMean", func(in any) any { return in.(float64) - mean })
}

// labelReader is an estimator that eagerly fetches its labels.
type labelReader struct{}

func (labelReader) Name() string { return "test.labelReader" }
func (labelReader) Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp {
	labels()
	return IdentityOp()
}

func floatColl(vals []float64, parts int) *engine.Collection {
	items := make([]any, len(vals))
	for i, v := range vals {
		items[i] = v
	}
	return engine.FromSlice(items, parts)
}

func TestPipelineLinearChain(t *testing.T) {
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("double", func(x float64) float64 { return 2 * x }))
	p3 := AndThen(p2, FuncOp("inc", func(x float64) float64 { return x + 1 }))

	ctx := engine.NewContext(2)
	ex := NewExecutor(p3.Graph(), ctx, nil, floatColl([]float64{1, 2, 3}, 2), nil)
	models, out, _ := ex.Run()
	got := out.Collect()
	want := []float64{3, 5, 7}
	for i, v := range got {
		if v.(float64) != want[i] {
			t.Errorf("out[%d] = %v, want %g", i, v, want[i])
		}
	}
	if len(models) != 0 {
		t.Errorf("no estimators but got %d models", len(models))
	}
}

func TestPipelineWithEstimator(t *testing.T) {
	p := Input[float64]()
	est := &doublerEst{weight: 1}
	p2 := AndThenEstimator(p, NewEst[float64, float64](est))

	ctx := engine.NewContext(2)
	ex := NewExecutor(p2.Graph(), ctx, nil, floatColl([]float64{1, 2, 3, 4}, 2), nil)
	models, out, _ := ex.Run()
	if len(models) != 1 {
		t.Fatalf("models = %d, want 1", len(models))
	}
	// mean = 2.5, output should be centered.
	var sum float64
	for _, v := range out.Collect() {
		sum += v.(float64)
	}
	if sum != 0 {
		t.Errorf("centered sum = %g, want 0", sum)
	}
}

func TestIterativeEstimatorRefetchesInput(t *testing.T) {
	// Without caching, a weight-3 estimator plus the downstream apply node
	// should materialize the upstream transform 4 times.
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("id", func(x float64) float64 { return x }))
	est := &doublerEst{weight: 3}
	p3 := AndThenEstimator(p2, NewEst[float64, float64](est))

	ctx := engine.NewContext(1)
	ex := NewExecutor(p3.Graph(), ctx, nil, floatColl([]float64{1, 2}, 1), nil)
	_, _, report := ex.Run()
	if est.fetches != 3 {
		t.Errorf("estimator fetches = %d, want 3", est.fetches)
	}
	transformID := p2.OutputNode().ID
	if got := report.Nodes[transformID].Computes; got != 4 {
		t.Errorf("upstream transform computed %d times, want 4 (3 passes + 1 apply)", got)
	}
}

func TestCachingEliminatesRecompute(t *testing.T) {
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("id", func(x float64) float64 { return x }))
	est := &doublerEst{weight: 5}
	p3 := AndThenEstimator(p2, NewEst[float64, float64](est))

	ctx := engine.NewContext(1)
	transformID := p2.OutputNode().ID
	cache := engine.NewCacheManager(0, engine.NewPinnedSetPolicy([]string{cacheKey(transformID)}))
	ex := NewExecutor(p3.Graph(), ctx, cache, floatColl([]float64{1, 2}, 1), nil)
	_, _, report := ex.Run()
	st := report.Nodes[transformID]
	if st.Computes != 1 {
		t.Errorf("cached transform computed %d times, want 1", st.Computes)
	}
	if st.Hits != 5 {
		t.Errorf("cache hits = %d, want 5 (4 remaining passes + 1 apply)", st.Hits)
	}
}

func TestOptimizedPlanMatchesUnoptimizedOutput(t *testing.T) {
	// Identical pipelines with and without caching must produce identical
	// outputs: materialization is semantically invisible.
	build := func() (*Pipeline[float64, float64], *doublerEst) {
		p := Input[float64]()
		p2 := AndThen(p, FuncOp("x3", func(x float64) float64 { return 3 * x }))
		est := &doublerEst{weight: 2}
		return AndThenEstimator(p2, NewEst[float64, float64](est)), est
	}
	data := []float64{5, 1, -2, 7}
	ctx := engine.NewContext(2)

	p1, _ := build()
	ex1 := NewExecutor(p1.Graph(), ctx, nil, floatColl(data, 2), nil)
	_, out1, _ := ex1.Run()

	p2, _ := build()
	cache := engine.NewCacheManager(0, engine.NewLRUPolicy())
	ex2 := NewExecutor(p2.Graph(), ctx, cache, floatColl(data, 2), nil)
	_, out2, _ := ex2.Run()

	a, b := out1.Collect(), out2.Collect()
	for i := range a {
		if a[i].(float64) != b[i].(float64) {
			t.Fatalf("cached and uncached outputs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGatherConcatenates(t *testing.T) {
	p := Input[[]float64]()
	b1 := AndThen(p, FuncOp("first", func(x []float64) []float64 { return x[:1] }))
	b2 := AndThen(p, FuncOp("scaled", func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = 10 * v
		}
		return out
	}))
	g := Gather(b1, b2)

	ctx := engine.NewContext(1)
	data := engine.FromSlice([]any{[]float64{1, 2}}, 1)
	ex := NewExecutor(g.Graph(), ctx, nil, data, nil)
	_, out, _ := ex.Run()
	got := out.Collect()[0].([]float64)
	want := []float64{1, 10, 20}
	if len(got) != len(want) {
		t.Fatalf("gathered = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gathered = %v, want %v", got, want)
		}
	}
}

func TestBranchingSharesPrefix(t *testing.T) {
	// Two branches off the same prefix: without caching, the shared prefix
	// recomputes once per branch access.
	p := Input[[]float64]()
	shared := AndThen(p, FuncOp("shared", func(x []float64) []float64 { return x }))
	b1 := AndThen(shared, FuncOp("b1", func(x []float64) []float64 { return x }))
	b2 := AndThen(shared, FuncOp("b2", func(x []float64) []float64 { return x }))
	g := Gather(b1, b2)

	ctx := engine.NewContext(1)
	data := engine.FromSlice([]any{[]float64{1}}, 1)
	ex := NewExecutor(g.Graph(), ctx, nil, data, nil)
	_, _, report := ex.Run()
	if got := report.Nodes[shared.OutputNode().ID].Computes; got != 2 {
		t.Errorf("shared prefix computed %d times, want 2", got)
	}
}

func TestFittedApply(t *testing.T) {
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("x2", func(x float64) float64 { return 2 * x }))
	est := &doublerEst{weight: 1}
	p3 := AndThenEstimator(p2, NewEst[float64, float64](est))

	ctx := engine.NewContext(1)
	ex := NewExecutor(p3.Graph(), ctx, nil, floatColl([]float64{1, 2, 3}, 1), nil)
	models, _, _ := ex.Run()

	fitted := NewFitted(p3.Graph(), models, ctx)
	// Train mean of 2x data = 4; apply to 10 -> 20 - 4 = 16.
	if got := fitted.ApplyOne(10.0).(float64); got != 16 {
		t.Errorf("ApplyOne(10) = %g, want 16", got)
	}
}

func TestTopologicalOrder(t *testing.T) {
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("a", func(x float64) float64 { return x }))
	p3 := AndThen(p2, FuncOp("b", func(x float64) float64 { return x }))
	order := p3.Graph().Topological()
	pos := map[int]int{}
	for i, n := range order {
		pos[n.ID] = i
	}
	for _, n := range order {
		for _, d := range n.Deps {
			if pos[d.ID] > pos[n.ID] {
				t.Fatalf("dependency #%d after dependent #%d", d.ID, n.ID)
			}
		}
	}
	if order[len(order)-1].ID != p3.OutputNode().ID {
		t.Error("sink is not last in topological order")
	}
}

func TestGraphString(t *testing.T) {
	p := Input[float64]()
	p2 := AndThen(p, FuncOp("myop", func(x float64) float64 { return x }))
	s := p2.Graph().String()
	if !strings.Contains(s, "myop") {
		t.Errorf("graph string missing op name: %q", s)
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf([]float64{1, 2, 3}) != 8*3+24 {
		t.Error("SizeOf []float64 wrong")
	}
	if SizeOf("hello") != 5+16 {
		t.Error("SizeOf string wrong")
	}
	if SizeOf(nil) != 0 {
		t.Error("SizeOf nil wrong")
	}
	if SizeOf(struct{}{}) != 64 {
		t.Error("SizeOf fallback wrong")
	}
}

func TestTypedTransformPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected type panic")
		}
	}()
	op := TypedTransform("typed", func(x float64) float64 { return x })
	op.Apply("not a float")
}

func TestLabelsRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing labels")
		}
	}()
	p := Input[float64]()
	p2 := AndThenLabeledEstimator(p, NewLabeledEst[float64, float64](labelReader{}))
	ctx := engine.NewContext(1)
	ex := NewExecutor(p2.Graph(), ctx, nil, floatColl([]float64{1}, 1), nil)
	ex.Run()
}
