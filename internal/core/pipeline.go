package core

import "fmt"

// Pipeline is a type-safe handle onto a pipeline DAG: a (not yet fitted)
// function from A records to B records. Pipelines are immutable; chaining
// returns new handles sharing the underlying graph, which is what makes
// branching (calling a chain function twice on the same pipeline) and
// gather work, with common prefixes shared structurally.
//
// Go methods cannot introduce new type parameters, so the paper's
// pipe.andThen(next) is spelled as the package-level core.AndThen(pipe,
// next); the type discipline is identical.
type Pipeline[A, B any] struct {
	g   *Graph
	out *Node
}

// Input starts a pipeline of A records: the identity pipeline A -> A.
func Input[A any]() *Pipeline[A, A] {
	g := NewGraph()
	return &Pipeline[A, A]{g: g, out: g.Source}
}

// Graph exposes the underlying DAG (for the optimizer and executor).
func (p *Pipeline[A, B]) Graph() *Graph { return p.g }

// OutputNode exposes the DAG node producing this pipeline's output.
func (p *Pipeline[A, B]) OutputNode() *Node { return p.out }

// Op is a typed Transformer from A to B wrapping an untyped TransformOp.
// Operator packages export constructors returning Op values so that
// pipelines only compose when record types line up at compile time.
type Op[A, B any] struct {
	op TransformOp
}

// NewOp wraps an untyped TransformOp with type information. The caller
// asserts that op maps A records to B records.
func NewOp[A, B any](op TransformOp) Op[A, B] { return Op[A, B]{op: op} }

// FuncOp builds a typed Op directly from a function.
func FuncOp[A, B any](name string, fn func(A) B) Op[A, B] {
	return Op[A, B]{op: TypedTransform(name, fn)}
}

// Raw returns the underlying untyped operator.
func (o Op[A, B]) Raw() TransformOp { return o.op }

// Est is a typed unsupervised Estimator: fit on B records, produces a
// transformer B -> C.
type Est[B, C any] struct {
	op EstimatorOp
}

// NewEst wraps an untyped EstimatorOp as an unsupervised typed estimator.
func NewEst[B, C any](op EstimatorOp) Est[B, C] { return Est[B, C]{op: op} }

// Raw returns the underlying untyped operator.
func (e Est[B, C]) Raw() EstimatorOp { return e.op }

// LabeledEst is a typed supervised Estimator: fit on B records plus the
// pipeline's label input, produces a transformer B -> C.
type LabeledEst[B, C any] struct {
	op EstimatorOp
}

// NewLabeledEst wraps an untyped EstimatorOp as a supervised typed
// estimator.
func NewLabeledEst[B, C any](op EstimatorOp) LabeledEst[B, C] { return LabeledEst[B, C]{op: op} }

// Raw returns the underlying untyped operator.
func (e LabeledEst[B, C]) Raw() EstimatorOp { return e.op }

// AndThen chains a transformer onto a pipeline: (A -> B) andThen (B -> C).
func AndThen[A, B, C any](p *Pipeline[A, B], op Op[B, C]) *Pipeline[A, C] {
	n := p.g.AddTransform(op.op, p.out)
	return &Pipeline[A, C]{g: p.g, out: n}
}

// AndThenEstimator chains an unsupervised estimator: the estimator is fit
// on the pipeline's output over the training data, and the resulting model
// is applied to that same output.
func AndThenEstimator[A, B, C any](p *Pipeline[A, B], est Est[B, C]) *Pipeline[A, C] {
	e := p.g.AddEstimator(est.op, p.out, false)
	a := p.g.AddApplyModel(e, p.out)
	return &Pipeline[A, C]{g: p.g, out: a}
}

// AndThenLabeledEstimator chains a supervised estimator, which additionally
// reads the pipeline's label input (bound at Fit time).
func AndThenLabeledEstimator[A, B, C any](p *Pipeline[A, B], est LabeledEst[B, C]) *Pipeline[A, C] {
	e := p.g.AddEstimator(est.op, p.out, true)
	a := p.g.AddApplyModel(e, p.out)
	return &Pipeline[A, C]{g: p.g, out: a}
}

// Gather combines the outputs of several branches rooted in the same
// pipeline graph by concatenating their []float64 feature vectors
// element-wise. All branches must share the same graph (i.e. originate
// from the same Input), mirroring the paper's Pipeline.gather.
func Gather[A any](branches ...*Pipeline[A, []float64]) *Pipeline[A, []float64] {
	if len(branches) == 0 {
		panic("core: Gather requires at least one branch")
	}
	g := branches[0].g
	nodes := make([]*Node, len(branches))
	for i, b := range branches {
		if b.g != g {
			panic(fmt.Sprintf("core: Gather branch %d belongs to a different pipeline graph", i))
		}
		nodes[i] = b.out
	}
	n := g.AddGather(nodes)
	return &Pipeline[A, []float64]{g: g, out: n}
}
