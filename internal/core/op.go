// Package core implements the KeystoneML pipeline abstraction: Transformer
// and Estimator operators chained into a DAG with andThen/gather (Figures
// 3-4 of the paper), a type-safe generic construction facade, and a
// depth-first executor whose caching behaviour reproduces the
// recompute-vs-materialize semantics the whole-pipeline optimizer reasons
// about (Section 4.3).
package core

import (
	"fmt"

	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
)

// TransformOp is the untyped physical form of a Transformer: a
// deterministic, side-effect-free function applied to individual records.
// Determinism and purity are what legalize the optimizer's reordering and
// materialization decisions, so implementations must not carry hidden
// mutable state across Apply calls.
type TransformOp interface {
	// Name identifies the operator in plans, profiles and reports.
	Name() string
	// Apply transforms one record.
	Apply(in any) any
}

// Fetch re-materializes an operator's input collection. Each call walks the
// pipeline DAG honouring the cache: if the input is materialized it is a
// cheap lookup, otherwise the upstream operators recompute. Iterative
// estimators call their fetch once per pass over the data, which is exactly
// why materialization matters for them (recomputation costs multiply
// across iterations).
type Fetch func() *engine.Collection

// EstimatorOp is the untyped physical form of an Estimator: fit on a
// distributed dataset (and optional labels), produce a TransformOp. labels
// is nil for unsupervised estimators.
type EstimatorOp interface {
	// Name identifies the operator.
	Name() string
	// Fit learns a transformer. Implementations that iterate over their
	// input must call data once per pass rather than holding the first
	// materialization, so that execution cost reflects the caching plan.
	Fit(ctx *engine.Context, data Fetch, labels Fetch) TransformOp
}

// Optimizable marks a logical operator that has multiple physical
// implementations. The operator-level optimizer evaluates each option's
// cost model against sampled input statistics and the cluster descriptor
// and substitutes the winner into the plan.
type Optimizable interface {
	// Options lists candidate physical implementations. Option.Operator
	// must be a TransformOp or EstimatorOp matching the logical node kind.
	Options() []cost.Option
}

// Iterative marks an operator that makes multiple passes over its input.
// Weight scales the recomputation cost of everything upstream in the
// T(v)/C(v) analysis.
type Iterative interface {
	// Weight returns the expected number of passes over the input.
	Weight() int
}

// Sized lets an operator predict its per-record output size in bytes from
// its per-record input size; used when extrapolating sample profiles to
// full datasets. Operators without Sized fall back to measured sample
// sizes.
type Sized interface {
	OutputBytesPerRecord(inBytes float64) float64
}

// funcTransform adapts a plain function to TransformOp.
type funcTransform struct {
	name string
	fn   func(any) any
}

func (f *funcTransform) Name() string     { return f.name }
func (f *funcTransform) Apply(in any) any { return f.fn(in) }
func (f *funcTransform) String() string   { return f.name }

// NewTransform wraps fn as a named TransformOp.
func NewTransform(name string, fn func(any) any) TransformOp {
	return &funcTransform{name: name, fn: fn}
}

// TypedTransform wraps a typed function as a TransformOp, asserting the
// record type at runtime. The generic pipeline facade guarantees the
// assertion can only fail if an operator lies about its types.
func TypedTransform[A, B any](name string, fn func(A) B) TransformOp {
	return NewTransform(name, func(in any) any {
		a, ok := in.(A)
		if !ok {
			panic(fmt.Sprintf("core: operator %q expected %T, got %T", name, *new(A), in))
		}
		return fn(a)
	})
}

// IdentityOp passes records through unchanged; useful as a pipeline input
// anchor.
func IdentityOp() TransformOp {
	return NewTransform("identity", func(in any) any { return in })
}
