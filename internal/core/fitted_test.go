package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"keystoneml/internal/engine"
)

// chainFitted builds a fitted pipeline of n cheap float transforms plus a
// two-branch gather, covering every step kind the hot path compiles.
func chainFitted(n int) *Fitted {
	g := NewGraph()
	node := g.Source
	for i := 0; i < n; i++ {
		i := i
		node = g.AddTransform(NewTransform(fmt.Sprintf("add%d", i), func(in any) any {
			x := in.([]float64)
			out := make([]float64, len(x))
			for j, v := range x {
				out[j] = v + float64(i)
			}
			return out
		}), node)
	}
	b2 := g.AddTransform(NewTransform("neg", func(in any) any {
		x := in.([]float64)
		out := make([]float64, len(x))
		for j, v := range x {
			out[j] = -v
		}
		return out
	}), node)
	g.AddGather([]*Node{node, b2})
	return NewFitted(g, map[int]TransformOp{}, engine.NewContext(4))
}

// TestTransformOneMatchesApply pins the precompiled hot path to the
// Collection oracle on a branching graph.
func TestTransformOneMatchesApply(t *testing.T) {
	f := chainFitted(6)
	rec := []float64{1, 2, 3}
	want := f.applyOneViaCollection(rec).([]float64)
	got := f.TransformOne(rec).([]float64)
	if len(want) != len(got) {
		t.Fatalf("dims differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dim %d: %g vs %g", i, want[i], got[i])
		}
	}
	// Deprecated alias routes through the same hot path.
	alias := f.ApplyOne(rec).([]float64)
	for i := range want {
		if alias[i] != want[i] {
			t.Fatalf("ApplyOne alias diverged at dim %d", i)
		}
	}
}

// TestTransformBatchMatchesApply pins both batch paths (sequential
// below the fan-out threshold, engine-fanned above it — the fitted
// context has Parallelism 4 regardless of host cores) to the oracle.
func TestTransformBatchMatchesApply(t *testing.T) {
	f := chainFitted(6)
	for _, n := range []int{8, 200} {
		recs := make([]any, n)
		for i := range recs {
			recs[i] = []float64{float64(i), float64(2 * i)}
		}
		want := f.Apply(engine.FromSlice(recs, 3)).Collect()
		got, err := f.TransformBatch(context.Background(), recs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			w, g := want[i].([]float64), got[i].([]float64)
			for j := range w {
				if w[j] != g[j] {
					t.Fatalf("n=%d record %d dim %d: %g vs %g", n, i, j, w[j], g[j])
				}
			}
		}
	}
}

// TestTransformBatchCancel: a canceled context aborts both the
// sequential and the fanned-out batch paths with the context error.
func TestTransformBatchCancel(t *testing.T) {
	f := chainFitted(4)
	recs := make([]any, 200)
	for i := range recs {
		recs[i] = []float64{float64(i)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.TransformBatch(ctx, recs[:8]); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential path: want context.Canceled, got %v", err)
	}
	if _, err := f.TransformBatch(ctx, recs); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel path: want context.Canceled, got %v", err)
	}
}

// TestTransformOneConcurrent is the core-level race check: one Fitted,
// many goroutines, no shared mutable state.
func TestTransformOneConcurrent(t *testing.T) {
	f := chainFitted(5)
	want := f.TransformOne([]float64{2}).([]float64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := f.TransformOne([]float64{2}).([]float64)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent TransformOne diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkTransformOne compares the single-record serving hot path
// against the historical wrap-in-a-one-element-Collection baseline
// (what ApplyOne used to do). The acceptance bar for the serving
// redesign is hotpath >= 3x faster.
func BenchmarkTransformOne(b *testing.B) {
	f := chainFitted(8)
	rec := []float64{1, 2, 3, 4}
	b.Run("hotpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.TransformOne(rec)
		}
	})
	b.Run("collection-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.applyOneViaCollection(rec)
		}
	})
}
