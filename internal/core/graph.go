package core

import (
	"fmt"
	"strings"
)

// NodeKind distinguishes the structural roles nodes play in a pipeline DAG.
type NodeKind int

const (
	// KindSource is the training-data input placeholder.
	KindSource NodeKind = iota
	// KindLabels is the label input placeholder.
	KindLabels
	// KindTransform applies a TransformOp to its single data dependency.
	KindTransform
	// KindEstimator fits an EstimatorOp on its data dependency (and the
	// label source if supervised), producing a model.
	KindEstimator
	// KindApplyModel applies the model produced by an estimator dependency
	// to a data dependency.
	KindApplyModel
	// KindGather concatenates the feature-vector outputs of several
	// branches element-wise (Pipeline.gather in the paper, fused with the
	// feature concatenation it is invariably followed by).
	KindGather
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindLabels:
		return "labels"
	case KindTransform:
		return "transform"
	case KindEstimator:
		return "estimator"
	case KindApplyModel:
		return "apply"
	case KindGather:
		return "gather"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one operator in the pipeline DAG.
type Node struct {
	ID   int
	Kind NodeKind
	// Deps are direct predecessors (χ(v) in the paper's notation): the
	// nodes whose outputs this node consumes. For KindApplyModel, Deps[0]
	// is the estimator node and Deps[1] the data node.
	Deps []*Node

	// Transform is set for KindTransform nodes.
	Transform TransformOp
	// Estimator is set for KindEstimator nodes.
	Estimator EstimatorOp
}

// OpName returns the logical operator name for display.
func (n *Node) OpName() string {
	switch {
	case n.Transform != nil:
		return n.Transform.Name()
	case n.Estimator != nil:
		return n.Estimator.Name()
	default:
		return n.Kind.String()
	}
}

// Weight returns the node's pass count over its inputs: Iterative
// estimators declare it, everything else is 1.
func (n *Node) Weight() int {
	var op any
	switch {
	case n.Estimator != nil:
		op = n.Estimator
	case n.Transform != nil:
		op = n.Transform
	default:
		return 1
	}
	if it, ok := op.(Iterative); ok {
		if w := it.Weight(); w > 1 {
			return w
		}
	}
	return 1
}

// Graph is a pipeline operator DAG under construction or optimization.
// Nodes are identified by dense integer IDs; the graph owns them.
type Graph struct {
	Nodes  []*Node
	Source *Node
	Labels *Node
	Sink   *Node
}

// NewGraph creates a graph containing only the source and label
// placeholders.
func NewGraph() *Graph {
	g := &Graph{}
	g.Source = g.add(&Node{Kind: KindSource})
	g.Labels = g.add(&Node{Kind: KindLabels})
	g.Sink = g.Source
	return g
}

// add registers a node and makes it the sink: pipelines are built
// append-only, so the most recently added node is always the current
// output (gather and apply-model nodes are added after the branches and
// estimators they consume).
func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	if n.Kind != KindLabels && n.Kind != KindEstimator {
		g.Sink = n
	}
	return n
}

// AddTransform appends a transformer node reading from dep.
func (g *Graph) AddTransform(op TransformOp, dep *Node) *Node {
	return g.add(&Node{Kind: KindTransform, Transform: op, Deps: []*Node{dep}})
}

// AddEstimator appends an estimator node fit on dep; if supervised is true
// the node also depends on the label source.
func (g *Graph) AddEstimator(op EstimatorOp, dep *Node, supervised bool) *Node {
	deps := []*Node{dep}
	if supervised {
		deps = append(deps, g.Labels)
	}
	return g.add(&Node{Kind: KindEstimator, Estimator: op, Deps: deps})
}

// AddApplyModel appends a node applying est's fitted model to data.
func (g *Graph) AddApplyModel(est, data *Node) *Node {
	return g.add(&Node{Kind: KindApplyModel, Deps: []*Node{est, data}})
}

// AddGather appends a node concatenating the outputs of branches.
func (g *Graph) AddGather(branches []*Node) *Node {
	deps := append([]*Node(nil), branches...)
	return g.add(&Node{Kind: KindGather, Deps: deps})
}

// Clone returns a structurally identical copy of the graph with fresh
// Node records (IDs preserved) sharing the operator values, which are
// stateless by the TransformOp/EstimatorOp contract. Optimizer rewrites
// of the clone (operator substitution, CSE dep rewiring) leave the
// original untouched — this is what lets a public Pipeline stay reusable
// across Fit calls.
func (g *Graph) Clone() *Graph {
	c := &Graph{Nodes: make([]*Node, len(g.Nodes))}
	for i, n := range g.Nodes {
		c.Nodes[i] = &Node{ID: n.ID, Kind: n.Kind, Transform: n.Transform, Estimator: n.Estimator}
	}
	for i, n := range g.Nodes {
		if len(n.Deps) == 0 {
			continue
		}
		deps := make([]*Node, len(n.Deps))
		for j, d := range n.Deps {
			deps[j] = c.Nodes[d.ID]
		}
		c.Nodes[i].Deps = deps
	}
	c.Source = c.Nodes[g.Source.ID]
	c.Labels = c.Nodes[g.Labels.ID]
	c.Sink = c.Nodes[g.Sink.ID]
	return c
}

// Successors returns, for every node ID, the IDs of its direct successors
// (π(v)): the nodes that consume its output.
func (g *Graph) Successors() map[int][]int {
	succ := make(map[int][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, d := range n.Deps {
			succ[d.ID] = append(succ[d.ID], n.ID)
		}
	}
	return succ
}

// Topological returns the nodes reachable from the sink in dependency
// order (dependencies before dependents). Unreachable nodes are omitted,
// which is how dead branches disappear after CSE rewrites.
func (g *Graph) Topological() []*Node {
	var order []*Node
	state := make(map[int]int, len(g.Nodes)) // 0 unvisited, 1 visiting, 2 done
	var visit func(n *Node)
	visit = func(n *Node) {
		switch state[n.ID] {
		case 1:
			panic(fmt.Sprintf("core: cycle detected at node %d (%s)", n.ID, n.OpName()))
		case 2:
			return
		}
		state[n.ID] = 1
		for _, d := range n.Deps {
			visit(d)
		}
		state[n.ID] = 2
		order = append(order, n)
	}
	visit(g.Sink)
	return order
}

// Stages groups the reachable nodes into dependency levels: stage 0
// holds nodes with no reachable dependencies, stage k nodes whose
// deepest dependency sits in stage k-1. Nodes within a stage are
// mutually independent, so a stage's width is the DAG parallelism the
// scheduler can exploit at that depth.
func (g *Graph) Stages() [][]*Node {
	level := make(map[int]int)
	var stages [][]*Node
	for _, n := range g.Topological() {
		l := 0
		for _, d := range n.Deps {
			if dl, ok := level[d.ID]; ok && dl+1 > l {
				l = dl + 1
			}
		}
		level[n.ID] = l
		for len(stages) <= l {
			stages = append(stages, nil)
		}
		stages[l] = append(stages[l], n)
	}
	return stages
}

// Reachable returns the set of node IDs reachable from the sink.
func (g *Graph) Reachable() map[int]bool {
	r := make(map[int]bool)
	for _, n := range g.Topological() {
		r[n.ID] = true
	}
	return r
}

// String renders the reachable DAG, one node per line, for debugging and
// the Figure 11 style cache-set reports.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Topological() {
		fmt.Fprintf(&b, "#%d %s %s", n.ID, n.Kind, n.OpName())
		if len(n.Deps) > 0 {
			b.WriteString(" <- [")
			for i, d := range n.Deps {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "#%d", d.ID)
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	return b.String()
}
