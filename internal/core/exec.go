package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"keystoneml/internal/engine"
)

// NodeStats is the measured execution record for one DAG node: the
// ingredients of the pipeline profile (Section 4.1) that the
// materialization optimizer consumes — t(v), size(v) and observed access
// counts.
type NodeStats struct {
	Name     string
	Kind     NodeKind
	Computes int // how many times the node's computation ran
	Hits     int // how many accesses were served by the cache
	// Coalesced counts accesses served by joining an in-flight
	// computation under the parallel scheduler's single-flight rule
	// (always 0 under the sequential oracle).
	Coalesced int
	// SharedHits counts accesses served by a cross-fit shared prefix
	// cache (SetSharedCache) — reuse of work another executor did
	// (always 0 when no shared cache is attached).
	SharedHits int
	Time       time.Duration // total local computation time across runs
	OutCount   int           // records in the node output (last run)
	OutBytes   int64         // estimated bytes of the node output (last run)
}

// TimePerCompute returns the average local computation time t(v).
func (s NodeStats) TimePerCompute() time.Duration {
	if s.Computes == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Computes)
}

// ExecReport aggregates execution statistics for one Fit run.
type ExecReport struct {
	Nodes map[int]*NodeStats
	Total time.Duration
}

// Executor evaluates a pipeline DAG over bound training data. There is
// deliberately no implicit memoization across demands: a node accessed
// twice recomputes unless the cache manager holds its output. This
// reproduces the execution model the paper's T(v)/C(v) analysis describes —
// the entire value of the materialization optimizer comes from this
// recompute-on-miss behaviour.
//
// Two scheduling modes share that contract:
//
//   - workers <= 1: the sequential depth-first oracle, byte-for-byte the
//     paper's single-driver evaluation order.
//   - workers > 1 (the default, sized from the engine context): the
//     stage-aware parallel scheduler in exec_parallel.go, which evaluates
//     each demanded subgraph as a dataflow pass — ready nodes dispatch to a
//     bounded worker pool, independent branches run concurrently, and a
//     node demanded by several concurrent consumers computes once
//     (single-flight) with the other consumers blocking on its result.
type Executor struct {
	g      *Graph
	ctx    *engine.Context
	cache  *engine.CacheManager // nil disables materialization entirely
	data   *engine.Collection
	labels *engine.Collection

	// workers bounds DAG-level parallelism (how many node computations
	// may run at once); <= 1 selects the sequential oracle.
	workers int
	slots   chan struct{} // bounded worker pool, nil in sequential mode

	// sharedCache, when set, is a search-scoped cross-executor cache of
	// node outputs; sharedKeys maps this graph's node IDs to the content
	// signatures that key it. Nodes without a key never touch it.
	sharedCache *engine.SharedCache
	sharedKeys  map[int]string

	// policy selects the parallel dispatcher's ready-set ordering;
	// plan, when set, is the optimizer's shared schedule plan (profile
	// priorities + refetch sets) and additionally enables speculative
	// cross-pass retention. dispatch is the plan priorities actually
	// drive dispatch with: the attached plan, or a lazily built
	// structural fallback (unit times) when none was threaded through.
	policy SchedulerPolicy
	plan   *SchedulePlan

	mu          sync.Mutex // guards models, report, flight maps, dispatch, pendingRefetch
	dispatch    *SchedulePlan
	models      map[int]TransformOp
	report      *ExecReport
	flight      map[int]*flight
	modelFlight map[int]*modelFlight
	// pendingRefetch counts, per node, the estimators whose fits will
	// still refetch it — while positive, a computed-but-unpinnable pass
	// result is worth retaining speculatively (budget permitting).
	pendingRefetch map[int]int
}

// NewExecutor binds a graph to training data and an execution context.
// labels may be nil for unsupervised pipelines; cache may be nil to run
// with no materialization at all. DAG-level parallelism defaults to the
// context's Parallelism; use SetWorkers(1) for the sequential oracle.
func NewExecutor(g *Graph, ctx *engine.Context, cache *engine.CacheManager, data, labels *engine.Collection) *Executor {
	e := &Executor{
		g:           g,
		ctx:         ctx,
		cache:       cache,
		data:        data,
		labels:      labels,
		models:      make(map[int]TransformOp),
		report:      &ExecReport{Nodes: make(map[int]*NodeStats)},
		flight:      make(map[int]*flight),
		modelFlight: make(map[int]*modelFlight),
	}
	e.SetWorkers(ctx.Parallelism)
	return e
}

// SetWorkers bounds how many DAG nodes may compute concurrently. n <= 1
// selects the sequential depth-first oracle; n <= 0 restores the default
// (the context's Parallelism). It returns the executor for chaining and
// must not be called once Run has started.
func (e *Executor) SetWorkers(n int) *Executor {
	if n <= 0 {
		n = e.ctx.Parallelism
	}
	e.workers = n
	if n > 1 {
		e.slots = make(chan struct{}, n)
	} else {
		e.slots = nil
	}
	return e
}

// Workers returns the DAG-level parallelism bound.
func (e *Executor) Workers() int { return e.workers }

// SetSchedulePlan attaches the shared schedule plan the optimizer built
// for this graph. The parallel dispatcher orders ready nodes by the
// plan's critical-path priorities, and speculative cross-pass retention
// activates: a pass result that the pinned-set policy rejects is kept in
// the cache's free headroom while an estimator that will refetch it is
// still fitting, then released. Without a plan the dispatcher falls back
// to structural (unit-time) priorities and retention stays off. Must not
// be called once Run has started; returns the executor for chaining.
func (e *Executor) SetSchedulePlan(p *SchedulePlan) *Executor {
	e.plan = p
	e.dispatch = p
	if p != nil {
		e.pendingRefetch = p.RefetchCounts()
	} else {
		e.pendingRefetch = nil
	}
	return e
}

// SetSchedulerPolicy selects the parallel dispatcher's ready-set
// ordering (SchedulerPriority by default; SchedulerFIFO restores
// pass-plan-order dispatch and disables speculative retention). Must not
// be called once Run has started; returns the executor for chaining.
func (e *Executor) SetSchedulerPolicy(p SchedulerPolicy) *Executor {
	e.policy = p
	return e
}

// SetSharedCache attaches a cross-fit shared prefix cache: nodes whose
// ID appears in keys consult (and fill) sc before computing, so
// concurrent executors over graphs that share a signed prefix reuse each
// other's materialized intermediates, single-flight per shared node.
// keys come from PrefixSignatures over this executor's graph; the
// caller owns the cache's data-identity scope (see engine.SharedCache).
// Must not be called once Run has started; returns the executor for
// chaining.
func (e *Executor) SetSharedCache(sc *engine.SharedCache, keys map[int]string) *Executor {
	e.sharedCache = sc
	e.sharedKeys = keys
	return e
}

// sharedKey returns the shared-cache key for n, if sharing applies.
func (e *Executor) sharedKey(n *Node) (string, bool) {
	if e.sharedCache == nil {
		return "", false
	}
	k, ok := e.sharedKeys[n.ID]
	return k, ok
}

// sharedNow reports whether n's output currently sits in the shared
// cache (a planning peek, like cachedNow).
func (e *Executor) sharedNow(n *Node) bool {
	k, ok := e.sharedKey(n)
	return ok && e.sharedCache.Contains(k)
}

// dispatchPlan returns the plan priorities the ready queue should use:
// the attached schedule plan, or a structural fallback built on first
// use. Returns nil under SchedulerFIFO.
func (e *Executor) dispatchPlan() *SchedulePlan {
	if e.policy == SchedulerFIFO {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dispatch == nil {
		e.dispatch = NewSchedulePlan(e.g, nil, nil, e.workers)
	}
	return e.dispatch
}

// retainSpeculatively reports whether node id's output is still worth
// keeping across passes: a schedule plan is attached, retention is not
// disabled, and at least one estimator that refetches id has not
// finished fitting.
func (e *Executor) retainSpeculatively(id int) bool {
	if e.plan == nil || e.policy == SchedulerFIFO {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pendingRefetch[id] > 0
}

// releaseRetained drops the speculative interest estimator estID held on
// its refetch set; entries no other fitting estimator cares about are
// released back to the cache budget immediately.
func (e *Executor) releaseRetained(estID int) {
	if e.plan == nil || e.cache == nil || e.policy == SchedulerFIFO {
		return
	}
	for _, id := range e.plan.RefetchSet(estID) {
		e.mu.Lock()
		e.pendingRefetch[id]--
		drop := e.pendingRefetch[id] <= 0
		e.mu.Unlock()
		if drop {
			e.cache.ReleaseSpeculative(cacheKey(id))
		}
	}
}

// drainRetention releases every speculative entry this executor could
// have created. Deferred from Run/RunContext: a fit that panics or is
// canceled never reaches releaseRetained, and the cache manager may
// outlive the executor (ExecuteContext accepts a caller-provided one),
// so retained results must not be able to leak past the run.
func (e *Executor) drainRetention() {
	if e.plan == nil || e.cache == nil || e.policy == SchedulerFIFO {
		return
	}
	for id := range e.plan.RefetchCounts() {
		e.cache.ReleaseSpeculative(cacheKey(id))
	}
}

// Run executes the DAG to the sink and returns the fitted models (keyed by
// estimator node ID), the sink output, and the execution report.
func (e *Executor) Run() (map[int]TransformOp, *engine.Collection, *ExecReport) {
	defer e.drainRetention()
	start := time.Now()
	out := e.demand(e.g.Sink)
	e.report.Total = time.Since(start)
	return e.models, out, e.report
}

// RunContext is Run bound to a context: the executor (both schedulers),
// the engine's partition dispatch, and every estimator fit's input
// fetches poll ctx, so a long Fit unwinds cleanly mid-pass once ctx is
// canceled or its deadline passes. On cancellation the partial report is
// returned alongside an error wrapping the context error; the output
// collection and models are nil/incomplete and must not be used.
func (e *Executor) RunContext(ctx context.Context) (models map[int]TransformOp, out *engine.Collection, report *ExecReport, err error) {
	if ctx != nil && ctx != context.Background() {
		e.ctx = e.ctx.WithCancellation(ctx)
	}
	defer e.drainRetention()
	defer func() {
		if r := recover(); r != nil {
			c, ok := engine.AsCanceled(r)
			if !ok {
				panic(r)
			}
			models, out, report, err = nil, nil, e.report, c
		}
	}()
	start := time.Now()
	o := e.demand(e.g.Sink)
	e.report.Total = time.Since(start)
	return e.models, o, e.report, nil
}

// demand materializes the output of n under the configured scheduler.
func (e *Executor) demand(n *Node) *engine.Collection {
	e.ctx.CheckCanceled()
	if e.workers > 1 {
		return e.runPass(n)
	}
	return e.materialize(n)
}

func cacheKey(id int) string { return "node:" + strconv.Itoa(id) }

// cachedNow reports whether n's output currently sits in the cache,
// without counting an access (a planning peek, not a Get).
func (e *Executor) cachedNow(n *Node) bool {
	return e.cache != nil && e.cache.Contains(cacheKey(n.ID))
}

// stats returns the mutable record for n; the caller must hold e.mu.
func (e *Executor) statsLocked(n *Node) *NodeStats {
	s, ok := e.report.Nodes[n.ID]
	if !ok {
		s = &NodeStats{Name: n.OpName(), Kind: n.Kind}
		e.report.Nodes[n.ID] = s
	}
	return s
}

func (e *Executor) noteHit(n *Node) {
	e.mu.Lock()
	e.statsLocked(n).Hits++
	e.mu.Unlock()
}

func (e *Executor) noteCoalesced(n *Node) {
	e.mu.Lock()
	e.statsLocked(n).Coalesced++
	e.mu.Unlock()
}

// noteCompute records one computation of n and returns the estimated
// output size for the cache admission call.
func (e *Executor) noteCompute(n *Node, out *engine.Collection) int64 {
	bytes := SizeOfSlice(out.Collect())
	e.noteComputeSized(n, out, bytes)
	return bytes
}

// noteComputeSized is noteCompute with the output size already known.
func (e *Executor) noteComputeSized(n *Node, out *engine.Collection, bytes int64) {
	e.mu.Lock()
	st := e.statsLocked(n)
	st.Computes++
	st.OutCount = out.Count()
	st.OutBytes = bytes
	e.mu.Unlock()
}

// noteSharedHit records an access of n served by the shared prefix
// cache (another executor's — or an earlier pass's — computation).
func (e *Executor) noteSharedHit(n *Node, out *engine.Collection, bytes int64) {
	e.mu.Lock()
	st := e.statsLocked(n)
	st.SharedHits++
	st.OutCount = out.Count()
	st.OutBytes = bytes
	e.mu.Unlock()
}

// sharedFetch materializes n's output on a local-cache miss: through the
// shared prefix cache when n carries a shared key (reusing another
// fit's result or computing once under cross-executor single-flight),
// plainly otherwise. ins follows the localCompute contract. It returns
// the output and its estimated size for local cache admission.
func (e *Executor) sharedFetch(n *Node, ins []*engine.Collection) (*engine.Collection, int64) {
	key, ok := e.sharedKey(n)
	if !ok {
		out := e.localCompute(n, ins)
		return out, e.noteCompute(n, out)
	}
	v, bytes, hit := e.sharedCache.GetOrCompute(key, func() (any, int64) {
		out := e.localCompute(n, ins)
		return out, SizeOfSlice(out.Collect())
	})
	out := v.(*engine.Collection)
	if hit {
		e.noteSharedHit(n, out, bytes)
	} else {
		e.noteComputeSized(n, out, bytes)
	}
	return out, bytes
}

func (e *Executor) addTime(n *Node, d time.Duration) {
	e.mu.Lock()
	e.statsLocked(n).Time += d
	e.mu.Unlock()
}

// acquireSlot bounds node-local compute by the worker pool. Slots are
// held only across the local operator work, never while waiting on
// dependencies or in-flight results, so the pool cannot deadlock.
func (e *Executor) acquireSlot() {
	if e.slots != nil {
		e.slots <- struct{}{}
	}
}

func (e *Executor) releaseSlot() {
	if e.slots != nil {
		<-e.slots
	}
}

// materialize produces the output collection of n under the sequential
// oracle, consulting the cache first and recomputing from dependencies on
// a miss.
func (e *Executor) materialize(n *Node) *engine.Collection {
	if e.cache != nil {
		if v, ok := e.cache.Get(cacheKey(n.ID)); ok {
			e.noteHit(n)
			return v.(*engine.Collection)
		}
	}
	out, bytes := e.sharedFetch(n, nil)
	if e.cache != nil {
		e.cache.Put(cacheKey(n.ID), out, bytes)
	}
	return out
}

// localCompute evaluates n's operator. ins, when non-nil, carries
// already-materialized dependency outputs (positionally matching n.Deps)
// from a scheduler pass; any missing input is demanded on the spot. Only
// the node-local work is timed; dependency time is charged to the
// dependencies themselves.
func (e *Executor) localCompute(n *Node, ins []*engine.Collection) *engine.Collection {
	input := func(i int) *engine.Collection {
		if ins != nil && ins[i] != nil {
			return ins[i]
		}
		return e.demand(n.Deps[i])
	}
	switch n.Kind {
	case KindSource:
		if e.data == nil {
			panic("core: pipeline executed without bound training data")
		}
		return e.data
	case KindLabels:
		if e.labels == nil {
			panic("core: pipeline uses labels but none were bound at Fit time")
		}
		return e.labels
	case KindTransform:
		in := input(0)
		e.acquireSlot()
		defer e.releaseSlot()
		start := time.Now()
		out := e.ctx.Map(in, n.Transform.Apply)
		e.addTime(n, time.Since(start))
		return out
	case KindGather:
		gathered := make([]*engine.Collection, len(n.Deps))
		for i := range n.Deps {
			gathered[i] = input(i)
		}
		e.acquireSlot()
		defer e.releaseSlot()
		start := time.Now()
		out := gathered[0]
		for i := 1; i < len(gathered); i++ {
			out = e.ctx.Zip(out, gathered[i], ConcatFeatures)
		}
		e.addTime(n, time.Since(start))
		return out
	case KindApplyModel:
		model := e.fitModel(n.Deps[0])
		in := input(1)
		e.acquireSlot()
		defer e.releaseSlot()
		start := time.Now()
		out := e.ctx.Map(in, model.Apply)
		e.addTime(n, time.Since(start))
		return out
	case KindEstimator:
		panic("core: estimator node materialized as data; estimators produce models, not collections")
	default:
		panic(fmt.Sprintf("core: unknown node kind %v", n.Kind))
	}
}

// modelFlight is the single-flight record for one estimator fit.
type modelFlight struct {
	done     chan struct{}
	model    TransformOp
	panicked any
}

// fitModel fits the estimator node once per run (models are memoized; it
// is the estimator's *input* that is refetched per pass, not the fit
// itself). Concurrent demands for the same model coalesce onto one fit.
func (e *Executor) fitModel(n *Node) TransformOp {
	if n.Kind != KindEstimator {
		panic(fmt.Sprintf("core: fitModel on non-estimator node #%d (%s)", n.ID, n.Kind))
	}
	e.mu.Lock()
	if m, ok := e.models[n.ID]; ok {
		e.mu.Unlock()
		return m
	}
	if f, ok := e.modelFlight[n.ID]; ok {
		e.mu.Unlock()
		<-f.done
		if f.panicked != nil {
			panic(f.panicked)
		}
		return f.model
	}
	f := &modelFlight{done: make(chan struct{})}
	e.modelFlight[n.ID] = f
	e.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			f.panicked = r
		}
		e.mu.Lock()
		delete(e.modelFlight, n.ID)
		e.mu.Unlock()
		close(f.done)
		if f.panicked != nil {
			panic(f.panicked)
		}
	}()

	// The fit occupies a worker slot for its own computation but yields
	// it while fetching inputs: the fetch recursion claims slots for the
	// nodes it computes, so a fit holding its slot across a fetch could
	// starve the pool into deadlock. This assumes fetches are invoked
	// from the fitting goroutine, which every library estimator does.
	held := false
	yieldSlot := func() {
		if held {
			e.releaseSlot()
			held = false
		}
	}
	claimSlot := func() {
		if !held {
			e.acquireSlot()
			held = true
		}
	}
	dataDep := n.Deps[0]
	fetch := func() *engine.Collection {
		yieldSlot()
		out := e.demand(dataDep)
		claimSlot()
		return out
	}
	var labelFetch Fetch
	if len(n.Deps) > 1 {
		labelDep := n.Deps[1]
		labelFetch = func() *engine.Collection {
			yieldSlot()
			out := e.demand(labelDep)
			claimSlot()
			return out
		}
	}
	e.ctx.CheckCanceled()
	claimSlot()
	defer yieldSlot()
	start := time.Now()
	// Fit wall time includes input fetches; subtract the time attributed
	// to dependency computes during the window so t(v) stays node-local.
	// Under the parallel scheduler concurrent branches can also log time
	// inside the window, so this stays an estimate there.
	depBefore := e.subtreeTime(n)
	model := n.Estimator.Fit(e.ctx, fetch, labelFetch)
	depAfter := e.subtreeTime(n)
	local := time.Since(start) - (depAfter - depBefore)
	if local < 0 {
		local = 0
	}
	e.mu.Lock()
	st := e.statsLocked(n)
	st.Time += local
	st.Computes++
	e.models[n.ID] = model
	e.mu.Unlock()
	// The fit is done: nothing will refetch this estimator's inputs on
	// its behalf again, so release whatever was retained for it.
	e.releaseRetained(n.ID)
	f.model = model
	return model
}

// subtreeTime sums the recorded local time of n's proper ancestors
// (everything upstream of the estimator).
func (e *Executor) subtreeTime(n *Node) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := map[int]bool{}
	var total time.Duration
	var walk func(m *Node)
	walk = func(m *Node) {
		if seen[m.ID] {
			return
		}
		seen[m.ID] = true
		if s, ok := e.report.Nodes[m.ID]; ok {
			total += s.Time
		}
		for _, d := range m.Deps {
			walk(d)
		}
	}
	for _, d := range n.Deps {
		walk(d)
	}
	return total
}

// ConcatFeatures is the gather join: element-wise concatenation of two
// []float64 feature records. Exported so distributed workers apply the
// exact same join the local executor and the fitted apply path use.
func ConcatFeatures(a, b any) any {
	x, ok1 := a.([]float64)
	y, ok2 := b.([]float64)
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("core: gather expects []float64 branches, got %T and %T", a, b))
	}
	out := make([]float64, 0, len(x)+len(y))
	out = append(out, x...)
	return append(out, y...)
}
