package core

import (
	"fmt"
	"strconv"
	"time"

	"keystoneml/internal/engine"
)

// NodeStats is the measured execution record for one DAG node: the
// ingredients of the pipeline profile (Section 4.1) that the
// materialization optimizer consumes — t(v), size(v) and observed access
// counts.
type NodeStats struct {
	Name     string
	Kind     NodeKind
	Computes int           // how many times the node's computation ran
	Hits     int           // how many accesses were served by the cache
	Time     time.Duration // total local computation time across runs
	OutCount int           // records in the node output (last run)
	OutBytes int64         // estimated bytes of the node output (last run)
}

// TimePerCompute returns the average local computation time t(v).
func (s NodeStats) TimePerCompute() time.Duration {
	if s.Computes == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Computes)
}

// ExecReport aggregates execution statistics for one Fit run.
type ExecReport struct {
	Nodes map[int]*NodeStats
	Total time.Duration
}

// Executor evaluates a pipeline DAG depth-first over bound training data.
// There is deliberately no implicit memoization: a node accessed twice
// recomputes unless the cache manager holds its output. This reproduces
// the execution model the paper's T(v)/C(v) analysis describes — the
// entire value of the materialization optimizer comes from this
// recompute-on-miss behaviour.
type Executor struct {
	g      *Graph
	ctx    *engine.Context
	cache  *engine.CacheManager // nil disables materialization entirely
	data   *engine.Collection
	labels *engine.Collection

	models map[int]TransformOp
	report *ExecReport
}

// NewExecutor binds a graph to training data and an execution context.
// labels may be nil for unsupervised pipelines; cache may be nil to run
// with no materialization at all.
func NewExecutor(g *Graph, ctx *engine.Context, cache *engine.CacheManager, data, labels *engine.Collection) *Executor {
	return &Executor{
		g:      g,
		ctx:    ctx,
		cache:  cache,
		data:   data,
		labels: labels,
		models: make(map[int]TransformOp),
		report: &ExecReport{Nodes: make(map[int]*NodeStats)},
	}
}

// Run executes the DAG to the sink and returns the fitted models (keyed by
// estimator node ID), the sink output, and the execution report.
func (e *Executor) Run() (map[int]TransformOp, *engine.Collection, *ExecReport) {
	start := time.Now()
	out := e.materialize(e.g.Sink)
	e.report.Total = time.Since(start)
	return e.models, out, e.report
}

func (e *Executor) stats(n *Node) *NodeStats {
	s, ok := e.report.Nodes[n.ID]
	if !ok {
		s = &NodeStats{Name: n.OpName(), Kind: n.Kind}
		e.report.Nodes[n.ID] = s
	}
	return s
}

func cacheKey(id int) string { return "node:" + strconv.Itoa(id) }

// materialize produces the output collection of n, consulting the cache
// first and recomputing from dependencies on a miss.
func (e *Executor) materialize(n *Node) *engine.Collection {
	st := e.stats(n)
	if e.cache != nil {
		if v, ok := e.cache.Get(cacheKey(n.ID)); ok {
			st.Hits++
			return v.(*engine.Collection)
		}
	}
	out := e.compute(n)
	st.Computes++
	st.OutCount = out.Count()
	st.OutBytes = SizeOfSlice(out.Collect())
	if e.cache != nil {
		e.cache.Put(cacheKey(n.ID), out, st.OutBytes)
	}
	return out
}

// compute evaluates n's operator after materializing its dependencies.
// Only the node-local work is timed; dependency time is charged to the
// dependencies themselves.
func (e *Executor) compute(n *Node) *engine.Collection {
	switch n.Kind {
	case KindSource:
		if e.data == nil {
			panic("core: pipeline executed without bound training data")
		}
		return e.data
	case KindLabels:
		if e.labels == nil {
			panic("core: pipeline uses labels but none were bound at Fit time")
		}
		return e.labels
	case KindTransform:
		in := e.materialize(n.Deps[0])
		st := e.stats(n)
		start := time.Now()
		out := e.ctx.Map(in, n.Transform.Apply)
		st.Time += time.Since(start)
		return out
	case KindGather:
		ins := make([]*engine.Collection, len(n.Deps))
		for i, d := range n.Deps {
			ins[i] = e.materialize(d)
		}
		st := e.stats(n)
		start := time.Now()
		out := ins[0]
		for i := 1; i < len(ins); i++ {
			out = e.ctx.Zip(out, ins[i], concatFeatures)
		}
		st.Time += time.Since(start)
		return out
	case KindApplyModel:
		model := e.fitModel(n.Deps[0])
		in := e.materialize(n.Deps[1])
		st := e.stats(n)
		start := time.Now()
		out := e.ctx.Map(in, model.Apply)
		st.Time += time.Since(start)
		return out
	case KindEstimator:
		panic("core: estimator node materialized as data; estimators produce models, not collections")
	default:
		panic(fmt.Sprintf("core: unknown node kind %v", n.Kind))
	}
}

// fitModel fits the estimator node once per run (models are memoized; it
// is the estimator's *input* that is refetched per pass, not the fit
// itself).
func (e *Executor) fitModel(n *Node) TransformOp {
	if n.Kind != KindEstimator {
		panic(fmt.Sprintf("core: fitModel on non-estimator node #%d (%s)", n.ID, n.Kind))
	}
	if m, ok := e.models[n.ID]; ok {
		return m
	}
	dataDep := n.Deps[0]
	fetch := func() *engine.Collection { return e.materialize(dataDep) }
	var labelFetch Fetch
	if len(n.Deps) > 1 {
		labelDep := n.Deps[1]
		labelFetch = func() *engine.Collection { return e.materialize(labelDep) }
	}
	st := e.stats(n)
	start := time.Now()
	// Fit wall time includes input fetches; subtract the time attributed
	// to dependency computes during the window so t(v) stays node-local.
	depBefore := e.subtreeTime(n)
	model := n.Estimator.Fit(e.ctx, fetch, labelFetch)
	depAfter := e.subtreeTime(n)
	local := time.Since(start) - (depAfter - depBefore)
	if local < 0 {
		local = 0
	}
	st.Time += local
	st.Computes++
	e.models[n.ID] = model
	return model
}

// subtreeTime sums the recorded local time of n's proper ancestors
// (everything upstream of the estimator).
func (e *Executor) subtreeTime(n *Node) time.Duration {
	seen := map[int]bool{}
	var total time.Duration
	var walk func(m *Node)
	walk = func(m *Node) {
		if seen[m.ID] {
			return
		}
		seen[m.ID] = true
		if s, ok := e.report.Nodes[m.ID]; ok {
			total += s.Time
		}
		for _, d := range m.Deps {
			walk(d)
		}
	}
	for _, d := range n.Deps {
		walk(d)
	}
	return total
}

func concatFeatures(a, b any) any {
	x, ok1 := a.([]float64)
	y, ok2 := b.([]float64)
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("core: gather expects []float64 branches, got %T and %T", a, b))
	}
	out := make([]float64, 0, len(x)+len(y))
	out = append(out, x...)
	return append(out, y...)
}

// Fitted is a trained pipeline: every estimator node resolved to its
// fitted model. Applying it never consults the training cache.
type Fitted struct {
	g      *Graph
	models map[int]TransformOp
	ctx    *engine.Context
}

// NewFitted assembles a fitted pipeline from a graph and its trained
// models.
func NewFitted(g *Graph, models map[int]TransformOp, ctx *engine.Context) *Fitted {
	return &Fitted{g: g, models: models, ctx: ctx}
}

// Apply runs the transformer chain over new data. Estimator fits are
// replaced by their trained models; within one Apply call node outputs are
// memoized (test-time execution has no iteration, so plain memoization is
// both correct and optimal).
func (f *Fitted) Apply(data *engine.Collection) *engine.Collection {
	memo := make(map[int]*engine.Collection)
	var eval func(n *Node) *engine.Collection
	eval = func(n *Node) *engine.Collection {
		if c, ok := memo[n.ID]; ok {
			return c
		}
		var out *engine.Collection
		switch n.Kind {
		case KindSource:
			out = data
		case KindLabels:
			panic("core: fitted pipeline must not read labels at apply time")
		case KindTransform:
			out = f.ctx.Map(eval(n.Deps[0]), n.Transform.Apply)
		case KindGather:
			out = eval(n.Deps[0])
			for _, d := range n.Deps[1:] {
				out = f.ctx.Zip(out, eval(d), concatFeatures)
			}
		case KindApplyModel:
			model, ok := f.models[n.Deps[0].ID]
			if !ok {
				panic(fmt.Sprintf("core: missing fitted model for estimator node #%d", n.Deps[0].ID))
			}
			out = f.ctx.Map(eval(n.Deps[1]), model.Apply)
		default:
			panic(fmt.Sprintf("core: unexpected node kind %v at apply time", n.Kind))
		}
		memo[n.ID] = out
		return out
	}
	return eval(f.g.Sink)
}

// ApplyOne runs a single record through the fitted pipeline.
func (f *Fitted) ApplyOne(record any) any {
	out := f.Apply(engine.FromSlice([]any{record}, 1))
	return out.Collect()[0]
}
