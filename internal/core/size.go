package core

import "keystoneml/internal/linalg"

// ByteSizer lets record types report their own in-memory footprint;
// domain types (images, documents) implement it.
type ByteSizer interface {
	ByteSize() int64
}

const (
	sliceHeaderBytes = 24
	fallbackBytes    = 64
)

// SizeOf estimates the in-memory footprint of one record in bytes. It is
// used by the pipeline profiler to extrapolate intermediate dataset sizes
// (size(v) in the materialization problem). Estimates only need to be
// proportionate, not exact: the optimizer compares sizes against a memory
// budget with generous slack.
func SizeOf(record any) int64 {
	switch r := record.(type) {
	case nil:
		return 0
	case ByteSizer:
		return r.ByteSize()
	case []float64:
		return int64(8*len(r)) + sliceHeaderBytes
	case [][]float64:
		var s int64 = sliceHeaderBytes
		for _, d := range r {
			s += int64(8*len(d)) + sliceHeaderBytes
		}
		return s
	case []float32:
		return int64(4*len(r)) + sliceHeaderBytes
	case []int:
		return int64(8*len(r)) + sliceHeaderBytes
	case *linalg.SparseVector:
		return int64(16*r.NNZ()) + 2*sliceHeaderBytes + 8
	case *linalg.Matrix:
		return int64(8*len(r.Data)) + sliceHeaderBytes + 16
	case string:
		return int64(len(r)) + 16
	case []string:
		var s int64 = sliceHeaderBytes
		for _, x := range r {
			s += int64(len(x)) + 16
		}
		return s
	case float64, int, int64, uint64, bool:
		return 8
	default:
		return fallbackBytes
	}
}

// SizeOfSlice sums SizeOf over records.
func SizeOfSlice(records []any) int64 {
	var s int64
	for _, r := range records {
		s += SizeOf(r)
	}
	return s
}
