package core

// This file extends the SchedulePlan's makespan simulation with the
// network/shuffle and stage-launch-latency terms of the paper's Section 3
// cluster model — the terms the local simulator ignores because local
// passes never cross a process boundary. A DistModel describes execution
// under the keystone/dist coordinator: transforms run data-parallel
// across W worker processes (each dispatch pays one stage launch),
// estimator fits run on the coordinator and pay network transfer to pull
// their input partitions back, and the coordinator memoizes fetched
// collections for materialized datasets so a pinned solver input crosses
// the wire once instead of once per pass. Attaching a DistModel is what
// keeps cache and dispatch decisions cost-model-driven off-box: the
// greedy materialization planner calls Makespan per candidate, so with a
// DistModel attached it weighs network round-trips, not just recompute.

// DistModel parameterizes the distributed-time simulation. Build one
// from a cluster.Resources descriptor (NetSecPerByte from CoordWeight,
// StageLatencySec from the per-stage launch latency) and a profile's
// per-node output sizes.
type DistModel struct {
	// Workers is the number of worker processes holding data partitions;
	// values <= 1 model a single remote worker (dispatch latency and
	// fetch transfer still apply, compute does not shrink).
	Workers int
	// StageLatencySec is charged once per remote dispatch (the paper's
	// per-stage launch latency; an RPC round-trip for keystone/dist).
	StageLatencySec float64
	// NetSecPerByte converts bytes crossing the coordinator⇄worker
	// boundary to seconds (cluster.Resources.CoordWeight).
	NetSecPerByte float64
	// OutBytes holds the profiled full-data output size of each node,
	// charged when an estimator fetch pulls that node's partitions to
	// the coordinator. Missing entries transfer for free.
	OutBytes map[int]int64
}

// workerCount clamps the modeled process count.
func (d *DistModel) workerCount() float64 {
	if d.Workers <= 1 {
		return 1
	}
	return float64(d.Workers)
}

// WithDist attaches a distributed cost model to the plan and returns the
// plan; Makespan then simulates distributed time. A nil model restores
// the local simulation. Like the other plan inputs the model is
// retained, not copied.
func (p *SchedulePlan) WithDist(d *DistModel) *SchedulePlan {
	p.Dist = d
	return p
}

// distTime mirrors the keystone/dist coordinator's demand recursion the
// way sequentialTime mirrors the local oracle: the coordinator walks the
// DAG sequentially, but each transform/gather/apply dispatch runs
// data-parallel over W workers (local time ÷ W, plus one stage launch),
// and each estimator fit pass pays the network transfer of its input
// unless the coordinator already holds a fetched copy of a materialized
// dataset. Worker-side materialization semantics are unchanged from the
// sequential oracle: an unmaterialized node recomputes per demand, a
// pinned node computes once.
func (p *SchedulePlan) distTime() float64 {
	w := p.Dist.workerCount()
	mat := make(map[int]bool)
	fitted := make(map[int]bool)
	// coordFetched marks materialized datasets whose partitions the
	// coordinator has already pulled and cached locally; later fetch
	// passes of the same input are free.
	coordFetched := make(map[int]bool)

	remote := func(n *Node) float64 {
		return p.timeOf(n)/w + p.Dist.StageLatencySec
	}
	var demand func(n *Node) float64
	var fit func(n *Node) float64
	demand = func(n *Node) float64 {
		if mat[n.ID] {
			return 0
		}
		var d float64
		switch n.Kind {
		case KindSource, KindLabels:
			return p.timeOf(n) // shipped/bound before the walk starts
		case KindTransform:
			d = demand(n.Deps[0]) + remote(n)
		case KindGather:
			for _, dep := range n.Deps {
				d += demand(dep)
			}
			// The coordinator zips branch pairs successively: one remote
			// dispatch per joined branch beyond the first.
			d += p.timeOf(n)/w + float64(max(1, len(n.Deps)-1))*p.Dist.StageLatencySec
		case KindApplyModel:
			d = fit(n.Deps[0]) + demand(n.Deps[1]) + remote(n)
		default:
			panic("core: dist simulation demanded non-data node")
		}
		if p.Cached[n.ID] {
			mat[n.ID] = true
		}
		return d
	}
	fetch := func(dep *Node) float64 {
		if coordFetched[dep.ID] {
			return 0
		}
		d := demand(dep) + float64(p.Dist.OutBytes[dep.ID])*p.Dist.NetSecPerByte + p.Dist.StageLatencySec
		if p.Cached[dep.ID] {
			coordFetched[dep.ID] = true
		}
		return d
	}
	fit = func(n *Node) float64 {
		if fitted[n.ID] {
			return 0
		}
		fitted[n.ID] = true
		// The fit itself runs on the coordinator at local speed; each of
		// its Weight() passes pulls the input across the wire unless a
		// fetched copy of a pinned dataset is already held.
		d := p.timeOf(n) + steadyFetches(n.Weight(), func() float64 { return fetch(n.Deps[0]) })
		if len(n.Deps) > 1 {
			d += demand(n.Deps[1]) // labels stay coordinator-local
		}
		return d
	}
	return demand(p.g.Sink)
}
