package core

import (
	"fmt"
	"sync"

	"keystoneml/internal/engine"
)

// StateCodec is implemented by transform operators whose fitted state can
// be serialized into an artifact. StateKind returns a stable identifier
// for the operator's on-disk payload format (it need not equal Name());
// a decoder for the same kind must be registered via RegisterStateDecoder,
// conventionally from the operator package's init.
type StateCodec interface {
	// StateKind identifies the payload format, e.g. "model.linear".
	StateKind() string
	// EncodeState serializes the operator's fitted state.
	EncodeState() ([]byte, error)
}

// funcOpKind marks steps whose operator carries no fitted state and is
// reconstructed purely from its Name() via the registered resolvers.
const funcOpKind = "core.func"

var (
	persistMu     sync.RWMutex
	stateDecoders = map[string]func([]byte) (TransformOp, error){}
	funcResolvers []func(name string) (TransformOp, bool)
)

// RegisterStateDecoder installs the decoder for one StateKind. Operator
// packages call it from init; registering the same kind twice panics,
// which catches kind-string collisions at program start.
func RegisterStateDecoder(kind string, dec func([]byte) (TransformOp, error)) {
	persistMu.Lock()
	defer persistMu.Unlock()
	if _, dup := stateDecoders[kind]; dup {
		panic(fmt.Sprintf("core: duplicate state decoder for kind %q", kind))
	}
	stateDecoders[kind] = dec
}

// RegisterFuncResolver installs a resolver that reconstructs stateless
// function operators from their Name(). A resolver returns (op, true)
// when it recognizes the name; resolvers are consulted in registration
// order. The contract is that the resolved operator's Apply behaves
// identically to the original — names therefore must fully determine
// behaviour (parameters embedded in the name, e.g. "text.ngrams[1-2]").
func RegisterFuncResolver(fn func(name string) (TransformOp, bool)) {
	persistMu.Lock()
	defer persistMu.Unlock()
	funcResolvers = append(funcResolvers, fn)
}

// resolveFuncOp reconstructs a stateless operator from its name.
func resolveFuncOp(name string) (TransformOp, bool) {
	persistMu.RLock()
	defer persistMu.RUnlock()
	for _, fn := range funcResolvers {
		if op, ok := fn(name); ok {
			return op, true
		}
	}
	return nil, false
}

// EncodeOp serializes one transform operator: stateful operators through
// their StateCodec, stateless ones by name when a resolver recognizes it.
// Operators that are neither cannot be persisted.
func EncodeOp(op TransformOp) (kind string, state []byte, err error) {
	if sc, ok := op.(StateCodec); ok {
		state, err = sc.EncodeState()
		if err != nil {
			return "", nil, fmt.Errorf("core: encode state of %q: %w", op.Name(), err)
		}
		return sc.StateKind(), state, nil
	}
	name := op.Name()
	if _, ok := resolveFuncOp(name); ok {
		return funcOpKind, []byte(name), nil
	}
	return "", nil, fmt.Errorf("core: operator %q supports neither StateCodec nor name resolution; it cannot be persisted", name)
}

// DecodeOp reconstructs a transform operator from its encoded form.
func DecodeOp(kind string, state []byte) (TransformOp, error) {
	if kind == funcOpKind {
		name := string(state)
		op, ok := resolveFuncOp(name)
		if !ok {
			return nil, fmt.Errorf("core: no resolver for stateless operator %q", name)
		}
		return op, nil
	}
	persistMu.RLock()
	dec := stateDecoders[kind]
	persistMu.RUnlock()
	if dec == nil {
		return nil, fmt.Errorf("core: no state decoder registered for kind %q", kind)
	}
	op, err := dec(state)
	if err != nil {
		return nil, fmt.Errorf("core: decode %q state: %w", kind, err)
	}
	return op, nil
}

// StepRecord is the serialized form of one step of a fitted pipeline's
// precompiled plan. Kind is the node kind's String form; apply-model
// steps are normalized to "transform" at encode time (a fitted model is
// just a transformer), so only "source", "transform" and "gather" appear
// in artifacts.
type StepRecord struct {
	// Kind is "source", "transform" or "gather".
	Kind string
	// Deps are indices of earlier steps whose outputs this step consumes.
	Deps []int
	// Op is the operator's state kind ("" for source/gather steps).
	Op string
	// State is the operator's encoded fitted state.
	State []byte
	// Name is the operator's display name, carried for diagnostics.
	Name string
}

// StepRecords serializes the fitted pipeline's plan, one record per step
// in dependency order. It fails if any step's operator cannot be encoded
// or if the plan reads labels at apply time.
func (f *Fitted) StepRecords() ([]StepRecord, error) {
	recs := make([]StepRecord, len(f.steps))
	for i := range f.steps {
		st := &f.steps[i]
		switch st.kind {
		case KindSource:
			recs[i] = StepRecord{Kind: KindSource.String()}
		case KindGather:
			recs[i] = StepRecord{Kind: KindGather.String(), Deps: append([]int(nil), st.deps...)}
		case KindTransform, KindApplyModel:
			if st.op == nil {
				return nil, fmt.Errorf("core: step %d (%s) has no fitted model; cannot persist an unfit pipeline", i, st.name)
			}
			kind, state, err := EncodeOp(st.op)
			if err != nil {
				return nil, err
			}
			recs[i] = StepRecord{
				Kind:  KindTransform.String(),
				Deps:  append([]int(nil), st.deps...),
				Op:    kind,
				State: state,
				Name:  st.op.Name(),
			}
		case KindLabels:
			return nil, fmt.Errorf("core: step %d reads labels at apply time; such a pipeline cannot be persisted", i)
		default:
			return nil, fmt.Errorf("core: unexpected step kind %v at persist time", st.kind)
		}
	}
	return recs, nil
}

// FittedFromSteps reconstructs a fitted pipeline from serialized step
// records: operators are decoded, a minimal apply-time graph is rebuilt
// (so the Collection-based Apply oracle still works on loaded pipelines),
// and the plan is recompiled through NewFitted, guaranteeing loaded and
// in-memory pipelines share the exact same evaluation path. outIdx is the
// step whose output is the pipeline result.
func FittedFromSteps(recs []StepRecord, outIdx int, ctx *engine.Context) (*Fitted, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: empty step plan")
	}
	if outIdx < 0 || outIdx >= len(recs) {
		return nil, fmt.Errorf("core: plan output index %d out of range [0,%d)", outIdx, len(recs))
	}
	g := NewGraph()
	nodes := make([]*Node, len(recs))
	for i, r := range recs {
		for _, d := range r.Deps {
			if d < 0 || d >= i {
				return nil, fmt.Errorf("core: step %d dependency %d violates topological order", i, d)
			}
		}
		switch r.Kind {
		case KindSource.String():
			nodes[i] = g.Source
		case KindTransform.String():
			if len(r.Deps) != 1 {
				return nil, fmt.Errorf("core: transform step %d has %d dependencies, want 1", i, len(r.Deps))
			}
			op, err := DecodeOp(r.Op, r.State)
			if err != nil {
				return nil, err
			}
			nodes[i] = g.AddTransform(op, nodes[r.Deps[0]])
		case KindGather.String():
			if len(r.Deps) == 0 {
				return nil, fmt.Errorf("core: gather step %d has no dependencies", i)
			}
			deps := make([]*Node, len(r.Deps))
			for j, d := range r.Deps {
				deps[j] = nodes[d]
			}
			nodes[i] = g.AddGather(deps)
		default:
			return nil, fmt.Errorf("core: unknown step kind %q", r.Kind)
		}
	}
	g.Sink = nodes[outIdx]
	return NewFitted(g, nil, ctx), nil
}

// ShapeSpec renders a plan's structural fingerprint: step kinds, operator
// kinds and dependency wiring, but no fitted state. Two pipelines with
// the same ShapeSpec run the same operators in the same topology, which
// is what artifact compatibility checks compare.
func ShapeSpec(recs []StepRecord) string {
	out := make([]byte, 0, 32*len(recs))
	for i, r := range recs {
		out = append(out, fmt.Sprintf("%d:%s:%s:%v;", i, r.Kind, r.Op, r.Deps)...)
	}
	return string(out)
}

// OutIdx exposes the plan's output step index for persistence.
func (f *Fitted) OutIdx() int { return f.outIdx }
