package core

import (
	"reflect"
	"testing"
)

// buildLineage records the shape recovery most often replays: a root, a
// retained apply, a dropped temp, and a zip of two live datasets.
//
//	src ─op1→ t1(dropped) ─op2→ n5(live)
//	src ─op3→ n7(live)
//	zip(n5, n7) → n9(live)
func buildLineage() *Lineage {
	l := NewLineage()
	l.Root("src")
	l.Apply("t1", "src", "op1", []byte{1})
	l.Apply("n5", "t1", "op2", []byte{2})
	l.Drop("t1")
	l.Apply("n7", "src", "op3", []byte{3})
	l.Zip("n9", "n5", "n7")
	return l
}

func TestLineageReplayOrder(t *testing.T) {
	l := buildLineage()

	order, err := l.ReplayOrder(l.Live())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(order))
	pos := make(map[string]int, len(order))
	for i, n := range order {
		names[i] = n.Name
		pos[n.Name] = i
	}
	// Exactly the closure, each node once, parents before children.
	want := []string{"src", "t1", "n5", "n7", "n9"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("replay order = %v, want %v", names, want)
	}
	for _, n := range order {
		for _, p := range n.Parents {
			if pos[p] >= pos[n.Name] {
				t.Fatalf("parent %q ordered at %d, after child %q at %d", p, pos[p], n.Name, pos[n.Name])
			}
		}
	}
	// The dropped temp is in the program but not live.
	for _, n := range order {
		if n.Name == "t1" && n.Live {
			t.Fatal("dropped t1 still marked live in replay order")
		}
		if n.Name == "n5" && (n.OpKind != "op2" || !reflect.DeepEqual(n.OpState, []byte{2})) {
			t.Fatalf("n5 op = (%q, %v), want (op2, [2])", n.OpKind, n.OpState)
		}
	}
}

func TestLineageLive(t *testing.T) {
	l := buildLineage()
	if got, want := l.Live(), []string{"src", "n5", "n7", "n9"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("live = %v, want %v", got, want)
	}
	l.Drop("n9")
	if got, want := l.Live(), []string{"src", "n5", "n7"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("live after drop = %v, want %v", got, want)
	}
}

func TestLineageScopedReplay(t *testing.T) {
	l := buildLineage()
	// Replaying just n7 must not pull in the n5 branch.
	order, err := l.ReplayOrder([]string{"n7"})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(order))
	for i, n := range order {
		names[i] = n.Name
	}
	if want := []string{"src", "n7"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("scoped replay = %v, want %v", names, want)
	}
}

func TestLineageErrors(t *testing.T) {
	l := NewLineage()
	if _, err := l.ReplayOrder([]string{"ghost"}); err == nil {
		t.Fatal("unknown target accepted")
	}
	// A child whose parent was never recorded is a broken chain.
	l.Apply("b", "a", "op", nil)
	if _, err := l.ReplayOrder([]string{"b"}); err == nil {
		t.Fatal("missing parent accepted")
	}
	// Node lookups.
	if _, ok := l.Node("a"); ok {
		t.Fatal("found lineage for unrecorded dataset")
	}
	if n, ok := l.Node("b"); !ok || n.Kind != LineageApply {
		t.Fatalf("Node(b) = %+v, %v", n, ok)
	}
}
