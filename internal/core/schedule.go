package core

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// This file defines the SchedulePlan: the one schedule model both the
// materialization optimizer and the parallel executor reason with. Before
// it existed the two layers disagreed about the same DAG — the optimizer
// costed cache sets with the paper's sequential Σ t(v)·computes(v) model
// while the executor ran a stage-aware parallel scheduler, so the planner
// systematically mis-ranked cache candidates on branchy DAGs (recomputing
// a subtree costs its critical path under k workers, not its node-time
// sum). A SchedulePlan carries:
//
//   - the cost model: Makespan() simulates list-scheduled execution of
//     the demand/pass structure under k workers, honoring cache
//     boundaries and per-pass estimator refetches; workers=1 degenerates
//     to the paper's sequential oracle exactly;
//   - dispatch priorities: critical-path-first ordering for the
//     executor's ready queue, breaking ties toward nodes whose outputs
//     the materialization plan pins and toward nodes whose successors
//     unlock the widest stages;
//   - refetch sets: for every estimator, the nodes its iterative fit
//     will demand again — what the executor's speculative cross-pass
//     retention keeps alive (subordinate to the cache budget) while the
//     fit is still running.

// SchedulerPolicy selects how the parallel executor orders ready work.
type SchedulerPolicy int

const (
	// SchedulerPriority (the default) dispatches ready pass members in
	// schedule-plan priority order: longest downstream critical path
	// first, ties broken toward pinned outputs and wide unlocks.
	SchedulerPriority SchedulerPolicy = iota
	// SchedulerFIFO dispatches ready members in pass-plan (dependency
	// discovery) order and disables speculative retention — the
	// scheduler's behaviour before the shared schedule plan existed,
	// kept for comparisons.
	SchedulerFIFO
)

// SchedulePlan is a schedule model for one pipeline graph: per-node
// times, the materialization boundaries, and a worker count, plus the
// derived priorities and refetch sets. Build it with NewSchedulePlan;
// the optimizer does so via optimizer.ScheduleFor and hands it to the
// executor through Plan.Execute, so both layers consume the same object.
//
// A plan is immutable after construction and safe for concurrent readers
// (the executor's pass coordinators and the simulator never mutate it);
// Makespan keeps its mutable simulation state on the stack.
type SchedulePlan struct {
	g *Graph
	// Workers is the DAG-level parallelism the plan models; <= 1 means
	// the sequential depth-first oracle.
	Workers int
	// Times holds t(v) in seconds per local computation of node v. A nil
	// map selects structural mode: every node costs one unit, which is
	// what the executor falls back to when no profile exists (priorities
	// become longest-downstream-hop counts).
	Times map[int]float64
	// Cached marks the materialization boundaries (the pinned set): a
	// cached node's output is computed once and served from memory
	// afterwards.
	Cached map[int]bool
	// Dist, when non-nil, switches Makespan to the distributed-time
	// simulation (network transfer + stage launch latency under the
	// keystone/dist coordinator); see schedule_dist.go. Attach it with
	// WithDist. Nil models local execution exactly as before.
	Dist *DistModel

	structural bool
	priority   map[int]float64
	succWidth  map[int]int
	// refetch (estimator ID -> nodes its fit passes recompute) is built
	// lazily: only the executor's retention consumes it, and the greedy
	// planner constructs thousands of throwaway plans per Fit whose
	// Makespan never touches it.
	refetchOnce sync.Once
	refetch     map[int][]int
}

// NewSchedulePlan derives priorities and refetch sets for g under the
// given per-node times (nil for structural unit costs), materialization
// set (nil for none) and worker count. The maps are retained, not
// copied; callers must not mutate them while the plan is in use.
func NewSchedulePlan(g *Graph, times map[int]float64, cached map[int]bool, workers int) *SchedulePlan {
	p := &SchedulePlan{
		g:          g,
		Workers:    workers,
		Times:      times,
		Cached:     cached,
		structural: times == nil,
		priority:   make(map[int]float64, len(g.Nodes)),
		succWidth:  make(map[int]int, len(g.Nodes)),
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
	if p.Cached == nil {
		p.Cached = map[int]bool{}
	}

	order := g.Topological()
	succ := g.Successors()
	// Successors may include nodes unreachable from the sink; count only
	// the reachable ones so priorities and widths describe work that can
	// actually run.
	reachable := make(map[int]bool, len(order))
	for _, n := range order {
		reachable[n.ID] = true
	}
	// priority(v) = t(v) + max over reachable successors: the length of
	// the longest downstream path — v's pull on the critical path.
	// Computed sink-back (successors appear later in topological order).
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		var down float64
		for _, sid := range succ[n.ID] {
			if !reachable[sid] {
				continue
			}
			p.succWidth[n.ID]++
			if pr := p.priority[sid]; pr > down {
				down = pr
			}
		}
		p.priority[n.ID] = p.timeOf(n) + down
	}
	return p
}

// refetchSets builds (once, thread-safely) the estimator -> refetch-set
// map.
func (p *SchedulePlan) refetchSets() map[int][]int {
	p.refetchOnce.Do(func() {
		p.refetch = make(map[int][]int)
		for _, n := range p.g.Topological() {
			if n.Kind == KindEstimator {
				p.refetch[n.ID] = p.refetchSet(n)
			}
		}
	})
	return p.refetch
}

// timeOf returns the modeled local compute time of n.
func (p *SchedulePlan) timeOf(n *Node) float64 {
	if p.structural {
		if n.Kind == KindSource || n.Kind == KindLabels {
			return 0
		}
		return 1
	}
	return p.Times[n.ID]
}

// Priority returns the dispatch priority of node id (longest downstream
// critical path, including the node's own time).
func (p *SchedulePlan) Priority(id int) float64 { return p.priority[id] }

// Pinned reports whether the materialization plan pins node id.
func (p *SchedulePlan) Pinned(id int) bool { return p.Cached[id] }

// Less is the ready-queue ordering: a dispatches before b when a's
// downstream critical path is longer; ties break toward pinned outputs
// (materializing them earlier opens cache boundaries for concurrent
// passes), then toward nodes with more successors (completing them
// unlocks the widest next stage), then by ID for determinism.
func (p *SchedulePlan) Less(a, b *Node) bool {
	pa, pb := p.priority[a.ID], p.priority[b.ID]
	if pa != pb {
		return pa > pb
	}
	if ca, cb := p.Cached[a.ID], p.Cached[b.ID]; ca != cb {
		return ca
	}
	if wa, wb := p.succWidth[a.ID], p.succWidth[b.ID]; wa != wb {
		return wa > wb
	}
	return a.ID < b.ID
}

// RefetchSet returns the nodes estimator estID's fit passes will demand
// again (and, where uncached, recompute): the subtree of its data
// dependency pruned at materialization boundaries, label/source inputs
// and nested estimators (models are memoized). Callers must not mutate
// the returned slice.
func (p *SchedulePlan) RefetchSet(estID int) []int { return p.refetchSets()[estID] }

// RefetchCounts returns, for every node appearing in some refetch set,
// how many estimators will refetch it — the executor's initial
// speculative-retention interest counts.
func (p *SchedulePlan) RefetchCounts() map[int]int {
	out := make(map[int]int)
	for _, set := range p.refetchSets() {
		for _, id := range set {
			out[id]++
		}
	}
	return out
}

func (p *SchedulePlan) refetchSet(est *Node) []int {
	var out []int
	seen := map[int]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		if p.Cached[n.ID] {
			return // pinned boundary: the cache itself retains it
		}
		switch n.Kind {
		case KindSource, KindLabels:
			return // bound inputs are always in memory
		case KindEstimator:
			return // nested fits are memoized, not re-run
		}
		out = append(out, n.ID)
		for _, d := range n.Deps {
			walk(d)
		}
	}
	walk(est.Deps[0])
	sort.Ints(out)
	return out
}

// Makespan estimates the wall-clock seconds of executing the graph to
// its sink under the plan's worker count and materialization set. For
// Workers <= 1 it reproduces the paper's sequential oracle — the result
// equals Σ t(v)·computes(v) of the T(v)/C(v) recurrence exactly. For
// Workers > 1 it simulates the executor's pass structure: each demand is
// a dataflow pass over the subgraph pruned at cache boundaries,
// list-scheduled onto k workers in priority order, with estimator
// members expanding into their iterative refetch passes. The first
// computation of a node in the materialization set establishes a cache
// boundary for every later pass, which is how per-pass recompute counts
// enter the estimate.
//
// Modeling simplifications (it is a cost model, not a replay): a nested
// fetch pass is charged to its estimator's duration at full worker
// width, and within-pass coalescing follows the pass plan rather than
// live single-flight timing.
func (p *SchedulePlan) Makespan() float64 {
	if p.Dist != nil {
		return p.distTime()
	}
	if p.Workers <= 1 {
		return p.sequentialTime()
	}
	return p.parallelTime()
}

// sequentialTime mirrors the sequential oracle's demand recursion: each
// access to an unmaterialized node recomputes it (and its inputs), the
// first computation of a node in the cache set pins it, fits run once
// and fetch their data dependency Weight() times.
func (p *SchedulePlan) sequentialTime() float64 {
	mat := make(map[int]bool)
	fitted := make(map[int]bool)
	var demand func(n *Node) float64
	var fit func(n *Node) float64
	demand = func(n *Node) float64 {
		if mat[n.ID] {
			return 0
		}
		var d float64
		switch n.Kind {
		case KindSource, KindLabels:
			return p.timeOf(n) // bound inputs; never materialized
		case KindTransform:
			d = demand(n.Deps[0]) + p.timeOf(n)
		case KindGather:
			for _, dep := range n.Deps {
				d += demand(dep)
			}
			d += p.timeOf(n)
		case KindApplyModel:
			d = fit(n.Deps[0]) + demand(n.Deps[1]) + p.timeOf(n)
		default:
			panic(fmt.Sprintf("core: schedule simulation demanded %v node #%d as data", n.Kind, n.ID))
		}
		if p.Cached[n.ID] {
			mat[n.ID] = true
		}
		return d
	}
	fit = func(n *Node) float64 {
		if fitted[n.ID] {
			return 0
		}
		fitted[n.ID] = true
		d := p.timeOf(n) + steadyFetches(n.Weight(), func() float64 { return demand(n.Deps[0]) })
		if len(n.Deps) > 1 {
			d += demand(n.Deps[1])
		}
		return d
	}
	return demand(p.g.Sink)
}

// steadyFetches charges w iterative fetches of an estimator's input by
// simulating at most two: the first fetch is the only one that can
// change simulation state (it materializes every pin it touches, and a
// later fetch demands a subset of what an earlier one did, so nothing
// new is ever pinned or fitted afterwards); fetches 2..w are identical
// repetitions of the second. This keeps the planner's cost independent
// of estimator iteration counts (solvers run tens to hundreds of
// passes, and GreedyCacheSet simulates per candidate per pick).
func steadyFetches(w int, fetch func() float64) float64 {
	if w <= 0 {
		return 0
	}
	d := fetch()
	if w > 1 {
		d += float64(w-1) * fetch()
	}
	return d
}

// parallelTime simulates the parallel executor: each demand of a node is
// one pass (planned like Executor.planPass, pruned at current
// materialization boundaries, estimator members not descended into),
// event-driven list scheduling assigns ready members to k workers in
// plan priority order, and estimator members expand into their refetch
// passes when dispatched.
func (p *SchedulePlan) parallelTime() float64 {
	mat := make(map[int]bool)
	fitted := make(map[int]bool)
	var passTime func(root *Node) float64
	var fitTime func(n *Node) float64

	fitTime = func(n *Node) float64 {
		if fitted[n.ID] {
			return 0
		}
		fitted[n.ID] = true
		d := p.timeOf(n) + steadyFetches(n.Weight(), func() float64 { return passTime(n.Deps[0]) })
		if len(n.Deps) > 1 {
			d += passTime(n.Deps[1])
		}
		return d
	}

	passTime = func(root *Node) float64 {
		switch root.Kind {
		case KindSource, KindLabels:
			return p.timeOf(root)
		}
		if mat[root.ID] {
			return 0
		}
		// Pass membership: the subtree of root pruned at current cache
		// boundaries; estimator members fetch their own inputs through
		// nested passes, so the walk does not descend into them.
		members := make(map[int]*Node)
		boundary := make(map[int]bool)
		var order []*Node
		var visit func(n *Node)
		visit = func(n *Node) {
			if _, ok := members[n.ID]; ok {
				return
			}
			members[n.ID] = n
			switch {
			case n.Kind == KindEstimator:
			case mat[n.ID]:
				boundary[n.ID] = true
			default:
				for _, d := range n.Deps {
					visit(d)
				}
			}
			order = append(order, n)
		}
		visit(root)
		pending := make(map[int]int, len(order))
		succ := make(map[int][]int, len(order))
		for _, n := range order {
			if boundary[n.ID] {
				continue
			}
			for _, d := range n.Deps {
				if _, ok := members[d.ID]; !ok {
					continue
				}
				pending[n.ID]++
				succ[d.ID] = append(succ[d.ID], n.ID)
			}
		}

		// dur resolves a member's duration at dispatch time, mutating
		// the simulation state exactly when the real scheduler would:
		// a computed pin becomes a boundary for every later pass, and a
		// dispatched fit consumes its refetch passes.
		dur := func(n *Node) float64 {
			switch {
			case n.Kind == KindEstimator:
				return fitTime(n)
			case boundary[n.ID]:
				return 0
			case n.Kind == KindSource || n.Kind == KindLabels:
				return p.timeOf(n)
			default:
				if p.Cached[n.ID] {
					mat[n.ID] = true
				}
				return p.timeOf(n)
			}
		}

		ready := &planHeap{plan: p}
		for _, n := range order {
			if pending[n.ID] == 0 {
				heap.Push(ready, n)
			}
		}
		running := &simRunHeap{}
		clock, free := 0.0, p.Workers
		for ready.Len() > 0 || running.Len() > 0 {
			for free > 0 && ready.Len() > 0 {
				n := heap.Pop(ready).(*Node)
				heap.Push(running, simRun{finish: clock + dur(n), id: n.ID})
				free--
			}
			if running.Len() == 0 {
				break
			}
			r := heap.Pop(running).(simRun)
			clock = r.finish
			free++
			for _, sid := range succ[r.id] {
				pending[sid]--
				if pending[sid] == 0 {
					heap.Push(ready, members[sid])
				}
			}
		}
		return clock
	}
	return passTime(p.g.Sink)
}

// planHeap is a priority heap of nodes ordered by SchedulePlan.Less. It
// is shared by the executor's ready queue and the makespan simulator so
// the simulated dispatch order is, by construction, the order the real
// dispatcher would use.
type planHeap struct {
	plan  *SchedulePlan
	nodes []*Node
}

func (h *planHeap) Len() int           { return len(h.nodes) }
func (h *planHeap) Less(i, j int) bool { return h.plan.Less(h.nodes[i], h.nodes[j]) }
func (h *planHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *planHeap) Push(x any)         { h.nodes = append(h.nodes, x.(*Node)) }
func (h *planHeap) Pop() any {
	n := h.nodes[len(h.nodes)-1]
	h.nodes = h.nodes[:len(h.nodes)-1]
	return n
}

// simRun is one executing simulation member; the run heap pops the
// earliest finisher (ties by ID for determinism).
type simRun struct {
	finish float64
	id     int
}

type simRunHeap []simRun

func (h simRunHeap) Len() int { return len(h) }
func (h simRunHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].id < h[j].id
}
func (h simRunHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simRunHeap) Push(x any)   { *h = append(*h, x.(simRun)) }
func (h *simRunHeap) Pop() any {
	old := *h
	r := old[len(old)-1]
	*h = old[:len(old)-1]
	return r
}
