// Package cost defines the operator cost-model framework from Figure 3 of
// the KeystoneML paper: CostProfile, CostModel, and the dataset statistics
// (A_s) that cost models consume. The cost of a physical operator f is
//
//	c(f, A_s, R) = R_exec * c_exec(f, A_s, R_w) + R_coord * c_coord(f, A_s, R_w)
//
// where the operator-specific functions c_exec / c_coord describe the
// longest critical path in the operator's execution graph (most FLOPs on a
// node, most bytes over a link) and the cluster-specific weights R_exec /
// R_coord come from the resource descriptor. Splitting the model this way
// lets new operators and new hardware be added independently.
package cost

import "keystoneml/internal/cluster"

// DataStats describes statistics of a dataset used as an operator's input
// (A_s in the paper). It is estimated from a sample during execution
// subsampling (Section 4.1).
type DataStats struct {
	N        int64   // number of records
	Dim      int64   // features per record
	K        int64   // number of classes / output dimensionality
	Sparsity float64 // fraction of entries that are non-zero; 1 = dense
	Bytes    int64   // estimated total dataset size in bytes
}

// AvgNNZ returns s, the average number of non-zero features per example
// (used by the sparse solver models in Table 1).
func (d DataStats) AvgNNZ() float64 {
	if d.Sparsity <= 0 || d.Sparsity > 1 {
		return float64(d.Dim)
	}
	return d.Sparsity * float64(d.Dim)
}

// IsSparse reports whether the input should be treated as sparse. The 10%
// threshold matches the point at which CSR storage beats dense storage.
func (d DataStats) IsSparse() bool { return d.Sparsity > 0 && d.Sparsity < 0.1 }

// Profile is a CostProfile: resource consumption of one physical operator
// execution on the critical path.
type Profile struct {
	Flops   float64 // floating point operations on the busiest node
	Bytes   float64 // memory traffic on the busiest node
	Network float64 // bytes over the most loaded network link
	Stages  float64 // distributed stages launched (job-scheduling latency)
}

// Plus returns the sum of two profiles (sequential composition).
func (p Profile) Plus(o Profile) Profile {
	return Profile{Flops: p.Flops + o.Flops, Bytes: p.Bytes + o.Bytes, Network: p.Network + o.Network, Stages: p.Stages + o.Stages}
}

// Scale multiplies all components, e.g. by an iteration count.
func (p Profile) Scale(f float64) Profile {
	return Profile{Flops: p.Flops * f, Bytes: p.Bytes * f, Network: p.Network * f, Stages: p.Stages * f}
}

// Seconds converts the profile to estimated wall seconds on the given
// cluster: compute and memory terms are weighted by the execution weight,
// the network term by the coordination weight.
func (p Profile) Seconds(r cluster.Resources) float64 {
	exec := p.Flops*r.ExecWeight() + p.Bytes*r.MemWeight()
	coord := p.Network*r.CoordWeight() + p.Stages*r.StageLatencySec
	return exec + coord
}

// Model is a CostModel for one physical operator implementation: given
// input statistics and a worker count it produces a cost profile.
type Model interface {
	// Name identifies the physical operator (e.g. "solver.lbfgs").
	Name() string
	// Cost estimates the profile of running the operator on a dataset with
	// the given statistics across `workers` nodes.
	Cost(stats DataStats, workers int) Profile
}

// Option pairs a cost model with an opaque physical operator value; the
// optimizer scores the models and returns the chosen operator.
type Option struct {
	Model    Model
	Operator any
}

// Choose evaluates every option's cost model and returns the index of the
// cheapest option under the given statistics and cluster. Infeasible
// options (negative FLOPs by convention) are skipped; if all are
// infeasible, index 0 is returned.
func Choose(options []Option, stats DataStats, r cluster.Resources) int {
	best, bestCost := -1, 0.0
	for i, opt := range options {
		p := opt.Model.Cost(stats, r.Nodes)
		if p.Flops < 0 {
			continue // marked infeasible (e.g. exceeds per-node memory)
		}
		c := p.Seconds(r)
		if best < 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}
