package cost

import (
	"math"
	"testing"

	"keystoneml/internal/cluster"
)

type fixedModel struct {
	name string
	p    Profile
}

func (m fixedModel) Name() string                { return m.name }
func (m fixedModel) Cost(DataStats, int) Profile { return m.p }

func TestProfileArithmetic(t *testing.T) {
	a := Profile{Flops: 1, Bytes: 2, Network: 3}
	b := Profile{Flops: 10, Bytes: 20, Network: 30}
	s := a.Plus(b)
	if s.Flops != 11 || s.Bytes != 22 || s.Network != 33 {
		t.Errorf("Plus = %+v", s)
	}
	sc := a.Scale(4)
	if sc.Flops != 4 || sc.Bytes != 8 || sc.Network != 12 {
		t.Errorf("Scale = %+v", sc)
	}
}

func TestProfileSeconds(t *testing.T) {
	r := cluster.Resources{Nodes: 1, GFLOPs: 1, MemBandwidthGB: 1, NetBandwidthGB: 1}
	p := Profile{Flops: 1e9, Bytes: 1e9, Network: 1e9}
	// 1s compute + 1s memory + 1s network.
	if got := p.Seconds(r); math.Abs(got-3) > 1e-9 {
		t.Errorf("Seconds = %g, want 3", got)
	}
}

func TestChoosePicksCheapest(t *testing.T) {
	opts := []Option{
		{Model: fixedModel{"slow", Profile{Flops: 1e12}}},
		{Model: fixedModel{"fast", Profile{Flops: 1e6}}},
		{Model: fixedModel{"mid", Profile{Flops: 1e9}}},
	}
	if got := Choose(opts, DataStats{}, cluster.R3_4XLarge(1)); got != 1 {
		t.Errorf("Choose = %d, want 1", got)
	}
}

func TestChooseSkipsInfeasible(t *testing.T) {
	opts := []Option{
		{Model: fixedModel{"infeasible", Profile{Flops: -1}}},
		{Model: fixedModel{"ok", Profile{Flops: 1e9}}},
	}
	if got := Choose(opts, DataStats{}, cluster.R3_4XLarge(1)); got != 1 {
		t.Errorf("Choose = %d, want 1", got)
	}
	// All infeasible: fall back to index 0.
	all := []Option{
		{Model: fixedModel{"a", Profile{Flops: -1}}},
		{Model: fixedModel{"b", Profile{Flops: -1}}},
	}
	if got := Choose(all, DataStats{}, cluster.R3_4XLarge(1)); got != 0 {
		t.Errorf("all-infeasible Choose = %d, want 0", got)
	}
}

func TestDataStatsHelpers(t *testing.T) {
	dense := DataStats{Dim: 100, Sparsity: 1}
	if dense.AvgNNZ() != 100 {
		t.Errorf("dense AvgNNZ = %g", dense.AvgNNZ())
	}
	if dense.IsSparse() {
		t.Error("dense reported sparse")
	}
	sparse := DataStats{Dim: 1000, Sparsity: 0.01}
	if sparse.AvgNNZ() != 10 {
		t.Errorf("sparse AvgNNZ = %g", sparse.AvgNNZ())
	}
	if !sparse.IsSparse() {
		t.Error("1% density not reported sparse")
	}
	// Degenerate sparsity values fall back to dense.
	if (DataStats{Dim: 10, Sparsity: 0}).AvgNNZ() != 10 {
		t.Error("zero sparsity should fall back to Dim")
	}
}
