package solvers

import (
	"bytes"
	"encoding/gob"

	"keystoneml/internal/core"
	"keystoneml/internal/linalg"
)

// linearMapperState is the gob payload behind LinearMapper's StateCodec.
type linearMapperState struct {
	W          *linalg.Matrix
	TrainLoss  float64
	SolverName string
}

// StateKind implements core.StateCodec.
func (m *LinearMapper) StateKind() string { return "model.linear" }

// EncodeState implements core.StateCodec.
func (m *LinearMapper) EncodeState() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(linearMapperState{
		W: m.W, TrainLoss: m.TrainLoss, SolverName: m.SolverName,
	})
	return buf.Bytes(), err
}

func init() {
	core.RegisterStateDecoder("model.linear", func(state []byte) (core.TransformOp, error) {
		var s linearMapperState
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
			return nil, err
		}
		return &LinearMapper{W: s.W, TrainLoss: s.TrainLoss, SolverName: s.SolverName}, nil
	})
}
