package solvers

import (
	"sync"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// BlockSolver partitions the d features into blocks of BlockSize columns
// and performs Gauss-Seidel sweeps: each block's weights are re-solved
// exactly against the current residual while the other blocks are held
// fixed. Per Table 1 the cost is O(i·n·d·(b+k)/w) compute and
// O(i·d·(b+k)) network — cheaper than an exact solve when b << d, which
// is why it wins on very wide dense problems (TIMIT beyond 8k features)
// but loses badly on sparse text data it must densify.
type BlockSolver struct {
	BlockSize int     // features per block; default 512
	Sweeps    int     // Gauss-Seidel passes over all blocks; default 3
	Lambda    float64 // ridge regularization; defaulted to a small value
}

// Name implements core.EstimatorOp.
func (s *BlockSolver) Name() string { return "solver.block" }

// Weight implements core.Iterative: the input is refetched once per sweep.
func (s *BlockSolver) Weight() int { return s.sweeps() }

func (s *BlockSolver) blockSize() int {
	if s.BlockSize > 0 {
		return s.BlockSize
	}
	return 512
}

func (s *BlockSolver) sweeps() int {
	if s.Sweeps > 0 {
		return s.Sweeps
	}
	return 3
}

func (s *BlockSolver) lambda() float64 {
	if s.Lambda > 0 {
		return s.Lambda
	}
	return 1e-6
}

// Fit implements core.EstimatorOp.
func (s *BlockSolver) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	lab := labels()
	// Exactly one fetch per sweep — Weight() fetches total, matching what
	// the cost model charges. Dimensions come from the first sweep's
	// fetch and the final training loss reuses the last one: an extra
	// fetch is a full upstream recompute locally and a full cluster
	// shuffle under keystone/dist, so none are spent on bookkeeping.
	var d, k, b int
	var w *linalg.Matrix
	var pairs []partPair

	for sweep := 0; sweep < s.sweeps(); sweep++ {
		// One fetch per sweep: the upstream pipeline recomputes here when
		// the solver input is not materialized.
		pairs = pairPartitions(data(), lab)
		if sweep == 0 {
			_, d, k = dims(pairs)
			b = s.blockSize()
			if b > d {
				b = d
			}
			w = linalg.NewMatrix(d, k)
		}
		dense := densify(pairs)
		// Residual R = B - A W, maintained incrementally across blocks.
		resid := make([]*linalg.Matrix, len(dense))
		var wg sync.WaitGroup
		sem := make(chan struct{}, ctx.Parallelism)
		for i := range dense {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				resid[i] = dense[i].labels.Clone().Sub(dense[i].feat.Mul(w))
			}(i)
		}
		wg.Wait()

		for lo := 0; lo < d; lo += b {
			hi := min(lo+b, d)
			bw := hi - lo
			// Aggregate block Gram G = A_Bᵀ A_B and C = A_Bᵀ (R + A_B W_B)
			// across partitions (one "shuffle" of d·(b+k) sized matrices).
			g := linalg.NewMatrix(bw, bw)
			c := linalg.NewMatrix(bw, k)
			wb := w.SliceRows(lo, hi)
			type partial struct{ g, c *linalg.Matrix }
			partials := make([]partial, len(dense))
			// Each partition's A_B column slice is needed again by the
			// residual update below; slice once per block, not twice.
			abs := make([]*linalg.Matrix, len(dense))
			for i := range dense {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					ab := dense[i].feat.SliceCols(lo, hi)
					abs[i] = ab
					target := resid[i].Clone().Add(ab.Mul(wb))
					partials[i] = partial{g: ab.TMul(ab), c: ab.TMul(target)}
				}(i)
			}
			wg.Wait()
			for _, p := range partials {
				g.Add(p.g)
				c.Add(p.c)
			}
			for i := 0; i < bw; i++ {
				g.Set(i, i, g.At(i, i)+s.lambda())
			}
			newWb := linalg.CholeskySolve(g, c)
			// Update residuals: R <- R - A_B (W_B' - W_B).
			delta := newWb.Clone().Sub(wb)
			for i := range dense {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					resid[i].Sub(abs[i].Mul(delta))
				}(i)
			}
			wg.Wait()
			// Write the block back into W.
			for i := lo; i < hi; i++ {
				copy(w.Row(i), newWb.Row(i-lo))
			}
		}
	}
	return &LinearMapper{W: w, TrainLoss: squaredLoss(pairs, w), SolverName: s.Name()}
}

type densePair struct {
	feat   *linalg.Matrix
	labels *linalg.Matrix
}

// densify converts paired partitions to dense matrices (the block solver
// has no sparse path — exactly the weakness Figure 6 exposes on text).
func densify(pairs []partPair) []densePair {
	out := make([]densePair, 0, len(pairs))
	for i := range pairs {
		p := &pairs[i]
		if p.rows() == 0 {
			continue
		}
		f := p.dense
		if f == nil {
			f = linalg.NewSparseMatrixFromRows(p.sparse).Dense()
		}
		out = append(out, densePair{feat: f, labels: p.labels})
	}
	return out
}
