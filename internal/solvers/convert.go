package solvers

import (
	"fmt"

	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// partPair is one partition of paired features and labels, converted to
// matrix form (features either dense or as sparse rows).
type partPair struct {
	dense  *linalg.Matrix         // nil when input is sparse
	sparse []*linalg.SparseVector // nil when input is dense
	labels *linalg.Matrix
}

func (p *partPair) rows() int {
	if p.dense != nil {
		return p.dense.Rows
	}
	return len(p.sparse)
}

// pairPartitions zips a feature collection and label collection partition-
// wise into matrix pairs. Data and labels must share partition structure
// (they do by construction: labels flow through the DAG label source with
// the same partitioning as the training input).
func pairPartitions(data, labels *engine.Collection) []partPair {
	if data.NumPartitions() != labels.NumPartitions() {
		panic(fmt.Sprintf("solvers: data has %d partitions, labels %d", data.NumPartitions(), labels.NumPartitions()))
	}
	pairs := make([]partPair, data.NumPartitions())
	for i := range pairs {
		feat := data.Partition(i)
		lab := labels.Partition(i)
		if len(feat) != len(lab) {
			panic(fmt.Sprintf("solvers: partition %d has %d records but %d labels", i, len(feat), len(lab)))
		}
		pairs[i] = makePair(feat, lab)
	}
	return pairs
}

func makePair(feat, lab []any) partPair {
	var p partPair
	if len(feat) == 0 {
		p.labels = linalg.NewMatrix(0, 0)
		return p
	}
	p.labels = labelMatrix(lab)
	switch feat[0].(type) {
	case []float64:
		rows := make([][]float64, len(feat))
		for i, r := range feat {
			rows[i] = r.([]float64)
		}
		p.dense = linalg.NewMatrixFrom(rows)
	case *linalg.SparseVector:
		p.sparse = make([]*linalg.SparseVector, len(feat))
		for i, r := range feat {
			p.sparse[i] = r.(*linalg.SparseVector)
		}
	default:
		panic(fmt.Sprintf("solvers: unsupported feature record type %T", feat[0]))
	}
	return p
}

func labelMatrix(lab []any) *linalg.Matrix {
	rows := make([][]float64, len(lab))
	for i, r := range lab {
		y, ok := r.([]float64)
		if !ok {
			panic(fmt.Sprintf("solvers: labels must be []float64 vectors, got %T", r))
		}
		rows[i] = y
	}
	return linalg.NewMatrixFrom(rows)
}

// dims inspects paired partitions and returns (n, d, k).
func dims(pairs []partPair) (n, d, k int) {
	for _, p := range pairs {
		n += p.rows()
		if p.dense != nil && p.dense.Rows > 0 {
			d = p.dense.Cols
			k = p.labels.Cols
		}
		if p.sparse != nil && len(p.sparse) > 0 {
			d = p.sparse[0].Dim
			k = p.labels.Cols
		}
	}
	return n, d, k
}

// squaredLoss computes ||A W - B||_F^2 / n over the paired partitions.
func squaredLoss(pairs []partPair, w *linalg.Matrix) float64 {
	var total float64
	var n int
	k := w.Cols
	pred := make([]float64, k)
	for pi := range pairs {
		p := &pairs[pi]
		rows := p.rows()
		for r := 0; r < rows; r++ {
			scoreRow(p, r, w, pred)
			y := p.labels.Row(r)
			for j := 0; j < k; j++ {
				diff := pred[j] - y[j]
				total += diff * diff
			}
		}
		n += rows
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// scoreRow writes W applied to record r of partition p into out.
func scoreRow(p *partPair, r int, w *linalg.Matrix, out []float64) {
	for j := range out {
		out[j] = 0
	}
	k := w.Cols
	if p.dense != nil {
		x := p.dense.Row(r)
		for i, xi := range x {
			if xi == 0 {
				continue
			}
			row := w.Row(i)
			for j := 0; j < k; j++ {
				out[j] += xi * row[j]
			}
		}
		return
	}
	sv := p.sparse[r]
	for pos, i := range sv.Idx {
		xi := sv.Val[pos]
		row := w.Row(i)
		for j := 0; j < k; j++ {
			out[j] += xi * row[j]
		}
	}
}
