package solvers

import (
	"math"
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// makeDense builds a synthetic consistent regression problem: A (n x d)
// Gaussian, planted X* (d x k), B = A X*. Returns feature and label
// collections plus the planted solution.
func makeDense(seed uint64, n, d, k, parts int) (*engine.Collection, *engine.Collection, *linalg.Matrix) {
	rng := linalg.NewRNG(seed)
	a := rng.GaussianMatrix(n, d)
	xTrue := rng.GaussianMatrix(d, k)
	b := a.Mul(xTrue)
	feats := make([]any, n)
	labs := make([]any, n)
	for i := 0; i < n; i++ {
		feats[i] = linalg.CloneVec(a.Row(i))
		labs[i] = linalg.CloneVec(b.Row(i))
	}
	return engine.FromSlice(feats, parts), engine.FromSlice(labs, parts), xTrue
}

// makeSparse builds a sparse problem with s nonzeros per row.
func makeSparse(seed uint64, n, d, k, nnz, parts int) (*engine.Collection, *engine.Collection) {
	rng := linalg.NewRNG(seed)
	xTrue := rng.GaussianMatrix(d, k)
	feats := make([]any, n)
	labs := make([]any, n)
	for i := 0; i < n; i++ {
		idx := rng.Perm(d)[:nnz]
		val := rng.GaussianVector(nnz)
		sv := linalg.NewSparseVector(d, idx, val)
		feats[i] = sv
		y := make([]float64, k)
		for p, ii := range sv.Idx {
			for j := 0; j < k; j++ {
				y[j] += sv.Val[p] * xTrue.At(ii, j)
			}
		}
		labs[i] = y
	}
	return engine.FromSlice(feats, parts), engine.FromSlice(labs, parts)
}

func fetchOf(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }

func fitLoss(t *testing.T, est core.EstimatorOp, data, labels *engine.Collection) (*LinearMapper, float64) {
	t.Helper()
	ctx := engine.NewContext(4)
	model := est.Fit(ctx, fetchOf(data), fetchOf(labels))
	lm, ok := model.(*LinearMapper)
	if !ok {
		t.Fatalf("%s returned %T, want *LinearMapper", est.Name(), model)
	}
	return lm, lm.TrainLoss
}

func TestAllSolversReachOptimum(t *testing.T) {
	data, labels, xTrue := makeDense(1, 120, 10, 3, 4)
	ests := []core.EstimatorOp{
		&LocalQR{},
		&DistributedQR{},
		&BlockSolver{BlockSize: 4, Sweeps: 25, Lambda: 1e-9},
		&LBFGS{Iterations: 120},
	}
	for _, est := range ests {
		lm, loss := fitLoss(t, est, data, labels)
		if loss > 1e-4 {
			t.Errorf("%s: train loss %g, want ~0 on consistent system", est.Name(), loss)
		}
		if !linalg.Equal(lm.W, xTrue, 1e-2) {
			t.Errorf("%s: recovered weights differ from planted solution (max err %g)",
				est.Name(), lm.W.Clone().Sub(xTrue).MaxAbs())
		}
	}
}

func TestSolversAgreeOnInconsistentSystem(t *testing.T) {
	// Noisy labels: all exact solvers must agree with each other and
	// satisfy the normal equations.
	rng := linalg.NewRNG(2)
	n, d, k := 80, 6, 2
	a := rng.GaussianMatrix(n, d)
	b := rng.GaussianMatrix(n, k)
	feats := make([]any, n)
	labs := make([]any, n)
	for i := 0; i < n; i++ {
		feats[i] = linalg.CloneVec(a.Row(i))
		labs[i] = linalg.CloneVec(b.Row(i))
	}
	data := engine.FromSlice(feats, 3)
	labels := engine.FromSlice(labs, 3)

	local, _ := fitLoss(t, &LocalQR{}, data, labels)
	dist, _ := fitLoss(t, &DistributedQR{}, data, labels)
	if !linalg.Equal(local.W, dist.W, 1e-6) {
		t.Errorf("local QR and distributed QR disagree by %g", local.W.Clone().Sub(dist.W).MaxAbs())
	}
	grad := a.TMul(a.Mul(local.W).Sub(b))
	if grad.MaxAbs() > 1e-7 {
		t.Errorf("LocalQR violates normal equations: %g", grad.MaxAbs())
	}
}

func TestDistributedQRShortPartitionsFallback(t *testing.T) {
	// Partitions shorter than d force the normal-equations path.
	data, labels, xTrue := makeDense(3, 40, 20, 2, 8) // 5 rows/partition < d=20
	lm, loss := fitLoss(t, &DistributedQR{}, data, labels)
	if loss > 1e-4 {
		t.Errorf("fallback path loss = %g", loss)
	}
	if !linalg.Equal(lm.W, xTrue, 1e-2) {
		t.Error("fallback path did not recover planted solution")
	}
}

func TestLBFGSSparse(t *testing.T) {
	data, labels := makeSparse(4, 200, 50, 2, 5, 4)
	_, loss := fitLoss(t, &LBFGS{Iterations: 150}, data, labels)
	if loss > 1e-3 {
		t.Errorf("sparse LBFGS loss = %g, want near zero", loss)
	}
}

func TestSparseSolversAgree(t *testing.T) {
	data, labels := makeSparse(5, 150, 30, 2, 4, 3)
	exact, _ := fitLoss(t, &LocalQR{}, data, labels)
	lbfgs, _ := fitLoss(t, &LBFGS{Iterations: 200}, data, labels)
	if !linalg.Equal(exact.W, lbfgs.W, 5e-2) {
		t.Errorf("sparse exact vs lbfgs max diff %g", exact.W.Clone().Sub(lbfgs.W).MaxAbs())
	}
}

func TestSGDReducesLoss(t *testing.T) {
	data, labels, _ := makeDense(6, 200, 8, 2, 4)
	_, loss := fitLoss(t, &SGD{Epochs: 30, StepSize: 0.05}, data, labels)
	// Initial loss with W=0 equals mean ||y||²/2; SGD must beat it clearly.
	var init float64
	for _, r := range labels.Collect() {
		for _, v := range r.([]float64) {
			init += 0.5 * v * v
		}
	}
	init /= float64(labels.Count())
	if loss > init/4 {
		t.Errorf("SGD loss %g did not improve enough over initial %g", loss, init)
	}
}

func TestLogisticLBFGSSeparatesClasses(t *testing.T) {
	// Two well-separated Gaussian blobs, one-hot labels.
	rng := linalg.NewRNG(7)
	n, d := 200, 5
	feats := make([]any, n)
	labs := make([]any, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		x := rng.GaussianVector(d)
		x[0] += float64(cls*6 - 3)
		feats[i] = x
		y := make([]float64, 2)
		y[cls] = 1
		labs[i] = y
	}
	data := engine.FromSlice(feats, 4)
	labels := engine.FromSlice(labs, 4)
	model := (&LBFGS{Iterations: 60, Objective: LogisticLoss}).Fit(engine.NewContext(4), fetchOf(data), fetchOf(labels))
	correct := 0
	for i, f := range data.Collect() {
		scores := model.Apply(f).([]float64)
		pred := linalg.ArgMax(scores)
		if pred == i%2 {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Errorf("logistic accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestLinearMapperScoring(t *testing.T) {
	w := linalg.NewMatrixFrom([][]float64{{1, 0}, {0, 2}, {3, 0}})
	m := &LinearMapper{W: w}
	got := m.Apply([]float64{1, 1, 1}).([]float64)
	if got[0] != 4 || got[1] != 2 {
		t.Errorf("dense scores = %v, want [4 2]", got)
	}
	sv := linalg.NewSparseVector(3, []int{2}, []float64{2})
	got = m.Apply(sv).([]float64)
	if got[0] != 6 || got[1] != 0 {
		t.Errorf("sparse scores = %v, want [6 0]", got)
	}
}

func TestLinearMapperDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	m := &LinearMapper{W: linalg.NewMatrix(3, 2)}
	m.Apply([]float64{1, 2})
}

func TestLinearSolverIsOptimizableAndIterative(t *testing.T) {
	var est core.EstimatorOp = &LinearSolver{}
	opt, ok := est.(core.Optimizable)
	if !ok {
		t.Fatal("LinearSolver must implement core.Optimizable")
	}
	if got := len(opt.Options()); got != 4 {
		t.Errorf("options = %d, want 4 (Table 1)", got)
	}
	it, ok := est.(core.Iterative)
	if !ok || it.Weight() < 2 {
		t.Error("LinearSolver must be Iterative with weight > 1")
	}
}

func TestCostModelSparseFavorsLBFGS(t *testing.T) {
	// Amazon-like: very sparse, many features → L-BFGS must win.
	res := cluster.R3_4XLarge(16)
	ls := &LinearSolver{MemLimitBytes: 8e9}
	stats := cost.DataStats{N: 1_000_000, Dim: 100_000, K: 2, Sparsity: 0.001}
	opts := ls.Options()
	idx := cost.Choose(opts, stats, res)
	if name := opts[idx].Model.Name(); name != "solver.lbfgs" {
		t.Errorf("sparse choice = %s, want solver.lbfgs", name)
	}
}

func TestCostModelDenseSmallFavorsExact(t *testing.T) {
	// TIMIT-like small d: exact solve must win.
	res := cluster.R3_4XLarge(16)
	ls := &LinearSolver{MemLimitBytes: 100e9}
	stats := cost.DataStats{N: 2_000_000, Dim: 1024, K: 147, Sparsity: 1}
	opts := ls.Options()
	idx := cost.Choose(opts, stats, res)
	name := opts[idx].Model.Name()
	if name != "solver.exact.dist-qr" && name != "solver.exact.local-qr" {
		t.Errorf("dense small-d choice = %s, want an exact solver", name)
	}
}

func TestCostModelDenseWideFavorsBlock(t *testing.T) {
	// TIMIT-like beyond 8k features: block solver must win.
	res := cluster.R3_4XLarge(16)
	ls := &LinearSolver{MemLimitBytes: 100e9}
	stats := cost.DataStats{N: 2_000_000, Dim: 16384, K: 147, Sparsity: 1}
	opts := ls.Options()
	idx := cost.Choose(opts, stats, res)
	if name := opts[idx].Model.Name(); name != "solver.block" {
		t.Errorf("dense wide choice = %s, want solver.block", name)
	}
}

func TestCostModelExactInfeasibleWhenTooLarge(t *testing.T) {
	c := localQRCost{memLimitBytes: 1e9}
	p := c.Cost(cost.DataStats{N: 10_000_000, Dim: 100_000, K: 2, Sparsity: 1}, 16)
	if p.Flops >= 0 {
		t.Error("oversized dense problem should be infeasible for local QR")
	}
}

func TestSolverCostSecondsMonotonicInNodes(t *testing.T) {
	// More workers must not increase distributed solver estimates.
	stats := cost.DataStats{N: 1_000_000, Dim: 4096, K: 10, Sparsity: 1}
	c := lbfgsCost{iters: 50}
	t8 := c.Cost(stats, 8).Seconds(cluster.R3_4XLarge(8))
	t64 := c.Cost(stats, 64).Seconds(cluster.R3_4XLarge(64))
	if t64 >= t8 {
		t.Errorf("lbfgs estimate did not improve with nodes: %g -> %g", t8, t64)
	}
}

func TestSquaredLossZeroForPerfectModel(t *testing.T) {
	data, labels, xTrue := makeDense(8, 30, 4, 2, 2)
	pairs := pairPartitions(data, labels)
	if l := squaredLoss(pairs, xTrue); l > 1e-18 {
		t.Errorf("perfect model loss = %g", l)
	}
	zero := linalg.NewMatrix(4, 2)
	if l := squaredLoss(pairs, zero); l <= 0 {
		t.Errorf("zero model loss = %g, want > 0", l)
	}
}

func TestPairPartitionsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a := engine.FromSlice([]any{[]float64{1}}, 1)
	b := engine.FromSlice([]any{[]float64{1}, []float64{2}}, 2)
	pairPartitions(a, b)
}

func TestLossString(t *testing.T) {
	if SquareLoss.String() != "square" || LogisticLoss.String() != "logistic" {
		t.Error("Loss.String wrong")
	}
	if math.Abs(float64(SquareLoss)) != 0 {
		t.Error("SquareLoss must be the zero value")
	}
}
