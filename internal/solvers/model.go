// Package solvers implements the KeystoneML linear solver family from
// Table 1 of the paper — local exact QR, communication-avoiding
// distributed QR (TSQR), block coordinate descent (Gauss-Seidel), L-BFGS
// (dense and sparse), and minibatch SGD — together with the per-solver
// cost models the operator-level optimizer chooses between. All solvers
// minimize ||AX - B||_F (plus an optional ridge term) for features A
// (n x d) and label matrix B (n x k), and produce a LinearMapper
// transformer.
package solvers

import (
	"fmt"

	"keystoneml/internal/linalg"
)

// LinearMapper is the fitted model produced by every linear solver: a
// d x k weight matrix applied to dense or sparse feature records,
// yielding k per-class scores.
type LinearMapper struct {
	// W is the weight matrix, stored d x k row-major so that the
	// per-feature rows stream well for sparse inputs.
	W *linalg.Matrix
	// TrainLoss is the final squared-loss objective on the training data,
	// recorded for the convergence comparisons in Figure 8.
	TrainLoss float64
	// SolverName records which physical solver produced the model.
	SolverName string
}

// Name implements core.TransformOp.
func (m *LinearMapper) Name() string { return "model.linear[" + m.SolverName + "]" }

// Apply scores one record: a []float64 or *linalg.SparseVector of
// dimension d yields a []float64 of k scores.
func (m *LinearMapper) Apply(in any) any {
	switch x := in.(type) {
	case []float64:
		return m.scoreDense(x)
	case *linalg.SparseVector:
		return m.scoreSparse(x)
	default:
		panic(fmt.Sprintf("solvers: LinearMapper cannot score %T", in))
	}
}

func (m *LinearMapper) scoreDense(x []float64) []float64 {
	d, k := m.W.Rows, m.W.Cols
	if len(x) != d {
		panic(fmt.Sprintf("solvers: record has %d features, model expects %d", len(x), d))
	}
	out := make([]float64, k)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.W.Row(i)
		for j, w := range row {
			out[j] += xi * w
		}
	}
	return out
}

func (m *LinearMapper) scoreSparse(x *linalg.SparseVector) []float64 {
	d, k := m.W.Rows, m.W.Cols
	if x.Dim != d {
		panic(fmt.Sprintf("solvers: record has %d features, model expects %d", x.Dim, d))
	}
	out := make([]float64, k)
	for p, i := range x.Idx {
		xi := x.Val[p]
		row := m.W.Row(i)
		for j, w := range row {
			out[j] += xi * w
		}
	}
	return out
}
