package solvers

import (
	"math"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// SGD is a minibatch stochastic gradient descent solver. KeystoneML's
// optimizer never picks it for the Table 1 problems (full-batch methods
// dominate at this scale), but it is the fixed strategy the Vowpal
// Wabbit and TensorFlow comparator systems use, so it lives here as a
// first-class physical operator.
type SGD struct {
	Epochs    int     // passes over the data; default 10
	BatchSize int     // records per update; default 128
	StepSize  float64 // initial learning rate; default 0.1 with 1/sqrt(t) decay
	Lambda    float64
	Objective Loss
	// Normalized scales each record's gradient contribution by
	// 1/(1+||x||²) (normalized least-mean-squares), the style of update
	// Vowpal Wabbit uses to stay stable on unscaled dense features.
	Normalized bool
}

// Name implements core.EstimatorOp.
func (s *SGD) Name() string { return "solver.sgd" }

// Weight implements core.Iterative.
func (s *SGD) Weight() int { return s.epochs() }

func (s *SGD) epochs() int {
	if s.Epochs > 0 {
		return s.Epochs
	}
	return 10
}

func (s *SGD) batch() int {
	if s.BatchSize > 0 {
		return s.BatchSize
	}
	return 128
}

func (s *SGD) step(t int) float64 {
	base := s.StepSize
	if base <= 0 {
		base = 0.1
	}
	return base / math.Sqrt(1+float64(t)/100)
}

// Fit implements core.EstimatorOp.
func (s *SGD) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	lab := labels()
	// One fetch per epoch, none for bookkeeping: dimensions come from
	// the first epoch's fetch and the final loss reuses the last one
	// (each fetch is a full upstream recompute locally and a cluster
	// shuffle under keystone/dist), so the fetch count equals Weight().
	var d, k int
	var w []float64
	var wm linalg.Matrix
	var pairs []partPair
	t := 0
	for epoch := 0; epoch < s.epochs(); epoch++ {
		pairs = pairPartitions(data(), lab)
		if epoch == 0 {
			_, d, k = dims(pairs)
			w = make([]float64, d*k)
			wm = linalg.Matrix{Rows: d, Cols: k, Data: w}
		}
		pred := make([]float64, k)
		gBatch := make([]float64, d*k)
		inBatch := 0
		flush := func() {
			if inBatch == 0 {
				return
			}
			lr := s.step(t) / float64(inBatch)
			for i, g := range gBatch {
				w[i] -= lr * (g + s.Lambda*w[i]*float64(inBatch))
				gBatch[i] = 0
			}
			inBatch = 0
			t++
		}
		for pi := range pairs {
			p := &pairs[pi]
			rows := p.rows()
			for r := 0; r < rows; r++ {
				scoreRow(p, r, &wm, pred)
				y := p.labels.Row(r)
				if s.Objective == LogisticLoss {
					softmaxResidual(pred, y)
				} else {
					for j := 0; j < k; j++ {
						pred[j] -= y[j]
					}
				}
				if s.Normalized {
					norm2 := rowNorm2(p, r)
					scale := 1 / (1 + norm2)
					for j := 0; j < k; j++ {
						pred[j] *= scale
					}
				}
				if p.dense != nil {
					x := p.dense.Row(r)
					for i, xi := range x {
						if xi == 0 {
							continue
						}
						base := i * k
						for j := 0; j < k; j++ {
							gBatch[base+j] += xi * pred[j]
						}
					}
				} else {
					sv := p.sparse[r]
					for pos, i := range sv.Idx {
						xi := sv.Val[pos]
						base := i * k
						for j := 0; j < k; j++ {
							gBatch[base+j] += xi * pred[j]
						}
					}
				}
				inBatch++
				if inBatch >= s.batch() {
					flush()
				}
			}
		}
		flush()
	}
	model := &linalg.Matrix{Rows: d, Cols: k, Data: w}
	return &LinearMapper{W: model, TrainLoss: squaredLoss(pairs, model), SolverName: s.Name()}
}

// rowNorm2 returns ||x||² of record r in partition p.
func rowNorm2(p *partPair, r int) float64 {
	var s float64
	if p.dense != nil {
		for _, v := range p.dense.Row(r) {
			s += v * v
		}
		return s
	}
	for _, v := range p.sparse[r].Val {
		s += v * v
	}
	return s
}
