package solvers

import (
	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
)

// Cost-model constants. Table 1 omits constants "for readability but they
// are necessary in practice" — these are the practical constants: they
// encode that L-BFGS needs ~3 FLOPs per nonzero per class per pass
// (score, residual, scatter), that the block solver does BLAS-3 work, and
// the iteration counts each method needs to converge on least squares.
const (
	lbfgsFlopsPerNNZ = 3.0 // score + residual + gradient scatter per nnz per class
	blockFlopsFactor = 2.0 // block Gram + cross term + incremental residual update
	exactFlopsFactor = 2.0 // Householder QR multiply-adds
	// localQREfficiency penalizes the driver-side Householder QR: its
	// column-strided reflector updates run far from peak on row-major
	// storage, unlike the partition-local Gram/TSQR path.
	localQREfficiency = 4.0
	bytesPerFloat     = 8.0
	defaultLBFGSIters = 50
	defaultSweeps     = 3
	defaultBlockSize  = 2048
)

// localQRCost models LocalQR per Table 1: compute O(nd(d+k)) on the
// driver (no division by w), network O(n(d+k)) to collect the data,
// memory O(d(n+k)). Infeasible when the densified dataset exceeds the
// driver's memory.
type localQRCost struct {
	memLimitBytes float64
}

func (c localQRCost) Name() string { return "solver.exact.local-qr" }

func (c localQRCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	denseBytes := n * d * bytesPerFloat
	if c.memLimitBytes > 0 && denseBytes > c.memLimitBytes {
		return cost.Profile{Flops: -1} // cannot fit on the driver
	}
	return cost.Profile{
		Flops:   localQREfficiency * exactFlopsFactor * n * d * (d + k),
		Bytes:   denseBytes,
		Network: n * (d + k) * bytesPerFloat,
		Stages:  1, // one collect
	}
}

// distQRCost models DistributedQR per Table 1: compute O(nd(d+k)/w),
// network O(d(d+k)) for the R-factor tree reduction, memory O(nd/w + d²).
// Sparse inputs must be densified partition by partition, so the flops do
// not shrink with sparsity; infeasible when a partition's densified slice
// plus the d² factor exceed node memory.
type distQRCost struct {
	memLimitBytes float64
}

func (c distQRCost) Name() string { return "solver.exact.dist-qr" }

func (c distQRCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	w := float64(max(workers, 1))
	perNode := n*d*bytesPerFloat/w + d*d*bytesPerFloat
	if c.memLimitBytes > 0 && perNode > c.memLimitBytes {
		return cost.Profile{Flops: -1}
	}
	return cost.Profile{
		Flops:   exactFlopsFactor * n * d * (d + k) / w,
		Bytes:   perNode,
		Network: d * (d + k) * bytesPerFloat,
		Stages:  1, // single tree-reduction pass
	}
}

// lbfgsCost models LBFGS per Table 1: compute O(i·n·s·k/w) where s is the
// average nonzeros per record (= d when dense), network O(i·d·k) for the
// gradient aggregation.
type lbfgsCost struct {
	iters int
}

func (c lbfgsCost) Name() string { return "solver.lbfgs" }

func (c lbfgsCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	w := float64(max(workers, 1))
	i := float64(c.iters)
	s := st.AvgNNZ()
	return cost.Profile{
		Flops:   i * lbfgsFlopsPerNNZ * n * s * k / w,
		Bytes:   n*s*bytesPerFloat/w + d*k*bytesPerFloat,
		Network: i * d * k * bytesPerFloat,
		Stages:  i, // one gradient aggregation per iteration
	}
}

// blockCost models BlockSolver per Table 1: compute O(i·n·d·(b+k)/w),
// network O(i·d·(b+k)), memory O(nb/w + dk). The solver densifies, so on
// sparse inputs the flops stay proportional to d, not s — the 26-260x
// slowdown of Figure 6's Amazon panel.
type blockCost struct {
	sweeps, blockSize int
}

func (c blockCost) Name() string { return "solver.block" }

func (c blockCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	w := float64(max(workers, 1))
	i := float64(c.sweeps)
	b := float64(min(c.blockSize, int(st.Dim)))
	return cost.Profile{
		Flops:   blockFlopsFactor * i * n * d * (b + k) / w,
		Bytes:   n*b*bytesPerFloat/w + d*k*bytesPerFloat,
		Network: i * d * (b + k) * bytesPerFloat,
		Stages:  i * (d/b + 1), // one aggregation per block per sweep
	}
}

// LinearSolver is the logical least-squares operator (the paper's
// LinearSolver Estimator). It is Optimizable: the operator-level
// optimizer evaluates the four Table 1 physical implementations against
// sampled input statistics and the cluster descriptor and swaps in the
// winner. When executed without optimization it defaults to L-BFGS (the
// one-size-fits-all strategy the unoptimized baselines use).
type LinearSolver struct {
	// Iterations bounds the gradient methods' pass count (default 50).
	Iterations int
	// Lambda is the ridge term shared by all implementations.
	Lambda float64
	// MemLimitBytes marks exact solvers infeasible beyond this footprint;
	// zero means unlimited.
	MemLimitBytes float64
}

// Name implements core.EstimatorOp.
func (s *LinearSolver) Name() string { return "solver.linear[logical]" }

// Weight implements core.Iterative, advertising the default
// implementation's pass count for materialization planning.
func (s *LinearSolver) Weight() int { return s.iters() }

func (s *LinearSolver) iters() int {
	if s.Iterations > 0 {
		return s.Iterations
	}
	return defaultLBFGSIters
}

// Fit implements core.EstimatorOp by delegating to the default physical
// implementation (L-BFGS).
func (s *LinearSolver) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	return (&LBFGS{Iterations: s.iters(), Lambda: s.Lambda}).Fit(ctx, data, labels)
}

// Options implements core.Optimizable, listing the Table 1 physical
// solvers with their cost models.
func (s *LinearSolver) Options() []cost.Option {
	return []cost.Option{
		{
			Model:    localQRCost{memLimitBytes: s.MemLimitBytes},
			Operator: &LocalQR{Lambda: s.Lambda},
		},
		{
			Model:    distQRCost{memLimitBytes: s.MemLimitBytes},
			Operator: &DistributedQR{Lambda: s.Lambda},
		},
		{
			Model:    lbfgsCost{iters: s.iters()},
			Operator: &LBFGS{Iterations: s.iters(), Lambda: s.Lambda},
		},
		{
			Model:    blockCost{sweeps: defaultSweeps, blockSize: defaultBlockSize},
			Operator: &BlockSolver{Sweeps: defaultSweeps, BlockSize: defaultBlockSize, Lambda: s.Lambda},
		},
	}
}

// NewLinearSolverEst wraps the logical solver as a typed supervised
// estimator over dense feature vectors.
func NewLinearSolverEst(iters int, lambda, memLimit float64) core.LabeledEst[[]float64, []float64] {
	return core.NewLabeledEst[[]float64, []float64](&LinearSolver{Iterations: iters, Lambda: lambda, MemLimitBytes: memLimit})
}

// NewSparseLinearSolverEst wraps the logical solver for sparse features.
func NewSparseLinearSolverEst(iters int, lambda, memLimit float64) core.LabeledEst[any, []float64] {
	return core.NewLabeledEst[any, []float64](&LinearSolver{Iterations: iters, Lambda: lambda, MemLimitBytes: memLimit})
}

// LogisticRegression is the logical multinomial logistic operator used by
// the text-classification pipeline. Physical implementations: L-BFGS on
// the logistic objective (default) or minibatch SGD.
type LogisticRegression struct {
	Iterations int
	Lambda     float64
}

// Name implements core.EstimatorOp.
func (s *LogisticRegression) Name() string { return "solver.logistic[logical]" }

// Weight implements core.Iterative.
func (s *LogisticRegression) Weight() int { return s.iters() }

func (s *LogisticRegression) iters() int {
	if s.Iterations > 0 {
		return s.Iterations
	}
	return defaultLBFGSIters
}

// Fit implements core.EstimatorOp.
func (s *LogisticRegression) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	return (&LBFGS{Iterations: s.iters(), Lambda: s.Lambda, Objective: LogisticLoss}).Fit(ctx, data, labels)
}

// Options implements core.Optimizable.
func (s *LogisticRegression) Options() []cost.Option {
	return []cost.Option{
		{
			Model:    lbfgsCost{iters: s.iters()},
			Operator: &LBFGS{Iterations: s.iters(), Lambda: s.Lambda, Objective: LogisticLoss},
		},
		{
			Model:    sgdCost{epochs: 2 * s.iters()},
			Operator: &SGD{Epochs: 2 * s.iters(), Lambda: s.Lambda, Objective: LogisticLoss},
		},
	}
}

// sgdCost models minibatch SGD: the per-pass cost matches L-BFGS but
// convergence needs more passes, and every batch forces a model
// synchronization, so network grows with n/batch rather than iterations.
type sgdCost struct {
	epochs int
}

func (c sgdCost) Name() string { return "solver.sgd" }

func (c sgdCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n, d, k := float64(st.N), float64(st.Dim), float64(st.K)
	w := float64(max(workers, 1))
	i := float64(c.epochs)
	s := st.AvgNNZ()
	const batch = 128
	return cost.Profile{
		Flops:   i * lbfgsFlopsPerNNZ * n * s * k / w,
		Bytes:   n * s * bytesPerFloat / w,
		Network: i * (n / batch) * d * k * bytesPerFloat / w,
		Stages:  i * n / batch, // model sync per minibatch
	}
}
