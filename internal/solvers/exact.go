package solvers

import (
	"math"
	"sync"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// LocalQR is the exact solver run on a single node: all featurized data is
// collected to the driver (network cost O(n(d+k))) and solved with a thin
// Householder QR (compute O(nd(d+k))). It returns solutions to extremely
// high precision but becomes infeasible once n x d no longer fits in
// driver memory — the failure mode Figure 6 shows for the Amazon pipeline
// beyond 4k features.
type LocalQR struct {
	// Lambda is an optional ridge term; zero solves plain least squares.
	Lambda float64
}

// Name implements core.EstimatorOp.
func (s *LocalQR) Name() string { return "solver.exact.local-qr" }

// Fit implements core.EstimatorOp.
func (s *LocalQR) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	pairs := pairPartitions(data(), labels())
	n, d, k := dims(pairs)
	_ = k
	// Densify and stack everything on the "driver".
	mats := make([]*linalg.Matrix, 0, len(pairs))
	labs := make([]*linalg.Matrix, 0, len(pairs))
	for i := range pairs {
		p := &pairs[i]
		if p.rows() == 0 {
			continue
		}
		if p.dense != nil {
			mats = append(mats, p.dense)
		} else {
			mats = append(mats, linalg.NewSparseMatrixFromRows(p.sparse).Dense())
		}
		labs = append(labs, p.labels)
	}
	a := linalg.VStack(mats...)
	b := linalg.VStack(labs...)
	var w *linalg.Matrix
	if s.Lambda > 0 {
		// Ridge via augmented system [A; sqrt(λ)I] X = [B; 0].
		aug := linalg.VStack(a, linalg.Identity(d).Scale(math.Sqrt(s.Lambda)))
		baug := linalg.VStack(b, linalg.NewMatrix(d, b.Cols))
		w = linalg.LeastSquaresQR(aug, baug)
	} else if n >= d {
		w = linalg.LeastSquaresQR(a, b)
	} else {
		// Underdetermined: fall back to regularized normal equations.
		g := a.TMul(a)
		for i := 0; i < d; i++ {
			g.Set(i, i, g.At(i, i)+1e-8)
		}
		w = linalg.CholeskySolve(g, a.TMul(b))
	}
	return &LinearMapper{W: w, TrainLoss: squaredLoss(pairs, w), SolverName: s.Name()}
}

// DistributedQR is the communication-avoiding exact solver: each partition
// is reduced to a small R factor via local QR and the factors are combined
// in a tree (TSQR, Demmel et al.), giving per-node compute O(nd(d+k)/w)
// and network traffic O(d(d+k)) independent of n. When partitions are too
// short for TSQR (fewer than d rows) it falls back to distributed normal
// equations with the same communication pattern.
type DistributedQR struct {
	Lambda float64
}

// Name implements core.EstimatorOp.
func (s *DistributedQR) Name() string { return "solver.exact.dist-qr" }

// Fit implements core.EstimatorOp.
func (s *DistributedQR) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	pairs := pairPartitions(data(), labels())
	n, d, k := dims(pairs)
	_ = n
	tall := true
	for i := range pairs {
		if pairs[i].rows() > 0 && pairs[i].rows() < d {
			tall = false
			break
		}
	}
	var w *linalg.Matrix
	if tall && s.Lambda == 0 {
		w = s.tsqr(ctx, pairs, d, k)
	} else {
		w = s.normalEquations(ctx, pairs, d, k)
	}
	return &LinearMapper{W: w, TrainLoss: squaredLoss(pairs, w), SolverName: s.Name()}
}

// tsqr runs local QR per partition in parallel, then tree-combines the
// (R, QᵀB) pairs until one remains.
func (s *DistributedQR) tsqr(ctx *engine.Context, pairs []partPair, d, k int) *linalg.Matrix {
	type factor struct {
		r *linalg.Matrix // d x d
		c *linalg.Matrix // d x k (Qᵀ B)
	}
	var mu sync.Mutex
	var factors []factor
	var wg sync.WaitGroup
	sem := make(chan struct{}, ctx.Parallelism)
	for i := range pairs {
		p := &pairs[i]
		if p.rows() == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(p *partPair) {
			defer wg.Done()
			defer func() { <-sem }()
			a := p.dense
			if a == nil {
				a = linalg.NewSparseMatrixFromRows(p.sparse).Dense()
			}
			f := linalg.QR(a)
			c := f.Q.TMul(p.labels)
			mu.Lock()
			factors = append(factors, factor{r: f.R, c: c})
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	// Tree reduction: QR of stacked [R1; R2].
	for len(factors) > 1 {
		next := make([]factor, 0, (len(factors)+1)/2)
		for i := 0; i < len(factors); i += 2 {
			if i+1 == len(factors) {
				next = append(next, factors[i])
				continue
			}
			stackedR := linalg.VStack(factors[i].r, factors[i+1].r)
			stackedC := linalg.VStack(factors[i].c, factors[i+1].c)
			f := linalg.QR(stackedR)
			next = append(next, factor{r: f.R, c: f.Q.TMul(stackedC)})
		}
		factors = next
	}
	if len(factors) == 0 {
		return linalg.NewMatrix(d, k)
	}
	return linalg.SolveUpperTriangularMatrix(factors[0].r, factors[0].c)
}

// normalEquations aggregates G = AᵀA and C = AᵀB across partitions (in
// parallel) and solves (G + λI) W = C with Cholesky on the driver.
func (s *DistributedQR) normalEquations(ctx *engine.Context, pairs []partPair, d, k int) *linalg.Matrix {
	grams := make([]*linalg.Matrix, len(pairs))
	cross := make([]*linalg.Matrix, len(pairs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, ctx.Parallelism)
	for i := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p := &pairs[i]
			if p.rows() == 0 {
				grams[i] = linalg.NewMatrix(d, d)
				cross[i] = linalg.NewMatrix(d, k)
				return
			}
			if p.dense != nil {
				grams[i] = p.dense.TMul(p.dense)
				cross[i] = p.dense.TMul(p.labels)
				return
			}
			g := linalg.NewMatrix(d, d)
			c := linalg.NewMatrix(d, k)
			for r, sv := range p.sparse {
				y := p.labels.Row(r)
				for pi, ii := range sv.Idx {
					vi := sv.Val[pi]
					gRow := g.Row(ii)
					for pj, jj := range sv.Idx {
						gRow[jj] += vi * sv.Val[pj]
					}
					cRow := c.Row(ii)
					for j := 0; j < k; j++ {
						cRow[j] += vi * y[j]
					}
				}
			}
			grams[i] = g
			cross[i] = c
		}(i)
	}
	wg.Wait()
	g := linalg.NewMatrix(d, d)
	c := linalg.NewMatrix(d, k)
	for i := range pairs {
		g.Add(grams[i])
		c.Add(cross[i])
	}
	lam := s.Lambda
	if lam <= 0 {
		lam = 1e-8 // minimal regularization for numerical safety
	}
	for i := 0; i < d; i++ {
		g.Set(i, i, g.At(i, i)+lam)
	}
	return linalg.CholeskySolve(g, c)
}
