package solvers

import (
	"math"
	"sync"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// Loss selects the objective the gradient solvers minimize.
type Loss int

const (
	// SquareLoss is 1/2n ||AX - B||_F^2 — the objective all Table 1
	// solvers share.
	SquareLoss Loss = iota
	// LogisticLoss is the multinomial logistic objective over one-hot
	// labels; used by the text-classification pipeline's
	// LogisticRegression operator.
	LogisticLoss
)

// String implements fmt.Stringer.
func (l Loss) String() string {
	if l == LogisticLoss {
		return "logistic"
	}
	return "square"
}

// LBFGS is the limited-memory BFGS gradient solver. Each iteration makes
// one pass over the (possibly recomputed) input — this is the iterative
// access pattern the materialization optimizer exists for, so Fit fetches
// its input once per iteration rather than holding the first
// materialization. Sparse inputs compute gradients in O(nnz·k) per pass,
// the property that makes L-BFGS dominate on text workloads (Figure 6).
type LBFGS struct {
	Iterations int     // number of passes; default 50
	History    int     // L-BFGS memory; default 10
	Lambda     float64 // ridge regularization
	Objective  Loss
}

// Name implements core.EstimatorOp.
func (s *LBFGS) Name() string {
	if s.Objective == LogisticLoss {
		return "solver.logistic.lbfgs"
	}
	return "solver.lbfgs"
}

// Weight implements core.Iterative: one pass over the input per iteration.
func (s *LBFGS) Weight() int { return s.iters() }

func (s *LBFGS) iters() int {
	if s.Iterations > 0 {
		return s.Iterations
	}
	return 50
}

func (s *LBFGS) history() int {
	if s.History > 0 {
		return s.History
	}
	return 10
}

// Fit implements core.EstimatorOp.
func (s *LBFGS) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	lab := labels() // labels are small; hold them across passes
	// One fetch per iteration and no extras: dimensions come from the
	// first pass and the final loss reuses the last pass (a fetch is a
	// cluster shuffle under keystone/dist), so the fetch count is exactly
	// the Weight() the cost model charges.
	var d, k, dim int
	var w []float64
	var pairs []partPair
	var sHist, yHist [][]float64
	var prevW, prevG []float64

	for it := 0; it < s.iters(); it++ {
		pairs = pairPartitions(data(), lab) // one pass: refetch input
		if it == 0 {
			_, d, k = dims(pairs)
			dim = d * k
			w = make([]float64, dim)
		}
		g, _ := s.gradient(ctx, pairs, w, d, k)
		gnorm := linalg.Norm2(g)
		if gnorm < 1e-10 {
			break
		}
		if prevW != nil {
			sv := make([]float64, dim)
			yv := make([]float64, dim)
			for i := range sv {
				sv[i] = w[i] - prevW[i]
				yv[i] = g[i] - prevG[i]
			}
			if linalg.Dot(sv, yv) > 1e-12 {
				sHist = append(sHist, sv)
				yHist = append(yHist, yv)
				if len(sHist) > s.history() {
					sHist = sHist[1:]
					yHist = yHist[1:]
				}
			}
		}
		dir := twoLoop(g, sHist, yHist)
		step := 1.0
		if len(sHist) == 0 {
			// First iteration: scale so the initial step is modest.
			step = 1.0 / (1.0 + gnorm)
		}
		prevW = linalg.CloneVec(w)
		prevG = g
		// w -= step*dir; (-step)*d is the exact negation of step*d, so
		// this matches the elementwise subtraction bit for bit.
		linalg.AxpyInPlace(-step, dir, w)
	}
	wm := &linalg.Matrix{Rows: d, Cols: k, Data: w}
	return &LinearMapper{W: wm, TrainLoss: squaredLoss(pairs, wm), SolverName: s.Name()}
}

// twoLoop is the standard L-BFGS two-loop recursion producing the search
// direction H·g, with the Nocedal γ = sᵀy/yᵀy initial Hessian scaling.
func twoLoop(g []float64, sHist, yHist [][]float64) []float64 {
	q := linalg.CloneVec(g)
	m := len(sHist)
	alpha := make([]float64, m)
	rho := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		rho[i] = 1.0 / linalg.Dot(yHist[i], sHist[i])
		alpha[i] = rho[i] * linalg.Dot(sHist[i], q)
		linalg.AxpyInPlace(-alpha[i], yHist[i], q)
	}
	if m > 0 {
		gamma := linalg.Dot(sHist[m-1], yHist[m-1]) / linalg.Dot(yHist[m-1], yHist[m-1])
		linalg.ScaleInPlace(gamma, q)
	}
	for i := 0; i < m; i++ {
		beta := rho[i] * linalg.Dot(yHist[i], q)
		linalg.AxpyInPlace(alpha[i]-beta, sHist[i], q)
	}
	return q
}

// gradient computes the full-batch gradient (flattened d x k) and loss in
// parallel across partitions, then tree-combines — the treeAggregate
// pattern whose network cost is the O(i·d·k) term in Table 1.
func (s *LBFGS) gradient(ctx *engine.Context, pairs []partPair, w []float64, d, k int) ([]float64, float64) {
	type partial struct {
		g    []float64
		loss float64
		n    int
	}
	partials := make([]partial, len(pairs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, ctx.Parallelism)
	for pi := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(pi int) {
			defer wg.Done()
			defer func() { <-sem }()
			p := &pairs[pi]
			g := make([]float64, d*k)
			var loss float64
			pred := make([]float64, k)
			wm := linalg.Matrix{Rows: d, Cols: k, Data: w}
			rows := p.rows()
			for r := 0; r < rows; r++ {
				scoreRow(p, r, &wm, pred)
				y := p.labels.Row(r)
				// residual in-place in pred
				switch s.Objective {
				case LogisticLoss:
					loss += softmaxResidual(pred, y)
				default:
					for j := 0; j < k; j++ {
						pred[j] -= y[j]
						loss += 0.5 * pred[j] * pred[j]
					}
				}
				// g += x ⊗ residual, one backend axpy per nonzero feature
				if p.dense != nil {
					x := p.dense.Row(r)
					for i, xi := range x {
						if xi == 0 {
							continue
						}
						base := i * k
						linalg.AxpyInPlace(xi, pred, g[base:base+k])
					}
				} else {
					sv := p.sparse[r]
					for pos, i := range sv.Idx {
						base := i * k
						linalg.AxpyInPlace(sv.Val[pos], pred, g[base:base+k])
					}
				}
			}
			partials[pi] = partial{g: g, loss: loss, n: rows}
		}(pi)
	}
	wg.Wait()
	total := partial{g: make([]float64, d*k)}
	for _, p := range partials {
		if p.g != nil {
			linalg.AxpyInPlace(1, p.g, total.g)
		}
		total.loss += p.loss
		total.n += p.n
	}
	n := float64(total.n)
	if n == 0 {
		n = 1
	}
	inv := 1.0 / n
	for i := range total.g {
		total.g[i] = total.g[i]*inv + s.Lambda*w[i]
	}
	return total.g, total.loss * inv
}

// softmaxResidual converts raw scores to softmax probabilities minus the
// one-hot label in place, returning the cross-entropy loss contribution.
func softmaxResidual(scores, y []float64) float64 {
	maxS := scores[0]
	for _, v := range scores[1:] {
		if v > maxS {
			maxS = v
		}
	}
	var z float64
	for j, v := range scores {
		e := math.Exp(v - maxS)
		scores[j] = e
		z += e
	}
	var loss float64
	for j := range scores {
		p := scores[j] / z
		if y[j] > 0 && p > 1e-15 {
			loss -= y[j] * math.Log(p)
		}
		scores[j] = p - y[j]
	}
	return loss
}
