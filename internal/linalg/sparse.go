package linalg

import (
	"fmt"
	"sort"
)

// SparseVector is a sparse vector in coordinate form with strictly
// increasing indices. Dim is the logical dimensionality; Idx/Val hold the
// non-zero entries.
type SparseVector struct {
	Dim int
	Idx []int
	Val []float64
}

// NewSparseVector builds a sparse vector from parallel index/value slices,
// sorting and merging duplicate indices (values are summed). Zero-valued
// entries after merging are dropped.
func NewSparseVector(dim int, idx []int, val []float64) *SparseVector {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("linalg: sparse vector idx/val length mismatch %d vs %d", len(idx), len(val)))
	}
	type pair struct {
		i int
		v float64
	}
	pairs := make([]pair, len(idx))
	for i := range idx {
		if idx[i] < 0 || idx[i] >= dim {
			panic(fmt.Sprintf("linalg: sparse index %d out of range [0,%d)", idx[i], dim))
		}
		pairs[i] = pair{idx[i], val[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	sv := &SparseVector{Dim: dim}
	for _, p := range pairs {
		if n := len(sv.Idx); n > 0 && sv.Idx[n-1] == p.i {
			sv.Val[n-1] += p.v
		} else {
			sv.Idx = append(sv.Idx, p.i)
			sv.Val = append(sv.Val, p.v)
		}
	}
	// Drop entries that cancelled to exactly zero.
	w := 0
	for r := range sv.Idx {
		if sv.Val[r] != 0 {
			sv.Idx[w], sv.Val[w] = sv.Idx[r], sv.Val[r]
			w++
		}
	}
	sv.Idx, sv.Val = sv.Idx[:w], sv.Val[:w]
	return sv
}

// NNZ returns the number of stored non-zero entries.
func (s *SparseVector) NNZ() int { return len(s.Idx) }

// At returns the value at logical index i (0 if not stored).
func (s *SparseVector) At(i int) float64 {
	p := sort.SearchInts(s.Idx, i)
	if p < len(s.Idx) && s.Idx[p] == i {
		return s.Val[p]
	}
	return 0
}

// Dense expands the vector to a dense slice of length Dim.
func (s *SparseVector) Dense() []float64 {
	out := make([]float64, s.Dim)
	for p, i := range s.Idx {
		out[i] = s.Val[p]
	}
	return out
}

// DotDense returns the inner product with a dense vector of length Dim.
func (s *SparseVector) DotDense(d []float64) float64 {
	if len(d) != s.Dim {
		panic(fmt.Sprintf("linalg: sparse-dense dot dim mismatch %d vs %d", s.Dim, len(d)))
	}
	var sum float64
	for p, i := range s.Idx {
		sum += s.Val[p] * d[i]
	}
	return sum
}

// AddScaledTo accumulates alpha * s into the dense vector d in place.
func (s *SparseVector) AddScaledTo(alpha float64, d []float64) {
	if len(d) != s.Dim {
		panic(fmt.Sprintf("linalg: sparse axpy dim mismatch %d vs %d", s.Dim, len(d)))
	}
	for p, i := range s.Idx {
		d[i] += alpha * s.Val[p]
	}
}

// Scale multiplies all stored values by alpha in place and returns s.
func (s *SparseVector) Scale(alpha float64) *SparseVector {
	for i := range s.Val {
		s.Val[i] *= alpha
	}
	return s
}

// Clone returns a deep copy.
func (s *SparseVector) Clone() *SparseVector {
	c := &SparseVector{Dim: s.Dim, Idx: make([]int, len(s.Idx)), Val: make([]float64, len(s.Val))}
	copy(c.Idx, s.Idx)
	copy(c.Val, s.Val)
	return c
}

// SparseMatrix is a CSR (compressed sparse row) matrix. RowPtr has length
// Rows+1; the non-zeros of row i are ColIdx/Val[RowPtr[i]:RowPtr[i+1]].
type SparseMatrix struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewSparseMatrixFromRows builds a CSR matrix from per-row sparse vectors.
// All rows must share a dimensionality, which becomes Cols.
func NewSparseMatrixFromRows(rows []*SparseVector) *SparseMatrix {
	m := &SparseMatrix{Rows: len(rows), RowPtr: make([]int, len(rows)+1)}
	if len(rows) > 0 {
		m.Cols = rows[0].Dim
	}
	nnz := 0
	for _, r := range rows {
		if r.Dim != m.Cols {
			panic(fmt.Sprintf("linalg: sparse matrix row dim mismatch %d vs %d", r.Dim, m.Cols))
		}
		nnz += r.NNZ()
	}
	m.ColIdx = make([]int, 0, nnz)
	m.Val = make([]float64, 0, nnz)
	for i, r := range rows {
		m.RowPtr[i] = len(m.ColIdx)
		m.ColIdx = append(m.ColIdx, r.Idx...)
		m.Val = append(m.Val, r.Val...)
		_ = i
	}
	m.RowPtr[len(rows)] = len(m.ColIdx)
	return m
}

// NNZ returns the total number of stored non-zeros.
func (m *SparseMatrix) NNZ() int { return len(m.Val) }

// Density returns NNZ / (Rows*Cols), or 0 for an empty matrix.
func (m *SparseMatrix) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// RowView returns the sparse row i without copying.
func (m *SparseMatrix) RowView(i int) (idx []int, val []float64) {
	return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]], m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
}

// MulVec computes m * x for a dense x of length Cols.
func (m *SparseMatrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: sparse MulVec length %d != cols %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		idx, val := m.RowView(i)
		var s float64
		for p, j := range idx {
			s += val[p] * x[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec computes mᵀ * x for a dense x of length Rows.
func (m *SparseMatrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: sparse TMulVec length %d != rows %d", len(x), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		idx, val := m.RowView(i)
		for p, j := range idx {
			out[j] += xi * val[p]
		}
	}
	return out
}

// MulDense computes m * o where o is dense Cols x k, yielding Rows x k.
func (m *SparseMatrix) MulDense(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: sparse MulDense inner mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		idx, val := m.RowView(i)
		dst := out.Row(i)
		for p, j := range idx {
			v := val[p]
			src := o.Row(j)
			for c, b := range src {
				dst[c] += v * b
			}
		}
	}
	return out
}

// Dense expands to a dense matrix.
func (m *SparseMatrix) Dense() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		idx, val := m.RowView(i)
		dst := out.Row(i)
		for p, j := range idx {
			dst[j] = val[p]
		}
	}
	return out
}
