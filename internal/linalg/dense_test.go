package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set/At mismatch: got %g", m.At(0, 1))
	}
	if got := m.Col(2); got[0] != 3 || got[1] != 6 {
		t.Errorf("Col(2) = %v", got)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !Equal(m, tr.T(), 0) {
		t.Error("double transpose != original")
	}
}

func TestMatrixMulSmall(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := rng.GaussianMatrix(17, 9)
	if !Equal(a.Mul(Identity(9)), a, 1e-12) {
		t.Error("A*I != A")
	}
	if !Equal(Identity(17).Mul(a), a, 1e-12) {
		t.Error("I*A != A")
	}
}

// Property: blocked GEMM agrees with the naive triple loop.
func TestMulMatchesNaive(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(70)
		k := 1 + rng.Intn(70)
		n := 1 + rng.Intn(70)
		a := rng.GaussianMatrix(m, k)
		b := rng.GaussianMatrix(k, n)
		got := a.Mul(b)
		want := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for x := 0; x < k; x++ {
					s += a.At(i, x) * b.At(x, j)
				}
				want.Set(i, j, s)
			}
		}
		if !Equal(got, want, 1e-9) {
			t.Fatalf("trial %d: blocked GEMM != naive for %dx%dx%d", trial, m, k, n)
		}
	}
}

func TestTMulMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(3)
	a := rng.GaussianMatrix(23, 11)
	b := rng.GaussianMatrix(23, 7)
	if !Equal(a.TMul(b), a.T().Mul(b), 1e-9) {
		t.Error("TMul != T().Mul")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	got = a.TMulVec([]float64{1, 1, 1})
	want = []float64{9, 12}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("TMulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestStacking(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}})
	b := NewMatrixFrom([][]float64{{3, 4}, {5, 6}})
	v := VStack(a, b)
	if v.Rows != 3 || v.Cols != 2 || v.At(2, 1) != 6 {
		t.Errorf("VStack wrong: %+v", v)
	}
	c := NewMatrixFrom([][]float64{{7}, {8}, {9}})
	h := HStack(v, c)
	if h.Rows != 3 || h.Cols != 3 || h.At(1, 2) != 8 {
		t.Errorf("HStack wrong: %+v", h)
	}
}

func TestSliceRowsCols(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := m.SliceRows(1, 3)
	if r.Rows != 2 || r.At(0, 0) != 4 {
		t.Errorf("SliceRows wrong: %+v", r)
	}
	c := m.SliceCols(1, 2)
	if c.Cols != 1 || c.At(2, 0) != 8 {
		t.Errorf("SliceCols wrong: %+v", c)
	}
	// Mutating the slice must not affect the original (copies, not views).
	r.Set(0, 0, 100)
	if m.At(1, 0) != 4 {
		t.Error("SliceRows aliases the original")
	}
}

func TestCenterColumns(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 10}, {3, 20}})
	means := m.CenterColumns()
	if means[0] != 2 || means[1] != 15 {
		t.Errorf("means = %v", means)
	}
	after := m.ColMeans()
	for _, v := range after {
		if math.Abs(v) > 1e-12 {
			t.Errorf("column mean after centering = %g, want 0", v)
		}
	}
}

func TestMatrixPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"mul mismatch", func() { NewMatrix(2, 3).Mul(NewMatrix(2, 3)) }},
		{"mulvec mismatch", func() { NewMatrix(2, 3).MulVec(make([]float64, 2)) }},
		{"add mismatch", func() { NewMatrix(2, 3).Add(NewMatrix(3, 2)) }},
		{"ragged rows", func() { NewMatrixFrom([][]float64{{1}, {1, 2}}) }},
		{"slice out of range", func() { NewMatrix(2, 2).SliceRows(0, 5) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

// Property (testing/quick): Frobenius norm is absolutely homogeneous:
// ||sA|| = |s|*||A||.
func TestFrobeniusHomogeneity(t *testing.T) {
	f := func(seed uint64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		rng := NewRNG(seed)
		a := rng.GaussianMatrix(1+rng.Intn(10), 1+rng.Intn(10))
		n1 := a.FrobeniusNorm() * math.Abs(scale)
		n2 := a.Clone().Scale(scale).FrobeniusNorm()
		return math.Abs(n1-n2) <= 1e-9*(1+n1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): (A+B)ᵀ = Aᵀ+Bᵀ.
func TestTransposeLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		a := rng.GaussianMatrix(r, c)
		b := rng.GaussianMatrix(r, c)
		lhs := a.Clone().Add(b).T()
		rhs := a.T().Add(b.T())
		return Equal(lhs, rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
