package linalg

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64* with a
// splitmix64 seeding step). Every stochastic component in the repository —
// workload generators, randomized TSVD, GMM initialization, random feature
// maps — draws from an explicitly seeded RNG so experiments are exactly
// reproducible run to run.
type RNG struct {
	state uint64
	// Cached second Gaussian from the Box-Muller pair.
	gauss   float64
	hasGaus bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	// splitmix64 scramble so nearby seeds give unrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x2545F4914F6CDD1D
	}
	return &RNG{state: z}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics for n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("linalg: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Gaussian returns a standard normal sample via Box-Muller.
func (r *RNG) Gaussian() float64 {
	if r.hasGaus {
		r.hasGaus = false
		return r.gauss
	}
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		mag := math.Sqrt(-2 * math.Log(u1))
		r.gauss = mag * math.Sin(2*math.Pi*u2)
		r.hasGaus = true
		return mag * math.Cos(2*math.Pi*u2)
	}
}

// GaussianVector returns n iid standard normal samples.
func (r *RNG) GaussianVector(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Gaussian()
	}
	return v
}

// GaussianMatrix returns a rows x cols matrix of iid standard normals.
func (r *RNG) GaussianMatrix(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Gaussian()
	}
	return m
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns an independent RNG derived from the current stream. Useful
// for giving each partition or worker its own deterministic substream.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
