package linalg

import (
	"fmt"
	"math"
	"sort"

	"keystoneml/internal/linalg/kernels"
)

// SVDFactors holds a thin singular value decomposition A = U diag(S) Vᵀ of
// an m x n matrix: U is m x r, S has length r, V is n x r, where
// r = min(m, n). Singular values are in non-increasing order.
type SVDFactors struct {
	U *Matrix
	S []float64
	V *Matrix
}

// jacobiSweepLimit bounds the number of one-sided Jacobi sweeps. 30 sweeps
// converge for all well-conditioned inputs at double precision.
const jacobiSweepLimit = 30

// SVD computes a thin SVD using one-sided Jacobi rotations. For m < n the
// decomposition of the transpose is computed and the factors swapped, so
// any shape is accepted. The exact SVD path is the O(n d^2) operator from
// Table 2 of the paper.
func SVD(a *Matrix) *SVDFactors {
	if a.Rows < a.Cols {
		f := SVD(a.T())
		return &SVDFactors{U: f.V, S: f.S, V: f.U}
	}
	m, n := a.Rows, a.Cols
	u := a.Clone()
	v := Identity(n)
	// One-sided Jacobi: orthogonalize pairs of columns of U, accumulating
	// the rotations in V. On convergence U = A V with orthogonal columns,
	// so A = (U/|U|) diag(|U|) Vᵀ.
	// The pair sums and plane rotations run on strided kernels (fused
	// single-pass Gram sums, direct-indexed rotations) with the same
	// per-element arithmetic order as the scalar At/Set loops.
	eps := 1e-12
	for sweep := 0; sweep < jacobiSweepLimit; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				app, aqq, apq := kernels.ColPairSums(u.Data, n, m, p, q)
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Compute the rotation annihilating the (p,q) off-diagonal.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				kernels.RotCols(u.Data, n, m, p, q, c, s)
				kernels.RotCols(v.Data, n, n, p, q, c, s)
			}
		}
		if off == 0 {
			break
		}
	}
	// Extract singular values as column norms of U and normalize columns.
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		norm, _, _ := kernels.ColPairSums(u.Data, n, m, j, j)
		s[j] = math.Sqrt(norm)
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := 0; i < m; i++ {
				u.Data[i*n+j] *= inv
			}
		}
	}
	// Sort singular values (and corresponding columns) in descending order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s[order[a]] > s[order[b]] })
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	ss := make([]float64, n)
	for newJ, oldJ := range order {
		ss[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			us.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < n; i++ {
			vs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return &SVDFactors{U: us, S: ss, V: vs}
}

// Truncate keeps only the top k singular triplets.
func (f *SVDFactors) Truncate(k int) *SVDFactors {
	if k >= len(f.S) {
		return f
	}
	return &SVDFactors{
		U: f.U.SliceCols(0, k),
		S: append([]float64(nil), f.S[:k]...),
		V: f.V.SliceCols(0, k),
	}
}

// Reconstruct returns U diag(S) Vᵀ.
func (f *SVDFactors) Reconstruct() *Matrix {
	us := f.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= f.S[j]
		}
	}
	return us.Mul(f.V.T())
}

// TruncatedSVD computes an approximate rank-k SVD using randomized range
// finding (Halko, Martinsson, Tropp 2011) with nIter power iterations and
// oversampling p. This is the O(n k^2) "TSVD" operator from Table 2.
func TruncatedSVD(a *Matrix, k, nIter int, rng *RNG) *SVDFactors {
	m, n := a.Rows, a.Cols
	if k <= 0 {
		panic(fmt.Sprintf("linalg: TruncatedSVD requires k > 0, got %d", k))
	}
	if k > n {
		k = n
	}
	if k > m {
		k = m
	}
	p := k + 8 // oversampling
	if p > n {
		p = n
	}
	// Random test matrix Omega (n x p), sample the range: Y = A Omega.
	omega := rng.GaussianMatrix(n, p)
	y := a.Mul(omega)
	// Power iterations sharpen the spectrum: Y = (A Aᵀ)^q A Omega, with QR
	// re-orthonormalization after each application for numerical stability.
	q := QR(y).Q
	for it := 0; it < nIter; it++ {
		z := a.TMul(q) // n x p
		qz := QR(z).Q
		y = a.Mul(qz)
		q = QR(y).Q
	}
	// Project and take the small SVD: B = Qᵀ A (p x n).
	b := q.TMul(a)
	fb := SVD(b)
	u := q.Mul(fb.U) // m x p
	return (&SVDFactors{U: u, S: fb.S, V: fb.V}).Truncate(k)
}

// SymEig computes the eigendecomposition of a symmetric n x n matrix using
// the classical Jacobi eigenvalue algorithm. It returns eigenvalues in
// descending order with the corresponding orthonormal eigenvectors as the
// columns of V.
func SymEig(a *Matrix) (vals []float64, v *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("linalg: SymEig requires a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	d := a.Clone()
	v = Identity(n)
	for sweep := 0; sweep < jacobiSweepLimit; sweep++ {
		var off float64
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				off += d.At(p, q) * d.At(p, q)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := d.At(p, q)
				if apq == 0 {
					continue
				}
				app := d.At(p, p)
				aqq := d.At(q, q)
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Rotate rows/columns p and q of D.
				kernels.RotCols(d.Data, n, n, p, q, c, s)
				kernels.RotRows(d.Row(p), d.Row(q), c, s)
				// Rotate the eigenvector accumulator.
				kernels.RotCols(v.Data, n, n, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = d.At(i, i)
	}
	// Sort descending, permuting eigenvectors to match.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	sorted := make([]float64, n)
	vv := NewMatrix(n, n)
	for newJ, oldJ := range order {
		sorted[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			vv.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sorted, vv
}
