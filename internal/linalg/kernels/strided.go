package kernels

// Dot returns the inner product of two equal-length vectors using a
// single accumulator in ascending index order (bit-identical to the
// naive loop), unrolled 4x to cut loop overhead.
func Dot(a, b []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x over len(x) elements via the vectorized
// axpy primitive. Element-wise, so ordering is trivially identical to
// the reference loop.
func Axpy(alpha float64, x, y []float64) {
	axpyTo(alpha, x, y[:len(x)])
}

// Gemv computes y[i] = dot(a row i, x) for the rows x cols row-major
// matrix a with leading dimension lda. Rows are independent outputs, so
// they fan across the worker pool; each output is one ascending-order
// accumulator chain exactly like Dot, processed four rows at a time so
// loads of x are shared.
func Gemv(a []float64, lda, rows, cols int, x, y []float64) {
	if rows <= 0 {
		return
	}
	minChunk := 1 + gemvParallelFlops/(2*cols+1)
	ParallelChunks(rows, minChunk, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			r0 := a[i*lda : i*lda+cols]
			r1 := a[(i+1)*lda : (i+1)*lda+cols]
			r2 := a[(i+2)*lda : (i+2)*lda+cols]
			r3 := a[(i+3)*lda : (i+3)*lda+cols]
			var s0, s1, s2, s3 float64
			for j, xj := range x[:cols] {
				s0 += r0[j] * xj
				s1 += r1[j] * xj
				s2 += r2[j] * xj
				s3 += r3[j] * xj
			}
			y[i] = s0
			y[i+1] = s1
			y[i+2] = s2
			y[i+3] = s3
		}
		for ; i < hi; i++ {
			y[i] = Dot(a[i*lda:i*lda+cols], x[:cols])
		}
	})
}

// gemvParallelFlops is the minimum per-chunk flop count before GEMV-like
// kernels spawn helpers; below this the fan-out costs more than it saves.
const gemvParallelFlops = 1 << 15

// GemvT accumulates y[j] += sum_i x[i] * a[i*lda+j] for the rows x cols
// row-major panel a — the transpose-vector product behind TMulVec and
// the QR Householder projection. Accumulation runs in axpy form with
// ascending i and one add per product, matching the reference order for
// every y[j]; four rows are blocked per pass so each y element stays in
// a register across four updates. Columns are partitioned across the
// pool (each worker owns a j-range, so no two workers touch the same
// output element).
func GemvT(a []float64, lda, rows, cols int, x, y []float64) {
	if rows <= 0 || cols <= 0 {
		return
	}
	minChunk := 1 + gemvParallelFlops/(2*rows+1)
	ParallelChunks(cols, minChunk, func(jlo, jhi int) {
		yy := y[jlo:jhi]
		i := 0
		for ; i+4 <= rows; i += 4 {
			axpy4(yy,
				x[i], x[i+1], x[i+2], x[i+3],
				a[i*lda+jlo:i*lda+jhi],
				a[(i+1)*lda+jlo:(i+1)*lda+jhi],
				a[(i+2)*lda+jlo:(i+2)*lda+jhi],
				a[(i+3)*lda+jlo:(i+3)*lda+jhi])
		}
		for ; i < rows; i++ {
			axpyTo(x[i], a[i*lda+jlo:i*lda+jhi], yy)
		}
	})
}

// Ger applies the rank-1 update a[i*lda+j] += alpha*x[i]*y[j] to the
// rows x cols row-major panel a. alpha*x[i] is folded once per row, so
// each element sees a single multiply-add; rows are independent and fan
// across the pool.
func Ger(a []float64, lda, rows, cols int, alpha float64, x, y []float64) {
	if rows <= 0 || cols <= 0 {
		return
	}
	minChunk := 1 + gemvParallelFlops/(2*cols+1)
	ParallelChunks(rows, minChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			axpyTo(alpha*x[i], y[:cols], a[i*lda:i*lda+cols])
		}
	})
}

// GatherCol copies column col of the rows x cols row-major matrix a
// (leading dimension lda) into dst[:rows] with a single strided walk.
func GatherCol(dst, a []float64, lda, rows, col int) {
	idx := col
	for i := 0; i < rows; i++ {
		dst[i] = a[idx]
		idx += lda
	}
}

// ScatterCol copies src[:rows] into column col of the row-major matrix a.
func ScatterCol(a, src []float64, lda, rows, col int) {
	idx := col
	for i := 0; i < rows; i++ {
		a[idx] = src[i]
		idx += lda
	}
}

// ColPairSums walks columns p and q of the rows x stride row-major
// matrix once and returns the fused Gram sums (Σ aᵢₚ², Σ aᵢq², Σ aᵢₚaᵢq)
// needed by a one-sided Jacobi step. Three independent ascending-order
// accumulators — the same sequence as three separate naive loops.
func ColPairSums(a []float64, stride, rows, p, q int) (app, aqq, apq float64) {
	ip, iq := p, q
	for i := 0; i < rows; i++ {
		up := a[ip]
		uq := a[iq]
		app += up * up
		aqq += uq * uq
		apq += up * uq
		ip += stride
		iq += stride
	}
	return app, aqq, apq
}

// RotCols applies the plane rotation (p', q') = (c*p - s*q, s*p + c*q)
// to columns p and q of the rows x stride row-major matrix. Rows are
// independent, so large matrices fan across the pool.
func RotCols(a []float64, stride, rows, p, q int, c, s float64) {
	ParallelChunks(rows, 1+gemvParallelFlops/8, func(lo, hi int) {
		ip, iq := lo*stride+p, lo*stride+q
		for i := lo; i < hi; i++ {
			up := a[ip]
			uq := a[iq]
			a[ip] = c*up - s*uq
			a[iq] = s*up + c*uq
			ip += stride
			iq += stride
		}
	})
}

// RotRows applies the same plane rotation to two contiguous rows.
func RotRows(rp, rq []float64, c, s float64) {
	for i, vp := range rp {
		vq := rq[i]
		rp[i] = c*vp - s*vq
		rq[i] = s*vp + c*vq
	}
}
