//go:build !amd64

package kernels

// useSIMD is false off amd64; the pure-Go fallbacks in strided.go run
// everywhere and produce identical results.
var useSIMD = false

func axpySIMD(dst, x []float64, alpha float64) {
	panic("kernels: axpySIMD unavailable on this architecture")
}

func axpy4SIMD(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64) {
	panic("kernels: axpy4SIMD unavailable on this architecture")
}
