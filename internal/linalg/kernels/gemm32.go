package kernels

// Register blocking factors for the float32 micro-kernel: each inner
// iteration computes an mr x nr output block held in scalar registers
// across the full reduction, so every output element accumulates in
// ascending reduction order exactly like a naive triple loop.
const (
	mr = 4
	nr = 4
)

// Gemm32 accumulates dst += a*b in float32: a is m x k, b is k x n, dst
// is m x n, all contiguous row-major. Structure mirrors the float64
// Gemm (packed nr-wide b panels, mr-high register-blocked row panels,
// full-depth register accumulation). Float32 halves memory traffic on
// the im2col conv path; the precision loss relative to the float64
// kernels is the one tolerance > 0 entry in the linalg tolerance table,
// so this variant is only used where a caller opts in.
func Gemm32(dst, a, b []float32, m, k, n int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	nPanels := (n + nr - 1) / nr
	packB := make([]float32, nPanels*k*nr)
	for p := 0; p < nPanels; p++ {
		j0 := p * nr
		w := n - j0
		if w > nr {
			w = nr
		}
		dstP := packB[p*k*nr:]
		for kk := 0; kk < k; kk++ {
			src := b[kk*n+j0:]
			base := kk * nr
			for j := 0; j < w; j++ {
				dstP[base+j] = src[j]
			}
		}
	}
	iPanels := (m + mr - 1) / mr
	ParallelChunks(iPanels, 1, func(lo, hi int) {
		packA := make([]float32, k*mr)
		for ip := lo; ip < hi; ip++ {
			i0 := ip * mr
			h := m - i0
			if h > mr {
				h = mr
			}
			for kk := 0; kk < k; kk++ {
				base := kk * mr
				for ii := 0; ii < h; ii++ {
					packA[base+ii] = a[(i0+ii)*k+kk]
				}
				for ii := h; ii < mr; ii++ {
					packA[base+ii] = 0
				}
			}
			for p := 0; p < nPanels; p++ {
				j0 := p * nr
				w := n - j0
				if w > nr {
					w = nr
				}
				micro4x4f32(dst[i0*n+j0:], n, packA, packB[p*k*nr:], k, h, w)
			}
		}
	})
}

// micro4x4f32 is the float32 register micro-kernel; see micro4x4.
func micro4x4f32(dst []float32, ldd int, packA, packB []float32, kc, h, w int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	ia, ib := 0, 0
	for kk := 0; kk < kc; kk++ {
		a0 := packA[ia]
		a1 := packA[ia+1]
		a2 := packA[ia+2]
		a3 := packA[ia+3]
		b0 := packB[ib]
		b1 := packB[ib+1]
		b2 := packB[ib+2]
		b3 := packB[ib+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		ia += mr
		ib += nr
	}
	var c [mr][nr]float32
	c[0] = [nr]float32{c00, c01, c02, c03}
	c[1] = [nr]float32{c10, c11, c12, c13}
	c[2] = [nr]float32{c20, c21, c22, c23}
	c[3] = [nr]float32{c30, c31, c32, c33}
	for i := 0; i < h; i++ {
		row := dst[i*ldd:]
		for j := 0; j < w; j++ {
			row[j] += c[i][j]
		}
	}
}
