//go:build amd64

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpySIMD(dst, x []float64, alpha float64)
//
// dst[j] += alpha * x[j] for j < len(dst). VMULPD+VADDPD only — no FMA —
// so each element sees exactly the scalar rounding sequence.
TEXT ·axpySIMD(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+24(FP), R8
	VBROADCASTSD alpha+48(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

loop8:
	CMPQ AX, DX
	JGE  tail4
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (R8)(AX*8), Y6
	VMOVUPD 32(R8)(AX*8), Y7
	VMULPD  Y0, Y6, Y6
	VMULPD  Y0, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     loop8

tail4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ AX, DX
	JGE  tail1
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (R8)(AX*8), Y6
	VMULPD  Y0, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX

tail1:
	CMPQ AX, CX
	JGE  done
	VMOVSD (DI)(AX*8), X4
	VMOVSD (R8)(AX*8), X6
	VMULSD X0, X6, X6
	VADDSD X6, X4, X4
	VMOVSD X4, (DI)(AX*8)
	INCQ   AX
	JMP    tail1

done:
	VZEROUPPER
	RET

// func axpy4SIMD(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64)
//
// For each j < len(dst): dst[j] += x0*r0[j]; += x1*r1[j]; += x2*r2[j];
// += x3*r3[j] — four ordered memory-rounded accumulations per element,
// vectorized across j. Callers guarantee len(r*) >= len(dst).
TEXT ·axpy4SIMD(SB), NOSPLIT, $0-152
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ r0_base+24(FP), R8
	MOVQ r1_base+48(FP), R9
	MOVQ r2_base+72(FP), R10
	MOVQ r3_base+96(FP), R11
	VBROADCASTSD x0+120(FP), Y0
	VBROADCASTSD x1+128(FP), Y1
	VBROADCASTSD x2+136(FP), Y2
	VBROADCASTSD x3+144(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

loop8:
	CMPQ AX, DX
	JGE  tail4
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (R8)(AX*8), Y6
	VMOVUPD 32(R8)(AX*8), Y7
	VMULPD  Y0, Y6, Y6
	VMULPD  Y0, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R9)(AX*8), Y6
	VMOVUPD 32(R9)(AX*8), Y7
	VMULPD  Y1, Y6, Y6
	VMULPD  Y1, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R10)(AX*8), Y6
	VMOVUPD 32(R10)(AX*8), Y7
	VMULPD  Y2, Y6, Y6
	VMULPD  Y2, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R11)(AX*8), Y6
	VMOVUPD 32(R11)(AX*8), Y7
	VMULPD  Y3, Y6, Y6
	VMULPD  Y3, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     loop8

tail4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ AX, DX
	JGE  tail1
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (R8)(AX*8), Y6
	VMULPD  Y0, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R9)(AX*8), Y6
	VMULPD  Y1, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R10)(AX*8), Y6
	VMULPD  Y2, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R11)(AX*8), Y6
	VMULPD  Y3, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX

tail1:
	CMPQ AX, CX
	JGE  done
	VMOVSD (DI)(AX*8), X4
	VMOVSD (R8)(AX*8), X6
	VMULSD X0, X6, X6
	VADDSD X6, X4, X4
	VMOVSD (R9)(AX*8), X6
	VMULSD X1, X6, X6
	VADDSD X6, X4, X4
	VMOVSD (R10)(AX*8), X6
	VMULSD X2, X6, X6
	VADDSD X6, X4, X4
	VMOVSD (R11)(AX*8), X6
	VMULSD X3, X6, X6
	VADDSD X6, X4, X4
	VMOVSD X4, (DI)(AX*8)
	INCQ   AX
	JMP    tail1

done:
	VZEROUPPER
	RET
