//go:build amd64

package kernels

// useSIMD reports whether the AVX2 axpy primitives may be used. The
// runtime check requires OS support for YMM state (OSXSAVE + XCR0) on
// top of the AVX2 CPUID bit.
var useSIMD = detectAVX2()

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// axpySIMD computes dst[j] += alpha*x[j] for j < len(dst) using AVX2
// vector mul+add (no FMA, so rounding matches the scalar loop exactly).
func axpySIMD(dst, x []float64, alpha float64)

// axpy4SIMD computes, for each j < len(dst), four ordered accumulations
// dst[j] += x0*r0[j]; dst[j] += x1*r1[j]; dst[j] += x2*r2[j];
// dst[j] += x3*r3[j] — vectorized across j, so the per-element rounding
// sequence is identical to the scalar fallback.
func axpy4SIMD(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64)

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	_, _, c1, _ := cpuidex(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xlo, _ := xgetbv0()
	if xlo&6 != 6 {
		return false
	}
	const avx2Bit = 1 << 5
	_, b7, _, _ := cpuidex(7, 0)
	return b7&avx2Bit != 0
}
