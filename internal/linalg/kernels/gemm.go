package kernels

// Cache blocking for the axpy-form float64 GEMM: the kc x jc tile of b
// (kc*jc*8 bytes = 240 KiB) stays L2-resident while every row of the
// output panel streams over it, and each jc-wide dst row segment stays
// in L1 across a kc-deep reduction block.
const (
	gemmKC = 128
	gemmJC = 240
)

// axpyTo computes dst[j] += alpha*x[j] for j < len(dst), via AVX2 when
// available. Element-wise, so ordering matches the scalar loop exactly.
func axpyTo(alpha float64, x, dst []float64) {
	if useSIMD && len(dst) >= 8 {
		axpySIMD(dst, x, alpha)
		return
	}
	for j := range dst {
		dst[j] += alpha * x[j]
	}
}

// axpy4 applies four ordered axpy accumulations to dst: for each j,
// dst[j] += x0*r0[j], then x1*r1[j], x2*r2[j], x3*r3[j] — one rounded
// add per product in ascending source order, so fusing four rows
// changes no bits relative to four separate axpyTo calls.
func axpy4(dst []float64, x0, x1, x2, x3 float64, r0, r1, r2, r3 []float64) {
	if useSIMD && len(dst) >= 8 {
		axpy4SIMD(dst, r0, r1, r2, r3, x0, x1, x2, x3)
		return
	}
	for j := range dst {
		t := dst[j]
		t += x0 * r0[j]
		t += x1 * r1[j]
		t += x2 * r2[j]
		t += x3 * r3[j]
		dst[j] = t
	}
}

// Gemm accumulates dst += a*b for contiguous row-major operands:
// a is m x k, b is k x n, dst is m x n. Output rows fan across the
// worker pool; within a row chunk the reduction is cache-blocked and
// runs four b-rows per pass through the vectorized axpy4. Every output
// element accumulates in ascending-k order with one rounded add per
// product — the same sequence as the reference i-k-j loop — so results
// are bit-identical to the reference backend on finite inputs.
func Gemm(dst, a, b []float64, m, k, n int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	minChunk := 1 + gemmParallelFlops/(2*k*n+1)
	ParallelChunks(m, minChunk, func(ilo, ihi int) {
		for kk := 0; kk < k; kk += gemmKC {
			kMax := kk + gemmKC
			if kMax > k {
				kMax = k
			}
			for jj := 0; jj < n; jj += gemmJC {
				jMax := jj + gemmJC
				if jMax > n {
					jMax = n
				}
				for i := ilo; i < ihi; i++ {
					arow := a[i*k : i*k+k]
					drow := dst[i*n+jj : i*n+jMax]
					p := kk
					for ; p+4 <= kMax; p += 4 {
						axpy4(drow,
							arow[p], arow[p+1], arow[p+2], arow[p+3],
							b[p*n+jj:p*n+jMax],
							b[(p+1)*n+jj:(p+1)*n+jMax],
							b[(p+2)*n+jj:(p+2)*n+jMax],
							b[(p+3)*n+jj:(p+3)*n+jMax])
					}
					for ; p < kMax; p++ {
						axpyTo(arow[p], b[p*n+jj:p*n+jMax], drow)
					}
				}
			}
		}
	})
}

// gemmParallelFlops is the minimum per-chunk flop count before Gemm and
// GemmT fan rows across helpers.
const gemmParallelFlops = 1 << 16

// GemmT accumulates dst += aᵀ*b where a is r x m, b is r x n and dst is
// m x n (the transpose-multiply primitive behind Matrix.TMul). The
// reduction runs over the shared leading dimension r with the same
// blocked axpy structure as Gemm; the a operand is read down a column
// (stride m), four scalars per pass.
func GemmT(dst, a, b []float64, r, m, n int) {
	if m <= 0 || n <= 0 || r <= 0 {
		return
	}
	minChunk := 1 + gemmParallelFlops/(2*r*n+1)
	ParallelChunks(m, minChunk, func(ilo, ihi int) {
		for kk := 0; kk < r; kk += gemmKC {
			kMax := kk + gemmKC
			if kMax > r {
				kMax = r
			}
			for jj := 0; jj < n; jj += gemmJC {
				jMax := jj + gemmJC
				if jMax > n {
					jMax = n
				}
				for i := ilo; i < ihi; i++ {
					drow := dst[i*n+jj : i*n+jMax]
					p := kk
					for ; p+4 <= kMax; p += 4 {
						axpy4(drow,
							a[p*m+i], a[(p+1)*m+i], a[(p+2)*m+i], a[(p+3)*m+i],
							b[p*n+jj:p*n+jMax],
							b[(p+1)*n+jj:(p+1)*n+jMax],
							b[(p+2)*n+jj:(p+2)*n+jMax],
							b[(p+3)*n+jj:(p+3)*n+jMax])
					}
					for ; p < kMax; p++ {
						axpyTo(a[p*m+i], b[p*n+jj:p*n+jMax], drow)
					}
				}
			}
		}
	})
}
