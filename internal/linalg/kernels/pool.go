// Package kernels holds the raw compute kernels behind the linalg
// "blocked" backend: packed register-blocked GEMM (float64 and float32),
// strided GEMV/rank-1 panel kernels for the QR/SVD hot loops, unrolled
// vector primitives, and a worker pool that fans tile work across cores
// without oversubscribing the process.
//
// Every kernel preserves the per-element accumulation order of the
// straight-line reference implementations in package linalg (ascending
// reduction index, one accumulator per output element), so on finite
// inputs the blocked backend produces bit-identical float64 results to
// the reference backend regardless of blocking factors or how many
// workers participate. The only documented divergences are signed zeros
// (the reference skips zero multiplicands where these kernels multiply
// through, so a +0 may replace a -0; the two compare equal under ==) and
// the float32 GEMM variant, whose reduced precision is an explicit
// opt-in. See the package linalg tolerance table.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// active counts helper goroutines currently running kernel tiles across
// the whole process. The budget is GOMAXPROCS: a kernel invoked from
// inside an already-parallel caller (the DAG executor's worker pool, a
// per-partition solver goroutine) finds the budget consumed and simply
// runs on the calling goroutine, so nested parallelism degrades to
// serial instead of oversubscribing the scheduler.
var active atomic.Int64

// budget overrides the helper budget when positive; zero means derive
// it from GOMAXPROCS. Set via SetHelperBudget.
var budget atomic.Int64

// SetHelperBudget bounds the pool to n workers total (n-1 helpers plus
// the calling goroutine); n <= 0 restores the GOMAXPROCS default. The
// linalg facade wires this to the engine context's parallelism.
func SetHelperBudget(n int) {
	if n <= 0 {
		budget.Store(0)
		return
	}
	budget.Store(int64(n))
}

// helperLimit returns how many helper goroutines may exist at once
// process-wide: one less than the worker budget, never exceeding
// GOMAXPROCS-1 (the caller occupies one slot).
func helperLimit() int64 {
	limit := int64(runtime.GOMAXPROCS(0)) - 1
	if b := budget.Load(); b > 0 && b-1 < limit {
		limit = b - 1
	}
	return limit
}

// acquire reserves up to want helper slots and returns how many were
// granted. Callers must release exactly the granted count.
func acquire(want int) int {
	if want <= 0 {
		return 0
	}
	limit := helperLimit()
	for {
		cur := active.Load()
		free := limit - cur
		if free <= 0 {
			return 0
		}
		n := int64(want)
		if n > free {
			n = free
		}
		if active.CompareAndSwap(cur, cur+n) {
			return int(n)
		}
	}
}

// release returns helper slots to the budget.
func release(n int) {
	if n > 0 {
		active.Add(int64(-n))
	}
}

// ParallelChunks splits [0, n) into contiguous chunks and runs fn(lo, hi)
// on each, fanning chunks across helper goroutines bounded by the global
// GOMAXPROCS budget. minChunk bounds fan-out for small inputs (no helper
// is spawned for less than minChunk items of work). The caller always
// executes at least one chunk itself, so ParallelChunks never deadlocks
// even with a zero budget. Chunk boundaries depend only on n and the
// granted worker count, and every output element is owned by exactly one
// chunk, so results do not depend on scheduling.
//
// A panic in any chunk is re-raised on the calling goroutine after all
// helpers finish.
func ParallelChunks(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	want := n/minChunk - 1
	if maxHelpers := int(helperLimit()); want > maxHelpers {
		want = maxHelpers
	}
	helpers := acquire(want)
	if helpers == 0 {
		fn(0, n)
		return
	}
	defer release(helpers)
	workers := helpers + 1
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	for w := 1; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	first := chunk
	if first > n {
		first = n
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		fn(0, first)
	}()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
