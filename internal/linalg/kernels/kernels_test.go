package kernels

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func naiveGemm(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a[i*k+kk]
			for j := 0; j < n; j++ {
				dst[i*n+j] += av * b[kk*n+j]
			}
		}
	}
}

var edgeSizes = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range edgeSizes {
		for _, k := range edgeSizes {
			for _, n := range edgeSizes {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				want := make([]float64, m*n)
				naiveGemm(want, a, b, m, k, n)
				got := make([]float64, m*n)
				Gemm(got, a, b, m, k, n)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("Gemm %dx%dx%d: elem %d = %g, want %g", m, k, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGemmTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, r := range edgeSizes {
		for _, m := range edgeSizes {
			for _, n := range edgeSizes {
				a := randSlice(rng, r*m)
				b := randSlice(rng, r*n)
				want := make([]float64, m*n)
				for kk := 0; kk < r; kk++ {
					for i := 0; i < m; i++ {
						av := a[kk*m+i]
						for j := 0; j < n; j++ {
							want[i*n+j] += av * b[kk*n+j]
						}
					}
				}
				got := make([]float64, m*n)
				GemmT(got, a, b, r, m, n)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("GemmT %dx%dx%d: elem %d = %g, want %g", r, m, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGemm32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 3, 4, 7, 16, 33} {
		for _, k := range []int{1, 5, 8, 33} {
			for _, n := range []int{1, 3, 4, 9, 33} {
				a := make([]float32, m*k)
				b := make([]float32, k*n)
				for i := range a {
					a[i] = float32(rng.NormFloat64())
				}
				for i := range b {
					b[i] = float32(rng.NormFloat64())
				}
				want := make([]float32, m*n)
				for i := 0; i < m; i++ {
					for kk := 0; kk < k; kk++ {
						av := a[i*k+kk]
						for j := 0; j < n; j++ {
							want[i*n+j] += av * b[kk*n+j]
						}
					}
				}
				got := make([]float32, m*n)
				Gemm32(got, a, b, m, k, n)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("Gemm32 %dx%dx%d: elem %d = %g, want %g", m, k, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestDotAxpyMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range edgeSizes {
		a := randSlice(rng, n)
		b := randSlice(rng, n)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("Dot n=%d: got %g, want %g", n, got, want)
		}
		y := randSlice(rng, n)
		wantY := append([]float64(nil), y...)
		alpha := rng.NormFloat64()
		for i := range wantY {
			wantY[i] += alpha * a[i]
		}
		Axpy(alpha, a, y)
		for i := range y {
			if y[i] != wantY[i] {
				t.Fatalf("Axpy n=%d: elem %d = %g, want %g", n, i, y[i], wantY[i])
			}
		}
	}
}

func TestGemvAndGemvT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, rows := range edgeSizes {
		for _, cols := range edgeSizes {
			lda := cols + 3 // exercise panels narrower than their stride
			a := randSlice(rng, rows*lda+1)
			x := randSlice(rng, cols)
			want := make([]float64, rows)
			for i := 0; i < rows; i++ {
				var s float64
				for j := 0; j < cols; j++ {
					s += a[i*lda+j] * x[j]
				}
				want[i] = s
			}
			got := make([]float64, rows)
			Gemv(a, lda, rows, cols, x, got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("Gemv %dx%d: row %d = %g, want %g", rows, cols, i, got[i], want[i])
				}
			}

			xr := randSlice(rng, rows)
			wantT := randSlice(rng, cols)
			gotT := append([]float64(nil), wantT...)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					wantT[j] += xr[i] * a[i*lda+j]
				}
			}
			GemvT(a, lda, rows, cols, xr, gotT)
			for j := range wantT {
				if wantT[j] != gotT[j] {
					t.Fatalf("GemvT %dx%d: col %d = %g, want %g", rows, cols, j, gotT[j], wantT[j])
				}
			}
		}
	}
}

func TestGerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, rows := range edgeSizes {
		for _, cols := range edgeSizes {
			lda := cols + 1
			a := randSlice(rng, rows*lda+1)
			want := append([]float64(nil), a...)
			x := randSlice(rng, rows)
			y := randSlice(rng, cols)
			alpha := rng.NormFloat64()
			for i := 0; i < rows; i++ {
				s := alpha * x[i]
				for j := 0; j < cols; j++ {
					want[i*lda+j] += s * y[j]
				}
			}
			Ger(a, lda, rows, cols, alpha, x, y)
			for i := range want {
				if want[i] != a[i] {
					t.Fatalf("Ger %dx%d: elem %d = %g, want %g", rows, cols, i, a[i], want[i])
				}
			}
		}
	}
}

func TestGatherScatterCol(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, cols := 9, 5
	a := randSlice(rng, rows*cols)
	col := make([]float64, rows)
	GatherCol(col, a, cols, rows, 3)
	for i := 0; i < rows; i++ {
		if col[i] != a[i*cols+3] {
			t.Fatalf("GatherCol row %d: got %g, want %g", i, col[i], a[i*cols+3])
		}
	}
	repl := randSlice(rng, rows)
	ScatterCol(a, repl, cols, rows, 2)
	for i := 0; i < rows; i++ {
		if a[i*cols+2] != repl[i] {
			t.Fatalf("ScatterCol row %d: got %g, want %g", i, a[i*cols+2], repl[i])
		}
	}
}

func TestColPairSumsAndRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows, cols := 37, 6
	a := randSlice(rng, rows*cols)
	var app, aqq, apq float64
	for i := 0; i < rows; i++ {
		up := a[i*cols+1]
		uq := a[i*cols+4]
		app += up * up
		aqq += uq * uq
		apq += up * uq
	}
	gp, gq, gpq := ColPairSums(a, cols, rows, 1, 4)
	if gp != app || gq != aqq || gpq != apq {
		t.Fatalf("ColPairSums: got (%g,%g,%g), want (%g,%g,%g)", gp, gq, gpq, app, aqq, apq)
	}

	c, s := math.Cos(0.3), math.Sin(0.3)
	want := append([]float64(nil), a...)
	for i := 0; i < rows; i++ {
		up := want[i*cols+1]
		uq := want[i*cols+4]
		want[i*cols+1] = c*up - s*uq
		want[i*cols+4] = s*up + c*uq
	}
	RotCols(a, cols, rows, 1, 4, c, s)
	for i := range want {
		if want[i] != a[i] {
			t.Fatalf("RotCols: elem %d = %g, want %g", i, a[i], want[i])
		}
	}

	rp := randSlice(rng, 11)
	rq := randSlice(rng, 11)
	wp := append([]float64(nil), rp...)
	wq := append([]float64(nil), rq...)
	for i := range wp {
		vp, vq := wp[i], wq[i]
		wp[i] = c*vp - s*vq
		wq[i] = s*vp + c*vq
	}
	RotRows(rp, rq, c, s)
	for i := range wp {
		if rp[i] != wp[i] || rq[i] != wq[i] {
			t.Fatalf("RotRows: elem %d = (%g,%g), want (%g,%g)", i, rp[i], rq[i], wp[i], wq[i])
		}
	}
}

func TestParallelChunksCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		var mu sync.Mutex
		seen := make([]int, n)
		ParallelChunks(n, 1, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelChunksNestedDoesNotDeadlock(t *testing.T) {
	var total int64
	var mu sync.Mutex
	ParallelChunks(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelChunks(4, 1, func(l, h int) {
				mu.Lock()
				total += int64(h - l)
				mu.Unlock()
			})
		}
	})
	if total != 32 {
		t.Fatalf("nested ParallelChunks covered %d items, want 32", total)
	}
	if got := active.Load(); got != 0 {
		t.Fatalf("helper budget leaked: active = %d after all work done", got)
	}
}

func TestParallelChunksPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate out of ParallelChunks")
		}
		if got := active.Load(); got != 0 {
			t.Fatalf("helper budget leaked after panic: active = %d", got)
		}
	}()
	ParallelChunks(runtime.GOMAXPROCS(0)+4, 1, func(lo, hi int) {
		panic("boom")
	})
}
