package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := NewRNG(42)
	for _, shape := range [][2]int{{5, 3}, {10, 10}, {50, 8}, {3, 1}} {
		a := rng.GaussianMatrix(shape[0], shape[1])
		f := QR(a)
		if !Equal(f.Q.Mul(f.R), a, 1e-9) {
			t.Errorf("QR reconstruction failed for %dx%d", shape[0], shape[1])
		}
		// Q must have orthonormal columns.
		qtq := f.Q.TMul(f.Q)
		if !Equal(qtq, Identity(shape[1]), 1e-9) {
			t.Errorf("QᵀQ != I for %dx%d", shape[0], shape[1])
		}
		// R must be upper triangular.
		for i := 0; i < f.R.Rows; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(f.R.At(i, j)) > 1e-10 {
					t.Errorf("R not upper triangular at (%d,%d): %g", i, j, f.R.At(i, j))
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Column 1 = 2 * column 0: QR must still reconstruct.
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}, {3, 6}})
	f := QR(a)
	if !Equal(f.Q.Mul(f.R), a, 1e-9) {
		t.Error("QR reconstruction failed for rank-deficient input")
	}
}

func TestLeastSquaresQRExactFit(t *testing.T) {
	// Plant a known X and recover it from a consistent system.
	rng := NewRNG(9)
	a := rng.GaussianMatrix(40, 6)
	xTrue := rng.GaussianMatrix(6, 3)
	b := a.Mul(xTrue)
	x := LeastSquaresQR(a, b)
	if !Equal(x, xTrue, 1e-8) {
		t.Errorf("least squares did not recover planted solution; residual %g",
			x.Clone().Sub(xTrue).FrobeniusNorm())
	}
}

func TestLeastSquaresQRNormalEquations(t *testing.T) {
	// For inconsistent systems the solution must satisfy Aᵀ(AX - B) = 0.
	rng := NewRNG(10)
	a := rng.GaussianMatrix(30, 5)
	b := rng.GaussianMatrix(30, 2)
	x := LeastSquaresQR(a, b)
	grad := a.TMul(a.Mul(x).Sub(b))
	if grad.MaxAbs() > 1e-8 {
		t.Errorf("normal equations violated: max |Aᵀr| = %g", grad.MaxAbs())
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := NewRNG(11)
	g := rng.GaussianMatrix(20, 6)
	s := g.TMul(g) // SPD (a.s.)
	for i := 0; i < 6; i++ {
		s.Set(i, i, s.At(i, i)+1e-6)
	}
	xTrue := rng.GaussianMatrix(6, 2)
	b := s.Mul(xTrue)
	x := CholeskySolve(s, b)
	if !Equal(x, xTrue, 1e-6) {
		t.Errorf("Cholesky solve residual %g", x.Clone().Sub(xTrue).FrobeniusNorm())
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := NewRNG(12)
	for _, shape := range [][2]int{{8, 5}, {5, 8}, {12, 12}, {1, 4}} {
		a := rng.GaussianMatrix(shape[0], shape[1])
		f := SVD(a)
		if !Equal(f.Reconstruct(), a, 1e-8) {
			t.Errorf("SVD reconstruction failed for %dx%d", shape[0], shape[1])
		}
		// Singular values must be non-negative and sorted descending.
		for i := 1; i < len(f.S); i++ {
			if f.S[i] > f.S[i-1]+1e-12 {
				t.Errorf("singular values not sorted at %d: %v", i, f.S)
			}
		}
		for _, s := range f.S {
			if s < 0 {
				t.Errorf("negative singular value %g", s)
			}
		}
		r := min(shape[0], shape[1])
		if !Equal(f.U.TMul(f.U), Identity(r), 1e-8) {
			t.Errorf("UᵀU != I for %dx%d", shape[0], shape[1])
		}
		if !Equal(f.V.TMul(f.V), Identity(r), 1e-8) {
			t.Errorf("VᵀV != I for %dx%d", shape[0], shape[1])
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) embedded in a rectangular matrix has singular values {3, 2}.
	a := NewMatrixFrom([][]float64{{3, 0}, {0, 2}, {0, 0}})
	f := SVD(a)
	if math.Abs(f.S[0]-3) > 1e-10 || math.Abs(f.S[1]-2) > 1e-10 {
		t.Errorf("singular values = %v, want [3 2]", f.S)
	}
}

func TestTruncatedSVDLowRankRecovery(t *testing.T) {
	// Build an exactly rank-3 matrix; TSVD with k=3 must reconstruct it.
	rng := NewRNG(13)
	u := rng.GaussianMatrix(40, 3)
	v := rng.GaussianMatrix(3, 25)
	a := u.Mul(v)
	f := TruncatedSVD(a, 3, 2, NewRNG(99))
	if !Equal(f.Reconstruct(), a, 1e-6) {
		t.Errorf("TSVD failed to recover rank-3 matrix; err %g",
			f.Reconstruct().Sub(a).FrobeniusNorm())
	}
	if len(f.S) != 3 {
		t.Errorf("TSVD returned %d singular values, want 3", len(f.S))
	}
}

func TestTruncatedSVDApproximatesTopSpectrum(t *testing.T) {
	rng := NewRNG(14)
	a := rng.GaussianMatrix(60, 30)
	exact := SVD(a)
	approx := TruncatedSVD(a, 5, 3, NewRNG(5))
	for i := 0; i < 5; i++ {
		rel := math.Abs(approx.S[i]-exact.S[i]) / exact.S[i]
		if rel > 0.05 {
			t.Errorf("TSVD singular value %d off by %.1f%% (%g vs %g)", i, rel*100, approx.S[i], exact.S[i])
		}
	}
}

func TestSymEig(t *testing.T) {
	rng := NewRNG(15)
	g := rng.GaussianMatrix(15, 7)
	s := g.TMul(g)
	vals, v := SymEig(s)
	// Reconstruct: S = V diag(vals) Vᵀ.
	rec := v.Mul(Diag(vals)).Mul(v.T())
	if !Equal(rec, s, 1e-7) {
		t.Errorf("SymEig reconstruction residual %g", rec.Sub(s).FrobeniusNorm())
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-10 {
			t.Errorf("eigenvalues not sorted: %v", vals)
		}
	}
	if !Equal(v.TMul(v), Identity(7), 1e-8) {
		t.Error("eigenvectors not orthonormal")
	}
}

// Property (testing/quick): SVD singular values are invariant under
// row permutation (here: reversal).
func TestSVDPermutationInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 2+rng.Intn(8), 2+rng.Intn(8)
		a := rng.GaussianMatrix(r, c)
		rev := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			rev.SetRow(i, a.Row(r-1-i))
		}
		s1 := SVD(a).S
		s2 := SVD(rev).S
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]) > 1e-8*(1+s1[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): sum of squared singular values equals the
// squared Frobenius norm.
func TestSVDEnergyConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := rng.GaussianMatrix(2+rng.Intn(10), 2+rng.Intn(10))
		var e float64
		for _, s := range SVD(a).S {
			e += s * s
		}
		fn := a.FrobeniusNorm()
		return math.Abs(e-fn*fn) < 1e-7*(1+fn*fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
