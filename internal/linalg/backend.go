package linalg

import (
	"sync/atomic"

	"keystoneml/internal/linalg/kernels"
)

// Backend is the pluggable kernel layer behind the dense primitives.
// Two implementations ship: "reference" (the original straight-line
// loops, always correct, zero dispatch surprises) and "blocked"
// (register-blocked packed GEMM, strided panel kernels, worker-pool
// parallelism from internal/linalg/kernels). Both preserve per-element
// accumulation order, so float64 results are bit-identical between
// backends on finite inputs; see the tolerance table in
// ARCHITECTURE.md Contract 5.
//
// All matrix arguments are contiguous row-major slices. Mul and TMul
// accumulate into dst (callers pass zeroed output buffers).
type Backend interface {
	// Name identifies the backend ("reference" or "blocked").
	Name() string
	// Mul accumulates dst += a*b where a is m x k, b is k x n.
	Mul(dst, a, b []float64, m, k, n int)
	// TMul accumulates dst += aᵀ*b where a is r x m and b is r x n.
	TMul(dst, a, b []float64, r, m, n int)
	// Gemv computes y[i] = dot(row i of a, x) for the rows x cols panel
	// a with leading dimension lda.
	Gemv(a []float64, lda, rows, cols int, x, y []float64)
	// GemvT accumulates y += aᵀx for the rows x cols panel a.
	GemvT(a []float64, lda, rows, cols int, x, y []float64)
	// Ger applies the rank-1 update a += alpha * x * yᵀ to the panel a.
	Ger(a []float64, lda, rows, cols int, alpha float64, x, y []float64)
	// Dot returns the inner product of two equal-length vectors.
	Dot(a, b []float64) float64
	// Axpy computes y += alpha*x.
	Axpy(alpha float64, x, y []float64)
}

// Op names a kernel operation class for dispatch decisions.
type Op int

// Kernel operation classes consulted by Choose.
const (
	OpGemm Op = iota
	OpTMul
	OpGemv
	OpGemvT
	OpGer
	OpDot
	OpAxpy
)

// BackendMode selects how Choose dispatches between backends.
type BackendMode int32

// Backend selection modes. ModeAuto consults the installed Crossover
// (measured by cluster microbenchmarks) and falls back to the reference
// backend when no measurement has been installed.
const (
	ModeAuto BackendMode = iota
	ModeReference
	ModeBlocked
)

var backendMode atomic.Int32

// SetBackendMode sets the process-wide kernel dispatch mode.
func SetBackendMode(m BackendMode) { backendMode.Store(int32(m)) }

// Mode returns the current kernel dispatch mode.
func Mode() BackendMode { return BackendMode(backendMode.Load()) }

// Crossover holds measured dispatch thresholds in flops: at or above
// the threshold the blocked backend wins, below it the reference
// backend does. Thresholds come from cluster.RunMicrobenchmarks GEMM
// shape probes, not from hardcoded constants. A +Inf threshold means
// the blocked backend never won the probes for that op class.
type Crossover struct {
	// GemmFlops gates OpGemm/OpTMul on 2*m*k*n flops.
	GemmFlops float64
	// GemvFlops gates OpGemv/OpGemvT/OpGer on 2*rows*cols flops.
	GemvFlops float64
	// VecFlops gates OpDot/OpAxpy on 2*len flops.
	VecFlops float64
}

var crossover atomic.Pointer[Crossover]

// InstallCrossover publishes measured dispatch thresholds; ModeAuto
// consults them on every call. Installing replaces any previous table.
func InstallCrossover(c Crossover) { crossover.Store(&c) }

// ClearCrossover removes the measured thresholds, returning ModeAuto to
// its reference fallback.
func ClearCrossover() { crossover.Store(nil) }

// InstalledCrossover returns the current thresholds and whether any are
// installed.
func InstalledCrossover() (Crossover, bool) {
	p := crossover.Load()
	if p == nil {
		return Crossover{}, false
	}
	return *p, true
}

// Reference returns the straight-line reference backend.
func Reference() Backend { return refBackend }

// Blocked returns the register-blocked parallel backend.
func Blocked() Backend { return blkBackend }

// Choose returns the backend to run op on an m x k x n shaped problem
// (vector ops pass their length as m with k = n = 1). In ModeAuto with
// no installed crossover — no microbenchmark has run — it returns the
// reference backend: dispatch to the blocked kernels must be earned by
// measurement.
func Choose(op Op, m, k, n int) Backend {
	switch BackendMode(backendMode.Load()) {
	case ModeReference:
		return refBackend
	case ModeBlocked:
		return blkBackend
	}
	c := crossover.Load()
	if c == nil {
		return refBackend
	}
	flops := 2 * float64(m) * float64(k) * float64(n)
	var threshold float64
	switch op {
	case OpGemm, OpTMul:
		threshold = c.GemmFlops
	case OpGemv, OpGemvT, OpGer:
		threshold = c.GemvFlops
	default:
		threshold = c.VecFlops
	}
	if flops >= threshold {
		return blkBackend
	}
	return refBackend
}

// SetKernelParallelism bounds the kernel worker pool to n workers total
// (n-1 helpers beyond the calling goroutine). The keystone facade calls
// this with the engine context's parallelism so kernel fan-out composes
// with the DAG executor's pool instead of oversubscribing it; n <= 0
// restores the GOMAXPROCS default.
func SetKernelParallelism(n int) { kernels.SetHelperBudget(n) }

var (
	refBackend Backend = referenceBackend{}
	blkBackend Backend = blockedBackend{}
)

// referenceBackend is the original straight-line kernel code, verbatim.
// It skips zero multiplicands in GEMM-class loops (a win on one-hot
// feature blocks) where the blocked backend multiplies through — the
// source of the signed-zero caveat in the tolerance table.
type referenceBackend struct{}

func (referenceBackend) Name() string { return "reference" }

func (referenceBackend) Mul(dst, a, b []float64, m, k, n int) {
	for ii := 0; ii < m; ii += gemmBlock {
		iMax := min(ii+gemmBlock, m)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					arow := a[i*k : i*k+k]
					drow := dst[i*n : i*n+n]
					for p := kk; p < kMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := b[p*n : p*n+n]
						for j := jj; j < jMax; j++ {
							drow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

func (referenceBackend) TMul(dst, a, b []float64, r, m, n int) {
	for p := 0; p < r; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst[i*n : i*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func (referenceBackend) Gemv(a []float64, lda, rows, cols int, x, y []float64) {
	for i := 0; i < rows; i++ {
		row := a[i*lda : i*lda+cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

func (referenceBackend) GemvT(a []float64, lda, rows, cols int, x, y []float64) {
	for i := 0; i < rows; i++ {
		xi := x[i]
		row := a[i*lda : i*lda+cols]
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

func (referenceBackend) Ger(a []float64, lda, rows, cols int, alpha float64, x, y []float64) {
	for i := 0; i < rows; i++ {
		s := alpha * x[i]
		row := a[i*lda : i*lda+cols]
		for j, v := range y[:cols] {
			row[j] += s * v
		}
	}
}

func (referenceBackend) Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func (referenceBackend) Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// blockedBackend routes every op to internal/linalg/kernels.
type blockedBackend struct{}

func (blockedBackend) Name() string { return "blocked" }

func (blockedBackend) Mul(dst, a, b []float64, m, k, n int) {
	kernels.Gemm(dst, a, b, m, k, n)
}

func (blockedBackend) TMul(dst, a, b []float64, r, m, n int) {
	kernels.GemmT(dst, a, b, r, m, n)
}

func (blockedBackend) Gemv(a []float64, lda, rows, cols int, x, y []float64) {
	kernels.Gemv(a, lda, rows, cols, x, y)
}

func (blockedBackend) GemvT(a []float64, lda, rows, cols int, x, y []float64) {
	kernels.GemvT(a, lda, rows, cols, x, y)
}

func (blockedBackend) Ger(a []float64, lda, rows, cols int, alpha float64, x, y []float64) {
	kernels.Ger(a, lda, rows, cols, alpha, x, y)
}

func (blockedBackend) Dot(a, b []float64) float64 { return kernels.Dot(a, b) }

func (blockedBackend) Axpy(alpha float64, x, y []float64) { kernels.Axpy(alpha, x, y) }
