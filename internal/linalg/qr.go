package linalg

import (
	"fmt"
	"math"

	"keystoneml/internal/linalg/kernels"
)

// QRFactors holds the thin QR factorization A = Q R of an m x n matrix
// with m >= n: Q is m x n with orthonormal columns and R is n x n upper
// triangular.
type QRFactors struct {
	Q *Matrix
	R *Matrix
}

// QR computes a thin Householder QR factorization of a (m >= n required).
// The input matrix is not modified.
//
// The trailing-panel reflector applications — the PCA/whitening hot
// loop — run as GemvT (projection w = R_panelᵀ v) plus Ger (rank-1
// update R_panel -= v (2w)ᵀ) through the kernel backend registry. Both
// forms accumulate in the same per-element order as the classic
// per-column dot loops, so the factorization is bit-identical across
// backends. All n Householder vectors live in one flat scratch buffer
// (they previously cost one allocation per column).
func QR(a *Matrix) *QRFactors {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: QR requires rows >= cols, got %dx%d", m, n))
	}
	r := a.Clone()
	// Householder vector k has length m-k; lay them out back to back.
	vsData := make([]float64, n*m-n*(n-1)/2)
	vsOff := make([]int, n+1)
	for k := 0; k < n; k++ {
		vsOff[k+1] = vsOff[k] + m - k
	}
	w := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k below the diagonal.
		v := vsData[vsOff[k]:vsOff[k+1]]
		kernels.GatherCol(v, r.Data[k*n:], n, m-k, k)
		b := Choose(OpGemvT, m-k, n-k, 1)
		norm := math.Sqrt(b.Dot(v, v))
		if norm == 0 {
			continue // zero column; identity reflector
		}
		if v[0] >= 0 {
			v[0] += norm
		} else {
			v[0] -= norm
		}
		vnorm := Norm2(v)
		if vnorm > 0 {
			ScaleInPlace(1/vnorm, v)
		}
		// Apply the reflector to the trailing submatrix: R <- (I - 2vvᵀ)R,
		// i.e. w = R_panelᵀ v followed by R_panel -= v (2w)ᵀ.
		panel := r.Data[k*n+k:]
		ww := w[:n-k]
		for j := range ww {
			ww[j] = 0
		}
		b.GemvT(panel, n, m-k, n-k, v, ww)
		for j := range ww {
			ww[j] *= 2
		}
		b.Ger(panel, n, m-k, n-k, -1, v, ww)
	}
	// Accumulate the thin Q by applying reflectors (in reverse) to I_{m x n}.
	q := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vsData[vsOff[k]:vsOff[k+1]]
		panel := q.Data[k*n:]
		ww := w[:n]
		for j := range ww {
			ww[j] = 0
		}
		b := Choose(OpGemvT, m-k, n, 1)
		b.GemvT(panel, n, m-k, n, v, ww)
		for j := range ww {
			ww[j] *= 2
		}
		b.Ger(panel, n, m-k, n, -1, v, ww)
	}
	// Extract the upper-triangular n x n block of R, zeroing round-off below
	// the diagonal.
	rr := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.Set(i, j, r.At(i, j))
		}
	}
	return &QRFactors{Q: q, R: rr}
}

// SolveUpperTriangular solves R x = b for upper-triangular R by back
// substitution. Singular (zero) diagonal entries produce zero solution
// components, matching the minimum-norm convention used by the solvers.
func SolveUpperTriangular(r *Matrix, b []float64) []float64 {
	n := r.Rows
	if r.Cols != n || len(b) != n {
		panic(fmt.Sprintf("linalg: SolveUpperTriangular wants square R and matching b, got %dx%d, len(b)=%d", r.Rows, r.Cols, len(b)))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if d := row[i]; d != 0 {
			x[i] = s / d
		}
	}
	return x
}

// SolveUpperTriangularMatrix solves R X = B column-by-column.
func SolveUpperTriangularMatrix(r, b *Matrix) *Matrix {
	if r.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: triangular solve shape mismatch R %dx%d, B %dx%d", r.Rows, r.Cols, b.Rows, b.Cols))
	}
	x := NewMatrix(r.Cols, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		b.ColInto(col, j)
		sol := SolveUpperTriangular(r, col)
		kernels.ScatterCol(x.Data, sol, x.Cols, x.Rows, j)
	}
	return x
}

// LeastSquaresQR solves min_X ||A X - B||_F via thin QR: X = R⁻¹ Qᵀ B.
// This is the "Local QR / Exact" solver primitive from Table 1.
func LeastSquaresQR(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: least squares row mismatch A %dx%d, B %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	f := QR(a)
	qtb := f.Q.TMul(b) // n x k
	return SolveUpperTriangularMatrix(f.R, qtb)
}

// CholeskySolve solves the symmetric positive definite system S X = B via
// Cholesky factorization. Used for normal-equation solves (AᵀA + λI) X = AᵀB.
// It returns an error-free solution; a non-positive pivot panics, so callers
// should regularize first.
func CholeskySolve(s, b *Matrix) *Matrix {
	n := s.Rows
	if s.Cols != n || b.Rows != n {
		panic(fmt.Sprintf("linalg: CholeskySolve wants square S matching B, got %dx%d, B %dx%d", s.Rows, s.Cols, b.Rows, b.Cols))
	}
	// Lower-triangular factor L with S = L Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := s.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					panic(fmt.Sprintf("linalg: CholeskySolve non-PD pivot %g at %d", sum, i))
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Solve L Y = B (forward), then Lᵀ X = Y (backward), per column.
	x := NewMatrix(n, b.Cols)
	y := make([]float64, n)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			sum := b.At(i, c)
			for k := 0; k < i; k++ {
				sum -= l.At(i, k) * y[k]
			}
			y[i] = sum / l.At(i, i)
		}
		for i := n - 1; i >= 0; i-- {
			sum := y[i]
			for k := i + 1; k < n; k++ {
				sum -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, sum/l.At(i, i))
		}
	}
	return x
}
