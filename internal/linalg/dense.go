// Package linalg provides the dense and sparse linear algebra substrate
// used by every KeystoneML-Go operator: row-major dense matrices, blocked
// GEMM, Householder QR, Jacobi SVD, randomized truncated SVD, symmetric
// eigendecomposition, and a radix-2 FFT.
//
// The package is pure Go (stdlib only). It replaces the OpenBLAS dependency
// of the original KeystoneML system; asymptotics match the cost models in
// the paper's Table 1 even though absolute constants differ.
package linalg

import (
	"fmt"
	"math"

	"keystoneml/internal/linalg/kernels"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Data is laid out so that element
// (i, j) lives at Data[i*Cols+j]; Row returns a slice aliasing the backing
// array, which makes per-row operators allocation-free.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows, copying the data.
// All rows must have equal length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Col extracts column j into a newly allocated slice. Hot loops should
// prefer ColInto with a reused scratch buffer.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	kernels.GatherCol(out, m.Data, m.Cols, m.Rows, j)
	return out
}

// ColInto copies column j into dst, which must have length Rows. It is
// the allocation-free variant of Col for per-iteration column access.
func (m *Matrix) ColInto(dst []float64, j int) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: ColInto length %d != rows %d", len(dst), m.Rows))
	}
	kernels.GatherCol(dst, m.Data, m.Cols, m.Rows, j)
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add accumulates o into m element-wise in place and returns m.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.checkSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return m
}

// Sub subtracts o from m element-wise in place and returns m.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.checkSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
	return m
}

func (m *Matrix) checkSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// MulVec computes m * x for a column vector x. Dispatches through the
// kernel backend registry (see Choose).
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec length %d != cols %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	Choose(OpGemv, m.Rows, m.Cols, 1).Gemv(m.Data, m.Cols, m.Rows, m.Cols, x, out)
	return out
}

// TMulVec computes mᵀ * x for a column vector x of length Rows.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: TMulVec length %d != rows %d", len(x), m.Rows))
	}
	out := make([]float64, m.Cols)
	Choose(OpGemvT, m.Rows, m.Cols, 1).GemvT(m.Data, m.Cols, m.Rows, m.Cols, x, out)
	return out
}

// gemmBlock is the cache-blocking tile edge used by the reference GEMM.
// 64 keeps three float64 tiles comfortably inside a typical 256 KiB L2
// slice.
const gemmBlock = 64

// Mul computes the matrix product m * o. The kernel implementation is
// picked per call by the backend registry: the reference blocked i-k-j
// loop, or the packed register-blocked parallel GEMM (see Choose).
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul inner dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	Choose(OpGemm, m.Rows, m.Cols, o.Cols).Mul(out.Data, m.Data, o.Data, m.Rows, m.Cols, o.Cols)
	return out
}

// TMul computes mᵀ * o without materializing the transpose.
// The result is Cols(m) x Cols(o). This is the core primitive of the
// normal-equations path in the exact solver (AᵀA, AᵀB).
func (m *Matrix) TMul(o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("linalg: TMul row mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Cols, o.Cols)
	Choose(OpTMul, m.Rows, m.Cols, o.Cols).TMul(out.Data, m.Data, o.Data, m.Rows, m.Cols, o.Cols)
	return out
}

// FrobeniusNorm returns the Frobenius norm sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ColMeans returns the per-column mean of the matrix.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// CenterColumns subtracts the column means in place and returns the means.
func (m *Matrix) CenterColumns() []float64 {
	means := m.ColMeans()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// SliceRows returns a copy of rows [from, to).
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("linalg: SliceRows [%d,%d) out of range for %d rows", from, to, m.Rows))
	}
	out := NewMatrix(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// SliceCols returns a copy of columns [from, to).
func (m *Matrix) SliceCols(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("linalg: SliceCols [%d,%d) out of range for %d cols", from, to, m.Cols))
	}
	out := NewMatrix(m.Rows, to-from)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out
}

// VStack stacks matrices vertically; all inputs must share a column count.
func VStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return NewMatrix(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("linalg: VStack column mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := NewMatrix(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out
}

// HStack concatenates matrices horizontally; all inputs must share a row count.
func HStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return NewMatrix(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("linalg: HStack row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with v on the diagonal.
func Diag(v []float64) *Matrix {
	m := NewMatrix(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}

// Equal reports whether two matrices have the same shape and all elements
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
