package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 Cooley-Tukey fast Fourier transform of
// x, whose length must be a power of two. The transform is unnormalized;
// IFFT applies the 1/n factor.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("linalg: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the inverse FFT of x in place (length must be a power of
// two), including the 1/n normalization.
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT2D computes the 2-D FFT of a matrix of complex values stored row-major
// with the given dimensions (both powers of two), in place: rows first,
// then columns.
func FFT2D(data []complex128, rows, cols int, inverse bool) {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: FFT2D data length %d != %d*%d", len(data), rows, cols))
	}
	op := FFT
	if inverse {
		op = IFFT
	}
	for r := 0; r < rows; r++ {
		op(data[r*cols : (r+1)*cols])
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = data[r*cols+c]
		}
		op(col)
		for r := 0; r < rows; r++ {
			data[r*cols+c] = col[r]
		}
	}
}
