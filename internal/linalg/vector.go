package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of two equal-length dense vectors,
// dispatched through the kernel backend registry.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return Choose(OpDot, len(a), 1, 1).Dot(a, b)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// AxpyInPlace computes y += alpha*x in place, dispatched through the
// kernel backend registry.
func AxpyInPlace(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	Choose(OpAxpy, len(x), 1, 1).Axpy(alpha, x, y)
}

// ScaleInPlace multiplies v by alpha in place.
func ScaleInPlace(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Normalize scales v to unit L2 norm in place; zero vectors are left alone.
// It returns the original norm.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n > 0 {
		ScaleInPlace(1/n, v)
	}
	return n
}

// ArgMax returns the index of the largest value in v, or -1 for empty input.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bestV := 0, v[0]
	for i, x := range v[1:] {
		if x > bestV {
			best, bestV = i+1, x
		}
	}
	return best
}

// TopK returns the indices of the k largest values of v in descending
// order. k is clamped to len(v). The selection is O(n*k) which is fine for
// the small k (top-5 classification) used by the pipelines.
func TopK(v []float64, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, 0, k)
	used := make([]bool, len(v))
	for n := 0; n < k; n++ {
		best := -1
		bestV := math.Inf(-1)
		for i, x := range v {
			if !used[i] && x > bestV {
				best, bestV = i, x
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}

// Clone returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the population variance of v, or 0 for empty input.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}
