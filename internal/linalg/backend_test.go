package linalg

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// withMode runs fn under the given dispatch mode, restoring the prior
// mode and crossover table afterwards.
func withMode(t *testing.T, mode BackendMode, fn func()) {
	t.Helper()
	prevMode := Mode()
	prevCross, hadCross := InstalledCrossover()
	defer func() {
		SetBackendMode(prevMode)
		if hadCross {
			InstallCrossover(prevCross)
		} else {
			ClearCrossover()
		}
	}()
	SetBackendMode(mode)
	fn()
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// sameBits requires exact float64 equality (±0 compare equal under !=,
// which is the documented signed-zero allowance).
func sameBits(t *testing.T, ctx string, a, b *Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", ctx, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: elem %d differs: %v vs %v", ctx, i, a.Data[i], b.Data[i])
		}
	}
}

// TestCrossBackendEquivalence pins the Contract 5 tolerance table for
// float64: blocked and reference backends produce identical results for
// every op over random shapes including degenerate 0- and 1-dim cases.
func TestCrossBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{0, 0, 0}, {0, 3, 2}, {1, 1, 1}, {1, 5, 1}, {3, 1, 4},
		{4, 4, 4}, {5, 7, 3}, {17, 9, 13}, {33, 32, 31}, {64, 20, 48},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		at := randMatrix(rng, k, m) // for TMul: aᵀt has k rows
		x := make([]float64, k)
		xr := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range xr {
			xr[i] = rng.NormFloat64()
		}
		var refMul, blkMul, refT, blkT *Matrix
		var refMV, blkMV, refTV, blkTV []float64
		withMode(t, ModeReference, func() {
			refMul = a.Mul(b)
			refT = at.TMul(b)
			refMV = a.MulVec(x)
			refTV = a.TMulVec(xr)
		})
		withMode(t, ModeBlocked, func() {
			blkMul = a.Mul(b)
			blkT = at.TMul(b)
			blkMV = a.MulVec(x)
			blkTV = a.TMulVec(xr)
		})
		sameBits(t, "Mul", refMul, blkMul)
		sameBits(t, "TMul", refT, blkT)
		for i := range refMV {
			if refMV[i] != blkMV[i] {
				t.Fatalf("MulVec %v: elem %d differs", sh, i)
			}
		}
		for i := range refTV {
			if refTV[i] != blkTV[i] {
				t.Fatalf("TMulVec %v: elem %d differs", sh, i)
			}
		}
	}
}

// TestCrossBackendQRSVD pins factorization-level equivalence: QR, least
// squares, and truncated SVD are bit-identical across backends.
func TestCrossBackendQRSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {16, 16}, {60, 12}, {33, 7}} {
		m, n := sh[0], sh[1]
		a := randMatrix(rng, m, n)
		bmat := randMatrix(rng, m, 3)
		var refQ, refR, refX, blkQ, blkR, blkX *Matrix
		var refS, blkS []float64
		withMode(t, ModeReference, func() {
			f := QR(a)
			refQ, refR = f.Q, f.R
			refX = LeastSquaresQR(a, bmat)
			sf := TruncatedSVD(a, minInt(3, n), 1, NewRNG(9))
			refS = sf.S
		})
		withMode(t, ModeBlocked, func() {
			f := QR(a)
			blkQ, blkR = f.Q, f.R
			blkX = LeastSquaresQR(a, bmat)
			sf := TruncatedSVD(a, minInt(3, n), 1, NewRNG(9))
			blkS = sf.S
		})
		sameBits(t, "QR.Q", refQ, blkQ)
		sameBits(t, "QR.R", refR, blkR)
		sameBits(t, "LeastSquaresQR", refX, blkX)
		for i := range refS {
			if refS[i] != blkS[i] {
				t.Fatalf("TruncatedSVD %v: singular value %d differs: %v vs %v", sh, i, refS[i], blkS[i])
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestChooseFallsBackToReference pins the dispatch rule: in ModeAuto
// with no microbenchmark-derived crossover installed, every op routes
// to the reference backend no matter the shape.
func TestChooseFallsBackToReference(t *testing.T) {
	withMode(t, ModeAuto, func() {
		ClearCrossover()
		for _, op := range []Op{OpGemm, OpTMul, OpGemv, OpGemvT, OpGer, OpDot, OpAxpy} {
			if got := Choose(op, 4096, 4096, 4096).Name(); got != "reference" {
				t.Fatalf("Choose(op %d) with no crossover = %q, want reference", op, got)
			}
		}
		InstallCrossover(Crossover{GemmFlops: 1e6, GemvFlops: 1e5, VecFlops: 1e4})
		if got := Choose(OpGemm, 256, 256, 256).Name(); got != "blocked" {
			t.Fatalf("Choose(OpGemm, large) above threshold = %q, want blocked", got)
		}
		if got := Choose(OpGemm, 4, 4, 4).Name(); got != "reference" {
			t.Fatalf("Choose(OpGemm, small) below threshold = %q, want reference", got)
		}
	})
}

// TestParallelGemmRace exercises the blocked parallel GEMM from many
// goroutines at GOMAXPROCS 1 and 4; run with -race this pins that tile
// fan-out never writes overlapping output regions.
func TestParallelGemmRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 70, 40)
	b := randMatrix(rng, 40, 50)
	var want *Matrix
	withMode(t, ModeReference, func() { want = a.Mul(b) })
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := NewMatrix(a.Rows, b.Cols)
				Blocked().Mul(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
				for i := range out.Data {
					if out.Data[i] != want.Data[i] {
						errs <- "blocked GEMM result diverged under concurrency"
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("GOMAXPROCS=%d: %s", procs, e)
		}
	}
}

// BenchmarkQRTall tracks the QR hot path on a tall-skinny matrix (the
// TSQR per-partition shape). Run with -benchmem: the flat Householder
// scratch keeps allocations per op constant instead of linear in cols.
func BenchmarkQRTall(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 512, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = QR(a)
	}
}
