package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSparseVectorConstruction(t *testing.T) {
	// Unsorted input with a duplicate index that must be merged.
	sv := NewSparseVector(10, []int{5, 1, 5}, []float64{2, 3, 4})
	if sv.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", sv.NNZ())
	}
	if sv.At(1) != 3 || sv.At(5) != 6 || sv.At(0) != 0 {
		t.Errorf("values wrong: At(1)=%g At(5)=%g At(0)=%g", sv.At(1), sv.At(5), sv.At(0))
	}
	// Entries that cancel to zero are dropped.
	z := NewSparseVector(4, []int{2, 2}, []float64{1, -1})
	if z.NNZ() != 0 {
		t.Errorf("cancelled entry kept: NNZ = %d", z.NNZ())
	}
}

func TestSparseVectorDense(t *testing.T) {
	sv := NewSparseVector(5, []int{0, 4}, []float64{1.5, -2})
	d := sv.Dense()
	want := []float64{1.5, 0, 0, 0, -2}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Dense[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

func TestSparseVectorDotAndAxpy(t *testing.T) {
	sv := NewSparseVector(4, []int{1, 3}, []float64{2, 5})
	d := []float64{10, 20, 30, 40}
	if got := sv.DotDense(d); got != 2*20+5*40 {
		t.Errorf("DotDense = %g", got)
	}
	acc := make([]float64, 4)
	sv.AddScaledTo(2, acc)
	if acc[1] != 4 || acc[3] != 10 || acc[0] != 0 {
		t.Errorf("AddScaledTo = %v", acc)
	}
}

func TestSparseVectorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	NewSparseVector(3, []int{3}, []float64{1})
}

func TestSparseMatrixAgainstDense(t *testing.T) {
	rng := NewRNG(21)
	rows := make([]*SparseVector, 12)
	for i := range rows {
		nnz := rng.Intn(6)
		idx := make([]int, 0, nnz)
		val := make([]float64, 0, nnz)
		seen := map[int]bool{}
		for len(idx) < nnz {
			j := rng.Intn(9)
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
				val = append(val, rng.Gaussian())
			}
		}
		rows[i] = NewSparseVector(9, idx, val)
	}
	sm := NewSparseMatrixFromRows(rows)
	dm := sm.Dense()
	x := NewRNG(22).GaussianVector(9)
	y := NewRNG(22).GaussianVector(12)

	sv := sm.MulVec(x)
	dv := dm.MulVec(x)
	for i := range sv {
		if math.Abs(sv[i]-dv[i]) > 1e-10 {
			t.Fatalf("MulVec mismatch at %d: %g vs %g", i, sv[i], dv[i])
		}
	}
	st := sm.TMulVec(y)
	dt := dm.TMulVec(y)
	for i := range st {
		if math.Abs(st[i]-dt[i]) > 1e-10 {
			t.Fatalf("TMulVec mismatch at %d: %g vs %g", i, st[i], dt[i])
		}
	}
	o := NewRNG(23).GaussianMatrix(9, 4)
	if !Equal(sm.MulDense(o), dm.Mul(o), 1e-10) {
		t.Error("MulDense mismatch with dense path")
	}
}

func TestSparseMatrixDensity(t *testing.T) {
	rows := []*SparseVector{
		NewSparseVector(4, []int{0}, []float64{1}),
		NewSparseVector(4, []int{1, 2}, []float64{1, 1}),
	}
	sm := NewSparseMatrixFromRows(rows)
	if got := sm.Density(); math.Abs(got-3.0/8.0) > 1e-15 {
		t.Errorf("Density = %g, want 0.375", got)
	}
}

// Property (testing/quick): sparse dot == dense dot for random vectors.
func TestSparseDotMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		dim := 1 + rng.Intn(30)
		nnz := rng.Intn(dim + 1)
		idx := rng.Perm(dim)[:nnz]
		val := rng.GaussianVector(nnz)
		sv := NewSparseVector(dim, idx, val)
		d := rng.GaussianVector(dim)
		return math.Abs(sv.DotDense(d)-Dot(sv.Dense(), d)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := NewRNG(31)
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Gaussian(), rng.Gaussian())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if math.Abs(real(x[i])-real(orig[i])) > 1e-9 || math.Abs(imag(x[i])-imag(orig[i])) > 1e-9 {
				t.Fatalf("n=%d: FFT round trip failed at %d", n, i)
			}
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := NewRNG(32)
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Gaussian(), 0)
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			want[k] += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
	}
	FFT(x)
	for k := 0; k < n; k++ {
		if math.Abs(real(x[k])-real(want[k])) > 1e-9 || math.Abs(imag(x[k])-imag(want[k])) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, want %v", k, x[k], want[k])
		}
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := NewRNG(33)
	rows, cols := 8, 16
	data := make([]complex128, rows*cols)
	orig := make([]complex128, rows*cols)
	for i := range data {
		data[i] = complex(rng.Gaussian(), 0)
		orig[i] = data[i]
	}
	FFT2D(data, rows, cols, false)
	FFT2D(data, rows, cols, true)
	for i := range data {
		if math.Abs(real(data[i])-real(orig[i])) > 1e-9 {
			t.Fatalf("FFT2D round trip failed at %d", i)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 16: 16, 17: 32, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(5).Uint64() == NewRNG(6).Uint64() {
		t.Error("different seeds produced identical first values")
	}
}

func TestRNGGaussianMoments(t *testing.T) {
	rng := NewRNG(77)
	n := 20000
	v := rng.GaussianVector(n)
	if m := Mean(v); math.Abs(m) > 0.05 {
		t.Errorf("gaussian mean = %g, want ~0", m)
	}
	if s := Variance(v); math.Abs(s-1) > 0.05 {
		t.Errorf("gaussian variance = %g, want ~1", s)
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(8).Perm(50)
	seen := make([]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[x] = true
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("ArgMax = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
	top := TopK([]float64{5, 1, 9, 7}, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 3 {
		t.Errorf("TopK = %v", top)
	}
	v := []float64{3, 4}
	if n := Normalize(v); math.Abs(n-5) > 1e-12 || math.Abs(Norm2(v)-1) > 1e-12 {
		t.Errorf("Normalize: norm=%g, post=%g", n, Norm2(v))
	}
	z := []float64{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 {
		t.Error("Normalize modified zero vector")
	}
}
