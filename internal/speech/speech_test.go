package speech

import (
	"math"
	"testing"

	"keystoneml/internal/linalg"
)

func TestRandomFeaturesShape(t *testing.T) {
	rf := NewRandomFeatures(10, 64, 0.5, 1)
	out := rf.Apply(make([]float64, 10)).([]float64)
	if len(out) != 64 {
		t.Fatalf("output dim = %d, want 64", len(out))
	}
}

func TestRandomFeaturesDeterministic(t *testing.T) {
	a := NewRandomFeatures(5, 32, 1.0, 7)
	b := NewRandomFeatures(5, 32, 1.0, 7)
	x := []float64{1, 2, 3, 4, 5}
	za := a.Apply(x).([]float64)
	zb := b.Apply(x).([]float64)
	for i := range za {
		if za[i] != zb[i] {
			t.Fatal("same seed gave different feature maps")
		}
	}
	c := NewRandomFeatures(5, 32, 1.0, 8)
	zc := c.Apply(x).([]float64)
	same := true
	for i := range za {
		if za[i] != zc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical maps")
	}
}

func TestRandomFeaturesApproximateRBFKernel(t *testing.T) {
	// z(x)·z(y) must approximate exp(-γ||x-y||²) — the Rahimi-Recht
	// guarantee, with error O(1/sqrt(D)).
	gamma := 0.3
	rf := NewRandomFeatures(6, 4096, gamma, 3)
	rng := linalg.NewRNG(4)
	var maxErr float64
	for trial := 0; trial < 20; trial++ {
		x := rng.GaussianVector(6)
		y := rng.GaussianVector(6)
		exact := Kernel(x, y, gamma)
		approx := rf.ApproxKernel(x, y)
		if e := math.Abs(exact - approx); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.08 {
		t.Errorf("kernel approximation error %.3f > 0.08 at D=4096", maxErr)
	}
}

func TestRandomFeaturesBounded(t *testing.T) {
	rf := NewRandomFeatures(4, 100, 1.0, 5)
	rng := linalg.NewRNG(6)
	bound := math.Sqrt(2.0/100.0) + 1e-12
	for trial := 0; trial < 10; trial++ {
		z := rf.Apply(rng.GaussianVector(4)).([]float64)
		for _, v := range z {
			if math.Abs(v) > bound {
				t.Fatalf("feature %g exceeds bound %g", v, bound)
			}
		}
	}
}

func TestRandomFeaturesDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRandomFeatures(4, 8, 1, 1).Apply(make([]float64, 5))
}
