package speech

import (
	"bytes"
	"encoding/gob"

	"keystoneml/internal/core"
	"keystoneml/internal/linalg"
)

// randomFeaturesState is the gob payload behind RandomFeatures'
// StateCodec. Scale is carried explicitly rather than rederived from
// W.Rows so loaded state matches the trained operator bit for bit even
// if the construction formula ever changes.
type randomFeaturesState struct {
	W     *linalg.Matrix
	B     []float64
	Scale float64
}

// StateKind implements core.StateCodec.
func (r *RandomFeatures) StateKind() string { return "speech.randomfeatures" }

// EncodeState implements core.StateCodec.
func (r *RandomFeatures) EncodeState() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(randomFeaturesState{W: r.W, B: r.B, Scale: r.scale})
	return buf.Bytes(), err
}

func init() {
	core.RegisterStateDecoder("speech.randomfeatures", func(state []byte) (core.TransformOp, error) {
		var s randomFeaturesState
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
			return nil, err
		}
		return &RandomFeatures{W: s.W, B: s.B, scale: s.Scale}, nil
	})
}
