// Package speech implements the kernel-approximation featurizers of the
// paper's TIMIT pipeline: random Fourier (cosine) features in the style of
// Rahimi & Recht, which turn a kernel SVM into a linear solve over an
// explicit randomized feature map.
package speech

import (
	"fmt"
	"math"

	"keystoneml/internal/core"
	"keystoneml/internal/linalg"
)

// RandomFeatures is a TransformOp mapping a d-dimensional input vector to
// D random cosine features approximating an RBF kernel of bandwidth
// Gamma: z_i(x) = sqrt(2/D) * cos(w_i·x + b_i) with w ~ N(0, 2γ I),
// b ~ U[0, 2π).
type RandomFeatures struct {
	W     *linalg.Matrix // D x d projection
	B     []float64      // D phases
	scale float64
}

// NewRandomFeatures draws a deterministic random feature map.
func NewRandomFeatures(inputDim, numFeatures int, gamma float64, seed uint64) *RandomFeatures {
	if inputDim <= 0 || numFeatures <= 0 {
		panic(fmt.Sprintf("speech: invalid random feature dims %d -> %d", inputDim, numFeatures))
	}
	rng := linalg.NewRNG(seed + 991)
	w := rng.GaussianMatrix(numFeatures, inputDim)
	sd := math.Sqrt(2 * gamma)
	for i := range w.Data {
		w.Data[i] *= sd
	}
	b := make([]float64, numFeatures)
	for i := range b {
		b[i] = 2 * math.Pi * rng.Float64()
	}
	return &RandomFeatures{W: w, B: b, scale: math.Sqrt(2 / float64(numFeatures))}
}

// Name implements core.TransformOp.
func (r *RandomFeatures) Name() string { return "speech.randomfeatures" }

// Apply implements core.TransformOp.
func (r *RandomFeatures) Apply(in any) any {
	x, ok := in.([]float64)
	if !ok {
		panic(fmt.Sprintf("speech: expected []float64, got %T", in))
	}
	if len(x) != r.W.Cols {
		panic(fmt.Sprintf("speech: input dim %d, map expects %d", len(x), r.W.Cols))
	}
	out := make([]float64, r.W.Rows)
	for i := range out {
		out[i] = r.scale * math.Cos(linalg.Dot(r.W.Row(i), x)+r.B[i])
	}
	return out
}

// NewRandomFeaturesOp wraps the map as a typed pipeline operator.
func NewRandomFeaturesOp(inputDim, numFeatures int, gamma float64, seed uint64) core.Op[[]float64, []float64] {
	return core.NewOp[[]float64, []float64](NewRandomFeatures(inputDim, numFeatures, gamma, seed))
}

// Kernel returns the RBF kernel value exp(-γ||x-y||²) that the random
// feature map approximates; exported for the approximation-quality tests.
func Kernel(x, y []float64, gamma float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Exp(-gamma * s)
}

// ApproxKernel returns the random-feature inner product z(x)·z(y).
func (r *RandomFeatures) ApproxKernel(x, y []float64) float64 {
	zx := r.Apply(x).([]float64)
	zy := r.Apply(y).([]float64)
	return linalg.Dot(zx, zy)
}
