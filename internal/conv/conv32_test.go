package conv

import (
	"math"
	"testing"

	"keystoneml/internal/cost"
	"keystoneml/internal/linalg"
)

// TestBLAS32MatchesDirect pins the documented float32 tolerance: the
// single-precision path agrees with the float64 oracle to relative
// ~1e-6 (scaled by the accumulation depth), never bit-exactly.
func TestBLAS32MatchesDirect(t *testing.T) {
	im := randomImage(21, 20, 16, 3)
	fb := RandomFilterBank(5, 3, 4, linalg.NewRNG(22))
	want := Direct{}.Convolve(im, fb)
	got := BLAS32{}.Convolve(im, fb)
	if got.Width != want.Width || got.Height != want.Height || got.Channels != want.Channels {
		t.Fatalf("shape %dx%dx%d, want %dx%dx%d",
			got.Width, got.Height, got.Channels, want.Width, want.Height, want.Channels)
	}
	// cols = d*k*k accumulation steps, each contributing up to one
	// float32 ulp of the running magnitude.
	var maxAbs float64
	for _, v := range want.Pix {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 1e-6 * float64(3*5*5) * math.Max(maxAbs, 1)
	for i := range want.Pix {
		if math.Abs(want.Pix[i]-got.Pix[i]) > tol {
			t.Fatalf("pixel %d: blas32 %g vs direct %g (tol %g)",
				i, got.Pix[i], want.Pix[i], tol)
		}
	}
}

// TestBLAS32PoolReuse exercises the scratch pool across differently
// shaped calls: stale contents from a larger lease must never leak
// into a smaller one.
func TestBLAS32PoolReuse(t *testing.T) {
	big := randomImage(31, 24, 24, 3)
	small := randomImage(32, 10, 10, 2)
	fbBig := RandomFilterBank(5, 3, 4, linalg.NewRNG(33))
	fbSmall := RandomFilterBank(3, 2, 2, linalg.NewRNG(34))
	BLAS32{}.Convolve(big, fbBig) // populate pool with large buffers
	want := Direct{}.Convolve(small, fbSmall)
	got := BLAS32{}.Convolve(small, fbSmall)
	if !imagesClose(want, got, 1e-4) {
		t.Error("pooled scratch leaked stale data into a smaller convolution")
	}
}

// TestFloat32IsOptIn pins the accuracy contract: the lossy strategy is
// absent from the default option set and appears only when the caller
// sets Float32.
func TestFloat32IsOptIn(t *testing.T) {
	bank := RandomFilterBank(3, 1, 2, linalg.NewRNG(40))
	names := func(opts []cost.Option) map[string]bool {
		m := map[string]bool{}
		for _, o := range opts {
			m[o.Model.Name()] = true
		}
		return m
	}
	if names((&Convolver{Bank: bank}).Options())["conv.blas32"] {
		t.Error("blas32 offered without opt-in")
	}
	opted := names((&Convolver{Bank: bank, Float32: true}).Options())
	if !opted["conv.blas32"] {
		t.Error("blas32 missing after opt-in")
	}
}
