package conv

import (
	"math"
	"testing"
	"testing/quick"

	"keystoneml/internal/cluster"
	"keystoneml/internal/cost"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
)

func randomImage(seed uint64, w, h, c int) *image.Image {
	rng := linalg.NewRNG(seed)
	im := image.New(w, h, c)
	for i := range im.Pix {
		im.Pix[i] = rng.Gaussian()
	}
	return im
}

func imagesClose(a, b *image.Image, tol float64) bool {
	if a.Width != b.Width || a.Height != b.Height || a.Channels != b.Channels {
		return false
	}
	for i := range a.Pix {
		if math.Abs(a.Pix[i]-b.Pix[i]) > tol {
			return false
		}
	}
	return true
}

func TestBLASMatchesDirect(t *testing.T) {
	im := randomImage(1, 20, 16, 3)
	fb := RandomFilterBank(5, 3, 4, linalg.NewRNG(2))
	want := Direct{}.Convolve(im, fb)
	got := BLAS{}.Convolve(im, fb)
	if !imagesClose(want, got, 1e-9) {
		t.Error("BLAS convolution differs from direct")
	}
	if got.Width != 16 || got.Height != 12 || got.Channels != 4 {
		t.Errorf("output shape %v", got)
	}
}

func TestFFTMatchesDirect(t *testing.T) {
	im := randomImage(3, 24, 24, 2)
	fb := RandomFilterBank(7, 2, 3, linalg.NewRNG(4))
	want := Direct{}.Convolve(im, fb)
	got := FFT{}.Convolve(im, fb)
	if !imagesClose(want, got, 1e-8) {
		t.Error("FFT convolution differs from direct")
	}
}

func TestSeparableMatchesDirect(t *testing.T) {
	im := randomImage(5, 18, 18, 3)
	fb := SeparableFilterBank(4, 3, 5, linalg.NewRNG(6))
	if !fb.IsSeparable() {
		t.Fatal("SeparableFilterBank produced non-separable filters")
	}
	want := Direct{}.Convolve(im, fb)
	got := Separable{}.Convolve(im, fb)
	if !imagesClose(want, got, 1e-8) {
		t.Error("separable convolution differs from direct")
	}
}

func TestRandomBankNotSeparable(t *testing.T) {
	fb := RandomFilterBank(5, 1, 2, linalg.NewRNG(7))
	if fb.IsSeparable() {
		t.Error("random 5x5 filters reported separable")
	}
}

func TestSeparablePanicsOnNonSeparable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	im := randomImage(8, 10, 10, 1)
	fb := RandomFilterBank(3, 1, 1, linalg.NewRNG(9))
	Separable{}.Convolve(im, fb)
}

func TestConvolverOptions(t *testing.T) {
	sep := &Convolver{Bank: SeparableFilterBank(3, 1, 2, linalg.NewRNG(10))}
	if got := len(sep.Options()); got != 3 {
		t.Errorf("separable bank options = %d, want 3", got)
	}
	nonsep := &Convolver{Bank: RandomFilterBank(3, 1, 2, linalg.NewRNG(11))}
	if got := len(nonsep.Options()); got != 2 {
		t.Errorf("non-separable bank options = %d, want 2 (no separable strategy)", got)
	}
}

func TestCostSmallKFavorsBLAS(t *testing.T) {
	// Figure 7: for small k BLAS wins.
	fb := SeparableFilterBank(2, 3, 50, linalg.NewRNG(12))
	c := &Convolver{Bank: fb}
	stats := cost.DataStats{N: 1, Dim: 256 * 256 * 3, Sparsity: 1}
	opts := c.Options()
	idx := cost.Choose(opts, stats, cluster.R3_4XLarge(1))
	if name := opts[idx].Model.Name(); name != "conv.blas" {
		t.Errorf("k=2 choice = %s, want conv.blas", name)
	}
}

func TestCostLargeKAvoidsBLAS(t *testing.T) {
	// Figure 7: for large k the k² term makes BLAS the wrong choice.
	fb := RandomFilterBank(30, 3, 50, linalg.NewRNG(13))
	c := &Convolver{Bank: fb}
	stats := cost.DataStats{N: 1, Dim: 256 * 256 * 3, Sparsity: 1}
	opts := c.Options()
	idx := cost.Choose(opts, stats, cluster.R3_4XLarge(1))
	if name := opts[idx].Model.Name(); name == "conv.blas" {
		t.Error("k=30 choice = conv.blas, want FFT")
	}
}

func TestCostSeparableLargeKFavorsSeparable(t *testing.T) {
	// With separable filters and moderate k, the matrix-vector scheme wins
	// over BLAS.
	fb := SeparableFilterBank(20, 3, 50, linalg.NewRNG(14))
	c := &Convolver{Bank: fb}
	stats := cost.DataStats{N: 1, Dim: 256 * 256 * 3, Sparsity: 1}
	opts := c.Options()
	idx := cost.Choose(opts, stats, cluster.R3_4XLarge(1))
	if name := opts[idx].Model.Name(); name != "conv.separable" {
		t.Errorf("separable k=20 choice = %s, want conv.separable", name)
	}
}

func TestConvolverApplyDefault(t *testing.T) {
	fb := RandomFilterBank(3, 1, 2, linalg.NewRNG(15))
	c := &Convolver{Bank: fb}
	out := c.Apply(randomImage(16, 8, 8, 1)).(*image.Image)
	if out.Width != 6 || out.Channels != 2 {
		t.Errorf("default apply shape = %v", out)
	}
}

func TestFilterTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Direct{}.Convolve(randomImage(17, 4, 4, 1), RandomFilterBank(6, 1, 1, linalg.NewRNG(18)))
}

// Property (testing/quick): convolution is linear in the image — doubling
// the image doubles the output (BLAS strategy).
func TestConvolutionLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := linalg.NewRNG(seed)
		size := 6 + rng.Intn(8)
		k := 2 + rng.Intn(3)
		im := randomImage(seed, size, size, 1)
		fb := RandomFilterBank(k, 1, 2, rng)
		out1 := BLAS{}.Convolve(im, fb)
		im2 := im.Clone()
		for i := range im2.Pix {
			im2.Pix[i] *= 2
		}
		out2 := BLAS{}.Convolve(im2, fb)
		for i := range out1.Pix {
			if math.Abs(out2.Pix[i]-2*out1.Pix[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
