// Package conv implements the convolution operator with the three
// physical strategies compared in Figure 7 of the KeystoneML paper:
// separable matrix-vector convolution, im2col + GEMM ("BLAS"), and
// FFT-based convolution, plus the cost models that drive strategy choice
// as the filter size k grows.
package conv

import (
	"fmt"
	"math/cmplx"

	"keystoneml/internal/cost"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
)

// FilterBank is a set of b filters of size K x K applied over d input
// channels. Weights[f] is one filter stored channel-planar like images:
// Weights[f][c*K*K + y*K + x]. A convolution of an n x n x d image yields
// an m x m x b image with m = n - K + 1 (valid convolution), each output
// channel summing over input channels.
type FilterBank struct {
	K, InChannels, NumFilters int
	Weights                   [][]float64
}

// NewFilterBank allocates a zeroed bank.
func NewFilterBank(k, inChannels, numFilters int) *FilterBank {
	w := make([][]float64, numFilters)
	for i := range w {
		w[i] = make([]float64, k*k*inChannels)
	}
	return &FilterBank{K: k, InChannels: inChannels, NumFilters: numFilters, Weights: w}
}

// RandomFilterBank draws Gaussian filter weights.
func RandomFilterBank(k, inChannels, numFilters int, rng *linalg.RNG) *FilterBank {
	fb := NewFilterBank(k, inChannels, numFilters)
	for i := range fb.Weights {
		for j := range fb.Weights[i] {
			fb.Weights[i][j] = rng.Gaussian()
		}
	}
	return fb
}

// SeparableFilterBank draws rank-1 (outer product u·vᵀ) filters, the class
// the matrix-vector strategy requires.
func SeparableFilterBank(k, inChannels, numFilters int, rng *linalg.RNG) *FilterBank {
	fb := NewFilterBank(k, inChannels, numFilters)
	for f := 0; f < numFilters; f++ {
		for c := 0; c < inChannels; c++ {
			u := rng.GaussianVector(k)
			v := rng.GaussianVector(k)
			for y := 0; y < k; y++ {
				for x := 0; x < k; x++ {
					fb.Weights[f][c*k*k+y*k+x] = u[y] * v[x]
				}
			}
		}
	}
	return fb
}

// IsSeparable reports whether every filter channel is (numerically)
// rank 1, the precondition for the separable strategy.
func (fb *FilterBank) IsSeparable() bool {
	for f := 0; f < fb.NumFilters; f++ {
		for c := 0; c < fb.InChannels; c++ {
			if _, _, ok := fb.separate(f, c); !ok {
				return false
			}
		}
	}
	return true
}

// separate factors filter (f, c) into u vᵀ via SVD, returning ok=false if
// the second singular value is non-negligible.
func (fb *FilterBank) separate(f, c int) (u, v []float64, ok bool) {
	k := fb.K
	m := linalg.NewMatrix(k, k)
	copy(m.Data, fb.Weights[f][c*k*k:(c+1)*k*k])
	sv := linalg.SVD(m)
	if len(sv.S) > 1 && sv.S[1] > 1e-9*sv.S[0] {
		return nil, nil, false
	}
	u = make([]float64, k)
	v = make([]float64, k)
	for i := 0; i < k; i++ {
		u[i] = sv.U.At(i, 0) * sv.S[0]
		v[i] = sv.V.At(i, 0)
	}
	return u, v, true
}

// Strategy is one physical convolution implementation.
type Strategy interface {
	Name() string
	Convolve(im *image.Image, fb *FilterBank) *image.Image
}

func checkDims(im *image.Image, fb *FilterBank) int {
	if im.Channels != fb.InChannels {
		panic(fmt.Sprintf("conv: image has %d channels, bank expects %d", im.Channels, fb.InChannels))
	}
	m := im.Width - fb.K + 1
	if m <= 0 || im.Height-fb.K+1 <= 0 {
		panic(fmt.Sprintf("conv: filter %d larger than image %dx%d", fb.K, im.Width, im.Height))
	}
	return m
}

// Direct is the naive quadruple loop; not one of the paper's candidates
// but the oracle the strategies are tested against.
type Direct struct{}

// Name implements Strategy.
func (Direct) Name() string { return "conv.direct" }

// Convolve implements Strategy.
func (Direct) Convolve(im *image.Image, fb *FilterBank) *image.Image {
	checkDims(im, fb)
	k := fb.K
	mw := im.Width - k + 1
	mh := im.Height - k + 1
	out := image.New(mw, mh, fb.NumFilters)
	for f := 0; f < fb.NumFilters; f++ {
		dst := out.Plane(f)
		for c := 0; c < im.Channels; c++ {
			src := im.Plane(c)
			w := fb.Weights[f][c*k*k : (c+1)*k*k]
			for y := 0; y < mh; y++ {
				for x := 0; x < mw; x++ {
					var s float64
					for dy := 0; dy < k; dy++ {
						row := src[(y+dy)*im.Width+x:]
						wrow := w[dy*k:]
						for dx := 0; dx < k; dx++ {
							s += row[dx] * wrow[dx]
						}
					}
					dst[y*mw+x] += s
				}
			}
		}
	}
	return out
}

// Separable is the matrix-vector scheme: each rank-1 filter u·vᵀ is
// applied as a horizontal pass with v followed by a vertical pass with u,
// costing O(d·b·k·m²) instead of O(d·b·k²·m²). It panics if a filter is
// not separable; the optimizer only selects it when IsSeparable holds.
type Separable struct{}

// Name implements Strategy.
func (Separable) Name() string { return "conv.separable" }

// Convolve implements Strategy.
func (Separable) Convolve(im *image.Image, fb *FilterBank) *image.Image {
	checkDims(im, fb)
	k := fb.K
	mw := im.Width - k + 1
	mh := im.Height - k + 1
	out := image.New(mw, mh, fb.NumFilters)
	tmp := make([]float64, mw*im.Height)
	for f := 0; f < fb.NumFilters; f++ {
		dst := out.Plane(f)
		for c := 0; c < im.Channels; c++ {
			u, v, ok := fb.separate(f, c)
			if !ok {
				panic(fmt.Sprintf("conv: filter (%d,%d) is not separable", f, c))
			}
			src := im.Plane(c)
			// Horizontal pass with v: tmp is mw x H.
			for y := 0; y < im.Height; y++ {
				for x := 0; x < mw; x++ {
					var s float64
					row := src[y*im.Width+x:]
					for dx := 0; dx < k; dx++ {
						s += row[dx] * v[dx]
					}
					tmp[y*mw+x] = s
				}
			}
			// Vertical pass with u.
			for y := 0; y < mh; y++ {
				for x := 0; x < mw; x++ {
					var s float64
					for dy := 0; dy < k; dy++ {
						s += tmp[(y+dy)*mw+x] * u[dy]
					}
					dst[y*mw+x] += s
				}
			}
		}
	}
	return out
}

// BLAS is the im2col + GEMM scheme: patches are unrolled into a
// (m²) x (d·k²) matrix and multiplied by the (d·k²) x b filter matrix,
// costing O(d·b·k²·m²) but with GEMM's cache behaviour — the Figure 7
// winner for small k.
type BLAS struct{}

// Name implements Strategy.
func (BLAS) Name() string { return "conv.blas" }

// Convolve implements Strategy.
func (BLAS) Convolve(im *image.Image, fb *FilterBank) *image.Image {
	checkDims(im, fb)
	k := fb.K
	mw := im.Width - k + 1
	mh := im.Height - k + 1
	d := im.Channels
	cols := d * k * k
	patches := linalg.NewMatrix(mw*mh, cols)
	for y := 0; y < mh; y++ {
		for x := 0; x < mw; x++ {
			row := patches.Row(y*mw + x)
			idx := 0
			for c := 0; c < d; c++ {
				src := im.Plane(c)
				for dy := 0; dy < k; dy++ {
					base := (y+dy)*im.Width + x
					copy(row[idx:idx+k], src[base:base+k])
					idx += k
				}
			}
		}
	}
	filt := linalg.NewMatrix(cols, fb.NumFilters)
	for f := 0; f < fb.NumFilters; f++ {
		for i := 0; i < cols; i++ {
			filt.Set(i, f, fb.Weights[f][i])
		}
	}
	prod := patches.Mul(filt) // (m²) x b
	out := image.New(mw, mh, fb.NumFilters)
	for f := 0; f < fb.NumFilters; f++ {
		dst := out.Plane(f)
		for i := 0; i < mw*mh; i++ {
			dst[i] = prod.At(i, f)
		}
	}
	return out
}

// FFT convolves in the frequency domain: O(d·b·n²·log n) independent of
// k, the Figure 7 winner for large filters.
type FFT struct{}

// Name implements Strategy.
func (FFT) Name() string { return "conv.fft" }

// Convolve implements Strategy.
func (FFT) Convolve(im *image.Image, fb *FilterBank) *image.Image {
	checkDims(im, fb)
	k := fb.K
	mw := im.Width - k + 1
	mh := im.Height - k + 1
	pw := linalg.NextPow2(im.Width)
	ph := linalg.NextPow2(im.Height)
	// Transform every input channel once.
	chanF := make([][]complex128, im.Channels)
	for c := 0; c < im.Channels; c++ {
		buf := make([]complex128, pw*ph)
		src := im.Plane(c)
		for y := 0; y < im.Height; y++ {
			for x := 0; x < im.Width; x++ {
				buf[y*pw+x] = complex(src[y*im.Width+x], 0)
			}
		}
		linalg.FFT2D(buf, ph, pw, false)
		chanF[c] = buf
	}
	out := image.New(mw, mh, fb.NumFilters)
	acc := make([]complex128, pw*ph)
	fbuf := make([]complex128, pw*ph)
	for f := 0; f < fb.NumFilters; f++ {
		for i := range acc {
			acc[i] = 0
		}
		for c := 0; c < im.Channels; c++ {
			for i := range fbuf {
				fbuf[i] = 0
			}
			w := fb.Weights[f][c*k*k : (c+1)*k*k]
			// Correlation (to match the direct strategy) = convolution with
			// the filter conjugate-reversed; place the filter directly and
			// take conj of its FFT.
			for y := 0; y < k; y++ {
				for x := 0; x < k; x++ {
					fbuf[y*pw+x] = complex(w[y*k+x], 0)
				}
			}
			linalg.FFT2D(fbuf, ph, pw, false)
			cf := chanF[c]
			for i := range acc {
				acc[i] += cf[i] * cmplx.Conj(fbuf[i])
			}
		}
		linalg.FFT2D(acc, ph, pw, true)
		dst := out.Plane(f)
		for y := 0; y < mh; y++ {
			for x := 0; x < mw; x++ {
				dst[y*mw+x] = real(acc[y*pw+x])
			}
		}
	}
	return out
}

// Convolver is the logical convolution Transformer (Image -> Image); it
// is Optimizable over the three Figure 7 strategies. The default
// (unoptimized) implementation is BLAS.
type Convolver struct {
	Bank     *FilterBank
	Strategy Strategy // nil = BLAS
	// Float32 opts the optimizer into the single-precision BLAS32
	// strategy. Off by default: it is the only strategy that trades
	// accuracy (float32 rounding, ~1e-6 relative) for speed, so the
	// caller must accept the tolerance explicitly.
	Float32 bool
}

// Name implements core.TransformOp.
func (c *Convolver) Name() string { return "image.convolve[logical]" }

// Apply implements core.TransformOp.
func (c *Convolver) Apply(in any) any {
	im, ok := in.(*image.Image)
	if !ok {
		panic(fmt.Sprintf("conv: expected *image.Image, got %T", in))
	}
	s := c.Strategy
	if s == nil {
		s = BLAS{}
	}
	return s.Convolve(im, c.Bank)
}

// Options implements core.Optimizable: each strategy bound to this bank
// with its cost model; the separable strategy is offered only if the bank
// is actually separable.
func (c *Convolver) Options() []cost.Option {
	opts := []cost.Option{
		{Model: blasCost{bank: c.Bank}, Operator: &boundStrategy{bank: c.Bank, s: BLAS{}}},
		{Model: fftCost{bank: c.Bank}, Operator: &boundStrategy{bank: c.Bank, s: FFT{}}},
	}
	if c.Bank.IsSeparable() {
		opts = append(opts, cost.Option{
			Model:    separableCost{bank: c.Bank},
			Operator: &boundStrategy{bank: c.Bank, s: Separable{}},
		})
	}
	if c.Float32 {
		opts = append(opts, cost.Option{
			Model:    blas32Cost{bank: c.Bank},
			Operator: &boundStrategy{bank: c.Bank, s: BLAS32{}},
		})
	}
	return opts
}

// boundStrategy is a physical convolution operator: one strategy bound to
// one filter bank.
type boundStrategy struct {
	bank *FilterBank
	s    Strategy
}

// Name implements core.TransformOp.
func (b *boundStrategy) Name() string { return b.s.Name() }

// Apply implements core.TransformOp.
func (b *boundStrategy) Apply(in any) any {
	return b.s.Convolve(in.(*image.Image), b.bank)
}

// The Figure 7 cost models (per record, image n x n x d, b filters of
// size k): the optimizer multiplies by record count via DataStats.N.
// Effective-FLOP multipliers encode how far each strategy runs from peak:
// GEMM is cache-optimal (1x), the separable two-pass scheme is strided and
// memory-bound (4x), FFT butterflies are latency-bound complex arithmetic
// (3x). These constants are what make BLAS the measured winner at small k
// in Figure 7 despite its worse asymptotics.
const (
	sepEfficiency = 4.0
	fftEfficiency = 3.0
)

type separableCost struct{ bank *FilterBank }

func (separableCost) Name() string { return "conv.separable" }

func (c separableCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n := pixelEdge(st, c.bank)
	k := float64(c.bank.K)
	d := float64(c.bank.InChannels)
	b := float64(c.bank.NumFilters)
	m := n - k + 1
	w := float64(max(workers, 1))
	return cost.Profile{
		Flops: float64(st.N) * sepEfficiency * (2*d*b*k*m*m + b*k*k*k) / w,
		Bytes: float64(st.N) * d * n * n * 8 / w,
	}
}

type blasCost struct{ bank *FilterBank }

func (blasCost) Name() string { return "conv.blas" }

func (c blasCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n := pixelEdge(st, c.bank)
	k := float64(c.bank.K)
	d := float64(c.bank.InChannels)
	b := float64(c.bank.NumFilters)
	m := n - k + 1
	w := float64(max(workers, 1))
	return cost.Profile{
		Flops: float64(st.N) * 2 * d * b * k * k * m * m / w,
		Bytes: float64(st.N) * d * k * k * m * m * 8 / w,
	}
}

type fftCost struct{ bank *FilterBank }

func (fftCost) Name() string { return "conv.fft" }

func (c fftCost) Cost(st cost.DataStats, workers int) cost.Profile {
	n := float64(linalg.NextPow2(int(pixelEdge(st, c.bank))))
	d := float64(c.bank.InChannels)
	b := float64(c.bank.NumFilters)
	w := float64(max(workers, 1))
	log2n := 0.0
	for p := 1.0; p < n; p *= 2 {
		log2n++
	}
	return cost.Profile{
		Flops: float64(st.N) * fftEfficiency * (6*d*b*n*n*log2n + 4*d*b*n*n) / w,
		Bytes: float64(st.N) * d * b * n * n * 16 / w,
	}
}

// pixelEdge infers the square image edge length n from the per-record
// scalar count reported by the profiler (Dim = n·n·channels).
func pixelEdge(st cost.DataStats, bank *FilterBank) float64 {
	if st.Dim <= 0 {
		return float64(bank.K)
	}
	perChan := float64(st.Dim) / float64(bank.InChannels)
	edge := 1.0
	for edge*edge < perChan {
		edge++
	}
	return edge
}
