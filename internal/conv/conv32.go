package conv

import (
	"sync"

	"keystoneml/internal/cost"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg/kernels"
)

// BLAS32 is the float32 im2col + GEMM scheme: the same patch unrolling
// as BLAS but with single-precision scratch and the float32 blocked
// GEMM, halving memory traffic through the cache hierarchy. It is the
// one strategy whose output is NOT bit-identical to Direct — results
// carry float32 rounding (~1e-6 relative; see ARCHITECTURE.md
// Contract 5) — so it never appears in the default Options() set and
// must be opted into via Convolver.Float32 or an explicit Strategy.
type BLAS32 struct{}

// Name implements Strategy.
func (BLAS32) Name() string { return "conv.blas32" }

// f32Pool recycles im2col scratch across Convolve calls: serving
// workloads convolve thousands of same-shaped images, and the patch
// matrix is by far the largest transient allocation on that path.
var f32Pool = sync.Pool{New: func() any { return new([]float32) }}

// getF32 leases a zeroed float32 buffer of length n from the pool.
func getF32(n int) (*[]float32, []float32) {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	s := (*p)[:n]
	for i := range s {
		s[i] = 0
	}
	return p, s
}

// Convolve implements Strategy.
func (BLAS32) Convolve(im *image.Image, fb *FilterBank) *image.Image {
	checkDims(im, fb)
	k := fb.K
	mw := im.Width - k + 1
	mh := im.Height - k + 1
	d := im.Channels
	cols := d * k * k
	rows := mw * mh
	pPatch, patches := getF32(rows * cols)
	defer f32Pool.Put(pPatch)
	for y := 0; y < mh; y++ {
		for x := 0; x < mw; x++ {
			row := patches[(y*mw+x)*cols:]
			idx := 0
			for c := 0; c < d; c++ {
				src := im.Plane(c)
				for dy := 0; dy < k; dy++ {
					base := (y+dy)*im.Width + x
					for dx := 0; dx < k; dx++ {
						row[idx+dx] = float32(src[base+dx])
					}
					idx += k
				}
			}
		}
	}
	pFilt, filt := getF32(cols * fb.NumFilters)
	defer f32Pool.Put(pFilt)
	for f := 0; f < fb.NumFilters; f++ {
		for i := 0; i < cols; i++ {
			filt[i*fb.NumFilters+f] = float32(fb.Weights[f][i])
		}
	}
	pProd, prod := getF32(rows * fb.NumFilters)
	defer f32Pool.Put(pProd)
	kernels.Gemm32(prod, patches, filt, rows, cols, fb.NumFilters)
	out := image.New(mw, mh, fb.NumFilters)
	for f := 0; f < fb.NumFilters; f++ {
		dst := out.Plane(f)
		for i := 0; i < rows; i++ {
			dst[i] = float64(prod[i*fb.NumFilters+f])
		}
	}
	return out
}

// blas32Cost halves the effective FLOP cost of the float64 GEMM scheme:
// single precision doubles the elements per cache line and per SIMD
// lane on the bandwidth-bound im2col path.
type blas32Cost struct{ bank *FilterBank }

func (blas32Cost) Name() string { return "conv.blas32" }

func (c blas32Cost) Cost(st cost.DataStats, workers int) cost.Profile {
	p := blasCost{bank: c.bank}.Cost(st, workers)
	p.Flops /= 2
	p.Bytes /= 2
	return p
}
