package conv

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"keystoneml/internal/core"
)

// convolverState is the gob payload for both the logical Convolver and
// the optimizer-substituted boundStrategy: a filter bank plus the
// strategy name ("" = logical default, i.e. BLAS).
type convolverState struct {
	Bank     *FilterBank
	Strategy string
	Bound    bool // true when the encoded operator was a boundStrategy
}

func strategyByName(name string) (Strategy, error) {
	switch name {
	case "conv.direct":
		return Direct{}, nil
	case "conv.separable":
		return Separable{}, nil
	case "conv.blas":
		return BLAS{}, nil
	case "conv.fft":
		return FFT{}, nil
	}
	return nil, fmt.Errorf("conv: unknown strategy %q", name)
}

func encodeConvolverState(s convolverState) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// StateKind implements core.StateCodec.
func (c *Convolver) StateKind() string { return "image.convolve" }

// EncodeState implements core.StateCodec.
func (c *Convolver) EncodeState() ([]byte, error) {
	name := ""
	if c.Strategy != nil {
		name = c.Strategy.Name()
	}
	return encodeConvolverState(convolverState{Bank: c.Bank, Strategy: name})
}

// StateKind implements core.StateCodec.
func (b *boundStrategy) StateKind() string { return "image.convolve" }

// EncodeState implements core.StateCodec.
func (b *boundStrategy) EncodeState() ([]byte, error) {
	return encodeConvolverState(convolverState{Bank: b.bank, Strategy: b.s.Name(), Bound: true})
}

func init() {
	core.RegisterStateDecoder("image.convolve", func(state []byte) (core.TransformOp, error) {
		var s convolverState
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
			return nil, err
		}
		if s.Bound {
			st, err := strategyByName(s.Strategy)
			if err != nil {
				return nil, err
			}
			return &boundStrategy{bank: s.Bank, s: st}, nil
		}
		var st Strategy
		if s.Strategy != "" {
			var err error
			if st, err = strategyByName(s.Strategy); err != nil {
				return nil, err
			}
		}
		return &Convolver{Bank: s.Bank, Strategy: st}, nil
	})
}
