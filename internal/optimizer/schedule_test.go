package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"keystoneml/internal/core"
)

// randomDAG builds a random pipeline DAG (transforms, gathers, iterative
// estimator+apply pairs over shared prefixes) with a random profile:
// times in (0, 1] seconds on operator nodes, zero on sources/labels,
// sizes in [10, 100) bytes. The construction mirrors how real pipelines
// branch — every new node reads a random already-built node — so shared
// prefixes, fan-outs and nested refetch subtrees all occur.
func randomDAG(r *rand.Rand) (*core.Graph, *Profile) {
	g := core.NewGraph()
	frontier := []*core.Node{g.Source}
	pick := func() *core.Node { return frontier[r.Intn(len(frontier))] }
	nOps := 3 + r.Intn(6)
	for i := 0; i < nOps; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4: // transform
			frontier = append(frontier, g.AddTransform(core.IdentityOp(), pick()))
		case 5, 6: // gather of 2-3 branches
			k := 2 + r.Intn(2)
			deps := make([]*core.Node, k)
			for j := range deps {
				deps[j] = pick()
			}
			frontier = append(frontier, g.AddGather(deps))
		default: // iterative estimator + model application
			dep := pick()
			est := g.AddEstimator(&vecEst{w: 1 + r.Intn(4)}, dep, r.Intn(2) == 0)
			frontier = append(frontier, g.AddApplyModel(est, dep))
		}
	}
	// Join 1-3 frontier nodes so the sink demands a non-trivial subgraph
	// (branches left out become unreachable and must be ignored by both
	// models).
	k := 1 + r.Intn(3)
	deps := make([]*core.Node, k)
	for j := range deps {
		deps[j] = pick()
	}
	g.AddGather(deps)

	prof := &Profile{Nodes: map[int]*NodeProfile{}, FullN: 1000}
	for _, n := range g.Topological() {
		t := 0.0
		if n.Kind != core.KindSource && n.Kind != core.KindLabels {
			t = 0.001 + r.Float64()
		}
		prof.Nodes[n.ID] = &NodeProfile{
			Name: n.OpName(), Kind: n.Kind, Weight: n.Weight(),
			TimeSec: t, SizeBytes: int64(10 + r.Intn(90)),
		}
	}
	return g, prof
}

// randomCacheSet picks a random subset of the cacheable nodes.
func randomCacheSet(r *rand.Rand, g *core.Graph, prof *Profile) map[int]bool {
	cached := map[int]bool{}
	for _, id := range cacheCandidates(g, prof) {
		if r.Intn(3) == 0 {
			cached[id] = true
		}
	}
	return cached
}

// TestMakespanSequentialMatchesEstRuntime is the simulator's anchor
// property: on randomized DAGs and randomized cache sets, the schedule
// plan's makespan at workers=1 must equal the paper's sequential
// Σ t(v)·computes(v) estimate — the new model strictly generalizes the
// old one, it does not replace it.
func TestMakespanSequentialMatchesEstRuntime(t *testing.T) {
	r := rand.New(rand.NewSource(20260726))
	const dags = 250
	for i := 0; i < dags; i++ {
		g, prof := randomDAG(r)
		for trial := 0; trial < 3; trial++ {
			cached := randomCacheSet(r, g, prof)
			want := EstRuntime(g, prof, cached)
			got := core.NewSchedulePlan(g, profTimes(prof), cached, 1).Makespan()
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("DAG %d trial %d: workers=1 makespan %.12g != EstRuntime %.12g\n%s",
					i, trial, got, want, g)
			}
		}
	}
}

// TestMakespanCachingNeverHurtsParallel: under the parallel model,
// adding any single cacheable node must not increase the simulated
// makespan on these DAGs (pinning removes work from every later pass).
func TestMakespanCachingNeverHurtsParallel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		g, prof := randomDAG(r)
		base := EstCost(g, prof, map[int]bool{}, 4)
		for _, id := range cacheCandidates(g, prof) {
			with := EstCost(g, prof, map[int]bool{id: true}, 4)
			if with > base+1e-9 {
				t.Fatalf("DAG %d: pinning node %d increased makespan %.9g -> %.9g\n%s",
					i, id, base, with, g)
			}
		}
	}
}

// TestGreedyNearExactUnderParallelModel validates Algorithm 1 against
// brute force under the list-scheduling makespan objective: across
// randomized small DAGs and budgets, the greedy pin set's modeled
// makespan must stay within 10% of the exhaustive optimum.
func TestGreedyNearExactUnderParallelModel(t *testing.T) {
	r := rand.New(rand.NewSource(20260726))
	const workers = 4
	compared := 0
	for i := 0; compared < 200 && i < 400; i++ {
		g, prof := randomDAG(r)
		candidates := cacheCandidates(g, prof)
		if len(candidates) == 0 || len(candidates) > 9 {
			continue // keep the exhaustive search tractable
		}
		var total int64
		for _, id := range candidates {
			total += prof.Nodes[id].SizeBytes
		}
		budget := int64(float64(total) * (0.3 + 0.5*r.Float64()))
		gSet := GreedyCacheSet(g, prof, budget, workers)
		var used int64
		cached := map[int]bool{}
		for _, id := range gSet {
			cached[id] = true
			used += prof.Nodes[id].SizeBytes
		}
		if used > budget {
			t.Fatalf("DAG %d: greedy used %d bytes over budget %d", i, used, budget)
		}
		gCost := EstCost(g, prof, cached, workers)
		_, eCost := ExactCacheSet(g, prof, budget, workers)
		if gCost > eCost*1.1+1e-12 {
			t.Fatalf("DAG %d: greedy makespan %.6g exceeds 1.1x exact %.6g (budget %d)\n%s",
				i, gCost, eCost, budget, g)
		}
		compared++
	}
	if compared < 200 {
		t.Fatalf("only %d DAGs compared against the exhaustive optimum, want >= 200", compared)
	}
}

// TestGreedyParallelEscapesZeroDeltaPlateaus pins the case that
// motivated the lexicographic objective: two equal chains, a budget that
// fits both chain ends, and a makespan that only moves once *both* are
// pinned. A wall-clock-only greedy stalls after seeing Δ=0 everywhere;
// ranking plateau candidates by sequential work reduction walks through.
func TestGreedyParallelEscapesZeroDeltaPlateaus(t *testing.T) {
	g := core.NewGraph()
	mkChain := func(name string) *core.Node {
		a := g.AddTransform(core.NewTransform(name+"1", func(x any) any { return x }), g.Source)
		return g.AddTransform(core.NewTransform(name+"2", func(x any) any { return x }), a)
	}
	endA := mkChain("a")
	endB := mkChain("b")
	gather := g.AddGather([]*core.Node{endA, endB})
	est := g.AddEstimator(&vecEst{w: 4}, gather, false)
	g.AddApplyModel(est, gather)

	prof := &Profile{Nodes: map[int]*NodeProfile{}, FullN: 1000}
	for _, n := range g.Topological() {
		tv := 0.0
		if n.Kind == core.KindTransform {
			tv = 1.0
		}
		prof.Nodes[n.ID] = &NodeProfile{
			Name: n.OpName(), Kind: n.Kind, Weight: n.Weight(),
			TimeSec: tv, SizeBytes: 1000,
		}
	}
	// Budget fits exactly the two chain ends; the gather (the single
	// best pin) is made too large to fit.
	prof.Nodes[gather.ID].SizeBytes = 5000
	set := GreedyCacheSet(g, prof, 2000, 2)
	want := map[int]bool{endA.ID: true, endB.ID: true}
	if len(set) != 2 || !want[set[0]] || !want[set[1]] {
		t.Fatalf("greedy set = %v, want both chain ends %v", set, []int{endA.ID, endB.ID})
	}
}

// TestScheduleForRoundTrip: the plan the optimizer hands the executor
// carries the same cost model the planner used.
func TestScheduleForRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g, prof := randomDAG(r)
	set := GreedyCacheSet(g, prof, 0, 4)
	plan := ScheduleFor(g, prof, set, 4)
	cached := map[int]bool{}
	for _, id := range set {
		cached[id] = true
	}
	if got, want := plan.Makespan(), EstCost(g, prof, cached, 4); math.Abs(got-want) > 1e-9 {
		t.Errorf("ScheduleFor makespan %.9g != EstCost %.9g", got, want)
	}
	for _, id := range set {
		if !plan.Pinned(id) {
			t.Errorf("node %d in cache set but not pinned in schedule plan", id)
		}
	}
}

// sanity check for the generator itself: it must produce estimators
// (refetch structure) reasonably often, or the properties above test
// less than they claim.
func TestRandomDAGGeneratorProducesRefetchStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	withEst := 0
	for i := 0; i < 100; i++ {
		g, _ := randomDAG(r)
		for _, n := range g.Topological() {
			if n.Kind == core.KindEstimator {
				withEst++
				break
			}
		}
	}
	if withEst < 30 {
		t.Fatalf("only %d/100 random DAGs contain an estimator; generator too weak", withEst)
	}
}
