package optimizer

import (
	"fmt"

	"keystoneml/internal/core"
)

// CSE performs common sub-expression elimination on the pipeline DAG
// (Section 4.2): structurally identical nodes — same kind, same operator
// name, same (canonicalized) dependencies — are merged so shared work like
// "tokenize the training data" feeding both the vocabulary estimator and
// the featurizer executes once. Operators must encode distinguishing
// parameters in Name() (all standard-library operators do), which is what
// makes name equality a sound proxy for operator equality given that
// transformers are deterministic and side-effect free.
//
// CSE rewrites Deps pointers in place and returns the number of nodes
// eliminated; unreachable duplicates simply drop out of the topological
// traversal.
func CSE(g *core.Graph) int {
	// Iterate to a fixpoint: merging two nodes can make their consumers
	// structurally identical in turn.
	eliminated := 0
	for {
		canonical := make(map[string]*core.Node)
		remap := make(map[int]*core.Node)
		for _, n := range g.Topological() {
			// Canonicalize deps first (parents precede children in topo order).
			for i, d := range n.Deps {
				if r, ok := remap[d.ID]; ok {
					n.Deps[i] = r
				}
			}
			sig := signature(n)
			if c, ok := canonical[sig]; ok && c != n {
				remap[n.ID] = c
				eliminated++
				continue
			}
			canonical[sig] = n
		}
		if len(remap) == 0 {
			return eliminated
		}
		// Rewrite all consumers (including the sink) to the canonical nodes.
		for _, n := range g.Nodes {
			for i, d := range n.Deps {
				if r, ok := remap[d.ID]; ok {
					n.Deps[i] = r
				}
			}
		}
		if r, ok := remap[g.Sink.ID]; ok {
			g.Sink = r
		}
	}
}

// signature canonically describes a node's computation.
func signature(n *core.Node) string {
	deps := ""
	for _, d := range n.Deps {
		deps += fmt.Sprintf(",%d", d.ID)
	}
	return fmt.Sprintf("%d|%s|%s", n.Kind, n.OpName(), deps)
}
