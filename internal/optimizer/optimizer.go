package optimizer

import (
	"time"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// Level selects how much of the optimizer runs, matching the three
// configurations compared in Figure 9.
type Level int

const (
	// LevelNone executes default physical operators with no caching at
	// all — the unoptimized baseline.
	LevelNone Level = iota
	// LevelPipeline enables whole-pipeline optimizations only (CSE +
	// automatic materialization) with default physical operators
	// ("Pipe Only" in Figure 9).
	LevelPipeline
	// LevelFull adds operator-level selection on top of the
	// whole-pipeline optimizations (the full "KeystoneML" configuration).
	LevelFull
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelPipeline:
		return "pipe-only"
	default:
		return "keystoneml"
	}
}

// Config parameterizes optimization.
type Config struct {
	Level     Level
	Resources cluster.Resources
	// MemBudgetBytes is the cluster-wide cache budget for automatic
	// materialization; zero means unlimited.
	MemBudgetBytes int64
	// NumClasses feeds k into the solver cost models.
	NumClasses int
	// SampleSizes are the two profiling sample sizes used for linear
	// extrapolation; defaults to {256, 512} (the paper uses 512/1024).
	SampleSizes [2]int
	// Parallelism bounds the execution context (partition workers) and
	// the executor's DAG-level worker pool; 0 = NumCPU, 1 = the
	// sequential depth-first oracle.
	Parallelism int
}

func (c Config) samples() (int, int) {
	s1, s2 := c.SampleSizes[0], c.SampleSizes[1]
	if s1 <= 0 {
		s1 = 256
	}
	if s2 <= 0 {
		s2 = 512
	}
	if s2 < s1 {
		s1, s2 = s2, s1
	}
	return s1, s2
}

// Plan is an optimized physical execution plan: the (possibly rewritten)
// graph, the chosen physical implementation per optimizable node, the
// materialization set, and the profile that justified those choices.
type Plan struct {
	Graph     *core.Graph
	Chosen    map[int]string // node ID -> selected physical operator name
	CacheSet  []int          // node IDs to materialize
	Profile   *Profile
	Level     Level
	CSEMerged int
	// OptimizeTime is the total optimization overhead (sampling +
	// profiling + planning), Figure 9's "Optimize" stage.
	OptimizeTime time.Duration
}

// Optimize builds a physical plan for graph g over the given training
// data. It mutates g in place (operator substitution, CSE dep rewrites)
// and returns the plan; at LevelNone it returns an empty plan immediately.
func Optimize(g *core.Graph, data, labels *engine.Collection, cfg Config) *Plan {
	plan := &Plan{Graph: g, Chosen: map[int]string{}, Level: cfg.Level}
	if cfg.Level == LevelNone {
		return plan
	}
	start := time.Now()
	plan.CSEMerged = CSE(g)

	ctx := engine.NewContext(cfg.Parallelism)
	fullN := data.Count()
	s1, s2 := cfg.samples()
	selectOps := cfg.Level >= LevelFull

	// First (smaller) sample: operator selection + first timing point.
	run1 := newSampleRun(g, ctx, data.Sample(s1), sampleLabels(labels, data, s1), fullN, cfg, selectOps)
	run1.run()
	// Second sample with the chosen operators: second timing point.
	run2 := newSampleRun(g, ctx, data.Sample(s2), sampleLabels(labels, data, s2), fullN, cfg, false)
	run2.run()

	prof := &Profile{Nodes: map[int]*NodeProfile{}, SampleN: s2, FullN: fullN}
	n1 := run1.data.Count()
	n2 := run2.data.Count()
	for _, n := range g.Topological() {
		t1 := run1.localTime[n.ID].Seconds()
		t2 := run2.localTime[n.ID].Seconds()
		np := &NodeProfile{
			Name:       n.OpName(),
			Kind:       n.Kind,
			Weight:     n.Weight(),
			TimeSec:    extrapolate(n1, t1, n2, t2, fullN),
			InputStats: run1.inStats[n.ID],
		}
		if recs := run2.outRecords[n.ID]; len(recs) > 0 {
			np.OutStats = statsOf(recs, fullN, cfg.NumClasses)
			np.SizeBytes = np.OutStats.Bytes
		}
		prof.Nodes[n.ID] = np
	}
	plan.Profile = prof
	plan.Chosen = run1.chosen
	plan.CacheSet = GreedyCacheSet(g, prof, cfg.MemBudgetBytes)
	prof.Elapsed = time.Since(start)
	plan.OptimizeTime = prof.Elapsed
	return plan
}

// sampleLabels samples labels with the same stride Sample uses on data so
// records stay aligned with their labels.
func sampleLabels(labels, data *engine.Collection, n int) *engine.Collection {
	if labels == nil {
		return nil
	}
	return labels.Sample(n)
}

// Execute runs the plan over the full training data: a pinned-set cache
// manager holds exactly the materialization set, and the executor
// recomputes everything else on demand. parallelism sizes both the
// partition workers and the executor's stage-aware DAG scheduler
// (0 = NumCPU); parallelism 1 selects the sequential depth-first oracle,
// which the equivalence tests use as the reference semantics.
func (p *Plan) Execute(data, labels *engine.Collection, parallelism int) (map[int]core.TransformOp, *engine.Collection, *core.ExecReport) {
	ctx := engine.NewContext(parallelism)
	var cache *engine.CacheManager
	if p.Level > LevelNone && len(p.CacheSet) > 0 {
		cache = engine.NewCacheManager(0, engine.NewPinnedSetPolicy(CacheKeys(p.CacheSet)))
	}
	ex := core.NewExecutor(p.Graph, ctx, cache, data, labels)
	return ex.Run()
}
