package optimizer

import (
	"context"
	"runtime"
	"time"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// Level selects how much of the optimizer runs, matching the three
// configurations compared in Figure 9.
type Level int

const (
	// LevelNone executes default physical operators with no caching at
	// all — the unoptimized baseline.
	LevelNone Level = iota
	// LevelPipeline enables whole-pipeline optimizations only (CSE +
	// automatic materialization) with default physical operators
	// ("Pipe Only" in Figure 9).
	LevelPipeline
	// LevelFull adds operator-level selection on top of the
	// whole-pipeline optimizations (the full "KeystoneML" configuration).
	LevelFull
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelPipeline:
		return "pipe-only"
	default:
		return "keystoneml"
	}
}

// Config parameterizes optimization.
type Config struct {
	Level     Level
	Resources cluster.Resources
	// MemBudgetBytes is the cluster-wide cache budget for automatic
	// materialization; zero means unlimited.
	MemBudgetBytes int64
	// NumClasses feeds k into the solver cost models.
	NumClasses int
	// SampleSizes are the two profiling sample sizes used for linear
	// extrapolation; defaults to {256, 512} (the paper uses 512/1024).
	SampleSizes [2]int
	// Parallelism bounds the execution context (partition workers) and
	// the executor's DAG-level worker pool; 0 = NumCPU, 1 = the
	// sequential depth-first oracle.
	Parallelism int
	// Dist, when non-nil, makes the materialization planner cost cache
	// sets with the distributed-time makespan (network + stage-launch
	// terms) instead of the local model, and attaches the model to the
	// resulting schedule plan. Set by keystone/dist fits.
	Dist *core.DistModel
}

func (c Config) samples() (int, int) {
	s1, s2 := c.SampleSizes[0], c.SampleSizes[1]
	if s1 <= 0 {
		s1 = 256
	}
	if s2 <= 0 {
		s2 = 512
	}
	if s2 < s1 {
		s1, s2 = s2, s1
	}
	return s1, s2
}

// Plan is an optimized physical execution plan: the (possibly rewritten)
// graph, the chosen physical implementation per optimizable node, the
// materialization set, the shared schedule plan behind it, and the
// profile that justified those choices.
type Plan struct {
	Graph     *core.Graph
	Chosen    map[int]string // node ID -> selected physical operator name
	CacheSet  []int          // node IDs to materialize
	Profile   *Profile
	Level     Level
	CSEMerged int
	// Schedule is the shared schedule plan the materialization set was
	// chosen under (profile times, cache boundaries, worker count).
	// Execute threads it into the executor, whose priority dispatcher
	// and speculative retention then work from the same model the
	// planner costed; nil when profiling did not run (LevelNone).
	Schedule *core.SchedulePlan
	// DispatchFIFO disables priority dispatch and speculative retention
	// at execution time (pass-plan-order dispatch, the scheduler's
	// pre-plan behaviour), for comparisons and opt-outs.
	DispatchFIFO bool
	// Shared, when non-nil, attaches a cross-fit shared prefix cache at
	// execution time: nodes of this plan's graph that carry a content
	// signature (core.PrefixSignatures under SharedScope) consult and
	// fill it, so concurrent fits of pipelines sharing a prefix reuse
	// each other's materialized intermediates. The caller owns the
	// cache's data-identity scope (see engine.SharedCache); SharedScope
	// must identify the training data bound at Execute time.
	Shared      *engine.SharedCache
	SharedScope string
	// OptimizeTime is the total optimization overhead (sampling +
	// profiling + planning), Figure 9's "Optimize" stage.
	OptimizeTime time.Duration
}

// Optimize builds a physical plan for graph g over the given training
// data. It mutates g in place (operator substitution, CSE dep rewrites)
// and returns the plan; at LevelNone it returns an empty plan immediately.
func Optimize(g *core.Graph, data, labels *engine.Collection, cfg Config) *Plan {
	return optimize(g, data, labels, cfg, engine.NewContext(cfg.Parallelism))
}

// OptimizeContext is Optimize bound to a context: the sampling and
// profiling runs poll ctx between partition dispatches and estimator
// passes, so a canceled Fit does not sit through profiling first. On
// cancellation the (partially rewritten) plan is discarded and the
// context error is returned.
func OptimizeContext(ctx context.Context, g *core.Graph, data, labels *engine.Collection, cfg Config) (plan *Plan, err error) {
	ectx := engine.NewContext(cfg.Parallelism)
	if ctx != nil && ctx != context.Background() {
		ectx = ectx.WithCancellation(ctx)
	}
	defer func() {
		if r := recover(); r != nil {
			c, ok := engine.AsCanceled(r)
			if !ok {
				panic(r)
			}
			plan, err = nil, c
		}
	}()
	return optimize(g, data, labels, cfg, ectx), nil
}

func optimize(g *core.Graph, data, labels *engine.Collection, cfg Config, ctx *engine.Context) *Plan {
	plan := &Plan{Graph: g, Chosen: map[int]string{}, Level: cfg.Level}
	if cfg.Level == LevelNone {
		return plan
	}
	start := time.Now()
	plan.CSEMerged = CSE(g)

	fullN := data.Count()
	s1, s2 := cfg.samples()
	selectOps := cfg.Level >= LevelFull

	// First (smaller) sample: operator selection + first timing point.
	run1 := newSampleRun(g, ctx, data.Sample(s1), sampleLabels(labels, data, s1), fullN, cfg, selectOps)
	run1.run()
	// Second sample with the chosen operators: second timing point.
	run2 := newSampleRun(g, ctx, data.Sample(s2), sampleLabels(labels, data, s2), fullN, cfg, false)
	run2.run()

	prof := &Profile{Nodes: map[int]*NodeProfile{}, SampleN: s2, FullN: fullN}
	n1 := run1.data.Count()
	n2 := run2.data.Count()
	for _, n := range g.Topological() {
		t1 := run1.localTime[n.ID].Seconds()
		t2 := run2.localTime[n.ID].Seconds()
		np := &NodeProfile{
			Name:       n.OpName(),
			Kind:       n.Kind,
			Weight:     n.Weight(),
			TimeSec:    extrapolate(n1, t1, n2, t2, fullN),
			InputStats: run1.inStats[n.ID],
		}
		if recs := run2.outRecords[n.ID]; len(recs) > 0 {
			np.OutStats = statsOf(recs, fullN, cfg.NumClasses)
			np.SizeBytes = np.OutStats.Bytes
		}
		prof.Nodes[n.ID] = np
	}
	plan.Profile = prof
	plan.Chosen = run1.chosen
	// The materialization set is chosen under the schedule the executor
	// will actually run: the k-worker makespan model (sequential Σ t·c
	// when k = 1), and the resulting schedule plan is carried on the
	// Plan so Execute hands the very same model to the dispatcher.
	workers := cfg.execWorkers()
	if cfg.Dist != nil {
		// Callers set the dist model's cluster terms before profiling
		// exists; the per-node transfer sizes come from the profile just
		// built.
		if cfg.Dist.OutBytes == nil {
			cfg.Dist.OutBytes = make(map[int]int64, len(prof.Nodes))
			for id, np := range prof.Nodes {
				if np.SizeBytes > 0 {
					cfg.Dist.OutBytes[id] = np.SizeBytes
				}
			}
		}
		plan.CacheSet = GreedyCacheSetDist(g, prof, cfg.MemBudgetBytes, cfg.Dist)
		plan.Schedule = ScheduleForDist(g, prof, plan.CacheSet, cfg.Dist)
	} else {
		plan.CacheSet = GreedyCacheSet(g, prof, cfg.MemBudgetBytes, workers)
		plan.Schedule = ScheduleFor(g, prof, plan.CacheSet, workers)
	}
	prof.Elapsed = time.Since(start)
	plan.OptimizeTime = prof.Elapsed
	return plan
}

// execWorkers resolves Parallelism the same way the engine context does:
// non-positive means one DAG worker per CPU.
func (c Config) execWorkers() int {
	if c.Parallelism <= 0 {
		return runtime.NumCPU()
	}
	return c.Parallelism
}

// sampleLabels samples labels with the same stride Sample uses on data so
// records stay aligned with their labels.
func sampleLabels(labels, data *engine.Collection, n int) *engine.Collection {
	if labels == nil {
		return nil
	}
	return labels.Sample(n)
}

// Execute runs the plan over the full training data: a pinned-set cache
// manager holds exactly the materialization set, and the executor
// recomputes everything else on demand. parallelism sizes both the
// partition workers and the executor's stage-aware DAG scheduler
// (0 = NumCPU); parallelism 1 selects the sequential depth-first oracle,
// which the equivalence tests use as the reference semantics.
func (p *Plan) Execute(data, labels *engine.Collection, parallelism int) (map[int]core.TransformOp, *engine.Collection, *core.ExecReport) {
	ctx := engine.NewContext(parallelism)
	ex := core.NewExecutor(p.Graph, ctx, p.DefaultCache(0), data, labels)
	p.configureScheduler(ex)
	p.configureSharing(ex)
	return ex.Run()
}

// configureScheduler threads the shared schedule plan (or the FIFO
// opt-out) into an executor about to run this plan.
func (p *Plan) configureScheduler(ex *core.Executor) {
	if p.DispatchFIFO {
		ex.SetSchedulerPolicy(core.SchedulerFIFO)
		return
	}
	if p.Schedule != nil {
		ex.SetSchedulePlan(p.Schedule)
	}
}

// configureSharing attaches the plan's shared prefix cache (if any) to an
// executor about to run it, keying this graph's nodes by content
// signature. Split from configureScheduler because DispatchFIFO returns
// early there while sharing applies regardless of dispatch order.
func (p *Plan) configureSharing(ex *core.Executor) {
	if p.Shared != nil {
		ex.SetSharedCache(p.Shared, core.PrefixSignatures(p.Graph, p.SharedScope))
	}
}

// DefaultCache builds the plan's canonical cache manager: a pinned set
// holding exactly the materialization set under the given byte budget
// (non-positive = unlimited). It returns nil — no caching at all — when
// the plan materializes nothing.
func (p *Plan) DefaultCache(budget int64) *engine.CacheManager {
	if p.Level == LevelNone || len(p.CacheSet) == 0 {
		return nil
	}
	return engine.NewCacheManager(budget, engine.NewPinnedSetPolicy(CacheKeys(p.CacheSet)))
}

// ExecuteContext is Execute bound to a context and an explicit cache
// manager (nil disables materialization; use DefaultCache for the plan's
// pinned set). Cancellation mid-fit returns the context error along with
// the partial execution report.
func (p *Plan) ExecuteContext(ctx context.Context, data, labels *engine.Collection, parallelism int, cache *engine.CacheManager) (map[int]core.TransformOp, *engine.Collection, *core.ExecReport, error) {
	ectx := engine.NewContext(parallelism)
	ex := core.NewExecutor(p.Graph, ectx, cache, data, labels)
	p.configureScheduler(ex)
	p.configureSharing(ex)
	return ex.RunContext(ctx)
}
