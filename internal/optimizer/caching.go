package optimizer

import (
	"sort"
	"strconv"

	"keystoneml/internal/core"
)

// executionCounts computes, for every reachable node, how many times its
// computation will run under a given cache set. This is the T(v)/C(v)
// recurrence of Section 4.3 in execution-count form:
//
//	accesses(v) = Σ_{p ∈ π(v)} w(p) · computes(p)   (sink gets 1 external access)
//	computes(v) = 1 if v is cached, else accesses(v)
//
// with two refinements matching the executor's actual semantics: fitted
// models are memoized, so estimator nodes compute exactly once regardless
// of caching (it is their *inputs* that are refetched w times per fit),
// and an estimator accesses its label dependency only once per fit.
func executionCounts(g *core.Graph, cached map[int]bool) map[int]float64 {
	order := g.Topological()
	accesses := make(map[int]float64, len(order))
	computes := make(map[int]float64, len(order))
	accesses[g.Sink.ID] += 1 // the pipeline output is consumed once

	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		a := accesses[v.ID]
		var comp float64
		switch v.Kind {
		case core.KindEstimator:
			comp = 1
		case core.KindSource, core.KindLabels:
			comp = a // free: bound input collections; t(v) = 0
		default:
			if cached[v.ID] {
				comp = min(a, 1)
			} else {
				comp = a
			}
		}
		computes[v.ID] = comp
		switch v.Kind {
		case core.KindEstimator:
			w := float64(v.Weight())
			accesses[v.Deps[0].ID] += w * comp
			if len(v.Deps) > 1 {
				accesses[v.Deps[1].ID] += comp
			}
		case core.KindApplyModel:
			// Deps[0] is the estimator (model access, free); Deps[1] is data.
			accesses[v.Deps[1].ID] += comp
		default:
			for _, d := range v.Deps {
				accesses[d.ID] += comp
			}
		}
	}
	return computes
}

// EstRuntime estimates total pipeline execution time (seconds) under a
// cache set, using the profile's per-node local times: Σ_v t(v)·computes(v).
// This is the paper's sequential cost model — exact for the depth-first
// oracle, an overestimate under the parallel scheduler, where branch
// recomputes overlap. EstCost generalizes it to k workers.
func EstRuntime(g *core.Graph, prof *Profile, cached map[int]bool) float64 {
	computes := executionCounts(g, cached)
	var total float64
	for id, c := range computes {
		if np, ok := prof.Nodes[id]; ok {
			total += np.TimeSec * c
		}
	}
	return total
}

// profTimes extracts the per-node local time map a schedule plan
// consumes from a profile.
func profTimes(prof *Profile) map[int]float64 {
	out := make(map[int]float64, len(prof.Nodes))
	for id, np := range prof.Nodes {
		out[id] = np.TimeSec
	}
	return out
}

// EstCost estimates pipeline execution wall-clock (seconds) under a
// cache set with k DAG workers: the sequential Σ t(v)·computes(v) model
// for workers <= 1, the shared schedule plan's list-scheduling makespan
// simulation otherwise. This is the objective the materialization
// planner minimizes, so pins are ranked by their effect on parallel
// wall-clock rather than on total work.
func EstCost(g *core.Graph, prof *Profile, cached map[int]bool, workers int) float64 {
	if workers <= 1 {
		return EstRuntime(g, prof, cached)
	}
	return core.NewSchedulePlan(g, profTimes(prof), cached, workers).Makespan()
}

// ScheduleFor builds the shared schedule plan both layers consume: the
// profile's node times, the chosen materialization set as cache
// boundaries, and the execution worker count. The executor orders
// dispatch by its priorities and drives speculative retention from its
// refetch sets; the planner used the same model (via EstCost) to choose
// the pins, so optimizer and executor finally reason about one schedule.
func ScheduleFor(g *core.Graph, prof *Profile, cacheSet []int, workers int) *core.SchedulePlan {
	cached := make(map[int]bool, len(cacheSet))
	for _, id := range cacheSet {
		cached[id] = true
	}
	var times map[int]float64
	if prof != nil {
		times = profTimes(prof)
	}
	return core.NewSchedulePlan(g, times, cached, workers)
}

// cacheable reports whether a node's output may be materialized: sources
// and labels are already in memory, and estimator nodes produce models
// (memoized separately), so only data-producing operator nodes qualify.
func cacheable(n *core.Node) bool {
	switch n.Kind {
	case core.KindTransform, core.KindGather, core.KindApplyModel:
		return true
	default:
		return false
	}
}

// setCost is the planner's lexicographic objective under k workers:
// primarily the modeled wall-clock (makespan for k > 1), secondarily the
// sequential total-work estimate. The secondary term matters only in the
// parallel model, where pinning one node of an off-critical-path subtree
// can leave the makespan unchanged (Δ = 0) even though a *set* of such
// pins would shorten it: ranking zero-makespan-delta candidates by work
// reduction lets greedy walk through those plateaus instead of stalling.
type setCost struct {
	wall float64 // EstCost: wall-clock under k workers
	work float64 // EstRuntime: sequential total work
}

func costOf(g *core.Graph, prof *Profile, cached map[int]bool, workers int, dist *core.DistModel) setCost {
	work := EstRuntime(g, prof, cached)
	if dist != nil {
		return setCost{wall: EstCostDist(g, prof, cached, dist), work: work}
	}
	if workers <= 1 {
		return setCost{wall: work, work: work}
	}
	return setCost{wall: EstCost(g, prof, cached, workers), work: work}
}

// improves reports whether c is a strict lexicographic improvement on
// best (tolerances absorb float noise from the simulator's additions).
func (c setCost) improves(best setCost) bool {
	const eps = 1e-12
	if c.wall < best.wall-eps {
		return true
	}
	return c.wall < best.wall+eps && c.work < best.work-eps
}

// GreedyCacheSet is Algorithm 1 generalized to the executor's actual
// schedule: starting from an empty cache set, it repeatedly adds the
// node whose materialization most reduces the estimated wall-clock under
// `workers` DAG workers (EstCost — the paper's sequential Σ t(v)·computes
// for workers <= 1, the list-scheduling makespan otherwise) while
// fitting in the remaining memory, until no node improves the estimate
// or memory is exhausted. memBudget <= 0 means unlimited.
func GreedyCacheSet(g *core.Graph, prof *Profile, memBudget int64, workers int) []int {
	return greedyCacheSet(g, prof, memBudget, workers, nil)
}

// GreedyCacheSetDist is GreedyCacheSet under a distributed cost model:
// candidates are ranked by the dist-time makespan (network transfer and
// stage launches included), so the planner pins the datasets whose
// round-trips across the coordinator⇄worker boundary cost the most, not
// just the ones costing the most recompute.
func GreedyCacheSetDist(g *core.Graph, prof *Profile, memBudget int64, dist *core.DistModel) []int {
	return greedyCacheSet(g, prof, memBudget, 1, dist)
}

func greedyCacheSet(g *core.Graph, prof *Profile, memBudget int64, workers int, dist *core.DistModel) []int {
	cached := make(map[int]bool)
	memLeft := memBudget
	current := costOf(g, prof, cached, workers, dist)
	var result []int
	candidates := cacheCandidates(g, prof)
	for {
		best := -1
		bestCost := current
		for _, id := range candidates {
			if cached[id] {
				continue
			}
			np := prof.Nodes[id]
			if memBudget > 0 && np.SizeBytes > memLeft {
				continue
			}
			cached[id] = true
			c := costOf(g, prof, cached, workers, dist)
			delete(cached, id)
			if c.improves(bestCost) {
				best = id
				bestCost = c
			}
		}
		if best < 0 {
			break
		}
		cached[best] = true
		memLeft -= prof.Nodes[best].SizeBytes
		current = bestCost
		result = append(result, best)
	}
	sort.Ints(result)
	return result
}

// ExactCacheSet brute-forces the optimal cache set for small DAGs under
// the same k-worker cost model as GreedyCacheSet (used in tests to
// validate the greedy heuristic; the paper rejects ILP solving at
// optimization time as too slow, which exhaustive search confirms — it
// is exponential in the candidate count).
func ExactCacheSet(g *core.Graph, prof *Profile, memBudget int64, workers int) ([]int, float64) {
	candidates := cacheCandidates(g, prof)
	if len(candidates) > 20 {
		panic("optimizer: ExactCacheSet limited to 20 candidates")
	}
	bestTime := EstCost(g, prof, map[int]bool{}, workers)
	var bestSet []int
	for mask := 0; mask < 1<<len(candidates); mask++ {
		var size int64
		cached := make(map[int]bool)
		for b, id := range candidates {
			if mask&(1<<b) != 0 {
				cached[id] = true
				size += prof.Nodes[id].SizeBytes
			}
		}
		if memBudget > 0 && size > memBudget {
			continue
		}
		t := EstCost(g, prof, cached, workers)
		if t < bestTime {
			bestTime = t
			bestSet = bestSet[:0]
			for id := range cached {
				bestSet = append(bestSet, id)
			}
		}
	}
	sort.Ints(bestSet)
	return bestSet, bestTime
}

func cacheCandidates(g *core.Graph, prof *Profile) []int {
	var out []int
	for _, n := range g.Topological() {
		if cacheable(n) && prof.Nodes[n.ID] != nil {
			out = append(out, n.ID)
		}
	}
	return out
}

// EstimatorInputIDs returns the data-dependency node IDs of every
// estimator — the "cache Estimator results" rule-based baseline caches the
// estimator *outputs*; this helper also powers reporting.
func EstimatorInputIDs(g *core.Graph) []int {
	var out []int
	for _, n := range g.Topological() {
		if n.Kind == core.KindEstimator {
			out = append(out, n.Deps[0].ID)
		}
	}
	return out
}

// ApplyModelIDs returns the IDs of model-application nodes: the
// rule-based policy treats these (the results of Estimators applied to
// data, i.e. what a fitted model produces) as its cacheable set.
func ApplyModelIDs(g *core.Graph) []int {
	var out []int
	for _, n := range g.Topological() {
		if n.Kind == core.KindApplyModel {
			out = append(out, n.ID)
		}
	}
	return out
}

// CacheKeys converts node IDs to engine cache keys (the executor's
// keyspace).
func CacheKeys(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = "node:" + strconv.Itoa(id)
	}
	return out
}
