package optimizer

import (
	"sort"
	"strconv"

	"keystoneml/internal/core"
)

// executionCounts computes, for every reachable node, how many times its
// computation will run under a given cache set. This is the T(v)/C(v)
// recurrence of Section 4.3 in execution-count form:
//
//	accesses(v) = Σ_{p ∈ π(v)} w(p) · computes(p)   (sink gets 1 external access)
//	computes(v) = 1 if v is cached, else accesses(v)
//
// with two refinements matching the executor's actual semantics: fitted
// models are memoized, so estimator nodes compute exactly once regardless
// of caching (it is their *inputs* that are refetched w times per fit),
// and an estimator accesses its label dependency only once per fit.
func executionCounts(g *core.Graph, cached map[int]bool) map[int]float64 {
	order := g.Topological()
	accesses := make(map[int]float64, len(order))
	computes := make(map[int]float64, len(order))
	accesses[g.Sink.ID] += 1 // the pipeline output is consumed once

	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		a := accesses[v.ID]
		var comp float64
		switch v.Kind {
		case core.KindEstimator:
			comp = 1
		case core.KindSource, core.KindLabels:
			comp = a // free: bound input collections; t(v) = 0
		default:
			if cached[v.ID] {
				comp = min(a, 1)
			} else {
				comp = a
			}
		}
		computes[v.ID] = comp
		switch v.Kind {
		case core.KindEstimator:
			w := float64(v.Weight())
			accesses[v.Deps[0].ID] += w * comp
			if len(v.Deps) > 1 {
				accesses[v.Deps[1].ID] += comp
			}
		case core.KindApplyModel:
			// Deps[0] is the estimator (model access, free); Deps[1] is data.
			accesses[v.Deps[1].ID] += comp
		default:
			for _, d := range v.Deps {
				accesses[d.ID] += comp
			}
		}
	}
	return computes
}

// EstRuntime estimates total pipeline execution time (seconds) under a
// cache set, using the profile's per-node local times: Σ_v t(v)·computes(v).
func EstRuntime(g *core.Graph, prof *Profile, cached map[int]bool) float64 {
	computes := executionCounts(g, cached)
	var total float64
	for id, c := range computes {
		if np, ok := prof.Nodes[id]; ok {
			total += np.TimeSec * c
		}
	}
	return total
}

// cacheable reports whether a node's output may be materialized: sources
// and labels are already in memory, and estimator nodes produce models
// (memoized separately), so only data-producing operator nodes qualify.
func cacheable(n *core.Node) bool {
	switch n.Kind {
	case core.KindTransform, core.KindGather, core.KindApplyModel:
		return true
	default:
		return false
	}
}

// GreedyCacheSet is Algorithm 1: starting from an empty cache set, it
// repeatedly adds the node whose materialization most reduces estimated
// runtime while fitting in the remaining memory, until no node improves
// the estimate or memory is exhausted. memBudget <= 0 means unlimited.
func GreedyCacheSet(g *core.Graph, prof *Profile, memBudget int64) []int {
	cached := make(map[int]bool)
	memLeft := memBudget
	current := EstRuntime(g, prof, cached)
	var result []int
	candidates := cacheCandidates(g, prof)
	for {
		best := -1
		bestTime := current
		for _, id := range candidates {
			if cached[id] {
				continue
			}
			np := prof.Nodes[id]
			if memBudget > 0 && np.SizeBytes > memLeft {
				continue
			}
			cached[id] = true
			t := EstRuntime(g, prof, cached)
			delete(cached, id)
			if t < bestTime-1e-12 {
				best = id
				bestTime = t
			}
		}
		if best < 0 {
			break
		}
		cached[best] = true
		memLeft -= prof.Nodes[best].SizeBytes
		current = bestTime
		result = append(result, best)
	}
	sort.Ints(result)
	return result
}

// ExactCacheSet brute-forces the optimal cache set for small DAGs (used
// in tests to validate the greedy heuristic; the paper rejects ILP
// solving at optimization time as too slow, which exhaustive search
// confirms — it is exponential in the candidate count).
func ExactCacheSet(g *core.Graph, prof *Profile, memBudget int64) ([]int, float64) {
	candidates := cacheCandidates(g, prof)
	if len(candidates) > 20 {
		panic("optimizer: ExactCacheSet limited to 20 candidates")
	}
	bestTime := EstRuntime(g, prof, map[int]bool{})
	var bestSet []int
	for mask := 0; mask < 1<<len(candidates); mask++ {
		var size int64
		cached := make(map[int]bool)
		for b, id := range candidates {
			if mask&(1<<b) != 0 {
				cached[id] = true
				size += prof.Nodes[id].SizeBytes
			}
		}
		if memBudget > 0 && size > memBudget {
			continue
		}
		t := EstRuntime(g, prof, cached)
		if t < bestTime {
			bestTime = t
			bestSet = bestSet[:0]
			for id := range cached {
				bestSet = append(bestSet, id)
			}
		}
	}
	sort.Ints(bestSet)
	return bestSet, bestTime
}

func cacheCandidates(g *core.Graph, prof *Profile) []int {
	var out []int
	for _, n := range g.Topological() {
		if cacheable(n) && prof.Nodes[n.ID] != nil {
			out = append(out, n.ID)
		}
	}
	return out
}

// EstimatorInputIDs returns the data-dependency node IDs of every
// estimator — the "cache Estimator results" rule-based baseline caches the
// estimator *outputs*; this helper also powers reporting.
func EstimatorInputIDs(g *core.Graph) []int {
	var out []int
	for _, n := range g.Topological() {
		if n.Kind == core.KindEstimator {
			out = append(out, n.Deps[0].ID)
		}
	}
	return out
}

// ApplyModelIDs returns the IDs of model-application nodes: the
// rule-based policy treats these (the results of Estimators applied to
// data, i.e. what a fitted model produces) as its cacheable set.
func ApplyModelIDs(g *core.Graph) []int {
	var out []int
	for _, n := range g.Topological() {
		if n.Kind == core.KindApplyModel {
			out = append(out, n.ID)
		}
	}
	return out
}

// CacheKeys converts node IDs to engine cache keys (the executor's
// keyspace).
func CacheKeys(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = "node:" + strconv.Itoa(id)
	}
	return out
}
