// Package optimizer implements KeystoneML's two optimization layers:
//
//   - Operator-level (Section 3): choose each Optimizable node's physical
//     implementation by scoring its CostModels against sampled input
//     statistics and the cluster resource descriptor.
//   - Whole-pipeline (Section 4): execution subsampling to build a
//     pipeline profile, common sub-expression elimination, and automatic
//     materialization — the greedy Algorithm 1 that picks which
//     intermediate outputs to cache under a memory budget, with LRU,
//     rule-based and exact (brute-force) comparators.
package optimizer

import (
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
)

// NodeProfile is the per-node entry of the pipeline profile (Section
// 4.1): estimated full-scale local compute time t(v), output size
// size(v), iteration weight w(v), and the statistics of the node's input
// used for operator selection.
type NodeProfile struct {
	Name       string
	Kind       core.NodeKind
	TimeSec    float64 // t(v): local compute time at full scale
	SizeBytes  int64   // size(v): output size at full scale
	Weight     int     // w(v): passes the node makes over its input
	InputStats cost.DataStats
	OutStats   cost.DataStats
}

// Profile is the pipeline profile: extrapolated per-node measurements
// keyed by node ID.
type Profile struct {
	Nodes map[int]*NodeProfile
	// SampleN is the sample size the profile was measured on; FullN the
	// dataset size it was extrapolated to.
	SampleN, FullN int
	// Elapsed is the profiling overhead (reported in Figure 9's Optimize
	// stage).
	Elapsed time.Duration
}

// inspect derives record-level statistics from a slice of sample records:
// scalar count per record, nonzero fraction, and bytes.
func inspect(records []any) (dim int64, sparsity float64, bytesPer float64) {
	if len(records) == 0 {
		return 0, 1, 0
	}
	var scalars, nnz, bytes int64
	for _, r := range records {
		s, z := recordScalars(r)
		scalars += s
		nnz += z
		bytes += core.SizeOf(r)
	}
	n := int64(len(records))
	dim = scalars / n
	if scalars > 0 {
		sparsity = float64(nnz) / float64(scalars)
	} else {
		sparsity = 1
	}
	return dim, sparsity, float64(bytes) / float64(n)
}

// recordScalars counts the logical scalar slots and nonzeros of a record.
func recordScalars(r any) (scalars, nnz int64) {
	switch x := r.(type) {
	case []float64:
		for _, v := range x {
			if v != 0 {
				nnz++
			}
		}
		return int64(len(x)), nnz
	case *linalg.SparseVector:
		return int64(x.Dim), int64(x.NNZ())
	case [][]float64:
		for _, d := range x {
			s, z := recordScalars(d)
			scalars += s
			nnz += z
		}
		return scalars, nnz
	case *image.Image:
		for _, v := range x.Pix {
			if v != 0 {
				nnz++
			}
		}
		return int64(len(x.Pix)), nnz
	case map[string]float64:
		return int64(len(x)), int64(len(x))
	case string:
		return int64(len(x)), int64(len(x))
	case []string:
		var n int64
		for _, s := range x {
			n += int64(len(s))
		}
		return n, n
	default:
		return 1, 1
	}
}

// statsOf builds DataStats for a sample, extrapolated to fullN records.
func statsOf(records []any, fullN int, numClasses int) cost.DataStats {
	dim, sp, bytesPer := inspect(records)
	return cost.DataStats{
		N:        int64(fullN),
		Dim:      dim,
		K:        int64(numClasses),
		Sparsity: sp,
		Bytes:    int64(bytesPer * float64(fullN)),
	}
}

// extrapolate fits time(n) = a + b·n through two sample measurements and
// evaluates at fullN, clamping at non-negative. With a single point it
// scales linearly. This mirrors the paper's two-sample (512/1024) linear
// regression, whose runtime estimates were within 15% of actuals.
func extrapolate(n1 int, t1 float64, n2 int, t2 float64, fullN int) float64 {
	if n2 == n1 {
		if n1 == 0 {
			return 0
		}
		return t1 * float64(fullN) / float64(n1)
	}
	b := (t2 - t1) / float64(n2-n1)
	a := t1 - b*float64(n1)
	est := a + b*float64(fullN)
	if est < 0 {
		est = 0
	}
	return est
}
