package optimizer

import (
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
)

// sampleRun executes the pipeline DAG over a sample, measuring each
// node's local time and output statistics, and — when selection is
// enabled — choosing every Optimizable node's physical implementation
// from its sampled input statistics *before* executing it, exactly the
// interleaved procedure of Section 4.1. Node outputs are memoized during
// profiling (the sample is small, recompute semantics are irrelevant
// here).
type sampleRun struct {
	g          *core.Graph
	ctx        *engine.Context
	cfg        Config
	fullN      int
	data       *engine.Collection
	labels     *engine.Collection
	selectOps  bool
	chosen     map[int]string
	memo       map[int]*engine.Collection
	models     map[int]core.TransformOp
	localTime  map[int]time.Duration
	outRecords map[int][]any
	inStats    map[int]cost.DataStats
}

func newSampleRun(g *core.Graph, ctx *engine.Context, data, labels *engine.Collection, fullN int, cfg Config, selectOps bool) *sampleRun {
	return &sampleRun{
		g: g, ctx: ctx, cfg: cfg, fullN: fullN,
		data: data, labels: labels, selectOps: selectOps,
		chosen:     make(map[int]string),
		memo:       make(map[int]*engine.Collection),
		models:     make(map[int]core.TransformOp),
		localTime:  make(map[int]time.Duration),
		outRecords: make(map[int][]any),
		inStats:    make(map[int]cost.DataStats),
	}
}

// run executes every reachable node once in topological order.
func (s *sampleRun) run() {
	for _, n := range s.g.Topological() {
		s.eval(n)
	}
}

func (s *sampleRun) eval(n *core.Node) *engine.Collection {
	if c, ok := s.memo[n.ID]; ok {
		return c
	}
	var out *engine.Collection
	switch n.Kind {
	case core.KindSource:
		out = s.data
	case core.KindLabels:
		out = s.labels
	case core.KindTransform:
		in := s.eval(n.Deps[0])
		s.noteInput(n, in)
		s.maybeSelectTransform(n)
		start := time.Now()
		out = s.ctx.Map(in, n.Transform.Apply)
		s.localTime[n.ID] += time.Since(start)
	case core.KindGather:
		ins := make([]*engine.Collection, len(n.Deps))
		for i, d := range n.Deps {
			ins[i] = s.eval(d)
		}
		s.noteInput(n, ins[0])
		start := time.Now()
		out = ins[0]
		for i := 1; i < len(ins); i++ {
			out = s.ctx.Zip(out, ins[i], concatFeatures)
		}
		s.localTime[n.ID] += time.Since(start)
	case core.KindEstimator:
		in := s.eval(n.Deps[0])
		s.noteInput(n, in)
		s.maybeSelectEstimator(n)
		var labelFetch core.Fetch
		if len(n.Deps) > 1 {
			lab := s.eval(n.Deps[1])
			labelFetch = func() *engine.Collection { return lab }
		}
		start := time.Now()
		s.models[n.ID] = n.Estimator.Fit(s.ctx, func() *engine.Collection { return in }, labelFetch)
		s.localTime[n.ID] += time.Since(start)
		out = engine.FromSlice(nil, 1) // estimators produce models, not data
	case core.KindApplyModel:
		s.eval(n.Deps[0]) // ensure model fitted
		in := s.eval(n.Deps[1])
		s.noteInput(n, in)
		model := s.models[n.Deps[0].ID]
		start := time.Now()
		out = s.ctx.Map(in, model.Apply)
		s.localTime[n.ID] += time.Since(start)
	}
	s.memo[n.ID] = out
	if n.Kind != core.KindEstimator {
		s.outRecords[n.ID] = out.Collect()
	}
	return out
}

func (s *sampleRun) noteInput(n *core.Node, in *engine.Collection) {
	if _, ok := s.inStats[n.ID]; ok {
		return
	}
	s.inStats[n.ID] = statsOf(in.Collect(), s.fullN, s.cfg.NumClasses)
}

// maybeSelectTransform swaps an Optimizable transformer for the
// cost-model winner under the sampled input statistics.
func (s *sampleRun) maybeSelectTransform(n *core.Node) {
	if !s.selectOps {
		return
	}
	opt, ok := n.Transform.(core.Optimizable)
	if !ok {
		return
	}
	options := opt.Options()
	if len(options) == 0 {
		return
	}
	idx := cost.Choose(options, s.inStats[n.ID], s.cfg.Resources)
	if op, ok := options[idx].Operator.(core.TransformOp); ok {
		n.Transform = op
		s.chosen[n.ID] = op.Name()
	}
}

// maybeSelectEstimator swaps an Optimizable estimator likewise.
func (s *sampleRun) maybeSelectEstimator(n *core.Node) {
	if !s.selectOps {
		return
	}
	opt, ok := n.Estimator.(core.Optimizable)
	if !ok {
		return
	}
	options := opt.Options()
	if len(options) == 0 {
		return
	}
	idx := cost.Choose(options, s.inStats[n.ID], s.cfg.Resources)
	if op, ok := options[idx].Operator.(core.EstimatorOp); ok {
		n.Estimator = op
		s.chosen[n.ID] = op.Name()
	}
}

func concatFeatures(a, b any) any {
	x := a.([]float64)
	y := b.([]float64)
	out := make([]float64, 0, len(x)+len(y))
	out = append(out, x...)
	return append(out, y...)
}
