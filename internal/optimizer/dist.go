package optimizer

import (
	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
)

// This file connects the materialization planner to the distributed cost
// model: keystone/dist fits run the same optimizer as local fits, but
// cost cache candidates with the dist-time makespan (schedule_dist.go),
// whose network-transfer and stage-launch terms come from the cluster
// resource descriptor and the profile's per-node output sizes.

// DistModelFor builds the distributed cost model for a profiled graph
// executing over `workers` worker processes described by res: stage
// launch latency straight from the descriptor, network seconds-per-byte
// from its coordinator weight, and per-node transfer sizes from the
// profile's full-data output estimates.
func DistModelFor(prof *Profile, res cluster.Resources, workers int) *core.DistModel {
	out := make(map[int]int64, len(prof.Nodes))
	for id, np := range prof.Nodes {
		if np.SizeBytes > 0 {
			out[id] = np.SizeBytes
		}
	}
	return &core.DistModel{
		Workers:         workers,
		StageLatencySec: res.StageLatencySec,
		NetSecPerByte:   res.CoordWeight(),
		OutBytes:        out,
	}
}

// EstCostDist estimates wall-clock seconds of a distributed execution
// under a cache set: the dist-time simulation of the shared schedule
// plan. It is to keystone/dist what EstCost is to the local executor —
// the objective GreedyCacheSetDist minimizes.
func EstCostDist(g *core.Graph, prof *Profile, cached map[int]bool, dist *core.DistModel) float64 {
	return core.NewSchedulePlan(g, profTimes(prof), cached, 1).WithDist(dist).Makespan()
}

// ScheduleForDist builds the schedule plan a distributed fit consumes:
// ScheduleFor with the dist model attached, so Makespan and the
// coordinator's cost reporting reflect off-box execution. The plan keeps
// Workers = 1 — the coordinator's DAG walk is sequential; parallelism
// lives inside each remote dispatch.
func ScheduleForDist(g *core.Graph, prof *Profile, cacheSet []int, dist *core.DistModel) *core.SchedulePlan {
	return ScheduleFor(g, prof, cacheSet, 1).WithDist(dist)
}
