package optimizer

import (
	"testing"
	"testing/quick"
	"time"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// buildChain constructs Input -> t1 -> t2 -> estimator(weight w) -> apply,
// returning the graph and interesting node IDs.
func buildChain(w int) (g *core.Graph, t1, t2 int) {
	p := core.Input[float64]()
	p1 := core.AndThen(p, core.FuncOp("t1", func(x float64) float64 { return x + 1 }))
	p2 := core.AndThen(p1, core.FuncOp("t2", func(x float64) float64 { return 2 * x }))
	est := &weightedEst{w: w}
	p3 := core.AndThenEstimator(p2, core.NewEst[float64, float64](est))
	return p3.Graph(), p1.OutputNode().ID, p2.OutputNode().ID
}

type weightedEst struct{ w int }

func (e *weightedEst) Name() string { return "test.est" }
func (e *weightedEst) Weight() int  { return e.w }
func (e *weightedEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	for i := 0; i < e.w; i++ {
		data()
	}
	return core.IdentityOp()
}

// profileFor fabricates a profile with uniform per-node times and sizes.
func profileFor(g *core.Graph, timeSec float64, size int64) *Profile {
	prof := &Profile{Nodes: map[int]*NodeProfile{}, FullN: 1000}
	for _, n := range g.Topological() {
		t := timeSec
		if n.Kind == core.KindSource || n.Kind == core.KindLabels {
			t = 0
		}
		prof.Nodes[n.ID] = &NodeProfile{Name: n.OpName(), Kind: n.Kind, TimeSec: t, SizeBytes: size, Weight: n.Weight()}
	}
	return prof
}

func TestExecutionCountsNoCache(t *testing.T) {
	g, t1, t2 := buildChain(5)
	counts := executionCounts(g, map[int]bool{})
	// Estimator (weight 5) + downstream apply: t2 computed 6 times, t1 too
	// (chain recomputes all the way down).
	if counts[t2] != 6 {
		t.Errorf("t2 computes = %g, want 6", counts[t2])
	}
	if counts[t1] != 6 {
		t.Errorf("t1 computes = %g, want 6", counts[t1])
	}
}

func TestExecutionCountsWithCache(t *testing.T) {
	g, t1, t2 := buildChain(5)
	counts := executionCounts(g, map[int]bool{t2: true})
	if counts[t2] != 1 {
		t.Errorf("cached t2 computes = %g, want 1", counts[t2])
	}
	if counts[t1] != 1 {
		t.Errorf("t1 behind cached t2 computes = %g, want 1", counts[t1])
	}
}

func TestExecutionCountsMatchExecutor(t *testing.T) {
	// The analytical model must agree with what the executor actually does.
	for _, w := range []int{1, 3, 7} {
		g, t1, t2 := buildChain(w)
		pred := executionCounts(g, map[int]bool{})
		items := []any{1.0, 2.0}
		ex := core.NewExecutor(g, engine.NewContext(1), nil, engine.FromSlice(items, 1), nil)
		_, _, report := ex.Run()
		for _, id := range []int{t1, t2} {
			if got := float64(report.Nodes[id].Computes); got != pred[id] {
				t.Errorf("w=%d node %d: model %g, executor %g", w, id, pred[id], got)
			}
		}
	}
}

func TestCachingNeverHurts(t *testing.T) {
	// Property: adding any single cacheable node never increases the
	// estimated runtime.
	g, _, _ := buildChain(4)
	prof := profileFor(g, 0.1, 100)
	base := EstRuntime(g, prof, map[int]bool{})
	for _, n := range g.Topological() {
		if !cacheable(n) {
			continue
		}
		withV := EstRuntime(g, prof, map[int]bool{n.ID: true})
		if withV > base+1e-12 {
			t.Errorf("caching node %d increased runtime %g -> %g", n.ID, base, withV)
		}
	}
}

func TestGreedyBeatsNoCache(t *testing.T) {
	g, _, _ := buildChain(10)
	prof := profileFor(g, 0.1, 100)
	set := GreedyCacheSet(g, prof, 1000, 1)
	if len(set) == 0 {
		t.Fatal("greedy cached nothing despite weight-10 estimator")
	}
	cached := map[int]bool{}
	for _, id := range set {
		cached[id] = true
	}
	if EstRuntime(g, prof, cached) >= EstRuntime(g, prof, map[int]bool{}) {
		t.Error("greedy cache set did not improve estimated runtime")
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	g, _, _ := buildChain(10)
	prof := profileFor(g, 0.1, 100)
	set := GreedyCacheSet(g, prof, 150, 1) // only one 100-byte node fits
	var total int64
	for _, id := range set {
		total += prof.Nodes[id].SizeBytes
	}
	if total > 150 {
		t.Errorf("greedy used %d bytes over budget 150", total)
	}
	if len(set) != 1 {
		t.Errorf("greedy cached %d nodes, want exactly 1 under budget", len(set))
	}
}

func TestGreedyPicksHighestValueNodeUnderPressure(t *testing.T) {
	// Two candidates; the one whose materialization saves more time (just
	// upstream of the iterative estimator) must win when only one fits.
	g, t1, t2 := buildChain(10)
	prof := profileFor(g, 0.1, 100)
	// Make t1 cheap to compute and t2 expensive.
	prof.Nodes[t1].TimeSec = 0.001
	prof.Nodes[t2].TimeSec = 1.0
	set := GreedyCacheSet(g, prof, 100, 1)
	if len(set) != 1 || set[0] != t2 {
		t.Errorf("greedy picked %v, want [%d] (the expensive node)", set, t2)
	}
}

func TestGreedyMatchesExactOnChain(t *testing.T) {
	for _, budget := range []int64{0, 100, 200, 1000} {
		g, _, _ := buildChain(6)
		prof := profileFor(g, 0.1, 100)
		gSet := GreedyCacheSet(g, prof, budget, 1)
		gCached := map[int]bool{}
		for _, id := range gSet {
			gCached[id] = true
		}
		gTime := EstRuntime(g, prof, gCached)
		_, eTime := ExactCacheSet(g, prof, budget, 1)
		if gTime > eTime*1.0001 {
			t.Errorf("budget %d: greedy %.4f worse than exact %.4f", budget, gTime, eTime)
		}
	}
}

func TestGreedyNearExactOnBranchingDAG(t *testing.T) {
	// Branching pipeline: shared prefix, two estimator branches, gather.
	p := core.Input[[]float64]()
	shared := core.AndThen(p, core.FuncOp("shared", func(x []float64) []float64 { return x }))
	b1 := core.AndThenEstimator(shared, core.NewEst[[]float64, []float64](&vecEst{w: 8}))
	b2 := core.AndThenEstimator(shared, core.NewEst[[]float64, []float64](&vecEst{w: 3}))
	g := core.Gather(b1, b2).Graph()
	prof := profileFor(g, 0.1, 100)
	for _, budget := range []int64{100, 250, 400, 0} {
		gSet := GreedyCacheSet(g, prof, budget, 1)
		cached := map[int]bool{}
		for _, id := range gSet {
			cached[id] = true
		}
		gTime := EstRuntime(g, prof, cached)
		_, eTime := ExactCacheSet(g, prof, budget, 1)
		// Greedy is a heuristic; require it within 25% of optimal here
		// (empirically it is exact on these DAGs).
		if gTime > eTime*1.25 {
			t.Errorf("budget %d: greedy %.4f >> exact %.4f", budget, gTime, eTime)
		}
	}
}

type vecEst struct{ w int }

func (e *vecEst) Name() string { return "test.vecest" }
func (e *vecEst) Weight() int  { return e.w }
func (e *vecEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	for i := 0; i < e.w; i++ {
		data()
	}
	return core.IdentityOp()
}

// Property (testing/quick): greedy runtime is monotone non-increasing in
// the memory budget.
func TestGreedyMonotoneInBudget(t *testing.T) {
	g, _, _ := buildChain(7)
	prof := profileFor(g, 0.05, 100)
	f := func(b1, b2 uint16) bool {
		lo, hi := int64(b1), int64(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		run := func(budget int64) float64 {
			set := GreedyCacheSet(g, prof, budget, 1)
			cached := map[int]bool{}
			for _, id := range set {
				cached[id] = true
			}
			return EstRuntime(g, prof, cached)
		}
		return run(hi) <= run(lo)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSEMergesIdenticalBranches(t *testing.T) {
	// Two branches applying the same op to the same input must merge.
	p := core.Input[[]float64]()
	b1 := core.AndThen(p, core.FuncOp("same", func(x []float64) []float64 { return x }))
	b2 := core.AndThen(p, core.FuncOp("same", func(x []float64) []float64 { return x }))
	g := core.Gather(b1, b2).Graph()
	before := len(g.Topological())
	merged := CSE(g)
	after := len(g.Topological())
	if merged != 1 {
		t.Errorf("merged = %d, want 1", merged)
	}
	if after >= before {
		t.Errorf("reachable nodes %d -> %d, want reduction", before, after)
	}
	// Execution still works and both gather inputs are identical.
	ex := core.NewExecutor(g, engine.NewContext(1), nil, engine.FromSlice([]any{[]float64{1, 2}}, 1), nil)
	_, out, _ := ex.Run()
	got := out.Collect()[0].([]float64)
	if len(got) != 4 {
		t.Errorf("gathered length = %d, want 4", len(got))
	}
}

func TestCSEPreservesDistinctOps(t *testing.T) {
	p := core.Input[[]float64]()
	b1 := core.AndThen(p, core.FuncOp("opA", func(x []float64) []float64 { return x }))
	b2 := core.AndThen(p, core.FuncOp("opB", func(x []float64) []float64 { return x }))
	g := core.Gather(b1, b2).Graph()
	if merged := CSE(g); merged != 0 {
		t.Errorf("CSE merged %d distinct nodes", merged)
	}
}

func TestCSECascades(t *testing.T) {
	// a->x->y and a->x'->y' with identical x,x' and y,y': both levels merge.
	p := core.Input[[]float64]()
	x1 := core.AndThen(p, core.FuncOp("x", func(v []float64) []float64 { return v }))
	y1 := core.AndThen(x1, core.FuncOp("y", func(v []float64) []float64 { return v }))
	x2 := core.AndThen(p, core.FuncOp("x", func(v []float64) []float64 { return v }))
	y2 := core.AndThen(x2, core.FuncOp("y", func(v []float64) []float64 { return v }))
	g := core.Gather(y1, y2).Graph()
	if merged := CSE(g); merged != 2 {
		t.Errorf("cascaded CSE merged %d, want 2", merged)
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	g, _, t2 := buildChain(8)
	items := make([]any, 600)
	for i := range items {
		items[i] = float64(i)
	}
	data := engine.FromSlice(items, 4)
	cfg := Config{
		Level:      LevelFull,
		Resources:  cluster.R3_4XLarge(4),
		NumClasses: 2,
	}
	plan := Optimize(g, data, nil, cfg)
	if plan.Profile == nil {
		t.Fatal("no profile produced")
	}
	if plan.Profile.Nodes[t2] == nil {
		t.Fatal("profile missing node")
	}
	if len(plan.CacheSet) == 0 {
		t.Error("weight-8 estimator input not materialized")
	}
	if plan.OptimizeTime <= 0 || plan.OptimizeTime > 10*time.Second {
		t.Errorf("implausible optimize time %v", plan.OptimizeTime)
	}
	// Executing the plan gives the same output as unoptimized execution.
	_, out, _ := plan.Execute(data, nil, 4)
	g2, _, _ := buildChain(8)
	ex := core.NewExecutor(g2, engine.NewContext(4), nil, data, nil)
	_, out2, _ := ex.Run()
	a, b := out.Collect(), out2.Collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("optimized output differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOptimizeLevelNoneIsNoop(t *testing.T) {
	g, _, _ := buildChain(3)
	nodesBefore := len(g.Nodes)
	plan := Optimize(g, engine.FromSlice([]any{1.0}, 1), nil, Config{Level: LevelNone})
	if len(plan.CacheSet) != 0 || plan.Profile != nil || len(g.Nodes) != nodesBefore {
		t.Error("LevelNone must not touch the graph")
	}
}

func TestExtrapolate(t *testing.T) {
	// Perfect linearity: t = 2n.
	if got := extrapolate(100, 200, 200, 400, 1000); got != 2000 {
		t.Errorf("linear extrapolation = %g, want 2000", got)
	}
	// Single point scales proportionally.
	if got := extrapolate(100, 200, 100, 200, 1000); got != 2000 {
		t.Errorf("single-point extrapolation = %g, want 2000", got)
	}
	// Negative estimates clamp to zero.
	if got := extrapolate(100, 50, 200, 10, 10000); got != 0 {
		t.Errorf("clamped extrapolation = %g, want 0", got)
	}
}

func TestLevelString(t *testing.T) {
	if LevelNone.String() != "none" || LevelPipeline.String() != "pipe-only" || LevelFull.String() != "keystoneml" {
		t.Error("Level.String wrong")
	}
}
