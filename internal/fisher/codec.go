package fisher

import (
	"bytes"
	"encoding/gob"

	"keystoneml/internal/core"
	"keystoneml/internal/gmm"
)

// encoderState is the gob payload behind Encoder's StateCodec; the
// mixture model rides as a nested gmm payload.
type encoderState struct {
	Model     []byte
	PowerNorm bool
	L2Norm    bool
}

// StateKind implements core.StateCodec.
func (e *Encoder) StateKind() string { return "fisher.encode" }

// EncodeState implements core.StateCodec.
func (e *Encoder) EncodeState() ([]byte, error) {
	model, err := gmm.EncodeModel(e.Model)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(encoderState{Model: model, PowerNorm: e.PowerNorm, L2Norm: e.L2Norm})
	return buf.Bytes(), err
}

func init() {
	core.RegisterStateDecoder("fisher.encode", func(state []byte) (core.TransformOp, error) {
		var s encoderState
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
			return nil, err
		}
		m, err := gmm.DecodeModel(s.Model)
		if err != nil {
			return nil, err
		}
		return &Encoder{Model: m, PowerNorm: s.PowerNorm, L2Norm: s.L2Norm}, nil
	})
}
