// Package fisher implements the (improved) Fisher vector encoder of
// Sánchez et al., the feature aggregation step of the paper's ImageNet and
// VOC pipelines: a set of local descriptors is encoded against a GMM
// vocabulary into one fixed-length 2·K·d gradient vector, then
// power- and L2-normalized.
package fisher

import (
	"fmt"
	"math"

	"keystoneml/internal/gmm"
)

// Encoder is a TransformOp mapping [][]float64 (the local descriptors of
// one image) to a []float64 Fisher vector of length 2*K*d.
type Encoder struct {
	Model *gmm.Model
	// PowerNorm applies signed square-root normalization (the "improved"
	// FV); L2Norm scales to unit length. Both default to true via
	// NewEncoder.
	PowerNorm bool
	L2Norm    bool
}

// NewEncoder returns an improved-FV encoder (power + L2 normalization).
func NewEncoder(m *gmm.Model) *Encoder {
	return &Encoder{Model: m, PowerNorm: true, L2Norm: true}
}

// Name implements core.TransformOp.
func (e *Encoder) Name() string { return "fisher.encode" }

// Apply implements core.TransformOp.
func (e *Encoder) Apply(in any) any {
	descs, ok := in.([][]float64)
	if !ok {
		panic(fmt.Sprintf("fisher: expected [][]float64 descriptors, got %T", in))
	}
	return e.Encode(descs)
}

// Encode computes the Fisher vector of a descriptor set.
func (e *Encoder) Encode(descs [][]float64) []float64 {
	k := e.Model.K()
	d := e.Model.Dim()
	fv := make([]float64, 2*k*d)
	if len(descs) == 0 {
		return fv
	}
	gMu := fv[:k*d]
	gSig := fv[k*d:]
	for _, x := range descs {
		gam := e.Model.Posteriors(x)
		for c := 0; c < k; c++ {
			g := gam[c]
			if g < 1e-12 {
				continue
			}
			mu := e.Model.Means.Row(c)
			va := e.Model.Vars.Row(c)
			for j := 0; j < d; j++ {
				u := (x[j] - mu[j]) / math.Sqrt(va[j])
				gMu[c*d+j] += g * u
				gSig[c*d+j] += g * (u*u - 1)
			}
		}
	}
	t := float64(len(descs))
	for c := 0; c < k; c++ {
		w := e.Model.Weights[c]
		nMu := 1 / (t * math.Sqrt(w+1e-12))
		nSig := 1 / (t * math.Sqrt(2*(w+1e-12)))
		for j := 0; j < d; j++ {
			gMu[c*d+j] *= nMu
			gSig[c*d+j] *= nSig
		}
	}
	if e.PowerNorm {
		for i, v := range fv {
			if v >= 0 {
				fv[i] = math.Sqrt(v)
			} else {
				fv[i] = -math.Sqrt(-v)
			}
		}
	}
	if e.L2Norm {
		var norm float64
		for _, v := range fv {
			norm += v * v
		}
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for i := range fv {
				fv[i] *= inv
			}
		}
	}
	return fv
}
