package fisher

import (
	"math"
	"testing"

	"keystoneml/internal/gmm"
	"keystoneml/internal/linalg"
)

func toyModel() *gmm.Model {
	return &gmm.Model{
		Weights: []float64{0.5, 0.5},
		Means:   linalg.NewMatrixFrom([][]float64{{0, 0}, {5, 5}}),
		Vars:    linalg.NewMatrixFrom([][]float64{{1, 1}, {1, 1}}),
	}
}

func TestEncodeDimensionality(t *testing.T) {
	e := NewEncoder(toyModel())
	fv := e.Encode([][]float64{{0.1, -0.2}, {4.9, 5.1}})
	if len(fv) != 2*2*2 {
		t.Fatalf("fv length = %d, want 8 (2*K*d)", len(fv))
	}
}

func TestEncodeL2Normalized(t *testing.T) {
	e := NewEncoder(toyModel())
	fv := e.Encode([][]float64{{0.5, 0.3}, {5.5, 4.7}, {1, 0}})
	if n := linalg.Norm2(fv); math.Abs(n-1) > 1e-9 {
		t.Errorf("||fv|| = %g, want 1", n)
	}
}

func TestEncodeEmptyDescriptorSet(t *testing.T) {
	e := NewEncoder(toyModel())
	fv := e.Encode(nil)
	if len(fv) != 8 {
		t.Fatalf("empty fv length = %d", len(fv))
	}
	for _, v := range fv {
		if v != 0 {
			t.Error("empty descriptor set should encode to zeros")
		}
	}
}

func TestEncodeAtMeansIsSmall(t *testing.T) {
	// Descriptors exactly at component means with balanced assignment
	// produce near-zero mean-gradient terms.
	e := &Encoder{Model: toyModel()} // no normalization
	fv := e.Encode([][]float64{{0, 0}, {5, 5}})
	k, d := 2, 2
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			if math.Abs(fv[c*d+j]) > 1e-9 {
				t.Errorf("mean gradient (%d,%d) = %g, want ~0", c, j, fv[c*d+j])
			}
		}
	}
}

func TestEncodeDiscriminates(t *testing.T) {
	// Images drawn around different components must encode differently.
	e := NewEncoder(toyModel())
	a := e.Encode([][]float64{{0.2, -0.1}, {-0.3, 0.2}})
	b := e.Encode([][]float64{{5.2, 4.9}, {4.7, 5.2}})
	var dist float64
	for i := range a {
		d := a[i] - b[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.5 {
		t.Errorf("fisher vectors of distinct content too close: %g", math.Sqrt(dist))
	}
}

func TestApplyTypeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEncoder(toyModel()).Apply([]float64{1, 2})
}

func TestPowerNormSignPreserved(t *testing.T) {
	e := &Encoder{Model: toyModel(), PowerNorm: true}
	fv := e.Encode([][]float64{{1, 1}})
	anyNeg := false
	for _, v := range fv {
		if v < 0 {
			anyNeg = true
		}
	}
	if !anyNeg {
		t.Skip("no negative components in this encoding; sign test vacuous")
	}
}
