package baselines

import (
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/solvers"
	"keystoneml/internal/workload"
)

func fetchOf(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }

func TestVowpalWabbitLearns(t *testing.T) {
	l := workload.DenseVectors(300, 10, 2, 1, 4)
	m := (&VowpalWabbit{Passes: 15}).Fit(engine.NewContext(0), fetchOf(l.Data), fetchOf(l.Labels)).(*solvers.LinearMapper)
	if m.TrainLoss != m.TrainLoss { // NaN check
		t.Fatal("VW diverged (NaN loss)")
	}
	correct := 0
	for i, r := range l.Data.Collect() {
		scores := m.Apply(r).([]float64)
		if (scores[1] > scores[0]) == (l.Truth[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / 300; acc < 0.9 {
		t.Errorf("VW train accuracy %.2f < 0.9", acc)
	}
}

func TestSystemMLMatchesExactSolver(t *testing.T) {
	// CG on normal equations must approach the least-squares optimum.
	l := workload.DenseVectors(200, 12, 3, 2, 4)
	ctx := engine.NewContext(0)
	sysml := (&SystemML{Iterations: 30}).Fit(ctx, fetchOf(l.Data), fetchOf(l.Labels)).(*solvers.LinearMapper)
	exact := (&solvers.LocalQR{}).Fit(ctx, fetchOf(l.Data), fetchOf(l.Labels)).(*solvers.LinearMapper)
	if sysml.TrainLoss > exact.TrainLoss*1.05+1e-9 {
		t.Errorf("SystemML CG loss %g far above exact %g", sysml.TrainLoss, exact.TrainLoss)
	}
}

func TestSystemMLHandlesSparse(t *testing.T) {
	l := workload.SparseVectors(150, 50, 5, 2, 3, 4)
	m := (&SystemML{Iterations: 20}).Fit(engine.NewContext(0), fetchOf(l.Data), fetchOf(l.Labels)).(*solvers.LinearMapper)
	if m.W.Rows != 50 || m.W.Cols != 2 {
		t.Errorf("model shape %dx%d", m.W.Rows, m.W.Cols)
	}
}

func TestBaselinesAreIterative(t *testing.T) {
	var vw core.EstimatorOp = &VowpalWabbit{}
	var sm core.EstimatorOp = &SystemML{}
	if it, ok := vw.(core.Iterative); !ok || it.Weight() < 2 {
		t.Error("VW must be Iterative")
	}
	if it, ok := sm.(core.Iterative); !ok || it.Weight() < 2 {
		t.Error("SystemML must be Iterative")
	}
}

func TestTensorFlowScalingShape(t *testing.T) {
	tf := CIFARDefaults()
	// Strong scaling: improves to a minimum then degrades from sync cost.
	t1 := tf.StrongScaleMinutes(1)
	t4 := tf.StrongScaleMinutes(4)
	t32 := tf.StrongScaleMinutes(32)
	if !(t4 < t1) {
		t.Errorf("strong scaling should improve 1->4 nodes: %g -> %g", t1, t4)
	}
	if !(t32 > t4) {
		t.Errorf("strong scaling should collapse at 32 nodes: %g vs %g", t32, t4)
	}
	// Weak scaling diverges at the threshold (the paper's xxx cells).
	if tf.WeakScaleMinutes(16) >= 0 {
		t.Error("weak scaling should diverge at 16 nodes")
	}
	if tf.WeakScaleMinutes(8) < 0 {
		t.Error("weak scaling should converge at 8 nodes")
	}
}

func TestKeystoneScalingMonotone(t *testing.T) {
	ks := CIFARKeystoneDefaults()
	prev := ks.Minutes(1)
	for _, n := range []int{2, 4, 8, 16, 32} {
		cur := ks.Minutes(n)
		if cur >= prev {
			t.Errorf("KeystoneML scaling not monotone at %d nodes: %g -> %g", n, prev, cur)
		}
		prev = cur
	}
	// Crossover: TensorFlow wins small clusters' best case? Paper: Keystone
	// surpasses TF at 8 nodes and keeps improving.
	tf := CIFARDefaults()
	if ks.Minutes(8) >= tf.StrongScaleMinutes(8) {
		t.Error("KeystoneML should beat TensorFlow at 8 nodes")
	}
}

func TestFigureTwelveShapes(t *testing.T) {
	// ImageNet is near-linear 8->128; Amazon and TIMIT flatten.
	ideal := func(name string) float64 {
		t8 := FigureTwelveModel(name, clusterOf(8)).Total()
		t128 := FigureTwelveModel(name, clusterOf(128)).Total()
		return t8 / t128 // perfect scaling would be 16x
	}
	if s := ideal("ImageNet"); s < 12 {
		t.Errorf("ImageNet speedup 8->128 = %.1fx, want near-linear (>12x)", s)
	}
	if s := ideal("TIMIT"); s > 10 {
		t.Errorf("TIMIT speedup 8->128 = %.1fx, should flatten (<10x)", s)
	}
	// Stage dominance: TIMIT solve-bound, ImageNet featurize-bound.
	tim := FigureTwelveModel("TIMIT", clusterOf(16))
	if tim.Solve < tim.Featurize {
		t.Error("TIMIT should be solve-dominated")
	}
	img := FigureTwelveModel("ImageNet", clusterOf(16))
	if img.Featurize < img.Solve {
		t.Error("ImageNet should be featurization-dominated")
	}
	if FigureTwelveModel("unknown", clusterOf(8)).Total() != 0 {
		t.Error("unknown workload should be zero")
	}
}

func clusterOf(n int) cluster.Resources { return cluster.R3_4XLarge(n) }
