package baselines

import (
	"math"

	"keystoneml/internal/cluster"
)

// TensorFlowScaling is the analytic scaling model behind Table 6: a
// synchronous minibatch-SGD system whose per-step time is
//
//	t_step(w) = compute(batch)/w + sync(w)
//
// where sync grows with the worker count (parameter aggregation +
// barrier). Converging to a fixed accuracy requires a fixed number of
// *examples*; under strong scaling the global batch is constant (so
// steps are constant and sync dominates at scale), while under weak
// scaling the batch grows with w (fewer steps, but statistical
// efficiency degrades — the paper observed failure to converge at 16+
// nodes, which we model as a divergence threshold).
type TensorFlowScaling struct {
	// ExamplesToConverge is the total training examples needed at the
	// reference batch size to reach target accuracy.
	ExamplesToConverge float64
	// BatchSize is the reference (per-cluster) minibatch size.
	BatchSize float64
	// SecPerExample is single-node compute time per example.
	SecPerExample float64
	// SyncBaseSec and SyncPerNodeSec model per-step synchronization:
	// sync(w) = SyncBaseSec + SyncPerNodeSec·w.
	SyncBaseSec    float64
	SyncPerNodeSec float64
	// WeakScalingDivergeAt is the node count at which weak scaling's
	// growing effective batch stops converging (the paper's "xxx" cells);
	// 0 disables.
	WeakScalingDivergeAt int
}

// CIFARDefaults returns constants calibrated so the 1-node time and the
// strong-scaling minimum land near the paper's Table 6 measurements
// (184 min at 1 node, best 57 min at 4 nodes, 292 min at 32).
func CIFARDefaults() TensorFlowScaling {
	return TensorFlowScaling{
		ExamplesToConverge:   6_000_000,
		BatchSize:            128,
		SecPerExample:        184.0 * 60 / 6_000_000, // 184 min on one node
		SyncBaseSec:          0.02,
		SyncPerNodeSec:       0.028,
		WeakScalingDivergeAt: 16,
	}
}

// StrongScaleMinutes returns the modeled time to target accuracy with a
// fixed global batch size on w nodes.
func (t TensorFlowScaling) StrongScaleMinutes(w int) float64 {
	steps := t.ExamplesToConverge / t.BatchSize
	stepSec := t.BatchSize*t.SecPerExample/float64(w) + t.sync(w)
	return steps * stepSec / 60
}

// WeakScaleMinutes returns the modeled time with batch size growing
// linearly in w; returns -1 ("xxx") past the divergence threshold.
func (t TensorFlowScaling) WeakScaleMinutes(w int) float64 {
	if t.WeakScalingDivergeAt > 0 && w >= t.WeakScalingDivergeAt {
		return -1
	}
	batch := t.BatchSize * float64(w)
	// Larger batches are less statistically efficient: examples needed
	// grow ~sqrt(batch growth) (a standard large-batch degradation model).
	examples := t.ExamplesToConverge * sqrtF(float64(w))
	steps := examples / batch
	stepSec := batch*t.SecPerExample/float64(w) + t.sync(w)
	return steps * stepSec / 60
}

func (t TensorFlowScaling) sync(w int) float64 {
	if w <= 1 {
		return t.SyncBaseSec
	}
	return t.SyncBaseSec + t.SyncPerNodeSec*float64(w)
}

// KeystoneCifarScaling models KeystoneML's communication-avoiding
// pipeline on the same task: featurization scales linearly and the solver
// synchronizes once per pass rather than once per minibatch.
type KeystoneCifarScaling struct {
	FeaturizeSecOneNode float64
	SolvePasses         float64
	SolvePassSecOneNode float64
	SyncPerPassSec      float64
}

// CIFARKeystoneDefaults calibrates against Table 6's KeystoneML row
// (235 min at 1 node falling to 29 min at 32 nodes).
func CIFARKeystoneDefaults() KeystoneCifarScaling {
	return KeystoneCifarScaling{
		FeaturizeSecOneNode: 170 * 60,
		SolvePasses:         20,
		SolvePassSecOneNode: 195,
		SyncPerPassSec:      12,
	}
}

// Minutes returns the modeled time to accuracy on w nodes.
func (k KeystoneCifarScaling) Minutes(w int) float64 {
	feat := k.FeaturizeSecOneNode / float64(w)
	solve := k.SolvePasses * (k.SolvePassSecOneNode/float64(w) + k.SyncPerPassSec)
	return (feat + solve) / 60
}

// StageBreakdownMinutes models Figure 12's per-stage times for a pipeline
// whose profile is dominated by embarrassingly parallel featurization
// plus a coordination-bound solve.
type StageBreakdownMinutes struct {
	LoadTrain, Featurize, Solve, LoadTest, Eval float64
}

// FigureTwelveModel evaluates a named workload's stage breakdown at a
// cluster size, from per-stage single-node costs and coordination
// fractions calibrated to the paper's Figure 12 (Amazon and TIMIT stop
// scaling past 64 nodes; ImageNet is near-linear to 128).
func FigureTwelveModel(workload string, res cluster.Resources) StageBreakdownMinutes {
	w := float64(res.Nodes)
	switch workload {
	case "Amazon":
		// Featurization uses an aggregation tree (CommonSparseFeatures)
		// whose depth term grows with log(w)·fixed cost.
		return StageBreakdownMinutes{
			LoadTrain: 24 / w,
			Featurize: 560/w + 0.6*log2(w),
			Solve:     48/w + 0.45*log2(w) + 0.5,
			LoadTest:  6 / w,
			Eval:      14 / w,
		}
	case "TIMIT":
		// Solve-dominated: L-BFGS coordination per iteration.
		return StageBreakdownMinutes{
			LoadTrain: 10 / w,
			Featurize: 220 / w,
			Solve:     2600/w + 2.2*log2(w) + 4.0,
			LoadTest:  2 / w,
			Eval:      8 / w,
		}
	case "ImageNet":
		// Featurization-dominated and embarrassingly parallel.
		return StageBreakdownMinutes{
			LoadTrain: 60 / w,
			Featurize: 28000 / w,
			Solve:     900/w + 0.8*log2(w),
			LoadTest:  12 / w,
			Eval:      120 / w,
		}
	default:
		return StageBreakdownMinutes{}
	}
}

// Total returns the summed stage time.
func (s StageBreakdownMinutes) Total() float64 {
	return s.LoadTrain + s.Featurize + s.Solve + s.LoadTest + s.Eval
}

func sqrtF(x float64) float64 { return math.Sqrt(x) }

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}
