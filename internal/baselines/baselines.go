// Package baselines implements the comparator systems of Section 5.2 as
// faithful-strategy substitutes: each reproduces the *fixed execution
// strategy* that distinguishes the real system from KeystoneML's
// cost-based choice, which is the property Figures 8 and Table 6 test.
//
//   - VowpalWabbit: a specialized linear learner that always runs online
//     SGD regardless of input shape.
//   - SystemML: an optimizing linear-algebra system that always runs
//     conjugate gradient on the normal equations, preceded by a data
//     conversion stage (its optimizer chooses operator implementations
//     but never switches to a logically different algorithm).
//   - TensorFlow: synchronous minibatch SGD whose per-batch model
//     synchronization cost grows with cluster size — the coordination
//     bottleneck behind Table 6's strong-scaling collapse.
package baselines

import (
	"encoding/binary"
	"math"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
	"keystoneml/internal/solvers"
)

// VowpalWabbit always runs online SGD with many passes — fast on sparse
// data, but it cannot switch to an exact solve when features are few and
// dense.
type VowpalWabbit struct {
	Passes int // default 20
}

// Name implements core.EstimatorOp.
func (v *VowpalWabbit) Name() string { return "baseline.vw" }

// Weight implements core.Iterative.
func (v *VowpalWabbit) Weight() int { return v.passes() }

func (v *VowpalWabbit) passes() int {
	if v.Passes > 0 {
		return v.Passes
	}
	return 20
}

// Fit implements core.EstimatorOp.
func (v *VowpalWabbit) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	sgd := &solvers.SGD{Epochs: v.passes(), BatchSize: 1, StepSize: 0.5, Normalized: true}
	m := sgd.Fit(ctx, data, labels).(*solvers.LinearMapper)
	m.SolverName = v.Name()
	return m
}

// SystemML always runs conjugate gradient on the normal equations. Before
// solving it performs the "conversion process for data to be fed into a
// format suitable for the solver" the paper describes — a full densifying
// copy of the input — which is what makes it slower than KeystoneML even
// when the algorithms are comparable.
type SystemML struct {
	Iterations int // CG iterations; default 10 (the paper's comparison runs 10)
	Lambda     float64
}

// Name implements core.EstimatorOp.
func (s *SystemML) Name() string { return "baseline.systemml" }

// Weight implements core.Iterative.
func (s *SystemML) Weight() int { return s.iters() + 1 }

func (s *SystemML) iters() int {
	if s.Iterations > 0 {
		return s.Iterations
	}
	return 10
}

// Fit implements core.EstimatorOp.
func (s *SystemML) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	// Conversion stage: materialize the entire dataset into dense matrix
	// blocks (SystemML's binary block format).
	converted := convertToDense(data())
	lab := labels()
	convFetch := func() *engine.Collection { return converted }

	d := len(converted.Take(1)[0].([]float64))
	k := len(lab.Take(1)[0].([]float64))
	n := converted.Count()

	// CG on (AᵀA + λI) X = AᵀB, with matrix-vector products evaluated as
	// passes over the data (A'(Ax)).
	w := linalg.NewMatrix(d, k)
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-6
	}
	// Right-hand side.
	atb := matTVecAll(ctx, convFetch(), lab, d, k)
	r := atb.Clone()
	p := r.Clone()
	rsOld := frobSq(r)
	for it := 0; it < s.iters(); it++ {
		ap := normalProduct(ctx, convFetch(), p, lambda, float64(n))
		denom := dotAll(p, ap)
		if denom <= 0 {
			break
		}
		alpha := rsOld / denom
		w.Add(p.Clone().Scale(alpha))
		r.Sub(ap.Scale(alpha))
		rsNew := frobSq(r)
		if rsNew < 1e-20 {
			break
		}
		p = r.Clone().Add(p.Scale(rsNew / rsOld))
		rsOld = rsNew
	}
	m := &solvers.LinearMapper{W: w, SolverName: s.Name()}
	m.TrainLoss = trainLoss(ctx, converted, lab, m)
	return m
}

// trainLoss computes the mean squared loss of a model over paired data,
// matching the convention the solvers package records.
func trainLoss(ctx *engine.Context, data, labels *engine.Collection, m *solvers.LinearMapper) float64 {
	type pair struct{ x, y []float64 }
	zipped := ctx.Zip(data, labels, func(a, b any) any { return pair{a.([]float64), b.([]float64)} })
	n := zipped.Count()
	if n == 0 {
		return 0
	}
	sum := ctx.Aggregate(zipped,
		func() any { return 0.0 },
		func(acc, item any) any {
			p := item.(pair)
			pred := m.Apply(p.x).([]float64)
			s := acc.(float64)
			for j, v := range pred {
				d := v - p.y[j]
				s += d * d
			}
			return s
		},
		func(a, b any) any { return a.(float64) + b.(float64) },
	).(float64)
	return sum / float64(n)
}

// convertToDense converts every record into SystemML's solver input
// format: densify and round-trip through a binary block encoding, the
// "conversion process for data to be fed into a format suitable for the
// solver" that costs SystemML its edge in the paper's comparison.
func convertToDense(c *engine.Collection) *engine.Collection {
	items := c.Collect()
	out := make([]any, len(items))
	for i, it := range items {
		var dense []float64
		switch x := it.(type) {
		case []float64:
			dense = linalg.CloneVec(x)
		case *linalg.SparseVector:
			dense = x.Dense()
		default:
			panic("baselines: SystemML conversion expects vectors")
		}
		out[i] = blockRoundTrip(dense)
	}
	return engine.FromSlice(out, c.NumPartitions())
}

// blockRoundTrip serializes a row to the binary block wire format and
// parses it back.
func blockRoundTrip(row []float64) []float64 {
	buf := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	back := make([]float64, len(row))
	for i := range back {
		back[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return back
}

// matTVecAll computes AᵀB over the collection.
func matTVecAll(ctx *engine.Context, data, labels *engine.Collection, d, k int) *linalg.Matrix {
	type pair struct{ x, y []float64 }
	zipped := ctx.Zip(data, labels, func(a, b any) any { return pair{a.([]float64), b.([]float64)} })
	return ctx.Aggregate(zipped,
		func() any { return linalg.NewMatrix(d, k) },
		func(acc, item any) any {
			m := acc.(*linalg.Matrix)
			pr := item.(pair)
			for i, xi := range pr.x {
				if xi == 0 {
					continue
				}
				row := m.Row(i)
				for j, yj := range pr.y {
					row[j] += xi * yj
				}
			}
			return m
		},
		func(a, b any) any { return a.(*linalg.Matrix).Add(b.(*linalg.Matrix)) },
	).(*linalg.Matrix)
}

// normalProduct computes (AᵀA + λ n I) P via one pass (Aᵀ(A P)).
func normalProduct(ctx *engine.Context, data *engine.Collection, p *linalg.Matrix, lambda, n float64) *linalg.Matrix {
	d, k := p.Rows, p.Cols
	out := ctx.Aggregate(data,
		func() any { return linalg.NewMatrix(d, k) },
		func(acc, item any) any {
			m := acc.(*linalg.Matrix)
			x := item.([]float64)
			// t = xᵀ P (k-vector), then m += x ⊗ t.
			t := make([]float64, k)
			for i, xi := range x {
				if xi == 0 {
					continue
				}
				row := p.Row(i)
				for j := 0; j < k; j++ {
					t[j] += xi * row[j]
				}
			}
			for i, xi := range x {
				if xi == 0 {
					continue
				}
				row := m.Row(i)
				for j := 0; j < k; j++ {
					row[j] += xi * t[j]
				}
			}
			return m
		},
		func(a, b any) any { return a.(*linalg.Matrix).Add(b.(*linalg.Matrix)) },
	).(*linalg.Matrix)
	return out.Add(p.Clone().Scale(lambda * n))
}

func frobSq(m *linalg.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

func dotAll(a, b *linalg.Matrix) float64 {
	var s float64
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}
