package cluster

import (
	"math"
	"runtime"
	"sync"
	"time"

	"keystoneml/internal/linalg"
)

// Microbenchmarks holds locally measured hardware characteristics. The
// paper collects the cluster resource descriptor "via configuration data
// and microbenchmarks"; this reproduces the microbenchmark half.
type Microbenchmarks struct {
	Cores          int
	GFLOPs         float64 // multi-core fused multiply-add throughput
	MemBandwidthGB float64 // large-array copy bandwidth
	// KernelProbes times the reference vs blocked linalg backends on
	// small/medium/large shapes per op class; the derived crossover
	// drives kernel dispatch (Choose) the same way the descriptor
	// drives operator selection in the paper.
	KernelProbes []KernelProbe
}

// KernelProbe records one reference-vs-blocked shape timing.
type KernelProbe struct {
	Op           string  // "gemm", "gemv", or "axpy"
	Size         int     // square edge (gemm/gemv) or vector length
	Flops        float64 // work per call, used as the dispatch axis
	ReferenceSec float64
	BlockedSec   float64
}

var (
	microOnce   sync.Once
	microResult Microbenchmarks
)

// RunMicrobenchmarks measures CPU and memory throughput of the local
// machine. Results are cached after the first call, so repeated Local()
// constructions are cheap.
func RunMicrobenchmarks() Microbenchmarks {
	microOnce.Do(func() {
		microResult = Microbenchmarks{
			Cores:          runtime.NumCPU(),
			GFLOPs:         measureGFLOPs(),
			MemBandwidthGB: measureMemBandwidth(),
			KernelProbes:   measureKernelProbes(),
		}
	})
	return microResult
}

var crossoverOnce sync.Once

// InstallKernelCrossover runs the microbenchmarks (cached) and publishes
// the probe-derived dispatch thresholds to the linalg backend registry.
// Until this runs, linalg.Choose in Auto mode stays on the reference
// backend — dispatch to the blocked kernels is earned by measurement.
func InstallKernelCrossover() {
	crossoverOnce.Do(func() {
		mb := RunMicrobenchmarks()
		linalg.InstallCrossover(DeriveCrossover(mb.KernelProbes))
	})
}

// measureKernelProbes times the reference and blocked backends head to
// head on small/medium/large shapes of each dispatchable op class.
func measureKernelProbes() []KernelProbe {
	rng := linalg.NewRNG(0x5ee0)
	var probes []KernelProbe
	for _, size := range []int{32, 128, 256} {
		a := rng.GaussianMatrix(size, size)
		b := rng.GaussianMatrix(size, size)
		out := linalg.NewMatrix(size, size)
		run := func(be linalg.Backend) float64 {
			return bestOf(3, func() {
				for i := range out.Data {
					out.Data[i] = 0
				}
				be.Mul(out.Data, a.Data, b.Data, size, size, size)
			})
		}
		probes = append(probes, KernelProbe{
			Op:           "gemm",
			Size:         size,
			Flops:        2 * float64(size) * float64(size) * float64(size),
			ReferenceSec: run(linalg.Reference()),
			BlockedSec:   run(linalg.Blocked()),
		})
	}
	for _, size := range []int{48, 384} {
		a := rng.GaussianMatrix(size, size)
		x := rng.GaussianVector(size)
		y := make([]float64, size)
		run := func(be linalg.Backend) float64 {
			return bestOf(5, func() {
				for i := range y {
					y[i] = 0
				}
				be.GemvT(a.Data, size, size, size, x, y)
			})
		}
		probes = append(probes, KernelProbe{
			Op:           "gemv",
			Size:         size,
			Flops:        2 * float64(size) * float64(size),
			ReferenceSec: run(linalg.Reference()),
			BlockedSec:   run(linalg.Blocked()),
		})
	}
	for _, size := range []int{256, 8192} {
		x := rng.GaussianVector(size)
		y := rng.GaussianVector(size)
		run := func(be linalg.Backend) float64 {
			return bestOf(9, func() { be.Axpy(0.5, x, y) })
		}
		probes = append(probes, KernelProbe{
			Op:           "axpy",
			Size:         size,
			Flops:        2 * float64(size),
			ReferenceSec: run(linalg.Reference()),
			BlockedSec:   run(linalg.Blocked()),
		})
	}
	return probes
}

// bestOf returns the fastest of reps timed runs of fn.
func bestOf(reps int, fn func()) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if s := time.Since(start).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// DeriveCrossover converts head-to-head probe timings into dispatch
// thresholds: for each op class, the threshold sits at the geometric
// midpoint between the largest shape the reference backend won and the
// smallest shape the blocked backend won. If the blocked backend won
// every probe the threshold is 0 (always blocked); if it won none, +Inf
// (never blocked).
func DeriveCrossover(probes []KernelProbe) linalg.Crossover {
	threshold := func(op string) float64 {
		firstBlkWin := math.Inf(1)
		for _, p := range probes {
			if p.Op == op && p.BlockedSec < p.ReferenceSec && p.Flops < firstBlkWin {
				firstBlkWin = p.Flops
			}
		}
		if math.IsInf(firstBlkWin, 1) {
			return firstBlkWin
		}
		var lastRefWin float64
		for _, p := range probes {
			if p.Op == op && p.BlockedSec >= p.ReferenceSec && p.Flops < firstBlkWin && p.Flops > lastRefWin {
				lastRefWin = p.Flops
			}
		}
		if lastRefWin == 0 {
			return 0
		}
		return math.Sqrt(lastRefWin * firstBlkWin)
	}
	return linalg.Crossover{
		GemmFlops: threshold("gemm"),
		GemvFlops: threshold("gemv"),
		VecFlops:  threshold("axpy"),
	}
}

// measureGFLOPs times a fixed count of dependent-free multiply-adds across
// all cores and converts to GFLOP/s.
func measureGFLOPs() float64 {
	cores := runtime.NumCPU()
	const flopsPerCore = 20_000_000 // 10M fused ops = 20M FLOPs
	var wg sync.WaitGroup
	start := time.Now()
	results := make([]float64, cores)
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a, b, acc := 1.000001, 0.999999, 0.0
			for i := 0; i < flopsPerCore/2; i++ {
				acc = acc*a + b // 2 FLOPs
			}
			results[c] = acc // defeat dead-code elimination
		}(c)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	_ = results
	return float64(cores) * flopsPerCore / secs / 1e9
}

// measureMemBandwidth times copying a buffer large enough to defeat L2 and
// reports GB/s (counting both read and write traffic).
func measureMemBandwidth() float64 {
	const n = 8 << 20 // 8M float64 = 64 MB
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	start := time.Now()
	const reps = 4
	for r := 0; r < reps; r++ {
		copy(dst, src)
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	bytes := float64(reps) * 2 * 8 * n
	return bytes / secs / 1e9
}
