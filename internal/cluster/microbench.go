package cluster

import (
	"runtime"
	"sync"
	"time"
)

// Microbenchmarks holds locally measured hardware characteristics. The
// paper collects the cluster resource descriptor "via configuration data
// and microbenchmarks"; this reproduces the microbenchmark half.
type Microbenchmarks struct {
	Cores          int
	GFLOPs         float64 // multi-core fused multiply-add throughput
	MemBandwidthGB float64 // large-array copy bandwidth
}

var (
	microOnce   sync.Once
	microResult Microbenchmarks
)

// RunMicrobenchmarks measures CPU and memory throughput of the local
// machine. Results are cached after the first call, so repeated Local()
// constructions are cheap.
func RunMicrobenchmarks() Microbenchmarks {
	microOnce.Do(func() {
		microResult = Microbenchmarks{
			Cores:          runtime.NumCPU(),
			GFLOPs:         measureGFLOPs(),
			MemBandwidthGB: measureMemBandwidth(),
		}
	})
	return microResult
}

// measureGFLOPs times a fixed count of dependent-free multiply-adds across
// all cores and converts to GFLOP/s.
func measureGFLOPs() float64 {
	cores := runtime.NumCPU()
	const flopsPerCore = 20_000_000 // 10M fused ops = 20M FLOPs
	var wg sync.WaitGroup
	start := time.Now()
	results := make([]float64, cores)
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a, b, acc := 1.000001, 0.999999, 0.0
			for i := 0; i < flopsPerCore/2; i++ {
				acc = acc*a + b // 2 FLOPs
			}
			results[c] = acc // defeat dead-code elimination
		}(c)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	_ = results
	return float64(cores) * flopsPerCore / secs / 1e9
}

// measureMemBandwidth times copying a buffer large enough to defeat L2 and
// reports GB/s (counting both read and write traffic).
func measureMemBandwidth() float64 {
	const n = 8 << 20 // 8M float64 = 64 MB
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	start := time.Now()
	const reps = 4
	for r := 0; r < reps; r++ {
		copy(dst, src)
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	bytes := float64(reps) * 2 * 8 * n
	return bytes / secs / 1e9
}
