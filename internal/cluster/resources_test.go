package cluster

import (
	"math"
	"testing"
	"time"
)

func TestR3Descriptor(t *testing.T) {
	r := R3_4XLarge(16)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 16 || r.CoresPerNode != 8 {
		t.Errorf("descriptor wrong: %v", r)
	}
	if r.TotalCores() != 128 {
		t.Errorf("TotalCores = %d", r.TotalCores())
	}
	if r.TotalMemGB() != 16*122 {
		t.Errorf("TotalMemGB = %g", r.TotalMemGB())
	}
}

func TestValidate(t *testing.T) {
	bad := []Resources{
		{Nodes: 0, GFLOPs: 1, NetBandwidthGB: 1, MemBandwidthGB: 1},
		{Nodes: 1, GFLOPs: 0, NetBandwidthGB: 1, MemBandwidthGB: 1},
		{Nodes: 1, GFLOPs: 1, NetBandwidthGB: 0, MemBandwidthGB: 1},
		{Nodes: 1, GFLOPs: 1, NetBandwidthGB: 1, MemBandwidthGB: 0},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestWeights(t *testing.T) {
	r := R3_4XLarge(4)
	// 90 GFLOP/s -> ~1.1e-11 s per FLOP.
	if w := r.ExecWeight(); w <= 0 || w > 1e-9 {
		t.Errorf("ExecWeight = %g", w)
	}
	if w := r.CoordWeight(); w <= 0 || w > 1e-8 {
		t.Errorf("CoordWeight = %g", w)
	}
	if r.DiskWeight() <= r.MemWeight() {
		t.Error("disk should be slower than memory")
	}
	noDisk := r
	noDisk.DiskBandwidth = 0
	if noDisk.DiskWeight() != noDisk.MemWeight() {
		t.Error("missing disk bandwidth should fall back to memory weight")
	}
}

func TestWithNodes(t *testing.T) {
	r := R3_4XLarge(8)
	r2 := r.WithNodes(128)
	if r2.Nodes != 128 || r.Nodes != 8 {
		t.Error("WithNodes must copy")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(2 * time.Second)
	c.AdvanceSeconds(1.5)
	c.Advance(-time.Hour) // ignored
	if got := c.Elapsed(); got != 3500*time.Millisecond {
		t.Errorf("Elapsed = %v", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("Reset failed")
	}
}

func TestMicrobenchmarksPlausible(t *testing.T) {
	mb := RunMicrobenchmarks()
	if mb.Cores < 1 {
		t.Errorf("cores = %d", mb.Cores)
	}
	if mb.GFLOPs <= 0 || mb.GFLOPs > 10000 {
		t.Errorf("implausible GFLOPs %g", mb.GFLOPs)
	}
	if mb.MemBandwidthGB <= 0 || mb.MemBandwidthGB > 10000 {
		t.Errorf("implausible memory bandwidth %g", mb.MemBandwidthGB)
	}
	// Cached: second call returns the identical measurement.
	mb2 := RunMicrobenchmarks()
	if mb2.GFLOPs != mb.GFLOPs || mb2.MemBandwidthGB != mb.MemBandwidthGB || len(mb2.KernelProbes) != len(mb.KernelProbes) {
		t.Error("microbenchmarks not cached")
	}
}

func TestKernelProbesAndCrossover(t *testing.T) {
	mb := RunMicrobenchmarks()
	ops := map[string]int{}
	for _, p := range mb.KernelProbes {
		ops[p.Op]++
		if p.ReferenceSec <= 0 || p.BlockedSec <= 0 || p.Flops <= 0 {
			t.Errorf("implausible probe %+v", p)
		}
	}
	if ops["gemm"] < 3 || ops["gemv"] < 2 || ops["axpy"] < 2 {
		t.Errorf("missing probe coverage: %v", ops)
	}
	c := DeriveCrossover(mb.KernelProbes)
	if c.GemmFlops < 0 || math.IsNaN(c.GemmFlops) {
		t.Errorf("bad gemm threshold %g", c.GemmFlops)
	}
}

func TestDeriveCrossoverRules(t *testing.T) {
	// Blocked never wins: threshold +Inf.
	c := DeriveCrossover([]KernelProbe{
		{Op: "gemm", Flops: 100, ReferenceSec: 1, BlockedSec: 2},
		{Op: "gemm", Flops: 1e6, ReferenceSec: 1, BlockedSec: 2},
	})
	if !math.IsInf(c.GemmFlops, 1) {
		t.Errorf("all-reference threshold = %g, want +Inf", c.GemmFlops)
	}
	// Blocked wins everywhere: threshold 0.
	c = DeriveCrossover([]KernelProbe{
		{Op: "gemm", Flops: 100, ReferenceSec: 2, BlockedSec: 1},
		{Op: "gemm", Flops: 1e6, ReferenceSec: 2, BlockedSec: 1},
	})
	if c.GemmFlops != 0 {
		t.Errorf("all-blocked threshold = %g, want 0", c.GemmFlops)
	}
	// Split: geometric midpoint between the ref win and the blocked win.
	c = DeriveCrossover([]KernelProbe{
		{Op: "gemm", Flops: 1e4, ReferenceSec: 1, BlockedSec: 2},
		{Op: "gemm", Flops: 1e6, ReferenceSec: 2, BlockedSec: 1},
	})
	if c.GemmFlops != 1e5 {
		t.Errorf("split threshold = %g, want 1e5", c.GemmFlops)
	}
	// Absent op class: +Inf (never dispatch on unmeasured data).
	if !math.IsInf(c.GemvFlops, 1) || !math.IsInf(c.VecFlops, 1) {
		t.Errorf("unmeasured classes should be +Inf, got %g / %g", c.GemvFlops, c.VecFlops)
	}
}

func TestLocalDescriptor(t *testing.T) {
	r := Local(4)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 4 {
		t.Errorf("nodes = %d", r.Nodes)
	}
}
