// Package cluster models the compute resources a KeystoneML pipeline runs
// on. It provides the cluster resource descriptor R from Section 3 of the
// paper (per-node CPU throughput, memory/disk/network bandwidth, node and
// core counts), microbenchmarks that measure those quantities on the local
// machine, and a virtual clock that converts operator cost profiles into
// simulated wall time so scale-out experiments (Figure 12, Table 6) can be
// run without a physical cluster.
package cluster

import (
	"fmt"
	"time"
)

// Resources is the cluster resource descriptor (R in the paper's cost
// model, Eq. 1-2). All throughput figures are per node.
type Resources struct {
	Nodes          int     // number of worker nodes (R_w)
	CoresPerNode   int     // physical cores per node
	GFLOPs         float64 // per-node CPU throughput, GFLOP/s
	MemBandwidthGB float64 // per-node memory bandwidth, GB/s
	DiskBandwidth  float64 // per-node disk bandwidth, GB/s
	NetBandwidthGB float64 // per-link network bandwidth, GB/s
	MemPerNodeGB   float64 // cluster memory available for caching per node
	// StageLatencySec is the fixed cost of launching one distributed
	// stage (task scheduling, barrier): ~1s for a Spark-style cluster
	// engine, microseconds for the in-process goroutine engine.
	StageLatencySec float64
}

// R3_4XLarge models the Amazon EC2 r3.4xlarge instances used for every
// experiment in the paper: 8 physical cores, 122 GB of memory, a 320 GB
// SSD, on 10 GbE networking.
func R3_4XLarge(nodes int) Resources {
	return Resources{
		Nodes:           nodes,
		CoresPerNode:    8,
		GFLOPs:          90,   // 8 cores x ~11 GFLOP/s sustained dgemm
		MemBandwidthGB:  40,   // sustained stream bandwidth
		DiskBandwidth:   0.45, // SSD sequential
		NetBandwidthGB:  1.25, // 10 GbE
		MemPerNodeGB:    122,
		StageLatencySec: 0.8,
	}
}

// Local returns a descriptor for the local machine with the given number
// of simulated nodes, using measured microbenchmark values.
func Local(nodes int) Resources {
	mb := RunMicrobenchmarks()
	return Resources{
		Nodes:           nodes,
		CoresPerNode:    mb.Cores,
		GFLOPs:          mb.GFLOPs,
		MemBandwidthGB:  mb.MemBandwidthGB,
		DiskBandwidth:   0.5,
		NetBandwidthGB:  20, // in-process: partitions share memory
		MemPerNodeGB:    4,
		StageLatencySec: 20e-6, // goroutine fork/join
	}
}

// Loopback returns a descriptor for n keystone/dist worker processes on
// the local host: partitions cross a real process boundary (gob over a
// loopback TCP socket) rather than sharing memory, so network bandwidth
// is the measured loopback codec throughput and stage latency is an RPC
// round-trip — orders of magnitude above Local's goroutine fork/join but
// far below a real cluster's scheduler delay.
func Loopback(workers int) Resources {
	r := Local(workers)
	r.NetBandwidthGB = 2       // gob encode + loopback + decode
	r.StageLatencySec = 300e-6 // framed RPC round-trip
	return r
}

// Validate reports an error if the descriptor is not usable.
func (r Resources) Validate() error {
	switch {
	case r.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, got %d", r.Nodes)
	case r.GFLOPs <= 0:
		return fmt.Errorf("cluster: GFLOPs must be positive, got %g", r.GFLOPs)
	case r.NetBandwidthGB <= 0:
		return fmt.Errorf("cluster: NetBandwidthGB must be positive, got %g", r.NetBandwidthGB)
	case r.MemBandwidthGB <= 0:
		return fmt.Errorf("cluster: MemBandwidthGB must be positive, got %g", r.MemBandwidthGB)
	}
	return nil
}

// TotalCores returns the aggregate core count.
func (r Resources) TotalCores() int { return r.Nodes * r.CoresPerNode }

// TotalMemGB returns the aggregate cache memory across the cluster.
func (r Resources) TotalMemGB() float64 { return float64(r.Nodes) * r.MemPerNodeGB }

// ExecWeight returns R_exec: seconds per FLOP of local execution across one
// node's cores. Splitting the model into an operator part and a cluster
// part (Eq. 1-2) means this weight is the only place hardware compute speed
// enters the cost.
func (r Resources) ExecWeight() float64 {
	return 1.0 / (r.GFLOPs * 1e9)
}

// CoordWeight returns R_coord: seconds per byte crossing the most loaded
// network link.
func (r Resources) CoordWeight() float64 {
	return 1.0 / (r.NetBandwidthGB * 1e9)
}

// MemWeight returns seconds per byte of memory traffic on one node.
func (r Resources) MemWeight() float64 {
	return 1.0 / (r.MemBandwidthGB * 1e9)
}

// DiskWeight returns seconds per byte of disk traffic on one node, or the
// memory weight if no disk bandwidth is configured.
func (r Resources) DiskWeight() float64 {
	if r.DiskBandwidth <= 0 {
		return r.MemWeight()
	}
	return 1.0 / (r.DiskBandwidth * 1e9)
}

// WithNodes returns a copy of the descriptor with a different node count.
// Used by the scaling experiments to sweep cluster sizes.
func (r Resources) WithNodes(n int) Resources {
	r.Nodes = n
	return r
}

// String implements fmt.Stringer.
func (r Resources) String() string {
	return fmt.Sprintf("cluster{nodes=%d cores/node=%d %.0fGFLOP/s mem=%.0fGB/s net=%.2fGB/s cache=%.0fGB/node}",
		r.Nodes, r.CoresPerNode, r.GFLOPs, r.MemBandwidthGB, r.NetBandwidthGB, r.MemPerNodeGB)
}

// Clock is a virtual clock used in simulated-scale mode. Operator cost
// profiles are converted to durations with the resource weights and
// accumulated here, letting a single process report the wall time a real
// cluster of the described size would take.
type Clock struct {
	elapsed time.Duration
}

// Advance adds d to the virtual clock. Negative durations are ignored.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.elapsed += d
	}
}

// AdvanceSeconds adds s seconds to the virtual clock.
func (c *Clock) AdvanceSeconds(s float64) {
	c.Advance(time.Duration(s * float64(time.Second)))
}

// Elapsed returns the accumulated virtual time.
func (c *Clock) Elapsed() time.Duration { return c.elapsed }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.elapsed = 0 }
