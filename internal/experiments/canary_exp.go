package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/serve"
)

// ServeCanary demonstrates the serving rollout-safety claims end to end,
// on a live in-process server:
//
//  1. Canary containment: a degraded candidate (15x the primary's
//     service time) is staged at a 10% traffic fraction. Its inflated p95 shows
//     up in the per-version stats while 90% of traffic never touches it,
//     the experiment aborts it, and across stage + observe + abort not a
//     single request fails.
//  2. Overload shedding: the same route is driven at ~4x its capacity.
//     Unprotected, every client rides the queue and p95 collapses to the
//     multi-second range; with admission control (in-flight cap sized to
//     the latency budget) the served requests hold p95 near the SLO and
//     the overload is reported as a shed rate instead of as latency.
func ServeCanary(w io.Writer, scale Scale) {
	header(w, "Canary containment and admission control under overload")
	payload := map[string]any{}
	canaryPhase(w, scale, payload)
	overloadPhase(w, scale, payload)
	emitBench("canary", payload)
}

// markedPipeline fits a float64 -> [mark, x] pipeline with a fixed
// per-record service time — version identity and service cost are then
// both controlled, which is all these phases need.
func markedPipeline(w io.Writer, mark float64, delay time.Duration) *keystone.Fitted[float64, []float64] {
	p := keystone.Then(keystone.Input[float64](),
		keystone.NewOp(fmt.Sprintf("svc[%g,%v]", mark, delay), func(x float64) []float64 {
			time.Sleep(delay)
			return []float64{mark, x}
		}))
	f, err := p.Fit(context.Background(), []float64{0}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		fmt.Fprintf(w, "fit: %v\n", err)
		return nil
	}
	return f
}

func canaryPhase(w io.Writer, scale Scale, payload map[string]any) {
	const (
		primarySvc  = time.Millisecond
		degradedSvc = 15 * time.Millisecond // the "bad push": 15x the service time
		fraction    = 0.10
		// Few enough closed-loop clients that the primary runs uncongested:
		// the candidate's degradation must be visible against a healthy
		// baseline, not hidden inside primary queueing noise.
		clients = 4
	)
	loadFor := 1500 * time.Millisecond
	if scale == Full {
		loadFor = 4 * time.Second
	}

	primary := markedPipeline(w, 1, primarySvc)
	degraded := markedPipeline(w, 2, degradedSvc)
	if primary == nil || degraded == nil {
		return
	}
	s := serve.NewServer()
	defer s.Close()
	rt, err := serve.Register(s, "svc", primary, serve.JSONCodec[float64, []float64]{},
		serve.WithBatchLimits(4, 500*time.Microsecond))
	if err != nil {
		fmt.Fprintf(w, "register: %v\n", err)
		return
	}

	fmt.Fprintf(w, "phase 1: degraded candidate (%v/record vs %v primary) staged at %.0f%% canary\n",
		degradedSvc, primarySvc, fraction*100)

	var stop atomic.Bool
	var requests, failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := rt.Predict(context.Background(), float64(i)); err != nil {
					failures.Add(1)
				}
				requests.Add(1)
			}
		}(c)
	}

	// Stage the canary under live load, let per-version stats accumulate,
	// read the comparison, abort.
	if _, err := rt.Canary(context.Background(), degraded, fraction); err != nil {
		fmt.Fprintf(w, "canary: %v\n", err)
		return
	}
	time.Sleep(loadFor)
	stats, ok := rt.CanaryStats()
	if err := rt.Abort(context.Background()); err != nil {
		fmt.Fprintf(w, "abort: %v\n", err)
	}
	time.Sleep(50 * time.Millisecond) // post-abort traffic rides the primary
	stop.Store(true)
	wg.Wait()

	if !ok {
		fmt.Fprintln(w, "canary stats unavailable")
		return
	}
	measured := float64(stats.CandidateServed) / float64(stats.CandidateServed+stats.PrimaryServed)
	fmt.Fprintf(w, "\n%-10s %10s %12s %12s\n", "version", "served", "p50", "p95")
	fmt.Fprintf(w, "%-10s %10d %12s %12s\n", "primary", stats.PrimaryServed,
		stats.PrimaryP50.Round(100*time.Microsecond), stats.PrimaryP95.Round(100*time.Microsecond))
	fmt.Fprintf(w, "%-10s %10d %12s %12s\n", "candidate", stats.CandidateServed,
		stats.CandidateP50.Round(100*time.Microsecond), stats.CandidateP95.Round(100*time.Microsecond))
	degradationVisible := stats.CandidateP95 > 2*stats.PrimaryP95
	fmt.Fprintf(w, "\nmeasured canary fraction: %.3f (target %.2f); candidate p95 %.1fx primary (degradation visible: %v)\n",
		measured, fraction, float64(stats.CandidateP95)/float64(max(1, int64(stats.PrimaryP95))), degradationVisible)
	fmt.Fprintf(w, "aborted with %d/%d failed requests during stage+observe+abort\n\n",
		failures.Load(), requests.Load())
	payload["canary"] = map[string]any{
		"measured_fraction":     measured,
		"target_fraction":       fraction,
		"primary_p95_sec":       stats.PrimaryP95.Seconds(),
		"candidate_p95_sec":     stats.CandidateP95.Seconds(),
		"degradation_visible":   degradationVisible,
		"failed_during_rollout": failures.Load(),
	}
}

func overloadPhase(w io.Writer, scale Scale, payload map[string]any) {
	const (
		svcTime   = 2 * time.Millisecond // 1-record batches => capacity ~ overlap/svc
		sloP95    = 60 * time.Millisecond
		overdrive = 4 // offered load as a multiple of measured capacity
	)
	loadFor := 1500 * time.Millisecond
	if scale == Full {
		loadFor = 4 * time.Second
	}
	// Capacity: flushOverlap (2) batches in flight x 1 record / 2ms = ~1000/s.
	// Offered: 4x that, open loop.
	offered := 4000.0

	fmt.Fprintf(w, "phase 2: open-loop %.0f req/s against a ~%.0f req/s route (%dx overload), SLO p95 <= %v\n",
		offered, offered/overdrive, overdrive, sloP95)
	fmt.Fprintf(w, "\n%-12s %10s %10s %12s %12s %10s\n", "config", "served", "shed", "p50", "p95", "SLO held")

	for _, protected := range []bool{false, true} {
		f := markedPipeline(w, 1, svcTime)
		if f == nil {
			return
		}
		s := serve.NewServer()
		opts := []serve.RouteOption{serve.WithBatchLimits(1, 200*time.Microsecond)}
		if protected {
			// In-flight cap = capacity x latency budget with headroom:
			// ~1000 rec/s x 60ms admits ~60 records at the boundary, so cap
			// at ~half that to keep queueing delay robustly inside the SLO.
			opts = append(opts, serve.WithAdmission(serve.Admission{MaxInFlight: 32}))
		}
		rt, err := serve.Register(s, "svc", f, serve.JSONCodec[float64, []float64]{}, opts...)
		if err != nil {
			fmt.Fprintf(w, "register: %v\n", err)
			s.Close()
			return
		}

		var mu sync.Mutex
		var lats []time.Duration
		var served, shed, other atomic.Int64
		var wg sync.WaitGroup
		// Open-loop arrivals in 1ms bursts: ticker ticks coalesce under
		// load, so spawning offered/1000 requests per millisecond tick is
		// what actually sustains the offered rate.
		perTick := int(offered / 1000)
		tick := time.NewTicker(time.Millisecond)
		deadline := time.Now().Add(loadFor)
		for time.Now().Before(deadline) {
			<-tick.C
			for i := 0; i < perTick; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					t0 := time.Now()
					_, err := rt.Predict(ctx, 1)
					switch {
					case err == nil:
						d := time.Since(t0)
						mu.Lock()
						lats = append(lats, d)
						mu.Unlock()
						served.Add(1)
					case errors.Is(err, serve.ErrOverloaded):
						shed.Add(1)
					default:
						other.Add(1)
					}
				}()
			}
		}
		tick.Stop()
		wg.Wait()

		p50, p95 := quantiles(lats)
		name := "unprotected"
		if protected {
			name = "admission"
		}
		held := "no"
		if p95 <= sloP95 && served.Load() > 0 {
			held = "yes"
		}
		fmt.Fprintf(w, "%-12s %10d %10d %12s %12s %10s\n",
			name, served.Load(), shed.Load(),
			p50.Round(100*time.Microsecond), p95.Round(100*time.Microsecond), held)
		payload["overload_"+name] = map[string]any{
			"served": served.Load(), "shed": shed.Load(),
			"p50_sec": p50.Seconds(), "p95_sec": p95.Seconds(), "slo_held": held == "yes",
		}
		if other.Load() > 0 {
			fmt.Fprintf(w, "  (%d requests timed out or failed)\n", other.Load())
		}
		s.Close()
	}
	fmt.Fprintln(w, "\nUnprotected, every arrival queues and waits: latency absorbs the overload.")
	fmt.Fprintln(w, "With the in-flight cap, the overload surfaces as an explicit shed rate while")
	fmt.Fprintln(w, "the admitted requests' p95 stays pinned to service + bounded queueing time.")
}
