package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"keystoneml/internal/baselines"
	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
	"keystoneml/internal/solvers"
	"keystoneml/internal/workload"
)

// Table1 prints the analytic per-solver resource requirements (compute,
// network, memory) for a representative problem, the content of the
// paper's Table 1 instantiated with concrete numbers.
func Table1(w io.Writer) {
	header(w, "Table 1: linear solver resource requirements (analytic)")
	stats := cost.DataStats{N: 1_000_000, Dim: 4096, K: 16, Sparsity: 1}
	res := cluster.R3_4XLarge(16)
	ls := &solvers.LinearSolver{}
	fmt.Fprintf(w, "problem: n=%d d=%d k=%d dense, %d nodes\n", stats.N, stats.Dim, stats.K, res.Nodes)
	fmt.Fprintf(w, "%-22s %14s %14s %12s\n", "solver", "GFLOP(node)", "net MB(link)", "est sec")
	for _, opt := range ls.Options() {
		p := opt.Model.Cost(stats, res.Nodes)
		if p.Flops < 0 {
			fmt.Fprintf(w, "%-22s %14s %14s %12s\n", opt.Model.Name(), "infeasible", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %12.1f\n",
			opt.Model.Name(), p.Flops/1e9, p.Network/1e6, p.Seconds(res))
	}
}

// solverRow times one solver fit, guarding against blow-ups with a
// predicate that can mark a configuration skipped ("x" in the paper's
// tables). It returns the fit time and the model's final training loss.
func solverRow(est core.EstimatorOp, l workload.Labeled, skip bool) (time.Duration, float64, bool) {
	if skip {
		return 0, 0, false
	}
	runtime.GC() // do not charge the previous fit's garbage to this one
	ctx := engine.NewContext(0)
	var model core.TransformOp
	d := timeIt(func() { model = est.Fit(ctx, fetchOf(l.Data), fetchOf(l.Labels)) })
	loss := 0.0
	if lm, ok := model.(*solvers.LinearMapper); ok {
		loss = lm.TrainLoss
	}
	return d, loss, true
}

// warmSolvers runs one small fit per solver family so first-call page
// faults and goroutine pool spin-up do not pollute the first table row.
func warmSolvers() {
	l := workload.DenseVectors(200, 32, 2, 999, 4)
	ctx := engine.NewContext(0)
	for _, est := range []core.EstimatorOp{
		&solvers.DistributedQR{}, &solvers.BlockSolver{BlockSize: 16, Sweeps: 1}, &solvers.LBFGS{Iterations: 2},
	} {
		est.Fit(ctx, fetchOf(l.Data), fetchOf(l.Labels))
	}
}

// Figure6 measures training time for the exact, block and L-BFGS solvers
// as the feature count grows, on a sparse (Amazon-shaped) and a dense
// (TIMIT-shaped) problem. Expected shape, matching the paper: on sparse
// data L-BFGS wins by orders of magnitude and exact becomes infeasible;
// on dense data exact wins at small d and the block solver takes over as
// d grows, with L-BFGS in between.
func Figure6(w io.Writer, scale Scale) {
	header(w, "Figure 6: solver runtime vs #features")
	dims := []int{128, 256, 512, 1024}
	nSparse, nDense := 1500, 1200
	if scale == Full {
		dims = []int{128, 256, 512, 1024, 2048}
		nSparse, nDense = 4000, 2500
	}
	warmSolvers()
	fmt.Fprintf(w, "-- Amazon-shaped (sparse, ~8 nnz/row, k=2, n=%d) --\n", nSparse)
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "d", "exact", "block", "lbfgs")
	for _, d := range dims {
		l := workload.SparseVectors(nSparse, d, 8, 2, 42, 8)
		// The exact solver densifies; past a memory threshold the paper's
		// run crashes — reproduce as a skip at the largest size in Full.
		exact, _, okE := solverRow(&solvers.DistributedQR{}, l, scale == Full && d > 1024)
		block, _, _ := solverRow(&solvers.BlockSolver{BlockSize: 128, Sweeps: 3}, l, false)
		lbfgs, _, _ := solverRow(&solvers.LBFGS{Iterations: 50}, l, false)
		exactStr := secs(exact)
		if !okE {
			exactStr = "       x"
		}
		fmt.Fprintf(w, "%8d %12s %12s %12s\n", d, exactStr, secs(block), secs(lbfgs))
	}
	fmt.Fprintf(w, "-- TIMIT-shaped (dense, k=16, n=%d) --\n", nDense)
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "d", "exact", "block", "lbfgs")
	for _, d := range dims {
		l := workload.DenseVectors(nDense, d, 16, 43, 8)
		exact, _, _ := solverRow(&solvers.DistributedQR{}, l, false)
		block, _, _ := solverRow(&solvers.BlockSolver{BlockSize: 128, Sweeps: 3}, l, false)
		lbfgs, _, _ := solverRow(&solvers.LBFGS{Iterations: 50}, l, false)
		fmt.Fprintf(w, "%8d %12s %12s %12s\n", d, secs(exact), secs(block), secs(lbfgs))
	}
}

// Figure8 compares the KeystoneML optimizing solver against the Vowpal
// Wabbit style fixed-SGD system and the SystemML style fixed-CG system on
// binary sparse and dense problems across feature sizes. Expected shape:
// KeystoneML at least matches the better baseline everywhere because it
// switches algorithms, while each baseline loses badly somewhere.
func Figure8(w io.Writer, scale Scale) {
	header(w, "Figure 8: KeystoneML vs Vowpal Wabbit vs SystemML (solve time)")
	dims := []int{128, 256, 512, 1024}
	n := 1500
	if scale == Full {
		dims = append(dims, 2048)
		n = 3000
	}
	res := cluster.Local(1)
	warmSolvers()
	run := func(name string, sparse bool) {
		fmt.Fprintf(w, "-- %s --\n", name)
		fmt.Fprintf(w, "%8s  %12s %9s  %12s %9s  %12s %9s  %18s\n",
			"d", "keystoneml", "loss", "vw", "loss", "systemml", "loss", "keystone-choice")
		for _, d := range dims {
			var ld workload.Labeled
			st := cost.DataStats{N: int64(n), Dim: int64(d), K: 2}
			if sparse {
				ld = workload.SparseVectors(n, d, 8, 2, 77, 8)
				st.Sparsity = 8.0 / float64(d)
			} else {
				ld = workload.DenseVectors(n, d, 2, 78, 8)
				st.Sparsity = 1
			}
			ls := &solvers.LinearSolver{Iterations: 20}
			opts := ls.Options()
			choice := cost.Choose(opts, st, res)
			chosen := opts[choice].Operator.(core.EstimatorOp)
			tK, lK, _ := solverRow(chosen, ld, false)
			tV, lV, _ := solverRow(&baselines.VowpalWabbit{Passes: 20}, ld, false)
			tS, lS, _ := solverRow(&baselines.SystemML{Iterations: 10}, ld, false)
			// SystemML's LinearMapper is built without a recorded loss;
			// compute it via a scoring pass for a fair convergence column.
			fmt.Fprintf(w, "%8d  %12s %9.2e  %12s %9.2e  %12s %9.2e  %18s\n",
				d, secs(tK), lK, secs(tV), lV, secs(tS), lS, opts[choice].Model.Name())
		}
	}
	run("Amazon binary (sparse)", true)
	run("TIMIT binary (dense)", false)
}
