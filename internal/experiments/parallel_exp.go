// Parallel-scheduler experiment: quantifies what the stage-aware DAG
// executor buys over the sequential depth-first oracle on multi-branch
// pipelines, and prints the stage-width analysis that explains it. This
// is the engine-side complement of the paper's operator-level results:
// as SparkCL observes for heterogeneous clusters, it is the scheduler,
// not the kernels, that decides utilization.
package experiments

import (
	"fmt"
	"io"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/solvers"
	"keystoneml/internal/workload"
)

// FanoutConfig parameterizes the synthetic multi-branch pipeline used to
// measure DAG-level overlap.
type FanoutConfig struct {
	Branches   int
	Records    int
	Dim        int
	Partitions int
	// BranchLatency is per-record simulated I/O inside each branch
	// operator — the stand-in for reading remote or cold data in the
	// distributed setting the engine models. Zero makes the branches
	// purely CPU-bound.
	BranchLatency time.Duration
	Iterations    int // solver passes re-walking the branches
}

// BuildFanout constructs a k-branch gather pipeline over dense vectors:
// source -> k feature branches -> gather -> linear solver. Each branch
// is independent, so the DAG has width k at the featurization stage and
// the parallel scheduler can overlap what the sequential oracle walks
// one branch at a time.
func BuildFanout(cfg FanoutConfig) (*core.Graph, workload.Labeled) {
	train := workload.DenseVectors(cfg.Records, cfg.Dim, 4, 17, cfg.Partitions)
	p := core.Input[[]float64]()
	branches := make([]*core.Pipeline[[]float64, []float64], cfg.Branches)
	for i := 0; i < cfg.Branches; i++ {
		shift := float64(i + 1)
		lat := cfg.BranchLatency
		branches[i] = core.AndThen(p, core.FuncOp(fmt.Sprintf("fanout.branch%d", i),
			func(x []float64) []float64 {
				if lat > 0 {
					time.Sleep(lat)
				}
				out := make([]float64, len(x))
				for j, v := range x {
					out[j] = v*shift + shift
				}
				return out
			}))
	}
	gathered := core.Gather(branches...)
	final := core.AndThenLabeledEstimator(gathered,
		solvers.NewLinearSolverEst(cfg.Iterations, 1e-4, 0))
	return final.Graph(), train
}

// runFanout executes the fanout pipeline with the given DAG worker
// bound and returns wall time. The engine context is held constant
// across modes so partition-level Map parallelism is identical and the
// measured delta is the DAG scheduler's alone.
func runFanout(cfg FanoutConfig, workers int) time.Duration {
	g, train := BuildFanout(cfg)
	ctx := engine.NewContext(cfg.Branches)
	ex := core.NewExecutor(g, ctx, nil, train.Data, train.Labels).SetWorkers(workers)
	return timeIt(func() { ex.Run() })
}

// stageWidths renders a DAG's stage decomposition as "1-2-4-1" style
// widths, the shape the ready-set scheduler exploits.
func stageWidths(g *core.Graph) string {
	s := ""
	for i, stage := range g.Stages() {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprintf("%d", len(stage))
	}
	return s
}

// ParallelExec compares the sequential oracle against the stage-aware
// parallel scheduler on multi-branch pipelines. Expected shape: speedup
// tracks the DAG's stage width on latency-bound branches (the scheduler
// overlaps what depth-first execution serializes) and is bounded by
// GOMAXPROCS for CPU-bound branches.
func ParallelExec(w io.Writer, scale Scale) {
	header(w, "Parallel DAG scheduler: sequential oracle vs stage-aware executor")

	// Stage analysis of the evaluation DAGs with real fan-in.
	fmt.Fprintf(w, "DAG stage widths (nodes per ready-set level):\n")
	speech := pipelines.Speech(pipelines.SpeechConfig{InputDim: 40, NumFeatures: 64, Seed: 7, Iterations: 5}).Graph()
	voc := pipelines.Vision(pipelines.VisionConfig{
		PCADims: 8, GMMComponents: 6, SampleDescs: 10, Seed: 9, Iterations: 5, WithLCS: true,
	}).Graph()
	fmt.Fprintf(w, "  %-10s %s\n", "TIMIT", stageWidths(speech))
	fmt.Fprintf(w, "  %-10s %s\n", "VOC+LCS", stageWidths(voc))

	records, iters := 8, 3
	if scale == Full {
		records, iters = 16, 5
	}
	type parRow struct {
		Pipeline string  `json:"pipeline"`
		SeqSec   float64 `json:"sequential_sec"`
		ParSec   float64 `json:"parallel_sec"`
		Speedup  float64 `json:"speedup"`
	}
	var benchRows []parRow

	fmt.Fprintf(w, "\n%-28s %10s %10s %10s\n", "fanout pipeline", "sequential", "parallel", "speedup")
	for _, k := range []int{2, 4, 8} {
		cfg := FanoutConfig{
			Branches: k, Records: records, Dim: 16, Partitions: 1,
			BranchLatency: 2 * time.Millisecond, Iterations: iters,
		}
		seq := runFanout(cfg, 1)
		par := runFanout(cfg, k)
		fmt.Fprintf(w, "%-28s %10s %10s %9.1fx\n",
			fmt.Sprintf("%d branches (latency-bound)", k), secs(seq), secs(par), seq.Seconds()/par.Seconds())
		benchRows = append(benchRows, parRow{
			Pipeline: fmt.Sprintf("fanout-%d", k),
			SeqSec:   seq.Seconds(), ParSec: par.Seconds(),
			Speedup: seq.Seconds() / par.Seconds(),
		})
	}

	// The real two-branch vision pipeline, CPU-bound: speedup here is
	// what the host's core count allows.
	train := imageDatasetForCaching(scale)
	build := func() *core.Graph {
		return pipelines.Vision(pipelines.VisionConfig{
			PCADims: 8, GMMComponents: 6, SampleDescs: 10, Seed: 9, Iterations: 5, WithLCS: true,
		}).Graph()
	}
	runVOC := func(workers int) time.Duration {
		ctx := engine.NewContext(4) // constant: isolate the DAG scheduler
		ex := core.NewExecutor(build(), ctx, nil, train.Data, train.Labels).SetWorkers(workers)
		return timeIt(func() { ex.Run() })
	}
	seq := runVOC(1)
	par := runVOC(4)
	fmt.Fprintf(w, "%-28s %10s %10s %9.1fx\n", "VOC+LCS (CPU-bound)", secs(seq), secs(par), seq.Seconds()/par.Seconds())
	benchRows = append(benchRows, parRow{
		Pipeline: "voc-lcs",
		SeqSec:   seq.Seconds(), ParSec: par.Seconds(),
		Speedup: seq.Seconds() / par.Seconds(),
	})
	emitBench("parallel", benchRows)
}
