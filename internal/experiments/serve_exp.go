package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/serve"
)

// ServeAutotune demonstrates the serving-layer acceptance claim: against
// a p95 SLO, the autotuner converges a route's (maxBatch, maxDelay) from
// a throughput-friendly but latency-hostile static default down to
// limits that meet the objective, while the static configuration stays
// pinned above it. Both configurations serve the same fitted text
// pipeline under the same closed-loop concurrent load; we report each
// phase's final limits and client-measured latency quantiles.
func ServeAutotune(w io.Writer, scale Scale) {
	header(w, "Serving autotuner: SLO-driven (maxBatch, maxDelay) vs static defaults")

	docs, features, iters := 300, 800, 5
	loadFor := 1200 * time.Millisecond
	if scale == Full {
		docs, features, iters = 1000, 3000, 10
		loadFor = 4 * time.Second
	}
	const (
		clients   = 6
		targetP95 = 20 * time.Millisecond
		// The hostile static default: a 60ms assembly window maximizes
		// batching but parks p95 at 3x the SLO.
		staticBatch = 32
		staticDelay = 60 * time.Millisecond
	)

	train := keystone.SyntheticReviews(docs, 1)
	pipe := keystone.TextPipeline(keystone.TextConfig{NumFeatures: features, Iterations: iters})
	fitted, err := pipe.Fit(context.Background(), train.Records, train.Labels,
		keystone.WithOptimizerLevel(keystone.LevelPipeline), keystone.WithSampleSizes(16, 32))
	if err != nil {
		fmt.Fprintf(w, "fit: %v\n", err)
		return
	}
	docsPool := train.Records

	fmt.Fprintf(w, "pipeline: text (%d docs, %d features); load: %d closed-loop clients for %v; SLO: p95 <= %v\n\n",
		docs, features, clients, loadFor, targetP95)
	fmt.Fprintf(w, "%-10s %18s %12s %10s %10s %8s\n", "config", "final (batch,delay)", "batches", "p50", "p95", "SLO met")

	type serveRow struct {
		Config     string  `json:"config"`
		FinalBatch int     `json:"final_batch"`
		FinalDelay string  `json:"final_delay"`
		Batches    int64   `json:"batches"`
		P50Sec     float64 `json:"p50_sec"`
		P95Sec     float64 `json:"p95_sec"`
		SLOMet     bool    `json:"slo_met"`
	}
	var benchRows []serveRow

	for _, tuned := range []bool{false, true} {
		s := serve.NewServer()
		opts := []serve.RouteOption{serve.WithBatchLimits(staticBatch, staticDelay)}
		if tuned {
			opts = append(opts, serve.WithSLO(serve.SLO{
				TargetP95:  targetP95,
				Interval:   40 * time.Millisecond,
				MinSamples: 8,
			}))
		}
		rt, err := serve.Register(s, "text", fitted, serve.TextCodec{}, opts...)
		if err != nil {
			fmt.Fprintf(w, "register: %v\n", err)
			return
		}

		var mu sync.Mutex
		var lats []time.Duration
		var stop atomic.Bool
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var local []time.Duration
				for i := 0; !stop.Load(); i++ {
					doc := docsPool[(c*131+i)%len(docsPool)]
					t0 := time.Now()
					if _, err := rt.Predict(context.Background(), doc); err != nil {
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(c)
		}
		time.Sleep(loadFor)
		stop.Store(true)
		wg.Wait()

		// Judge the steady state on the last third of observations so
		// the tuned phase's convergence window does not mask where it
		// converged to.
		tail := lats[len(lats)-len(lats)/3:]
		p50, p95 := quantiles(tail)
		b, d := batcherLimits(s, "text")
		name := "static"
		if tuned {
			name = "autotuned"
		}
		met := "no"
		if p95 <= targetP95 {
			met = "yes"
		}
		var st struct{ batches int64 }
		if stats := s.RouteStats("text"); stats != nil {
			if v, ok := stats["batches"].(int64); ok {
				st.batches = v
			}
		}
		fmt.Fprintf(w, "%-10s %10d, %-8s %12d %10s %10s %8s\n",
			name, b, d.Round(10*time.Microsecond), st.batches,
			p50.Round(10*time.Microsecond), p95.Round(10*time.Microsecond), met)
		benchRows = append(benchRows, serveRow{
			Config: name, FinalBatch: b, FinalDelay: d.String(), Batches: st.batches,
			P50Sec: p50.Seconds(), P95Sec: p95.Seconds(), SLOMet: met == "yes",
		})
		s.Close()
	}
	emitBench("serve", benchRows)
	fmt.Fprintln(w, "\nThe static 60ms window pins p95 near 60ms; the autotuner's multiplicative")
	fmt.Fprintln(w, "backoff pulls the window down until the observed p95 sits under the SLO,")
	fmt.Fprintln(w, "then spends any remaining headroom growing the batch again.")
}

// quantiles returns (p50, p95) over the sample.
func quantiles(lats []time.Duration) (time.Duration, time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2], s[(len(s)*95)/100]
}

// batcherLimits reads the live batcher limits off a route's stats map.
func batcherLimits(s *serve.Server, route string) (int, time.Duration) {
	st := s.RouteStats(route)
	if st == nil {
		return 0, 0
	}
	b, _ := st["max_batch"].(int)
	ms, _ := st["max_delay_ms"].(float64)
	return b, time.Duration(ms * float64(time.Millisecond))
}
