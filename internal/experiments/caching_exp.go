package experiments

import (
	"fmt"
	"io"
	"time"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

// cachingSpec builds the two-branch (SIFT + LCS) VOC/ImageNet pipeline
// used by Figures 10 and 11. The gather of two descriptor branches, each
// with an iterative GMM downstream, creates the interleaved reuse pattern
// where caching policy actually matters: recomputing one branch can evict
// the other's reused intermediates.
func cachingSpec(scale Scale) (func() *core.Graph, workload.Labeled) {
	train := imageDatasetForCaching(scale)
	build := func() *core.Graph {
		return pipelines.Vision(pipelines.VisionConfig{
			PCADims: 12, GMMComponents: 24, SampleDescs: 10, Seed: 9, Iterations: 25,
			WithLCS: true,
		}).Graph()
	}
	return build, train
}

// Figure10 compares the KeystoneML greedy materialization strategy
// against LRU and the rule-based "cache model applications" baseline
// across memory budgets, measuring actual execution time of the VOC
// pipeline under each policy. Expected shape: KeystoneML is at least as
// good everywhere, degrades gracefully as memory shrinks, and the
// baselines each lose somewhere (LRU admits huge unreused objects;
// rule-based misses reused featurized data).
func Figure10(w io.Writer, scale Scale) {
	header(w, "Figure 10: caching strategy vs memory budget (VOC pipeline)")
	build, train := cachingSpec(scale)

	// Profile once (full optimization) to get sizes + the greedy planner.
	gProf := build()
	cfg := optimizer.Config{
		Level:       optimizer.LevelPipeline,
		Resources:   cluster.Local(8),
		NumClasses:  train.Classes,
		SampleSizes: [2]int{16, 32},
		// Parallelism 1 pins the planner to the paper's sequential cost
		// model: these figures replicate the paper's recompute-on-miss
		// accounting and execute under the sequential oracle, so the
		// cache sets must not depend on the host's core count.
		Parallelism: 1,
	}
	planFull := optimizer.Optimize(gProf, train.Data, train.Labels, cfg)
	var maxBytes int64
	for _, np := range planFull.Profile.Nodes {
		maxBytes += np.SizeBytes
	}
	budgets := []float64{0.01, 0.03, 0.1, 0.3, 1.0}
	fmt.Fprintf(w, "total intermediate size estimate: %.1f MB\n", float64(maxBytes)/1e6)
	fmt.Fprintf(w, "%10s %14s %14s %14s\n", "budget", "keystoneml", "lru", "rule-based")

	// All three strategies run under the sequential oracle (workers=1):
	// this figure reproduces the paper's recompute-on-miss cost model,
	// whose access patterns the parallel scheduler legitimately changes
	// by coalescing shared branches.
	for _, frac := range budgets {
		budget := int64(float64(maxBytes) * frac)
		times := make(map[string]time.Duration)

		// KeystoneML greedy pinned set, re-planned for this budget.
		{
			g := build()
			c := cfg
			c.MemBudgetBytes = budget
			plan := optimizer.Optimize(g, train.Data, train.Labels, c)
			var cache *engine.CacheManager
			if len(plan.CacheSet) > 0 {
				cache = engine.NewCacheManager(0, engine.NewPinnedSetPolicy(optimizer.CacheKeys(plan.CacheSet)))
			}
			ex := core.NewExecutor(plan.Graph, engine.NewContext(0), cache, train.Data, train.Labels).SetWorkers(1)
			times["keystone"] = timeIt(func() { ex.Run() })
		}
		// LRU with the same budget.
		{
			g := build()
			cache := engine.NewCacheManager(budget, engine.NewLRUPolicy())
			ex := core.NewExecutor(g, engine.NewContext(0), cache, train.Data, train.Labels).SetWorkers(1)
			times["lru"] = timeIt(func() { ex.Run() })
		}
		// Rule-based: only model-application outputs are admitted.
		{
			g := build()
			policy := engine.NewRuleBasedPolicy(optimizer.CacheKeys(optimizer.ApplyModelIDs(g)))
			cache := engine.NewCacheManager(budget, policy)
			ex := core.NewExecutor(g, engine.NewContext(0), cache, train.Data, train.Labels).SetWorkers(1)
			times["rule"] = timeIt(func() { ex.Run() })
		}
		fmt.Fprintf(w, "%9.0f%% %14s %14s %14s\n",
			frac*100, secs(times["keystone"]), secs(times["lru"]), secs(times["rule"]))
	}
}

// Figure11 prints which nodes the greedy strategy chooses to materialize
// at a large and a small budget on the VOC pipeline, reproducing the
// paper's observation: with plenty of memory it caches the reused
// featurization outputs, and under pressure it falls back to the small
// late-pipeline outputs.
func Figure11(w io.Writer, scale Scale) {
	header(w, "Figure 11: greedy cache-set selection vs memory budget (VOC pipeline)")
	build, train := cachingSpec(scale)
	g := build()
	cfg := optimizer.Config{
		Level:       optimizer.LevelPipeline,
		Resources:   cluster.Local(8),
		NumClasses:  train.Classes,
		SampleSizes: [2]int{16, 32},
		// Parallelism 1 pins the planner to the paper's sequential cost
		// model: these figures replicate the paper's recompute-on-miss
		// accounting and execute under the sequential oracle, so the
		// cache sets must not depend on the host's core count.
		Parallelism: 1,
	}
	plan := optimizer.Optimize(g, train.Data, train.Labels, cfg)
	var total int64
	for _, np := range plan.Profile.Nodes {
		total += np.SizeBytes
	}
	for _, frac := range []float64{1.0, 0.01} {
		budget := int64(float64(total) * frac)
		set := optimizer.GreedyCacheSet(g, plan.Profile, budget, 1)
		fmt.Fprintf(w, "budget %4.0f%% (%6.1f MB): cached nodes:\n", frac*100, float64(budget)/1e6)
		if len(set) == 0 {
			fmt.Fprintln(w, "    (none)")
		}
		for _, id := range set {
			np := plan.Profile.Nodes[id]
			fmt.Fprintf(w, "    #%-3d %-40s size=%8.2fMB t=%7.3fs\n",
				id, np.Name, float64(np.SizeBytes)/1e6, np.TimeSec)
		}
	}
}
