package experiments

import (
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

// equivalenceSpecs are the evaluation pipelines the parallel scheduler
// must match the sequential oracle on: the three Figure 9 workloads plus
// the CIFAR convolutional pipeline and the two-branch (SIFT+LCS) caching
// pipeline whose gather fan-in is where DAG parallelism actually exists.
func equivalenceSpecs() []workloadSpec {
	out := specs(Quick)
	nCifar := 24
	cifarTrain := workload.Images(nCifar, 32, 3, 4, 21, 4)
	cifarTest := workload.Images(nCifar/2, 32, 3, 4, 22, 2)
	out = append(out, workloadSpec{
		name: "CIFAR-10",
		build: func() *core.Graph {
			return pipelines.Cifar(pipelines.CifarConfig{NumFilters: 8, Seed: 23, Iterations: 10}).Graph()
		},
		train: cifarTrain, test: cifarTest, numClasses: 4,
	})
	vocTrain := workload.Images(16, 48, 3, 4, 40, 4)
	vocTest := workload.Images(8, 48, 3, 4, 41, 2)
	out = append(out, workloadSpec{
		name: "VOC-LCS",
		build: func() *core.Graph {
			return pipelines.Vision(pipelines.VisionConfig{
				PCADims: 8, GMMComponents: 6, SampleDescs: 15, Seed: 9, Iterations: 10, WithLCS: true,
			}).Graph()
		},
		train: vocTrain, test: vocTest, numClasses: 4,
	})
	return out
}

func floatsEqual(t *testing.T, name string, a, b *engine.Collection) {
	t.Helper()
	ra, rb := a.Collect(), b.Collect()
	if len(ra) != len(rb) {
		t.Fatalf("%s: record counts differ: %d vs %d", name, len(ra), len(rb))
	}
	for i := range ra {
		va, okA := ra[i].([]float64)
		vb, okB := rb[i].([]float64)
		if !okA || !okB {
			if ra[i] != rb[i] {
				t.Fatalf("%s: record %d differs: %v vs %v", name, i, ra[i], rb[i])
			}
			continue
		}
		if len(va) != len(vb) {
			t.Fatalf("%s: record %d dims differ: %d vs %d", name, i, len(va), len(vb))
		}
		for j := range va {
			if va[j] != vb[j] {
				t.Fatalf("%s: record %d dim %d differs: %g vs %g", name, i, j, va[j], vb[j])
			}
		}
	}
}

// TestSequentialParallelEquivalence is the scheduler's core contract:
// for every evaluation pipeline, executing the same optimized plan under
// the sequential oracle (workers=1) and the parallel scheduler must
// produce bit-identical training outputs and bit-identical fitted-model
// predictions on held-out data. All operators are deterministic (seeded
// RNGs, fixed iteration counts), so any divergence is a scheduler bug.
func TestSequentialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range equivalenceSpecs() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			g := spec.build()
			cfg := optimizer.Config{
				// LevelPipeline keeps planning deterministic (operator
				// selection at LevelFull depends on measured sample
				// timings, which could legitimately pick different
				// physical operators between two Optimize calls).
				Level:       optimizer.LevelPipeline,
				Resources:   cluster.Local(4),
				NumClasses:  spec.numClasses,
				SampleSizes: [2]int{8, 16},
			}
			plan := optimizer.Optimize(g, spec.train.Data, spec.train.Labels, cfg)

			runWith := func(workers int) (*engine.Collection, *engine.Collection, *core.ExecReport) {
				ctx := engine.NewContext(4)
				var cache *engine.CacheManager
				if len(plan.CacheSet) > 0 {
					cache = engine.NewCacheManager(0, engine.NewPinnedSetPolicy(optimizer.CacheKeys(plan.CacheSet)))
				}
				ex := core.NewExecutor(plan.Graph, ctx, cache, spec.train.Data, spec.train.Labels).SetWorkers(workers)
				models, out, report := ex.Run()
				fitted := core.NewFitted(plan.Graph, models, ctx)
				return out, fitted.Apply(spec.test.Data), report
			}

			seqOut, seqPred, seqReport := runWith(1)
			parOut, parPred, parReport := runWith(4)

			floatsEqual(t, spec.name+"/train-output", seqOut, parOut)
			floatsEqual(t, spec.name+"/test-predictions", seqPred, parPred)

			// Where counts are deterministic — the linear Amazon and
			// CIFAR chains have no branch sharing — hit/compute counts
			// must match the oracle exactly. Branching pipelines
			// legitimately differ: one pass computes a shared prefix
			// once where the depth-first oracle walks it per branch.
			if spec.name == "Amazon" || spec.name == "CIFAR-10" {
				for id, ss := range seqReport.Nodes {
					ps := parReport.Nodes[id]
					if ps == nil {
						t.Fatalf("%s: parallel report missing node #%d (%s)", spec.name, id, ss.Name)
					}
					if ss.Computes != ps.Computes || ss.Hits != ps.Hits+ps.Coalesced {
						t.Errorf("%s node #%d (%s): sequential computes=%d hits=%d, parallel computes=%d hits=%d coalesced=%d",
							spec.name, id, ss.Name, ss.Computes, ss.Hits, ps.Computes, ps.Hits, ps.Coalesced)
					}
				}
			}
		})
	}
}

// TestTunedPipelineEquivalence covers the optimizer.Plan.Execute entry
// point the experiments and tuning layers use: the parallelism argument
// must select the scheduler without changing results.
func TestTunedPipelineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := specs(Quick)[1] // TIMIT: gather fan-in exercises branch dispatch
	g := spec.build()
	cfg := optimizer.Config{
		Level:       optimizer.LevelPipeline,
		Resources:   cluster.Local(4),
		NumClasses:  spec.numClasses,
		SampleSizes: [2]int{8, 16},
	}
	plan := optimizer.Optimize(g, spec.train.Data, spec.train.Labels, cfg)
	_, seqOut, _ := plan.Execute(spec.train.Data, spec.train.Labels, 1)
	_, parOut, _ := plan.Execute(spec.train.Data, spec.train.Labels, 4)
	floatsEqual(t, spec.name+"/plan-execute", seqOut, parOut)
}
