package experiments

import (
	"fmt"
	"io"
	"runtime"

	"keystoneml/internal/cluster"
	"keystoneml/internal/linalg"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"

	"keystoneml/internal/core"
)

// kernelRow is one reference-vs-blocked measurement at one GOMAXPROCS
// setting.
type kernelRow struct {
	Op      string  `json:"op"`
	Shape   string  `json:"shape"`
	Procs   int     `json:"procs"`
	RefSec  float64 `json:"ref_sec"`
	BlkSec  float64 `json:"blocked_sec"`
	Speedup float64 `json:"speedup"`
}

// kernelBench is the machine-readable result of the kernels experiment.
// The *_speedup fields are the tracked headline metrics cmd/benchdiff
// guards against regression (ratios reference/blocked, higher is
// better), measured at the highest GOMAXPROCS probed.
type kernelBench struct {
	GemmSpeedupSmall    float64     `json:"gemm_speedup_small"`
	GemmSpeedupLarge    float64     `json:"gemm_speedup_large"`
	TmulSpeedupLarge    float64     `json:"tmul_speedup_large"`
	QRSpeedup           float64     `json:"qr_speedup"`
	TsvdSpeedup         float64     `json:"tsvd_speedup"`
	E2ESpeedupVOC       float64     `json:"e2e_speedup_voc"`
	E2ESpeedupCIFAR     float64     `json:"e2e_speedup_cifar"`
	ChooseSmallBlocked  bool        `json:"choose_small_blocked"`
	ChooseLargeBlocked  bool        `json:"choose_large_blocked"`
	ChooseMatchesFaster bool        `json:"choose_matches_faster"`
	Rows                []kernelRow `json:"rows"`
}

// bestOfSec returns the fastest of reps timed runs of fn, in seconds.
func bestOfSec(reps int, fn func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		if s := timeIt(fn).Seconds(); best == 0 || s < best {
			best = s
		}
	}
	return best
}

// withMode runs fn under the given dispatch mode, restoring the
// previous mode after.
func withMode(m linalg.BackendMode, fn func()) {
	old := linalg.Mode()
	linalg.SetBackendMode(m)
	defer linalg.SetBackendMode(old)
	fn()
}

// Kernels compares the reference and blocked linalg backends head to
// head: GEMM/TMul/QR/TruncatedSVD microbenchmarks at GOMAXPROCS 1 and
// 4, whether measured dispatch (Choose) picks the faster variant on the
// small and large probe shapes, and the end-to-end Fit delta on the
// VOC- and CIFAR-shaped pipelines.
func Kernels(w io.Writer, scale Scale) {
	header(w, "Kernel backends: reference vs blocked")
	small, large := 32, 256
	tmulN, qrM, qrN, svdM := 512, 384, 48, 192
	if scale == Full {
		large, tmulN, qrM, svdM = 512, 1024, 1024, 384
	}

	var out kernelBench
	fmt.Fprintf(w, "%-6s %-16s %6s %12s %12s %9s\n", "op", "shape", "procs", "reference", "blocked", "speedup")
	oldProcs := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		linalg.SetKernelParallelism(oldProcs)
	}()
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		linalg.SetKernelParallelism(procs)
		rows := measureKernelRows(procs, small, large, tmulN, qrM, qrN, svdM)
		for _, r := range rows {
			fmt.Fprintf(w, "%-6s %-16s %6d %11.2fms %11.2fms %8.2fx\n",
				r.Op, r.Shape, r.Procs, 1e3*r.RefSec, 1e3*r.BlkSec, r.Speedup)
		}
		out.Rows = append(out.Rows, rows...)
		// Headline metrics come from the widest setting probed.
		out.GemmSpeedupSmall = rows[0].Speedup
		out.GemmSpeedupLarge = rows[1].Speedup
		out.TmulSpeedupLarge = rows[2].Speedup
		out.QRSpeedup = rows[3].Speedup
		out.TsvdSpeedup = rows[4].Speedup
	}

	// Measured dispatch: install the probe-derived crossover and check
	// Choose against the head-to-head timings on the probe shapes.
	cluster.InstallKernelCrossover()
	withMode(linalg.ModeAuto, func() {
		out.ChooseSmallBlocked = linalg.Choose(linalg.OpGemm, small, small, small).Name() == "blocked"
		out.ChooseLargeBlocked = linalg.Choose(linalg.OpGemm, large, large, large).Name() == "blocked"
	})
	smallFaster := out.Rows[0].BlkSec < out.Rows[0].RefSec
	largeFaster := out.Rows[1].BlkSec < out.Rows[1].RefSec
	out.ChooseMatchesFaster = out.ChooseSmallBlocked == smallFaster && out.ChooseLargeBlocked == largeFaster
	fmt.Fprintf(w, "dispatch: small=%s large=%s (matches measurement: %v)\n",
		pickName(out.ChooseSmallBlocked), pickName(out.ChooseLargeBlocked), out.ChooseMatchesFaster)

	// End-to-end: the same Fit under pinned reference kernels vs
	// measured Auto dispatch.
	out.E2ESpeedupVOC = e2eSpeedup(vocSpec(scale))
	out.E2ESpeedupCIFAR = e2eSpeedup(cifarSpec(scale))
	fmt.Fprintf(w, "end-to-end fit speedup (auto vs reference): VOC %.2fx, CIFAR %.2fx\n",
		out.E2ESpeedupVOC, out.E2ESpeedupCIFAR)
	emitBench("kernels", out)
}

func pickName(blocked bool) string {
	if blocked {
		return "blocked"
	}
	return "reference"
}

// measureKernelRows times the five kernel-level probes at one
// GOMAXPROCS setting, returning rows in a fixed order: gemm small, gemm
// large, tmul, qr, tsvd.
func measureKernelRows(procs, small, large, tmulN, qrM, qrN, svdM int) []kernelRow {
	rng := linalg.NewRNG(0xbe_ac4)
	row := func(op, shape string, ref, blk float64) kernelRow {
		return kernelRow{Op: op, Shape: shape, Procs: procs, RefSec: ref, BlkSec: blk, Speedup: ref / blk}
	}
	var rows []kernelRow
	for _, size := range []int{small, large} {
		a, b := rng.GaussianMatrix(size, size), rng.GaussianMatrix(size, size)
		dst := linalg.NewMatrix(size, size)
		run := func(be linalg.Backend) float64 {
			return bestOfSec(3, func() {
				clearVec(dst.Data)
				be.Mul(dst.Data, a.Data, b.Data, size, size, size)
			})
		}
		rows = append(rows, row("gemm", fmt.Sprintf("%dx%dx%d", size, size, size),
			run(linalg.Reference()), run(linalg.Blocked())))
	}
	{
		r, m := tmulN, tmulN/2
		a, b := rng.GaussianMatrix(r, m), rng.GaussianMatrix(r, m)
		dst := linalg.NewMatrix(m, m)
		run := func(be linalg.Backend) float64 {
			return bestOfSec(3, func() {
				clearVec(dst.Data)
				be.TMul(dst.Data, a.Data, b.Data, r, m, m)
			})
		}
		rows = append(rows, row("tmul", fmt.Sprintf("%dx%dx%d", r, m, m),
			run(linalg.Reference()), run(linalg.Blocked())))
	}
	{
		a := rng.GaussianMatrix(qrM, qrN)
		run := func(m linalg.BackendMode) float64 {
			var s float64
			withMode(m, func() { s = bestOfSec(3, func() { linalg.QR(a.Clone()) }) })
			return s
		}
		rows = append(rows, row("qr", fmt.Sprintf("%dx%d", qrM, qrN),
			run(linalg.ModeReference), run(linalg.ModeBlocked)))
	}
	{
		a := rng.GaussianMatrix(svdM, svdM/3)
		run := func(m linalg.BackendMode) float64 {
			var s float64
			withMode(m, func() {
				s = bestOfSec(3, func() { linalg.TruncatedSVD(a.Clone(), 8, 2, linalg.NewRNG(77)) })
			})
			return s
		}
		rows = append(rows, row("tsvd", fmt.Sprintf("%dx%d k=8", svdM, svdM/3),
			run(linalg.ModeReference), run(linalg.ModeBlocked)))
	}
	return rows
}

func clearVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// vocSpec is the VOC-shaped vision workload from the Figure 9 set.
func vocSpec(scale Scale) workloadSpec { return specs(scale)[2] }

// cifarSpec is the CIFAR-shaped convolutional workload from Table 5.
func cifarSpec(scale Scale) workloadSpec {
	n := 60
	if scale == Full {
		n = 160
	}
	return workloadSpec{
		name: "CIFAR-10",
		build: func() *core.Graph {
			return pipelines.Cifar(pipelines.CifarConfig{NumFilters: 12, Seed: 23, Iterations: 20}).Graph()
		},
		train:      workload.Images(n, 32, 3, 4, 21, 4),
		test:       workload.Images(n/2, 32, 3, 4, 22, 2),
		numClasses: 4,
	}
}

// e2eSpeedup fits one workload end to end under pinned reference
// kernels and under measured Auto dispatch, returning ref/auto total
// fit time (best of two runs each to damp scheduler noise).
func e2eSpeedup(spec workloadSpec) float64 {
	fit := func(m linalg.BackendMode) float64 {
		var s float64
		withMode(m, func() {
			s = bestOfSec(2, func() { _, _, _ = runPlan(spec, optimizer.LevelFull, 0) })
		})
		return s
	}
	cluster.InstallKernelCrossover()
	ref := fit(linalg.ModeReference)
	auto := fit(linalg.ModeAuto)
	return ref / auto
}
