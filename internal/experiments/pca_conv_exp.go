package experiments

import (
	"fmt"
	"io"

	"keystoneml/internal/cluster"
	"keystoneml/internal/conv"
	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
	"keystoneml/internal/pca"
	"keystoneml/internal/solvers"
	"keystoneml/internal/workload"
)

// Table2 measures the four PCA physical implementations over an (n, d, k)
// grid, scaled down from the paper's (10⁴/10⁶) x (256/4096) grid.
// Expected shape: local variants win small problems, TSVD wins small k,
// exact SVD wins large k, and the largest configurations are only
// feasible distributed.
func Table2(w io.Writer, scale Scale) {
	header(w, "Table 2: PCA runtimes (seconds)")
	ns := []int{500, 2500}
	ds := []int{32, 96}
	ks := []int{1, 4, 16}
	if scale == Full {
		ns = []int{1000, 8000}
		ds = []int{64, 192}
		ks = []int{1, 8, 32}
	}
	ctx := engine.NewContext(0)
	for _, n := range ns {
		for _, d := range ds {
			fmt.Fprintf(w, "-- n=%d d=%d --\n", n, d)
			fmt.Fprintf(w, "%-12s", "k:")
			for _, k := range ks {
				fmt.Fprintf(w, "%10d", k)
			}
			fmt.Fprintln(w)
			data := workload.DenseVectors(n, d, 4, uint64(n*d), 8).Data
			variants := []struct {
				name string
				mk   func(k int) core.EstimatorOp
			}{
				{"SVD", func(k int) core.EstimatorOp { return &pca.LocalSVD{K: k} }},
				{"TSVD", func(k int) core.EstimatorOp { return &pca.LocalTSVD{K: k, Iters: 2} }},
				{"Dist.SVD", func(k int) core.EstimatorOp { return &pca.DistSVD{K: k} }},
				{"Dist.TSVD", func(k int) core.EstimatorOp { return &pca.DistTSVD{K: k, Iters: 2} }},
			}
			for _, v := range variants {
				fmt.Fprintf(w, "%-12s", v.name)
				for _, k := range ks {
					kk := min(k, d)
					est := v.mk(kk)
					dur := timeIt(func() { est.Fit(ctx, fetchOf(data), nil) })
					fmt.Fprintf(w, "%10.3f", dur.Seconds())
				}
				fmt.Fprintln(w)
			}
		}
	}
}

// Figure7 measures the three convolution strategies as filter size grows
// on a fixed image. Expected shape: BLAS wins small k, its k² cost
// overtakes FFT's flat cost as k grows, and separable (when applicable)
// stays close to flat.
func Figure7(w io.Writer, scale Scale) {
	header(w, "Figure 7: convolution strategy vs filter size")
	size, filters := 96, 16
	ks := []int{2, 3, 4, 6, 8, 12}
	if scale == Full {
		size, filters = 160, 32
		ks = []int{2, 3, 4, 6, 8, 12, 16, 20, 24}
	}
	rng := linalg.NewRNG(5)
	im := image.New(size, size, 3)
	for i := range im.Pix {
		im.Pix[i] = rng.Gaussian()
	}
	fmt.Fprintf(w, "image %dx%dx3, %d filters\n", size, size, filters)
	fmt.Fprintf(w, "%6s %14s %14s %14s\n", "k", "separable", "blas", "fft")
	for _, k := range ks {
		bank := conv.SeparableFilterBank(k, 3, filters, linalg.NewRNG(uint64(k)))
		tSep := timeIt(func() { (conv.Separable{}).Convolve(im, bank) })
		tBlas := timeIt(func() { (conv.BLAS{}).Convolve(im, bank) })
		tFFT := timeIt(func() { (conv.FFT{}).Convolve(im, bank) })
		fmt.Fprintf(w, "%6d %14s %14s %14s\n", k, secs(tSep), secs(tBlas), secs(tFFT))
	}
}

// CostModelEval reproduces the Section 3 cost-model evaluation: over the
// Figure 6 solver grid and the Table 2 PCA grid, how often does the
// optimizer's cost-based choice match the empirically fastest operator?
// The paper reports 90% (solvers) and 84% (PCA), with misses only where
// runtimes were close.
func CostModelEval(w io.Writer, scale Scale) {
	header(w, "Cost model evaluation (Section 3)")
	// The empirical best is measured on this machine, so the optimizer
	// must be scored against a descriptor of this machine.
	res := cluster.Local(1)
	ctx := engine.NewContext(0)

	// Solvers over sparse and dense sweeps.
	type solverCase struct {
		l      workload.Labeled
		stats  cost.DataStats
		labels bool
	}
	var cases []solverCase
	dims := []int{128, 256, 512}
	n := 1000
	if scale == Full {
		dims = []int{128, 256, 512, 1024}
		n = 2000
	}
	for _, d := range dims {
		sp := workload.SparseVectors(n, d, 8, 2, 11, 8)
		cases = append(cases, solverCase{sp, cost.DataStats{N: int64(n), Dim: int64(d), K: 2, Sparsity: 8.0 / float64(d)}, true})
		de := workload.DenseVectors(n, d, 8, 12, 8)
		cases = append(cases, solverCase{de, cost.DataStats{N: int64(n), Dim: int64(d), K: 8, Sparsity: 1}, true})
	}
	right, total := 0, 0
	var regret float64
	for _, c := range cases {
		opts := (&solversLinear{}).options()
		choice := cost.Choose(opts, c.stats, res)
		best, bestT := -1, 0.0
		times := make([]float64, len(opts))
		for i, o := range opts {
			est := o.Operator.(core.EstimatorOp)
			dur := timeIt(func() { est.Fit(ctx, fetchOf(c.l.Data), fetchOf(c.l.Labels)) })
			times[i] = dur.Seconds()
			if best < 0 || times[i] < bestT {
				best, bestT = i, times[i]
			}
		}
		total++
		if choice == best {
			right++
		} else {
			regret += times[choice] / bestT
		}
	}
	fmt.Fprintf(w, "solver choices correct: %d/%d (%.0f%%)\n", right, total, 100*float64(right)/float64(total))
	if right < total {
		fmt.Fprintf(w, "mean slowdown when wrong: %.2fx (paper: wrong choices were near-ties)\n", regret/float64(total-right))
	}

	// PCA over a small grid.
	rightP, totalP := 0, 0
	pcaDims := []int{32, 64}
	pcaNs := []int{400, 1600}
	for _, nn := range pcaNs {
		for _, dd := range pcaDims {
			for _, kk := range []int{1, 8} {
				data := workload.DenseVectors(nn, dd, 4, uint64(nn+dd), 8).Data
				p := &pca.PCA{K: kk}
				opts := p.Options()
				stats := cost.DataStats{N: int64(nn), Dim: int64(dd), K: int64(kk), Sparsity: 1}
				choice := cost.Choose(opts, stats, res)
				best, bestT := -1, 0.0
				for i, o := range opts {
					est := o.Operator.(core.EstimatorOp)
					dur := timeIt(func() { est.Fit(ctx, fetchOf(data), nil) })
					if best < 0 || dur.Seconds() < bestT {
						best, bestT = i, dur.Seconds()
					}
				}
				totalP++
				if choice == best {
					rightP++
				}
			}
		}
	}
	fmt.Fprintf(w, "PCA choices correct:    %d/%d (%.0f%%)\n", rightP, totalP, 100*float64(rightP)/float64(totalP))
}

// solversLinear re-exposes the Table 1 options with experiment-scale
// iteration counts.
type solversLinear struct{}

func (solversLinear) options() []cost.Option {
	return (&solvers.LinearSolver{Iterations: 50}).Options()
}
