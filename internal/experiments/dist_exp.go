// Distributed-fit experiment: measured data-parallel speedup of a real
// keystone/dist fit over worker processes, checked against the extended
// makespan simulator's worker-count ranking. The workload is
// latency-bound by construction (a fixed per-record sleep, one
// partition-slot per worker) because the CI host exposes a single CPU:
// wall-clock speedup must come from genuinely concurrent workers, not
// from scheduling artifacts, and a sleep is the one per-record cost that
// parallelizes perfectly on any core count.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/dist"
)

// distSleep is the per-record latency of the synthetic stage. The op is
// registered by name so it can cross the dist wire (operators ship as
// persistable state, and a named stateless op is its own state).
const distSleep = 3 * time.Millisecond

func init() {
	keystone.RegisterStatelessOp("exp.dist.sleep3ms", func(x []float64) []float64 {
		time.Sleep(distSleep)
		return x
	})
}

// distBenchRow is one worker-count configuration's outcome.
type distBenchRow struct {
	Workers    int     `json:"workers"`
	TrainSec   float64 `json:"train_sec"`
	ModeledSec float64 `json:"modeled_sec"`
}

// distBench is the BENCH_dist.json payload.
type distBench struct {
	Records     int            `json:"records"`
	Partitions  int            `json:"partitions"`
	Rows        []distBenchRow `json:"rows"`
	Speedup     float64        `json:"speedup"`
	RankMatches bool           `json:"simulator_rank_matches"`
	// RecoveryOverhead is the wall-clock cost of fault tolerance: a
	// 2-worker fit with one worker killed mid-fit (recovered via
	// reassignment + lineage replay) over the clean 2-worker fit.
	// 1.0 would be free recovery; benchdiff gates regressions (lower is
	// better).
	RecoveredTrainSec  float64 `json:"recovered_train_sec"`
	RecoveryOverhead   float64 `json:"recovery_overhead"`
	Recoveries         int     `json:"recoveries"`
	ReplayedPartitions int     `json:"replayed_partitions"`
}

// distFitAt runs one distributed fit over n in-process workers (real TCP
// loopback wire, per-worker parallelism 1) and returns the fit report.
// A non-nil fault plan is armed on the coordinator with tight failure
// timeouts, and its default sever hook kills the target worker — the
// recovery-overhead leg.
func distFitAt(n int, records []([]float64), labels [][]float64, partitions, iters int, plan *dist.FaultPlan) (*dist.Report, error) {
	workers := make([]*dist.Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		w, err := dist.StartWorker(dist.WorkerOptions{Listen: "127.0.0.1:0", Parallelism: 1})
		if err != nil {
			return nil, err
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	opts := dist.ClusterOptions{Addrs: addrs}
	if plan != nil {
		if plan.OnSever == nil {
			plan.OnSever = func(i int) { workers[i].Close() }
		}
		opts.Fault = plan
		opts.OpTimeout = 5 * time.Second
		opts.DialRetries = 1
		opts.RetryBackoff = 20 * time.Millisecond
	}
	cl, err := dist.ConnectWith(opts)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	p := keystone.ThenEstimator(
		keystone.Then(keystone.Input[[]float64](), keystone.NewOp("exp.dist.sleep3ms", func(x []float64) []float64 {
			time.Sleep(distSleep)
			return x
		})),
		keystone.LinearSolver(iters))
	_, rep, err := dist.Fit(context.Background(), cl, p, records, labels, dist.FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{4, 8},
		Partitions:  partitions,
	})
	return rep, err
}

// DistFit measures a distributed fit of a latency-bound pipeline at 1
// and 2 workers and checks the extended simulator (network + stage
// latency terms) ranks the worker counts the same way the measurements
// do. Expected shape: near-2x measured speedup, and the simulator's
// modeled makespan ordering matches the measured ordering.
func DistFit(w io.Writer, scale Scale) {
	header(w, "Distributed fit: measured speedup vs extended-simulator ranking")

	records, partitions, iters := 24, 4, 2
	if scale == Full {
		records, partitions = 48, 8
	}
	recs := make([][]float64, records)
	labels := make([][]float64, records)
	for i := range recs {
		recs[i] = []float64{float64(i), float64(i % 3)}
		labels[i] = []float64{float64(i % 2), float64((i + 1) % 2)}
	}

	fmt.Fprintf(w, "workload: %d records x %v sleep, %d partitions, solver %d passes\n\n",
		records, distSleep, partitions, iters)
	fmt.Fprintf(w, "%8s %12s %12s %8s\n", "workers", "train", "modeled", "speedup")

	bench := distBench{Records: records, Partitions: partitions}
	var trains []float64
	var modeled []float64
	for _, n := range []int{1, 2} {
		rep, err := distFitAt(n, recs, labels, partitions, iters, nil)
		if err != nil {
			fmt.Fprintf(w, "dist fit at %d workers: %v\n", n, err)
			return
		}
		trains = append(trains, rep.TrainTime.Seconds())
		modeled = append(modeled, rep.ModeledMakespan)
		bench.Rows = append(bench.Rows, distBenchRow{
			Workers: n, TrainSec: rep.TrainTime.Seconds(), ModeledSec: rep.ModeledMakespan,
		})
		speedup := ""
		if n > 1 {
			speedup = fmt.Sprintf("%7.2fx", trains[0]/rep.TrainTime.Seconds())
		}
		fmt.Fprintf(w, "%8d %11.3fs %11.4fs %8s\n", n, rep.TrainTime.Seconds(), rep.ModeledMakespan, speedup)
	}

	bench.Speedup = trains[0] / trains[1]
	bench.RankMatches = (modeled[1] < modeled[0]) == (trains[1] < trains[0])
	verdict := "matches"
	if !bench.RankMatches {
		verdict = "DISAGREES WITH"
	}
	fmt.Fprintf(w, "\nmeasured speedup %.2fx; simulator ranking %s measured ordering\n", bench.Speedup, verdict)

	// Recovery leg: the same 2-worker fit, but worker 0 is killed at its
	// 2nd apply frame. The fit must complete through reassignment +
	// lineage replay; the overhead ratio vs the clean 2-worker fit is
	// what benchdiff gates.
	plan := dist.NewFaultPlan(dist.FaultRule{Op: "apply", Worker: 0, Nth: 2, Mode: dist.FaultSever})
	rep, err := distFitAt(2, recs, labels, partitions, iters, plan)
	if err != nil {
		fmt.Fprintf(w, "recovery fit: %v\n", err)
		return
	}
	bench.RecoveredTrainSec = rep.TrainTime.Seconds()
	bench.RecoveryOverhead = bench.RecoveredTrainSec / trains[1]
	bench.Recoveries = rep.Recoveries
	bench.ReplayedPartitions = rep.ReplayedPartitions
	fmt.Fprintf(w, "recovery: worker killed mid-fit, %d recovery, %d partition replays, train %.3fs (%.2fx clean)\n",
		rep.Recoveries, rep.ReplayedPartitions, bench.RecoveredTrainSec, bench.RecoveryOverhead)
	emitBench("dist", bench)
}
