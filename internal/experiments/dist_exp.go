// Distributed-fit experiment: measured data-parallel speedup of a real
// keystone/dist fit over worker processes, checked against the extended
// makespan simulator's worker-count ranking. The workload is
// latency-bound by construction (a fixed per-record sleep, one
// partition-slot per worker) because the CI host exposes a single CPU:
// wall-clock speedup must come from genuinely concurrent workers, not
// from scheduling artifacts, and a sleep is the one per-record cost that
// parallelizes perfectly on any core count.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/dist"
)

// distSleep is the per-record latency of the synthetic stage. The op is
// registered by name so it can cross the dist wire (operators ship as
// persistable state, and a named stateless op is its own state).
const distSleep = 3 * time.Millisecond

func init() {
	keystone.RegisterStatelessOp("exp.dist.sleep3ms", func(x []float64) []float64 {
		time.Sleep(distSleep)
		return x
	})
}

// distBenchRow is one worker-count configuration's outcome.
type distBenchRow struct {
	Workers    int     `json:"workers"`
	TrainSec   float64 `json:"train_sec"`
	ModeledSec float64 `json:"modeled_sec"`
}

// distBench is the BENCH_dist.json payload.
type distBench struct {
	Records     int            `json:"records"`
	Partitions  int            `json:"partitions"`
	Rows        []distBenchRow `json:"rows"`
	Speedup     float64        `json:"speedup"`
	RankMatches bool           `json:"simulator_rank_matches"`
}

// distFitAt runs one distributed fit over n in-process workers (real TCP
// loopback wire, per-worker parallelism 1) and returns the fit report.
func distFitAt(n int, records []([]float64), labels [][]float64, partitions, iters int) (*dist.Report, error) {
	workers := make([]*dist.Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		w, err := dist.StartWorker(dist.WorkerOptions{Listen: "127.0.0.1:0", Parallelism: 1})
		if err != nil {
			return nil, err
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := dist.Connect(addrs...)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	p := keystone.ThenEstimator(
		keystone.Then(keystone.Input[[]float64](), keystone.NewOp("exp.dist.sleep3ms", func(x []float64) []float64 {
			time.Sleep(distSleep)
			return x
		})),
		keystone.LinearSolver(iters))
	_, rep, err := dist.Fit(context.Background(), cl, p, records, labels, dist.FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{4, 8},
		Partitions:  partitions,
	})
	return rep, err
}

// DistFit measures a distributed fit of a latency-bound pipeline at 1
// and 2 workers and checks the extended simulator (network + stage
// latency terms) ranks the worker counts the same way the measurements
// do. Expected shape: near-2x measured speedup, and the simulator's
// modeled makespan ordering matches the measured ordering.
func DistFit(w io.Writer, scale Scale) {
	header(w, "Distributed fit: measured speedup vs extended-simulator ranking")

	records, partitions, iters := 24, 4, 2
	if scale == Full {
		records, partitions = 48, 8
	}
	recs := make([][]float64, records)
	labels := make([][]float64, records)
	for i := range recs {
		recs[i] = []float64{float64(i), float64(i % 3)}
		labels[i] = []float64{float64(i % 2), float64((i + 1) % 2)}
	}

	fmt.Fprintf(w, "workload: %d records x %v sleep, %d partitions, solver %d passes\n\n",
		records, distSleep, partitions, iters)
	fmt.Fprintf(w, "%8s %12s %12s %8s\n", "workers", "train", "modeled", "speedup")

	bench := distBench{Records: records, Partitions: partitions}
	var trains []float64
	var modeled []float64
	for _, n := range []int{1, 2} {
		rep, err := distFitAt(n, recs, labels, partitions, iters)
		if err != nil {
			fmt.Fprintf(w, "dist fit at %d workers: %v\n", n, err)
			return
		}
		trains = append(trains, rep.TrainTime.Seconds())
		modeled = append(modeled, rep.ModeledMakespan)
		bench.Rows = append(bench.Rows, distBenchRow{
			Workers: n, TrainSec: rep.TrainTime.Seconds(), ModeledSec: rep.ModeledMakespan,
		})
		speedup := ""
		if n > 1 {
			speedup = fmt.Sprintf("%7.2fx", trains[0]/rep.TrainTime.Seconds())
		}
		fmt.Fprintf(w, "%8d %11.3fs %11.4fs %8s\n", n, rep.TrainTime.Seconds(), rep.ModeledMakespan, speedup)
	}

	bench.Speedup = trains[0] / trains[1]
	bench.RankMatches = (modeled[1] < modeled[0]) == (trains[1] < trains[0])
	verdict := "matches"
	if !bench.RankMatches {
		verdict = "DISAGREES WITH"
	}
	fmt.Fprintf(w, "\nmeasured speedup %.2fx; simulator ranking %s measured ordering\n", bench.Speedup, verdict)
	emitBench("dist", bench)
}
