package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"

	"keystoneml/keystone"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
	"keystoneml/keystone/tune"
)

// The prefix operators are registered stateless ops so they are
// content-addressable: candidates built from them share cached prefixes.
func tuneScale(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = 2 * v
	}
	return out
}

func tuneShift(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + 1
	}
	return out
}

func init() {
	keystone.RegisterStatelessOp("tune.exp.scale", tuneScale)
	keystone.RegisterStatelessOp("tune.exp.shift", tuneShift)
}

// tuneBench is the machine-readable result of the tune experiment.
// shared_speedup is the tracked headline metric (isolated/shared search
// wall time, higher is better); the booleans record the correctness
// side-conditions (sharing must not change the winner's predictions,
// and the winner must deploy end to end).
type tuneBench struct {
	SharedSpeedup   float64 `json:"shared_speedup"`
	SharedSec       float64 `json:"shared_sec"`
	IsolatedSec     float64 `json:"isolated_sec"`
	SharedHits      int64   `json:"shared_hits"`
	SharedComputes  int64   `json:"shared_computes"`
	Candidates      int     `json:"candidates"`
	WinnerIdentical bool    `json:"winner_identical"`
	HalvingRounds   int     `json:"halving_rounds"`
	Deployed        bool    `json:"deployed"`
}

// tuneData builds a deterministic labeled dataset with class structure
// (class c clusters around cos((c+1)(j+1)) plus a per-record wiggle).
func tuneData(n, dim, classes int) ([][]float64, [][]float64) {
	recs := make([][]float64, n)
	labs := make([][]float64, n)
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for j := range x {
			x[j] = math.Cos(float64((c+1)*(j+1))) + 0.1*math.Sin(float64(i*(j+1)))
		}
		y := make([]float64, classes)
		y[c] = 1
		recs[i], labs[i] = x, y
	}
	return recs, labs
}

// TuneSearch demonstrates the hyperparameter-search subsystem:
//
//  1. Cross-candidate cache sharing: a solver grid whose candidates all
//     share a 3-op featurization prefix is searched twice — once with the
//     round-scoped shared prefix cache (the default) and once fully
//     isolated. The prefix is computed once per round instead of once per
//     candidate, so the shared search must be markedly faster, and the
//     winner's predictions must be bit-identical to fitting that
//     candidate standalone (sharing is a pure optimization).
//  2. Successive halving + deploy: a feature-width grid is searched with
//     real halving rounds, and the winner is rolled out to a live route
//     through the registry-backed canary path (tune.DeployWinner),
//     closing the search -> artifact -> serving loop.
func TuneSearch(w io.Writer, scale Scale) {
	header(w, "Hyperparameter search: cross-candidate sharing and winner deploy")
	n, dim, features := 480, 256, 512
	if scale == Full {
		n, features = 960, 768
	}
	recs, labs := tuneData(n, dim, 3)
	ctx := context.Background()

	// Phase 1: one full-data round over a solver grid, shared vs
	// isolated. All candidates share the scale -> shift -> RandomFeatures
	// prefix; only the solver's iteration count differs.
	build := func(p tune.Params) *keystone.Pipeline[[]float64, []float64] {
		pl := keystone.Input[[]float64]().
			Then(keystone.NewOp("tune.exp.scale", tuneScale)).
			Then(keystone.NewOp("tune.exp.shift", tuneShift)).
			Then(keystone.RandomFeatures(dim, features, 1.0, 7))
		return keystone.ThenEstimator(pl, keystone.LinearSolver(p.Int("iters")))
	}
	grid := tune.Grid(map[string][]float64{"iters": {2, 3, 4, 5, 6, 8}})
	searchOpts := func(share bool) []tune.Option[[]float64, []float64] {
		return []tune.Option[[]float64, []float64]{
			tune.WithParallelism[[]float64, []float64](1), // sequential: per-core work shows up in wall time
			tune.WithMinSample[[]float64, []float64](n),   // single round on the full split
			tune.WithSharing[[]float64, []float64](share),
			// Small profiling samples: candidate fits are repeated many
			// times in a search, so per-fit profiling should be cheap.
			tune.WithFitOptions[[]float64, []float64](keystone.WithSampleSizes(32, 64)),
		}
	}

	var out tuneBench
	out.Candidates = len(grid)
	var winner *keystone.Fitted[[]float64, []float64]
	var report *tune.Report
	out.SharedSec = bestOfSec(2, func() {
		var err error
		winner, report, err = tune.Search(ctx, build, grid, recs, labs, searchOpts(true)...)
		if err != nil {
			panic(err)
		}
	})
	out.IsolatedSec = bestOfSec(2, func() {
		if _, _, err := tune.Search(ctx, build, grid, recs, labs, searchOpts(false)...); err != nil {
			panic(err)
		}
	})
	out.SharedSpeedup = out.IsolatedSec / out.SharedSec
	out.SharedHits = report.SharedHits + report.SharedCoalesced
	out.SharedComputes = report.SharedComputes
	fmt.Fprintf(w, "%-10s %9s %9s %9s\n", "mode", "wall", "hits", "computes")
	fmt.Fprintf(w, "%-10s %8.0fms %9d %9d\n", "shared", 1e3*out.SharedSec, out.SharedHits, out.SharedComputes)
	fmt.Fprintf(w, "%-10s %8.0fms %9s %9s\n", "isolated", 1e3*out.IsolatedSec, "-", "-")
	fmt.Fprintf(w, "sharing speedup over %d candidates: %.2fx (want >= 1.3x)\n", len(grid), out.SharedSpeedup)

	// Correctness side-condition: refit the winning candidate standalone
	// on the same training split (the search holds out every 4th record
	// at the default 0.25) and compare predictions bit for bit.
	var trainR, valR [][]float64
	var trainL [][]float64
	for i := range recs {
		if (i+1)%4 == 0 {
			valR = append(valR, recs[i])
		} else {
			trainR = append(trainR, recs[i])
			trainL = append(trainL, labs[i])
		}
	}
	standalone, err := build(report.Candidates[0].Params).Fit(ctx, trainR, trainL,
		keystone.WithWorkers(1), keystone.WithSampleSizes(32, 64))
	if err != nil {
		panic(err)
	}
	got, err1 := winner.TransformBatch(ctx, valR)
	want, err2 := standalone.TransformBatch(ctx, valR)
	out.WinnerIdentical = err1 == nil && err2 == nil && reflect.DeepEqual(got, want)
	fmt.Fprintf(w, "winner %q bit-identical to standalone fit: %v\n",
		report.Candidates[0].Name, out.WinnerIdentical)

	// Phase 2: successive halving over a feature-width grid, winner
	// auto-deployed to a live route through a real on-disk registry.
	halveDeploy(w, ctx, &out)
	emitBench("tune", out)
}

// halveDeploy runs the multi-round half of the experiment: halving over
// feature widths, then tune.DeployWinner staging the winner as a canary
// and promoting it live, verified by predicting through the route.
func halveDeploy(w io.Writer, ctx context.Context, out *tuneBench) {
	// Lower-dimensional data where feature-map width visibly drives
	// accuracy, so halving has a real ranking to get right.
	dim := 96
	recs, labs := tuneData(480, dim, 3)
	build := func(p tune.Params) *keystone.Pipeline[[]float64, []float64] {
		pl := keystone.Input[[]float64]().
			Then(keystone.NewOp("tune.exp.scale", tuneScale)).
			Then(keystone.RandomFeatures(dim, p.Int("features"), 1.0, 7))
		return keystone.ThenEstimator(pl, keystone.LinearSolver(10))
	}
	grid := tune.Grid(map[string][]float64{"features": {8, 16, 64, 192}})

	dir, err := os.MkdirTemp("", "keystone-tune-exp")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	reg, err := registry.Open(dir)
	if err != nil {
		panic(err)
	}
	srv := serve.NewServer()
	defer srv.Close()
	initial, err := build(grid[0]).Fit(ctx, recs[:64], labs[:64])
	if err != nil {
		panic(err)
	}
	rt, err := serve.Register(srv, "tuned", initial, serve.VectorCodec{Dim: dim}, serve.WithArtifactStore(reg))
	if err != nil {
		panic(err)
	}

	winner, report, err := tune.Search(ctx, build, grid, recs, labs,
		tune.WithParallelism[[]float64, []float64](4),
		tune.WithMinSample[[]float64, []float64](64),
		tune.DeployWinner(rt, 0.5))
	if err != nil {
		panic(err)
	}
	out.HalvingRounds = report.Rounds
	fmt.Fprintf(w, "\n%-14s %9s %7s  %s\n", "candidate", "accuracy", "rounds", "trajectory")
	for _, c := range report.Candidates {
		fmt.Fprintf(w, "%-14s %9.3f %7d  %v\n", c.Name, c.Accuracy, c.Rounds, c.Trajectory)
	}
	wantPred, err := winner.Transform(ctx, recs[3])
	if err != nil {
		panic(err)
	}
	gotPred, err := rt.Predict(ctx, recs[3])
	out.Deployed = err == nil && report.DeployedVersion > 1 && report.DeployedArtifact != "" &&
		reflect.DeepEqual(gotPred, wantPred)
	fmt.Fprintf(w, "winner deployed: version %d, artifact %.12s..., route serves winner: %v\n",
		report.DeployedVersion, report.DeployedArtifact, out.Deployed)
}
