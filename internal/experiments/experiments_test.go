package experiments

import (
	"bytes"
	"strings"
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/workload"
)

// TestAnalyticExperimentsRun smoke-tests the pure-computation experiments
// (no measured fits) and checks their output contains the expected rows.
func TestAnalyticExperimentsRun(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	Table6(&buf)
	Figure12(&buf)
	out := buf.String()
	for _, want := range []string{
		"solver.lbfgs", "solver.block", // Table 1 rows
		"TensorFlow (strong)", "KeystoneML", "xxx", // Table 6 rows
		"featurize", "solve", "ImageNet", // Figure 12 rows
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analytic experiment output missing %q", want)
		}
	}
}

// TestPipelinesLearnUnderFullOptimization is the Table 5 contract: every
// evaluation pipeline must clearly beat chance on held-out synthetic data.
func TestPipelinesLearnUnderFullOptimization(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range specs(Quick) {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			_, _, fitted := runPlan(spec, optimizer.LevelFull, 0)
			scores := collectScores(fitted, spec.test.Data)
			acc := metrics.Accuracy(scores, spec.test.Truth)
			chance := 1.0 / float64(spec.numClasses)
			if acc < chance*1.6 {
				t.Errorf("%s accuracy %.2f not clearly above chance %.2f", spec.name, acc, chance)
			}
		})
	}
}

// TestOptimizationLevelsOrdering is the Figure 9 contract: more
// optimization never makes end-to-end time dramatically worse, and full
// optimization beats no optimization on every workload.
func TestOptimizationLevelsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range specs(Quick) {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			optN, execN, _ := runPlan(spec, optimizer.LevelNone, 0)
			optF, execF, _ := runPlan(spec, optimizer.LevelFull, 0)
			none := optN + execN
			full := optF + execF
			if full.Seconds() > none.Seconds() {
				t.Errorf("full optimization slower than none: %v vs %v", full, none)
			}
		})
	}
}

// TestGreedyCacheSetTargetsSolverInput is the Figure 11 contract: with
// ample memory, the strategy materializes the reused featurized data that
// feeds the iterative solver.
func TestGreedyCacheSetTargetsSolverInput(t *testing.T) {
	build, train := cachingSpec(Quick)
	g := build()
	plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
		Level:       optimizer.LevelPipeline,
		Resources:   cluster.Local(4),
		NumClasses:  train.Classes,
		SampleSizes: [2]int{8, 16},
	})
	if len(plan.CacheSet) == 0 {
		t.Fatal("greedy cached nothing on the branching pipeline")
	}
	// The solver's direct input (the gather node feeding the estimator)
	// must be cached in the unconstrained case.
	solverInputs := optimizer.EstimatorInputIDs(g)
	cached := map[int]bool{}
	for _, id := range plan.CacheSet {
		cached[id] = true
	}
	anyInputCached := false
	for _, id := range solverInputs {
		if cached[id] {
			anyInputCached = true
		}
	}
	if !anyInputCached {
		t.Errorf("no estimator input in cache set %v (inputs %v)", plan.CacheSet, solverInputs)
	}
}

// TestWorkloadSpecsConsistent checks spec-level invariants: aligned
// train/test classes and usable graphs.
func TestWorkloadSpecsConsistent(t *testing.T) {
	for _, spec := range specs(Quick) {
		if spec.train.Classes != spec.numClasses || spec.test.Classes != spec.numClasses {
			t.Errorf("%s class mismatch", spec.name)
		}
		g := spec.build()
		if g.Sink == nil || g.Sink.Kind != core.KindApplyModel {
			t.Errorf("%s pipeline sink is %v, want a model application", spec.name, g.Sink.Kind)
		}
	}
	_ = workload.Labeled{}
}
