package experiments

import (
	"testing"
	"time"

	"keystoneml/internal/optimizer"
)

// schedTestShapes mirrors SchedulePlanExp's Quick-scale shapes.
func schedTestShapes() []schedShape {
	return []schedShape{
		{name: "chain2-vs-fan6", records: 2, chainLen: 2, fanWidth: 6,
			chainNode: 25 * time.Millisecond, fanNode: 10 * time.Millisecond,
			weight: 4, workers: 4},
		{name: "chain3-vs-fan8", records: 2, chainLen: 3, fanWidth: 8,
			chainNode: 15 * time.Millisecond, fanNode: 8 * time.Millisecond,
			weight: 3, workers: 4},
	}
}

// TestSchedulePinSetsDiverge pins the planning half of the sched
// experiment deterministically: on both branchy shapes and an equal
// budget, the sequential cost model and the makespan cost model choose
// different pin sets, and under the parallel model the makespan-aware
// choice is strictly better.
func TestSchedulePinSetsDiverge(t *testing.T) {
	const budget = 50
	for _, s := range schedTestShapes() {
		g, prof, _ := s.build()
		seqSet := optimizer.GreedyCacheSet(g, prof, budget, 1)
		mkSet := optimizer.GreedyCacheSet(g, prof, budget, s.workers)
		if len(seqSet) == 0 || len(mkSet) == 0 {
			t.Fatalf("%s: empty pin set (seq %v, makespan %v)", s.name, seqSet, mkSet)
		}
		same := len(seqSet) == len(mkSet)
		if same {
			for i := range seqSet {
				if seqSet[i] != mkSet[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: models agree on %v; the shape no longer separates them", s.name, seqSet)
		}
		cost := func(set []int) float64 {
			cached := map[int]bool{}
			for _, id := range set {
				cached[id] = true
			}
			return optimizer.EstCost(g, prof, cached, s.workers)
		}
		if cs, cm := cost(seqSet), cost(mkSet); cm >= cs {
			t.Errorf("%s: makespan pin set modeled at %.3fs, not better than sequential set's %.3fs",
				s.name, cm, cs)
		}
	}
}

// TestScheduleMakespanPinSetFasterInWallClock executes both pin sets on
// the real parallel scheduler. Branch latencies are sleeps, so the gap
// (modeled ~1.9x) survives single-core CI; a generous 1.2x margin
// absorbs scheduling noise.
func TestScheduleMakespanPinSetFasterInWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const budget = 50
	for _, s := range schedTestShapes() {
		g, prof, data := s.build()
		seqSet := optimizer.GreedyCacheSet(g, prof, budget, 1)
		mkSet := optimizer.GreedyCacheSet(g, prof, budget, s.workers)
		tSeq := runPinSet(g, seqSet, data, s.workers)
		g2, _, data2 := s.build()
		tMk := runPinSet(g2, mkSet, data2, s.workers)
		if float64(tSeq) < 1.2*float64(tMk) {
			t.Errorf("%s: makespan pin set %v (%v) not clearly faster than sequential set %v (%v)",
				s.name, mkSet, tMk, seqSet, tSeq)
		}
	}
}
