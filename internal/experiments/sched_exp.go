// Schedule-plan experiment: demonstrates why the materialization planner
// must cost cache sets under the executor's actual schedule. On branchy
// DAGs the paper's sequential Σ t(v)·computes(v) model ranks pins by
// total work spared, but under k workers recomputing an off-critical-path
// fan is nearly free (it overlaps the critical chain) while shortening
// the critical chain moves wall-clock directly. The experiment builds
// DAG shapes where the two models choose *different* pin sets under an
// equal budget, then executes both pin sets on the real parallel
// scheduler and measures the gap.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/optimizer"
)

// refetchEst is a minimal iterative estimator: it fetches its input w
// times (the refetch traffic the materialization optimizer exists for)
// and learns nothing.
type refetchEst struct{ w int }

func (e *refetchEst) Name() string { return "sched.refetch" }
func (e *refetchEst) Weight() int  { return e.w }
func (e *refetchEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	for i := 0; i < e.w; i++ {
		data()
	}
	return core.IdentityOp()
}

// schedShape is one branchy DAG: a critical chain of chainLen nodes
// (chainSleep per record each) gathered with a fan of fanWidth branches
// (fanSleep per record each, joined by a sub-gather), feeding a weight-w
// estimator. Sizes are chosen so that, under the budget, the planner can
// pin either the chain end (what the makespan model wants: it is the
// per-pass critical path) or the fan's sub-gather (what the sequential
// model wants: it spares the most total work) — but not both.
type schedShape struct {
	name               string
	records            int
	chainLen, fanWidth int
	// chainNode and fanNode are per-node total latencies (split evenly
	// across records), so the profile times are exact by construction.
	chainNode, fanNode time.Duration
	weight             int
	workers            int
}

// build constructs the graph, its analytic profile (node times are known
// exactly: the configured per-node latencies) and the training
// collection.
func (s schedShape) build() (*core.Graph, *optimizer.Profile, *engine.Collection) {
	sleepOp := func(name string, total time.Duration) core.TransformOp {
		perRecord := total / time.Duration(s.records)
		return core.NewTransform(name, func(x any) any {
			time.Sleep(perRecord)
			return x
		})
	}
	g := core.NewGraph()
	times := map[int]float64{}
	chain := g.Source
	for i := 0; i < s.chainLen; i++ {
		chain = g.AddTransform(sleepOp(fmt.Sprintf("chain%d", i), s.chainNode), chain)
		times[chain.ID] = s.chainNode.Seconds()
	}
	fan := make([]*core.Node, s.fanWidth)
	for i := range fan {
		fan[i] = g.AddTransform(sleepOp(fmt.Sprintf("fan%d", i), s.fanNode), g.Source)
		times[fan[i].ID] = s.fanNode.Seconds()
	}
	subGather := g.AddGather(fan)
	main := g.AddGather([]*core.Node{chain, subGather})
	est := g.AddEstimator(&refetchEst{w: s.weight}, main, false)
	g.AddApplyModel(est, main)

	// Sizes: every single node fits the budget (50 units) on its own,
	// but the gathers downstream of the whole DAG are too large to pin —
	// the planner must choose which upstream work to spare.
	prof := &optimizer.Profile{Nodes: map[int]*optimizer.NodeProfile{}, FullN: s.records}
	for _, n := range g.Topological() {
		size := int64(50)
		if n.ID == main.ID || n.Kind == core.KindApplyModel {
			size = 1000
		}
		prof.Nodes[n.ID] = &optimizer.NodeProfile{
			Name: n.OpName(), Kind: n.Kind, Weight: n.Weight(),
			TimeSec: times[n.ID], SizeBytes: size,
		}
	}

	items := make([]any, s.records)
	for i := range items {
		items[i] = []float64{float64(i), float64(i) + 1}
	}
	return g, prof, engine.FromSlice(items, 1)
}

// pinNames renders a pin set as operator names.
func pinNames(prof *optimizer.Profile, set []int) string {
	if len(set) == 0 {
		return "(none)"
	}
	names := make([]string, len(set))
	for i, id := range set {
		names[i] = prof.Nodes[id].Name
	}
	sort.Strings(names)
	return fmt.Sprintf("%v", names)
}

// runPinSet executes the graph under the parallel scheduler with the
// given pin set and returns wall time. Speculative retention stays
// inactive (no schedule plan attached): the comparison isolates what the
// pin-set *choice* is worth, not the retention optimization.
func runPinSet(g *core.Graph, set []int, data *engine.Collection, workers int) time.Duration {
	var cache *engine.CacheManager
	if len(set) > 0 {
		cache = engine.NewCacheManager(0, engine.NewPinnedSetPolicy(optimizer.CacheKeys(set)))
	}
	ex := core.NewExecutor(g, engine.NewContext(workers), cache, data, nil).SetWorkers(workers)
	return timeIt(func() { ex.Run() })
}

// SchedulePlanExp compares the sequential-model pin set against the
// makespan-model pin set on branchy DAG shapes, under an equal memory
// budget, executed by the real parallel scheduler. Expected shape: the
// two models disagree (sequential pins the fan — most total work;
// makespan pins the chain end — the per-pass critical path) and the
// makespan-aware set is strictly faster in wall-clock at every shape.
func SchedulePlanExp(w io.Writer, scale Scale) {
	header(w, "Schedule plan: sequential-model vs makespan-model pin sets (branchy DAGs)")

	records := 2
	if scale == Full {
		records = 4
	}
	shapes := []schedShape{
		// Chain 2x25ms (critical path 50ms/pass) vs fan 6x10ms (60ms of
		// work that overlaps into ~20ms under 4 workers): the sequential
		// model pins the fan's sub-gather (spares 60ms of work/pass),
		// the makespan model pins the chain end (cuts the critical path).
		{
			name: "chain2-vs-fan6", records: records,
			chainLen: 2, fanWidth: 6,
			chainNode: 25 * time.Millisecond, fanNode: 10 * time.Millisecond,
			weight: 4, workers: 4,
		},
		// Deeper chain, wider fan, different refetch weight.
		{
			name: "chain3-vs-fan8", records: records,
			chainLen: 3, fanWidth: 8,
			chainNode: 15 * time.Millisecond, fanNode: 8 * time.Millisecond,
			weight: 3, workers: 4,
		},
	}
	const budget = 50 // exactly one 50-unit node

	type schedRow struct {
		Shape      string  `json:"shape"`
		SeqPins    string  `json:"sequential_pins"`
		MkPins     string  `json:"makespan_pins"`
		SeqEstSec  float64 `json:"sequential_est_sec"`
		MkEstSec   float64 `json:"makespan_est_sec"`
		SeqMeasSec float64 `json:"sequential_measured_sec"`
		MkMeasSec  float64 `json:"makespan_measured_sec"`
		Speedup    float64 `json:"speedup"`
	}
	var benchRows []schedRow

	fmt.Fprintf(w, "%-16s %-12s %-22s %10s %10s %8s\n",
		"shape", "model", "pin set", "est", "measured", "speedup")
	for _, s := range shapes {
		g, prof, data := s.build()
		seqSet := optimizer.GreedyCacheSet(g, prof, budget, 1)
		mkSet := optimizer.GreedyCacheSet(g, prof, budget, s.workers)

		cost := func(set []int) float64 {
			cached := map[int]bool{}
			for _, id := range set {
				cached[id] = true
			}
			return optimizer.EstCost(g, prof, cached, s.workers)
		}
		tSeq := runPinSet(g, seqSet, data, s.workers)
		// Rebuild: executors are single-use but graphs are not mutated;
		// a fresh build keeps the runs fully independent.
		g2, _, data2 := s.build()
		tMk := runPinSet(g2, mkSet, data2, s.workers)

		fmt.Fprintf(w, "%-16s %-12s %-22s %9.3fs %9.3fs %8s\n",
			s.name, "sequential", pinNames(prof, seqSet), cost(seqSet), tSeq.Seconds(), "")
		fmt.Fprintf(w, "%-16s %-12s %-22s %9.3fs %9.3fs %7.2fx\n",
			"", "makespan", pinNames(prof, mkSet), cost(mkSet), tMk.Seconds(),
			tSeq.Seconds()/tMk.Seconds())
		benchRows = append(benchRows, schedRow{
			Shape:   s.name,
			SeqPins: pinNames(prof, seqSet), MkPins: pinNames(prof, mkSet),
			SeqEstSec: cost(seqSet), MkEstSec: cost(mkSet),
			SeqMeasSec: tSeq.Seconds(), MkMeasSec: tMk.Seconds(),
			Speedup: tSeq.Seconds() / tMk.Seconds(),
		})
	}
	emitBench("sched", benchRows)
	fmt.Fprintf(w, "\n(equal budget per shape; 'est' is the makespan model's own estimate\nof each pin set at %d workers — the sequential model mis-ranks the sets\nit cannot distinguish by wall-clock)\n", shapes[0].workers)
}
