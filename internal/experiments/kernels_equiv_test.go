package experiments

import (
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
	"keystoneml/internal/optimizer"
)

// TestKernelBackendEquivalence is the kernel dispatch contract
// (ARCHITECTURE.md Contract 5) checked end to end: for every evaluation
// pipeline, fitting the same optimized plan under pinned reference
// kernels, pinned blocked kernels, and measured Auto dispatch must
// produce bit-identical training outputs and bit-identical fitted-model
// predictions. The blocked kernels preserve per-element accumulation
// order, so any float64 divergence at all is a kernel bug, not
// tolerance.
func TestKernelBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	oldMode := linalg.Mode()
	defer linalg.SetBackendMode(oldMode)
	// Install the measured crossover so Auto genuinely dispatches to the
	// blocked kernels on large shapes rather than degenerating to
	// reference everywhere.
	cluster.InstallKernelCrossover()

	for _, spec := range equivalenceSpecs() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			g := spec.build()
			cfg := optimizer.Config{
				Level:       optimizer.LevelPipeline, // deterministic planning
				Resources:   cluster.Local(4),
				NumClasses:  spec.numClasses,
				SampleSizes: [2]int{8, 16},
			}
			linalg.SetBackendMode(linalg.ModeReference)
			plan := optimizer.Optimize(g, spec.train.Data, spec.train.Labels, cfg)

			runWith := func(m linalg.BackendMode) (*engine.Collection, *engine.Collection) {
				linalg.SetBackendMode(m)
				defer linalg.SetBackendMode(linalg.ModeReference)
				models, out, _ := plan.Execute(spec.train.Data, spec.train.Labels, 4)
				fitted := core.NewFitted(plan.Graph, models, engine.NewContext(4))
				return out, fitted.Apply(spec.test.Data)
			}

			refOut, refPred := runWith(linalg.ModeReference)
			for _, m := range []linalg.BackendMode{linalg.ModeBlocked, linalg.ModeAuto} {
				out, pred := runWith(m)
				floatsEqual(t, spec.name+"/train-output", refOut, out)
				floatsEqual(t, spec.name+"/test-predictions", refPred, pred)
			}
		})
	}
}
