package experiments

import (
	"fmt"
	"io"
	"time"

	"keystoneml/internal/baselines"
	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/image"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

// workloadSpec bundles a buildable pipeline with its train/test data.
type workloadSpec struct {
	name       string
	build      func() *core.Graph
	train      workload.Labeled
	test       workload.Labeled
	numClasses int
}

// specs constructs the three Figure 9 pipelines at experiment scale.
func specs(scale Scale) []workloadSpec {
	nText, nSpeech, nVision := 400, 400, 36
	if scale == Full {
		nText, nSpeech, nVision = 1200, 1200, 80
	}
	textTrain := workload.AmazonReviews(nText, 1, 8)
	textTest := workload.AmazonReviews(nText/4, 2, 4)
	speechTrain := workload.DenseVectors(nSpeech, 40, 8, 3, 8)
	speechTest := workload.DenseVectors(nSpeech/4, 40, 8, 4, 4)
	visionTrain := workload.Images(nVision, 48, 1, 4, 5, 4)
	visionTest := workload.Images(nVision/2, 48, 1, 4, 6, 2)
	return []workloadSpec{
		{
			name: "Amazon",
			build: func() *core.Graph {
				return pipelines.Text(pipelines.TextConfig{NumFeatures: 2000, Iterations: 20}).Graph()
			},
			train: textTrain, test: textTest, numClasses: 2,
		},
		{
			name: "TIMIT",
			build: func() *core.Graph {
				return pipelines.Speech(pipelines.SpeechConfig{InputDim: 40, NumFeatures: 192, Seed: 7, Iterations: 20}).Graph()
			},
			train: speechTrain, test: speechTest, numClasses: 8,
		},
		{
			name: "VOC",
			build: func() *core.Graph {
				return pipelines.Vision(pipelines.VisionConfig{PCADims: 12, GMMComponents: 6, SampleDescs: 30, Seed: 9, Iterations: 20}).Graph()
			},
			train: visionTrain, test: visionTest, numClasses: 4,
		},
	}
}

// runPlan fits a pipeline under a given optimizer level and returns stage
// timings and the fitted pipeline.
func runPlan(spec workloadSpec, level optimizer.Level, parallelism int) (optTime, execTime time.Duration, fitted *core.Fitted) {
	g := spec.build()
	n := spec.train.Data.Count()
	cfg := optimizer.Config{
		Level:      level,
		Resources:  cluster.Local(8),
		NumClasses: spec.numClasses,
		// Proportional samples (the paper uses 512/1024 out of millions);
		// profiling must stay cheap relative to full execution.
		SampleSizes: [2]int{max(4, n/16), max(8, n/8)},
		Parallelism: parallelism,
	}
	plan := optimizer.Optimize(g, spec.train.Data, spec.train.Labels, cfg)
	optTime = plan.OptimizeTime
	start := time.Now()
	models, _, _ := plan.Execute(spec.train.Data, spec.train.Labels, parallelism)
	execTime = time.Since(start)
	fitted = core.NewFitted(g, models, engine.NewContext(parallelism))
	return optTime, execTime, fitted
}

// Figure9 compares optimization levels (None / Pipe Only / KeystoneML)
// end to end on the Amazon, TIMIT and VOC pipelines. Expected shape:
// whole-pipeline optimizations alone give a large speedup on pipelines
// dominated by re-featurization (Amazon), and operator selection adds
// more where the default solver is wrong (TIMIT, VOC).
func Figure9(w io.Writer, scale Scale) {
	header(w, "Figure 9: impact of optimization levels")
	fmt.Fprintf(w, "%-8s %-12s %12s %12s %12s %10s\n", "workload", "level", "optimize", "train", "total", "speedup")
	for _, spec := range specs(scale) {
		var baseline float64
		for _, level := range []optimizer.Level{optimizer.LevelNone, optimizer.LevelPipeline, optimizer.LevelFull} {
			optT, execT, _ := runPlan(spec, level, 0)
			total := optT + execT
			if level == optimizer.LevelNone {
				baseline = total.Seconds()
			}
			fmt.Fprintf(w, "%-8s %-12s %12s %12s %12s %9.1fx\n",
				spec.name, level, secs(optT), secs(execT), secs(total), baseline/total.Seconds())
		}
	}
}

// Table5 runs every pipeline at experiment scale with full optimization
// and reports train time and test quality (the Table 5 analogue; absolute
// accuracy is on synthetic data, so the check is "does the pipeline
// learn", not the paper's number).
func Table5(w io.Writer, scale Scale) {
	header(w, "Table 5: time and statistical quality per pipeline")
	fmt.Fprintf(w, "%-10s %12s %12s %10s\n", "workload", "train", "metric", "value")
	for _, spec := range specs(scale) {
		_, execT, fitted := runPlan(spec, optimizer.LevelFull, 0)
		scores := collectScores(fitted, spec.test.Data)
		acc := metrics.Accuracy(scores, spec.test.Truth)
		fmt.Fprintf(w, "%-10s %12s %12s %9.1f%%\n", spec.name, secs(execT), "accuracy", 100*acc)
	}
	// CIFAR-shaped convolutional pipeline.
	nCifar := 60
	if scale == Full {
		nCifar = 160
	}
	train := workload.Images(nCifar, 32, 3, 4, 21, 4)
	test := workload.Images(nCifar/2, 32, 3, 4, 22, 2)
	spec := workloadSpec{
		name: "CIFAR-10",
		build: func() *core.Graph {
			return pipelines.Cifar(pipelines.CifarConfig{NumFilters: 12, Seed: 23, Iterations: 20}).Graph()
		},
		train: train, test: test, numClasses: 4,
	}
	_, execT, fitted := runPlan(spec, optimizer.LevelFull, 0)
	scores := collectScores(fitted, test.Data)
	fmt.Fprintf(w, "%-10s %12s %12s %9.1f%%\n", spec.name, secs(execT), "accuracy",
		100*metrics.Accuracy(scores, test.Truth))
	// YouTube-shaped pre-featurized pipeline (Section 5.2's last workload).
	yt := workload.YouTube(300, 12, 31, 8)
	ytTest := workload.YouTube(100, 12, 32, 4)
	ytSpec := workloadSpec{
		name: "YouTube8m",
		build: func() *core.Graph {
			return pipelines.Speech(pipelines.SpeechConfig{InputDim: 1024, NumFeatures: 128, Seed: 33, Iterations: 15}).Graph()
		},
		train: yt, test: ytTest, numClasses: 12,
	}
	_, execT, fitted = runPlan(ytSpec, optimizer.LevelFull, 0)
	scores = collectScores(fitted, ytTest.Data)
	fmt.Fprintf(w, "%-10s %12s %12s %9.1f%%\n", ytSpec.name, secs(execT), "accuracy",
		100*metrics.Accuracy(scores, ytTest.Truth))
}

func collectScores(fitted *core.Fitted, data *engine.Collection) [][]float64 {
	out := fitted.Apply(data)
	recs := out.Collect()
	scores := make([][]float64, len(recs))
	for i, r := range recs {
		scores[i] = r.([]float64)
	}
	return scores
}

// Table3 prints the synthetic dataset inventory in the shape of the
// paper's Table 3.
func Table3(w io.Writer, scale Scale) {
	header(w, "Table 3: dataset characteristics (synthetic, scaled)")
	n := 400
	if scale == Full {
		n = 2000
	}
	fmt.Fprintln(w, workload.Describe("Amazon", workload.AmazonReviews(n, 1, 8)))
	fmt.Fprintln(w, workload.Describe("TIMIT", workload.DenseVectors(n, 440, 147, 2, 8)))
	fmt.Fprintln(w, workload.Describe("ImageNet", workload.Images(n/8, 64, 3, 10, 3, 8)))
	fmt.Fprintln(w, workload.Describe("VOC", workload.Images(n/8, 48, 3, 5, 4, 8)))
	fmt.Fprintln(w, workload.Describe("CIFAR-10", workload.Images(n/4, 32, 3, 10, 5, 8)))
	fmt.Fprintln(w, workload.Describe("Youtube8m", workload.YouTube(n/2, 48, 6, 8)))
}

// Table6 prints the CIFAR time-to-accuracy scaling comparison between the
// TensorFlow coordination model and the KeystoneML communication-avoiding
// model (analytic; calibrated to the paper's measured endpoints — see
// DESIGN.md substitutions).
func Table6(w io.Writer) {
	header(w, "Table 6: CIFAR-10 time (minutes) to 84% accuracy vs cluster size")
	tf := baselines.CIFARDefaults()
	ks := baselines.CIFARKeystoneDefaults()
	fmt.Fprintf(w, "%-20s", "machines")
	nodes := []int{1, 2, 4, 8, 16, 32}
	for _, n := range nodes {
		fmt.Fprintf(w, "%8d", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s", "TensorFlow (strong)")
	for _, n := range nodes {
		fmt.Fprintf(w, "%8.0f", tf.StrongScaleMinutes(n))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s", "TensorFlow (weak)")
	for _, n := range nodes {
		if m := tf.WeakScaleMinutes(n); m < 0 {
			fmt.Fprintf(w, "%8s", "xxx")
		} else {
			fmt.Fprintf(w, "%8.0f", m)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s", "KeystoneML")
	for _, n := range nodes {
		fmt.Fprintf(w, "%8.0f", ks.Minutes(n))
	}
	fmt.Fprintln(w)
}

// Figure12 prints the stage-level scaling breakdown for the Amazon, TIMIT
// and ImageNet pipelines from 8 to 128 nodes (analytic model calibrated
// to Figure 12's shape: ImageNet near-linear, Amazon/TIMIT flattening
// past 64 nodes from aggregation-tree and solver coordination).
func Figure12(w io.Writer) {
	header(w, "Figure 12: scaling 8-128 nodes, stage breakdown (minutes)")
	for _, name := range []string{"Amazon", "TIMIT", "ImageNet"} {
		fmt.Fprintf(w, "-- %s --\n", name)
		fmt.Fprintf(w, "%6s %10s %10s %10s %10s %10s %10s %8s\n",
			"nodes", "loadTrain", "featurize", "solve", "loadTest", "eval", "total", "ideal")
		base := 0.0
		for _, n := range []int{8, 16, 32, 64, 128} {
			s := baselines.FigureTwelveModel(name, cluster.R3_4XLarge(n))
			if n == 8 {
				base = s.Total()
			}
			ideal := base * 8 / float64(n)
			fmt.Fprintf(w, "%6d %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %8.1f\n",
				n, s.LoadTrain, s.Featurize, s.Solve, s.LoadTest, s.Eval, s.Total(), ideal)
		}
	}
}

// imageDatasetForCaching builds the VOC-like training set used by the
// caching experiments.
func imageDatasetForCaching(scale Scale) workload.Labeled {
	n := 50
	if scale == Full {
		n = 96
	}
	return workload.Images(n, 96, 3, 4, 40, 4)
}

var _ = image.New // keep the image import for the build tags above
