// Package experiments implements the reproduction harness: one function
// per table/figure of the paper's evaluation section. Each function runs
// a scaled-down version of the experiment on synthetic workloads and
// prints rows shaped like the paper's, so the qualitative claims (who
// wins, by roughly what factor, where the crossovers fall) can be checked
// directly. cmd/keybench dispatches to these, and bench_test.go wraps
// them as Go benchmarks.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// Scale selects experiment sizes. Quick keeps every experiment under a
// few seconds (used by benchmarks and CI); Full uses larger sizes for
// sharper ratios.
type Scale int

const (
	// Quick is the CI-friendly scale.
	Quick Scale = iota
	// Full is the report-quality scale.
	Full
)

// benchDir, when set, makes experiments additionally write their
// headline numbers as BENCH_<name>.json files there (keybench -benchout),
// so CI and regression tooling can consume measurements without parsing
// the human-readable tables.
var benchDir string

// SetBenchDir selects where BENCH_*.json files are written ("" disables
// emission, the default).
func SetBenchDir(dir string) { benchDir = dir }

// emitBench writes one experiment's machine-readable result. Emission is
// best-effort: a failure warns on stderr but never fails the experiment.
func emitBench(name string, payload any) {
	if benchDir == "" {
		return
	}
	if err := os.MkdirAll(benchDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "bench emit %s: %v\n", name, err)
		return
	}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench emit %s: %v\n", name, err)
		return
	}
	path := filepath.Join(benchDir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench emit %s: %v\n", name, err)
	}
}

// timeIt measures fn's wall time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// fetchOf adapts a fixed collection to a core.Fetch.
func fetchOf(c *engine.Collection) core.Fetch {
	return func() *engine.Collection { return c }
}

// header prints a section header.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// secs formats a duration in seconds with 3 decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%8.3fs", d.Seconds()) }
