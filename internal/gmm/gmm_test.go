package gmm

import (
	"math"
	"testing"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// blobs generates n points from k well-separated Gaussian clusters,
// returning the data and each point's cluster.
func blobs(seed uint64, n, d, k int) (*engine.Collection, []int) {
	rng := linalg.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = float64(c*10) + rng.Gaussian()
		}
	}
	items := make([]any, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		x := make([]float64, d)
		for j := range x {
			x[j] = centers[c][j] + 0.3*rng.Gaussian()
		}
		items[i] = x
	}
	return engine.FromSlice(items, 4), truth
}

func fetchOf(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }

func TestGMMSeparatesClusters(t *testing.T) {
	data, truth := blobs(1, 300, 4, 3)
	g := &GMM{K: 3, Iters: 15, Seed: 9}
	model := g.Fit(engine.NewContext(4), fetchOf(data), nil).(*PosteriorTransform)

	// Every point should be confidently assigned; points in the same true
	// cluster should share an argmax component.
	assign := make([]int, data.Count())
	for i, it := range data.Collect() {
		post := model.Apply(it).([]float64)
		var sum float64
		for _, p := range post {
			if p < -1e-12 {
				t.Fatal("negative posterior")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posteriors sum to %g", sum)
		}
		assign[i] = linalg.ArgMax(post)
	}
	// Purity: majority component per true cluster covers >90%.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		total := 0
		for i, a := range assign {
			if truth[i] == c {
				counts[a]++
				total++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if float64(best)/float64(total) < 0.9 {
			t.Errorf("cluster %d purity %.2f < 0.9", c, float64(best)/float64(total))
		}
	}
}

func TestGMMWeightsSumToOne(t *testing.T) {
	data, _ := blobs(2, 120, 3, 2)
	g := &GMM{K: 2, Iters: 8, Seed: 3}
	model := g.Fit(engine.NewContext(2), fetchOf(data), nil).(*PosteriorTransform).Model
	var sum float64
	for _, w := range model.Weights {
		if w <= 0 {
			t.Errorf("non-positive weight %g", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
	for i := 0; i < model.K(); i++ {
		for j := 0; j < model.Dim(); j++ {
			if model.Vars.At(i, j) < 1e-6 {
				t.Error("variance fell below the floor")
			}
		}
	}
}

func TestGMMIsIterative(t *testing.T) {
	var est core.EstimatorOp = &GMM{K: 4, Iters: 7}
	it, ok := est.(core.Iterative)
	if !ok {
		t.Fatal("GMM must be Iterative")
	}
	if it.Weight() != 7 {
		t.Errorf("Weight = %d, want 7", it.Weight())
	}
}

func TestGMMFetchesOncePerIteration(t *testing.T) {
	data, _ := blobs(3, 60, 2, 2)
	fetches := 0
	fetch := func() *engine.Collection { fetches++; return data }
	(&GMM{K: 2, Iters: 5, Seed: 1}).Fit(engine.NewContext(2), fetch, nil)
	// 1 probe fetch + 5 EM passes.
	if fetches != 6 {
		t.Errorf("fetches = %d, want 6", fetches)
	}
}

func TestGMMClampsKToN(t *testing.T) {
	data, _ := blobs(4, 3, 2, 1)
	model := (&GMM{K: 10, Iters: 2, Seed: 1}).Fit(engine.NewContext(1), fetchOf(data), nil).(*PosteriorTransform).Model
	if model.K() != 3 {
		t.Errorf("K = %d, want clamped to 3", model.K())
	}
}
