// Package gmm implements a diagonal-covariance Gaussian mixture model
// fitted with expectation-maximization, the estimator behind the Fisher
// vector encoding used by the paper's image classification pipelines
// (Table 4: ImageNet and VOC).
package gmm

import (
	"fmt"
	"math"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// Model is a fitted diagonal-covariance Gaussian mixture with K
// components over d-dimensional descriptors.
type Model struct {
	Weights []float64      // K mixing weights, sum to 1
	Means   *linalg.Matrix // K x d
	Vars    *linalg.Matrix // K x d diagonal covariances
}

// K returns the component count.
func (m *Model) K() int { return len(m.Weights) }

// Dim returns the descriptor dimensionality.
func (m *Model) Dim() int { return m.Means.Cols }

// Posteriors computes the responsibilities gamma_k(x) for one descriptor.
func (m *Model) Posteriors(x []float64) []float64 {
	k := m.K()
	logp := make([]float64, k)
	maxLog := math.Inf(-1)
	for c := 0; c < k; c++ {
		lp := math.Log(m.Weights[c] + 1e-300)
		mu := m.Means.Row(c)
		va := m.Vars.Row(c)
		for j, xj := range x {
			d := xj - mu[j]
			lp -= 0.5 * (d*d/va[j] + math.Log(2*math.Pi*va[j]))
		}
		logp[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	var z float64
	for c := range logp {
		logp[c] = math.Exp(logp[c] - maxLog)
		z += logp[c]
	}
	for c := range logp {
		logp[c] /= z
	}
	return logp
}

// GMM is the EM estimator producing a *Model wrapped in a transformer
// that annotates nothing by itself; pipelines use the model through the
// fisher package. As a TransformOp the fitted result maps a descriptor to
// its posterior vector (soft cluster assignment).
type GMM struct {
	K     int
	Iters int // EM iterations; default 10
	Seed  uint64
}

// Name implements core.EstimatorOp.
func (g *GMM) Name() string { return "gmm.em" }

// Weight implements core.Iterative: one pass over the descriptors per EM
// iteration.
func (g *GMM) Weight() int { return g.iters() }

func (g *GMM) iters() int {
	if g.Iters > 0 {
		return g.Iters
	}
	return 10
}

// Fit implements core.EstimatorOp. Records must be []float64 descriptors.
func (g *GMM) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	first := data()
	n := first.Count()
	if n == 0 {
		panic("gmm: empty input")
	}
	d := len(first.Take(1)[0].([]float64))
	k := g.K
	if k <= 0 {
		k = 16
	}
	if k > n {
		k = n
	}
	model := initModel(first, k, d, g.Seed)

	for it := 0; it < g.iters(); it++ {
		c := data() // one EM pass = one fetch
		type suff struct {
			w  []float64
			mu *linalg.Matrix
			s2 *linalg.Matrix
		}
		res := ctx.Aggregate(c,
			func() any {
				return &suff{w: make([]float64, k), mu: linalg.NewMatrix(k, d), s2: linalg.NewMatrix(k, d)}
			},
			func(acc, item any) any {
				s := acc.(*suff)
				x := item.([]float64)
				gam := model.Posteriors(x)
				for ci, gc := range gam {
					if gc < 1e-12 {
						continue
					}
					s.w[ci] += gc
					muRow := s.mu.Row(ci)
					s2Row := s.s2.Row(ci)
					for j, xj := range x {
						muRow[j] += gc * xj
						s2Row[j] += gc * xj * xj
					}
				}
				return s
			},
			func(a, b any) any {
				x, y := a.(*suff), b.(*suff)
				linalg.AxpyInPlace(1, y.w, x.w)
				x.mu.Add(y.mu)
				x.s2.Add(y.s2)
				return x
			},
		).(*suff)
		// M step.
		next := &Model{Weights: make([]float64, k), Means: linalg.NewMatrix(k, d), Vars: linalg.NewMatrix(k, d)}
		for ci := 0; ci < k; ci++ {
			nk := res.w[ci]
			if nk < 1e-10 {
				// Dead component: keep previous parameters.
				next.Weights[ci] = model.Weights[ci]
				next.Means.SetRow(ci, model.Means.Row(ci))
				next.Vars.SetRow(ci, model.Vars.Row(ci))
				continue
			}
			next.Weights[ci] = nk / float64(n)
			for j := 0; j < d; j++ {
				mu := res.mu.At(ci, j) / nk
				v := res.s2.At(ci, j)/nk - mu*mu
				if v < 1e-6 {
					v = 1e-6 // variance floor
				}
				next.Means.Set(ci, j, mu)
				next.Vars.Set(ci, j, v)
			}
		}
		model = next
	}
	return &PosteriorTransform{Model: model}
}

// initModel seeds means with k-means++-style selection (each next center
// drawn proportional to squared distance from the chosen set), which
// spreads initial components across the data's modes, plus unit variances.
func initModel(c *engine.Collection, k, d int, seed uint64) *Model {
	rng := linalg.NewRNG(seed + 4242)
	items := c.Collect()
	n := len(items)
	m := &Model{Weights: make([]float64, k), Means: linalg.NewMatrix(k, d), Vars: linalg.NewMatrix(k, d)}
	chosen := make([][]float64, 0, k)
	chosen = append(chosen, items[rng.Intn(n)].([]float64))
	dist := make([]float64, n)
	for len(chosen) < k {
		var total float64
		last := chosen[len(chosen)-1]
		for i, it := range items {
			x := it.([]float64)
			var d2 float64
			for j, xj := range x {
				diff := xj - last[j]
				d2 += diff * diff
			}
			if len(chosen) == 1 || d2 < dist[i] {
				dist[i] = d2
			}
			total += dist[i]
		}
		if total <= 0 {
			chosen = append(chosen, items[rng.Intn(n)].([]float64))
			continue
		}
		target := rng.Float64() * total
		pick := n - 1
		var acc float64
		for i, d2 := range dist {
			acc += d2
			if acc >= target {
				pick = i
				break
			}
		}
		chosen = append(chosen, items[pick].([]float64))
	}
	for ci := 0; ci < k; ci++ {
		m.Weights[ci] = 1 / float64(k)
		m.Means.SetRow(ci, chosen[ci])
		for j := 0; j < d; j++ {
			m.Vars.Set(ci, j, 1)
		}
	}
	return m
}

// PosteriorTransform is the fitted GMM as a transformer: descriptor ->
// posterior responsibility vector. It also carries the full model for
// consumers (Fisher vector encoding) that need means and variances.
type PosteriorTransform struct {
	Model *Model
}

// Name implements core.TransformOp.
func (p *PosteriorTransform) Name() string { return "model.gmm" }

// Apply implements core.TransformOp.
func (p *PosteriorTransform) Apply(in any) any {
	x, ok := in.([]float64)
	if !ok {
		panic(fmt.Sprintf("gmm: cannot score %T", in))
	}
	return p.Model.Posteriors(x)
}
