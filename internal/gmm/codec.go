package gmm

import (
	"bytes"
	"encoding/gob"

	"keystoneml/internal/core"
	"keystoneml/internal/linalg"
)

// modelState is the gob payload for a fitted mixture model, shared by
// PosteriorTransform's codec and the fisher encoder's.
type modelState struct {
	Weights []float64
	Means   *linalg.Matrix
	Vars    *linalg.Matrix
}

// EncodeModel serializes a fitted mixture model for embedding in operator
// state payloads.
func EncodeModel(m *Model) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelState{Weights: m.Weights, Means: m.Means, Vars: m.Vars})
	return buf.Bytes(), err
}

// DecodeModel reverses EncodeModel.
func DecodeModel(state []byte) (*Model, error) {
	var s modelState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
		return nil, err
	}
	return &Model{Weights: s.Weights, Means: s.Means, Vars: s.Vars}, nil
}

// StateKind implements core.StateCodec.
func (p *PosteriorTransform) StateKind() string { return "model.gmm" }

// EncodeState implements core.StateCodec.
func (p *PosteriorTransform) EncodeState() ([]byte, error) { return EncodeModel(p.Model) }

func init() {
	core.RegisterStateDecoder("model.gmm", func(state []byte) (core.TransformOp, error) {
		m, err := DecodeModel(state)
		if err != nil {
			return nil, err
		}
		return &PosteriorTransform{Model: m}, nil
	})
}
