// Package pipelines assembles the five end-to-end applications of the
// paper's evaluation (Table 4) from the operator library, scaled to run on
// synthetic workloads:
//
//	Amazon   — Trim → LowerCase → Tokenize → NGrams(1,2) → TermFrequency →
//	           CommonSparseFeatures → LinearSolver (text classification)
//	TIMIT    — RandomFeatures (cosine kernel approx) → LinearSolver
//	VOC      — Grayscale → SIFT → sample → PCA → GMM → FisherVector →
//	           Normalize → LinearSolver (Figure 5's DAG)
//	ImageNet — same skeleton as VOC at larger scale with LCS color branch
//	CIFAR-10 — PatchExtractor → ZCAWhitener → Convolver →
//	           SymmetricRectifier → Pooler → LinearSolver
//
// Each builder returns the typed pipeline plus the configuration used, so
// the experiment harness can rebuild identical pipelines under different
// optimizer levels.
package pipelines

import (
	"keystoneml/internal/conv"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/fisher"
	"keystoneml/internal/gmm"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
	"keystoneml/internal/pca"
	"keystoneml/internal/solvers"
	"keystoneml/internal/speech"
	"keystoneml/internal/text"
)

// TextConfig parameterizes the Amazon pipeline.
type TextConfig struct {
	NumFeatures int // vocabulary size (paper: 100k)
	Iterations  int // solver pass budget
}

// Text builds the Figure 2 text classification pipeline.
func Text(cfg TextConfig) *core.Pipeline[string, []float64] {
	if cfg.NumFeatures <= 0 {
		cfg.NumFeatures = 10000
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	p := core.Input[string]()
	p1 := core.AndThen(p, text.Trim())
	p2 := core.AndThen(p1, text.LowerCase())
	p3 := core.AndThen(p2, text.Tokenizer())
	p4 := core.AndThen(p3, text.NGrams(1, 2))
	p5 := core.AndThen(p4, text.TermFrequency(text.Binary))
	p6 := core.AndThenEstimator(p5, text.NewCommonSparseFeaturesEst(cfg.NumFeatures))
	return core.AndThenLabeledEstimator(p6,
		core.NewLabeledEst[any, []float64](&solvers.LogisticRegression{Iterations: cfg.Iterations}))
}

// SpeechConfig parameterizes the TIMIT pipeline.
type SpeechConfig struct {
	InputDim    int // raw feature dim (paper: 440)
	NumFeatures int // random cosine features (paper: 528k)
	Gamma       float64
	Seed        uint64
	Iterations  int
	MemLimit    float64 // exact-solver feasibility bound
}

// Speech builds the TIMIT kernel-SVM pipeline: random cosine features
// followed by the optimizable linear solver. The paper gathers multiple
// random feature blocks; we reproduce that with two gathered blocks.
func Speech(cfg SpeechConfig) *core.Pipeline[[]float64, []float64] {
	if cfg.NumFeatures <= 0 {
		cfg.NumFeatures = 512
	}
	if cfg.Gamma <= 0 {
		// RBF bandwidth scaled so gamma*E||x-y||^2 is O(1) for unit-variance
		// inputs of this dimensionality.
		cfg.Gamma = 1.0 / (16.0 * float64(cfg.InputDim))
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 30
	}
	p := core.Input[[]float64]()
	half := cfg.NumFeatures / 2
	b1 := core.AndThen(p, speech.NewRandomFeaturesOp(cfg.InputDim, half, cfg.Gamma, cfg.Seed+1))
	b2 := core.AndThen(p, speech.NewRandomFeaturesOp(cfg.InputDim, cfg.NumFeatures-half, cfg.Gamma, cfg.Seed+2))
	gathered := core.Gather(b1, b2)
	return core.AndThenLabeledEstimator(gathered,
		solvers.NewLinearSolverEst(cfg.Iterations, 1e-4, cfg.MemLimit))
}

// VisionConfig parameterizes the VOC / ImageNet Fisher vector pipelines.
type VisionConfig struct {
	PCADims       int // descriptor dims after PCA (paper: 64/80)
	GMMComponents int // Fisher vocabulary size (paper: 16/256)
	SampleDescs   int // descriptors sampled per image for PCA/GMM fitting
	Seed          uint64
	Iterations    int
	WithLCS       bool // add the color-statistics branch (ImageNet)
}

// Vision builds the Figure 5 image classification DAG: SIFT descriptors,
// column-sampled PCA, GMM, Fisher vector encoding, normalization, linear
// solver. With WithLCS a second descriptor branch is gathered in, as in
// the ImageNet pipeline.
func Vision(cfg VisionConfig) *core.Pipeline[*image.Image, []float64] {
	if cfg.PCADims <= 0 {
		cfg.PCADims = 16
	}
	if cfg.GMMComponents <= 0 {
		cfg.GMMComponents = 8
	}
	if cfg.SampleDescs <= 0 {
		cfg.SampleDescs = 40
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	p := core.Input[*image.Image]()
	gray := core.AndThen(p, image.GrayscaleOp())
	sift := core.AndThen(gray, image.NewSIFTOp(image.SIFTParams{}))
	branch := fisherBranch(sift, cfg, cfg.Seed)
	out := branch
	if cfg.WithLCS {
		lcs := core.AndThen(p, image.NewLCSOp(6, 8))
		colorBranch := fisherBranch(lcs, cfg, cfg.Seed+100)
		out = core.Gather(branch, colorBranch)
	}
	return core.AndThenLabeledEstimator(out,
		solvers.NewLinearSolverEst(cfg.Iterations, 1e-4, 0))
}

// fisherBranch is the shared descriptor -> PCA -> GMM -> FV -> normalize
// sub-DAG of Figure 5.
func fisherBranch(descs *core.Pipeline[*image.Image, [][]float64], cfg VisionConfig, seed uint64) *core.Pipeline[*image.Image, []float64] {
	sampled := core.AndThen(descs, image.NewColumnSamplerOp(cfg.SampleDescs, seed))
	reduced := core.AndThenEstimator(sampled, core.NewEst[[][]float64, [][]float64](
		&image.DescriptorPCAEst{Fitter: &pca.PCA{K: cfg.PCADims, Seed: seed}}))
	encoded := core.AndThenEstimator(reduced, core.NewEst[[][]float64, []float64](
		&fisherEst{k: cfg.GMMComponents, seed: seed}))
	return core.AndThen(encoded, normalizeOp())
}

// fisherEst fits a GMM on pooled descriptors and produces the Fisher
// vector encoder.
type fisherEst struct {
	k    int
	seed uint64
}

// Name implements core.EstimatorOp.
func (f *fisherEst) Name() string { return "fisher.est" }

// Weight implements core.Iterative (EM passes over the descriptors).
func (f *fisherEst) Weight() int { return 10 }

// Fit implements core.EstimatorOp.
func (f *fisherEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	flatten := func() *engine.Collection {
		c := data()
		var items []any
		for _, rec := range c.Collect() {
			for _, d := range rec.([][]float64) {
				items = append(items, d)
			}
		}
		return engine.FromSlice(items, c.NumPartitions())
	}
	post := (&gmm.GMM{K: f.k, Iters: 10, Seed: f.seed}).Fit(ctx, flatten, nil).(*gmm.PosteriorTransform)
	return fisher.NewEncoder(post.Model)
}

func normalizeOp() core.Op[[]float64, []float64] {
	return core.FuncOp("features.normalize", func(x []float64) []float64 {
		out := linalg.CloneVec(x)
		linalg.Normalize(out)
		return out
	})
}

// CifarConfig parameterizes the CIFAR-10 convolutional pipeline.
type CifarConfig struct {
	PatchSize  int // convolution filter size (paper: 6)
	NumFilters int // filter bank size (paper: 1024+; scaled)
	PoolSize   int
	Alpha      float64 // rectifier threshold
	Seed       uint64
	Iterations int
}

// Cifar builds the CIFAR-10 pipeline: ZCA-whitened patch filters are
// learned, convolved over the image, rectified two-sided, pooled and fed
// to the linear solver — the Coates & Ng featurization of Table 4.
func Cifar(cfg CifarConfig) *core.Pipeline[*image.Image, []float64] {
	if cfg.PatchSize <= 0 {
		cfg.PatchSize = 5
	}
	if cfg.NumFilters <= 0 {
		cfg.NumFilters = 16
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 7
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.25
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	p := core.Input[*image.Image]()
	conv := core.AndThenEstimator(p, core.NewEst[*image.Image, *image.Image](&convEst{cfg: cfg}))
	pooled := core.AndThen(conv, image.NewPoolerOp(cfg.PoolSize))
	vec := core.AndThen(pooled, image.ImageToVector())
	rect := core.AndThen(vec, image.SymmetricRectifier(cfg.Alpha))
	return core.AndThenLabeledEstimator(rect,
		solvers.NewLinearSolverEst(cfg.Iterations, 1e-4, 0))
}

// convEst learns a whitened patch filter bank (KMeans-free variant: ZCA
// whitening of sampled patches, filters = whitened random patches) and
// produces a convolution transformer over it.
type convEst struct {
	cfg CifarConfig
}

// Name implements core.EstimatorOp.
func (c *convEst) Name() string { return "cifar.convfilters" }

// Fit implements core.EstimatorOp.
func (c *convEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	coll := data()
	rng := linalg.NewRNG(c.cfg.Seed + 55)
	ps := c.cfg.PatchSize
	extractor := &image.PatchExtractor{PatchSize: ps, Stride: ps}
	var patches []any
	for _, rec := range coll.Collect() {
		for _, patch := range extractor.Apply(rec).([][]float64) {
			patches = append(patches, patch)
		}
	}
	patchColl := engine.FromSlice(patches, coll.NumPartitions())
	zca := (&image.ZCAWhitener{Epsilon: 0.1}).Fit(ctx, func() *engine.Collection { return patchColl }, nil)
	// Filters: whitened random patches, normalized.
	channels := firstImageChannels(coll)
	bank := conv.NewFilterBank(ps, channels, c.cfg.NumFilters)
	for f := 0; f < c.cfg.NumFilters; f++ {
		patch := patches[rng.Intn(len(patches))].([]float64)
		white := zca.Apply(patch).([]float64)
		linalg.Normalize(white)
		copy(bank.Weights[f], white)
	}
	return &conv.Convolver{Bank: bank}
}

func firstImageChannels(c *engine.Collection) int {
	return c.Take(1)[0].(*image.Image).Channels
}
