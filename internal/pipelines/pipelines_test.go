package pipelines

import (
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/workload"
)

// trainEval fits a pipeline at the given optimizer level and returns test
// accuracy.
func trainEval(t *testing.T, g *core.Graph, train, test workload.Labeled, level optimizer.Level) float64 {
	t.Helper()
	plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
		Level:       level,
		Resources:   cluster.Local(4),
		NumClasses:  train.Classes,
		SampleSizes: [2]int{16, 32},
	})
	models, _, _ := plan.Execute(train.Data, train.Labels, 0)
	fitted := core.NewFitted(g, models, engine.NewContext(0))
	out := fitted.Apply(test.Data).Collect()
	scores := make([][]float64, len(out))
	for i, r := range out {
		scores[i] = r.([]float64)
	}
	return metrics.Accuracy(scores, test.Truth)
}

func TestTextPipelineLearns(t *testing.T) {
	train := workload.AmazonReviews(400, 1, 4)
	test := workload.AmazonReviews(100, 2, 2)
	g := Text(TextConfig{NumFeatures: 1500, Iterations: 20}).Graph()
	if acc := trainEval(t, g, train, test, optimizer.LevelFull); acc < 0.85 {
		t.Errorf("text accuracy %.2f < 0.85", acc)
	}
}

func TestSpeechPipelineLearns(t *testing.T) {
	train := workload.DenseVectors(400, 40, 8, 3, 4)
	test := workload.DenseVectors(100, 40, 8, 4, 2)
	g := Speech(SpeechConfig{InputDim: 40, NumFeatures: 192, Seed: 7, Iterations: 20}).Graph()
	if acc := trainEval(t, g, train, test, optimizer.LevelFull); acc < 0.8 {
		t.Errorf("speech accuracy %.2f < 0.8 (chance 0.125)", acc)
	}
}

func TestVisionPipelineLearns(t *testing.T) {
	train := workload.Images(40, 48, 1, 4, 5, 4)
	test := workload.Images(24, 48, 1, 4, 6, 2)
	g := Vision(VisionConfig{PCADims: 12, GMMComponents: 6, SampleDescs: 30, Seed: 9, Iterations: 20}).Graph()
	if acc := trainEval(t, g, train, test, optimizer.LevelFull); acc < 0.45 {
		t.Errorf("vision accuracy %.2f < 0.45 (chance 0.25)", acc)
	}
}

func TestCifarPipelineLearns(t *testing.T) {
	train := workload.Images(48, 32, 3, 4, 21, 4)
	test := workload.Images(24, 32, 3, 4, 22, 2)
	g := Cifar(CifarConfig{NumFilters: 12, Seed: 23, Iterations: 20}).Graph()
	if acc := trainEval(t, g, train, test, optimizer.LevelFull); acc < 0.5 {
		t.Errorf("cifar accuracy %.2f < 0.5 (chance 0.25)", acc)
	}
}

func TestOptimizationLevelsPreserveSemantics(t *testing.T) {
	// The same pipeline under None/Pipeline/Full must predict the same
	// labels for the same data (Full may change solvers, so compare
	// argmax agreement, which must be near-total on separable data).
	train := workload.DenseVectors(300, 20, 4, 3, 4)
	test := workload.DenseVectors(80, 20, 4, 4, 2)
	var preds [][]int
	for _, level := range []optimizer.Level{optimizer.LevelNone, optimizer.LevelPipeline, optimizer.LevelFull} {
		g := Speech(SpeechConfig{InputDim: 20, NumFeatures: 128, Seed: 5, Iterations: 25}).Graph()
		plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
			Level: level, Resources: cluster.Local(4), NumClasses: 4, SampleSizes: [2]int{16, 32},
		})
		models, _, _ := plan.Execute(train.Data, train.Labels, 0)
		fitted := core.NewFitted(g, models, engine.NewContext(0))
		out := fitted.Apply(test.Data).Collect()
		scores := make([][]float64, len(out))
		for i, r := range out {
			scores[i] = r.([]float64)
		}
		preds = append(preds, metrics.ArgmaxAll(scores))
	}
	// None vs Pipeline must agree exactly (same operators, caching is
	// semantically invisible).
	for i := range preds[0] {
		if preds[0][i] != preds[1][i] {
			t.Fatalf("pipe-only changed prediction %d: %d vs %d", i, preds[0][i], preds[1][i])
		}
	}
	// Full may swap solvers; require >= 90% agreement.
	agree := 0
	for i := range preds[0] {
		if preds[0][i] == preds[2][i] {
			agree++
		}
	}
	if float64(agree)/float64(len(preds[0])) < 0.9 {
		t.Errorf("operator selection changed %d/%d predictions", len(preds[0])-agree, len(preds[0]))
	}
}

func TestVisionWithLCSHasGather(t *testing.T) {
	g := Vision(VisionConfig{WithLCS: true}).Graph()
	found := false
	for _, n := range g.Topological() {
		if n.Kind == core.KindGather {
			found = true
		}
	}
	if !found {
		t.Error("WithLCS pipeline has no gather node")
	}
}

func TestPipelineDefaultsApplied(t *testing.T) {
	// Zero-valued configs must produce runnable pipelines.
	if Text(TextConfig{}) == nil || Speech(SpeechConfig{InputDim: 8}) == nil ||
		Vision(VisionConfig{}) == nil || Cifar(CifarConfig{}) == nil {
		t.Fatal("builders returned nil")
	}
}
