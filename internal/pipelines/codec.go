package pipelines

import "keystoneml/internal/core"

func init() {
	// The evaluation pipelines' only private operator is the final
	// feature normalizer, stateless and reconstructible by name.
	core.RegisterFuncResolver(func(name string) (core.TransformOp, bool) {
		if name == "features.normalize" {
			return normalizeOp().Raw(), true
		}
		return nil, false
	})
}
