package workload

import (
	"strings"
	"testing"

	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
)

func TestAmazonReviewsShape(t *testing.T) {
	l := AmazonReviews(100, 1, 4)
	if l.Data.Count() != 100 || l.Labels.Count() != 100 || len(l.Truth) != 100 {
		t.Fatal("wrong counts")
	}
	if l.Classes != 2 {
		t.Errorf("classes = %d", l.Classes)
	}
	for i, r := range l.Data.Collect() {
		doc, ok := r.(string)
		if !ok || len(doc) == 0 {
			t.Fatalf("record %d: %T %q", i, r, r)
		}
		words := strings.Fields(doc)
		if len(words) < 10 || len(words) > 60 {
			t.Fatalf("doc length %d out of range", len(words))
		}
	}
	// One-hot labels aligned with truth.
	for i, r := range l.Labels.Collect() {
		y := r.([]float64)
		if y[l.Truth[i]] != 1 {
			t.Fatal("label not one-hot at truth index")
		}
	}
}

func TestAmazonSentimentCorrelation(t *testing.T) {
	l := AmazonReviews(400, 7, 4)
	posHits, negHits := 0, 0
	for i, r := range l.Data.Collect() {
		doc := r.(string)
		hasPos := strings.Contains(doc, "excellent") || strings.Contains(doc, "great") || strings.Contains(doc, "love")
		hasNeg := strings.Contains(doc, "terrible") || strings.Contains(doc, "awful") || strings.Contains(doc, "broke")
		if l.Truth[i] == 1 && hasPos {
			posHits++
		}
		if l.Truth[i] == 0 && hasNeg {
			negHits++
		}
	}
	if posHits < 50 || negHits < 50 {
		t.Errorf("sentiment words barely correlate: pos=%d neg=%d", posHits, negHits)
	}
}

func TestDenseVectorsSharedCenters(t *testing.T) {
	// Different seeds must share class structure (the train/test contract).
	a := DenseVectors(50, 10, 3, 1, 2)
	b := DenseVectors(50, 10, 3, 2, 2)
	// Class means of the same class across draws should be close.
	meanOf := func(l Labeled, cls int) []float64 {
		m := make([]float64, 10)
		n := 0
		for i, r := range l.Data.Collect() {
			if l.Truth[i] == cls {
				linalg.AxpyInPlace(1, r.([]float64), m)
				n++
			}
		}
		linalg.ScaleInPlace(1/float64(max(n, 1)), m)
		return m
	}
	for cls := 0; cls < 3; cls++ {
		ma, mb := meanOf(a, cls), meanOf(b, cls)
		diff := 0.0
		for i := range ma {
			d := ma[i] - mb[i]
			diff += d * d
		}
		if diff > 10 {
			t.Errorf("class %d centers differ across seeds: %g", cls, diff)
		}
	}
}

func TestSparseVectorsShape(t *testing.T) {
	l := SparseVectors(80, 1000, 8, 2, 3, 4)
	for _, r := range l.Data.Collect() {
		sv := r.(*linalg.SparseVector)
		if sv.Dim != 1000 || sv.NNZ() != 8 {
			t.Fatalf("sparse record dim=%d nnz=%d", sv.Dim, sv.NNZ())
		}
	}
}

func TestImagesClassStructure(t *testing.T) {
	l := Images(20, 32, 3, 4, 5, 2)
	for _, r := range l.Data.Collect() {
		im := r.(*image.Image)
		if im.Width != 32 || im.Height != 32 || im.Channels != 3 {
			t.Fatalf("image shape %v", im)
		}
	}
	// Determinism.
	l2 := Images(20, 32, 3, 4, 5, 2)
	a := l.Data.Collect()[0].(*image.Image)
	b := l2.Data.Collect()[0].(*image.Image)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("image generation not deterministic")
		}
	}
}

func TestYouTubeShape(t *testing.T) {
	l := YouTube(30, 6, 1, 2)
	if d := len(l.Data.Collect()[0].([]float64)); d != 1024 {
		t.Errorf("youtube dim = %d, want 1024", d)
	}
	if l.Classes != 6 {
		t.Errorf("classes = %d", l.Classes)
	}
}

func TestDescribe(t *testing.T) {
	s := Describe("Amazon", AmazonReviews(10, 1, 2))
	if !strings.Contains(s, "Amazon") || !strings.Contains(s, "n=10") {
		t.Errorf("Describe = %q", s)
	}
}

func TestLabelsPartitionAlignment(t *testing.T) {
	l := DenseVectors(37, 5, 3, 9, 4)
	if l.Data.NumPartitions() != l.Labels.NumPartitions() {
		t.Fatal("partition counts differ")
	}
	for p := 0; p < l.Data.NumPartitions(); p++ {
		if len(l.Data.Partition(p)) != len(l.Labels.Partition(p)) {
			t.Fatal("partition sizes differ")
		}
	}
}
