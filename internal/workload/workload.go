// Package workload generates the synthetic datasets that stand in for the
// paper's evaluation corpora (Table 3). None of the real datasets (Amazon
// Reviews, TIMIT, ImageNet, VOC, CIFAR-10, YouTube-8M) are available
// offline, so each generator reproduces the *statistical shape* that
// drives the paper's results — sparsity, dimensionality, class count, and
// class-conditional structure strong enough that the pipelines actually
// learn — at configurable scale. All generators are deterministic in
// their seed.
package workload

import (
	"fmt"
	"math"

	"keystoneml/internal/engine"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
)

// Labeled bundles a generated dataset: records, one-hot label vectors
// (aligned and identically partitioned), and integer ground truth.
type Labeled struct {
	Data   *engine.Collection
	Labels *engine.Collection
	Truth  []int
	// Classes is the number of label classes (k).
	Classes int
}

// split returns record i's partition-aligned collections.
func newLabeled(records []any, truth []int, classes, parts int) Labeled {
	labels := make([]any, len(truth))
	for i, c := range truth {
		y := make([]float64, classes)
		y[c] = 1
		labels[i] = y
	}
	return Labeled{
		Data:    engine.FromSlice(records, parts),
		Labels:  engine.FromSlice(labels, parts),
		Truth:   truth,
		Classes: classes,
	}
}

// reviewVocab is the shared vocabulary of the synthetic review corpus.
var (
	neutralWords = []string{
		"the", "a", "this", "product", "item", "box", "arrived", "ordered",
		"bought", "price", "shipping", "package", "color", "size", "brand",
		"store", "time", "day", "week", "month", "house", "kitchen", "phone",
		"book", "device", "quality", "material", "battery", "screen", "cable",
	}
	positiveWords = []string{
		"great", "excellent", "love", "perfect", "amazing", "wonderful",
		"fantastic", "recommend", "happy", "best", "works", "sturdy",
		"beautiful", "comfortable", "fast",
	}
	negativeWords = []string{
		"terrible", "awful", "broke", "disappointed", "waste", "poor",
		"refund", "broken", "useless", "worst", "cheap", "slow",
		"defective", "horrible", "returned",
	}
)

// AmazonReviews generates a binary-sentiment text corpus shaped like the
// Amazon Reviews workload: documents of 10-60 tokens drawn from a mixed
// vocabulary where sentiment-bearing words correlate with the label.
// After 1-2 gram featurization the resulting feature space is large and
// ~0.1% sparse, matching Table 3.
func AmazonReviews(n int, seed uint64, parts int) Labeled {
	rng := linalg.NewRNG(seed)
	records := make([]any, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(2)
		truth[i] = cls
		length := 10 + rng.Intn(50)
		doc := ""
		for w := 0; w < length; w++ {
			var word string
			r := rng.Float64()
			switch {
			case r < 0.25 && cls == 1:
				word = positiveWords[rng.Intn(len(positiveWords))]
			case r < 0.25 && cls == 0:
				word = negativeWords[rng.Intn(len(negativeWords))]
			case r < 0.30:
				// Cross-talk: wrong-class sentiment word (label noise).
				if cls == 1 {
					word = negativeWords[rng.Intn(len(negativeWords))]
				} else {
					word = positiveWords[rng.Intn(len(positiveWords))]
				}
			default:
				word = neutralWords[rng.Intn(len(neutralWords))]
			}
			if w > 0 {
				doc += " "
			}
			doc += word
		}
		records[i] = doc
	}
	return newLabeled(records, truth, 2, parts)
}

// SparseVectors generates an Amazon-shaped pre-featurized sparse dataset:
// d-dimensional records with nnz uniform nonzero features, labels from a
// planted sparse linear model. Used by the solver benchmarks (Figures 6
// and 8) where featurization is not under test.
func SparseVectors(n, d, nnz, classes int, seed uint64, parts int) Labeled {
	rng := linalg.NewRNG(seed)
	// The planted model depends only on the problem shape (see
	// DenseVectors) so differently-seeded draws are consistently labeled.
	wRNG := linalg.NewRNG(0x5FA5 ^ uint64(d)<<20 ^ uint64(classes))
	w := wRNG.GaussianMatrix(d, classes)
	records := make([]any, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		idx := rng.Perm(d)[:nnz]
		val := rng.GaussianVector(nnz)
		sv := linalg.NewSparseVector(d, idx, val)
		records[i] = sv
		scores := make([]float64, classes)
		for p, ii := range sv.Idx {
			for j := 0; j < classes; j++ {
				scores[j] += sv.Val[p] * w.At(ii, j)
			}
		}
		truth[i] = linalg.ArgMax(scores)
	}
	return newLabeled(records, truth, classes, parts)
}

// DenseVectors generates a TIMIT-shaped dense dataset: d-dimensional
// records from class-conditional Gaussians (classes phoneme-like), so a
// linear model on random-cosine features separates them. TIMIT proper is
// 440-dim with 147 classes; callers pick the scale.
func DenseVectors(n, d, classes int, seed uint64, parts int) Labeled {
	rng := linalg.NewRNG(seed)
	// Class centers depend only on the problem shape, never on the sample
	// seed, so train and test draws with different seeds share classes.
	centerRNG := linalg.NewRNG(0xC3A5 ^ uint64(d)<<20 ^ uint64(classes))
	centers := centerRNG.GaussianMatrix(classes, d)
	for i := range centers.Data {
		centers.Data[i] *= 2.5
	}
	records := make([]any, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(classes)
		truth[i] = cls
		x := make([]float64, d)
		center := centers.Row(cls)
		for j := range x {
			x[j] = center[j] + rng.Gaussian()
		}
		records[i] = x
	}
	return newLabeled(records, truth, classes, parts)
}

// Images generates an image-classification dataset where class determines
// the orientation of a striped texture (plus noise): SIFT-style oriented
// gradient histograms — and convolutional features — separate the classes,
// exercising the same code paths as VOC/ImageNet/CIFAR-10. Images are
// size x size with the given channel count.
func Images(n, size, channels, classes int, seed uint64, parts int) Labeled {
	rng := linalg.NewRNG(seed)
	records := make([]any, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(classes)
		truth[i] = cls
		records[i] = stripedImage(rng, size, channels, cls, classes)
	}
	return newLabeled(records, truth, classes, parts)
}

// stripedImage renders stripes whose angle encodes the class.
func stripedImage(rng *linalg.RNG, size, channels, cls, classes int) *image.Image {
	im := image.New(size, size, channels)
	angle := float64(cls) / float64(classes) * 3.14159
	cos, sin := cosSin(angle)
	freq := 0.5 + 0.1*float64(cls%3)
	phase := rng.Float64() * 6.28
	for c := 0; c < channels; c++ {
		chanScale := 1.0 + 0.2*float64(c)
		plane := im.Plane(c)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				t := (float64(x)*cos + float64(y)*sin) * freq
				v := chanScale*wave(t+phase) + 0.4*rng.Gaussian()
				plane[y*size+x] = v
			}
		}
	}
	return im
}

func cosSin(a float64) (float64, float64) { return math.Cos(a), math.Sin(a) }

// wave is a smooth periodic stripe profile.
func wave(t float64) float64 { return math.Sin(t) }

// YouTube generates the YouTube-8M shape: pre-featurized 1024-dim dense
// neural-network embeddings with a large class count (4800 in the paper;
// scaled down by callers).
func YouTube(n, classes int, seed uint64, parts int) Labeled {
	return DenseVectors(n, 1024, classes, seed, parts)
}

// Describe prints a Table 3 style row for a generated dataset.
func Describe(name string, l Labeled) string {
	recs := l.Data.Collect()
	var bytes int64
	for _, r := range recs {
		bytes += recordBytes(r)
	}
	return fmt.Sprintf("%-10s n=%-8d classes=%-5d size=%.1fMB", name, len(recs), l.Classes, float64(bytes)/1e6)
}

func recordBytes(r any) int64 {
	switch x := r.(type) {
	case string:
		return int64(len(x))
	case []float64:
		return int64(8 * len(x))
	case *linalg.SparseVector:
		return int64(16 * x.NNZ())
	case *image.Image:
		return x.ByteSize()
	default:
		return 64
	}
}
