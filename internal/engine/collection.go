// Package engine is the distributed-dataflow substrate KeystoneML-Go runs
// on, standing in for Apache Spark. It provides partitioned collections
// executed by a pool of goroutine "nodes", the aggregate patterns the ML
// operators need (map, mapPartitions, treeAggregate, sample), and a cache
// manager with pluggable policies (pinned set, LRU with admission control,
// estimator-only) that reproduces the memory-management behaviour Section
// 4.3 of the paper depends on.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Collection is an immutable partitioned collection of records. Partitions
// are the unit of parallelism, exactly as in Spark RDDs.
type Collection struct {
	parts [][]any
}

// Partition returns partition i (shared, do not mutate).
func (c *Collection) Partition(i int) []any { return c.parts[i] }

// NumPartitions returns the partition count.
func (c *Collection) NumPartitions() int { return len(c.parts) }

// Count returns the total number of records.
func (c *Collection) Count() int {
	n := 0
	for _, p := range c.parts {
		n += len(p)
	}
	return n
}

// Collect concatenates all partitions into one slice (a copy).
func (c *Collection) Collect() []any {
	out := make([]any, 0, c.Count())
	for _, p := range c.parts {
		out = append(out, p...)
	}
	return out
}

// Take returns up to n records from the head of the collection.
func (c *Collection) Take(n int) []any {
	out := make([]any, 0, n)
	for _, p := range c.parts {
		for _, item := range p {
			if len(out) == n {
				return out
			}
			out = append(out, item)
		}
	}
	return out
}

// FromSlice partitions items into nParts roughly equal contiguous chunks.
// nParts is clamped to [1, len(items)] (an empty input yields one empty
// partition so downstream code never sees zero partitions).
func FromSlice(items []any, nParts int) *Collection {
	if nParts < 1 || len(items) == 0 {
		nParts = 1
	}
	if len(items) > 0 && nParts > len(items) {
		nParts = len(items)
	}
	parts := make([][]any, nParts)
	if len(items) == 0 {
		return &Collection{parts: parts}
	}
	base := len(items) / nParts
	rem := len(items) % nParts
	off := 0
	for i := 0; i < nParts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		parts[i] = items[off : off+sz]
		off += sz
	}
	return &Collection{parts: parts}
}

// FromPartitions wraps pre-partitioned data without copying.
func FromPartitions(parts [][]any) *Collection {
	if len(parts) == 0 {
		parts = [][]any{nil}
	}
	return &Collection{parts: parts}
}

// Context executes collection operations on a bounded worker pool. Workers
// model cluster nodes: Parallelism bounds how many partitions execute
// concurrently.
type Context struct {
	Parallelism int

	// cancel, when non-nil, is the context.Context bound by
	// WithCancellation; collection operations poll it between partition
	// dispatches and abort with a *Canceled panic once it is done.
	cancel context.Context
}

// NewContext returns a Context with the given parallelism; zero or
// negative values default to the number of CPUs.
func NewContext(parallelism int) *Context {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	return &Context{Parallelism: parallelism}
}

// forEachPartition runs f(i, partition) for every partition with bounded
// parallelism, propagating the first panic as a wrapped error-panic so
// failures in worker goroutines are not lost.
func (ctx *Context) forEachPartition(c *Collection, f func(i int, part []any)) {
	ctx.CheckCanceled()
	n := c.NumPartitions()
	sem := make(chan struct{}, ctx.Parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			// Stop dispatching further partitions; already-running ones
			// drain, then the coordinator raises the cancellation.
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstPanic == nil {
						firstPanic = r
					}
					mu.Unlock()
				}
			}()
			f(i, c.parts[i])
		}(i)
	}
	wg.Wait()
	// A genuine worker panic outranks concurrent cancellation — masking
	// a real bug as "canceled" would hide it from every log line.
	if firstPanic != nil {
		if c, ok := AsCanceled(firstPanic); ok {
			panic(c) // keep the typed sentinel so RunContext can recover it
		}
		panic(fmt.Sprintf("engine: worker panic: %v", firstPanic))
	}
	ctx.CheckCanceled()
}

// Map applies f to every record, preserving partitioning.
func (ctx *Context) Map(c *Collection, f func(any) any) *Collection {
	out := make([][]any, c.NumPartitions())
	ctx.forEachPartition(c, func(i int, part []any) {
		res := make([]any, len(part))
		for j, item := range part {
			res[j] = f(item)
		}
		out[i] = res
	})
	return &Collection{parts: out}
}

// MapPartitions applies f to each whole partition, enabling per-partition
// state (e.g. converting a partition of rows into one matrix).
func (ctx *Context) MapPartitions(c *Collection, f func([]any) []any) *Collection {
	out := make([][]any, c.NumPartitions())
	ctx.forEachPartition(c, func(i int, part []any) {
		out[i] = f(part)
	})
	return &Collection{parts: out}
}

// Zip pairs two collections with identical partitioning element-wise using
// f. It panics if partition structures differ, since zipping misaligned
// lineages is a logic error.
func (ctx *Context) Zip(a, b *Collection, f func(x, y any) any) *Collection {
	if a.NumPartitions() != b.NumPartitions() {
		panic(fmt.Sprintf("engine: Zip partition count mismatch %d vs %d", a.NumPartitions(), b.NumPartitions()))
	}
	out := make([][]any, a.NumPartitions())
	ctx.forEachPartition(a, func(i int, part []any) {
		other := b.parts[i]
		if len(other) != len(part) {
			panic(fmt.Sprintf("engine: Zip partition %d length mismatch %d vs %d", i, len(part), len(other)))
		}
		res := make([]any, len(part))
		for j, item := range part {
			res[j] = f(item, other[j])
		}
		out[i] = res
	})
	return &Collection{parts: out}
}

// Aggregate folds every partition with seqOp starting from zero() and then
// combines the per-partition results with combOp in a tree pattern (two-at-
// a-time), matching Spark's treeAggregate used by the distributed solvers.
func (ctx *Context) Aggregate(c *Collection, zero func() any, seqOp func(acc, item any) any, combOp func(a, b any) any) any {
	partials := make([]any, c.NumPartitions())
	ctx.forEachPartition(c, func(i int, part []any) {
		acc := zero()
		for _, item := range part {
			acc = seqOp(acc, item)
		}
		partials[i] = acc
	})
	// Tree reduction over the partials.
	for len(partials) > 1 {
		next := make([]any, 0, (len(partials)+1)/2)
		for i := 0; i < len(partials); i += 2 {
			if i+1 < len(partials) {
				next = append(next, combOp(partials[i], partials[i+1]))
			} else {
				next = append(next, partials[i])
			}
		}
		partials = next
	}
	if len(partials) == 0 {
		return zero()
	}
	return partials[0]
}

// Sample returns a deterministic subsample of approximately n records,
// taking an even stride through every partition. The optimizer's execution
// subsampling (Section 4.1) uses this to estimate dataset statistics.
func (c *Collection) Sample(n int) *Collection {
	total := c.Count()
	if n <= 0 || total == 0 {
		return FromSlice(nil, 1)
	}
	if n >= total {
		return c
	}
	stride := total / n
	if stride < 1 {
		stride = 1
	}
	var picked []any
	seen := 0
	for _, p := range c.parts {
		for _, item := range p {
			if seen%stride == 0 && len(picked) < n {
				picked = append(picked, item)
			}
			seen++
		}
	}
	return FromSlice(picked, min(len(picked), c.NumPartitions()))
}
