package engine

import (
	"sync"
)

// SharedCache is a cross-executor cache of node outputs keyed by content
// signature rather than by graph node identity. It is the mechanism
// behind cross-candidate cache sharing in hyperparameter search: several
// concurrent fits whose DAGs share a prefix (same featurization,
// different solver hyperparameters) key the prefix nodes identically, so
// the first fit to demand a shared node computes it and every other fit
// reuses the materialized result — the paper's pipeline-level reuse
// argument applied one level up, across pipelines.
//
// Correctness rests on the caller's scoping contract: a SharedCache must
// only be shared by fits whose keyed nodes are pure functions of
// *identical* input data (keystone/tune creates one per search round,
// because successive halving changes the training subset between
// rounds). Keys are expected to be collision-free content signatures
// (core.PrefixSignatures).
//
// GetOrCompute is single-flight per key across every executor attached
// to the cache: concurrent demands for one shared node run one
// computation, with the other callers blocking on its result. A
// computation that panics (estimator failure, cooperative cancellation)
// poisons nobody — the flight is discarded and the next waiter computes
// in its place, so one canceled candidate never wedges its round.
type SharedCache struct {
	mu      sync.Mutex
	budget  int64 // <= 0 means unlimited
	used    int64
	entries map[string]*sharedEntry
	order   entryList // recency over stored entries, oldest first
	flights map[string]*sharedFlight

	hits, coalesced, computes, rejected int64
}

// sharedEntry is one stored value; it reuses the cache manager's
// intrusive list node so recency updates stay O(1).
type sharedEntry struct {
	elem cacheEntry // elem.key/value/size are the payload
}

// sharedFlight is the single-flight record for one in-progress shared
// computation.
type sharedFlight struct {
	done chan struct{}
	val  any
	size int64
	ok   bool // false: the computation panicked; waiters must retry
}

// NewSharedCache creates a shared prefix cache bounded to budget bytes
// (non-positive = unlimited). Eviction is LRU; an entry that cannot fit
// even after evicting everything is simply not stored (the demanding
// caller still receives the computed value).
func NewSharedCache(budget int64) *SharedCache {
	s := &SharedCache{
		budget:  budget,
		entries: make(map[string]*sharedEntry),
		flights: make(map[string]*sharedFlight),
	}
	s.order.init()
	return s
}

// Contains reports whether key is currently stored, without touching
// recency or counters — the planning peek pass schedulers use to treat
// shared nodes as cache boundaries.
func (s *SharedCache) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// GetOrCompute returns the value for key, computing it at most once
// across all concurrent callers. compute returns the value and its size
// in bytes; it runs without the cache lock held. hit reports whether the
// value came from the cache or an in-flight computation (true) or from
// this caller's own compute (false). If compute panics, the panic
// propagates to this caller and waiting callers retry the computation
// themselves.
func (s *SharedCache) GetOrCompute(key string, compute func() (any, int64)) (val any, size int64, hit bool) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.hits++
			unlink(&e.elem)
			s.order.pushNewest(&e.elem)
			s.mu.Unlock()
			return e.elem.value, e.elem.size, true
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			<-f.done
			if !f.ok {
				continue // the computer panicked; race to take over
			}
			s.mu.Lock()
			s.coalesced++
			s.mu.Unlock()
			return f.val, f.size, true
		}
		f := &sharedFlight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		func() {
			defer func() {
				if !f.ok {
					// compute panicked: discard the flight, release the
					// waiters to retry, and let the panic propagate.
					s.mu.Lock()
					delete(s.flights, key)
					s.mu.Unlock()
					close(f.done)
				}
			}()
			f.val, f.size = compute()
			f.ok = true
		}()

		s.mu.Lock()
		s.computes++
		s.storeLocked(key, f.val, f.size)
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		return f.val, f.size, false
	}
}

// storeLocked admits a computed value under the budget, evicting oldest
// entries to make room; values that can never fit are dropped (counted
// as rejected). Caller holds s.mu.
func (s *SharedCache) storeLocked(key string, val any, size int64) {
	if _, ok := s.entries[key]; ok {
		return
	}
	if s.budget > 0 {
		if size > s.budget {
			s.rejected++
			return
		}
		for s.used+size > s.budget {
			v := s.order.oldest()
			if v == nil {
				s.rejected++
				return
			}
			delete(s.entries, v.key)
			unlink(v)
			s.used -= v.size
		}
	}
	e := &sharedEntry{elem: cacheEntry{key: key, value: val, size: size}}
	s.entries[key] = e
	s.order.pushNewest(&e.elem)
	s.used += size
}

// SharedCacheStats are the cumulative counters of one SharedCache.
type SharedCacheStats struct {
	// Hits counts demands served from a stored entry; Coalesced counts
	// demands that joined another caller's in-flight computation. Both
	// are reuse — work that did not run twice.
	Hits, Coalesced int64
	// Computes counts computations that actually ran (one per distinct
	// key, absent eviction or panics).
	Computes int64
	// Rejected counts computed values the budget refused to store.
	Rejected int64
	// UsedBytes is the bytes currently stored.
	UsedBytes int64
}

// Stats returns a snapshot of the cache's counters.
func (s *SharedCache) Stats() SharedCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SharedCacheStats{
		Hits:      s.hits,
		Coalesced: s.coalesced,
		Computes:  s.computes,
		Rejected:  s.rejected,
		UsedBytes: s.used,
	}
}
