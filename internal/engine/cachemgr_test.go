package engine

import "testing"

func TestCacheManagerBasicPutGet(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	if !m.Put("a", "valueA", 40) {
		t.Fatal("Put a rejected")
	}
	v, ok := m.Get("a")
	if !ok || v.(string) != "valueA" {
		t.Fatalf("Get a = %v, %v", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Error("Get missing returned ok")
	}
	hits, misses, _ := m.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheManagerLRUEviction(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("a", 1, 40)
	m.Put("b", 2, 40)
	m.Get("a") // a is now most recently used
	m.Put("c", 3, 40)
	// b should have been evicted (LRU), a and c remain.
	if _, ok := m.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("a should still be cached")
	}
	if _, ok := m.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if _, _, ev := m.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestCacheManagerAdmissionControl(t *testing.T) {
	// An object larger than the entire budget must be rejected outright
	// (this is the Spark admission-control behaviour the paper describes).
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("small", 1, 30)
	if m.Put("huge", 2, 500) {
		t.Error("object larger than budget admitted")
	}
	if _, ok := m.Get("small"); !ok {
		t.Error("small entry was evicted by rejected huge entry")
	}
}

func TestCacheManagerUnlimitedBudget(t *testing.T) {
	m := NewCacheManager(0, NewLRUPolicy())
	for i := 0; i < 100; i++ {
		if !m.Put(string(rune('a'+i%26))+string(rune('0'+i/26)), i, 1<<30) {
			t.Fatal("unlimited cache rejected a put")
		}
	}
	if m.Used() != 100<<30 {
		t.Errorf("Used = %d", m.Used())
	}
}

func TestPinnedSetPolicy(t *testing.T) {
	m := NewCacheManager(1000, NewPinnedSetPolicy([]string{"keep"}))
	if m.Put("other", 1, 10) {
		t.Error("non-pinned id admitted")
	}
	if !m.Put("keep", 2, 10) {
		t.Error("pinned id rejected")
	}
	if v, ok := m.Get("keep"); !ok || v.(int) != 2 {
		t.Error("pinned value not retrievable")
	}
}

func TestRuleBasedPolicy(t *testing.T) {
	m := NewCacheManager(1000, NewRuleBasedPolicy([]string{"est1", "est2"}))
	if m.Put("features", 1, 10) {
		t.Error("non-estimator output admitted by rule-based policy")
	}
	if !m.Put("est1", 1, 10) {
		t.Error("estimator output rejected")
	}
}

func TestCacheManagerRemoveAndClear(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("a", 1, 10)
	m.Put("b", 2, 20)
	m.Remove("a")
	if _, ok := m.Get("a"); ok {
		t.Error("a still present after Remove")
	}
	if m.Used() != 20 {
		t.Errorf("Used = %d, want 20", m.Used())
	}
	m.Clear()
	if m.Used() != 0 {
		t.Errorf("Used after Clear = %d", m.Used())
	}
	if _, ok := m.Get("b"); ok {
		t.Error("b present after Clear")
	}
}

func TestCacheManagerPinnedNeverEvictedForNewer(t *testing.T) {
	// Under budget pressure a pinned entry must never be the victim that
	// admits a newer entry: the newcomer is rejected instead.
	m := NewCacheManager(100, NewPinnedSetPolicy([]string{"a", "b"}))
	if !m.Put("a", 1, 60) {
		t.Fatal("first pinned entry rejected")
	}
	if m.Put("b", 2, 60) {
		t.Error("second pinned entry admitted by evicting the first pinned entry")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("pinned entry a was evicted")
	}
	if m.Used() != 60 {
		t.Errorf("Used = %d, want 60", m.Used())
	}
	if _, _, ev := m.Stats(); ev != 0 {
		t.Errorf("evictions = %d, want 0", ev)
	}
}

func TestCacheManagerSpeculativeLifecycle(t *testing.T) {
	m := NewCacheManager(100, NewPinnedSetPolicy([]string{"pin"}))
	// Speculative entries bypass admission but live in free headroom only.
	if !m.PutSpeculative("s1", 1, 50) {
		t.Fatal("speculative entry with headroom rejected")
	}
	if m.PutSpeculative("s2", 2, 60) {
		t.Error("speculative entry admitted beyond free headroom (must never evict)")
	}
	if v, ok := m.Get("s1"); !ok || v.(int) != 1 {
		t.Error("speculative entry not served by Get")
	}
	if !m.Contains("s1") {
		t.Error("Contains must see speculative entries (scheduler boundary peek)")
	}
	// Release drops speculative entries only.
	m.ReleaseSpeculative("s1")
	if m.Contains("s1") {
		t.Error("s1 still present after ReleaseSpeculative")
	}
	if m.Used() != 0 {
		t.Errorf("Used = %d, want 0", m.Used())
	}
	m.Put("pin", 3, 40)
	m.ReleaseSpeculative("pin")
	if !m.Contains("pin") {
		t.Error("ReleaseSpeculative must not touch regular entries")
	}
}

func TestCacheManagerSpeculativeEvictedFirst(t *testing.T) {
	// A regular Put under pressure evicts speculative entries before any
	// regular entry, regardless of recency.
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("old", 1, 40)
	if !m.PutSpeculative("spec", 2, 40) {
		t.Fatal("speculative entry rejected")
	}
	m.Get("spec") // most recently used — still the first victim
	if !m.Put("new", 3, 40) {
		t.Fatal("regular entry rejected despite evictable speculative entry")
	}
	if m.Contains("spec") {
		t.Error("speculative entry survived budget pressure from a regular Put")
	}
	if !m.Contains("old") || !m.Contains("new") {
		t.Error("regular entries evicted while a speculative victim existed")
	}
	if m.SpeculativeBytes() != 0 {
		t.Errorf("SpeculativeBytes = %d, want 0", m.SpeculativeBytes())
	}
}

func TestCacheManagerPutPromotesSpeculative(t *testing.T) {
	// A Put for an id already held speculatively must promote it to a
	// regular (here: pinned) entry when the policy admits it: it stops
	// being an evict-first victim and survives ReleaseSpeculative —
	// otherwise a pin guarantee silently would not hold on a shared
	// manager.
	m := NewCacheManager(100, NewPinnedSetPolicy([]string{"x"}))
	if !m.PutSpeculative("x", 1, 40) {
		t.Fatal("speculative insert rejected")
	}
	if !m.Put("x", 2, 40) {
		t.Fatal("Put on speculative entry reported failure")
	}
	m.ReleaseSpeculative("x")
	if _, ok := m.Get("x"); !ok {
		t.Error("promoted entry dropped by ReleaseSpeculative")
	}
	if m.SpeculativeBytes() != 0 {
		t.Errorf("SpeculativeBytes = %d after promotion, want 0", m.SpeculativeBytes())
	}
	// Original value retained (consistent with the double-Put contract).
	if v, _ := m.Get("x"); v.(int) != 1 {
		t.Errorf("promotion replaced the stored value: %v", v)
	}
}

func TestCacheManagerPutDoesNotPromoteUnadmitted(t *testing.T) {
	// A speculative entry the policy still rejects stays speculative on
	// a re-Put (and Put still reports it cached).
	m := NewCacheManager(100, NewPinnedSetPolicy([]string{"pin"}))
	m.PutSpeculative("other", 1, 40)
	if !m.Put("other", 1, 40) {
		t.Fatal("Put on cached speculative entry reported failure")
	}
	m.ReleaseSpeculative("other")
	if m.Contains("other") {
		t.Error("unadmitted entry was promoted out of the speculative class")
	}
}

func TestCacheManagerPinnedPutEvictsSpeculative(t *testing.T) {
	// The pinned set reclaims headroom held speculatively.
	m := NewCacheManager(100, NewPinnedSetPolicy([]string{"pin"}))
	m.PutSpeculative("s", 1, 80)
	if !m.Put("pin", 2, 60) {
		t.Fatal("pinned entry rejected while speculative headroom was reclaimable")
	}
	if m.Contains("s") {
		t.Error("speculative entry not sacrificed for the pinned set")
	}
	if _, ok := m.Get("pin"); !ok {
		t.Error("pinned entry missing")
	}
}

func TestCacheManagerDoublePut(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("a", 1, 10)
	if !m.Put("a", 2, 10) {
		t.Error("re-put of cached id should report success")
	}
	if m.Used() != 10 {
		t.Errorf("double put double-counted: Used = %d", m.Used())
	}
	// Original value retained.
	if v, _ := m.Get("a"); v.(int) != 1 {
		t.Errorf("value overwritten: %v", v)
	}
}
