package engine

import "testing"

func TestCacheManagerBasicPutGet(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	if !m.Put("a", "valueA", 40) {
		t.Fatal("Put a rejected")
	}
	v, ok := m.Get("a")
	if !ok || v.(string) != "valueA" {
		t.Fatalf("Get a = %v, %v", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Error("Get missing returned ok")
	}
	hits, misses, _ := m.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheManagerLRUEviction(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("a", 1, 40)
	m.Put("b", 2, 40)
	m.Get("a") // a is now most recently used
	m.Put("c", 3, 40)
	// b should have been evicted (LRU), a and c remain.
	if _, ok := m.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("a should still be cached")
	}
	if _, ok := m.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if _, _, ev := m.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestCacheManagerAdmissionControl(t *testing.T) {
	// An object larger than the entire budget must be rejected outright
	// (this is the Spark admission-control behaviour the paper describes).
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("small", 1, 30)
	if m.Put("huge", 2, 500) {
		t.Error("object larger than budget admitted")
	}
	if _, ok := m.Get("small"); !ok {
		t.Error("small entry was evicted by rejected huge entry")
	}
}

func TestCacheManagerUnlimitedBudget(t *testing.T) {
	m := NewCacheManager(0, NewLRUPolicy())
	for i := 0; i < 100; i++ {
		if !m.Put(string(rune('a'+i%26))+string(rune('0'+i/26)), i, 1<<30) {
			t.Fatal("unlimited cache rejected a put")
		}
	}
	if m.Used() != 100<<30 {
		t.Errorf("Used = %d", m.Used())
	}
}

func TestPinnedSetPolicy(t *testing.T) {
	m := NewCacheManager(1000, NewPinnedSetPolicy([]string{"keep"}))
	if m.Put("other", 1, 10) {
		t.Error("non-pinned id admitted")
	}
	if !m.Put("keep", 2, 10) {
		t.Error("pinned id rejected")
	}
	if v, ok := m.Get("keep"); !ok || v.(int) != 2 {
		t.Error("pinned value not retrievable")
	}
}

func TestRuleBasedPolicy(t *testing.T) {
	m := NewCacheManager(1000, NewRuleBasedPolicy([]string{"est1", "est2"}))
	if m.Put("features", 1, 10) {
		t.Error("non-estimator output admitted by rule-based policy")
	}
	if !m.Put("est1", 1, 10) {
		t.Error("estimator output rejected")
	}
}

func TestCacheManagerRemoveAndClear(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("a", 1, 10)
	m.Put("b", 2, 20)
	m.Remove("a")
	if _, ok := m.Get("a"); ok {
		t.Error("a still present after Remove")
	}
	if m.Used() != 20 {
		t.Errorf("Used = %d, want 20", m.Used())
	}
	m.Clear()
	if m.Used() != 0 {
		t.Errorf("Used after Clear = %d", m.Used())
	}
	if _, ok := m.Get("b"); ok {
		t.Error("b present after Clear")
	}
}

func TestCacheManagerDoublePut(t *testing.T) {
	m := NewCacheManager(100, NewLRUPolicy())
	m.Put("a", 1, 10)
	if !m.Put("a", 2, 10) {
		t.Error("re-put of cached id should report success")
	}
	if m.Used() != 10 {
		t.Errorf("double put double-counted: Used = %d", m.Used())
	}
	// Original value retained.
	if v, _ := m.Get("a"); v.(int) != 1 {
		t.Errorf("value overwritten: %v", v)
	}
}
