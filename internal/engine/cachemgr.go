package engine

import (
	"sync"
)

// CachePolicy decides which intermediate datasets stay in cluster memory.
// Implementations reproduce the three strategies compared in Figure 10 of
// the paper: the KeystoneML greedy pinned set, LRU (Spark's default), and
// the rule-based "cache Estimator results only" baseline.
type CachePolicy interface {
	// Admit is called before storing id with the given size; it returns
	// true if the entry may enter the cache. The policy may evict other
	// entries (via the manager callback) to make room.
	Admit(id string, size int64) bool
	// Touch notes an access to id (for recency-based policies).
	Touch(id string)
	// Evicted must be invoked by the manager when it removes id.
	Evicted(id string)
}

// CacheManager stores materialized node outputs under a byte budget. It is
// the "additional cache-management layer aware of the multiple jobs that
// comprise a pipeline" described in Section 5 of the paper.
type CacheManager struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*cacheEntry
	order   []string // insertion/recency order, oldest first
	policy  CachePolicy

	hits, misses, evictions int64
}

type cacheEntry struct {
	value any
	size  int64
}

// NewCacheManager creates a manager with the given byte budget. A
// non-positive budget means unlimited. If policy is nil, PinnedSetPolicy
// with an empty pin set is used (nothing admitted).
func NewCacheManager(budget int64, policy CachePolicy) *CacheManager {
	if policy == nil {
		policy = NewLRUPolicy()
	}
	return &CacheManager{
		budget:  budget,
		entries: make(map[string]*cacheEntry),
		policy:  policy,
	}
}

// Contains reports whether id is currently cached. Unlike Get it does
// not count a hit/miss or touch recency state — it is the planning peek
// the parallel scheduler uses to prune passes at cache boundaries.
func (m *CacheManager) Contains(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[id]
	return ok
}

// Get returns the cached value for id, if present.
func (m *CacheManager) Get(id string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.policy.Touch(id)
	m.touchOrder(id)
	return e.value, true
}

// Put offers a value to the cache. The policy decides admission; if the
// budget would be exceeded, least-recently-used entries are evicted until
// the value fits (or the value itself is rejected when larger than the
// whole budget).
func (m *CacheManager) Put(id string, value any, size int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[id]; ok {
		return true // already cached
	}
	if !m.policy.Admit(id, size) {
		return false
	}
	if m.budget > 0 {
		if size > m.budget {
			return false // can never fit
		}
		for m.used+size > m.budget && len(m.order) > 0 {
			m.evictOldestLocked()
		}
		if m.used+size > m.budget {
			return false
		}
	}
	m.entries[id] = &cacheEntry{value: value, size: size}
	m.order = append(m.order, id)
	m.used += size
	return true
}

// Remove drops id from the cache if present.
func (m *CacheManager) Remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeLocked(id)
}

// Clear empties the cache, keeping statistics.
func (m *CacheManager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.entries {
		m.policy.Evicted(id)
	}
	m.entries = make(map[string]*cacheEntry)
	m.order = nil
	m.used = 0
}

// Used returns the bytes currently cached.
func (m *CacheManager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Stats returns cumulative hit/miss/eviction counters.
func (m *CacheManager) Stats() (hits, misses, evictions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.evictions
}

func (m *CacheManager) evictOldestLocked() {
	if len(m.order) == 0 {
		return
	}
	oldest := m.order[0]
	m.removeLocked(oldest)
	m.evictions++
}

func (m *CacheManager) removeLocked(id string) {
	e, ok := m.entries[id]
	if !ok {
		return
	}
	delete(m.entries, id)
	m.used -= e.size
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.policy.Evicted(id)
}

func (m *CacheManager) touchOrder(id string) {
	for i, o := range m.order {
		if o == id {
			m.order = append(append(m.order[:i], m.order[i+1:]...), id)
			return
		}
	}
}

// PinnedSetPolicy admits exactly the node ids chosen in advance by the
// greedy materialization algorithm (Algorithm 1). Everything else is
// rejected, so the pinned outputs can never be evicted by large
// non-reused intermediates.
type PinnedSetPolicy struct {
	mu     sync.Mutex
	pinned map[string]bool
}

// NewPinnedSetPolicy pins the given ids.
func NewPinnedSetPolicy(ids []string) *PinnedSetPolicy {
	p := &PinnedSetPolicy{pinned: make(map[string]bool, len(ids))}
	for _, id := range ids {
		p.pinned[id] = true
	}
	return p
}

// Admit implements CachePolicy.
func (p *PinnedSetPolicy) Admit(id string, _ int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pinned[id]
}

// Touch implements CachePolicy.
func (p *PinnedSetPolicy) Touch(string) {}

// Evicted implements CachePolicy.
func (p *PinnedSetPolicy) Evicted(string) {}

// LRUPolicy admits everything; recency ordering and eviction are handled
// by the manager. It reproduces Spark's default storage behaviour,
// including the implicit admission-control quirk the paper observes (an
// object bigger than the budget is simply not admitted).
type LRUPolicy struct{}

// NewLRUPolicy returns an LRU admission policy.
func NewLRUPolicy() *LRUPolicy { return &LRUPolicy{} }

// Admit implements CachePolicy.
func (*LRUPolicy) Admit(string, int64) bool { return true }

// Touch implements CachePolicy.
func (*LRUPolicy) Touch(string) {}

// Evicted implements CachePolicy.
func (*LRUPolicy) Evicted(string) {}

// RuleBasedPolicy admits only ids registered as Estimator outputs — the
// "sensible rule" baseline from Section 5.4 (models are cheap to hold and
// expensive to recompute), which misses reuse of featurized data.
type RuleBasedPolicy struct {
	mu        sync.Mutex
	estimator map[string]bool
}

// NewRuleBasedPolicy marks the given ids as estimator outputs.
func NewRuleBasedPolicy(estimatorIDs []string) *RuleBasedPolicy {
	p := &RuleBasedPolicy{estimator: make(map[string]bool, len(estimatorIDs))}
	for _, id := range estimatorIDs {
		p.estimator[id] = true
	}
	return p
}

// Admit implements CachePolicy.
func (p *RuleBasedPolicy) Admit(id string, _ int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.estimator[id]
}

// Touch implements CachePolicy.
func (p *RuleBasedPolicy) Touch(string) {}

// Evicted implements CachePolicy.
func (p *RuleBasedPolicy) Evicted(string) {}
