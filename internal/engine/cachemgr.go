package engine

import (
	"sync"
)

// CachePolicy decides which intermediate datasets stay in cluster memory.
// Implementations reproduce the three strategies compared in Figure 10 of
// the paper: the KeystoneML greedy pinned set, LRU (Spark's default), and
// the rule-based "cache Estimator results only" baseline.
type CachePolicy interface {
	// Admit is called before storing id with the given size; it returns
	// true if the entry may enter the cache. The policy may evict other
	// entries (via the manager callback) to make room.
	Admit(id string, size int64) bool
	// Touch notes an access to id (for recency-based policies).
	Touch(id string)
	// Evicted must be invoked by the manager when it removes id.
	Evicted(id string)
}

// PinAware is an optional CachePolicy refinement: a policy that pins
// entries reports which ones, and the manager's budget-pressure eviction
// never selects a pinned entry as a victim to admit a newer one — under
// pressure the newer entry is rejected instead. Pinned must be stable
// for a given id (the manager files entries by pinned-ness at admission
// time). PinnedSetPolicy implements it; recency policies (LRU) do not,
// keeping every entry evictable.
type PinAware interface {
	Pinned(id string) bool
}

// CacheManager stores materialized node outputs under a byte budget. It is
// the "additional cache-management layer aware of the multiple jobs that
// comprise a pipeline" described in Section 5 of the paper.
//
// Entries come in two classes. Regular entries pass the policy's Admit
// check and may evict others to fit. Speculative entries (PutSpeculative)
// are the executor's cross-pass retention: results the policy rejected
// but that an in-flight estimator fit will demand again. They are
// strictly subordinate to the budget — admitted only into free headroom,
// never by evicting anything — and they are the first victims when a
// regular entry needs room. Note that a non-positive budget means
// *unlimited*: the caller has declared memory unconstrained, so nothing
// bounds speculative headroom either — their lifetime is bounded
// instead (the executor releases them as fits complete and drains the
// remainder when the run ends, even on panic or cancellation).
//
// Recency is an intrusive doubly-linked list over the entries themselves
// with the map as index, so Get-touch and Remove are O(1) — the previous
// slice-based order was O(n) per touch, which showed up under serving
// load.
type CacheManager struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*cacheEntry
	main    entryList // evictable regular entries, oldest first
	pinnedL entryList // pinned regular entries (never victims)
	spec    entryList // speculative entries, oldest first
	policy  CachePolicy

	hits, misses, evictions int64
}

// cacheEntry is one cached value, threaded onto its class's recency
// list (speculative, pinned, or evictable-regular; keeping the classes
// on separate lists makes victim selection O(1) — no skipping over
// pinned prefixes).
type cacheEntry struct {
	key         string
	value       any
	size        int64
	speculative bool
	pinned      bool
	prev, next  *cacheEntry
}

// entryList is an intrusive circular doubly-linked list with a sentinel
// root: root.next is the oldest entry, root.prev the most recent.
type entryList struct {
	root cacheEntry
}

func (l *entryList) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
}

func (l *entryList) oldest() *cacheEntry {
	if l.root.next == &l.root {
		return nil
	}
	return l.root.next
}

// next returns the entry after e in recency order (nil at the end).
func (l *entryList) next(e *cacheEntry) *cacheEntry {
	if e.next == &l.root {
		return nil
	}
	return e.next
}

func (l *entryList) pushNewest(e *cacheEntry) {
	e.prev = l.root.prev
	e.next = &l.root
	e.prev.next = e
	e.next.prev = e
}

func unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// NewCacheManager creates a manager with the given byte budget. A
// non-positive budget means unlimited. If policy is nil, LRU (admit
// everything, evict by recency) is used.
func NewCacheManager(budget int64, policy CachePolicy) *CacheManager {
	if policy == nil {
		policy = NewLRUPolicy()
	}
	m := &CacheManager{
		budget:  budget,
		entries: make(map[string]*cacheEntry),
		policy:  policy,
	}
	m.main.init()
	m.pinnedL.init()
	m.spec.init()
	return m
}

// listOf returns the recency list entry e lives on.
func (m *CacheManager) listOf(e *cacheEntry) *entryList {
	switch {
	case e.speculative:
		return &m.spec
	case e.pinned:
		return &m.pinnedL
	default:
		return &m.main
	}
}

// pinnedID reports whether the policy pins id (false for policies that
// are not PinAware).
func (m *CacheManager) pinnedID(id string) bool {
	if pa, ok := m.policy.(PinAware); ok {
		return pa.Pinned(id)
	}
	return false
}

// Contains reports whether id is currently cached. Unlike Get it does
// not count a hit/miss or touch recency state — it is the planning peek
// the parallel scheduler uses to prune passes at cache boundaries.
func (m *CacheManager) Contains(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[id]
	return ok
}

// Get returns the cached value for id, if present.
func (m *CacheManager) Get(id string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.policy.Touch(id)
	unlink(e)
	m.listOf(e).pushNewest(e)
	return e.value, true
}

// Put offers a value to the cache. The policy decides admission; if the
// budget would be exceeded, victims are evicted until the value fits —
// speculative entries first, then regular entries oldest-first, but
// never an entry the policy pins (PinAware): when only pinned entries
// could make room, the newcomer is rejected instead. A value larger than
// the whole budget is rejected outright.
func (m *CacheManager) Put(id string, value any, size int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		// Already cached. A speculative entry that the policy would now
		// admit is promoted to a regular one (it must stop being an
		// evict-first victim and must survive ReleaseSpeculative, or a
		// pin guarantee would silently not hold).
		if e.speculative && m.policy.Admit(id, e.size) {
			e.speculative = false
			e.pinned = m.pinnedID(id)
			unlink(e)
			m.listOf(e).pushNewest(e)
		}
		return true
	}
	if !m.policy.Admit(id, size) {
		return false
	}
	if m.budget > 0 {
		if size > m.budget {
			return false // can never fit
		}
		if !m.makeRoomLocked(size) {
			return false
		}
	}
	e := &cacheEntry{key: id, value: value, size: size, pinned: m.pinnedID(id)}
	m.entries[id] = e
	m.listOf(e).pushNewest(e)
	m.used += size
	return true
}

// makeRoomLocked evicts victims until size fits in the budget, or
// reports failure if only pinned entries remain.
func (m *CacheManager) makeRoomLocked(size int64) bool {
	for m.used+size > m.budget {
		v := m.victimLocked()
		if v == nil {
			return false
		}
		m.deleteLocked(v)
		m.evictions++
	}
	return true
}

// victimLocked picks the next eviction victim in O(1): the oldest
// speculative entry if any, else the oldest evictable regular entry
// (pinned entries live on their own list and are never considered).
// Returns nil when nothing is evictable.
func (m *CacheManager) victimLocked() *cacheEntry {
	if v := m.spec.oldest(); v != nil {
		return v
	}
	return m.main.oldest()
}

// deleteLocked removes e from the map, its recency list, and the byte
// accounting. The policy is only notified for entries it admitted.
func (m *CacheManager) deleteLocked(e *cacheEntry) {
	delete(m.entries, e.key)
	unlink(e)
	m.used -= e.size
	if !e.speculative {
		m.policy.Evicted(e.key)
	}
}

// PutSpeculative offers a value for cross-pass retention, bypassing the
// policy's admission check but strictly subordinate to the budget: the
// entry is stored only if it fits in the currently free headroom —
// nothing is ever evicted to make room for it — and it is the first
// victim when a regular Put needs space. Returns whether the value is
// now cached.
func (m *CacheManager) PutSpeculative(id string, value any, size int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[id]; ok {
		return true
	}
	if m.budget > 0 && m.used+size > m.budget {
		return false
	}
	e := &cacheEntry{key: id, value: value, size: size, speculative: true}
	m.entries[id] = e
	m.spec.pushNewest(e)
	m.used += size
	return true
}

// ReleaseSpeculative drops id if (and only if) it is a speculative
// entry; regular entries are untouched. The executor calls this when the
// last estimator interested in a retained result finishes fitting.
func (m *CacheManager) ReleaseSpeculative(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok && e.speculative {
		m.deleteLocked(e)
	}
}

// SpeculativeBytes returns the bytes currently held by speculative
// (cross-pass retention) entries.
func (m *CacheManager) SpeculativeBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for e := m.spec.oldest(); e != nil; e = m.spec.next(e) {
		total += e.size
	}
	return total
}

// Remove drops id from the cache if present.
func (m *CacheManager) Remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		m.deleteLocked(e)
	}
}

// Clear empties the cache, keeping statistics.
func (m *CacheManager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, e := range m.entries {
		if !e.speculative {
			m.policy.Evicted(id)
		}
	}
	m.entries = make(map[string]*cacheEntry)
	m.main.init()
	m.pinnedL.init()
	m.spec.init()
	m.used = 0
}

// Used returns the bytes currently cached.
func (m *CacheManager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Stats returns cumulative hit/miss/eviction counters.
func (m *CacheManager) Stats() (hits, misses, evictions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.evictions
}

// PinnedSetPolicy admits exactly the node ids chosen in advance by the
// greedy materialization algorithm (Algorithm 1). Everything else is
// rejected, so the pinned outputs can never be evicted by large
// non-reused intermediates.
type PinnedSetPolicy struct {
	mu     sync.Mutex
	pinned map[string]bool
}

// NewPinnedSetPolicy pins the given ids.
func NewPinnedSetPolicy(ids []string) *PinnedSetPolicy {
	p := &PinnedSetPolicy{pinned: make(map[string]bool, len(ids))}
	for _, id := range ids {
		p.pinned[id] = true
	}
	return p
}

// Admit implements CachePolicy.
func (p *PinnedSetPolicy) Admit(id string, _ int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pinned[id]
}

// Touch implements CachePolicy.
func (p *PinnedSetPolicy) Touch(string) {}

// Evicted implements CachePolicy.
func (p *PinnedSetPolicy) Evicted(string) {}

// Pinned implements PinAware: admitted entries are exactly the pinned
// ones, and the manager must never evict them to admit a newer entry.
func (p *PinnedSetPolicy) Pinned(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pinned[id]
}

// LRUPolicy admits everything; recency ordering and eviction are handled
// by the manager. It reproduces Spark's default storage behaviour,
// including the implicit admission-control quirk the paper observes (an
// object bigger than the budget is simply not admitted).
type LRUPolicy struct{}

// NewLRUPolicy returns an LRU admission policy.
func NewLRUPolicy() *LRUPolicy { return &LRUPolicy{} }

// Admit implements CachePolicy.
func (*LRUPolicy) Admit(string, int64) bool { return true }

// Touch implements CachePolicy.
func (*LRUPolicy) Touch(string) {}

// Evicted implements CachePolicy.
func (*LRUPolicy) Evicted(string) {}

// RuleBasedPolicy admits only ids registered as Estimator outputs — the
// "sensible rule" baseline from Section 5.4 (models are cheap to hold and
// expensive to recompute), which misses reuse of featurized data.
type RuleBasedPolicy struct {
	mu        sync.Mutex
	estimator map[string]bool
}

// NewRuleBasedPolicy marks the given ids as estimator outputs.
func NewRuleBasedPolicy(estimatorIDs []string) *RuleBasedPolicy {
	p := &RuleBasedPolicy{estimator: make(map[string]bool, len(estimatorIDs))}
	for _, id := range estimatorIDs {
		p.estimator[id] = true
	}
	return p
}

// Admit implements CachePolicy.
func (p *RuleBasedPolicy) Admit(id string, _ int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.estimator[id]
}

// Touch implements CachePolicy.
func (p *RuleBasedPolicy) Touch(string) {}

// Evicted implements CachePolicy.
func (p *RuleBasedPolicy) Evicted(string) {}
