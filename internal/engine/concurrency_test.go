package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheManagerConcurrentAccess hammers the cache from many
// goroutines; the manager must stay consistent (no panics, accounting
// stays within budget).
func TestCacheManagerConcurrentAccess(t *testing.T) {
	m := NewCacheManager(10_000, NewLRUPolicy())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%40)
				if i%3 == 0 {
					m.Put(key, i, 500)
				} else if i%7 == 0 {
					m.Remove(key)
				} else {
					m.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Used() > 10_000 {
		t.Errorf("cache over budget after concurrent access: %d", m.Used())
	}
	if m.Used() < 0 {
		t.Errorf("negative usage: %d", m.Used())
	}
}

// TestConcurrentMapsShareNoState runs two contexts over the same
// collection concurrently; results must be independent and correct.
func TestConcurrentMapsShareNoState(t *testing.T) {
	items := make([]any, 500)
	for i := range items {
		items[i] = i
	}
	c := FromSlice(items, 8)
	var wg sync.WaitGroup
	results := make([]*Collection, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := NewContext(2)
			results[r] = ctx.Map(c, func(x any) any { return x.(int) * (r + 1) })
		}(r)
	}
	wg.Wait()
	for r, res := range results {
		for i, v := range res.Collect() {
			if v.(int) != i*(r+1) {
				t.Fatalf("run %d corrupted at %d: %v", r, i, v)
			}
		}
	}
}
