package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheManagerConcurrentAccess hammers the cache from many
// goroutines; the manager must stay consistent (no panics, accounting
// stays within budget).
func TestCacheManagerConcurrentAccess(t *testing.T) {
	m := NewCacheManager(10_000, NewLRUPolicy())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%40)
				if i%3 == 0 {
					m.Put(key, i, 500)
				} else if i%7 == 0 {
					m.Remove(key)
				} else {
					m.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Used() > 10_000 {
		t.Errorf("cache over budget after concurrent access: %d", m.Used())
	}
	if m.Used() < 0 {
		t.Errorf("negative usage: %d", m.Used())
	}
}

// TestCacheManagerTinyBudgetChurn drives every policy with a budget so
// small that almost every admission forces evictions, from many
// goroutines mixing Put/Get/Contains/Remove/Clear/Stats — the workload
// the parallel DAG scheduler generates when shared subtrees race for a
// starved cache. Run under -race this exercises every lock path.
func TestCacheManagerTinyBudgetChurn(t *testing.T) {
	policies := map[string]func() CachePolicy{
		"lru":    func() CachePolicy { return NewLRUPolicy() },
		"pinned": func() CachePolicy { return NewPinnedSetPolicy([]string{"k0", "k1", "k2"}) },
		"rule":   func() CachePolicy { return NewRuleBasedPolicy([]string{"k3", "k4"}) },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			const budget = 1200
			m := NewCacheManager(budget, mk())
			var wg sync.WaitGroup
			for g := 0; g < 12; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						key := fmt.Sprintf("k%d", (g*17+i)%8)
						switch i % 11 {
						case 0, 1, 2:
							m.Put(key, i, int64(100+(i%5)*150))
						case 3:
							m.Remove(key)
						case 4:
							m.Contains(key)
						case 5:
							if g == 0 && i%97 == 5 {
								m.Clear()
							} else {
								m.Get(key)
							}
						case 6:
							m.Stats()
							m.Used()
						default:
							m.Get(key)
						}
					}
				}(g)
			}
			wg.Wait()
			if used := m.Used(); used > budget || used < 0 {
				t.Errorf("cache accounting broken after churn: used=%d budget=%d", used, budget)
			}
			hits, misses, _ := m.Stats()
			if hits < 0 || misses < 0 {
				t.Errorf("negative counters: hits=%d misses=%d", hits, misses)
			}
		})
	}
}

// TestCacheManagerContainsDoesNotTouchStats pins the planning-peek
// contract the parallel scheduler relies on: Contains must not count an
// access or disturb LRU recency ordering.
func TestCacheManagerContainsDoesNotTouchStats(t *testing.T) {
	m := NewCacheManager(1000, NewLRUPolicy())
	m.Put("a", 1, 400)
	m.Put("b", 2, 400)
	h0, mi0, _ := m.Stats()
	for i := 0; i < 10; i++ {
		if !m.Contains("a") {
			t.Fatal("Contains lost entry a")
		}
		if m.Contains("zzz") {
			t.Fatal("Contains invented entry zzz")
		}
	}
	h1, mi1, _ := m.Stats()
	if h0 != h1 || mi0 != mi1 {
		t.Errorf("Contains touched stats: hits %d->%d misses %d->%d", h0, h1, mi0, mi1)
	}
	// Recency must be untouched: "a" is still oldest and evicts first.
	m.Put("c", 3, 400)
	if m.Contains("a") {
		t.Error("peeking at a should not have refreshed its recency; a should have been evicted")
	}
	if !m.Contains("b") {
		t.Error("b should have survived the eviction")
	}
}

// TestConcurrentMapsShareNoState runs two contexts over the same
// collection concurrently; results must be independent and correct.
func TestConcurrentMapsShareNoState(t *testing.T) {
	items := make([]any, 500)
	for i := range items {
		items[i] = i
	}
	c := FromSlice(items, 8)
	var wg sync.WaitGroup
	results := make([]*Collection, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := NewContext(2)
			results[r] = ctx.Map(c, func(x any) any { return x.(int) * (r + 1) })
		}(r)
	}
	wg.Wait()
	for r, res := range results {
		for i, v := range res.Collect() {
			if v.(int) != i*(r+1) {
				t.Fatalf("run %d corrupted at %d: %v", r, i, v)
			}
		}
	}
}
