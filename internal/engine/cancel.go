package engine

import (
	"context"
	"fmt"
)

// Canceled is the panic sentinel raised when the context.Context bound to
// an engine Context is done. Execution entry points (core.Executor's
// RunContext, optimizer.OptimizeContext) recover it at their boundary and
// convert it back into an ordinary error, so cancellation unwinds the
// deep recursive evaluation — including estimator fits blocked mid-pass
// inside a Fetch — without threading an error return through every
// operator signature.
type Canceled struct {
	Err error // the underlying context error (context.Canceled or DeadlineExceeded)
}

// Error implements error so a recovered Canceled can be returned directly.
func (c *Canceled) Error() string {
	return fmt.Sprintf("engine: execution canceled: %v", c.Err)
}

// Unwrap exposes the context error for errors.Is(err, context.Canceled).
func (c *Canceled) Unwrap() error { return c.Err }

// AsCanceled extracts the cancellation error from a recovered panic
// value, if that is what it is.
func AsCanceled(r any) (*Canceled, bool) {
	c, ok := r.(*Canceled)
	return c, ok
}

// WithCancellation returns a copy of the Context bound to ctx: collection
// operations check ctx between partition dispatches and panic with
// *Canceled once it is done. The receiver is not modified (Contexts are
// treated as immutable after construction), so one engine Context can be
// shared across concurrent runs with independent cancellation scopes.
func (ctx *Context) WithCancellation(cancelCtx context.Context) *Context {
	if cancelCtx == nil {
		cancelCtx = context.Background()
	}
	c := *ctx
	c.cancel = cancelCtx
	return &c
}

// Err returns the bound context's error, or nil when no cancellable
// context is bound (or it is still live).
func (ctx *Context) Err() error {
	if ctx.cancel == nil {
		return nil
	}
	return ctx.cancel.Err()
}

// CheckCanceled panics with *Canceled if the bound context is done. It is
// the cooperative cancellation point the executor and the collection
// primitives call between units of work; with no bound context it is a
// nil check and costs nothing on the hot path.
func (ctx *Context) CheckCanceled() {
	if ctx.cancel == nil {
		return
	}
	if err := ctx.cancel.Err(); err != nil {
		panic(&Canceled{Err: err})
	}
}
