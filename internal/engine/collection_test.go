package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func ints(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFromSlicePartitioning(t *testing.T) {
	c := FromSlice(ints(10), 3)
	if c.NumPartitions() != 3 {
		t.Fatalf("partitions = %d, want 3", c.NumPartitions())
	}
	if c.Count() != 10 {
		t.Fatalf("count = %d, want 10", c.Count())
	}
	// Partition sizes must differ by at most one.
	sizes := []int{len(c.Partition(0)), len(c.Partition(1)), len(c.Partition(2))}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("unbalanced partition sizes %v", sizes)
		}
	}
	// Order preserved.
	got := c.Collect()
	for i, v := range got {
		if v.(int) != i {
			t.Fatalf("Collect[%d] = %v, want %d", i, v, i)
		}
	}
}

func TestFromSliceEdgeCases(t *testing.T) {
	empty := FromSlice(nil, 4)
	if empty.NumPartitions() != 1 || empty.Count() != 0 {
		t.Errorf("empty: parts=%d count=%d", empty.NumPartitions(), empty.Count())
	}
	// More partitions than items clamps.
	c := FromSlice(ints(2), 10)
	if c.NumPartitions() != 2 {
		t.Errorf("clamped partitions = %d, want 2", c.NumPartitions())
	}
	// Non-positive partition count defaults to 1.
	c = FromSlice(ints(5), 0)
	if c.NumPartitions() != 1 {
		t.Errorf("zero-part partitions = %d, want 1", c.NumPartitions())
	}
}

func TestMapPreservesOrderAndPartitioning(t *testing.T) {
	ctx := NewContext(4)
	c := FromSlice(ints(100), 7)
	doubled := ctx.Map(c, func(x any) any { return x.(int) * 2 })
	if doubled.NumPartitions() != 7 {
		t.Errorf("partitions changed: %d", doubled.NumPartitions())
	}
	for i, v := range doubled.Collect() {
		if v.(int) != 2*i {
			t.Fatalf("Map[%d] = %v, want %d", i, v, 2*i)
		}
	}
}

func TestMapRunsInParallelBounded(t *testing.T) {
	ctx := NewContext(2)
	var inFlight, maxInFlight int64
	c := FromSlice(ints(16), 16)
	ctx.MapPartitions(c, func(p []any) []any {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&maxInFlight)
			if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
				break
			}
		}
		atomic.AddInt64(&inFlight, -1)
		return p
	})
	if got := atomic.LoadInt64(&maxInFlight); got > 2 {
		t.Errorf("max in-flight partitions = %d, want <= 2", got)
	}
}

func TestAggregateTreeSum(t *testing.T) {
	ctx := NewContext(4)
	c := FromSlice(ints(1000), 13)
	sum := ctx.Aggregate(c,
		func() any { return 0 },
		func(acc, item any) any { return acc.(int) + item.(int) },
		func(a, b any) any { return a.(int) + b.(int) },
	)
	if sum.(int) != 999*1000/2 {
		t.Errorf("sum = %v, want %d", sum, 999*1000/2)
	}
}

func TestAggregateEmpty(t *testing.T) {
	ctx := NewContext(2)
	c := FromSlice(nil, 1)
	sum := ctx.Aggregate(c,
		func() any { return 42 },
		func(acc, item any) any { return acc },
		func(a, b any) any { return a },
	)
	if sum.(int) != 42 {
		t.Errorf("empty aggregate = %v, want zero value 42", sum)
	}
}

func TestZip(t *testing.T) {
	ctx := NewContext(4)
	a := FromSlice(ints(10), 3)
	b := ctx.Map(a, func(x any) any { return x.(int) * 10 })
	z := ctx.Zip(a, b, func(x, y any) any { return x.(int) + y.(int) })
	for i, v := range z.Collect() {
		if v.(int) != 11*i {
			t.Fatalf("Zip[%d] = %v, want %d", i, v, 11*i)
		}
	}
}

func TestZipMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on partition mismatch")
		}
	}()
	ctx := NewContext(1)
	ctx.Zip(FromSlice(ints(4), 2), FromSlice(ints(4), 4), func(x, y any) any { return nil })
}

func TestWorkerPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected worker panic to propagate")
		}
	}()
	ctx := NewContext(2)
	ctx.Map(FromSlice(ints(4), 2), func(x any) any {
		if x.(int) == 3 {
			panic("boom")
		}
		return x
	})
}

func TestSample(t *testing.T) {
	c := FromSlice(ints(1000), 8)
	s := c.Sample(100)
	if got := s.Count(); got < 90 || got > 110 {
		t.Errorf("sample size = %d, want ~100", got)
	}
	// Deterministic.
	s2 := c.Sample(100)
	a, b := s.Collect(), s2.Collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling is not deterministic")
		}
	}
	// Oversampling returns the full collection.
	if c.Sample(5000).Count() != 1000 {
		t.Error("oversample did not return all records")
	}
}

func TestTake(t *testing.T) {
	c := FromSlice(ints(10), 4)
	got := c.Take(3)
	if len(got) != 3 || got[0].(int) != 0 || got[2].(int) != 2 {
		t.Errorf("Take(3) = %v", got)
	}
	if len(c.Take(100)) != 10 {
		t.Error("Take beyond size should return all")
	}
}

// Property (testing/quick): Map(identity) == identity regardless of
// partition count and size.
func TestMapIdentityProperty(t *testing.T) {
	ctx := NewContext(3)
	f := func(n uint8, parts uint8) bool {
		items := ints(int(n))
		c := FromSlice(items, int(parts))
		got := ctx.Map(c, func(x any) any { return x }).Collect()
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromPartitionsEdgeCases(t *testing.T) {
	// No partitions at all: normalized to one empty partition so
	// downstream code (executors, dist fetch reassembly) never divides
	// by or iterates over zero partitions.
	empty := FromPartitions(nil)
	if empty.NumPartitions() != 1 || empty.Count() != 0 {
		t.Errorf("nil parts: parts=%d count=%d, want 1/0", empty.NumPartitions(), empty.Count())
	}
	if got := empty.Collect(); len(got) != 0 {
		t.Errorf("nil parts Collect = %v, want empty", got)
	}

	// A mix of nil and empty inner partitions is preserved as-is (the
	// dist layer round-trips partition structure, so normalizing here
	// would silently change lineage) and every primitive tolerates it.
	ctx := NewContext(2)
	c := FromPartitions([][]any{nil, {1, 2}, {}, {3}})
	if c.NumPartitions() != 4 || c.Count() != 3 {
		t.Fatalf("mixed parts: parts=%d count=%d, want 4/3", c.NumPartitions(), c.Count())
	}
	doubled := ctx.Map(c, func(x any) any { return x.(int) * 2 })
	if doubled.NumPartitions() != 4 {
		t.Errorf("Map changed partitioning: %d", doubled.NumPartitions())
	}
	if got := doubled.Collect(); len(got) != 3 || got[0].(int) != 2 || got[2].(int) != 6 {
		t.Errorf("Map over mixed parts = %v", got)
	}
	sum := ctx.Aggregate(c,
		func() any { return 0 },
		func(acc, item any) any { return acc.(int) + item.(int) },
		func(a, b any) any { return a.(int) + b.(int) },
	)
	if sum.(int) != 6 {
		t.Errorf("Aggregate over mixed parts = %v, want 6", sum)
	}
	if got := c.Take(2); len(got) != 2 || got[0].(int) != 1 {
		t.Errorf("Take over mixed parts = %v", got)
	}
}

func TestSingleRecordHighPartitionCount(t *testing.T) {
	// A single-record collection requested at an absurd partition count
	// (keystone's WithPartitions forwards straight to FromSlice) clamps
	// to one partition rather than manufacturing empty shards.
	c := FromSlice(ints(1), 1024)
	if c.NumPartitions() != 1 {
		t.Fatalf("partitions = %d, want 1", c.NumPartitions())
	}
	if c.Count() != 1 || c.Collect()[0].(int) != 0 {
		t.Fatalf("record lost: count=%d", c.Count())
	}
	// Everything downstream still works on the degenerate shape.
	ctx := NewContext(4)
	out := ctx.MapPartitions(c, func(p []any) []any { return append([]any{}, p...) })
	if out.Count() != 1 {
		t.Errorf("MapPartitions count = %d, want 1", out.Count())
	}
	if s := c.Sample(10); s.Count() != 1 {
		t.Errorf("oversample of single record = %d, want 1", s.Count())
	}
}

func TestCancellationMidAggregate(t *testing.T) {
	// Cancel from inside a partition fold: the typed *Canceled sentinel
	// must surface (not a generic worker panic), and partitions not yet
	// dispatched must be skipped.
	cctx, cancel := context.WithCancel(context.Background())
	ctx := NewContext(1).WithCancellation(cctx)
	c := FromSlice(ints(64), 16)
	var folded int64
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected cancellation panic from Aggregate")
		}
		canceled, ok := AsCanceled(r)
		if !ok {
			t.Fatalf("recovered %v, want *Canceled", r)
		}
		if !errors.Is(canceled, context.Canceled) {
			t.Errorf("Unwrap chain does not reach context.Canceled: %v", canceled)
		}
		// Parallelism 1 and cancellation checked between dispatches:
		// after the cancel lands at most the in-flight partition and one
		// more can fold.
		if n := atomic.LoadInt64(&folded); n > 8 {
			t.Errorf("folded %d records after cancel, want early stop", n)
		}
	}()
	ctx.Aggregate(c,
		func() any { return 0 },
		func(acc, item any) any {
			if item.(int) == 2 {
				cancel()
				ctx.CheckCanceled()
			}
			atomic.AddInt64(&folded, 1)
			return acc.(int) + item.(int)
		},
		func(a, b any) any { return a.(int) + b.(int) },
	)
	t.Fatal("Aggregate returned despite cancellation")
}
