package engine

import (
	"sync"
	"testing"
)

func TestSharedCacheComputeOnceThenHit(t *testing.T) {
	s := NewSharedCache(0)
	calls := 0
	compute := func() (any, int64) {
		calls++
		return "value", 5
	}
	v, size, hit := s.GetOrCompute("k", compute)
	if v != "value" || size != 5 || hit {
		t.Fatalf("first GetOrCompute = (%v, %d, %t), want (value, 5, false)", v, size, hit)
	}
	v, size, hit = s.GetOrCompute("k", compute)
	if v != "value" || size != 5 || !hit {
		t.Fatalf("second GetOrCompute = (%v, %d, %t), want (value, 5, true)", v, size, hit)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Computes != 1 || st.Hits != 1 || st.Coalesced != 0 || st.UsedBytes != 5 {
		t.Errorf("stats = %+v, want 1 compute, 1 hit, 0 coalesced, 5 bytes", st)
	}
	if !s.Contains("k") || s.Contains("other") {
		t.Error("Contains misreports stored keys")
	}
}

func TestSharedCacheCoalescesConcurrentDemands(t *testing.T) {
	s := NewSharedCache(0)
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.GetOrCompute("k", func() (any, int64) {
			close(entered)
			<-release
			return 42, 8
		})
	}()
	<-entered // the computer is inside compute; a second demand must wait
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, hit := s.GetOrCompute("k", func() (any, int64) {
			t.Error("second caller computed despite in-flight computation")
			return nil, 0
		})
		if v != 42 || !hit {
			t.Errorf("waiter got (%v, hit=%t), want (42, true)", v, hit)
		}
	}()
	close(release)
	<-done
	wg.Wait()
	// Whether the second demand joined the in-flight computation
	// (coalesced) or landed after the store (hit) depends on goroutine
	// timing; either way exactly one computation ran and one demand was
	// served by reuse.
	st := s.Stats()
	if st.Computes != 1 || st.Coalesced+st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 compute and 1 reuse (hit or coalesced)", st)
	}
}

func TestSharedCachePanicReleasesWaitersToRetry(t *testing.T) {
	s := NewSharedCache(0)
	entered := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		s.GetOrCompute("k", func() (any, int64) {
			close(entered)
			<-release
			panic("fit canceled")
		})
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		// This caller joins the doomed flight, then must retry and
		// compute the value itself.
		v, _, hit := s.GetOrCompute("k", func() (any, int64) { return "recovered", 3 })
		if v != "recovered" || hit {
			t.Errorf("retry got (%v, hit=%t), want (recovered, false)", v, hit)
		}
	}()
	close(release)
	if r := <-panicked; r != "fit canceled" {
		t.Fatalf("computer recovered %v, want the original panic", r)
	}
	<-done
	st := s.Stats()
	if st.Computes != 1 {
		t.Errorf("computes = %d, want 1 (the panicked attempt is not counted)", st.Computes)
	}
	if !s.Contains("k") {
		t.Error("retried value was not stored")
	}
}

func TestSharedCacheBudgetEvictsLRU(t *testing.T) {
	s := NewSharedCache(100)
	s.GetOrCompute("a", func() (any, int64) { return "a", 60 })
	s.GetOrCompute("b", func() (any, int64) { return "b", 30 })
	s.GetOrCompute("a", func() (any, int64) { return "a", 60 }) // refresh a's recency
	s.GetOrCompute("c", func() (any, int64) { return "c", 30 }) // evicts b (oldest)
	if !s.Contains("a") || s.Contains("b") || !s.Contains("c") {
		t.Errorf("after eviction: a=%t b=%t c=%t, want a and c only",
			s.Contains("a"), s.Contains("b"), s.Contains("c"))
	}
	// A value larger than the whole budget is returned but never stored.
	v, _, hit := s.GetOrCompute("huge", func() (any, int64) { return "huge", 200 })
	if v != "huge" || hit || s.Contains("huge") {
		t.Errorf("oversized entry: v=%v hit=%t stored=%t, want computed and dropped", v, hit, s.Contains("huge"))
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}
