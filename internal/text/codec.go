package text

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"keystoneml/internal/core"
)

// vocabularyState is the gob payload behind Vocabulary's StateCodec.
type vocabularyState struct {
	Index map[string]int
	Dim   int
}

// StateKind implements core.StateCodec.
func (v *Vocabulary) StateKind() string { return "model.vocab" }

// EncodeState implements core.StateCodec.
func (v *Vocabulary) EncodeState() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(vocabularyState{Index: v.Index, Dim: v.Dim})
	return buf.Bytes(), err
}

func init() {
	core.RegisterStateDecoder("model.vocab", func(state []byte) (core.TransformOp, error) {
		var s vocabularyState
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
			return nil, err
		}
		return &Vocabulary{Index: s.Index, Dim: s.Dim}, nil
	})

	// The text featurizers are stateless and reconstructible from their
	// names. "text.termfreq" resolves to the Binary weighting — the only
	// weighting reachable through the public pipeline surface; a custom
	// weight function cannot be persisted by name.
	core.RegisterFuncResolver(func(name string) (core.TransformOp, bool) {
		switch name {
		case "text.trim":
			return Trim().Raw(), true
		case "text.lowercase":
			return LowerCase().Raw(), true
		case "text.tokenize":
			return Tokenizer().Raw(), true
		case "text.termfreq":
			return TermFrequency(Binary).Raw(), true
		}
		var lo, hi int
		if n, err := fmt.Sscanf(name, "text.ngrams[%d-%d]", &lo, &hi); n == 2 && err == nil && lo >= 1 && hi >= lo {
			return NGrams(lo, hi).Raw(), true
		}
		return nil, false
	})
}
