package text

import (
	"testing"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

func TestTrimAndLowerCase(t *testing.T) {
	if got := Trim().Raw().Apply("  Hello ").(string); got != "Hello" {
		t.Errorf("Trim = %q", got)
	}
	if got := LowerCase().Raw().Apply("HeLLo").(string); got != "hello" {
		t.Errorf("LowerCase = %q", got)
	}
}

func TestTokenizer(t *testing.T) {
	toks := Tokenizer().Raw().Apply("Hello, world! It's  fine.").([]string)
	want := []string{"Hello", "world", "It", "s", "fine"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
	if got := Tokenizer().Raw().Apply("").([]string); len(got) != 0 {
		t.Errorf("empty doc tokens = %v", got)
	}
}

func TestNGrams(t *testing.T) {
	grams := NGrams(1, 2).Raw().Apply([]string{"a", "b", "c"}).([]string)
	want := []string{"a", "b", "c", "a_b", "b_c"}
	if len(grams) != len(want) {
		t.Fatalf("ngrams = %v", grams)
	}
	for i := range want {
		if grams[i] != want[i] {
			t.Fatalf("ngrams = %v, want %v", grams, want)
		}
	}
}

func TestNGramsInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NGrams(2, 1)
}

func TestTermFrequency(t *testing.T) {
	tf := TermFrequency(nil).Raw().Apply([]string{"a", "b", "a"}).(map[string]float64)
	if tf["a"] != 2 || tf["b"] != 1 {
		t.Errorf("raw counts = %v", tf)
	}
	binary := TermFrequency(Binary).Raw().Apply([]string{"a", "b", "a"}).(map[string]float64)
	if binary["a"] != 1 || binary["b"] != 1 {
		t.Errorf("binary counts = %v", binary)
	}
}

func TestCommonSparseFeatures(t *testing.T) {
	docs := []any{
		map[string]float64{"the": 1, "cat": 1},
		map[string]float64{"the": 1, "dog": 1},
		map[string]float64{"the": 1, "cat": 1, "rare": 1},
	}
	data := engine.FromSlice(docs, 2)
	est := &CommonSparseFeatures{NumFeatures: 2}
	vocab := est.Fit(engine.NewContext(2), func() *engine.Collection { return data }, nil).(*Vocabulary)
	if vocab.Dim != 2 {
		t.Fatalf("vocab dim = %d, want 2", vocab.Dim)
	}
	// "the" (3) and "cat" (2) are the top-2 terms.
	if _, ok := vocab.Index["the"]; !ok {
		t.Error("'the' missing from vocabulary")
	}
	if _, ok := vocab.Index["cat"]; !ok {
		t.Error("'cat' missing from vocabulary")
	}
	if _, ok := vocab.Index["rare"]; ok {
		t.Error("'rare' should not be in a top-2 vocabulary")
	}
	sv := vocab.Apply(map[string]float64{"cat": 1, "rare": 1}).(*linalg.SparseVector)
	if sv.NNZ() != 1 {
		t.Errorf("featurized nnz = %d, want 1 (rare dropped)", sv.NNZ())
	}
	if sv.Dim != 2 {
		t.Errorf("featurized dim = %d", sv.Dim)
	}
}

func TestVocabularyDeterministicTieBreak(t *testing.T) {
	docs := []any{map[string]float64{"b": 1, "a": 1, "c": 1}}
	data := engine.FromSlice(docs, 1)
	fit := func() *Vocabulary {
		return (&CommonSparseFeatures{NumFeatures: 2}).
			Fit(engine.NewContext(1), func() *engine.Collection { return data }, nil).(*Vocabulary)
	}
	v1, v2 := fit(), fit()
	for term, idx := range v1.Index {
		if v2.Index[term] != idx {
			t.Fatal("vocabulary not deterministic under ties")
		}
	}
	// Alphabetical tie-break: a then b.
	if v1.Index["a"] != 0 || v1.Index["b"] != 1 {
		t.Errorf("tie-break order wrong: %v", v1.Index)
	}
}

func TestEndToEndTextPipelineChain(t *testing.T) {
	// The Figure 2 chain composes with compile-time type safety.
	p := core.Input[string]()
	p1 := core.AndThen(p, Trim())
	p2 := core.AndThen(p1, LowerCase())
	p3 := core.AndThen(p2, Tokenizer())
	p4 := core.AndThen(p3, NGrams(1, 2))
	p5 := core.AndThen(p4, TermFrequency(Binary))
	p6 := core.AndThenEstimator(p5, NewCommonSparseFeaturesEst(100))

	docs := []any{" The cat sat ", "the DOG ran", "a cat ran"}
	ex := core.NewExecutor(p6.Graph(), engine.NewContext(2), nil, engine.FromSlice(docs, 2), nil)
	_, out, _ := ex.Run()
	recs := out.Collect()
	if len(recs) != 3 {
		t.Fatalf("output records = %d", len(recs))
	}
	for _, r := range recs {
		if _, ok := r.(*linalg.SparseVector); !ok {
			t.Fatalf("output record type %T, want sparse vector", r)
		}
	}
}
