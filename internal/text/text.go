// Package text implements the text featurization operators of the
// paper's Figure 2 pipeline: Trim, LowerCase, Tokenizer, NGramsFeaturizer,
// TermFrequency, and the CommonSparseFeatures estimator that selects the
// most frequent n-grams as a sparse vocabulary.
package text

import (
	"fmt"
	"sort"
	"strings"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// Trim returns a transformer stripping leading/trailing whitespace.
func Trim() core.Op[string, string] {
	return core.FuncOp("text.trim", strings.TrimSpace)
}

// LowerCase returns a transformer lower-casing documents.
func LowerCase() core.Op[string, string] {
	return core.FuncOp("text.lowercase", strings.ToLower)
}

// Tokenizer returns a transformer splitting documents on whitespace and
// dropping punctuation-only tokens.
func Tokenizer() core.Op[string, []string] {
	return core.FuncOp("text.tokenize", func(doc string) []string {
		fields := strings.FieldsFunc(doc, func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\n' || r == '.' || r == ',' ||
				r == '!' || r == '?' || r == ';' || r == ':' || r == '"' || r == '\''
		})
		out := fields[:0]
		for _, f := range fields {
			if f != "" {
				out = append(out, f)
			}
		}
		return out
	})
}

// NGrams returns a transformer expanding a token sequence into all
// n-grams for n in [lo, hi] (joined with '_'), the NGramsFeaturizer(lo to
// hi) of Figure 2.
func NGrams(lo, hi int) core.Op[[]string, []string] {
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("text: invalid ngram range [%d,%d]", lo, hi))
	}
	name := fmt.Sprintf("text.ngrams[%d-%d]", lo, hi)
	return core.FuncOp(name, func(tokens []string) []string {
		var out []string
		for n := lo; n <= hi; n++ {
			for i := 0; i+n <= len(tokens); i++ {
				out = append(out, strings.Join(tokens[i:i+n], "_"))
			}
		}
		return out
	})
}

// TermFrequency returns a transformer mapping n-grams to (term, weight)
// counts with a caller-supplied weighting function applied to the raw
// count — TermFrequency(x => 1) in Figure 2 is Binary.
func TermFrequency(weight func(count float64) float64) core.Op[[]string, map[string]float64] {
	if weight == nil {
		weight = func(c float64) float64 { return c }
	}
	return core.FuncOp("text.termfreq", func(terms []string) map[string]float64 {
		counts := make(map[string]float64, len(terms))
		for _, t := range terms {
			counts[t]++
		}
		for t, c := range counts {
			counts[t] = weight(c)
		}
		return counts
	})
}

// Binary is the weight function x => 1.
func Binary(float64) float64 { return 1 }

// Vocabulary is the fitted CommonSparseFeatures transformer: maps term-
// frequency maps to sparse vectors over the selected vocabulary.
type Vocabulary struct {
	Index map[string]int
	Dim   int
}

// Name implements core.TransformOp.
func (v *Vocabulary) Name() string { return "model.vocab" }

// Apply implements core.TransformOp.
func (v *Vocabulary) Apply(in any) any {
	tf, ok := in.(map[string]float64)
	if !ok {
		panic(fmt.Sprintf("text: vocabulary expects map[string]float64, got %T", in))
	}
	idx := make([]int, 0, len(tf))
	val := make([]float64, 0, len(tf))
	for term, w := range tf {
		if i, ok := v.Index[term]; ok {
			idx = append(idx, i)
			val = append(val, w)
		}
	}
	return linalg.NewSparseVector(v.Dim, idx, val)
}

// CommonSparseFeatures is the estimator selecting the numFeatures most
// frequent terms across the corpus as the featurization vocabulary
// (CommonSparseFeatures(1e5) in Figure 2). Document frequency is counted
// distributively with one aggregation pass.
type CommonSparseFeatures struct {
	NumFeatures int
}

// Name implements core.EstimatorOp.
func (c *CommonSparseFeatures) Name() string { return "text.commonsparse" }

// Fit implements core.EstimatorOp.
func (c *CommonSparseFeatures) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	coll := data()
	counts := ctx.Aggregate(coll,
		func() any { return make(map[string]float64) },
		func(acc, item any) any {
			m := acc.(map[string]float64)
			for term, w := range item.(map[string]float64) {
				m[term] += w
			}
			return m
		},
		func(a, b any) any {
			x := a.(map[string]float64)
			for term, w := range b.(map[string]float64) {
				x[term] += w
			}
			return x
		},
	).(map[string]float64)

	type tc struct {
		term string
		c    float64
	}
	all := make([]tc, 0, len(counts))
	for t, n := range counts {
		all = append(all, tc{t, n})
	}
	// Sort by count descending, term ascending for determinism.
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].term < all[j].term
	})
	n := c.NumFeatures
	if n <= 0 || n > len(all) {
		n = len(all)
	}
	index := make(map[string]int, n)
	for i := 0; i < n; i++ {
		index[all[i].term] = i
	}
	return &Vocabulary{Index: index, Dim: max(n, 1)}
}

// NewCommonSparseFeaturesEst wraps the estimator with pipeline types: it
// consumes term-frequency maps and emits sparse vectors (typed as `any`
// so sparse records can feed the solver facade).
func NewCommonSparseFeaturesEst(numFeatures int) core.Est[map[string]float64, any] {
	return core.NewEst[map[string]float64, any](&CommonSparseFeatures{NumFeatures: numFeatures})
}
