package image

import (
	"fmt"
	"math"

	"keystoneml/internal/core"
	"keystoneml/internal/cost"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

// GrayscaleOp returns the Grayscale transformer (Table 4's GrayScale).
func GrayscaleOp() core.Op[*Image, *Image] {
	return core.FuncOp("image.grayscale", Grayscale)
}

// SIFTParams configures the dense SIFT-style descriptor extractor.
type SIFTParams struct {
	// CellSize is the spatial bin edge in pixels (default 4; descriptors
	// cover 4x4 cells = 16*CellSize² pixels).
	CellSize int
	// Stride is the sampling step between descriptor centers (default 8).
	Stride int
	// Bins is the number of orientation bins (default 8, giving the
	// classic 4*4*8 = 128-dim descriptor).
	Bins int
}

func (p SIFTParams) withDefaults() SIFTParams {
	if p.CellSize <= 0 {
		p.CellSize = 4
	}
	if p.Stride <= 0 {
		p.Stride = 8
	}
	if p.Bins <= 0 {
		p.Bins = 8
	}
	return p
}

// SIFT extracts dense SIFT-style descriptors from a grayscale image: a
// grid of local gradient-orientation histograms over 4x4 cells, L2
// normalized. It is a faithful-shape substitute for Lowe's SIFT (the
// paper links against an optimized native implementation); the descriptor
// dimensionality (128) and locality structure match.
type SIFT struct {
	Params SIFTParams
}

// Name implements core.TransformOp.
func (s *SIFT) Name() string { return "image.sift" }

// Apply maps *Image -> [][]float64 (one descriptor per grid position).
func (s *SIFT) Apply(in any) any {
	im, ok := in.(*Image)
	if !ok {
		panic(fmt.Sprintf("image: SIFT expects *Image, got %T", in))
	}
	if im.Channels != 1 {
		im = Grayscale(im)
	}
	p := s.Params.withDefaults()
	gx, gy := Gradients(im)
	w, h := im.Width, im.Height
	patch := 4 * p.CellSize
	var descs [][]float64
	for py := 0; py+patch <= h; py += p.Stride {
		for px := 0; px+patch <= w; px += p.Stride {
			desc := make([]float64, 4*4*p.Bins)
			for dy := 0; dy < patch; dy++ {
				for dx := 0; dx < patch; dx++ {
					x, y := px+dx, py+dy
					g, o := gx[y*w+x], gy[y*w+x]
					mag := math.Hypot(g, o)
					if mag == 0 {
						continue
					}
					ang := math.Atan2(o, g) + math.Pi // [0, 2π]
					bin := int(ang / (2 * math.Pi) * float64(p.Bins))
					if bin >= p.Bins {
						bin = p.Bins - 1
					}
					cell := (dy/p.CellSize)*4 + dx/p.CellSize
					desc[cell*p.Bins+bin] += mag
				}
			}
			linalg.Normalize(desc)
			descs = append(descs, desc)
		}
	}
	return descs
}

// NewSIFTOp wraps SIFT with pipeline types.
func NewSIFTOp(params SIFTParams) core.Op[*Image, [][]float64] {
	return core.NewOp[*Image, [][]float64](&SIFT{Params: params})
}

// LCS extracts local color statistic descriptors: per-patch per-channel
// mean and standard deviation on a dense grid, the LCS operator of the
// ImageNet pipeline.
type LCS struct {
	PatchSize int // default 6
	Stride    int // default 8
}

// Name implements core.TransformOp.
func (l *LCS) Name() string { return "image.lcs" }

// Apply maps *Image -> [][]float64.
func (l *LCS) Apply(in any) any {
	im, ok := in.(*Image)
	if !ok {
		panic(fmt.Sprintf("image: LCS expects *Image, got %T", in))
	}
	ps := l.PatchSize
	if ps <= 0 {
		ps = 6
	}
	st := l.Stride
	if st <= 0 {
		st = 8
	}
	var descs [][]float64
	for py := 0; py+ps <= im.Height; py += st {
		for px := 0; px+ps <= im.Width; px += st {
			desc := make([]float64, 2*im.Channels)
			for c := 0; c < im.Channels; c++ {
				var sum, sum2 float64
				for dy := 0; dy < ps; dy++ {
					for dx := 0; dx < ps; dx++ {
						v := im.At(px+dx, py+dy, c)
						sum += v
						sum2 += v * v
					}
				}
				n := float64(ps * ps)
				mean := sum / n
				desc[2*c] = mean
				desc[2*c+1] = math.Sqrt(math.Max(0, sum2/n-mean*mean))
			}
			descs = append(descs, desc)
		}
	}
	return descs
}

// NewLCSOp wraps LCS with pipeline types.
func NewLCSOp(patch, stride int) core.Op[*Image, [][]float64] {
	return core.NewOp[*Image, [][]float64](&LCS{PatchSize: patch, Stride: stride})
}

// ColumnSampler deterministically subsamples a descriptor set to at most
// N entries — the Column Sampler nodes feeding PCA and GMM in the
// Figure 5 DAG.
type ColumnSampler struct {
	N    int
	Seed uint64
}

// Name implements core.TransformOp.
func (c *ColumnSampler) Name() string { return "image.columnsample" }

// Apply maps [][]float64 -> [][]float64.
func (c *ColumnSampler) Apply(in any) any {
	descs, ok := in.([][]float64)
	if !ok {
		panic(fmt.Sprintf("image: ColumnSampler expects [][]float64, got %T", in))
	}
	if c.N <= 0 || len(descs) <= c.N {
		return descs
	}
	rng := linalg.NewRNG(c.Seed + uint64(len(descs)))
	perm := rng.Perm(len(descs))[:c.N]
	out := make([][]float64, c.N)
	for i, p := range perm {
		out[i] = descs[p]
	}
	return out
}

// NewColumnSamplerOp wraps ColumnSampler with pipeline types.
func NewColumnSamplerOp(n int, seed uint64) core.Op[[][]float64, [][]float64] {
	return core.NewOp[[][]float64, [][]float64](&ColumnSampler{N: n, Seed: seed})
}

// Flatten maps a descriptor set to the concatenation of its descriptors —
// used where a pipeline stage needs flat vectors.
func Flatten() core.Op[[][]float64, []float64] {
	return core.FuncOp("image.flatten", func(descs [][]float64) []float64 {
		var out []float64
		for _, d := range descs {
			out = append(out, d...)
		}
		return out
	})
}

// DescriptorPCA applies a fitted projection to every descriptor in a set
// (the ReduceDimensions stage of Figure 5 operates on descriptor sets,
// not flat vectors).
type DescriptorPCA struct {
	Inner core.TransformOp // a pca.Projection
}

// Name implements core.TransformOp.
func (d *DescriptorPCA) Name() string { return "image.descpca[" + d.Inner.Name() + "]" }

// Apply maps [][]float64 -> [][]float64.
func (d *DescriptorPCA) Apply(in any) any {
	descs := in.([][]float64)
	out := make([][]float64, len(descs))
	for i, x := range descs {
		out[i] = d.Inner.Apply(x).([]float64)
	}
	return out
}

// DescriptorPCAEst fits PCA over all descriptors pooled across records and
// produces a DescriptorPCA transform. It wraps any descriptor-level
// estimator fitting on []float64 records.
type DescriptorPCAEst struct {
	Fitter core.EstimatorOp // e.g. *pca.PCA
}

// Name implements core.EstimatorOp.
func (d *DescriptorPCAEst) Name() string { return "image.descpca.est[" + d.Fitter.Name() + "]" }

// Fit implements core.EstimatorOp by flattening descriptor sets into
// descriptor records before fitting the inner estimator.
func (d *DescriptorPCAEst) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	flatten := func() *engine.Collection {
		c := data()
		var items []any
		for _, rec := range c.Collect() {
			for _, desc := range rec.([][]float64) {
				items = append(items, desc)
			}
		}
		return engine.FromSlice(items, c.NumPartitions())
	}
	inner := d.Fitter.Fit(ctx, flatten, labels)
	return &DescriptorPCA{Inner: inner}
}

// Options implements core.Optimizable by delegating to the inner
// estimator's options when it is optimizable, re-wrapping each physical
// choice in the descriptor adapter so the operator-level optimizer can
// pick among PCA implementations behind the descriptor interface.
func (d *DescriptorPCAEst) Options() []cost.Option {
	opt, ok := d.Fitter.(core.Optimizable)
	if !ok {
		return nil
	}
	inner := opt.Options()
	out := make([]cost.Option, len(inner))
	for i, o := range inner {
		est, ok := o.Operator.(core.EstimatorOp)
		if !ok {
			continue
		}
		out[i] = cost.Option{Model: o.Model, Operator: &DescriptorPCAEst{Fitter: est}}
	}
	return out
}

// Weight implements core.Iterative when the inner estimator is iterative.
func (d *DescriptorPCAEst) Weight() int {
	if it, ok := d.Fitter.(core.Iterative); ok {
		return it.Weight()
	}
	return 1
}

// ZCAWhitener is the ZCA whitening estimator of the CIFAR-10 pipeline: it
// fits W = U (Λ + εI)^(-1/2) Uᵀ on flat patch vectors and transforms
// records by centering and rotating.
type ZCAWhitener struct {
	Epsilon float64
}

// Name implements core.EstimatorOp.
func (z *ZCAWhitener) Name() string { return "image.zca" }

// Fit implements core.EstimatorOp on []float64 records.
func (z *ZCAWhitener) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	c := data()
	items := c.Collect()
	if len(items) == 0 {
		panic("image: ZCA on empty input")
	}
	d := len(items[0].([]float64))
	rows := make([][]float64, len(items))
	for i, it := range items {
		rows[i] = it.([]float64)
	}
	m := linalg.NewMatrixFrom(rows)
	mean := m.CenterColumns()
	cov := m.TMul(m).Scale(1 / float64(len(items)))
	vals, u := linalg.SymEig(cov)
	eps := z.Epsilon
	if eps <= 0 {
		eps = 1e-2
	}
	scale := make([]float64, d)
	for i, v := range vals {
		scale[i] = 1 / math.Sqrt(math.Max(v, 0)+eps)
	}
	w := u.Mul(linalg.Diag(scale)).Mul(u.T())
	return &zcaTransform{w: w, mean: mean}
}

type zcaTransform struct {
	w    *linalg.Matrix
	mean []float64
}

func (z *zcaTransform) Name() string { return "model.zca" }

func (z *zcaTransform) Apply(in any) any {
	x := in.([]float64)
	centered := make([]float64, len(x))
	for i, v := range x {
		centered[i] = v - z.mean[i]
	}
	return z.w.MulVec(centered)
}

// SymmetricRectifier maps x to [max(0, x-alpha), max(0, -x-alpha)]
// concatenated — the two-sided ReLU of the CIFAR-10 pipeline.
func SymmetricRectifier(alpha float64) core.Op[[]float64, []float64] {
	name := fmt.Sprintf("image.symrect[%g]", alpha)
	return core.FuncOp(name, func(x []float64) []float64 {
		out := make([]float64, 2*len(x))
		for i, v := range x {
			if v-alpha > 0 {
				out[i] = v - alpha
			}
			if -v-alpha > 0 {
				out[len(x)+i] = -v - alpha
			}
		}
		return out
	})
}

// Pooler sums feature-map activations over a PoolSize x PoolSize spatial
// grid, shrinking an image to (W/Pool) x (H/Pool) with the same channel
// count.
type Pooler struct {
	PoolSize int
}

// Name implements core.TransformOp.
func (p *Pooler) Name() string { return "image.pool" }

// Apply maps *Image -> *Image.
func (p *Pooler) Apply(in any) any {
	im, ok := in.(*Image)
	if !ok {
		panic(fmt.Sprintf("image: Pooler expects *Image, got %T", in))
	}
	ps := p.PoolSize
	if ps <= 0 {
		ps = 2
	}
	ow := im.Width / ps
	oh := im.Height / ps
	if ow == 0 || oh == 0 {
		panic(fmt.Sprintf("image: pool %d too large for %dx%d", ps, im.Width, im.Height))
	}
	out := New(ow, oh, im.Channels)
	for c := 0; c < im.Channels; c++ {
		src := im.Plane(c)
		dst := out.Plane(c)
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var s float64
				for dy := 0; dy < ps; dy++ {
					for dx := 0; dx < ps; dx++ {
						s += src[(y*ps+dy)*im.Width+(x*ps+dx)]
					}
				}
				dst[y*ow+x] = s
			}
		}
	}
	return out
}

// NewPoolerOp wraps Pooler with pipeline types.
func NewPoolerOp(poolSize int) core.Op[*Image, *Image] {
	return core.NewOp[*Image, *Image](&Pooler{PoolSize: poolSize})
}

// ImageToVector flattens an image to a feature vector.
func ImageToVector() core.Op[*Image, []float64] {
	return core.FuncOp("image.tovector", func(im *Image) []float64 {
		out := make([]float64, len(im.Pix))
		copy(out, im.Pix)
		return out
	})
}

// PatchExtractor extracts all PatchSize x PatchSize x C patches at the
// given stride as flat vectors — the CIFAR-10 pipeline's patch source for
// ZCA whitening.
type PatchExtractor struct {
	PatchSize int
	Stride    int
}

// Name implements core.TransformOp.
func (p *PatchExtractor) Name() string { return "image.patches" }

// Apply maps *Image -> [][]float64.
func (p *PatchExtractor) Apply(in any) any {
	im, ok := in.(*Image)
	if !ok {
		panic(fmt.Sprintf("image: PatchExtractor expects *Image, got %T", in))
	}
	ps := p.PatchSize
	if ps <= 0 {
		ps = 6
	}
	st := p.Stride
	if st <= 0 {
		st = ps
	}
	var out [][]float64
	for py := 0; py+ps <= im.Height; py += st {
		for px := 0; px+ps <= im.Width; px += st {
			patch := make([]float64, 0, ps*ps*im.Channels)
			for c := 0; c < im.Channels; c++ {
				for dy := 0; dy < ps; dy++ {
					for dx := 0; dx < ps; dx++ {
						patch = append(patch, im.At(px+dx, py+dy, c))
					}
				}
			}
			out = append(out, patch)
		}
	}
	return out
}

// NewPatchExtractorOp wraps PatchExtractor with pipeline types.
func NewPatchExtractorOp(patch, stride int) core.Op[*Image, [][]float64] {
	return core.NewOp[*Image, [][]float64](&PatchExtractor{PatchSize: patch, Stride: stride})
}

// Windower splits an image into a grid of Window x Window sub-images
// (Table 4's Windower).
type Windower struct {
	Window int
}

// Name implements core.TransformOp.
func (w *Windower) Name() string { return "image.windower" }

// Apply maps *Image -> []*Image.
func (w *Windower) Apply(in any) any {
	im, ok := in.(*Image)
	if !ok {
		panic(fmt.Sprintf("image: Windower expects *Image, got %T", in))
	}
	win := w.Window
	if win <= 0 {
		win = im.Width / 2
	}
	var out []*Image
	for py := 0; py+win <= im.Height; py += win {
		for px := 0; px+win <= im.Width; px += win {
			sub := New(win, win, im.Channels)
			for c := 0; c < im.Channels; c++ {
				for dy := 0; dy < win; dy++ {
					for dx := 0; dx < win; dx++ {
						sub.Set(dx, dy, c, im.At(px+dx, py+dy, c))
					}
				}
			}
			out = append(out, sub)
		}
	}
	return out
}
