package image

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"keystoneml/internal/core"
	"keystoneml/internal/linalg"
)

// gobEncode is the shared helper behind this package's codecs.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(v)
	return buf.Bytes(), err
}

func gobDecode(state []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(state)).Decode(v)
}

// StateKind implements core.StateCodec.
func (s *SIFT) StateKind() string { return "image.sift" }

// EncodeState implements core.StateCodec.
func (s *SIFT) EncodeState() ([]byte, error) { return gobEncode(s.Params) }

// StateKind implements core.StateCodec.
func (l *LCS) StateKind() string { return "image.lcs" }

// lcsState is the gob payload behind LCS's StateCodec.
type lcsState struct{ PatchSize, Stride int }

// EncodeState implements core.StateCodec.
func (l *LCS) EncodeState() ([]byte, error) {
	return gobEncode(lcsState{PatchSize: l.PatchSize, Stride: l.Stride})
}

// StateKind implements core.StateCodec.
func (c *ColumnSampler) StateKind() string { return "image.columnsample" }

// columnSamplerState is the gob payload behind ColumnSampler's StateCodec.
type columnSamplerState struct {
	N    int
	Seed uint64
}

// EncodeState implements core.StateCodec.
func (c *ColumnSampler) EncodeState() ([]byte, error) {
	return gobEncode(columnSamplerState{N: c.N, Seed: c.Seed})
}

// StateKind implements core.StateCodec.
func (d *DescriptorPCA) StateKind() string { return "image.descpca" }

// descPCAState nests the inner projection's encoded form.
type descPCAState struct {
	Kind  string
	State []byte
}

// EncodeState implements core.StateCodec.
func (d *DescriptorPCA) EncodeState() ([]byte, error) {
	kind, state, err := core.EncodeOp(d.Inner)
	if err != nil {
		return nil, err
	}
	return gobEncode(descPCAState{Kind: kind, State: state})
}

// StateKind implements core.StateCodec.
func (z *zcaTransform) StateKind() string { return "model.zca" }

// zcaState is the gob payload behind the fitted ZCA transform's
// StateCodec (the operator's own fields are unexported).
type zcaState struct {
	W    *linalg.Matrix
	Mean []float64
}

// EncodeState implements core.StateCodec.
func (z *zcaTransform) EncodeState() ([]byte, error) {
	return gobEncode(zcaState{W: z.w, Mean: z.mean})
}

// StateKind implements core.StateCodec.
func (p *Pooler) StateKind() string { return "image.pool" }

// poolerState is the gob payload behind Pooler's StateCodec.
type poolerState struct{ PoolSize int }

// EncodeState implements core.StateCodec.
func (p *Pooler) EncodeState() ([]byte, error) {
	return gobEncode(poolerState{PoolSize: p.PoolSize})
}

// StateKind implements core.StateCodec.
func (p *PatchExtractor) StateKind() string { return "image.patches" }

// patchState is the gob payload behind PatchExtractor's StateCodec.
type patchState struct{ PatchSize, Stride int }

// EncodeState implements core.StateCodec.
func (p *PatchExtractor) EncodeState() ([]byte, error) {
	return gobEncode(patchState{PatchSize: p.PatchSize, Stride: p.Stride})
}

// StateKind implements core.StateCodec.
func (w *Windower) StateKind() string { return "image.windower" }

// windowerState is the gob payload behind Windower's StateCodec.
type windowerState struct{ Window int }

// EncodeState implements core.StateCodec.
func (w *Windower) EncodeState() ([]byte, error) {
	return gobEncode(windowerState{Window: w.Window})
}

func init() {
	core.RegisterStateDecoder("image.sift", func(state []byte) (core.TransformOp, error) {
		var p SIFTParams
		if err := gobDecode(state, &p); err != nil {
			return nil, err
		}
		return &SIFT{Params: p}, nil
	})
	core.RegisterStateDecoder("image.lcs", func(state []byte) (core.TransformOp, error) {
		var s lcsState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		return &LCS{PatchSize: s.PatchSize, Stride: s.Stride}, nil
	})
	core.RegisterStateDecoder("image.columnsample", func(state []byte) (core.TransformOp, error) {
		var s columnSamplerState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		return &ColumnSampler{N: s.N, Seed: s.Seed}, nil
	})
	core.RegisterStateDecoder("image.descpca", func(state []byte) (core.TransformOp, error) {
		var s descPCAState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		inner, err := core.DecodeOp(s.Kind, s.State)
		if err != nil {
			return nil, err
		}
		return &DescriptorPCA{Inner: inner}, nil
	})
	core.RegisterStateDecoder("model.zca", func(state []byte) (core.TransformOp, error) {
		var s zcaState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		return &zcaTransform{w: s.W, mean: s.Mean}, nil
	})
	core.RegisterStateDecoder("image.pool", func(state []byte) (core.TransformOp, error) {
		var s poolerState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		return &Pooler{PoolSize: s.PoolSize}, nil
	})
	core.RegisterStateDecoder("image.patches", func(state []byte) (core.TransformOp, error) {
		var s patchState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		return &PatchExtractor{PatchSize: s.PatchSize, Stride: s.Stride}, nil
	})
	core.RegisterStateDecoder("image.windower", func(state []byte) (core.TransformOp, error) {
		var s windowerState
		if err := gobDecode(state, &s); err != nil {
			return nil, err
		}
		return &Windower{Window: s.Window}, nil
	})

	// The pixel-level featurizers are stateless; symrect carries its
	// rectification threshold in the name.
	core.RegisterFuncResolver(func(name string) (core.TransformOp, bool) {
		switch name {
		case "image.grayscale":
			return GrayscaleOp().Raw(), true
		case "image.tovector":
			return ImageToVector().Raw(), true
		case "image.flatten":
			return Flatten().Raw(), true
		}
		var alpha float64
		if n, err := fmt.Sscanf(name, "image.symrect[%g]", &alpha); n == 1 && err == nil {
			return SymmetricRectifier(alpha).Raw(), true
		}
		return nil, false
	})
}
