package image

import (
	"math"
	"testing"
)

func TestImageBasics(t *testing.T) {
	im := New(4, 3, 2)
	im.Set(1, 2, 1, 5.5)
	if im.At(1, 2, 1) != 5.5 {
		t.Error("Set/At mismatch")
	}
	if im.At(1, 2, 0) != 0 {
		t.Error("other channel affected")
	}
	if len(im.Plane(1)) != 12 {
		t.Errorf("plane size = %d", len(im.Plane(1)))
	}
	if im.ByteSize() != 8*24+48 {
		t.Errorf("ByteSize = %d", im.ByteSize())
	}
	c := im.Clone()
	c.Set(0, 0, 0, 9)
	if im.At(0, 0, 0) == 9 {
		t.Error("Clone aliases original")
	}
}

func TestInvalidDimensionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 4, 1)
}

func TestGrayscaleLuminance(t *testing.T) {
	im := New(1, 1, 3)
	im.Set(0, 0, 0, 1) // pure red
	g := Grayscale(im)
	if g.Channels != 1 {
		t.Fatal("not single channel")
	}
	if math.Abs(g.At(0, 0, 0)-0.299) > 1e-12 {
		t.Errorf("red luminance = %g, want 0.299", g.At(0, 0, 0))
	}
	// Single channel passes through unchanged.
	if Grayscale(g) != g {
		t.Error("grayscale of grayscale should be identity")
	}
}

func TestGrayscaleAverageFor4Channels(t *testing.T) {
	im := New(1, 1, 4)
	for c := 0; c < 4; c++ {
		im.Set(0, 0, c, float64(c))
	}
	g := Grayscale(im)
	if math.Abs(g.At(0, 0, 0)-1.5) > 1e-12 {
		t.Errorf("average = %g, want 1.5", g.At(0, 0, 0))
	}
}

func TestGradients(t *testing.T) {
	// Linear ramp in x: gx == 1 in the interior, gy == 0.
	im := New(5, 4, 1)
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x++ {
			im.Set(x, y, 0, float64(x))
		}
	}
	gx, gy := Gradients(im)
	if math.Abs(gx[1*5+2]-1) > 1e-12 {
		t.Errorf("interior gx = %g, want 1", gx[1*5+2])
	}
	for _, v := range gy {
		if math.Abs(v) > 1e-12 {
			t.Errorf("gy = %g, want 0", v)
		}
	}
}

func TestGradientsRequireSingleChannel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Gradients(New(3, 3, 2))
}

func TestNormalize01(t *testing.T) {
	im := New(2, 1, 1)
	im.Pix[0], im.Pix[1] = -2, 6
	Normalize01(im)
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Errorf("normalized = %v", im.Pix)
	}
	flat := New(2, 1, 1)
	flat.Pix[0], flat.Pix[1] = 3, 3
	Normalize01(flat)
	if flat.Pix[0] != 0 || flat.Pix[1] != 0 {
		t.Errorf("constant image normalized to %v, want zeros", flat.Pix)
	}
}
