// Package image provides the image data type and the image-processing
// operators used by the paper's vision pipelines (Table 4): grayscale
// conversion, dense SIFT-style descriptors, local color statistics,
// patch extraction, windowing, ZCA whitening, symmetric rectification and
// spatial pooling.
package image

import (
	"fmt"
	"math"
)

// Image is a planar float64 image: Pix[c*W*H + y*W + x] holds channel c at
// pixel (x, y). Planar layout keeps per-channel convolutions and FFTs
// contiguous.
type Image struct {
	Width, Height, Channels int
	Pix                     []float64
}

// New allocates a zeroed image.
func New(w, h, c int) *Image {
	if w <= 0 || h <= 0 || c <= 0 {
		panic(fmt.Sprintf("image: invalid dimensions %dx%dx%d", w, h, c))
	}
	return &Image{Width: w, Height: h, Channels: c, Pix: make([]float64, w*h*c)}
}

// At returns channel c at (x, y).
func (im *Image) At(x, y, c int) float64 {
	return im.Pix[c*im.Width*im.Height+y*im.Width+x]
}

// Set assigns channel c at (x, y).
func (im *Image) Set(x, y, c int, v float64) {
	im.Pix[c*im.Width*im.Height+y*im.Width+x] = v
}

// Plane returns channel c's pixels as a slice aliasing the image.
func (im *Image) Plane(c int) []float64 {
	n := im.Width * im.Height
	return im.Pix[c*n : (c+1)*n]
}

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	out := New(im.Width, im.Height, im.Channels)
	copy(out.Pix, im.Pix)
	return out
}

// ByteSize implements core.ByteSizer.
func (im *Image) ByteSize() int64 { return int64(8*len(im.Pix)) + 48 }

// String implements fmt.Stringer.
func (im *Image) String() string {
	return fmt.Sprintf("image(%dx%dx%d)", im.Width, im.Height, im.Channels)
}

// Grayscale converts a multi-channel image to one channel using the
// standard luminance weights for 3-channel inputs and a uniform average
// otherwise.
func Grayscale(im *Image) *Image {
	if im.Channels == 1 {
		return im
	}
	out := New(im.Width, im.Height, 1)
	n := im.Width * im.Height
	if im.Channels == 3 {
		r, g, b := im.Plane(0), im.Plane(1), im.Plane(2)
		for i := 0; i < n; i++ {
			out.Pix[i] = 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
		}
		return out
	}
	inv := 1.0 / float64(im.Channels)
	for c := 0; c < im.Channels; c++ {
		p := im.Plane(c)
		for i := 0; i < n; i++ {
			out.Pix[i] += inv * p[i]
		}
	}
	return out
}

// Gradients computes horizontal and vertical central-difference gradients
// of a single-channel image (borders clamped).
func Gradients(im *Image) (gx, gy []float64) {
	if im.Channels != 1 {
		panic("image: Gradients requires a single-channel image")
	}
	w, h := im.Width, im.Height
	gx = make([]float64, w*h)
	gy = make([]float64, w*h)
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return im.Pix[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx[y*w+x] = (at(x+1, y) - at(x-1, y)) / 2
			gy[y*w+x] = (at(x, y+1) - at(x, y-1)) / 2
		}
	}
	return gx, gy
}

// Normalize01 linearly rescales pixel values into [0, 1] in place and
// returns the image. Constant images become all zeros.
func Normalize01(im *Image) *Image {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range im.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		for i := range im.Pix {
			im.Pix[i] = 0
		}
		return im
	}
	inv := 1 / (hi - lo)
	for i := range im.Pix {
		im.Pix[i] = (im.Pix[i] - lo) * inv
	}
	return im
}
