package image

import (
	"math"
	"testing"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
)

func randomImage(seed uint64, w, h, c int) *Image {
	rng := linalg.NewRNG(seed)
	im := New(w, h, c)
	for i := range im.Pix {
		im.Pix[i] = rng.Gaussian()
	}
	return im
}

func TestSIFTDescriptorShape(t *testing.T) {
	im := randomImage(1, 48, 48, 1)
	descs := (&SIFT{}).Apply(im).([][]float64)
	if len(descs) == 0 {
		t.Fatal("no descriptors")
	}
	// Default 4x4 cells x 8 bins = 128 dims; grid (48-16)/8+1 = 5 per axis.
	if len(descs) != 25 {
		t.Errorf("descriptor count = %d, want 25", len(descs))
	}
	for _, d := range descs {
		if len(d) != 128 {
			t.Fatalf("descriptor dim = %d, want 128", len(d))
		}
		if n := linalg.Norm2(d); n > 1+1e-9 {
			t.Fatalf("descriptor norm %g > 1", n)
		}
	}
}

func TestSIFTOrientationSensitivity(t *testing.T) {
	// Horizontal vs vertical stripes must produce different descriptors.
	h := New(32, 32, 1)
	v := New(32, 32, 1)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			h.Set(x, y, 0, float64(y%2))
			v.Set(x, y, 0, float64(x%2))
		}
	}
	dh := (&SIFT{}).Apply(h).([][]float64)[0]
	dv := (&SIFT{}).Apply(v).([][]float64)[0]
	var dist float64
	for i := range dh {
		d := dh[i] - dv[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.5 {
		t.Errorf("orientation not captured: descriptor distance %g", math.Sqrt(dist))
	}
}

func TestSIFTGrayscalesColorInput(t *testing.T) {
	descs := (&SIFT{}).Apply(randomImage(2, 32, 32, 3)).([][]float64)
	if len(descs) == 0 {
		t.Fatal("color input produced no descriptors")
	}
}

func TestLCSStatistics(t *testing.T) {
	// Constant image: std 0, mean = constant.
	im := New(16, 16, 2)
	for i := range im.Plane(1) {
		im.Plane(1)[i] = 3
	}
	descs := (&LCS{PatchSize: 4, Stride: 4}).Apply(im).([][]float64)
	if len(descs) != 16 {
		t.Fatalf("descriptor count = %d, want 16", len(descs))
	}
	for _, d := range descs {
		if len(d) != 4 {
			t.Fatalf("LCS dim = %d, want 4 (2 stats x 2 channels)", len(d))
		}
		if d[0] != 0 || d[1] != 0 || d[2] != 3 || d[3] != 0 {
			t.Fatalf("LCS stats = %v, want [0 0 3 0]", d)
		}
	}
}

func TestColumnSampler(t *testing.T) {
	descs := make([][]float64, 100)
	for i := range descs {
		descs[i] = []float64{float64(i)}
	}
	out := (&ColumnSampler{N: 10, Seed: 1}).Apply(descs).([][]float64)
	if len(out) != 10 {
		t.Fatalf("sampled %d, want 10", len(out))
	}
	// No-op when under the cap.
	out = (&ColumnSampler{N: 200, Seed: 1}).Apply(descs).([][]float64)
	if len(out) != 100 {
		t.Errorf("undersized input resampled to %d", len(out))
	}
	// Deterministic.
	a := (&ColumnSampler{N: 10, Seed: 1}).Apply(descs).([][]float64)
	b := (&ColumnSampler{N: 10, Seed: 1}).Apply(descs).([][]float64)
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestZCAWhitening(t *testing.T) {
	// Correlated 2-D data: after whitening, covariance ≈ identity-ish
	// (up to the epsilon shrinkage).
	rng := linalg.NewRNG(3)
	n := 400
	items := make([]any, n)
	for i := 0; i < n; i++ {
		a := rng.Gaussian()
		items[i] = []float64{a + 0.1*rng.Gaussian(), a + 0.1*rng.Gaussian(), rng.Gaussian()}
	}
	data := engine.FromSlice(items, 2)
	zca := (&ZCAWhitener{Epsilon: 1e-4}).Fit(engine.NewContext(0), func() *engine.Collection { return data }, nil)
	// Compute covariance of whitened output.
	cov := linalg.NewMatrix(3, 3)
	for _, it := range items {
		y := zca.Apply(it).([]float64)
		for i := range y {
			for j := range y {
				cov.Set(i, j, cov.At(i, j)+y[i]*y[j])
			}
		}
	}
	cov.Scale(1 / float64(n))
	if !linalg.Equal(cov, linalg.Identity(3), 0.15) {
		t.Errorf("whitened covariance far from identity:\n%v", cov.Data)
	}
}

func TestSymmetricRectifier(t *testing.T) {
	op := SymmetricRectifier(0.5).Raw()
	out := op.Apply([]float64{2, -2, 0.1}).([]float64)
	want := []float64{1.5, 0, 0, 0, 1.5, 0}
	if len(out) != 6 {
		t.Fatalf("rectified length = %d, want 6", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("rectified = %v, want %v", out, want)
		}
	}
}

func TestPooler(t *testing.T) {
	im := New(4, 4, 1)
	for i := range im.Pix {
		im.Pix[i] = 1
	}
	out := (&Pooler{PoolSize: 2}).Apply(im).(*Image)
	if out.Width != 2 || out.Height != 2 {
		t.Fatalf("pooled shape %v", out)
	}
	for _, v := range out.Pix {
		if v != 4 {
			t.Fatalf("pooled sum = %g, want 4", v)
		}
	}
}

func TestPoolerTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Pooler{PoolSize: 10}).Apply(New(4, 4, 1))
}

func TestPatchExtractor(t *testing.T) {
	im := randomImage(4, 12, 12, 2)
	patches := (&PatchExtractor{PatchSize: 4, Stride: 4}).Apply(im).([][]float64)
	if len(patches) != 9 {
		t.Fatalf("patches = %d, want 9", len(patches))
	}
	if len(patches[0]) != 4*4*2 {
		t.Fatalf("patch dim = %d, want 32", len(patches[0]))
	}
	// First patch first value equals pixel (0,0,0).
	if patches[0][0] != im.At(0, 0, 0) {
		t.Error("patch content misaligned")
	}
}

func TestWindower(t *testing.T) {
	im := randomImage(5, 16, 16, 1)
	subs := (&Windower{Window: 8}).Apply(im).([]*Image)
	if len(subs) != 4 {
		t.Fatalf("windows = %d, want 4", len(subs))
	}
	for _, s := range subs {
		if s.Width != 8 || s.Height != 8 {
			t.Fatalf("window shape %v", s)
		}
	}
	if subs[0].At(0, 0, 0) != im.At(0, 0, 0) {
		t.Error("window content misaligned")
	}
}

func TestFlattenAndImageToVector(t *testing.T) {
	f := Flatten().Raw()
	out := f.Apply([][]float64{{1, 2}, {3}}).([]float64)
	if len(out) != 3 || out[2] != 3 {
		t.Errorf("flattened = %v", out)
	}
	im := randomImage(6, 3, 2, 1)
	v := ImageToVector().Raw().Apply(im).([]float64)
	if len(v) != 6 {
		t.Errorf("vectorized length = %d", len(v))
	}
	// Must be a copy, not an alias.
	v[0] = 999
	if im.Pix[0] == 999 {
		t.Error("ImageToVector aliases the image")
	}
}

func TestDescriptorPCAEst(t *testing.T) {
	rng := linalg.NewRNG(7)
	items := make([]any, 12)
	for i := range items {
		descs := make([][]float64, 5)
		for j := range descs {
			descs[j] = rng.GaussianVector(8)
		}
		items[i] = descs
	}
	data := engine.FromSlice(items, 2)
	est := &DescriptorPCAEst{Fitter: &fakePCA{}}
	tr := est.Fit(engine.NewContext(0), func() *engine.Collection { return data }, nil)
	out := tr.Apply(items[0]).([][]float64)
	if len(out) != 5 || len(out[0]) != 2 {
		t.Fatalf("projected descriptors %dx%d, want 5x2", len(out), len(out[0]))
	}
	if est.Weight() != 1 {
		t.Errorf("non-iterative inner should give weight 1")
	}
	if opts := est.Options(); opts != nil {
		t.Errorf("non-optimizable inner should give nil options")
	}
}

// fakePCA projects onto the first two coordinates.
type fakePCA struct{}

func (fakePCA) Name() string { return "fake.pca" }
func (fakePCA) Fit(ctx *engine.Context, data core.Fetch, labels core.Fetch) core.TransformOp {
	return core.NewTransform("fake.proj", func(in any) any {
		x := in.([]float64)
		return []float64{x[0], x[1]}
	})
}
