// Package metrics provides the evaluation measures reported in Table 5 of
// the paper: classification accuracy, top-k error, and mean average
// precision, plus squared loss for solver convergence comparisons.
package metrics

import (
	"fmt"
	"sort"

	"keystoneml/internal/linalg"
)

// Accuracy returns the fraction of rows where the argmax of scores
// matches the true class index.
func Accuracy(scores [][]float64, truth []int) float64 {
	if len(scores) != len(truth) {
		panic(fmt.Sprintf("metrics: %d score rows vs %d labels", len(scores), len(truth)))
	}
	if len(scores) == 0 {
		return 0
	}
	correct := 0
	for i, s := range scores {
		if linalg.ArgMax(s) == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(scores))
}

// TopKError returns the fraction of rows whose true class is NOT among
// the k highest-scoring classes (Top-5 error for ImageNet in Table 5).
func TopKError(scores [][]float64, truth []int, k int) float64 {
	if len(scores) != len(truth) {
		panic(fmt.Sprintf("metrics: %d score rows vs %d labels", len(scores), len(truth)))
	}
	if len(scores) == 0 {
		return 0
	}
	miss := 0
	for i, s := range scores {
		found := false
		for _, c := range linalg.TopK(s, k) {
			if c == truth[i] {
				found = true
				break
			}
		}
		if !found {
			miss++
		}
	}
	return float64(miss) / float64(len(scores))
}

// MeanAveragePrecision computes macro-averaged AP over classes from
// per-class scores and binary relevance (truth[i] == class), the VOC
// measure in Table 5.
func MeanAveragePrecision(scores [][]float64, truth []int, numClasses int) float64 {
	if len(scores) == 0 || numClasses == 0 {
		return 0
	}
	var sumAP float64
	classes := 0
	for c := 0; c < numClasses; c++ {
		ap, ok := averagePrecision(scores, truth, c)
		if ok {
			sumAP += ap
			classes++
		}
	}
	if classes == 0 {
		return 0
	}
	return sumAP / float64(classes)
}

func averagePrecision(scores [][]float64, truth []int, class int) (float64, bool) {
	type pair struct {
		score float64
		rel   bool
	}
	pairs := make([]pair, len(scores))
	npos := 0
	for i, s := range scores {
		rel := truth[i] == class
		if rel {
			npos++
		}
		pairs[i] = pair{score: s[class], rel: rel}
	}
	if npos == 0 {
		return 0, false
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].score > pairs[b].score })
	var ap float64
	hits := 0
	for i, p := range pairs {
		if p.rel {
			hits++
			ap += float64(hits) / float64(i+1)
		}
	}
	return ap / float64(npos), true
}

// ArgmaxAll converts score rows to predicted class indices.
func ArgmaxAll(scores [][]float64) []int {
	out := make([]int, len(scores))
	for i, s := range scores {
		out[i] = linalg.ArgMax(s)
	}
	return out
}
