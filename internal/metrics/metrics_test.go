package metrics

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	scores := [][]float64{{0.9, 0.1}, {0.2, 0.8}, {0.6, 0.4}}
	truth := []int{0, 1, 1}
	if got := Accuracy(scores, truth); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("accuracy = %g, want 2/3", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Accuracy([][]float64{{1}}, []int{0, 1})
}

func TestTopKError(t *testing.T) {
	scores := [][]float64{
		{0.5, 0.3, 0.2}, // truth 2: not in top-2 -> miss... top2 = {0,1}
		{0.1, 0.2, 0.7}, // truth 2: top1 -> hit
	}
	truth := []int{2, 2}
	if got := TopKError(scores, truth, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("top-2 error = %g, want 0.5", got)
	}
	if got := TopKError(scores, truth, 3); got != 0 {
		t.Errorf("top-3 error = %g, want 0", got)
	}
}

func TestMeanAveragePrecisionPerfectRanking(t *testing.T) {
	// Scores perfectly separate classes: AP = 1 per class.
	scores := [][]float64{{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}}
	truth := []int{0, 0, 1, 1}
	if got := MeanAveragePrecision(scores, truth, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect mAP = %g, want 1", got)
	}
}

func TestMeanAveragePrecisionKnownValue(t *testing.T) {
	// One class, ranking: [rel, non, rel] by score -> AP = (1/1 + 2/3)/2.
	scores := [][]float64{{0.9}, {0.8}, {0.7}}
	truth := []int{0, 5, 0} // class 5 never scored; only class 0 counted
	got := MeanAveragePrecision(scores, truth, 1)
	want := (1.0 + 2.0/3.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mAP = %g, want %g", got, want)
	}
}

func TestMAPSkipsAbsentClasses(t *testing.T) {
	scores := [][]float64{{0.9, 0.5}, {0.1, 0.4}}
	truth := []int{0, 0} // class 1 has no positives
	got := MeanAveragePrecision(scores, truth, 2)
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("mAP = %g, want 1 (class 1 skipped)", got)
	}
}

func TestArgmaxAll(t *testing.T) {
	got := ArgmaxAll([][]float64{{1, 3, 2}, {5, 0, 0}})
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxAll = %v", got)
	}
}

// TestEmptyInputsAreDefinedZero pins the empty-input contract across
// every metric: zero rows yield a defined 0, never NaN from a 0/0
// division. (The guards predate this test; the table keeps them from
// regressing.)
func TestEmptyInputsAreDefinedZero(t *testing.T) {
	cases := []struct {
		name string
		got  float64
	}{
		{"Accuracy/nil", Accuracy(nil, nil)},
		{"Accuracy/empty", Accuracy([][]float64{}, []int{})},
		{"TopKError/nil", TopKError(nil, nil, 5)},
		{"TopKError/empty", TopKError([][]float64{}, []int{}, 1)},
		{"MeanAveragePrecision/nil", MeanAveragePrecision(nil, nil, 3)},
		{"MeanAveragePrecision/empty", MeanAveragePrecision([][]float64{}, []int{}, 3)},
		{"MeanAveragePrecision/zero classes", MeanAveragePrecision([][]float64{{0.5}}, []int{0}, 0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if math.IsNaN(c.got) {
				t.Fatalf("%s = NaN, want defined 0", c.name)
			}
			if c.got != 0 {
				t.Fatalf("%s = %g, want 0", c.name, c.got)
			}
		})
	}
	if out := ArgmaxAll(nil); len(out) != 0 {
		t.Fatalf("ArgmaxAll(nil) = %v, want empty", out)
	}
}
