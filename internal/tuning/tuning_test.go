package tuning

import (
	"testing"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

func searchConfig() Config {
	return Config{
		Optimizer: optimizer.Config{
			Level:       optimizer.LevelPipeline,
			Resources:   cluster.Local(4),
			NumClasses:  6,
			SampleSizes: [2]int{16, 32},
		},
		MinSample: 80,
	}
}

// speechCandidates sweeps the random-feature count: too few features
// underfit, so the search must prefer larger maps.
func speechCandidates() []Candidate {
	var cands []Candidate
	for _, d := range []int{4, 16, 64, 256} {
		d := d
		cands = append(cands, Candidate{
			Name: nameOf(d),
			Build: func() *core.Graph {
				return pipelines.Speech(pipelines.SpeechConfig{
					InputDim: 20, NumFeatures: d, Seed: 7, Iterations: 15,
				}).Graph()
			},
		})
	}
	return cands
}

func nameOf(d int) string {
	return map[int]string{4: "D=4", 16: "D=16", 64: "D=64", 256: "D=256"}[d]
}

func TestSearchPicksBetterConfiguration(t *testing.T) {
	train := workload.DenseVectors(400, 20, 6, 3, 4)
	val := workload.DenseVectors(120, 20, 6, 4, 2)
	results := Search(speechCandidates(), train, val, searchConfig())
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	winner := results[0]
	if winner.Name == "D=4" {
		t.Errorf("search picked the underfit configuration (accuracy %.2f)", winner.Accuracy)
	}
	if winner.Accuracy < 0.7 {
		t.Errorf("winner accuracy %.2f < 0.7", winner.Accuracy)
	}
	// The winner must have survived more rounds than the last-place
	// candidate (successive halving actually halves).
	last := results[len(results)-1]
	if winner.Rounds <= last.Rounds {
		t.Errorf("no early elimination: winner rounds %d vs last %d", winner.Rounds, last.Rounds)
	}
}

func TestSearchSingleCandidate(t *testing.T) {
	train := workload.DenseVectors(150, 20, 6, 3, 2)
	val := workload.DenseVectors(60, 20, 6, 4, 2)
	results := Search(speechCandidates()[:1], train, val, searchConfig())
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Accuracy <= 0 {
		t.Error("single candidate not evaluated")
	}
}

func TestSearchEmpty(t *testing.T) {
	if got := Search(nil, workload.Labeled{}, workload.Labeled{}, Config{}); got != nil {
		t.Errorf("empty search = %v", got)
	}
}
