package tuning

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keystoneml/internal/workload"
)

// TestHalveBoundsConcurrentFits pins the Parallelism contract: at most
// cfg.Parallelism candidates fit at once, and the worker budget is
// divided among the concurrent fits so nested parallelism cannot
// oversubscribe (4 candidates under budget 2 -> 2 at a time, 1 worker
// each; 2 candidates under budget 8 -> both at once, 4 workers each).
func TestHalveBoundsConcurrentFits(t *testing.T) {
	cases := []struct {
		cands, parallelism, wantWorkers int
	}{
		{cands: 4, parallelism: 2, wantWorkers: 1},
		{cands: 2, parallelism: 8, wantWorkers: 4},
		{cands: 3, parallelism: 3, wantWorkers: 1},
	}
	for _, tc := range cases {
		var cur, peak int64
		fit := func(ctx context.Context, r Round, cand, workers int) (float64, error) {
			if workers != tc.wantWorkers && r.Index == 0 {
				t.Errorf("cands=%d P=%d: fit got %d workers, want %d",
					tc.cands, tc.parallelism, workers, tc.wantWorkers)
			}
			n := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond) // let peers overlap
			atomic.AddInt64(&cur, -1)
			return float64(cand), nil
		}
		cfg := Config{Parallelism: tc.parallelism, MinSample: 64}
		if _, err := Halve(context.Background(), tc.cands, 64, cfg, nil, fit); err != nil {
			t.Fatalf("cands=%d P=%d: %v", tc.cands, tc.parallelism, err)
		}
		if got := atomic.LoadInt64(&peak); got > int64(tc.parallelism) {
			t.Errorf("cands=%d P=%d: %d fits ran concurrently", tc.cands, tc.parallelism, got)
		}
		atomic.StoreInt64(&peak, 0)
	}
}

// TestHalveCancelBetweenRounds cancels after round 0 completes: round 1
// must dispatch no fits and the context error must surface.
func TestHalveCancelBetweenRounds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fits int64
	fit := func(ctx context.Context, r Round, cand, workers int) (float64, error) {
		if r.Index > 0 {
			t.Errorf("candidate %d fitted in round %d after cancellation", cand, r.Index)
		}
		atomic.AddInt64(&fits, 1)
		return float64(cand), nil
	}
	roundStart := func(r Round) {
		if r.Index == 1 {
			cancel()
		}
	}
	// 4 candidates over 256 records from MinSample 64 would run 3 rounds.
	_, err := Halve(ctx, 4, 256, Config{Parallelism: 2, MinSample: 64}, roundStart, fit)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&fits); got != 4 {
		t.Errorf("%d fits ran, want exactly round 0's 4", got)
	}
}

// TestHalveCancelMidFit cancels while fits are in flight: in-flight fits
// observe ctx and unwind, no further candidates dispatch, and Halve
// returns only after every dispatched fit has finished (no leaks).
func TestHalveCancelMidFit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 8)
	var running, dispatched int64
	fit := func(ctx context.Context, r Round, cand, workers int) (float64, error) {
		atomic.AddInt64(&dispatched, 1)
		atomic.AddInt64(&running, 1)
		defer atomic.AddInt64(&running, -1)
		started <- struct{}{}
		<-ctx.Done() // a long fit observing cooperative cancellation
		return 0, ctx.Err()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var outcomes []Outcome
	var err error
	go func() {
		defer wg.Done()
		outcomes, err = Halve(ctx, 6, 256, Config{Parallelism: 2, MinSample: 64}, nil, fit)
	}()
	<-started
	<-started // both worker slots occupied mid-fit
	cancel()
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if outcomes != nil {
		t.Error("canceled search returned partial outcomes")
	}
	if got := atomic.LoadInt64(&running); got != 0 {
		t.Errorf("%d fits still running after Halve returned", got)
	}
	if got := atomic.LoadInt64(&dispatched); got > 3 {
		// 2 in flight when canceled; at most one more could slip through
		// the dispatch race before the loop observes ctx.
		t.Errorf("%d fits dispatched after mid-fit cancel, want <= 3", got)
	}
}

// TestHalveRetainsBestCandidate is the property test: whenever candidate
// quality gaps exceed the per-round noise, successive halving must
// return the truly-best candidate first, across candidate counts, eta
// values and noise phases.
func TestHalveRetainsBestCandidate(t *testing.T) {
	for _, numCands := range []int{2, 3, 5, 8, 13} {
		for _, eta := range []int{2, 3} {
			for phase := 0; phase < 3; phase++ {
				best := (numCands*7 + phase) % numCands
				fit := func(ctx context.Context, r Round, cand, workers int) (float64, error) {
					// Quality is spaced 0.05 apart with best on top;
					// deterministic per-round "noise" wiggles scores by
					// < 0.02, below the gap.
					quality := 0.9 - 0.05*float64((cand-best+numCands)%numCands)
					noise := 0.02 * float64((cand*31+r.Index*17+phase*7)%100) / 100
					return quality + noise, nil
				}
				cfg := Config{Eta: eta, MinSample: 16, Parallelism: 4}
				outcomes, err := Halve(context.Background(), numCands, 256, cfg, nil, fit)
				if err != nil {
					t.Fatal(err)
				}
				if outcomes[0].Index != best {
					t.Errorf("cands=%d eta=%d phase=%d: winner %d, want %d",
						numCands, eta, phase, outcomes[0].Index, best)
				}
				if outcomes[0].Rounds != len(outcomes[0].Scores) {
					t.Errorf("rounds %d != trajectory length %d",
						outcomes[0].Rounds, len(outcomes[0].Scores))
				}
			}
		}
	}
}

// TestSearchContextPreCanceled: a canceled context fails fast without
// fitting anything.
func TestSearchContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	train := workload.DenseVectors(100, 20, 6, 3, 2)
	val := workload.DenseVectors(40, 20, 6, 4, 2)
	results, err := SearchContext(ctx, speechCandidates()[:2], train, val, searchConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Error("pre-canceled search returned results")
	}
}
