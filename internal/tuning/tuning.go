// Package tuning implements the hyperparameter search the paper lists as
// future work (Section 7, citing the authors' TuPAQ system): grid search
// over pipeline configurations with successive halving, reusing the
// optimizer's sampling machinery so candidate configurations are
// evaluated on growing data fractions and losers are eliminated early.
//
// The round structure lives in Halve, a generic driver over an abstract
// fit function: the graph-level Search here and the public keystone/tune
// subsystem both run on it, so round accounting, the concurrency bound
// and cancellation semantics exist exactly once.
package tuning

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/workload"
)

// Candidate is one hyperparameter configuration: a name and a pipeline
// builder. Builders must be pure (safe to call repeatedly).
type Candidate struct {
	Name  string
	Build func() *core.Graph
}

// Config parameterizes the search.
type Config struct {
	// Optimizer is applied to every candidate before fitting.
	Optimizer optimizer.Config
	// Eta is the halving rate: each round keeps 1/Eta of candidates
	// (default 2).
	Eta int
	// MinSample is the training subset size of the first round (default
	// 64); each round multiplies it by Eta until the full set is used.
	MinSample int
	// Parallelism is the total worker budget for the search: at most
	// this many candidates fit concurrently, and the budget is divided
	// between them so nested fits never oversubscribe the machine
	// (a round of 4 candidates under Parallelism 8 runs 4 fits with 2
	// workers each). 0 = NumCPU.
	Parallelism int
}

func (c Config) eta() int {
	if c.Eta >= 2 {
		return c.Eta
	}
	return 2
}

func (c Config) minSample() int {
	if c.MinSample > 0 {
		return c.MinSample
	}
	return 64
}

func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// Round describes one successive-halving round to the fit function.
type Round struct {
	// Index is the 0-based round number.
	Index int
	// N is the training-subset size candidates see this round.
	N int
	// Alive lists the candidate indices fitting this round.
	Alive []int
}

// FitFunc fits one candidate on a round's training subset and returns
// its validation score (higher is better). workers is the portion of the
// search's parallelism budget granted to this fit; implementations must
// bound their own execution by it. A FitFunc observing ctx done should
// return ctx.Err() promptly — the driver stops dispatching and surfaces
// the error.
type FitFunc func(ctx context.Context, r Round, cand, workers int) (float64, error)

// Outcome is one candidate's record from a Halve run.
type Outcome struct {
	// Index is the candidate's position in the caller's candidate list.
	Index int
	// Scores holds the candidate's validation score after every round it
	// participated in (Scores[r] is round r's score).
	Scores []float64
	// Rounds is the number of rounds survived (== len(Scores)).
	Rounds int
	// TrainTime is total wall time spent fitting this candidate.
	TrainTime time.Duration
}

// Score returns the candidate's final (largest-subset) score, or 0 if it
// never completed a round.
func (o Outcome) Score() float64 {
	if len(o.Scores) == 0 {
		return 0
	}
	return o.Scores[len(o.Scores)-1]
}

// Halve runs successive halving over numCands candidates whose training
// set holds fullN records: every round fits the surviving candidates on
// a subset (MinSample records, growing by Eta per round), scores them,
// and keeps the top 1/Eta, until the survivors have fitted the full set.
// Fits within a round run concurrently, bounded by cfg.Parallelism, with
// the worker budget divided evenly among them.
//
// roundStart, if non-nil, runs before each round's fits are dispatched
// (keystone/tune uses it to scope a fresh shared prefix cache to the
// round's training subset). Cancellation is clean at both grains: ctx
// done between rounds starts no further round, and ctx done mid-round
// stops dispatching, waits for in-flight fits to unwind, and returns the
// context error. The first fit error likewise aborts the search.
//
// Outcomes are returned best-first: by rounds survived, then final
// score, then candidate order.
func Halve(ctx context.Context, numCands, fullN int, cfg Config, roundStart func(Round), fit FitFunc) ([]Outcome, error) {
	if numCands == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	outcomes := make([]Outcome, numCands)
	for i := range outcomes {
		outcomes[i].Index = i
	}
	alive := make([]int, numCands)
	for i := range alive {
		alive[i] = i
	}
	budget := cfg.parallelism()
	sampleN := cfg.minSample()
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err // cancel between rounds: no new round starts
		}
		n := min(sampleN, fullN)
		r := Round{Index: round, N: n, Alive: append([]int(nil), alive...)}
		if roundStart != nil {
			roundStart(r)
		}
		conc := min(len(alive), budget)
		perFit := max(1, budget/conc)
		sem := make(chan struct{}, conc)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for _, idx := range alive {
			mu.Lock()
			abort := firstErr != nil
			mu.Unlock()
			if abort || ctx.Err() != nil {
				break // mid-round cancel/failure: abandon the rest
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				score, err := fit(ctx, r, idx, perFit)
				mu.Lock()
				defer mu.Unlock()
				outcomes[idx].TrainTime += time.Since(start)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				outcomes[idx].Scores = append(outcomes[idx].Scores, score)
				outcomes[idx].Rounds = round + 1
			}(idx)
		}
		wg.Wait() // no leaked fits: every dispatched fit unwinds here
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sort.SliceStable(alive, func(a, b int) bool {
			return outcomes[alive[a]].Score() > outcomes[alive[b]].Score()
		})
		if n >= fullN {
			break // survivors have seen the full training set
		}
		keep := max(1, len(alive)/cfg.eta())
		alive = alive[:keep]
		sampleN *= cfg.eta()
	}
	sort.SliceStable(outcomes, func(a, b int) bool {
		if outcomes[a].Rounds != outcomes[b].Rounds {
			return outcomes[a].Rounds > outcomes[b].Rounds
		}
		return outcomes[a].Score() > outcomes[b].Score()
	})
	return outcomes, nil
}

// Result describes one evaluated candidate.
type Result struct {
	Name string
	// Index is the candidate's position in the Search candidate list.
	Index    int
	Accuracy float64 // on the validation set, final round it survived
	Rounds   int     // rounds survived
	// Trajectory holds the per-round validation accuracies.
	Trajectory []float64
	TrainTime  time.Duration
}

// Search runs successive halving over graph-level candidates and returns
// results sorted best-first. It is SearchContext without cancellation.
func Search(cands []Candidate, train, val workload.Labeled, cfg Config) []Result {
	results, err := SearchContext(context.Background(), cands, train, val, cfg)
	if err != nil {
		// Only cancellation or a fit error can fail the search, and the
		// background context never cancels; a fit failure panics through
		// (matching Optimize/Execute, whose panics Search never caught).
		panic(fmt.Sprintf("tuning: search failed: %v", err))
	}
	return results
}

// SearchContext runs successive halving: all candidates train on a small
// subsample, are scored on the validation set, and only the top 1/Eta
// advance to a subsample Eta times larger, until the survivors have seen
// the full training set. Candidates within a round fit concurrently
// under cfg.Parallelism. Cancellation aborts cleanly between rounds or
// mid-fit; the partial results are discarded and ctx's error returned.
func SearchContext(ctx context.Context, cands []Candidate, train, val workload.Labeled, cfg Config) ([]Result, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	fit := func(ctx context.Context, r Round, cand, workers int) (float64, error) {
		data := train.Data.Sample(r.N)
		labels := train.Labels.Sample(r.N)
		g := cands[cand].Build()
		oc := cfg.Optimizer
		oc.Parallelism = workers
		plan, err := optimizer.OptimizeContext(ctx, g, data, labels, oc)
		if err != nil {
			return 0, err
		}
		models, _, _, err := plan.ExecuteContext(ctx, data, labels, workers, plan.DefaultCache(0))
		if err != nil {
			return 0, err
		}
		fitted := core.NewFitted(g, models, engine.NewContext(workers))
		return evaluate(fitted, val), nil
	}
	outcomes, err := Halve(ctx, len(cands), train.Data.Count(), cfg, nil, fit)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(outcomes))
	for i, o := range outcomes {
		out[i] = Result{
			Name:       cands[o.Index].Name,
			Index:      o.Index,
			Accuracy:   o.Score(),
			Rounds:     o.Rounds,
			Trajectory: o.Scores,
			TrainTime:  o.TrainTime,
		}
	}
	return out, nil
}

func evaluate(fitted *core.Fitted, val workload.Labeled) float64 {
	recs := fitted.Apply(val.Data).Collect()
	scores := make([][]float64, len(recs))
	for i, r := range recs {
		s, ok := r.([]float64)
		if !ok {
			panic(fmt.Sprintf("tuning: pipeline output %T is not a score vector", r))
		}
		scores[i] = s
	}
	return metrics.Accuracy(scores, val.Truth)
}
