// Package tuning implements the hyperparameter search the paper lists as
// future work (Section 7, citing the authors' TuPAQ system): grid search
// over pipeline configurations with successive halving, reusing the
// optimizer's sampling machinery so candidate configurations are
// evaluated on growing data fractions and losers are eliminated early.
package tuning

import (
	"fmt"
	"sort"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/workload"
)

// Candidate is one hyperparameter configuration: a name and a pipeline
// builder. Builders must be pure (safe to call repeatedly).
type Candidate struct {
	Name  string
	Build func() *core.Graph
}

// Config parameterizes the search.
type Config struct {
	// Optimizer is applied to every candidate before fitting.
	Optimizer optimizer.Config
	// Eta is the halving rate: each round keeps 1/Eta of candidates
	// (default 2).
	Eta int
	// MinSample is the training subset size of the first round (default
	// 64); each round multiplies it by Eta until the full set is used.
	MinSample int
	// Parallelism bounds execution; 0 = NumCPU.
	Parallelism int
}

func (c Config) eta() int {
	if c.Eta >= 2 {
		return c.Eta
	}
	return 2
}

func (c Config) minSample() int {
	if c.MinSample > 0 {
		return c.MinSample
	}
	return 64
}

// Result describes one evaluated candidate.
type Result struct {
	Name      string
	Accuracy  float64 // on the validation set, final round it survived
	Rounds    int     // rounds survived
	TrainTime time.Duration
}

// Search runs successive halving: all candidates train on a small
// subsample, are scored on the validation set, and only the top 1/Eta
// advance to a subsample Eta times larger, until one candidate has seen
// the full training set. It returns results sorted best-first.
func Search(cands []Candidate, train, val workload.Labeled, cfg Config) []Result {
	if len(cands) == 0 {
		return nil
	}
	type state struct {
		cand   Candidate
		result Result
	}
	alive := make([]*state, len(cands))
	for i, c := range cands {
		alive[i] = &state{cand: c, result: Result{Name: c.Name}}
	}
	var finished []*state
	sampleN := cfg.minSample()
	fullN := train.Data.Count()
	round := 0
	for len(alive) > 0 {
		n := min(sampleN, fullN)
		data := train.Data.Sample(n)
		labels := train.Labels.Sample(n)
		for _, s := range alive {
			s.result.Rounds = round + 1
			g := s.cand.Build()
			start := time.Now()
			oc := cfg.Optimizer
			oc.Parallelism = cfg.Parallelism
			plan := optimizer.Optimize(g, data, labels, oc)
			models, _, _ := plan.Execute(data, labels, cfg.Parallelism)
			s.result.TrainTime += time.Since(start)
			fitted := core.NewFitted(g, models, engine.NewContext(cfg.Parallelism))
			s.result.Accuracy = evaluate(fitted, val)
		}
		sort.Slice(alive, func(a, b int) bool {
			return alive[a].result.Accuracy > alive[b].result.Accuracy
		})
		if n >= fullN || len(alive) == 1 {
			finished = append(finished, alive...)
			break
		}
		keep := max(1, len(alive)/cfg.eta())
		finished = append(finished, alive[keep:]...)
		alive = alive[:keep]
		sampleN *= cfg.eta()
		round++
	}
	sort.Slice(finished, func(a, b int) bool {
		if finished[a].result.Rounds != finished[b].result.Rounds {
			return finished[a].result.Rounds > finished[b].result.Rounds
		}
		return finished[a].result.Accuracy > finished[b].result.Accuracy
	})
	out := make([]Result, len(finished))
	for i, s := range finished {
		out[i] = s.result
	}
	return out
}

func evaluate(fitted *core.Fitted, val workload.Labeled) float64 {
	recs := fitted.Apply(val.Data).Collect()
	scores := make([][]float64, len(recs))
	for i, r := range recs {
		s, ok := r.([]float64)
		if !ok {
			panic(fmt.Sprintf("tuning: pipeline output %T is not a score vector", r))
		}
		scores[i] = s
	}
	return metrics.Accuracy(scores, val.Truth)
}
