// Quickstart: the Figure 2 text-classification pipeline on a synthetic
// review corpus, built and fit entirely through the public keystone
// package — the type-safe chainable builder, the context-aware Fit with
// functional options, and the concurrency-safe fitted artifact's
// single-record serving path.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"keystoneml/keystone"
)

func main() {
	// 1. Build the pipeline exactly as in the paper's Figure 2:
	//    Trim andThen LowerCase andThen Tokenizer andThen
	//    NGramsFeaturizer(1 to 2) andThen TermFrequency(x => 1) andThen
	//    (CommonSparseFeatures(1e5), data) andThen (LinearSolver(), data, labels)
	p := keystone.Input[string]().
		Then(keystone.Trim()).
		Then(keystone.LowerCase())
	tokens := keystone.Then(p, keystone.Tokenizer()).
		Then(keystone.NGrams(1, 2))
	freqs := keystone.Then(tokens, keystone.TermFrequency())
	features := keystone.ThenEstimator(freqs, keystone.CommonSparseFeatures(5000))
	classifier := keystone.ThenEstimator(features, keystone.LogisticRegression(25))

	// 2. Generate training and test corpora (synthetic Amazon-style
	//    binary sentiment reviews).
	train := keystone.SyntheticReviews(1000, 1)
	test := keystone.SyntheticReviews(250, 2)

	// 3. Fit: one call runs the whole-pipeline optimizer (operator
	//    selection + CSE + automatic materialization) and trains. The
	//    context cancels mid-fit on Ctrl-C-style shutdowns.
	fitted, err := classifier.Fit(context.Background(), train.Records, train.Labels)
	if err != nil {
		log.Fatalf("fit: %v", err)
	}
	info := fitted.Info()
	fmt.Printf("optimization took %v; CSE merged %d nodes; caching %d intermediates\n",
		info.OptimizeTime, info.CSEMerged, len(info.Cached))
	for node, op := range info.Chosen {
		fmt.Printf("  %s -> %s\n", node, op)
	}
	fmt.Printf("training took %v\n", info.TrainTime)

	// 4. Predict on held-out reviews.
	scores, err := fitted.TransformBatch(context.Background(), test.Records)
	if err != nil {
		log.Fatalf("predict: %v", err)
	}
	fmt.Printf("test accuracy: %.1f%%\n", 100*keystone.Accuracy(scores, test.Truth))

	// 5. Score a single new document on the serving hot path.
	pred, err := fitted.Transform(context.Background(),
		"this product is excellent and works perfectly")
	if err != nil {
		log.Fatalf("transform: %v", err)
	}
	label := "negative"
	if pred[1] > pred[0] {
		label = "positive"
	}
	fmt.Printf("\"this product is excellent and works perfectly\" -> %s\n", label)
}
