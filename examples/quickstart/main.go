// Quickstart: the Figure 2 text-classification pipeline on a synthetic
// review corpus, demonstrating the type-safe pipeline construction API,
// full optimization, and application of the fitted pipeline to new data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/solvers"
	"keystoneml/internal/text"
	"keystoneml/internal/workload"
)

func main() {
	// 1. Build the pipeline exactly as in the paper's Figure 2:
	//    Trim andThen LowerCase andThen Tokenizer andThen
	//    NGramsFeaturizer(1 to 2) andThen TermFrequency(x => 1) andThen
	//    (CommonSparseFeatures(1e5), data) andThen (LinearSolver(), data, labels)
	pipe := core.Input[string]()
	p1 := core.AndThen(pipe, text.Trim())
	p2 := core.AndThen(p1, text.LowerCase())
	p3 := core.AndThen(p2, text.Tokenizer())
	p4 := core.AndThen(p3, text.NGrams(1, 2))
	p5 := core.AndThen(p4, text.TermFrequency(text.Binary))
	p6 := core.AndThenEstimator(p5, text.NewCommonSparseFeaturesEst(5000))
	classifier := core.AndThenLabeledEstimator(p6,
		core.NewLabeledEst[any, []float64](&solvers.LogisticRegression{Iterations: 25}))

	// 2. Generate training and test corpora (synthetic Amazon-style
	//    binary sentiment reviews).
	train := workload.AmazonReviews(1000, 1, 8)
	test := workload.AmazonReviews(250, 2, 4)

	// 3. Optimize: operator selection + CSE + automatic materialization.
	plan := optimizer.Optimize(classifier.Graph(), train.Data, train.Labels, optimizer.Config{
		Level:      optimizer.LevelFull,
		Resources:  cluster.Local(8),
		NumClasses: train.Classes,
	})
	fmt.Printf("optimization took %v; CSE merged %d nodes; caching %d intermediates\n",
		plan.OptimizeTime, plan.CSEMerged, len(plan.CacheSet))
	for node, op := range plan.Chosen {
		fmt.Printf("  node #%d -> %s\n", node, op)
	}

	// 4. Train.
	models, _, report := plan.Execute(train.Data, train.Labels, 0)
	fmt.Printf("training took %v\n", report.Total)

	// 5. Predict on held-out reviews.
	fitted := core.NewFitted(classifier.Graph(), models, engine.NewContext(0))
	out := fitted.Apply(test.Data).Collect()
	scores := make([][]float64, len(out))
	for i, r := range out {
		scores[i] = r.([]float64)
	}
	fmt.Printf("test accuracy: %.1f%%\n", 100*metrics.Accuracy(scores, test.Truth))

	// 6. Score a single new document.
	pred := fitted.ApplyOne("this product is excellent and works perfectly").([]float64)
	label := "negative"
	if pred[1] > pred[0] {
		label = "positive"
	}
	fmt.Printf("\"this product is excellent and works perfectly\" -> %s\n", label)
}
