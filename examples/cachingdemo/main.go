// Caching demo: shows the automatic materialization optimizer (Section
// 4.3, Algorithm 1) at work. A branching image pipeline is executed with
// (a) no caching, (b) the greedy KeystoneML cache set, and (c) an LRU
// cache, under a tight memory budget, printing per-node recompute counts
// so the effect of each policy is visible.
//
//	go run ./examples/cachingdemo
package main

import (
	"fmt"
	"sort"
	"time"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

func main() {
	train := workload.Images(48, 64, 3, 4, 40, 4)
	build := func() *core.Graph {
		return pipelines.Vision(pipelines.VisionConfig{
			PCADims: 12, GMMComponents: 16, SampleDescs: 20, Seed: 9,
			Iterations: 25, WithLCS: true,
		}).Graph()
	}

	// Plan once to get the profile and the greedy cache set.
	gPlan := build()
	plan := optimizer.Optimize(gPlan, train.Data, train.Labels, optimizer.Config{
		Level:      optimizer.LevelPipeline,
		Resources:  cluster.Local(8),
		NumClasses: train.Classes,
	})
	var totalBytes int64
	for _, np := range plan.Profile.Nodes {
		totalBytes += np.SizeBytes
	}
	budget := totalBytes / 20 // a 5% budget: painful but not hopeless
	fmt.Printf("estimated intermediate state: %.1f MB; cache budget: %.1f MB\n\n",
		float64(totalBytes)/1e6, float64(budget)/1e6)

	run := func(name string, cache *engine.CacheManager) {
		g := build()
		// The sequential oracle (workers=1) keeps the recompute counts
		// below deterministic — the parallel scheduler coalesces shared
		// branches, which is faster but machine-dependent.
		ex := core.NewExecutor(g, engine.NewContext(0), cache, train.Data, train.Labels).SetWorkers(1)
		start := time.Now()
		_, _, report := ex.Run()
		fmt.Printf("%-22s %8v\n", name, time.Since(start).Round(time.Millisecond))
		type row struct {
			id int
			s  *core.NodeStats
		}
		var rows []row
		for id, s := range report.Nodes {
			if s.Computes > 1 {
				rows = append(rows, row{id, s})
			}
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].s.Computes > rows[b].s.Computes })
		for _, r := range rows {
			fmt.Printf("    recomputed %2dx: %s\n", r.s.Computes, r.s.Name)
		}
		fmt.Println()
	}

	run("no caching", nil)

	gGreedy := build()
	greedyPlan := optimizer.Optimize(gGreedy, train.Data, train.Labels, optimizer.Config{
		Level:          optimizer.LevelPipeline,
		Resources:      cluster.Local(8),
		NumClasses:     train.Classes,
		MemBudgetBytes: budget,
	})
	fmt.Printf("greedy cache set under budget: %v\n", greedyPlan.CacheSet)
	run("keystoneml (greedy)", engine.NewCacheManager(budget,
		engine.NewPinnedSetPolicy(optimizer.CacheKeys(greedyPlan.CacheSet))))

	run("lru", engine.NewCacheManager(budget, engine.NewLRUPolicy()))
}
