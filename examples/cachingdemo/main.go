// Caching demo: shows the automatic materialization optimizer (Section
// 4.3, Algorithm 1) at work through the public options API. A branching
// image pipeline is fit with (a) no caching, (b) the greedy KeystoneML
// cache set, and (c) an LRU cache, under a tight memory budget, printing
// per-operator recompute counts so the effect of each policy is visible.
//
//	go run ./examples/cachingdemo
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"keystoneml/keystone"
)

func main() {
	train := keystone.SyntheticImages(48, 64, 3, 4, 40)
	pipe := keystone.VisionPipeline(keystone.VisionConfig{
		PCADims: 12, GMMComponents: 16, SampleDescs: 20, Seed: 9,
		Iterations: 25, WithLCS: true,
	})

	run := func(name string, policy keystone.CachePolicy, budget int64) *keystone.Fitted[*keystone.Image, []float64] {
		// workers=1 keeps the recompute counts below deterministic — the
		// parallel scheduler coalesces shared branches, which is faster
		// but machine-dependent.
		fitted, err := pipe.Fit(context.Background(), train.Records, train.Labels,
			keystone.WithOptimizerLevel(keystone.LevelPipeline),
			keystone.WithWorkers(1),
			keystone.WithCachePolicy(policy),
			keystone.WithCacheBudget(budget))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s %8v\n", name, fitted.Info().TrainTime.Round(1e6))
		report := fitted.TrainReport()
		sort.Slice(report, func(a, b int) bool { return report[a].Computes > report[b].Computes })
		for _, r := range report {
			if r.Computes > 1 {
				fmt.Printf("    recomputed %2dx: %s\n", r.Computes, r.Name)
			}
		}
		fmt.Println()
		return fitted
	}

	// The uncached baseline profiles the pipeline as a side effect, which
	// is where the state-size estimate (and hence the budget for the two
	// cached runs) comes from — no extra probe fit needed.
	baseline := run("no caching", keystone.CacheNone, 0)
	totalBytes := baseline.Info().EstimatedStateBytes
	budget := totalBytes / 20 // a 5% budget: painful but not hopeless
	fmt.Printf("estimated intermediate state: %.1f MB; cache budget: %.1f MB\n\n",
		float64(totalBytes)/1e6, float64(budget)/1e6)

	greedy := run("keystoneml (greedy)", keystone.CacheAuto, budget)
	fmt.Printf("greedy cache set under budget: %v\n\n", greedy.Info().Cached)
	run("lru", keystone.CacheLRU, budget)
}
