// Image classification with the Figure 5 DAG: grayscale, dense SIFT
// descriptors, column sampling, PCA dimensionality reduction, GMM
// vocabulary, Fisher vector encoding, normalization, and a linear
// solver — the VOC/ImageNet pipeline of the paper, on synthetic textured
// images, through the public keystone API. It also prints which physical
// operators the optimizer chose and the materialization decisions,
// making the whole-pipeline optimizer visible.
//
//	go run ./examples/imageclassification
package main

import (
	"context"
	"fmt"
	"log"

	"keystoneml/keystone"
)

func main() {
	const classes = 4
	train := keystone.SyntheticImages(64, 64, 3, classes, 5)
	test := keystone.SyntheticImages(32, 64, 3, classes, 6)

	pipe := keystone.VisionPipeline(keystone.VisionConfig{
		PCADims:       16,
		GMMComponents: 8,
		SampleDescs:   30,
		Seed:          7,
		Iterations:    25,
		WithLCS:       true, // gather a color-statistics branch, as in ImageNet
	})

	fmt.Println("pipeline DAG:")
	fmt.Print(pipe.String())

	fitted, err := pipe.Fit(context.Background(), train.Records, train.Labels,
		keystone.WithNumClasses(classes))
	if err != nil {
		log.Fatalf("fit: %v", err)
	}
	info := fitted.Info()
	fmt.Printf("\noptimizer: %d physical operators selected, caching %d intermediates\n",
		len(info.Chosen), len(info.Cached))
	for node, op := range info.Chosen {
		fmt.Printf("  %s -> %s\n", node, op)
	}
	fmt.Printf("training took %v\n", info.TrainTime)

	scores, err := fitted.TransformBatch(context.Background(), test.Records)
	if err != nil {
		log.Fatalf("predict: %v", err)
	}
	fmt.Printf("test accuracy: %.1f%% (%d classes, chance %.1f%%)\n",
		100*keystone.Accuracy(scores, test.Truth), classes, 100.0/classes)
	fmt.Printf("test mean average precision: %.3f\n",
		keystone.MeanAveragePrecision(scores, test.Truth, classes))
}
