// Image classification with the Figure 5 DAG: grayscale, dense SIFT
// descriptors, column sampling, PCA dimensionality reduction, GMM
// vocabulary, Fisher vector encoding, normalization, and a linear solver —
// the VOC/ImageNet pipeline of the paper, on synthetic textured images.
// It also prints which physical operators the optimizer chose and the
// materialization decisions, making the whole-pipeline optimizer visible.
//
//	go run ./examples/imageclassification
package main

import (
	"fmt"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

func main() {
	const classes = 4
	train := workload.Images(64, 64, 3, classes, 5, 8)
	test := workload.Images(32, 64, 3, classes, 6, 4)

	pipe := pipelines.Vision(pipelines.VisionConfig{
		PCADims:       16,
		GMMComponents: 8,
		SampleDescs:   30,
		Seed:          7,
		Iterations:    25,
		WithLCS:       true, // gather a color-statistics branch, as in ImageNet
	})

	fmt.Println("pipeline DAG:")
	fmt.Print(pipe.Graph().String())

	plan := optimizer.Optimize(pipe.Graph(), train.Data, train.Labels, optimizer.Config{
		Level:      optimizer.LevelFull,
		Resources:  cluster.Local(8),
		NumClasses: classes,
	})
	fmt.Printf("\noptimizer: %d physical operators selected, cache set %v\n",
		len(plan.Chosen), plan.CacheSet)
	for node, op := range plan.Chosen {
		fmt.Printf("  node #%d -> %s\n", node, op)
	}

	models, _, report := plan.Execute(train.Data, train.Labels, 0)
	fmt.Printf("training took %v\n", report.Total)

	fitted := core.NewFitted(pipe.Graph(), models, engine.NewContext(0))
	out := fitted.Apply(test.Data).Collect()
	scores := make([][]float64, len(out))
	for i, r := range out {
		scores[i] = r.([]float64)
	}
	fmt.Printf("test accuracy: %.1f%% (%d classes, chance %.1f%%)\n",
		100*metrics.Accuracy(scores, test.Truth), classes, 100.0/classes)
	fmt.Printf("test mean average precision: %.3f\n",
		metrics.MeanAveragePrecision(scores, test.Truth, classes))
}
