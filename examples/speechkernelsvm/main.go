// Kernel SVM for phoneme-style classification via random Fourier
// features — the paper's TIMIT pipeline, through the public keystone
// API. Demonstrates pipeline branching and gather (two random-feature
// blocks concatenated) and the operator-level optimizer switching
// solvers as the feature count grows.
//
//	go run ./examples/speechkernelsvm
package main

import (
	"context"
	"fmt"
	"log"

	"keystoneml/keystone"
)

func main() {
	const (
		inputDim = 64
		classes  = 12
	)
	train := keystone.SyntheticDenseVectors(1500, inputDim, classes, 3)
	test := keystone.SyntheticDenseVectors(400, inputDim, classes, 4)

	for _, numFeatures := range []int{64, 256, 1024} {
		pipe := keystone.SpeechPipeline(keystone.SpeechConfig{
			InputDim:    inputDim,
			NumFeatures: numFeatures,
			Gamma:       0.01,
			Seed:        11,
			Iterations:  30,
		})
		fitted, err := pipe.Fit(context.Background(), train.Records, train.Labels,
			keystone.WithNumClasses(classes))
		if err != nil {
			log.Fatalf("fit (D=%d): %v", numFeatures, err)
		}
		scores, err := fitted.TransformBatch(context.Background(), test.Records)
		if err != nil {
			log.Fatalf("predict (D=%d): %v", numFeatures, err)
		}
		solver := "default"
		for _, op := range fitted.Info().Chosen {
			solver = op
		}
		fmt.Printf("D=%4d features: solver=%-22s train=%8v accuracy=%.1f%%\n",
			numFeatures, solver, fitted.Info().TrainTime.Round(1e6),
			100*keystone.Accuracy(scores, test.Truth))
	}
}
