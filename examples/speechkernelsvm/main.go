// Kernel SVM for phoneme-style classification via random Fourier
// features — the paper's TIMIT pipeline. Demonstrates pipeline branching
// and gather (two random-feature blocks concatenated) and the
// operator-level optimizer switching solvers as the feature count grows.
//
//	go run ./examples/speechkernelsvm
package main

import (
	"fmt"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/metrics"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/workload"
)

func main() {
	const (
		inputDim = 64
		classes  = 12
	)
	train := workload.DenseVectors(1500, inputDim, classes, 3, 8)
	test := workload.DenseVectors(400, inputDim, classes, 4, 4)

	for _, numFeatures := range []int{64, 256, 1024} {
		pipe := pipelines.Speech(pipelines.SpeechConfig{
			InputDim:    inputDim,
			NumFeatures: numFeatures,
			Gamma:       0.01,
			Seed:        11,
			Iterations:  30,
		})
		plan := optimizer.Optimize(pipe.Graph(), train.Data, train.Labels, optimizer.Config{
			Level:      optimizer.LevelFull,
			Resources:  cluster.Local(8),
			NumClasses: classes,
		})
		models, _, report := plan.Execute(train.Data, train.Labels, 0)
		fitted := core.NewFitted(pipe.Graph(), models, engine.NewContext(0))
		out := fitted.Apply(test.Data).Collect()
		scores := make([][]float64, len(out))
		for i, r := range out {
			scores[i] = r.([]float64)
		}
		solver := "default"
		for _, op := range plan.Chosen {
			solver = op
		}
		fmt.Printf("D=%4d features: solver=%-22s train=%8v accuracy=%.1f%%\n",
			numFeatures, solver, report.Total.Round(1e6),
			100*metrics.Accuracy(scores, test.Truth))
	}
}
