// Package keystoneml's top-level benchmarks regenerate every table and
// figure of the paper's evaluation section as testing.B benchmarks:
//
//	go test -bench=. -benchmem
//
// Each benchmark wraps the corresponding experiment from
// internal/experiments at Quick scale; run cmd/keybench for the
// formatted tables (and -scale full for sharper ratios).
package keystoneml_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"keystoneml/internal/baselines"
	"keystoneml/internal/cluster"
	"keystoneml/internal/conv"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/experiments"
	"keystoneml/internal/image"
	"keystoneml/internal/linalg"
	"keystoneml/internal/optimizer"
	"keystoneml/internal/pca"
	"keystoneml/internal/pipelines"
	"keystoneml/internal/solvers"
	"keystoneml/internal/workload"
)

// BenchmarkTable1SolverCostModels evaluates the analytic Table 1 cost
// models (pure computation; verifies they are cheap enough to run inside
// the optimizer's inner loop).
func BenchmarkTable1SolverCostModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

// BenchmarkFig6Solvers — one solver fit per Table 1 physical
// implementation on the Figure 6 sparse workload shape.
func BenchmarkFig6Solvers(b *testing.B) {
	sparse := workload.SparseVectors(800, 512, 8, 2, 42, 8)
	dense := workload.DenseVectors(600, 256, 8, 43, 8)
	ctx := engine.NewContext(0)
	fetch := func(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }
	b.Run("lbfgs-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.LBFGS{Iterations: 20}).Fit(ctx, fetch(sparse.Data), fetch(sparse.Labels))
		}
	})
	b.Run("block-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.BlockSolver{BlockSize: 128, Sweeps: 2}).Fit(ctx, fetch(sparse.Data), fetch(sparse.Labels))
		}
	})
	b.Run("exact-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.DistributedQR{}).Fit(ctx, fetch(dense.Data), fetch(dense.Labels))
		}
	})
	b.Run("block-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.BlockSolver{BlockSize: 64, Sweeps: 2}).Fit(ctx, fetch(dense.Data), fetch(dense.Labels))
		}
	})
	b.Run("lbfgs-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.LBFGS{Iterations: 20}).Fit(ctx, fetch(dense.Data), fetch(dense.Labels))
		}
	})
}

// BenchmarkTable2PCA — the four PCA physical implementations on one
// Table 2 grid cell.
func BenchmarkTable2PCA(b *testing.B) {
	data := workload.DenseVectors(1000, 64, 4, 77, 8).Data
	ctx := engine.NewContext(0)
	fetch := func() *engine.Collection { return data }
	for _, v := range []struct {
		name string
		est  core.EstimatorOp
	}{
		{"local-svd", &pca.LocalSVD{K: 8}},
		{"local-tsvd", &pca.LocalTSVD{K: 8, Iters: 2}},
		{"dist-svd", &pca.DistSVD{K: 8}},
		{"dist-tsvd", &pca.DistTSVD{K: 8, Iters: 2}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.est.Fit(ctx, fetch, nil)
			}
		})
	}
}

// BenchmarkFig7Convolution — the three convolution strategies at a small
// and a large filter size.
func BenchmarkFig7Convolution(b *testing.B) {
	rng := linalg.NewRNG(5)
	im := image.New(96, 96, 3)
	for i := range im.Pix {
		im.Pix[i] = rng.Gaussian()
	}
	for _, k := range []int{3, 11} {
		bank := conv.SeparableFilterBank(k, 3, 16, linalg.NewRNG(uint64(k)))
		for _, s := range []conv.Strategy{conv.Separable{}, conv.BLAS{}, conv.FFT{}} {
			b.Run(s.Name()+"-k"+string(rune('0'+k/10))+string(rune('0'+k%10)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.Convolve(im, bank)
				}
			})
		}
	}
}

// BenchmarkFig8Systems — KeystoneML's chosen solver vs the VW-like and
// SystemML-like fixed strategies on a sparse problem.
func BenchmarkFig8Systems(b *testing.B) {
	l := workload.SparseVectors(800, 512, 8, 2, 77, 8)
	ctx := engine.NewContext(0)
	fetch := func(c *engine.Collection) core.Fetch { return func() *engine.Collection { return c } }
	b.Run("keystoneml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&solvers.LBFGS{Iterations: 20}).Fit(ctx, fetch(l.Data), fetch(l.Labels))
		}
	})
	b.Run("vowpalwabbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&baselines.VowpalWabbit{Passes: 20}).Fit(ctx, fetch(l.Data), fetch(l.Labels))
		}
	})
	b.Run("systemml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(&baselines.SystemML{Iterations: 10}).Fit(ctx, fetch(l.Data), fetch(l.Labels))
		}
	})
}

// BenchmarkFig9OptLevels — end-to-end text pipeline under the three
// optimization levels of Figure 9.
func BenchmarkFig9OptLevels(b *testing.B) {
	train := workload.AmazonReviews(250, 1, 8)
	for _, level := range []optimizer.Level{optimizer.LevelNone, optimizer.LevelPipeline, optimizer.LevelFull} {
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := pipelines.Text(pipelines.TextConfig{NumFeatures: 1000, Iterations: 15}).Graph()
				plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
					Level:       level,
					Resources:   cluster.Local(8),
					NumClasses:  2,
					SampleSizes: [2]int{16, 32},
				})
				plan.Execute(train.Data, train.Labels, 0)
			}
		})
	}
}

// BenchmarkFig10Caching — the branching vision pipeline under each cache
// policy at a tight budget.
func BenchmarkFig10Caching(b *testing.B) {
	train := workload.Images(24, 48, 3, 4, 40, 4)
	build := func() *core.Graph {
		return pipelines.Vision(pipelines.VisionConfig{
			PCADims: 8, GMMComponents: 8, SampleDescs: 15, Seed: 9, Iterations: 15, WithLCS: true,
		}).Graph()
	}
	const budget = 256 << 10
	b.Run("keystoneml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := build()
			plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
				Level: optimizer.LevelPipeline, Resources: cluster.Local(8),
				NumClasses: 4, MemBudgetBytes: budget, SampleSizes: [2]int{6, 12},
			})
			plan.Execute(train.Data, train.Labels, 0)
		}
	})
	b.Run("lru", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := build()
			cache := engine.NewCacheManager(budget, engine.NewLRUPolicy())
			core.NewExecutor(g, engine.NewContext(0), cache, train.Data, train.Labels).Run()
		}
	})
	b.Run("rule-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := build()
			policy := engine.NewRuleBasedPolicy(optimizer.CacheKeys(optimizer.ApplyModelIDs(g)))
			cache := engine.NewCacheManager(budget, policy)
			core.NewExecutor(g, engine.NewContext(0), cache, train.Data, train.Labels).Run()
		}
	})
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := build()
			core.NewExecutor(g, engine.NewContext(0), nil, train.Data, train.Labels).Run()
		}
	})
}

// BenchmarkFig11GreedyPlanner — planning cost of the greedy
// materialization algorithm itself (Algorithm 1), which the paper argues
// must be cheap enough to run at optimization time (unlike an ILP).
func BenchmarkFig11GreedyPlanner(b *testing.B) {
	train := workload.Images(16, 48, 3, 4, 40, 4)
	g := pipelines.Vision(pipelines.VisionConfig{
		PCADims: 8, GMMComponents: 8, SampleDescs: 15, Seed: 9, Iterations: 15, WithLCS: true,
	}).Graph()
	plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
		Level: optimizer.LevelPipeline, Resources: cluster.Local(8),
		NumClasses: 4, SampleSizes: [2]int{6, 12},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimizer.GreedyCacheSet(g, plan.Profile, 1<<20, 1)
	}
}

// BenchmarkFig12ScalingModel and BenchmarkTable6ScalingModel evaluate the
// analytic scale-out models.
func BenchmarkFig12ScalingModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{8, 16, 32, 64, 128} {
			baselines.FigureTwelveModel("Amazon", cluster.R3_4XLarge(n))
			baselines.FigureTwelveModel("TIMIT", cluster.R3_4XLarge(n))
			baselines.FigureTwelveModel("ImageNet", cluster.R3_4XLarge(n))
		}
	}
}

func BenchmarkTable6ScalingModel(b *testing.B) {
	tf := baselines.CIFARDefaults()
	ks := baselines.CIFARKeystoneDefaults()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 4, 8, 16, 32} {
			tf.StrongScaleMinutes(n)
			tf.WeakScaleMinutes(n)
			ks.Minutes(n)
		}
	}
}

// BenchmarkTable5Pipelines — full optimized training of the text pipeline
// (the Table 5 representative kept benchmark-sized).
func BenchmarkTable5Pipelines(b *testing.B) {
	train := workload.AmazonReviews(250, 1, 8)
	for i := 0; i < b.N; i++ {
		g := pipelines.Text(pipelines.TextConfig{NumFeatures: 1000, Iterations: 15}).Graph()
		plan := optimizer.Optimize(g, train.Data, train.Labels, optimizer.Config{
			Level: optimizer.LevelFull, Resources: cluster.Local(8),
			NumClasses: 2, SampleSizes: [2]int{16, 32},
		})
		plan.Execute(train.Data, train.Labels, 0)
	}
}

// BenchmarkParallelDAG compares the sequential depth-first oracle
// against the stage-aware parallel scheduler on a multi-branch pipeline
// whose branch operators carry per-record latency (modeling remote/cold
// reads in the distributed engine the package stands in for). The
// scheduler's win is overlapping independent branches: expected speedup
// tracks the fan-out width for latency-bound branches and the core count
// for CPU-bound ones.
func BenchmarkParallelDAG(b *testing.B) {
	for _, k := range []int{2, 4} {
		cfg := experiments.FanoutConfig{
			Branches: k, Records: 8, Dim: 16, Partitions: 1,
			BranchLatency: 2 * time.Millisecond, Iterations: 3,
		}
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"sequential", 1},
			{"parallel", k},
		} {
			b.Run(fmt.Sprintf("%d-branch/%s", k, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g, train := experiments.BuildFanout(cfg)
					// Constant context: partition-level parallelism is
					// identical in both modes, so the delta is the DAG
					// scheduler's alone.
					ctx := engine.NewContext(k)
					core.NewExecutor(g, ctx, nil, train.Data, train.Labels).
						SetWorkers(mode.workers).Run()
				}
			})
		}
	}
}

// BenchmarkSchedPlanPinSets runs the branchy-DAG schedule-plan
// experiment (sequential-model vs makespan-model pin sets at equal
// budget, executed on the real parallel scheduler). `make bench-sched`
// drives the same experiment through keybench at GOMAXPROCS 1 and 4;
// the branch latencies are sleeps, so the makespan-aware set's win
// survives single-core hosts.
func BenchmarkSchedPlanPinSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.SchedulePlanExp(io.Discard, experiments.Quick)
	}
}

// BenchmarkTuneSearch runs the hyperparameter-search experiment: shared
// vs isolated prefix-cache search over a solver grid, then a successive-
// halving search whose winner auto-deploys through the registry-backed
// canary path. `make bench-tune` drives the same experiment through
// keybench and emits BENCH_tune.json for the regression gate.
func BenchmarkTuneSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TuneSearch(io.Discard, experiments.Quick)
	}
}

// BenchmarkParallelVOC runs the two-branch (SIFT+LCS) vision pipeline —
// the real multi-branch evaluation DAG — under both schedulers. On a
// single-core host the CPU-bound branches cannot overlap and this
// documents the scheduler's overhead floor instead.
func BenchmarkParallelVOC(b *testing.B) {
	train := workload.Images(12, 48, 3, 4, 40, 2)
	build := func() *core.Graph {
		return pipelines.Vision(pipelines.VisionConfig{
			PCADims: 8, GMMComponents: 6, SampleDescs: 10, Seed: 9, Iterations: 5, WithLCS: true,
		}).Graph()
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 4},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := engine.NewContext(4) // constant: isolate the DAG scheduler
				core.NewExecutor(build(), ctx, nil, train.Data, train.Labels).
					SetWorkers(mode.workers).Run()
			}
		})
	}
}

// BenchmarkEngineAggregate measures the treeAggregate primitive the
// distributed solvers are built on.
func BenchmarkEngineAggregate(b *testing.B) {
	items := make([]any, 10000)
	for i := range items {
		items[i] = float64(i)
	}
	c := engine.FromSlice(items, 16)
	ctx := engine.NewContext(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Aggregate(c,
			func() any { return 0.0 },
			func(acc, item any) any { return acc.(float64) + item.(float64) },
			func(a, bb any) any { return a.(float64) + bb.(float64) },
		)
	}
}

// BenchmarkGEMM measures the blocked matrix multiply substrate.
func BenchmarkGEMM(b *testing.B) {
	rng := linalg.NewRNG(1)
	x := rng.GaussianMatrix(256, 256)
	y := rng.GaussianMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
