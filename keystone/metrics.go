package keystone

import (
	"keystoneml/internal/metrics"
)

// Accuracy is the fraction of records whose arg-max score matches the
// true class.
func Accuracy(scores [][]float64, truth []int) float64 {
	return metrics.Accuracy(scores, truth)
}

// MeanAveragePrecision is the mean over classes of average precision,
// the VOC evaluation metric.
func MeanAveragePrecision(scores [][]float64, truth []int, numClasses int) float64 {
	return metrics.MeanAveragePrecision(scores, truth, numClasses)
}

// TopKError is the fraction of records whose true class is not among the
// k highest scores, the ImageNet evaluation metric.
func TopKError(scores [][]float64, truth []int, k int) float64 {
	return metrics.TopKError(scores, truth, k)
}

// Argmax returns the index of the highest score per record.
func Argmax(scores [][]float64) []int {
	return metrics.ArgmaxAll(scores)
}
