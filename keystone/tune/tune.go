// Package tune is the public hyperparameter-search subsystem: successive
// halving (the paper's Section 7 direction, after the authors' TuPAQ
// system) over a grid of pipeline configurations, with cross-candidate
// cache sharing — candidates that share a DAG prefix (same
// featurization, different solver hyperparameters) reuse each other's
// materialized intermediates through a search-scoped shared cache, the
// paper's pipeline-reuse argument applied one level up, across
// pipelines.
//
// A search is one call: Grid enumerates candidates, Search fits each
// round's survivors as parallel jobs through the pipeline scheduler on
// growing training subsets, scores them on a holdout split, halves, and
// returns the winning fitted pipeline plus a Report of every
// candidate's trajectory and the sharing counters. DeployWinner closes
// the loop with serving: the winner is persisted through the route's
// artifact store and rolled out via the canary path.
package tune

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"keystoneml/internal/tuning"
	"keystoneml/keystone"
)

// Params is one candidate's hyperparameter assignment: named numeric
// values the builder reads when constructing the candidate's pipeline.
type Params map[string]float64

// Int reads a parameter as an integer (hyperparameters like iteration
// counts and feature-map widths are carried as float64 grid axes).
func (p Params) Int(key string) int { return int(math.Round(p[key])) }

// Name renders the assignment deterministically: keys sorted, "k=v"
// pairs joined with ",". Two equal assignments always name identically.
func (p Params) Name() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.FormatFloat(p[k], 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// clone returns a private copy so Report entries cannot alias grid
// entries the caller mutates later.
func (p Params) clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Grid enumerates the cartesian product of the named axes in
// deterministic order: axes iterate with their keys sorted, the last
// key varying fastest.
func Grid(axes map[string][]float64) []Params {
	keys := make([]string, 0, len(axes))
	total := 1
	for k, vs := range axes {
		if len(vs) == 0 {
			return nil
		}
		keys = append(keys, k)
		total *= len(vs)
	}
	sort.Strings(keys)
	out := make([]Params, 0, total)
	assign := make(Params, len(keys))
	var rec func(i int)
	rec = func(i int) {
		if i == len(keys) {
			out = append(out, assign.clone())
			return
		}
		for _, v := range axes[keys[i]] {
			assign[keys[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Builder constructs one candidate's pipeline from its hyperparameters.
// Builders must be pure: they are called once per round the candidate
// survives, and equal Params must yield pipelines with identical
// behaviour (cross-candidate sharing additionally requires the prefix
// operators to be content-addressable — library ops are, ad-hoc NewOp
// closures are not unless registered via keystone.RegisterStatelessOp).
type Builder[I, O any] func(Params) *keystone.Pipeline[I, O]

// CandidateReport is one candidate's record from a search, in the
// Report's best-first order.
type CandidateReport struct {
	// Name is Params.Name(); Params the assignment itself.
	Name   string
	Params Params
	// Accuracy is the holdout score from the last round the candidate
	// survived; Trajectory holds the score after every round it
	// participated in.
	Accuracy   float64
	Trajectory []float64
	// Rounds counts rounds survived; the winner survives all of them.
	Rounds int
	// TrainTime is wall time spent fitting this candidate (all rounds).
	TrainTime time.Duration
	// SharedHits counts this candidate's node accesses that were served
	// by the search's shared prefix cache instead of recomputed.
	SharedHits int64
}

// Report is the typed result of one Search call.
type Report struct {
	// Candidates is every evaluated configuration, best-first (rounds
	// survived, then final accuracy). Candidates[0] is the winner.
	Candidates []CandidateReport
	// Rounds is the number of halving rounds the search ran.
	Rounds int
	// WallTime is the full search duration (fits, scoring, halving).
	WallTime time.Duration
	// SharedHits / SharedCoalesced / SharedComputes aggregate the
	// cross-candidate cache counters over all rounds: accesses served
	// from a stored shared entry, accesses that joined another
	// candidate's in-flight computation, and shared-prefix computations
	// that actually ran (with sharing, one per distinct prefix node per
	// round). All zero when sharing is disabled.
	SharedHits, SharedCoalesced, SharedComputes int64
	// DeployedVersion / DeployedArtifact are set when a DeployWinner
	// option rolled the winner out: the route version now serving and
	// its registry artifact reference.
	DeployedVersion  int
	DeployedArtifact string
}

// Search runs successive halving over the grid: every candidate's
// pipeline fits on a small training subsample, is scored on a held-out
// validation split, and only the top 1/eta advance to a subsample eta
// times larger, until the survivors have fitted the full training split.
// Fits within a round run as parallel jobs (bounded by WithParallelism,
// the worker budget divided among concurrent fits), and with sharing
// enabled (the default) all of a round's fits share one prefix cache —
// DAG prefixes common to several candidates are computed once per round.
//
// records/labels are the full labeled dataset; Search carves the holdout
// split off deterministically (WithHoldout). The returned Fitted is the
// winner as fitted on the full training split in its final round —
// bit-identical to fitting that candidate standalone on the same split.
// ctx cancels the search cleanly between rounds or mid-fit.
func Search[I, O any](ctx context.Context, build Builder[I, O], grid []Params, records []I, labels [][]float64, opts ...Option[I, O]) (*keystone.Fitted[I, O], *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if build == nil {
		return nil, nil, fmt.Errorf("tune: Search requires a pipeline builder")
	}
	if len(grid) == 0 {
		return nil, nil, fmt.Errorf("tune: Search over an empty grid")
	}
	if len(labels) != len(records) {
		return nil, nil, fmt.Errorf("tune: %d records but %d labels", len(records), len(labels))
	}
	cfg := defaultConfig[I, O]()
	for _, opt := range opts {
		opt(&cfg)
	}
	trainRecs, trainLabs, valRecs, valLabs, err := holdoutSplit(records, labels, cfg.holdout)
	if err != nil {
		return nil, nil, err
	}

	start := time.Now()
	fullN := len(trainRecs)
	// Per-candidate slots are written only by that candidate's own fit
	// (disjoint indices), so no locking is needed around them.
	fitteds := make([]*keystone.Fitted[I, O], len(grid))
	sharedHits := make([]int64, len(grid))

	// One shared prefix cache per round: the training subset grows
	// between rounds, and the cache's correctness contract is
	// identical-data fits only. roundStart runs before the round's fits
	// dispatch, so every fit of the round sees the same cache.
	var caches []*keystone.PrefixCache
	var cur *keystone.PrefixCache
	roundStart := func(r tuning.Round) {
		if cfg.share {
			cur = keystone.NewPrefixCache(cfg.cacheBudget)
			caches = append(caches, cur)
		}
	}

	fit := func(ctx context.Context, r tuning.Round, cand, workers int) (float64, error) {
		recs, labs := subsample(trainRecs, trainLabs, r.N)
		fitOpts := append(append([]keystone.Option(nil), cfg.fitOpts...), keystone.WithWorkers(workers))
		if cfg.share {
			fitOpts = append(fitOpts, keystone.WithPrefixCache(cur))
		}
		fitted, err := build(grid[cand]).Fit(ctx, recs, labs, fitOpts...)
		if err != nil {
			return 0, fmt.Errorf("tune: fit %q (round %d): %w", grid[cand].Name(), r.Index, err)
		}
		fitteds[cand] = fitted
		for _, nr := range fitted.TrainReport() {
			sharedHits[cand] += int64(nr.SharedHits)
		}
		score, err := cfg.scorer(ctx, fitted, valRecs, valLabs)
		if err != nil {
			return 0, fmt.Errorf("tune: score %q (round %d): %w", grid[cand].Name(), r.Index, err)
		}
		return score, nil
	}

	outcomes, err := tuning.Halve(ctx, len(grid), fullN, tuning.Config{
		Eta:         cfg.eta,
		MinSample:   cfg.minSample,
		Parallelism: cfg.parallelism,
	}, roundStart, fit)
	if err != nil {
		return nil, nil, err
	}

	report := &Report{
		Candidates: make([]CandidateReport, len(outcomes)),
		Rounds:     outcomes[0].Rounds,
		WallTime:   time.Since(start),
	}
	for i, o := range outcomes {
		report.Candidates[i] = CandidateReport{
			Name:       grid[o.Index].Name(),
			Params:     grid[o.Index].clone(),
			Accuracy:   o.Score(),
			Trajectory: o.Scores,
			Rounds:     o.Rounds,
			TrainTime:  o.TrainTime,
			SharedHits: sharedHits[o.Index],
		}
	}
	for _, c := range caches {
		st := c.Stats()
		report.SharedHits += st.SharedHits
		report.SharedCoalesced += st.Coalesced
		report.SharedComputes += st.Computes
	}
	winner := fitteds[outcomes[0].Index]
	if winner == nil {
		return nil, nil, fmt.Errorf("tune: winner %q has no fitted pipeline", report.Candidates[0].Name)
	}
	if cfg.deploy != nil {
		if err := cfg.deploy(ctx, winner, report); err != nil {
			return winner, report, err
		}
	}
	return winner, report, nil
}

// holdoutSplit carves a deterministic validation split off the dataset:
// every k-th record (k from the holdout fraction) is held out, the rest
// train. The stride keeps any class ordering in the data represented on
// both sides.
func holdoutSplit[I any](records []I, labels [][]float64, frac float64) (trainR []I, trainL [][]float64, valR []I, valL [][]float64, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("tune: holdout fraction %v out of range (0, 1)", frac)
	}
	k := int(math.Round(1 / frac))
	if k < 2 {
		k = 2
	}
	for i := range records {
		if (i+1)%k == 0 {
			valR = append(valR, records[i])
			valL = append(valL, labels[i])
		} else {
			trainR = append(trainR, records[i])
			trainL = append(trainL, labels[i])
		}
	}
	if len(trainR) == 0 || len(valR) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("tune: %d records are too few to split train/holdout", len(records))
	}
	return trainR, trainL, valR, valL, nil
}

// subsample picks n evenly strided records (the same stride the engine's
// Collection.Sample uses, so graph-level and record-level search rounds
// see the same subsets); n >= len returns the slices unchanged, which is
// what makes the final round's winner fit identical to a standalone fit.
func subsample[I any](records []I, labels [][]float64, n int) ([]I, [][]float64) {
	total := len(records)
	if n >= total {
		return records, labels
	}
	stride := total / n
	if stride < 1 {
		stride = 1
	}
	recs := make([]I, 0, n)
	labs := make([][]float64, 0, n)
	for i := 0; i < total && len(recs) < n; i += stride {
		recs = append(recs, records[i])
		labs = append(labs, labels[i])
	}
	return recs, labs
}

// argmax returns the index of the largest score (first on ties).
func argmax(scores []float64) int {
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}
