package tune

import (
	"context"
	"fmt"

	"keystoneml/keystone"
	"keystoneml/keystone/serve"
)

// Scorer evaluates a fitted candidate on the holdout split and returns
// its score (higher is better).
type Scorer[I, O any] func(ctx context.Context, fitted *keystone.Fitted[I, O], val []I, valLabels [][]float64) (float64, error)

// config is the resolved option set for one Search call.
type config[I, O any] struct {
	eta         int
	minSample   int
	parallelism int
	holdout     float64
	cacheBudget int64
	share       bool
	scorer      Scorer[I, O]
	fitOpts     []keystone.Option
	deploy      func(ctx context.Context, winner *keystone.Fitted[I, O], report *Report) error
}

func defaultConfig[I, O any]() config[I, O] {
	return config[I, O]{
		eta:       2,
		minSample: 64,
		holdout:   0.25,
		share:     true,
		scorer:    accuracyScorer[I, O],
	}
}

// Option configures a Search call; see the With* constructors and
// DeployWinner.
type Option[I, O any] func(*config[I, O])

// WithEta sets the halving rate: each round keeps the top 1/eta of the
// surviving candidates (default 2; values < 2 are treated as 2).
func WithEta[I, O any](eta int) Option[I, O] {
	return func(c *config[I, O]) {
		if eta >= 2 {
			c.eta = eta
		}
	}
}

// WithMinSample sets the first round's training-subset size (default
// 64); each round multiplies it by eta until the full training split is
// used.
func WithMinSample[I, O any](n int) Option[I, O] {
	return func(c *config[I, O]) {
		if n > 0 {
			c.minSample = n
		}
	}
}

// WithParallelism sets the search's total worker budget: at most this
// many candidates fit concurrently, with the budget divided among them
// so nested fits never oversubscribe the machine. 0 (the default) uses
// NumCPU.
func WithParallelism[I, O any](n int) Option[I, O] {
	return func(c *config[I, O]) { c.parallelism = n }
}

// WithHoldout sets the fraction of records held out for scoring
// (default 0.25). The split is deterministic (every k-th record), so
// repeated searches over the same data score on the same holdout.
func WithHoldout[I, O any](frac float64) Option[I, O] {
	return func(c *config[I, O]) { c.holdout = frac }
}

// WithSharing toggles cross-candidate cache sharing (default on).
// Disabling it gives every fit a private cache — the isolated baseline
// the tune benchmark compares against.
func WithSharing[I, O any](enabled bool) Option[I, O] {
	return func(c *config[I, O]) { c.share = enabled }
}

// WithCacheBudget bounds the shared prefix cache to the given bytes per
// round (0, the default, is unlimited).
func WithCacheBudget[I, O any](bytes int64) Option[I, O] {
	return func(c *config[I, O]) { c.cacheBudget = bytes }
}

// WithScorer replaces the default holdout scorer. The default asserts
// the pipeline output to []float64 class scores and computes argmax
// accuracy against the one-hot holdout labels; pipelines with any other
// output type must provide their own scorer.
func WithScorer[I, O any](s Scorer[I, O]) Option[I, O] {
	return func(c *config[I, O]) {
		if s != nil {
			c.scorer = s
		}
	}
}

// WithFitOptions forwards keystone Fit options to every candidate fit
// (optimizer level, cache policy, sample sizes, ...). The search
// appends its own worker bound and shared-cache options after these, so
// the per-fit worker budget cannot be overridden here.
func WithFitOptions[I, O any](opts ...keystone.Option) Option[I, O] {
	return func(c *config[I, O]) { c.fitOpts = append(c.fitOpts, opts...) }
}

// DeployWinner closes the search-to-serving loop: after the search
// picks its winner, the winner is staged on rt as a canary at the given
// traffic fraction — persisting it through the route's artifact store
// up front, exactly like any canary — and immediately promoted to the
// live version. Report.DeployedVersion and Report.DeployedArtifact
// record the outcome. A deploy failure returns the error from Search
// alongside the (still valid) winner and report.
func DeployWinner[I, O any](rt *serve.Route[I, O], fraction float64) Option[I, O] {
	return func(c *config[I, O]) {
		c.deploy = func(ctx context.Context, winner *keystone.Fitted[I, O], report *Report) error {
			if rt == nil {
				return fmt.Errorf("tune: DeployWinner with nil route")
			}
			if _, err := rt.Canary(ctx, winner, fraction); err != nil {
				return fmt.Errorf("tune: stage winner on route %q: %w", rt.Name(), err)
			}
			id, err := rt.Promote(ctx)
			if err != nil {
				return fmt.Errorf("tune: promote winner on route %q: %w", rt.Name(), err)
			}
			report.DeployedVersion = id
			report.DeployedArtifact = rt.LiveArtifact()
			return nil
		}
	}
}

// accuracyScorer is the default scorer: argmax accuracy of []float64
// class scores against one-hot holdout labels.
func accuracyScorer[I, O any](ctx context.Context, fitted *keystone.Fitted[I, O], val []I, valLabels [][]float64) (float64, error) {
	preds, err := fitted.TransformBatch(ctx, val)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		scores, ok := any(p).([]float64)
		if !ok {
			return 0, fmt.Errorf("tune: default scorer expects []float64 pipeline output, got %T; use WithScorer", p)
		}
		if argmax(scores) == argmax(valLabels[i]) {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}
