package tune_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"keystoneml/keystone"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
	"keystoneml/keystone/tune"
)

// The test prefix ops are registered stateless operators, so they are
// content-addressable and candidates sharing them can share prefixes.
func scaleVec(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = 2 * v
	}
	return out
}

func shiftVec(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + 1
	}
	return out
}

func init() {
	keystone.RegisterStatelessOp("tune.test.scale", scaleVec)
	keystone.RegisterStatelessOp("tune.test.shift", shiftVec)
}

// makeData builds a deterministic labeled dataset with class structure:
// class c records cluster around cos((c+1)(j+1)) with a small
// record-dependent wiggle.
func makeData(n, dim, classes int) ([][]float64, [][]float64) {
	recs := make([][]float64, n)
	labs := make([][]float64, n)
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for j := range x {
			x[j] = math.Cos(float64((c+1)*(j+1))) + 0.1*math.Sin(float64(i*(j+1)))
		}
		recs[i] = x
		y := make([]float64, classes)
		y[c] = 1
		labs[i] = y
	}
	return recs, labs
}

// sharedBuilder builds candidates with a 3-op signable prefix
// (scale -> shift -> RandomFeatures) and a solver differing in its
// iteration count — the shape where cross-candidate sharing applies.
func sharedBuilder(dim, features int) tune.Builder[[]float64, []float64] {
	return func(p tune.Params) *keystone.Pipeline[[]float64, []float64] {
		pl := keystone.Input[[]float64]().
			Then(keystone.NewOp("tune.test.scale", scaleVec)).
			Then(keystone.NewOp("tune.test.shift", shiftVec)).
			Then(keystone.RandomFeatures(dim, features, 1.0, 7))
		return keystone.ThenEstimator(pl, keystone.LinearSolver(p.Int("iters")))
	}
}

// deterministicOpts pins the execution mode the exact-count assertions
// rely on: one fit at a time, sequential oracle, no optimizer cache.
func deterministicOpts() []tune.Option[[]float64, []float64] {
	return []tune.Option[[]float64, []float64]{
		tune.WithParallelism[[]float64, []float64](1),
		tune.WithMinSample[[]float64, []float64](1 << 20), // one round on the full split
		tune.WithFitOptions[[]float64, []float64](keystone.WithOptimizerLevel(keystone.LevelNone)),
	}
}

func TestGridDeterministicOrderAndNames(t *testing.T) {
	grid := tune.Grid(map[string][]float64{"b": {0.5}, "a": {1, 2}})
	if len(grid) != 2 {
		t.Fatalf("grid size = %d, want 2", len(grid))
	}
	if got := grid[0].Name(); got != "a=1,b=0.5" {
		t.Errorf("grid[0] = %q", got)
	}
	if got := grid[1].Name(); got != "a=2,b=0.5" {
		t.Errorf("grid[1] = %q", got)
	}
	if grid[0].Int("a") != 1 {
		t.Errorf("Int(a) = %d", grid[0].Int("a"))
	}
	if tune.Grid(map[string][]float64{"a": nil}) != nil {
		t.Error("grid with an empty axis should be empty")
	}
}

// TestSearchSharedPrefixExactCounts pins the tentpole mechanism: two
// candidates sharing a 3-node prefix compute each shared node exactly
// once between them, with every other access a shared hit.
//
// With LBFGS at k iterations fetching its input exactly k times plus one
// apply-model access, candidate iters=2 (fitting first, sequentially)
// computes the prefix (3 computes) and hits 2 times on its own refetches;
// candidate iters=3 never computes a prefix node and hits 3+1 = 4 times.
func TestSearchSharedPrefixExactCounts(t *testing.T) {
	recs, labs := makeData(48, 6, 3)
	grid := tune.Grid(map[string][]float64{"iters": {2, 3}})
	_, report, err := tune.Search(context.Background(), sharedBuilder(6, 16), grid, recs, labs,
		deterministicOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if report.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (MinSample covers the full split)", report.Rounds)
	}
	if report.SharedComputes != 3 {
		t.Errorf("shared computes = %d, want 3 (each shared prefix node computed once)", report.SharedComputes)
	}
	if report.SharedHits != 6 {
		t.Errorf("shared hits = %d, want 6 (2 refetches + 4 second-candidate accesses)", report.SharedHits)
	}
	if report.SharedCoalesced != 0 {
		t.Errorf("shared coalesced = %d, want 0 under sequential fits", report.SharedCoalesced)
	}
	byName := map[string]tune.CandidateReport{}
	for _, c := range report.Candidates {
		byName[c.Name] = c
	}
	if got := byName["iters=2"].SharedHits; got != 2 {
		t.Errorf("iters=2 shared hits = %d, want 2", got)
	}
	if got := byName["iters=3"].SharedHits; got != 4 {
		t.Errorf("iters=3 shared hits = %d, want 4", got)
	}
}

// TestSearchWinnerBitIdentical verifies the acceptance criterion that
// sharing never changes results: the winner returned by a shared-cache
// search predicts bit-identically to fitting the same candidate
// standalone on the same training split.
func TestSearchWinnerBitIdentical(t *testing.T) {
	recs, labs := makeData(48, 6, 3)
	build := sharedBuilder(6, 16)
	grid := tune.Grid(map[string][]float64{"iters": {2, 3}})
	ctx := context.Background()
	winner, report, err := tune.Search(ctx, build, grid, recs, labs, deterministicOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the documented holdout split (every 4th record at the
	// default 0.25) and fit the winning candidate standalone, without
	// any sharing, under the same execution options.
	var trainR, valR [][]float64
	var trainL [][]float64
	for i := range recs {
		if (i+1)%4 == 0 {
			valR = append(valR, recs[i])
		} else {
			trainR = append(trainR, recs[i])
			trainL = append(trainL, labs[i])
		}
	}
	standalone, err := build(report.Candidates[0].Params).Fit(ctx, trainR, trainL,
		keystone.WithOptimizerLevel(keystone.LevelNone), keystone.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := winner.TransformBatch(ctx, valR)
	if err != nil {
		t.Fatal(err)
	}
	want, err := standalone.TransformBatch(ctx, valR)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("winner predictions differ from the standalone fit of the same candidate")
	}
}

// TestSearchHalvesAndReportsTrajectories runs a real multi-round search:
// the winner survives every round with a score per round, losers are
// eliminated early, and the report is ordered best-first.
func TestSearchHalvesAndReportsTrajectories(t *testing.T) {
	recs, labs := makeData(216, 10, 4)
	build := func(p tune.Params) *keystone.Pipeline[[]float64, []float64] {
		pl := keystone.Input[[]float64]().
			Then(keystone.NewOp("tune.test.scale", scaleVec)).
			Then(keystone.RandomFeatures(10, p.Int("features"), 1.0, 7))
		return keystone.ThenEstimator(pl, keystone.LinearSolver(15))
	}
	grid := tune.Grid(map[string][]float64{"features": {2, 64}})
	_, report, err := tune.Search(context.Background(), build, grid, recs, labs,
		tune.WithParallelism[[]float64, []float64](2),
		tune.WithMinSample[[]float64, []float64](40),
		tune.WithFitOptions[[]float64, []float64](keystone.WithOptimizerLevel(keystone.LevelNone)))
	if err != nil {
		t.Fatal(err)
	}
	// 162 train records from MinSample 40: rounds at n = 40, 80, 160, 162.
	if report.Rounds < 3 {
		t.Fatalf("rounds = %d, want >= 3", report.Rounds)
	}
	winner, loser := report.Candidates[0], report.Candidates[len(report.Candidates)-1]
	if winner.Rounds <= loser.Rounds {
		t.Errorf("no early elimination: winner %d rounds vs loser %d", winner.Rounds, loser.Rounds)
	}
	if len(winner.Trajectory) != winner.Rounds {
		t.Errorf("winner trajectory has %d entries over %d rounds", len(winner.Trajectory), winner.Rounds)
	}
	if winner.Name != "features=64" {
		t.Errorf("winner = %q (accuracy %.2f), want the wider feature map", winner.Name, winner.Accuracy)
	}
	if winner.Accuracy < loser.Accuracy {
		t.Error("report is not sorted best-first")
	}
}

func TestSearchCancel(t *testing.T) {
	recs, labs := makeData(48, 6, 3)
	grid := tune.Grid(map[string][]float64{"iters": {2, 3}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := tune.Search(ctx, sharedBuilder(6, 16), grid, recs, labs, deterministicOpts()...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled search err = %v, want context.Canceled", err)
	}

	// Mid-search: the scorer cancels during the first candidate's round;
	// the search must unwind with the context error, not partial results.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opts := append(deterministicOpts(),
		tune.WithScorer[[]float64, []float64](func(ctx context.Context, f *keystone.Fitted[[]float64, []float64], val [][]float64, valLabels [][]float64) (float64, error) {
			cancel2()
			return 0, ctx2.Err()
		}))
	_, _, err = tune.Search(ctx2, sharedBuilder(6, 16), grid, recs, labs, opts...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancel err = %v, want context.Canceled", err)
	}
}

func TestSearchValidatesInputs(t *testing.T) {
	recs, labs := makeData(8, 4, 2)
	if _, _, err := tune.Search[[]float64, []float64](context.Background(), nil, tune.Grid(map[string][]float64{"a": {1}}), recs, labs); err == nil {
		t.Error("nil builder accepted")
	}
	if _, _, err := tune.Search(context.Background(), sharedBuilder(4, 8), nil, recs, labs); err == nil {
		t.Error("empty grid accepted")
	}
	if _, _, err := tune.Search(context.Background(), sharedBuilder(4, 8), tune.Grid(map[string][]float64{"iters": {2}}), recs, labs[:4]); err == nil {
		t.Error("mismatched labels accepted")
	}
}

// TestDeployWinnerEndToEnd closes the loop: search -> registry artifact
// -> live route. The winner must be persisted in the registry, promoted
// to the route's live version, tagged live, and served.
func TestDeployWinnerEndToEnd(t *testing.T) {
	recs, labs := makeData(48, 6, 3)
	build := sharedBuilder(6, 16)
	grid := tune.Grid(map[string][]float64{"iters": {2, 3}})
	ctx := context.Background()

	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer()
	defer srv.Close()
	initial, err := build(grid[0]).Fit(ctx, recs, labs, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := serve.Register(srv, "tuned", initial, serve.VectorCodec{Dim: 6}, serve.WithArtifactStore(reg))
	if err != nil {
		t.Fatal(err)
	}

	opts := append(deterministicOpts(), tune.DeployWinner(rt, 0.5))
	winner, report, err := tune.Search(ctx, build, grid, recs, labs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if report.DeployedVersion != 2 {
		t.Errorf("deployed version = %d, want 2", report.DeployedVersion)
	}
	if report.DeployedArtifact == "" || rt.LiveArtifact() != report.DeployedArtifact {
		t.Errorf("deployed artifact %q vs live %q", report.DeployedArtifact, rt.LiveArtifact())
	}
	// The artifact is durable and decodes back to the winner.
	if id, err := reg.Resolve("tuned.live"); err != nil || id != report.DeployedArtifact {
		t.Errorf("tuned.live resolves to (%q, %v), want %q", id, err, report.DeployedArtifact)
	}
	restored, id, err := registry.Load[[]float64, []float64](reg, report.DeployedArtifact)
	if err != nil || id != report.DeployedArtifact {
		t.Fatalf("registry load: id %q err %v", id, err)
	}
	// Route, restored artifact and in-memory winner all agree.
	probe := recs[3]
	want, err := winner.Transform(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rt.Predict(ctx, probe); err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("route predict = (%v, %v), want %v", got, err, want)
	}
	if got, err := restored.Transform(ctx, probe); err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("restored artifact predict = (%v, %v), want %v", got, err, want)
	}
}
