package keystone

import (
	"keystoneml/internal/image"
)

// Image and vision primitives, exported as typed operators so consumers
// can assemble custom vision DAGs instead of being limited to the
// prebuilt VisionPipeline/CifarPipeline. They compose with the generic
// chain steps like every other operator:
//
//	p := keystone.Input[*keystone.Image]()
//	gray := keystone.Then(p, keystone.Grayscale())
//	pooled := keystone.Then(gray, keystone.Pooling(2))
//	vec := keystone.Then(pooled, keystone.ImageToVector())
//	white := keystone.ThenEstimator(vec, keystone.ZCAWhitening(0.1))
//	full := keystone.ThenEstimator(white, keystone.LinearSolver(20))

// SIFTParams configures the dense SIFT-style descriptor extractor.
// Zero values select the classic defaults (4-pixel cells, stride 8,
// 8 orientation bins — the 128-dim descriptor).
type SIFTParams struct {
	CellSize int // spatial bin edge in pixels (default 4)
	Stride   int // sampling step between descriptor centers (default 8)
	Bins     int // orientation bins (default 8)
}

// Grayscale converts a multi-channel image to one luminance channel
// (identity on single-channel input).
func Grayscale() Op[*Image, *Image] {
	return wrapOp[*Image, *Image](image.GrayscaleOp().Raw())
}

// SIFT extracts dense SIFT-style descriptors on a grid: local
// gradient-orientation histograms over 4x4 cells, L2 normalized — the
// descriptor source of the paper's Figure 5 vision DAG.
func SIFT(p SIFTParams) Op[*Image, [][]float64] {
	return wrapOp[*Image, [][]float64](image.NewSIFTOp(image.SIFTParams{
		CellSize: p.CellSize,
		Stride:   p.Stride,
		Bins:     p.Bins,
	}).Raw())
}

// LCS extracts local color statistic descriptors: per-patch per-channel
// mean and standard deviation on a dense grid — the color branch of the
// ImageNet pipeline. Non-positive sizes select the defaults (6, 8).
func LCS(patchSize, stride int) Op[*Image, [][]float64] {
	return wrapOp[*Image, [][]float64](image.NewLCSOp(patchSize, stride).Raw())
}

// Pooling sums activations over a size x size spatial grid, shrinking the
// image by that factor per axis with the channel count preserved.
func Pooling(size int) Op[*Image, *Image] {
	return wrapOp[*Image, *Image](image.NewPoolerOp(size).Raw())
}

// ZCAWhitening is the unsupervised ZCA whitening estimator: it fits
// W = U (Λ + εI)^(-1/2) Uᵀ over the training vectors and transforms
// records by centering and rotating. epsilon <= 0 selects 1e-2.
func ZCAWhitening(epsilon float64) Estimator[[]float64, []float64] {
	return wrapEst[[]float64, []float64](&image.ZCAWhitener{Epsilon: epsilon}, false)
}

// PatchExtract extracts all patch x patch x C patches at the given stride
// as flat vectors (the CIFAR pipeline's patch source). Non-positive
// arguments select patch 6 with stride = patch.
func PatchExtract(patch, stride int) Op[*Image, [][]float64] {
	return wrapOp[*Image, [][]float64](image.NewPatchExtractorOp(patch, stride).Raw())
}

// SymmetricRectify maps x to [max(0, x-alpha), max(0, -x-alpha)]
// concatenated — the two-sided ReLU of the CIFAR pipeline.
func SymmetricRectify(alpha float64) Op[[]float64, []float64] {
	return wrapOp[[]float64, []float64](image.SymmetricRectifier(alpha).Raw())
}

// ImageToVector flattens an image into a feature vector (row-major per
// channel plane).
func ImageToVector() Op[*Image, []float64] {
	return wrapOp[*Image, []float64](image.ImageToVector().Raw())
}

// SampleDescriptors deterministically subsamples a descriptor set to at
// most n entries — the Column Sampler feeding PCA/GMM fits in Figure 5.
func SampleDescriptors(n int, seed uint64) Op[[][]float64, [][]float64] {
	return wrapOp[[][]float64, [][]float64](image.NewColumnSamplerOp(n, seed).Raw())
}

// FlattenDescriptors concatenates a descriptor set into one flat vector,
// bridging descriptor-set operators to flat-vector estimators.
func FlattenDescriptors() Op[[][]float64, []float64] {
	return wrapOp[[][]float64, []float64](image.Flatten().Raw())
}
