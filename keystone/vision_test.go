package keystone

import (
	"context"
	"testing"
)

// TestCustomVisionDAGFromPrimitives proves the exported vision wrappers
// compose into a trainable custom DAG (the façade-coverage item): a
// pooled, whitened pixel pipeline fit end-to-end on synthetic images,
// serving multi-class predictions.
func TestCustomVisionDAGFromPrimitives(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const classes = 3
	train := SyntheticImages(36, 16, 3, classes, 1)
	test := SyntheticImages(6, 16, 3, classes, 2)

	p := Input[*Image]()
	gray := Then(p, Grayscale())
	pooled := Then(gray, Pooling(2))
	vec := Then(pooled, ImageToVector())
	white := ThenEstimator(vec, ZCAWhitening(0.1))
	full := ThenEstimator(white, LinearSolver(8))

	f, err := full.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit custom vision DAG: %v", err)
	}
	for _, rec := range test.Records {
		scores, err := f.Transform(context.Background(), rec)
		if err != nil {
			t.Fatalf("transform: %v", err)
		}
		if len(scores) != classes {
			t.Fatalf("scores have %d classes, want %d", len(scores), classes)
		}
	}
	outs, err := f.TransformBatch(context.Background(), test.Records)
	if err != nil {
		t.Fatalf("transform batch: %v", err)
	}
	if len(outs) != len(test.Records) {
		t.Fatalf("batch returned %d outputs, want %d", len(outs), len(test.Records))
	}
}

// TestSIFTDescriptorDAGFromPrimitives exercises the descriptor-set
// wrappers (SIFT, sampling, flattening) in a second custom DAG shape.
func TestSIFTDescriptorDAGFromPrimitives(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const classes = 2
	train := SyntheticImages(24, 24, 1, classes, 3)

	p := Input[*Image]()
	gray := Then(p, Grayscale())
	sift := Then(gray, SIFT(SIFTParams{}))
	sampled := Then(sift, SampleDescriptors(4, 7))
	flat := Then(sampled, FlattenDescriptors())
	full := ThenEstimator(flat, LinearSolver(6))

	f, err := full.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit SIFT DAG: %v", err)
	}
	scores, err := f.Transform(context.Background(), train.Records[0])
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if len(scores) != classes {
		t.Fatalf("scores have %d classes, want %d", len(scores), classes)
	}

	// LCS and PatchExtract/SymmetricRectify compose the same way; prove
	// they at least build and apply per record through an unfitted chain.
	lcs := Then(p, LCS(6, 8))
	lcsFlat := Then(lcs, FlattenDescriptors())
	if lcsFlat == nil {
		t.Fatal("LCS chain failed to build")
	}
	patches := Then(p, PatchExtract(6, 6))
	patchFlat := Then(patches, FlattenDescriptors())
	rect := Then(patchFlat, SymmetricRectify(0.25))
	if rect == nil {
		t.Fatal("patch chain failed to build")
	}
}
