package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"keystoneml/keystone"
)

// fitTextMarker fits a trivial string pipeline whose scores identify the
// artifact: every document maps to the fixed score vector. No estimator,
// no optimizer work — swap and HTTP tests stay fast and deterministic.
func fitTextMarker(t testing.TB, scores ...float64) *keystone.Fitted[string, []float64] {
	t.Helper()
	p := keystone.Input[string]()
	out := keystone.Then(p, keystone.NewOp(fmt.Sprintf("marker%v", scores), func(string) []float64 {
		cp := make([]float64, len(scores))
		copy(cp, scores)
		return cp
	}))
	f, err := out.Fit(context.Background(), []string{"a", "b"}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatalf("fit marker: %v", err)
	}
	return f
}

// fitFloatMarker is the numeric analogue: x -> [mark, x].
func fitFloatMarker(t testing.TB, mark float64) *keystone.Fitted[float64, []float64] {
	t.Helper()
	p := keystone.Input[float64]()
	out := keystone.Then(p, keystone.NewOp(fmt.Sprintf("fmarker[%g]", mark), func(x float64) []float64 {
		return []float64{mark, x}
	}))
	f, err := out.Fit(context.Background(), []float64{1, 2}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatalf("fit float marker: %v", err)
	}
	return f
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer()
	f := fitTextMarker(t, 1, 0)
	codec := TextCodec{}
	if _, err := Register(s, "Bad Name", f, codec); err == nil {
		t.Error("invalid route name accepted")
	}
	if _, err := Register(s, "", f, codec); err == nil {
		t.Error("empty route name accepted")
	}
	if _, err := Register(s, "ok", nil, codec); err == nil {
		t.Error("nil fitted accepted")
	}
	if _, err := Register[string, []float64](s, "ok", f, nil); err == nil {
		t.Error("nil codec accepted")
	}
	if _, err := Register(s, "ok", f, codec); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	if _, err := Register(s, "ok", f, codec); err == nil {
		t.Error("duplicate route name accepted")
	}
	if names := s.RouteNames(); len(names) != 1 || names[0] != "ok" {
		t.Errorf("RouteNames = %v, want [ok]", names)
	}
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: bad response JSON %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("GET %s: bad response JSON: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestServerHTTP drives the whole multi-route HTTP surface: default
// route back-compat paths, per-route paths, stats, versions, deploy and
// rollback, and the argmax labeling on a 3-class route.
func TestServerHTTP(t *testing.T) {
	s := NewServer()
	defer s.Close()
	// Three classes with argmax at index 1 — the old hardcoded binary
	// mapping cannot label this.
	text, err := Register(s, "text", fitTextMarker(t, 0.1, 0.9, 0.2),
		TextCodec{Labels: []string{"neg", "pos", "mixed"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Register(s, "vec", fitFloatMarker(t, 3),
		JSONCodec[float64, []float64]{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/predict", `{"text":"hello"}`)
	if code != 200 || body["label"] != "pos" || body["class"] != float64(1) {
		t.Fatalf("/predict = %d %v, want label=pos class=1", code, body)
	}
	code, body = postJSON(t, ts.URL+"/routes/text/predict", `{"text":"hello"}`)
	if code != 200 || body["label"] != "pos" {
		t.Fatalf("/routes/text/predict = %d %v", code, body)
	}
	code, body = postJSON(t, ts.URL+"/routes/text/predict/batch", `{"texts":["a","b","c"]}`)
	if code != 200 {
		t.Fatalf("/routes/text/predict/batch = %d %v", code, body)
	}
	if results := body["results"].([]any); len(results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(results))
	}
	code, body = postJSON(t, ts.URL+"/routes/vec/predict", `{"input": 7.5}`)
	if code != 200 {
		t.Fatalf("/routes/vec/predict = %d %v", code, body)
	}
	if out := body["output"].([]any); out[0] != float64(3) || out[1] != 7.5 {
		t.Fatalf("vec output = %v, want [3 7.5]", out)
	}

	code, body = getJSON(t, ts.URL+"/routes")
	if code != 200 || body["default"] != "text" {
		t.Fatalf("/routes = %d %v", code, body)
	}
	if routes := body["routes"].([]any); len(routes) != 2 {
		t.Fatalf("routes listing = %v", routes)
	}
	code, body = getJSON(t, ts.URL+"/routes/text/stats")
	if code != 200 || body["live_version"] != float64(1) || body["versions"] != float64(1) {
		t.Fatalf("/routes/text/stats = %d %v", code, body)
	}
	code, body = getJSON(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	if routes := body["routes"].(map[string]any); len(routes) != 2 {
		t.Fatalf("/stats routes = %v", routes)
	}
	if code, _ = getJSON(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}

	// Hot-swap over HTTP: no refitter -> 501; with refitter the argmax
	// moves to class 2.
	code, _ = postJSON(t, ts.URL+"/routes/text/deploy", ``)
	if code != http.StatusNotImplemented {
		t.Fatalf("deploy without refitter = %d, want 501", code)
	}
	text.SetRefit(func(ctx context.Context) (*keystone.Fitted[string, []float64], error) {
		return fitTextMarker(t, 0.1, 0.2, 0.9), nil
	})
	code, body = postJSON(t, ts.URL+"/routes/text/deploy", ``)
	if code != 200 || body["version"] != float64(2) {
		t.Fatalf("deploy = %d %v, want version 2", code, body)
	}
	code, body = postJSON(t, ts.URL+"/predict", `{"text":"hello"}`)
	if code != 200 || body["label"] != "mixed" {
		t.Fatalf("post-swap /predict = %d %v, want label=mixed", code, body)
	}
	code, body = getJSON(t, ts.URL+"/routes/text/versions")
	if code != 200 {
		t.Fatalf("/routes/text/versions = %d", code)
	}
	vers := body["versions"].([]any)
	if len(vers) != 2 {
		t.Fatalf("version history = %v, want 2 entries", vers)
	}
	if live := vers[1].(map[string]any); live["live"] != true || live["id"] != float64(2) {
		t.Fatalf("live version entry = %v", live)
	}

	// Rollback restores the first artifact as version 3.
	code, body = postJSON(t, ts.URL+"/routes/text/rollback", ``)
	if code != 200 || body["version"] != float64(3) {
		t.Fatalf("rollback = %d %v, want version 3", code, body)
	}
	code, body = postJSON(t, ts.URL+"/predict", `{"text":"hello"}`)
	if code != 200 || body["label"] != "pos" {
		t.Fatalf("post-rollback /predict = %d %v, want label=pos", code, body)
	}

	// Error surface.
	if code, _ = postJSON(t, ts.URL+"/routes/nope/predict", `{}`); code != 404 {
		t.Errorf("unknown route = %d, want 404", code)
	}
	if code, _ = getJSON(t, ts.URL+"/predict"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict = %d, want 405", code)
	}
	if code, _ = postJSON(t, ts.URL+"/routes/text/predict", `{"no_text":1}`); code != 400 {
		t.Errorf("missing text field = %d, want 400", code)
	}
	if code, _ = getJSON(t, ts.URL+"/routes/text/nonsense"); code != 404 {
		t.Errorf("unknown action = %d, want 404", code)
	}
}

// TestServerClosed: after Close every route answers 503 and programmatic
// predictions fail with ErrRouteClosed.
func TestServerClosed(t *testing.T) {
	s := NewServer()
	rt, err := Register(s, "text", fitTextMarker(t, 1, 0), TextCodec{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Close()
	s.Close() // idempotent
	if _, err := rt.Predict(context.Background(), "x"); err != ErrRouteClosed {
		t.Fatalf("Predict after Close = %v, want ErrRouteClosed", err)
	}
	if code, _ := postJSON(t, ts.URL+"/predict", `{"text":"x"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("/predict after Close = %d, want 503", code)
	}
}

func TestClassPrediction(t *testing.T) {
	cases := []struct {
		scores []float64
		labels []string
		label  string
		class  int
	}{
		{[]float64{0.2, 0.8}, []string{"negative", "positive"}, "positive", 1},
		{[]float64{0.8, 0.2}, []string{"negative", "positive"}, "negative", 0},
		// Non-binary argmax — the satellite fix: the old hardcoded
		// scores[1] > scores[0] mapping mislabels this.
		{[]float64{0.1, 0.2, 0.9, 0.3}, []string{"a", "b", "c", "d"}, "c", 2},
		// Labels shorter than the score vector fall back to classN.
		{[]float64{0, 0, 5}, []string{"a"}, "class2", 2},
		{[]float64{1, 2}, nil, "class1", 1},
		{nil, nil, "", -1},
	}
	for i, c := range cases {
		got := ClassPrediction(c.scores, c.labels)
		if got.Label != c.label || got.Class != c.class {
			t.Errorf("case %d: ClassPrediction(%v, %v) = {%q %d}, want {%q %d}",
				i, c.scores, c.labels, got.Label, got.Class, c.label, c.class)
		}
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	if _, err := (TextCodec{}).DecodeRequest([]byte(`{"nope":1}`)); err == nil {
		t.Error("TextCodec accepted a body without text")
	}
	if _, err := (TextCodec{}).DecodeBatch([]byte(`{"texts":[]}`)); err == nil {
		t.Error("TextCodec accepted an empty batch")
	}
	if _, err := (VectorCodec{Dim: 3}).DecodeRequest([]byte(`{"vector":[1,2]}`)); err == nil {
		t.Error("VectorCodec accepted a wrong-dimension vector")
	}
	if v, err := (VectorCodec{Dim: 2}).DecodeRequest([]byte(`{"vector":[1,2]}`)); err != nil || len(v) != 2 {
		t.Errorf("VectorCodec rejected a valid vector: %v %v", v, err)
	}
	if _, err := (ImageCodec{}).DecodeRequest([]byte(`{"width":2,"height":2,"pixels":[1,2,3]}`)); err == nil {
		t.Error("ImageCodec accepted a pixel count mismatch")
	}
	im, err := (ImageCodec{}).DecodeRequest([]byte(`{"width":2,"height":2,"pixels":[1,2,3,4]}`))
	if err != nil {
		t.Fatalf("ImageCodec rejected a valid image: %v", err)
	}
	if im.Channels != 1 || im.At(1, 1, 0) != 4 {
		t.Errorf("decoded image = %+v", im)
	}
	ims, err := (ImageCodec{}).DecodeBatch([]byte(`{"images":[{"width":1,"height":1,"pixels":[5]},{"width":1,"height":1,"channels":2,"pixels":[1,2]}]}`))
	if err != nil || len(ims) != 2 {
		t.Fatalf("ImageCodec batch = %v, %v", ims, err)
	}
	if _, err := (JSONCodec[float64, float64]{}).DecodeRequest([]byte(`{}`)); err == nil {
		t.Error("JSONCodec accepted a body without input")
	}
}

// TestRouteTimeout: a prediction exceeding the route timeout surfaces as
// 504 without wedging the route.
func TestRouteTimeout(t *testing.T) {
	p := keystone.Input[string]()
	out := keystone.Then(p, keystone.NewOp("slow", func(s string) []float64 {
		time.Sleep(100 * time.Millisecond)
		return []float64{1, 0}
	}))
	f, err := out.Fit(context.Background(), []string{"a"}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	if _, err := Register(s, "slow", f, TextCodec{}, WithTimeout(10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte(`{"text":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow predict = %d, want 504", resp.StatusCode)
	}
}
