// Package serve is the first-class serving layer over fitted keystone
// pipelines: a typed pipeline registry (one HTTP server hosts text,
// speech and vision routes simultaneously, each with its own JSON codec,
// micro-batcher and stats), versioned zero-downtime hot-swap
// (Deploy/Rollback switch a route's artifact atomically while in-flight
// batches drain), canary and shadow rollout between versions
// (Canary/Shadow stage a candidate behind the live version; Promote and
// Abort resolve it losslessly), per-route admission control
// (WithAdmission caps in-flight work and sheds overload as 429 with
// Retry-After), and an SLO-driven autotuner that retargets each route's
// (maxBatch, maxDelay) online against a p95 latency objective with an
// optional throughput floor.
//
//	srv := serve.NewServer()
//	route, _ := serve.Register(srv, "sentiment", fitted,
//	        serve.TextCodec{Labels: []string{"negative", "positive"}},
//	        serve.WithSLO(serve.SLO{TargetP95: 20 * time.Millisecond}),
//	        serve.WithAdmission(serve.Admission{MaxInFlight: 256}))
//	go http.ListenAndServe(":8080", srv)
//	...
//	route.Canary(ctx, candidate, 0.1) // 10% of traffic on the candidate
//	// watch route.CanaryStats(), then:
//	route.Promote(ctx)                // or route.Abort(ctx)
//
// HTTP surface:
//
//	POST /predict                      default (first) route, single record
//	POST /predict/batch                default route, caller-assembled batch
//	POST /routes/{name}/predict        per-route single record
//	POST /routes/{name}/predict/batch  per-route batch
//	GET  /routes                       route listing
//	GET  /routes/{name}/stats          batcher + latency + limit + admission stats
//	GET  /routes/{name}/versions       version history (live flag, served/error counts)
//	POST /routes/{name}/deploy         refit (SetRefit) + hot-swap
//	POST /routes/{name}/rollback       redeploy the previously live artifact
//	POST /routes/{name}/canary         refit + stage a canary ({"fraction": 0.1})
//	GET  /routes/{name}/canary         live candidate-vs-primary comparison
//	POST /routes/{name}/shadow         refit + stage a shadow candidate
//	POST /routes/{name}/promote        candidate takes all traffic
//	POST /routes/{name}/abort          candidate drains and is discarded
//	GET  /stats                        all routes
//	GET  /healthz                      liveness
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// handler is the type-erased face of Route[I, O] inside the registry.
type handler interface {
	routeName() string
	handlePredict(w http.ResponseWriter, r *http.Request)
	handleBatch(w http.ResponseWriter, r *http.Request)
	handleDeploy(w http.ResponseWriter, r *http.Request)
	handleRollback(w http.ResponseWriter, r *http.Request)
	handleCanary(w http.ResponseWriter, r *http.Request)
	handleShadow(w http.ResponseWriter, r *http.Request)
	handlePromote(w http.ResponseWriter, r *http.Request)
	handleAbort(w http.ResponseWriter, r *http.Request)
	handleRollout(w http.ResponseWriter, r *http.Request)
	versionsValue() []map[string]any
	statsValue() map[string]any
	registryHealth() (tagErrs int64, liveArtifact string, bound bool)
	closeRoute()
}

// Server hosts the pipeline registry and implements http.Handler.
// Register routes (serve.Register), then mount the server on any
// net/http listener. Safe for concurrent requests, registrations and
// deploys.
type Server struct {
	mu      sync.RWMutex
	routes  map[string]handler
	order   []string // registration order; order[0] answers /predict
	closed  bool
	started time.Time
}

// NewServer returns an empty registry.
func NewServer() *Server {
	return &Server{routes: make(map[string]handler), started: time.Now()}
}

// add registers a route handle; called by Register.
func (s *Server) add(name string, h handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("serve: server closed")
	}
	if _, dup := s.routes[name]; dup {
		return fmt.Errorf("serve: route %q already registered", name)
	}
	s.routes[name] = h
	s.order = append(s.order, name)
	return nil
}

// route resolves a handle by name (nil if absent).
func (s *Server) route(name string) handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.routes[name]
}

// defaultRoute is the first registered route (nil if none).
func (s *Server) defaultRoute() handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.order) == 0 {
		return nil
	}
	return s.routes[s.order[0]]
}

// RouteNames lists registered routes in registration order.
func (s *Server) RouteNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// RouteStats returns one route's stats (the same values GET
// /routes/{name}/stats serves), or nil for an unknown route.
func (s *Server) RouteStats(name string) map[string]any {
	h := s.route(name)
	if h == nil {
		return nil
	}
	return h.statsValue()
}

// Close drains and closes every route: live batchers finish their
// in-flight work, autotuners stop, later requests get 503s. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	hs := make([]handler, 0, len(s.routes))
	for _, h := range s.routes {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	for _, h := range hs {
		h.closeRoute()
	}
}

// ServeHTTP implements http.Handler over the registry.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch path {
	case "/healthz":
		writeJSON(w, map[string]any{"status": "ok", "uptime": time.Since(s.started).String()})
		return
	case "/stats":
		s.handleStats(w)
		return
	case "/routes":
		s.handleRoutes(w, r)
		return
	case "/predict", "/predict/batch":
		h := s.defaultRoute()
		if h == nil {
			httpError(w, http.StatusServiceUnavailable, "no routes registered")
			return
		}
		if path == "/predict" {
			h.handlePredict(w, r)
		} else {
			h.handleBatch(w, r)
		}
		return
	}
	if rest, ok := strings.CutPrefix(path, "/routes/"); ok {
		name, action, _ := strings.Cut(rest, "/")
		h := s.route(name)
		if h == nil {
			httpError(w, http.StatusNotFound, fmt.Sprintf("no route %q", name))
			return
		}
		switch action {
		case "predict":
			h.handlePredict(w, r)
		case "predict/batch":
			h.handleBatch(w, r)
		case "deploy":
			if !requirePost(w, r) {
				return
			}
			h.handleDeploy(w, r)
		case "rollback":
			if !requirePost(w, r) {
				return
			}
			h.handleRollback(w, r)
		case "canary":
			h.handleCanary(w, r) // GET = stats, POST = stage
		case "shadow":
			if !requirePost(w, r) {
				return
			}
			h.handleShadow(w, r)
		case "promote":
			if !requirePost(w, r) {
				return
			}
			h.handlePromote(w, r)
		case "abort":
			if !requirePost(w, r) {
				return
			}
			h.handleAbort(w, r)
		case "rollout":
			h.handleRollout(w, r) // GET = state, POST = apply
		case "versions":
			writeJSON(w, map[string]any{"route": h.routeName(), "versions": h.versionsValue()})
		case "stats", "":
			writeJSON(w, h.statsValue())
		default:
			httpError(w, http.StatusNotFound, fmt.Sprintf("no action %q on route %q", action, name))
		}
		return
	}
	httpError(w, http.StatusNotFound, "not found")
}

// handleStats renders every route's stats plus server uptime.
func (s *Server) handleStats(w http.ResponseWriter) {
	s.mu.RLock()
	hs := make([]handler, 0, len(s.routes))
	for _, h := range s.routes {
		hs = append(hs, h)
	}
	s.mu.RUnlock()
	routes := make(map[string]any, len(hs))
	// Fleet-wide registry health rides the top level: per-route tag_errors
	// buried under routes/{name}/registry hid persistence degradation from
	// operators polling /stats, so the totals and live artifact ids are
	// aggregated here too.
	var tagErrs int64
	live := map[string]any{}
	anyBound := false
	for _, h := range hs {
		routes[h.routeName()] = h.statsValue()
		if errs, artifact, bound := h.registryHealth(); bound {
			anyBound = true
			tagErrs += errs
			if artifact != "" {
				live[h.routeName()] = artifact
			}
		}
	}
	out := map[string]any{
		"uptime": time.Since(s.started).String(),
		"routes": routes,
	}
	if anyBound {
		out["registry"] = map[string]any{
			"tag_errors":     tagErrs,
			"live_artifacts": live,
		}
	}
	writeJSON(w, out)
}

// handleRoutes renders the route listing.
func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	names := s.RouteNames()
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)
	def := ""
	if len(names) > 0 {
		def = names[0]
	}
	writeJSON(w, map[string]any{"routes": sorted, "default": def})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	return true
}

// statusOf maps prediction errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, ErrRouteClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
