package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"testing"

	"keystoneml/keystone"
)

// memStore is an in-memory ArtifactStore for route persistence tests;
// failTags makes every Tag call fail to exercise the best-effort path.
type memStore struct {
	mu       sync.Mutex
	objs     map[string][]byte
	tags     map[string]string
	failTags bool
}

func newMemStore() *memStore {
	return &memStore{objs: map[string][]byte{}, tags: map[string]string{}}
}

func (m *memStore) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	id := hex.EncodeToString(sum[:])
	m.mu.Lock()
	m.objs[id] = data
	m.mu.Unlock()
	return id, nil
}

func (m *memStore) Get(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objs[id]
	if !ok {
		return nil, fmt.Errorf("memstore: no object %s", id)
	}
	return data, nil
}

func (m *memStore) Resolve(ref string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.tags[ref]; ok {
		return id, nil
	}
	if _, ok := m.objs[ref]; ok {
		return ref, nil
	}
	return "", fmt.Errorf("memstore: unknown ref %q", ref)
}

func (m *memStore) Tag(name, ref string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failTags {
		return fmt.Errorf("memstore: tag writes disabled")
	}
	id := ref
	if t, ok := m.tags[ref]; ok {
		id = t
	}
	m.tags[name] = id
	return nil
}

func (m *memStore) tag(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tags[name]
}

func init() {
	// The usual test markers are ad-hoc closures and cannot be encoded;
	// these two registered ops give the persistence tests distinguishable
	// pipelines that round-trip through a store.
	keystone.RegisterStatelessOp("serve.markA", func(x float64) []float64 { return []float64{1, x} })
	keystone.RegisterStatelessOp("serve.markB", func(x float64) []float64 { return []float64{2, x} })
}

// fitStoredMarker fits a persistable marker pipeline: x -> [mark, x]
// with mark 1 ("serve.markA") or 2 ("serve.markB").
func fitStoredMarker(t testing.TB, name string) *keystone.Fitted[float64, []float64] {
	t.Helper()
	p := keystone.Input[float64]()
	var out *keystone.Pipeline[float64, []float64]
	switch name {
	case "serve.markA":
		out = keystone.Then(p, keystone.NewOp(name, func(x float64) []float64 { return []float64{1, x} }))
	case "serve.markB":
		out = keystone.Then(p, keystone.NewOp(name, func(x float64) []float64 { return []float64{2, x} }))
	default:
		t.Fatalf("unknown marker %q", name)
	}
	f, err := out.Fit(context.Background(), []float64{1, 2}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatalf("fit stored marker: %v", err)
	}
	return f
}

func markOf(t *testing.T, rt *Route[float64, []float64]) float64 {
	t.Helper()
	out, err := rt.Predict(context.Background(), 7)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	return out[0]
}

// TestStoreBackedDeployAndTags: with a store bound, every version that
// takes traffic is stored under its content address, the version
// history records the ids, and the live/previous tags follow each swap
// (deploy and rollback alike).
func TestStoreBackedDeployAndTags(t *testing.T) {
	s := NewServer()
	defer s.Close()
	store := newMemStore()
	rt, err := Register(s, "m", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{},
		WithArtifactStore(store))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	v1 := rt.cur.Load()
	if v1.artifact == "" {
		t.Fatal("initial version has no artifact id despite a bound store")
	}
	if got := store.tag("m.live"); got != v1.artifact {
		t.Fatalf("m.live = %s, want %s", got, v1.artifact)
	}

	if _, err := rt.Deploy(context.Background(), fitStoredMarker(t, "serve.markB")); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	v2 := rt.cur.Load()
	if v2.artifact == "" || v2.artifact == v1.artifact {
		t.Fatalf("v2 artifact %q, want a distinct id from v1 %q", v2.artifact, v1.artifact)
	}
	if store.tag("m.live") != v2.artifact || store.tag("m.previous") != v1.artifact {
		t.Fatalf("after deploy: live=%s previous=%s, want %s / %s",
			store.tag("m.live"), store.tag("m.previous"), v2.artifact, v1.artifact)
	}

	// In-memory rollback: the restored version carries v1's artifact id
	// (same bytes, no re-encode) and the tags swap back.
	if _, err := rt.Rollback(context.Background()); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	v3 := rt.cur.Load()
	if v3.artifact != v1.artifact {
		t.Fatalf("rollback artifact %s, want v1's %s", v3.artifact, v1.artifact)
	}
	if store.tag("m.live") != v1.artifact || store.tag("m.previous") != v2.artifact {
		t.Fatalf("after rollback: live=%s previous=%s", store.tag("m.live"), store.tag("m.previous"))
	}
	if m := markOf(t, rt); m != 1 {
		t.Fatalf("serving mark %g after rollback, want 1", m)
	}
}

// TestRollbackAcrossRestart is the durability payoff: a fresh process
// (new Server, no in-memory history) registered from the store's live
// tag can still roll back, because the previous tag survives on the
// store.
func TestRollbackAcrossRestart(t *testing.T) {
	store := newMemStore()

	// Process 1: register A, deploy B, die.
	s1 := NewServer()
	rt1, err := Register(s1, "m", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{},
		WithArtifactStore(store))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := rt1.Deploy(context.Background(), fitStoredMarker(t, "serve.markB")); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	bootArt := rt1.cur.Load().artifact
	s1.Close()

	// Process 2: boot from m.live (marker B), then roll back to marker A
	// purely via the store.
	s2 := NewServer()
	defer s2.Close()
	rt2, err := RegisterArtifact(s2, "m", store, "m.live", JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatalf("register from artifact: %v", err)
	}
	if got := rt2.cur.Load().artifact; got != bootArt {
		t.Fatalf("booted artifact %s, want the stored live id %s (no re-encode)", got, bootArt)
	}
	if m := markOf(t, rt2); m != 2 {
		t.Fatalf("booted route serves mark %g, want 2 (marker B)", m)
	}

	ver, err := rt2.Rollback(context.Background())
	if err != nil {
		t.Fatalf("rollback across restart: %v", err)
	}
	if ver != 2 {
		t.Fatalf("rollback produced version %d, want 2", ver)
	}
	if m := markOf(t, rt2); m != 1 {
		t.Fatalf("rolled-back route serves mark %g, want 1 (marker A)", m)
	}
	if live := rt2.cur.Load(); live.artifact == bootArt || live.artifact == "" {
		t.Fatalf("rolled-back artifact %q, want the pre-restart previous id", live.artifact)
	}
}

// TestDeployArtifactByRef covers the registry-backed deploy path and its
// error cases.
func TestDeployArtifactByRef(t *testing.T) {
	s := NewServer()
	defer s.Close()
	store := newMemStore()
	rt, err := Register(s, "m", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{},
		WithArtifactStore(store))
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	// Store marker B out-of-band (the offline-training flow) and deploy
	// it by id.
	data, err := keystone.Encode(fitStoredMarker(t, "serve.markB"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	id, err := store.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := rt.DeployArtifact(context.Background(), id)
	if err != nil {
		t.Fatalf("deploy artifact: %v", err)
	}
	if ver != 2 {
		t.Fatalf("deploy artifact produced version %d, want 2", ver)
	}
	if m := markOf(t, rt); m != 2 {
		t.Fatalf("serving mark %g after artifact deploy, want 2", m)
	}
	if got := rt.cur.Load().artifact; got != id {
		t.Fatalf("live artifact %s, want the deployed id %s", got, id)
	}

	if _, err := rt.DeployArtifact(context.Background(), "no-such-ref"); err == nil {
		t.Fatal("deploying an unknown ref must error")
	}

	// A route with no store bound refuses artifact deploys.
	bare, err := Register(s, "bare", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.DeployArtifact(context.Background(), id); err == nil {
		t.Fatal("DeployArtifact without a bound store must error")
	}
	// And rollback on a fresh store-less route still reports no history.
	if _, err := bare.Rollback(context.Background()); err == nil {
		t.Fatal("rollback with no history and no store must error")
	}
}

// TestRegisterArtifactErrors: unknown refs and type mismatches fail
// registration cleanly.
func TestRegisterArtifactErrors(t *testing.T) {
	s := NewServer()
	defer s.Close()
	store := newMemStore()
	if _, err := RegisterArtifact(s, "m", store, "nope", JSONCodec[float64, []float64]{}); err == nil {
		t.Fatal("RegisterArtifact with an unknown ref must error")
	}
	data, err := keystone.Encode(fitStoredMarker(t, "serve.markA"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := store.Put(data)
	if _, err := RegisterArtifact(s, "m", store, id, JSONCodec[string, []float64]{}); !errors.Is(err, keystone.ErrArtifactType) {
		t.Fatalf("RegisterArtifact with wrong record type = %v, want ErrArtifactType", err)
	}
}

// TestRegisterUnpersistablePipelineFails: binding a store promises
// durable versions, so a pipeline that cannot be encoded must fail at
// Register, not silently serve without persistence.
func TestRegisterUnpersistablePipelineFails(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if _, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithArtifactStore(newMemStore())); err == nil {
		t.Fatal("registering an unencodable pipeline with a store bound must error")
	}
}

// TestTagFailuresAreBestEffort: tag writes failing must not fail the
// swap — they only bump the route's tag-error counter.
func TestTagFailuresAreBestEffort(t *testing.T) {
	s := NewServer()
	defer s.Close()
	store := newMemStore()
	store.failTags = true
	rt, err := Register(s, "m", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{},
		WithArtifactStore(store))
	if err != nil {
		t.Fatalf("register with failing tags: %v", err)
	}
	if _, err := rt.Deploy(context.Background(), fitStoredMarker(t, "serve.markB")); err != nil {
		t.Fatalf("deploy with failing tags: %v", err)
	}
	if m := markOf(t, rt); m != 2 {
		t.Fatalf("serving mark %g, want 2 — swap must survive tag failures", m)
	}
	if rt.tagErrs.Load() == 0 {
		t.Fatal("tag failures were not counted")
	}
}
