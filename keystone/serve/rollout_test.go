package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"keystoneml/keystone"
)

// TestRolloutEndpointHTTP drives /routes/{name}/rollout end to end: GET
// reflects the current state, POST applies admission caps and canary
// fraction, pushing a fraction with no staged canary is a staging
// conflict (409), and an out-of-range fraction is a bad request (400).
func TestRolloutEndpointHTTP(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	url := ts.URL + "/routes/m/rollout"

	code, body := getJSON(t, url)
	if code != 200 || body["max_in_flight"] != float64(0) || body["max_queue"] != float64(0) {
		t.Fatalf("initial rollout state = %d %v", code, body)
	}
	if _, staged := body["canary_fraction"]; staged {
		t.Fatalf("canary_fraction present with no canary staged: %v", body)
	}

	// Admission caps apply live and round-trip through GET.
	code, body = postJSON(t, url, `{"max_in_flight": 5, "max_queue": 2, "retry_after_ms": 40}`)
	if code != 200 || body["max_in_flight"] != float64(5) || body["max_queue"] != float64(2) ||
		body["retry_after_ms"] != float64(40) {
		t.Fatalf("rollout POST = %d %v", code, body)
	}
	if a := rt.AdmissionConfig(); a.MaxInFlight != 5 || a.MaxQueue != 2 || a.RetryAfter != 40*time.Millisecond {
		t.Fatalf("admission not applied: %+v", a)
	}

	// Canary fraction with nothing staged: staging conflict.
	if code, _ = postJSON(t, url, `{"canary_fraction": 0.3}`); code != 409 {
		t.Fatalf("fraction push with no canary = %d, want 409", code)
	}

	if _, err := rt.Canary(context.Background(), fitFloatMarker(t, 2), 0.5); err != nil {
		t.Fatalf("stage canary: %v", err)
	}
	code, body = postJSON(t, url, `{"canary_fraction": 0.25}`)
	if code != 200 || body["canary_fraction"] != float64(0.25) {
		t.Fatalf("fraction retarget = %d %v", code, body)
	}
	// A fraction-only push must not disturb the admission caps.
	if a := rt.AdmissionConfig(); a.MaxInFlight != 5 {
		t.Fatalf("fraction push clobbered admission: %+v", a)
	}
	if code, _ = postJSON(t, url, `{"canary_fraction": 1.5}`); code != 400 {
		t.Fatalf("out-of-range fraction = %d, want 400", code)
	}
	if code, _ = postJSON(t, url, `{"canary_fraction": `); code != 400 {
		t.Fatalf("malformed body = %d, want 400", code)
	}
	if err := rt.Abort(context.Background()); err != nil {
		t.Fatalf("abort canary: %v", err)
	}
	if err := rt.SetCanaryFraction(0.2); !errors.Is(err, ErrNoCanary) {
		t.Fatalf("SetCanaryFraction after abort = %v, want ErrNoCanary", err)
	}
}

// TestSetAdmissionLiveSwap proves admission control swaps under live
// traffic: a request admitted by the old admitter completes against it,
// requests arriving at the old cap shed, and requests arriving after
// the swap see the new cap immediately.
func TestSetAdmissionLiveSwap(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	p := keystone.Input[float64]()
	out := keystone.Then(p, keystone.NewOp("rollout.gated", func(x float64) []float64 {
		if x == 99 {
			entered <- struct{}{}
			<-gate
		}
		return []float64{1, x}
	}))
	f, err := out.Fit(context.Background(), []float64{1}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "gated", f, JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAdmission(Admission{MaxInFlight: 1})

	blocked := make(chan error, 1)
	go func() {
		_, err := rt.Predict(context.Background(), 99)
		blocked <- err
	}()
	<-entered

	// At the cap: the next request sheds immediately.
	if _, err := rt.Predict(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("predict at cap = %v, want ErrOverloaded", err)
	}

	// Raise the cap under traffic: new arrivals are admitted immediately
	// (batches flush concurrently, so this completes while the gated
	// request still holds its old-admitter slot).
	rt.SetAdmission(Admission{MaxInFlight: 8})
	if _, err := rt.Predict(context.Background(), 2); err != nil {
		close(gate)
		t.Fatalf("request after cap raise = %v, want admitted", err)
	}

	close(gate)
	if err := <-blocked; err != nil {
		t.Fatalf("request admitted under old admitter failed after swap: %v", err)
	}
}

// TestStatsRegistryTopLevel: GET /stats must surface fleet-wide registry
// health at the top level — summed tag_errors and the live artifact id
// per store-bound route — and omit the block entirely when no route has
// a store bound.
func TestStatsRegistryTopLevel(t *testing.T) {
	s := NewServer()
	defer s.Close()
	good := newMemStore()
	bad := newMemStore()
	bad.failTags = true
	if _, err := Register(s, "a", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{},
		WithArtifactStore(good)); err != nil {
		t.Fatal(err)
	}
	rb, err := Register(s, "b", fitStoredMarker(t, "serve.markA"), JSONCodec[float64, []float64]{},
		WithArtifactStore(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Deploy(context.Background(), fitStoredMarker(t, "serve.markB")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := getJSON(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	reg, ok := body["registry"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing top-level registry block: %v", body)
	}
	if errs := reg["tag_errors"].(float64); errs < 1 {
		t.Fatalf("tag_errors = %v, want >= 1 (route b's tags fail)", errs)
	}
	live, ok := reg["live_artifacts"].(map[string]any)
	if !ok || live["a"] == "" || live["b"] == "" {
		t.Fatalf("live_artifacts = %v, want ids for both routes", reg["live_artifacts"])
	}
	if live["a"] == live["b"] {
		t.Fatalf("routes serving different pipelines share artifact id %v", live["a"])
	}

	// A server with no store-bound routes reports no registry block.
	s2 := NewServer()
	defer s2.Close()
	if _, err := Register(s2, "plain", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{}); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if _, body := getJSON(t, ts2.URL+"/stats"); body["registry"] != nil {
		t.Fatalf("storeless server reports registry block: %v", body["registry"])
	}
}
