package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"keystoneml/keystone"
)

// ErrCanaryActive is returned by Deploy, Rollback, Canary and Shadow
// while a candidate is already staged on the route; resolve it with
// Promote or Abort first.
var ErrCanaryActive = errors.New("serve: canary or shadow already active")

// ErrNoCanary is returned by Promote and Abort when no candidate is
// staged.
var ErrNoCanary = errors.New("serve: no canary or shadow active")

// shadowMaxInFlight bounds concurrent mirrored requests per route; when
// the shadow pipeline cannot keep up, further mirrors are dropped (and
// counted) rather than queued, so shadowing can never build back-pressure
// that reaches primary traffic.
const shadowMaxInFlight = 64

// canaryMode distinguishes the two candidate-staging modes.
type canaryMode int

const (
	modeCanary canaryMode = iota // candidate serves a fraction of live traffic
	modeShadow                   // candidate sees mirrored traffic, responses discarded
)

func (m canaryMode) String() string {
	if m == modeShadow {
		return "shadow"
	}
	return "canary"
}

// canaryState is one staged candidate: the version under evaluation plus
// the splitter / mirror bookkeeping. It is published on the route with an
// atomic pointer, so the request path reads it lock-free; Promote and
// Abort clear the pointer first, which instantly stops new candidate
// picks, then drain the candidate behind its version gate exactly like a
// hot-swap drains a retired primary.
type canaryState[I, O any] struct {
	mode    canaryMode
	cand    *version[I, O]
	started time.Time

	// frac holds the canary target traffic share as float64 bits so
	// SetCanaryFraction (the dist-router rollout push) can retarget a
	// staged candidate while the splitter reads it lock-free.
	frac atomic.Uint64

	// primServed0/primErrs0 snapshot the primary's counters at stage
	// time, so CanaryStats compares same-window deltas instead of the
	// candidate's fresh counters against the primary's whole history.
	primServed0, primErrs0 int64

	counter atomic.Uint64 // deterministic request counter for the splitter

	shadowInFlight atomic.Int64 // live mirrors, capped at shadowMaxInFlight
	shadowDropped  atomic.Int64 // mirrors dropped at the cap
}

// pickCandidate is the deterministic traffic splitter: request n goes to
// the candidate iff the integer part of n*fraction advanced, which
// spreads candidate picks evenly through the request sequence (a
// Bresenham-style split — at 10% exactly every ~10th request, not the
// first 10% of each window) and hits the target fraction within ±1
// request over any run length.
func (st *canaryState[I, O]) pickCandidate() bool {
	n := st.counter.Add(1)
	f := st.fraction()
	return uint64(float64(n)*f) != uint64(float64(n-1)*f)
}

// fraction reads the live canary traffic share.
func (st *canaryState[I, O]) fraction() float64 { return math.Float64frombits(st.frac.Load()) }

// setFraction updates the live canary traffic share.
func (st *canaryState[I, O]) setFraction(f float64) { st.frac.Store(math.Float64bits(f)) }

// Canary stages fitted as a candidate version receiving fraction
// (0 < fraction < 1) of this route's single-prediction traffic. The
// candidate gets its own batcher and latency window, so its p95 and
// error rate are observable per-version (CanaryStats, GET
// /routes/{name}/canary) before any commitment. End the experiment with
// Promote (candidate takes all traffic; previous version drains exactly
// as in Deploy) or Abort (candidate drains and is discarded; no live
// request is lost either way). Returns the candidate's version id.
//
// Caller-assembled batches (PredictBatch) stay on the primary: a batch
// is one caller-visible unit, and splitting records across versions
// would produce mixed-version responses.
func (rt *Route[I, O]) Canary(ctx context.Context, fitted *keystone.Fitted[I, O], fraction float64) (int, error) {
	if fitted == nil {
		return 0, fmt.Errorf("serve: Canary on route %q with nil fitted pipeline", rt.name)
	}
	if math.IsNaN(fraction) || fraction <= 0 || fraction >= 1 {
		return 0, fmt.Errorf("serve: canary fraction %v out of range (0, 1)", fraction)
	}
	return rt.stage(ctx, fitted, modeCanary, fraction)
}

// Shadow stages fitted as a shadow candidate: every single-prediction
// request is served by the primary as usual and additionally mirrored to
// the candidate asynchronously. Mirror responses are discarded; only the
// candidate's latency window and error counters are kept, so a
// candidate's behaviour under the real traffic mix is observable with
// zero risk to responses. Mirroring is strictly non-blocking — a mirror
// that cannot start immediately (shadowMaxInFlight reached) is dropped
// and counted, never queued — so the primary's latency is unaffected
// beyond the cost of one atomic load and goroutine spawn. Returns the
// candidate's version id; finish with Promote or Abort.
func (rt *Route[I, O]) Shadow(ctx context.Context, fitted *keystone.Fitted[I, O]) (int, error) {
	if fitted == nil {
		return 0, fmt.Errorf("serve: Shadow on route %q with nil fitted pipeline", rt.name)
	}
	return rt.stage(ctx, fitted, modeShadow, 0)
}

// stage builds the candidate version and publishes the canary state.
func (rt *Route[I, O]) stage(ctx context.Context, fitted *keystone.Fitted[I, O], mode canaryMode, fraction float64) (int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRouteClosed
	}
	if rt.canary.Load() != nil {
		return 0, ErrCanaryActive
	}
	batch, delay := rt.limits()
	note := "canary candidate"
	if mode == modeShadow {
		note = "shadow candidate"
	}
	// A candidate is stored up front like a deploy: if it wins promotion
	// the swap must not be the first moment persistence can fail.
	art, err := rt.storeFitted(fitted)
	if err != nil {
		return 0, err
	}
	cand := &version[I, O]{
		note:     note,
		artifact: art,
		fitted:   fitted,
		batcher:  keystone.NewBatcher(fitted, batch, delay),
		deployed: time.Now(),
	}
	rt.histMu.Lock()
	cand.id = len(rt.vers) + 1
	rt.vers = append(rt.vers, cand)
	rt.histMu.Unlock()
	st := &canaryState[I, O]{
		mode:    mode,
		cand:    cand,
		started: time.Now(),
	}
	st.setFraction(fraction)
	if prim := rt.cur.Load(); prim != nil {
		st.primServed0 = prim.served.Load()
		st.primErrs0 = prim.errs.Load()
	}
	rt.canary.Store(st)
	return cand.id, nil
}

// Promote makes the staged candidate the route's live version. The
// splitter is cleared first (no new candidate picks), the pointer swap
// routes all new traffic to the candidate, and the old primary drains
// behind its gate before its batcher closes — the same lossless sequence
// as Deploy. Returns the promoted version id.
func (rt *Route[I, O]) Promote(ctx context.Context) (int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRouteClosed
	}
	st := rt.canary.Swap(nil)
	if st == nil {
		return 0, ErrNoCanary
	}
	old := rt.cur.Swap(st.cand)
	prevArt := ""
	if old != nil {
		rt.prevLiveID = old.id
		prevArt = old.artifact
		old.gate.retire()
		old.batcher.Close()
	}
	rt.retagLocked(st.cand.artifact, prevArt)
	return st.cand.id, nil
}

// Abort discards the staged candidate: the splitter is cleared (new
// requests all go to the primary), in-flight candidate requests and
// mirrors drain behind the candidate's gate, and its batcher closes.
// Requests that raced the abort retry on the primary via the usual gate
// retry loop, so an abort — like a rollback — loses nothing.
func (rt *Route[I, O]) Abort(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := rt.canary.Swap(nil)
	if st == nil {
		return ErrNoCanary
	}
	st.cand.gate.retire()
	st.cand.batcher.Close()
	return nil
}

// CanaryStats compares the staged candidate against the live primary:
// per-version served/error counters and latency quantiles from each
// version's own batcher window. ok is false when nothing is staged.
type CanaryStats struct {
	// Mode is "canary" or "shadow".
	Mode string
	// CandidateVersion is the staged candidate's version id.
	CandidateVersion int
	// Fraction is the canary traffic share (0 for shadow mode).
	Fraction float64
	// Started is when the candidate was staged.
	Started time.Time

	// PrimaryServed / CandidateServed count records served per version
	// since the candidate was staged (the primary's pre-stage history is
	// excluded, so the two windows are comparable); for a shadow
	// candidate, "served" counts completed mirrors.
	PrimaryServed, CandidateServed int64
	// PrimaryErrors / CandidateErrors count failed records since the
	// candidate was staged (a failed batch counts every record in it).
	PrimaryErrors, CandidateErrors int64
	// Latency quantiles over each version's sliding window.
	PrimaryP50, PrimaryP95     time.Duration
	CandidateP50, CandidateP95 time.Duration
	// ShadowDropped counts mirrors dropped at the in-flight cap
	// (shadow mode only).
	ShadowDropped int64
}

// CanaryStats snapshots the live canary/shadow comparison; ok reports
// whether a candidate is staged.
func (rt *Route[I, O]) CanaryStats() (stats CanaryStats, ok bool) {
	st := rt.canary.Load()
	if st == nil {
		return CanaryStats{}, false
	}
	stats = CanaryStats{
		Mode:             st.mode.String(),
		CandidateVersion: st.cand.id,
		Fraction:         st.fraction(),
		Started:          st.started,
		CandidateServed:  st.cand.served.Load(),
		CandidateErrors:  st.cand.errs.Load(),
		ShadowDropped:    st.shadowDropped.Load(),
	}
	candSnap := st.cand.batcher.Latency()
	stats.CandidateP50, stats.CandidateP95 = candSnap.P50, candSnap.P95
	if prim := rt.cur.Load(); prim != nil {
		stats.PrimaryServed = prim.served.Load() - st.primServed0
		stats.PrimaryErrors = prim.errs.Load() - st.primErrs0
		snap := prim.batcher.Latency()
		stats.PrimaryP50, stats.PrimaryP95 = snap.P50, snap.P95
	}
	return stats, true
}

// mirror sends rec to the shadow candidate asynchronously, discarding
// the response. It never blocks the caller: the in-flight cap is checked
// with one atomic add, and past it the mirror is dropped on the floor.
func (rt *Route[I, O]) mirror(st *canaryState[I, O], rec I) {
	if st.shadowInFlight.Add(1) > shadowMaxInFlight {
		st.shadowInFlight.Add(-1)
		st.shadowDropped.Add(1)
		return
	}
	go func() {
		defer st.shadowInFlight.Add(-1)
		if !st.cand.gate.enter() {
			return // candidate aborted/promoted under us; nothing to do
		}
		defer st.cand.gate.leave()
		ctx, cancel := context.WithTimeout(context.Background(), rt.timeout)
		defer cancel()
		if _, err := st.cand.batcher.Predict(ctx, rec); err != nil {
			st.cand.errs.Add(1)
		} else {
			st.cand.served.Add(1)
		}
	}()
}

// --- HTTP surface (invoked by Server.ServeHTTP) ---

// handleCanary serves the /routes/{name}/canary endpoint: GET returns
// the live comparison, POST refits a candidate (via SetRefit) and stages
// it at the requested fraction.
func (rt *Route[I, O]) handleCanary(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		stats, ok := rt.CanaryStats()
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("route %q has no canary or shadow active", rt.name))
			return
		}
		writeJSON(w, canaryStatsValue(stats))
		return
	}
	if !requirePost(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	// A pointer distinguishes an absent field (default 0.1) from an
	// explicit "fraction": 0, which is an error like any other
	// out-of-range value.
	var req struct {
		Fraction *float64 `json:"fraction"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	fraction := 0.1
	if req.Fraction != nil {
		fraction = *req.Fraction
	}
	// Validate before refitting: a bad fraction must not burn a full
	// training run, and it is the caller's 400, not a server fault.
	if math.IsNaN(fraction) || fraction <= 0 || fraction >= 1 {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("canary fraction %v out of range (0, 1)", fraction))
		return
	}
	fitted, ok := rt.refitForHTTP(w, r)
	if !ok {
		return
	}
	ver, err := rt.Canary(r.Context(), fitted, fraction)
	if err != nil {
		httpError(w, stageStatusOf(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"route": rt.name, "candidate_version": ver, "fraction": fraction})
}

// handleShadow serves POST /routes/{name}/shadow: refit a candidate and
// stage it as a shadow.
func (rt *Route[I, O]) handleShadow(w http.ResponseWriter, r *http.Request) {
	fitted, ok := rt.refitForHTTP(w, r)
	if !ok {
		return
	}
	ver, err := rt.Shadow(r.Context(), fitted)
	if err != nil {
		httpError(w, stageStatusOf(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"route": rt.name, "candidate_version": ver, "mode": "shadow"})
}

// handlePromote serves POST /routes/{name}/promote.
func (rt *Route[I, O]) handlePromote(w http.ResponseWriter, r *http.Request) {
	ver, err := rt.Promote(r.Context())
	if err != nil {
		httpError(w, stageStatusOf(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"route": rt.name, "version": ver})
}

// handleAbort serves POST /routes/{name}/abort.
func (rt *Route[I, O]) handleAbort(w http.ResponseWriter, r *http.Request) {
	if err := rt.Abort(r.Context()); err != nil {
		httpError(w, stageStatusOf(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"route": rt.name, "aborted": true})
}

// refitForHTTP runs the route's refitter for a staging endpoint.
func (rt *Route[I, O]) refitForHTTP(w http.ResponseWriter, r *http.Request) (*keystone.Fitted[I, O], bool) {
	rt.refitMu.RLock()
	refit := rt.refit
	rt.refitMu.RUnlock()
	if refit == nil {
		httpError(w, http.StatusNotImplemented, fmt.Sprintf("route %q has no refitter configured", rt.name))
		return nil, false
	}
	fitted, err := refit(r.Context())
	if err != nil {
		httpError(w, statusOf(err), "refit: "+err.Error())
		return nil, false
	}
	return fitted, true
}

// stageStatusOf maps canary lifecycle errors onto HTTP statuses:
// staging conflicts are the caller's 409s, the rest keep their usual
// mapping.
func stageStatusOf(err error) int {
	if errors.Is(err, ErrCanaryActive) || errors.Is(err, ErrNoCanary) {
		return http.StatusConflict
	}
	return statusOf(err)
}

// canaryStatsValue renders CanaryStats for the JSON surface.
func canaryStatsValue(s CanaryStats) map[string]any {
	out := map[string]any{
		"mode":              s.Mode,
		"candidate_version": s.CandidateVersion,
		"started_at":        s.Started.UTC().Format(time.RFC3339Nano),
		"primary": map[string]any{
			"served": s.PrimaryServed, "errors": s.PrimaryErrors,
			"latency_p50_ms": durMS(s.PrimaryP50), "latency_p95_ms": durMS(s.PrimaryP95),
		},
		"candidate": map[string]any{
			"served": s.CandidateServed, "errors": s.CandidateErrors,
			"latency_p50_ms": durMS(s.CandidateP50), "latency_p95_ms": durMS(s.CandidateP95),
		},
	}
	if s.Mode == "canary" {
		out["fraction"] = s.Fraction
	} else {
		out["shadow_dropped"] = s.ShadowDropped
	}
	return out
}
