package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"keystoneml/keystone"
)

// ErrRouteClosed is returned by route operations after the route (or its
// server) has been closed.
var ErrRouteClosed = errors.New("serve: route closed")

// version is one deployed pipeline artifact behind a route: the fitted
// pipeline, its micro-batcher, and the drain machinery that makes
// swapping it out lossless.
//
// The zero-downtime contract: requests pin the version they load with an
// RLock held for the whole prediction. Deploy publishes the successor
// first (the atomic pointer swap), then takes the write lock — which
// waits for every pinned request to finish — marks the version retired,
// and only then closes its batcher. A request that loaded the old
// pointer either gets in before the write lock (and is served normally
// by the still-running old version) or blocks, observes retired, and
// retries against the new version. No request ever meets a closed
// batcher.
type version[I, O any] struct {
	id       int
	note     string
	artifact string // content address in the bound ArtifactStore ("" = not stored)
	fitted   *keystone.Fitted[I, O]
	batcher  *keystone.Batcher[I, O]
	deployed time.Time
	served   atomic.Int64
	errs     atomic.Int64 // failed records attributed to this version

	gate drainGate
}

// Deploy fits a new pipeline version behind the running route and
// atomically switches traffic to it: the route's next request is served
// by fitted, in-flight requests drain on the previous version, and the
// previous batcher is closed only once empty. Returns the new version id.
// Deploys serialize per route; the previous version stays in the history
// for rollback.
func (rt *Route[I, O]) Deploy(ctx context.Context, fitted *keystone.Fitted[I, O]) (int, error) {
	if fitted == nil {
		return 0, fmt.Errorf("serve: Deploy on route %q with nil fitted pipeline", rt.name)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRouteClosed
	}
	if rt.canary.Load() != nil {
		return 0, ErrCanaryActive
	}
	// With an artifact store bound the new version is stored before the
	// swap: a deploy that cannot be made durable fails loudly with the
	// old version still serving.
	art, err := rt.storeFitted(fitted)
	if err != nil {
		return 0, err
	}
	return rt.deployLocked(fitted, "deploy", art), nil
}

// Rollback redeploys the artifact of the version that was live before
// the current one, as a new version (history is append-only). Returns
// the new version id.
func (rt *Route[I, O]) Rollback(ctx context.Context) (int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRouteClosed
	}
	if rt.canary.Load() != nil {
		return 0, ErrCanaryActive
	}
	// prevLiveID tracks the last version that actually held traffic, not
	// merely the previous history entry — aborted canary candidates sit
	// in the history too and must never be a rollback target.
	if rt.prevLiveID == 0 {
		// No in-memory predecessor — a freshly restarted process. With an
		// artifact store bound, the "<route>.previous" tag written by the
		// pre-restart process still knows what was live before the last
		// swap, so rollback survives the restart.
		return rt.rollbackFromStoreLocked()
	}
	rt.histMu.RLock()
	prev := rt.vers[rt.prevLiveID-1]
	rt.histMu.RUnlock()
	return rt.deployLocked(prev.fitted, fmt.Sprintf("rollback to v%d", prev.id), prev.artifact), nil
}

// rollbackFromStoreLocked redeploys the artifact behind the route's
// "<route>.previous" tag; caller holds rt.mu.
func (rt *Route[I, O]) rollbackFromStoreLocked() (int, error) {
	if rt.store == nil {
		return 0, fmt.Errorf("serve: route %q has no previous version to roll back to", rt.name)
	}
	tag := rt.name + ".previous"
	id, err := rt.store.Resolve(tag)
	if err != nil {
		return 0, fmt.Errorf("serve: route %q has no previous version to roll back to (in memory or under tag %q: %v)", rt.name, tag, err)
	}
	data, err := rt.store.Get(id)
	if err != nil {
		return 0, err
	}
	fitted, err := keystone.Decode[I, O](data)
	if err != nil {
		return 0, fmt.Errorf("serve: route %q artifact %s: %w", rt.name, shortID(id), err)
	}
	return rt.deployLocked(fitted, "rollback to artifact "+shortID(id), id), nil
}

// Deploy is the name-addressed form: it resolves the route on the server
// and type-asserts it, so callers holding only the Server can hot-swap.
func Deploy[I, O any](ctx context.Context, s *Server, name string, fitted *keystone.Fitted[I, O]) (int, error) {
	h := s.route(name)
	if h == nil {
		return 0, fmt.Errorf("serve: no route %q", name)
	}
	rt, ok := h.(*Route[I, O])
	if !ok {
		return 0, fmt.Errorf("serve: route %q does not serve this record type", name)
	}
	return rt.Deploy(ctx, fitted)
}

// deployLocked builds, publishes and drains; caller holds rt.mu.
// artifact is the new version's content address in the bound store ("" =
// not stored); after the swap the store's live/previous tags follow.
func (rt *Route[I, O]) deployLocked(fitted *keystone.Fitted[I, O], note, artifact string) int {
	batch, delay := rt.limits()
	v := &version[I, O]{
		note:     note,
		artifact: artifact,
		fitted:   fitted,
		batcher:  keystone.NewBatcher(fitted, batch, delay),
		deployed: time.Now(),
	}
	rt.histMu.Lock()
	v.id = len(rt.vers) + 1
	rt.vers = append(rt.vers, v)
	rt.histMu.Unlock()

	old := rt.cur.Swap(v)
	prevArt := ""
	if old != nil {
		rt.prevLiveID = old.id
		prevArt = old.artifact
		old.gate.retire()
		old.batcher.Close()
	}
	rt.retagLocked(artifact, prevArt)
	return v.id
}

// drainGate is the per-version admission control behind the hot-swap:
// requests hold the read side for the duration of a prediction, retire
// blocks until every holder leaves and then turns new entrants away.
type drainGate struct {
	mu      sync.RWMutex
	retired bool
}

// enter pins the version; callers must leave() after the prediction.
// false means the version retired — retry on the current pointer.
func (g *drainGate) enter() bool {
	g.mu.RLock()
	if g.retired {
		g.mu.RUnlock()
		return false
	}
	return true
}

func (g *drainGate) leave() { g.mu.RUnlock() }

// retire waits out every pinned request, then marks the gate closed.
func (g *drainGate) retire() {
	g.mu.Lock()
	g.retired = true
	g.mu.Unlock()
}

// predict serves one record from whatever version is live, retrying
// across a concurrent swap; it reports the version that served. With a
// canary staged, the deterministic splitter sends the configured
// fraction of requests to the candidate (falling back to the primary if
// the candidate retires mid-flight); with a shadow staged, the record is
// additionally mirrored to the candidate without waiting on it.
func (rt *Route[I, O]) predict(ctx context.Context, rec I) (O, int, error) {
	var zero O
	// Pin the admitter for the whole request: a concurrent SetAdmission
	// swap must not split an acquire/release pair across two instances.
	adm := rt.adm.Load()
	if !adm.acquire(1) {
		return zero, 0, ErrOverloaded
	}
	defer adm.release(1)
	tryCanary := true
	for {
		v := rt.cur.Load()
		if v == nil {
			return zero, 0, ErrRouteClosed
		}
		var st *canaryState[I, O]
		if s := rt.canary.Load(); s != nil {
			switch s.mode {
			case modeShadow:
				st = s // mirror after the primary pick succeeds
			case modeCanary:
				if tryCanary && s.pickCandidate() {
					// One candidate attempt per request: if the candidate
					// retires before we pin it (concurrent Abort/Promote),
					// fall through to the primary rather than re-rolling.
					tryCanary = false
					if s.cand.gate.enter() {
						v = s.cand
						if adm.queueFull(v.batcher.QueueDepth()) {
							v.gate.leave()
							return zero, 0, ErrOverloaded
						}
						out, err := rt.servePinned(ctx, v, rec)
						return out, v.id, err
					}
					continue
				}
			}
		}
		if !v.gate.enter() {
			continue // swapped out under us; retry on the successor
		}
		if adm.queueFull(v.batcher.QueueDepth()) {
			v.gate.leave()
			return zero, 0, ErrOverloaded
		}
		if st != nil {
			rt.mirror(st, rec)
		}
		out, err := rt.servePinned(ctx, v, rec)
		return out, v.id, err
	}
}

// servePinned runs one record through a version whose gate the caller
// already holds, keeping the per-version counters; it releases the gate.
func (rt *Route[I, O]) servePinned(ctx context.Context, v *version[I, O], rec I) (O, error) {
	defer v.gate.leave()
	out, err := v.batcher.Predict(ctx, rec)
	if err == nil {
		rt.served.Add(1)
		v.served.Add(1)
	} else {
		v.errs.Add(1)
	}
	return out, err
}

// predictBatch serves a caller-assembled batch on the live version's
// direct batch path (no micro-batching — the caller already batched).
// Batches always ride the primary: one batch is one caller-visible unit,
// so it is never split across a canary boundary.
func (rt *Route[I, O]) predictBatch(ctx context.Context, recs []I) ([]O, int, error) {
	adm := rt.adm.Load()
	if !adm.acquire(int64(len(recs))) {
		return nil, 0, ErrOverloaded
	}
	defer adm.release(int64(len(recs)))
	for {
		v := rt.cur.Load()
		if v == nil {
			return nil, 0, ErrRouteClosed
		}
		if !v.gate.enter() {
			continue
		}
		outs, err := v.fitted.TransformBatch(ctx, recs)
		if err == nil {
			rt.served.Add(int64(len(recs)))
			v.served.Add(int64(len(recs)))
		} else {
			// Counters are in records on both sides: a failed batch failed
			// every record in it, or error rates would understate batch
			// failures by the batch size.
			v.errs.Add(int64(len(recs)))
		}
		id := v.id
		v.gate.leave()
		return outs, id, err
	}
}

// closeRoute retires the live version and stops the tuner. Requests in
// flight complete; later ones get ErrRouteClosed.
func (rt *Route[I, O]) closeRoute() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	if rt.tunerStop != nil {
		close(rt.tunerStop)
	}
	if st := rt.canary.Swap(nil); st != nil {
		st.cand.gate.retire()
		st.cand.batcher.Close()
	}
	old := rt.cur.Swap(nil)
	if old != nil {
		old.gate.retire()
		old.batcher.Close()
	}
}
