package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keystoneml/keystone"
)

// TestAdmissionInFlightCap: with MaxInFlight n, request n+1 is shed
// immediately with ErrOverloaded — it neither queues nor deadlocks —
// and capacity freed by a finishing request is reusable.
func TestAdmissionInFlightCap(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	p := keystone.Input[float64]()
	// Only serving-time records (x >= 0) hold; the training record must
	// pass through or Fit itself would block.
	out := keystone.Then(p, keystone.NewOp("holding", func(x float64) []float64 {
		if x >= 0 {
			entered <- struct{}{}
			<-release
		}
		return []float64{x}
	}))
	f, err := out.Fit(context.Background(), []float64{-1}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", f, JSONCodec[float64, []float64]{},
		WithBatchLimits(1, 100*time.Microsecond),
		WithAdmission(Admission{MaxInFlight: 2}))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Predict(context.Background(), float64(i)); err != nil {
				t.Errorf("admitted request %d failed: %v", i, err)
			}
		}(i)
	}
	<-entered // at least one is executing, both hold in-flight units
	waitFor(t, func() bool { return rt.adm.Load().InFlight() == 2 })

	if _, err := rt.Predict(context.Background(), 99); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("request over the cap = %v, want ErrOverloaded", err)
	}
	if got := rt.Shed(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}

	close(release)
	wg.Wait()
	waitFor(t, func() bool { return rt.adm.Load().InFlight() == 0 })
	if _, err := rt.Predict(context.Background(), 5); err != nil {
		t.Fatalf("request after capacity freed = %v", err)
	}
}

// TestAdmissionQueueWatermark429 floods a slow route whose batcher queue
// is capped: some requests must be shed with ErrOverloaded, the rest
// must complete, and nothing may deadlock. Exercised under -race by CI.
func TestAdmissionQueueWatermark429(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "slow", fitSlowMarker(t, 1, 3*time.Millisecond), JSONCodec[float64, []float64]{},
		WithBatchLimits(1, 100*time.Microsecond),
		WithAdmission(Admission{MaxQueue: 2}))
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	var served, shed, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				_, err := rt.Predict(context.Background(), float64(c))
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					other.Add(1)
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("flood deadlocked: queue-capped route never drained")
	}
	if other.Load() != 0 {
		t.Fatalf("%d unexpected errors", other.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served under the watermark")
	}
	if shed.Load() == 0 {
		t.Fatal("no requests shed: the watermark never tripped under a 16-client flood of a 3ms/record route")
	}
	if got := rt.Shed(); got != shed.Load() {
		t.Fatalf("route shed counter %d != client-observed %d", got, shed.Load())
	}
	t.Logf("%d served, %d shed", served.Load(), shed.Load())
}

// TestAdmissionHTTP429 checks the wire contract: a shed request is a 429
// with a Retry-After hint, and the stats surface reports the shed count.
func TestAdmissionHTTP429(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	p := keystone.Input[string]()
	// The training record passes straight through (Fit applies the op);
	// only serving-time documents hold the slot.
	out := keystone.Then(p, keystone.NewOp("holdtext", func(s string) []float64 {
		if s != "train" {
			entered <- struct{}{}
			<-release
		}
		return []float64{1, 0}
	}))
	f, err := out.Fit(context.Background(), []string{"train"}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	if _, err := Register(s, "text", f, TextCodec{},
		WithBatchLimits(1, 100*time.Microsecond),
		WithAdmission(Admission{MaxInFlight: 1, RetryAfter: 3 * time.Second})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"text":"hold"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the in-flight slot is taken

	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"text":"shed me"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	close(release)
	<-reqDone

	st := s.RouteStats("text")
	adm, ok := st["admission"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing admission block: %v", st)
	}
	if shed := adm["shed"].(int64); shed < 1 {
		t.Fatalf("stats shed = %d, want >= 1", shed)
	}
}

// TestAdmissionBatchUnits: a caller-assembled batch acquires one
// in-flight unit per record, so a batch that alone exceeds MaxInFlight
// is shed rather than admitted past the cap.
func TestAdmissionBatchUnits(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithAdmission(Admission{MaxInFlight: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.PredictBatch(context.Background(), []float64{1, 2, 3}); err != nil {
		t.Fatalf("batch within the cap = %v", err)
	}
	if _, err := rt.PredictBatch(context.Background(), []float64{1, 2, 3, 4, 5}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch over the cap = %v, want ErrOverloaded", err)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
