package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keystoneml/keystone"
)

// snap builds a window snapshot for the model-based tuner tests.
func snap(p95 time.Duration, occ float64, samples int) keystone.LatencySnapshot {
	return keystone.LatencySnapshot{Samples: samples, Batches: samples, P50: p95 / 2, P95: p95, MeanOccupancy: occ}
}

// TestTunerConvergesDelayBound models the delay-bound regime: observed
// p95 tracks the assembly window (plus 2ms of execution). From a 50ms
// window against a 10ms target the tuner must converge below target and
// stay there, without undershooting the floor.
func TestTunerConvergesDelayBound(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond})
	batch, delay := 32, 50*time.Millisecond
	const exec = 2 * time.Millisecond
	converged := -1
	for i := 0; i < 40; i++ {
		batch, delay = tuner.Step(snap(delay+exec, 0.3, 64), batch, delay)
		if delay+exec <= 10*time.Millisecond && converged < 0 {
			converged = i
		}
	}
	if converged < 0 {
		t.Fatalf("never converged under the 10ms target; final delay %v", delay)
	}
	if converged > 15 {
		t.Errorf("took %d steps to converge, want multiplicative-decrease speed", converged)
	}
	if delay < tuner.Config().MinDelay {
		t.Errorf("delay %v fell below the floor %v", delay, tuner.Config().MinDelay)
	}
	// Steady state: the modeled p95 must stay under target forever after.
	for i := 0; i < 20; i++ {
		batch, delay = tuner.Step(snap(delay+exec, 0.3, 64), batch, delay)
		if delay+exec > 10*time.Millisecond {
			t.Fatalf("oscillated back over target at step %d (delay %v)", i, delay)
		}
	}
}

// TestTunerGrowsBatchWhenThroughputBound: over the SLO with batches
// filling to the brim, the tuner must grow maxBatch (amortization) while
// cutting the window, and respect the ceiling.
func TestTunerGrowsBatchWhenThroughputBound(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond, MaxBatch: 128})
	batch, delay := 16, 5*time.Millisecond
	for i := 0; i < 10; i++ {
		batch, delay = tuner.Step(snap(40*time.Millisecond, 1.0, 64), batch, delay)
	}
	if batch != 128 {
		t.Errorf("throughput-bound batch = %d, want growth to the 128 cap", batch)
	}
	if delay != tuner.Config().MinDelay {
		t.Errorf("throughput-bound delay = %v, want decay to the floor %v", delay, tuner.Config().MinDelay)
	}
}

// TestTunerSpendsHeadroom: comfortably under target, the window grows
// (bounded) so batching amortizes harder; near-empty batches shrink the
// batch limit toward MinBatch.
func TestTunerSpendsHeadroom(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 50 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	batch, delay := 32, time.Millisecond
	for i := 0; i < 60; i++ {
		batch, delay = tuner.Step(snap(2*time.Millisecond, 0.1, 64), batch, delay)
	}
	if delay != 20*time.Millisecond {
		t.Errorf("headroom delay = %v, want growth to the 20ms cap", delay)
	}
	if batch != tuner.Config().MinBatch {
		t.Errorf("near-empty batches kept batch = %d, want decay to %d", batch, tuner.Config().MinBatch)
	}
}

// TestTunerHoldsWithoutEvidence: below MinSamples the tuner must not act.
func TestTunerHoldsWithoutEvidence(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond})
	batch, delay := tuner.Step(snap(time.Hour, 1.0, 3), 32, 2*time.Millisecond)
	if batch != 32 || delay != 2*time.Millisecond {
		t.Errorf("tuner acted on %d samples: (%d, %v)", 3, batch, delay)
	}
}

// TestAutotunerLiveConvergence drives a real route whose batcher starts
// with a hostile 80ms assembly window against a 15ms p95 SLO, under
// concurrent load. The tuner must pull the window down by at least 4x
// within a second of traffic — the online half of the acceptance
// criterion (the keybench serve experiment quantifies the rest).
func TestAutotunerLiveConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := keystone.Input[float64]()
	out := keystone.Then(p, keystone.NewOp("ms", func(x float64) []float64 {
		time.Sleep(time.Millisecond)
		return []float64{1, x}
	}))
	f, err := out.Fit(context.Background(), []float64{1}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "tuned", f, JSONCodec[float64, []float64]{},
		WithBatchLimits(8, 80*time.Millisecond),
		WithSLO(SLO{TargetP95: 15 * time.Millisecond, Interval: 20 * time.Millisecond, MinSamples: 4}))
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := rt.Predict(context.Background(), float64(i)); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(time.Second)
	stop.Store(true)
	wg.Wait()

	_, delay := rt.limits()
	if delay > 20*time.Millisecond {
		t.Fatalf("autotuner left maxDelay at %v after 1s against a 15ms SLO (started at 80ms)", delay)
	}
	t.Logf("converged maxDelay %v from 80ms against 15ms SLO", delay)
}
