package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keystoneml/keystone"
)

// snap builds a window snapshot for the model-based tuner tests.
func snap(p95 time.Duration, occ float64, samples int) keystone.LatencySnapshot {
	return keystone.LatencySnapshot{Samples: samples, Batches: samples, P50: p95 / 2, P95: p95, MeanOccupancy: occ}
}

// TestTunerConvergesDelayBound models the delay-bound regime: observed
// p95 tracks the assembly window (plus 2ms of execution). From a 50ms
// window against a 10ms target the tuner must converge below target and
// stay there, without undershooting the floor.
func TestTunerConvergesDelayBound(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond})
	batch, delay := 32, 50*time.Millisecond
	const exec = 2 * time.Millisecond
	converged := -1
	for i := 0; i < 40; i++ {
		batch, delay = tuner.Step(snap(delay+exec, 0.3, 64), batch, delay)
		if delay+exec <= 10*time.Millisecond && converged < 0 {
			converged = i
		}
	}
	if converged < 0 {
		t.Fatalf("never converged under the 10ms target; final delay %v", delay)
	}
	if converged > 15 {
		t.Errorf("took %d steps to converge, want multiplicative-decrease speed", converged)
	}
	if delay < tuner.Config().MinDelay {
		t.Errorf("delay %v fell below the floor %v", delay, tuner.Config().MinDelay)
	}
	// Steady state: the modeled p95 must stay under target forever after.
	for i := 0; i < 20; i++ {
		batch, delay = tuner.Step(snap(delay+exec, 0.3, 64), batch, delay)
		if delay+exec > 10*time.Millisecond {
			t.Fatalf("oscillated back over target at step %d (delay %v)", i, delay)
		}
	}
}

// TestTunerGrowsBatchWhenThroughputBound: over the SLO with batches
// filling to the brim, the tuner must grow maxBatch (amortization) while
// cutting the window, and respect the ceiling.
func TestTunerGrowsBatchWhenThroughputBound(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond, MaxBatch: 128})
	batch, delay := 16, 5*time.Millisecond
	for i := 0; i < 10; i++ {
		batch, delay = tuner.Step(snap(40*time.Millisecond, 1.0, 64), batch, delay)
	}
	if batch != 128 {
		t.Errorf("throughput-bound batch = %d, want growth to the 128 cap", batch)
	}
	if delay != tuner.Config().MinDelay {
		t.Errorf("throughput-bound delay = %v, want decay to the floor %v", delay, tuner.Config().MinDelay)
	}
}

// TestTunerSpendsHeadroom: comfortably under target, the window grows
// (bounded) so batching amortizes harder; near-empty batches shrink the
// batch limit toward MinBatch.
func TestTunerSpendsHeadroom(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 50 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	batch, delay := 32, time.Millisecond
	for i := 0; i < 60; i++ {
		batch, delay = tuner.Step(snap(2*time.Millisecond, 0.1, 64), batch, delay)
	}
	if delay != 20*time.Millisecond {
		t.Errorf("headroom delay = %v, want growth to the 20ms cap", delay)
	}
	if batch != tuner.Config().MinBatch {
		t.Errorf("near-empty batches kept batch = %d, want decay to %d", batch, tuner.Config().MinBatch)
	}
}

// snapT is snap with an observed throughput, for the multi-objective
// tests.
func snapT(p95 time.Duration, occ float64, samples int, rps float64) keystone.LatencySnapshot {
	s := snap(p95, occ, samples)
	s.Throughput = rps
	return s
}

// TestTunerThroughputFloorBlocksWindowCollapse: over the p95 target but
// under the throughput floor, the tuner must not collapse the window the
// way the single-objective policy does — it grows the batch to win the
// throughput back and trims the window only gently.
func TestTunerThroughputFloorBlocksWindowCollapse(t *testing.T) {
	single := NewTuner(SLO{TargetP95: 10 * time.Millisecond})
	multi := NewTuner(SLO{TargetP95: 10 * time.Millisecond, ThroughputFloor: 500})

	over := snapT(25*time.Millisecond, 0.6, 64, 200) // p95 2.5x target, rate under floor
	sBatch, sDelay := single.Step(over, 16, 20*time.Millisecond)
	mBatch, mDelay := multi.Step(over, 16, 20*time.Millisecond)

	if sDelay != 12*time.Millisecond { // 0.6x: the single-objective cut
		t.Fatalf("single-objective delay = %v, want 12ms", sDelay)
	}
	if mDelay < 17*time.Millisecond { // 0.9x: only a gentle trim under the floor
		t.Errorf("floor-violated delay = %v; the window collapsed despite throughput starvation", mDelay)
	}
	if mBatch <= sBatch {
		t.Errorf("floor-violated batch = %d (single-objective %d); want batch growth to recover throughput", mBatch, sBatch)
	}

	// Starvation lowers the occupancy bar for the doubling; it must not
	// stack a second doubling when occupancy alone already triggers one.
	full := snapT(25*time.Millisecond, 0.95, 64, 200)
	b, _ := multi.Step(full, 16, 20*time.Millisecond)
	if b != 32 {
		t.Errorf("starved + occupancy-full batch = %d after one step from 16, want a single doubling to 32", b)
	}
}

// TestTunerFloorGrowsBatchInBand: inside the p95 band (no violation, no
// big headroom) with throughput under the floor and real demand, the
// tuner grows the batch without touching the window.
func TestTunerFloorGrowsBatchInBand(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond, ThroughputFloor: 500})
	inBand := snapT(9*time.Millisecond, 0.8, 64, 300)
	batch, delay := tuner.Step(inBand, 16, 5*time.Millisecond)
	if batch <= 16 {
		t.Errorf("in-band starved batch = %d, want growth", batch)
	}
	if delay != 5*time.Millisecond {
		t.Errorf("in-band starved delay = %v, want unchanged 5ms", delay)
	}
	// Same snapshot with a healthy rate: no action inside the band.
	batch, delay = tuner.Step(snapT(9*time.Millisecond, 0.8, 64, 900), 16, 5*time.Millisecond)
	if batch != 16 || delay != 5*time.Millisecond {
		t.Errorf("in-band healthy step changed limits to (%d, %v)", batch, delay)
	}
}

// TestTunerFloorKeepsNearEmptyBatches: the headroom regime normally
// shrinks a near-empty batch limit, but under the floor that would give
// up capacity — the tuner must hold it.
func TestTunerFloorKeepsNearEmptyBatches(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 50 * time.Millisecond, ThroughputFloor: 500})
	batch, _ := tuner.Step(snapT(2*time.Millisecond, 0.1, 64, 100), 32, time.Millisecond)
	if batch != 32 {
		t.Errorf("starved near-empty batch = %d, want held at 32", batch)
	}
}

// TestTunerHoldsWithoutEvidence: below MinSamples the tuner must not act.
func TestTunerHoldsWithoutEvidence(t *testing.T) {
	tuner := NewTuner(SLO{TargetP95: 10 * time.Millisecond})
	batch, delay := tuner.Step(snap(time.Hour, 1.0, 3), 32, 2*time.Millisecond)
	if batch != 32 || delay != 2*time.Millisecond {
		t.Errorf("tuner acted on %d samples: (%d, %v)", 3, batch, delay)
	}
}

// TestAutotunerLiveConvergence drives a real route whose batcher starts
// with a hostile 80ms assembly window against a 15ms p95 SLO, under
// concurrent load. The tuner must pull the window down by at least 4x
// within a second of traffic — the online half of the acceptance
// criterion (the keybench serve experiment quantifies the rest).
func TestAutotunerLiveConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := keystone.Input[float64]()
	out := keystone.Then(p, keystone.NewOp("ms", func(x float64) []float64 {
		time.Sleep(time.Millisecond)
		return []float64{1, x}
	}))
	f, err := out.Fit(context.Background(), []float64{1}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "tuned", f, JSONCodec[float64, []float64]{},
		WithBatchLimits(8, 80*time.Millisecond),
		WithSLO(SLO{TargetP95: 15 * time.Millisecond, Interval: 20 * time.Millisecond, MinSamples: 4}))
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := rt.Predict(context.Background(), float64(i)); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(time.Second)
	stop.Store(true)
	wg.Wait()

	_, delay := rt.limits()
	if delay > 20*time.Millisecond {
		t.Fatalf("autotuner left maxDelay at %v after 1s against a 15ms SLO (started at 80ms)", delay)
	}
	t.Logf("converged maxDelay %v from 80ms against 15ms SLO", delay)
}
