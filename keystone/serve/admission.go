package serve

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when a route's admission control sheds a
// request: the route is at its in-flight cap or its batcher queue is
// past the high watermark. HTTP maps it to 429 Too Many Requests with a
// Retry-After hint.
var ErrOverloaded = errors.New("serve: route overloaded")

// Admission caps how much concurrent work one route accepts. Under
// overload a capped route sheds the excess immediately (429 with
// Retry-After) instead of queueing it, which is what keeps the latency
// of the requests it does serve near the service time: every shed
// request is queueing delay the admitted requests never see.
//
// The two caps shed at different points. MaxInFlight bounds admitted
// records (single predictions and batch records alike) before they
// enqueue — a hard concurrency ceiling. MaxQueue is a high-watermark
// shedder on the batcher's assembly queue: it trips when arrivals have
// outpaced the pipeline long enough to back the queue up, which is the
// earliest signal of sustained (rather than instantaneous) overload.
type Admission struct {
	// MaxInFlight caps records admitted and not yet answered
	// (0 = unlimited). Size it near service_rate x tolerable_queueing:
	// a route serving 500 rec/s with a 50ms latency budget wants ~25.
	MaxInFlight int
	// MaxQueue sheds single predictions while the live version's batcher
	// has at least this many requests queued ahead of batch assembly
	// (0 = unlimited). Batch requests bypass the batcher, so only
	// MaxInFlight governs them.
	MaxQueue int
	// RetryAfter is the hint sent to shed clients (default 1s).
	RetryAfter time.Duration
}

func (a Admission) withDefaults() Admission {
	if a.RetryAfter <= 0 {
		a.RetryAfter = time.Second
	}
	return a
}

// enabled reports whether any cap is configured.
func (a Admission) enabled() bool { return a.MaxInFlight > 0 || a.MaxQueue > 0 }

// WithAdmission attaches admission control to a route at Register time.
func WithAdmission(a Admission) RouteOption {
	return func(c *routeConfig) { c.admission = a }
}

// admitter is the per-route runtime state behind Admission: an in-flight
// gauge and a shed counter. A nil admitter admits everything.
type admitter struct {
	cfg      Admission
	inflight atomic.Int64
	shed     atomic.Int64
}

func newAdmitter(cfg Admission) *admitter {
	if !cfg.enabled() {
		return nil
	}
	return &admitter{cfg: cfg.withDefaults()}
}

// acquire reserves n in-flight units, or sheds the request. Callers that
// get true must release(n) when the request completes.
func (a *admitter) acquire(n int64) bool {
	if a == nil {
		return true
	}
	if a.cfg.MaxInFlight > 0 && a.inflight.Add(n) > int64(a.cfg.MaxInFlight) {
		a.inflight.Add(-n)
		a.shed.Add(1)
		return false
	}
	if a.cfg.MaxInFlight <= 0 {
		a.inflight.Add(n)
	}
	return true
}

func (a *admitter) release(n int64) {
	if a != nil {
		a.inflight.Add(-n)
	}
}

// queueFull applies the high-watermark shed against an observed batcher
// queue depth; it records the shed when it trips.
func (a *admitter) queueFull(depth int) bool {
	if a == nil || a.cfg.MaxQueue <= 0 || depth < a.cfg.MaxQueue {
		return false
	}
	a.shed.Add(1)
	return true
}

// retryAfter is the Retry-After hint for shed responses.
func (a *admitter) retryAfter() time.Duration {
	if a == nil {
		return time.Second
	}
	return a.cfg.RetryAfter
}

// Shed reports how many requests this route's admission control has
// turned away since registration.
func (a *admitter) Shed() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}

// InFlight reports the records currently admitted and unanswered.
func (a *admitter) InFlight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}
