package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"
)

// This file is the shared-rollout-state surface the distributed tier
// pushes through: a dist.Router (or any coordinator) holds one desired
// RolloutState — canary fraction, admission caps — and propagates it to
// every replica via POST /routes/{name}/rollout, so N serve.Server
// processes fronting the same route stay behaviorally identical without
// sharing memory. Both knobs apply live: admission swaps atomically
// under traffic and the canary splitter reads its fraction lock-free.

// RolloutState is the replica-shared rollout configuration for one
// route. Nil fields mean "leave unchanged", so a coordinator can push
// just the knob it is turning.
type RolloutState struct {
	// CanaryFraction retargets the traffic share of a staged canary
	// (0 < f < 1). Pushing it with no canary staged is an error (409).
	CanaryFraction *float64 `json:"canary_fraction,omitempty"`
	// MaxInFlight / MaxQueue / RetryAfterMS rebuild the route's
	// admission control; fields left nil keep their current value.
	// Setting both caps to 0 disables admission entirely.
	MaxInFlight  *int `json:"max_in_flight,omitempty"`
	MaxQueue     *int `json:"max_queue,omitempty"`
	RetryAfterMS *int `json:"retry_after_ms,omitempty"`
}

// SetAdmission replaces the route's admission control under live
// traffic. In-flight requests finish against the admitter they were
// admitted by; new requests see the new caps immediately. A zero
// Admission disables admission control.
func (rt *Route[I, O]) SetAdmission(a Admission) {
	rt.adm.Store(newAdmitter(a))
}

// AdmissionConfig returns the route's current admission caps (zero
// value when admission control is disabled).
func (rt *Route[I, O]) AdmissionConfig() Admission {
	if adm := rt.adm.Load(); adm != nil {
		return adm.cfg
	}
	return Admission{}
}

// SetCanaryFraction retargets the staged canary's traffic share while
// it keeps serving. It returns ErrNoCanary when no candidate is staged
// (shadow mode has no fraction to set).
func (rt *Route[I, O]) SetCanaryFraction(f float64) error {
	if math.IsNaN(f) || f <= 0 || f >= 1 {
		return fmt.Errorf("serve: canary fraction %v out of range (0, 1)", f)
	}
	st := rt.canary.Load()
	if st == nil || st.mode != modeCanary {
		return ErrNoCanary
	}
	st.setFraction(f)
	return nil
}

// ApplyRollout applies a pushed rollout state: admission first (always
// applicable), then the canary fraction (requires a staged canary).
func (rt *Route[I, O]) ApplyRollout(s RolloutState) error {
	if s.MaxInFlight != nil || s.MaxQueue != nil || s.RetryAfterMS != nil {
		a := rt.AdmissionConfig()
		if s.MaxInFlight != nil {
			a.MaxInFlight = *s.MaxInFlight
		}
		if s.MaxQueue != nil {
			a.MaxQueue = *s.MaxQueue
		}
		if s.RetryAfterMS != nil {
			a.RetryAfter = time.Duration(*s.RetryAfterMS) * time.Millisecond
		}
		rt.SetAdmission(a)
	}
	if s.CanaryFraction != nil {
		return rt.SetCanaryFraction(*s.CanaryFraction)
	}
	return nil
}

// rolloutValue renders the route's current rollout state.
func (rt *Route[I, O]) rolloutValue() map[string]any {
	a := rt.AdmissionConfig()
	out := map[string]any{
		"max_in_flight":  a.MaxInFlight,
		"max_queue":      a.MaxQueue,
		"retry_after_ms": int(a.RetryAfter / time.Millisecond),
	}
	if st := rt.canary.Load(); st != nil && st.mode == modeCanary {
		out["canary_fraction"] = st.fraction()
	}
	return out
}

// handleRollout backs /routes/{name}/rollout: GET returns the current
// rollout state, POST applies a pushed RolloutState.
func (rt *Route[I, O]) handleRollout(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, rt.rolloutValue())
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use GET for state or POST to apply")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var s RolloutState
	if err := json.Unmarshal(body, &s); err != nil {
		httpError(w, http.StatusBadRequest, "parse rollout state: "+err.Error())
		return
	}
	if err := rt.ApplyRollout(s); err != nil {
		// ErrNoCanary is a staging conflict (409); anything else here is
		// a bad input (fraction out of range).
		status := http.StatusBadRequest
		if errors.Is(err, ErrNoCanary) {
			status = http.StatusConflict
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, rt.rolloutValue())
}

// registryHealth implements handler: the per-route inputs to the
// server-level registry aggregation on GET /stats.
func (rt *Route[I, O]) registryHealth() (int64, string, bool) {
	if rt.store == nil {
		return 0, "", false
	}
	var live string
	if v := rt.cur.Load(); v != nil {
		live = v.artifact
	}
	return rt.tagErrs.Load(), live, true
}
