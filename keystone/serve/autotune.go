package serve

import (
	"time"

	"keystoneml/keystone"
)

// SLO declares a latency objective for one route. When TargetP95 is
// positive the route runs an autotuner that retargets its batcher's
// (maxBatch, maxDelay) online from the observed latency window — the
// static -max-batch/-max-delay flags become mere starting points.
type SLO struct {
	// TargetP95 is the 95th-percentile request latency to steer toward.
	// <= 0 disables autotuning for the route.
	TargetP95 time.Duration
	// Interval is the tuning cadence (default 250ms).
	Interval time.Duration
	// MinBatch/MaxBatch bound the tuned batch size (defaults 1, 512).
	MinBatch, MaxBatch int
	// MinDelay/MaxDelay bound the tuned assembly window (defaults 50µs,
	// 100ms).
	MinDelay, MaxDelay time.Duration
	// MinSamples is how many latency observations the window needs
	// before a tuning step acts (default 16).
	MinSamples int
	// ThroughputFloor, when positive, makes the objective
	// multi-objective: keep p95 under TargetP95 *without* letting the
	// observed serving rate (records/sec) fall below this floor. With
	// the floor violated the tuner stops collapsing the assembly window
	// (which would trade away batching efficiency) and instead grows the
	// batch to win throughput back — so admission-control shedding and
	// window-shrinking pull in the same direction instead of fighting.
	ThroughputFloor float64
}

func (s SLO) withDefaults() SLO {
	if s.Interval <= 0 {
		s.Interval = 250 * time.Millisecond
	}
	if s.MinBatch <= 0 {
		s.MinBatch = 1
	}
	if s.MaxBatch <= 0 {
		s.MaxBatch = 512
	}
	if s.MinDelay <= 0 {
		s.MinDelay = 50 * time.Microsecond
	}
	if s.MaxDelay <= 0 {
		s.MaxDelay = 100 * time.Millisecond
	}
	if s.MinSamples <= 0 {
		s.MinSamples = 16
	}
	return s
}

// Tuner adjusts a batcher's (maxBatch, maxDelay) toward a p95 target
// using AIMD-style feedback on the batcher's latency window:
//
//   - Over the SLO with batches filling before the window expires
//     (occupancy ≥ 0.9): the route is throughput-bound — double maxBatch
//     to amortize per-flush overhead, and cut the delay window.
//   - Over the SLO otherwise: latency is delay-bound — cut maxDelay
//     multiplicatively (x0.6).
//   - Comfortably under the SLO (p95 < 0.7·target): spend the headroom
//     on batching — grow the window (x1.15), and grow the batch if
//     occupancy shows demand (or shrink it when batches run near-empty).
//
// Multiplicative decrease reacts within a few intervals to violations;
// the slow increase converges the limits to the largest batching the SLO
// admits, which is where per-request cost is lowest.
//
// With SLO.ThroughputFloor set the objective is two-dimensional: while
// the observed rate sits below the floor the tuner refuses to shrink the
// window multiplicatively (a collapsed window destroys the batching that
// throughput depends on) and grows the batch instead whenever occupancy
// shows real demand. The p95 target still wins when throughput is
// healthy.
type Tuner struct {
	cfg SLO
}

// NewTuner builds a tuner for the given objective (defaults applied).
func NewTuner(cfg SLO) *Tuner { return &Tuner{cfg: cfg.withDefaults()} }

// Config returns the objective with defaults resolved.
func (t *Tuner) Config() SLO { return t.cfg }

// Step is the pure decision function: given the latest latency window
// and the current limits, return the next limits. It is deterministic,
// so convergence is unit-testable without a live server; the route's
// tuning loop calls it every Interval and applies the result with
// Batcher.SetLimits.
func (t *Tuner) Step(snap keystone.LatencySnapshot, curBatch int, curDelay time.Duration) (int, time.Duration) {
	c := t.cfg
	if snap.Samples < c.MinSamples {
		return curBatch, curDelay
	}
	batch, delay := curBatch, curDelay
	starved := c.ThroughputFloor > 0 && snap.Throughput > 0 && snap.Throughput < c.ThroughputFloor
	switch {
	case snap.P95 > c.TargetP95:
		// One doubling per step at most: starvation lowers the occupancy
		// bar for growth, it does not stack a second doubling on top.
		if snap.MeanOccupancy >= 0.9 || (starved && snap.MeanOccupancy >= 0.5) {
			batch = min(c.MaxBatch, batch*2)
		}
		if starved {
			// Throughput below floor: collapsing the window would shrink
			// batches and lose more throughput — trim it only gently.
			delay = max(c.MinDelay, time.Duration(float64(delay)*0.9))
		} else {
			delay = max(c.MinDelay, time.Duration(float64(delay)*0.6))
		}
	case snap.P95 < c.TargetP95*7/10:
		delay = min(c.MaxDelay, time.Duration(float64(delay)*1.15)+50*time.Microsecond)
		if snap.MeanOccupancy >= 0.75 || (starved && snap.MeanOccupancy >= 0.5) {
			batch = min(c.MaxBatch, batch+batch/4+1)
		} else if snap.MeanOccupancy < 0.25 && !starved {
			batch = max(c.MinBatch, batch*3/4)
		}
	default:
		if starved && snap.MeanOccupancy >= 0.5 {
			// Inside the p95 band but under the floor: win throughput back
			// with a bigger batch; leave the window alone.
			batch = min(c.MaxBatch, batch+batch/4+1)
		}
	}
	return batch, delay
}

// clampLimits folds arbitrary starting limits into the objective's
// bounds so a route's initial configuration and the tuner agree.
func (t *Tuner) clampLimits(batch int, delay time.Duration) (int, time.Duration) {
	c := t.cfg
	return min(c.MaxBatch, max(c.MinBatch, batch)), min(c.MaxDelay, max(c.MinDelay, delay))
}
