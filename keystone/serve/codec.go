package serve

import (
	"encoding/json"
	"fmt"

	"keystoneml/keystone"
)

// Codec translates between a route's JSON wire format and the typed
// records of its pipeline. Each route owns a codec, which is what lets
// one Server host text, speech and vision pipelines simultaneously — the
// registry is type-erased, the codecs are not.
//
// DecodeRequest parses a single-prediction body, DecodeBatch a batch
// body, and Response renders one pipeline output as a JSON-marshalable
// value.
type Codec[I, O any] interface {
	DecodeRequest(body []byte) (I, error)
	DecodeBatch(body []byte) ([]I, error)
	Response(out O) any
}

// Prediction is the standard classification response: the argmax class,
// its label, and the raw per-class scores.
type Prediction struct {
	Label  string    `json:"label"`
	Class  int       `json:"class"`
	Scores []float64 `json:"scores"`
}

// ClassPrediction resolves a score vector to its argmax class and label.
// Classes beyond the label list (or with empty labels) fall back to
// "classN", so pipelines with any number of classes serve correct labels
// — this replaces the old hardcoded binary scores[1] > scores[0] mapping.
func ClassPrediction(scores []float64, labels []string) Prediction {
	if len(scores) == 0 {
		return Prediction{Class: -1, Scores: scores}
	}
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	label := fmt.Sprintf("class%d", best)
	if best < len(labels) && labels[best] != "" {
		label = labels[best]
	}
	return Prediction{Label: label, Class: best, Scores: scores}
}

// TextCodec serves string -> score-vector pipelines with the wire format
// {"text": "..."} / {"texts": ["...", ...]} and Prediction responses
// labeled over Labels.
type TextCodec struct {
	Labels []string
}

// DecodeRequest implements Codec.
func (c TextCodec) DecodeRequest(body []byte) (string, error) {
	var req struct {
		Text *string `json:"text"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("bad JSON: %w", err)
	}
	if req.Text == nil {
		return "", fmt.Errorf(`missing "text" field`)
	}
	return *req.Text, nil
}

// DecodeBatch implements Codec.
func (c TextCodec) DecodeBatch(body []byte) ([]string, error) {
	var req struct {
		Texts []string `json:"texts"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	if len(req.Texts) == 0 {
		return nil, fmt.Errorf(`missing or empty "texts" field`)
	}
	return req.Texts, nil
}

// Response implements Codec.
func (c TextCodec) Response(out []float64) any { return ClassPrediction(out, c.Labels) }

// VectorCodec serves dense-vector pipelines (e.g. speech features) with
// the wire format {"vector": [...]} / {"vectors": [[...], ...]}.
type VectorCodec struct {
	Labels []string
	// Dim, when positive, validates the input dimensionality at decode
	// time so shape errors surface as 400s instead of pipeline panics.
	Dim int
}

// DecodeRequest implements Codec.
func (c VectorCodec) DecodeRequest(body []byte) ([]float64, error) {
	var req struct {
		Vector []float64 `json:"vector"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	return c.check(req.Vector)
}

// DecodeBatch implements Codec.
func (c VectorCodec) DecodeBatch(body []byte) ([][]float64, error) {
	var req struct {
		Vectors [][]float64 `json:"vectors"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	if len(req.Vectors) == 0 {
		return nil, fmt.Errorf(`missing or empty "vectors" field`)
	}
	for i, v := range req.Vectors {
		if _, err := c.check(v); err != nil {
			return nil, fmt.Errorf("vector %d: %w", i, err)
		}
	}
	return req.Vectors, nil
}

func (c VectorCodec) check(v []float64) ([]float64, error) {
	if len(v) == 0 {
		return nil, fmt.Errorf(`missing or empty "vector" field`)
	}
	if c.Dim > 0 && len(v) != c.Dim {
		return nil, fmt.Errorf("vector has %d dims, route expects %d", len(v), c.Dim)
	}
	return v, nil
}

// Response implements Codec.
func (c VectorCodec) Response(out []float64) any { return ClassPrediction(out, c.Labels) }

// imageJSON is the wire form of one image: planar pixels with explicit
// dimensions.
type imageJSON struct {
	Width    int       `json:"width"`
	Height   int       `json:"height"`
	Channels int       `json:"channels"`
	Pixels   []float64 `json:"pixels"`
}

func (in imageJSON) toImage() (*keystone.Image, error) {
	ch := in.Channels
	if ch == 0 {
		ch = 1
	}
	if in.Width <= 0 || in.Height <= 0 || ch < 0 {
		return nil, fmt.Errorf("invalid image dimensions %dx%dx%d", in.Width, in.Height, ch)
	}
	if len(in.Pixels) != in.Width*in.Height*ch {
		return nil, fmt.Errorf("image %dx%dx%d needs %d pixels, got %d",
			in.Width, in.Height, ch, in.Width*in.Height*ch, len(in.Pixels))
	}
	return &keystone.Image{Width: in.Width, Height: in.Height, Channels: ch, Pix: in.Pixels}, nil
}

// ImageCodec serves image pipelines with the wire format
// {"width": W, "height": H, "channels": C, "pixels": [...]} (planar,
// channels defaulting to 1) and {"images": [{...}, ...]} for batches.
type ImageCodec struct {
	Labels []string
}

// DecodeRequest implements Codec.
func (c ImageCodec) DecodeRequest(body []byte) (*keystone.Image, error) {
	var in imageJSON
	if err := json.Unmarshal(body, &in); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	return in.toImage()
}

// DecodeBatch implements Codec.
func (c ImageCodec) DecodeBatch(body []byte) ([]*keystone.Image, error) {
	var req struct {
		Images []imageJSON `json:"images"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	if len(req.Images) == 0 {
		return nil, fmt.Errorf(`missing or empty "images" field`)
	}
	out := make([]*keystone.Image, len(req.Images))
	for i, in := range req.Images {
		im, err := in.toImage()
		if err != nil {
			return nil, fmt.Errorf("image %d: %w", i, err)
		}
		out[i] = im
	}
	return out, nil
}

// Response implements Codec.
func (c ImageCodec) Response(out []float64) any { return ClassPrediction(out, c.Labels) }

// JSONCodec is the generic fallback for arbitrary record types: requests
// are {"input": <I as JSON>} / {"inputs": [...]}, responses
// {"output": <O as JSON>}. Use it for pipelines whose types have natural
// JSON forms and no classification semantics.
type JSONCodec[I, O any] struct{}

// DecodeRequest implements Codec.
func (JSONCodec[I, O]) DecodeRequest(body []byte) (I, error) {
	var zero I
	var req struct {
		Input json.RawMessage `json:"input"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return zero, fmt.Errorf("bad JSON: %w", err)
	}
	if len(req.Input) == 0 {
		return zero, fmt.Errorf(`missing "input" field`)
	}
	var in I
	if err := json.Unmarshal(req.Input, &in); err != nil {
		return zero, fmt.Errorf(`bad "input": %w`, err)
	}
	return in, nil
}

// DecodeBatch implements Codec.
func (JSONCodec[I, O]) DecodeBatch(body []byte) ([]I, error) {
	var req struct {
		Inputs []json.RawMessage `json:"inputs"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	if len(req.Inputs) == 0 {
		return nil, fmt.Errorf(`missing or empty "inputs" field`)
	}
	out := make([]I, len(req.Inputs))
	for i, raw := range req.Inputs {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
	}
	return out, nil
}

// Response implements Codec.
func (JSONCodec[I, O]) Response(out O) any {
	return struct {
		Output O `json:"output"`
	}{Output: out}
}
